(* xmplint analysis passes.

   Every pass works on the position-tracked token stream produced by
   {!Lexer.lex} (and, for the declaration-level passes, on the toplevel
   items recovered by {!Lexer.items}). Rules are scoped by the top-level
   directory a file lives in; findings go through a {!Report.t} and are
   filtered against waiver pragmas afterwards (see [lint_source]).

   Legacy passes (PR 1, re-hosted on the token stream): wall-clock,
   unix-in-lib, unseeded-random, obj-magic, poly-compare-time,
   bare-compare, stdout-in-lib, direct-printf, missing-mli.

   Declaration-level passes (this PR):
   - [mutable-global]  module-toplevel mutable state in lib/ — a latent
     data race under OCaml 5 Domains sharding and a determinism hazard;
     rejected unless converted to Atomic.t / localized, or waived with a
     *justified* pragma.
   - [unit-suffix]     additive/comparison operators joining identifiers
     whose unit suffixes disagree (_ns vs _us, _bytes vs _pkts, …)
     without an explicit conversion in the surrounding expression.
   - [hashtbl-order]   Hashtbl.iter / Hashtbl.fold in lib/ without the
     sorted-iteration idiom — iteration order is unspecified and
     hash-function dependent, so it must never reach output or digests. *)

type category = Lib | Bin | Bench | Examples | Test | OtherDir

let category_of path =
  match String.index_opt path '/' with
  | None -> OtherDir
  | Some i -> (
    match String.sub path 0 i with
    | "lib" -> Lib
    | "bin" -> Bin
    | "bench" -> Bench
    | "examples" -> Examples
    | "test" -> Test
    | _ -> OtherDir)

(* File-level waivers: (rule, exact path) pairs. *)
let file_allowlist =
  [
    (* bench times real executions of the simulator *)
    ("wall-clock", "bench/main.ml");
    ("wall-clock", "bench/perf.ml");
    (* the scenario runner forks workers and times whole simulations; it
       is process orchestration, not simulator code *)
    ("wall-clock", "lib/runner/runner.ml");
    ("unix-in-lib", "lib/runner/runner.ml");
    (* the sanctioned stdout sinks *)
    ("stdout-in-lib", "lib/stats/table.ml");
    ("stdout-in-lib", "lib/experiments/render.ml");
    (* the runner replays captured scenario output to stdout *)
    ("stdout-in-lib", "lib/runner/runner.ml");
    (* the sanctioned stderr sinks: the structured logger itself, the
       invariant checker's Warn mode, and the runner's progress lines *)
    ("direct-printf", "lib/engine/slog.ml");
    ("direct-printf", "lib/check/invariant.ml");
    ("direct-printf", "lib/runner/runner.ml");
    (* the transport acquires pooled packets and hands ownership to
       Node.send; the network layer (links, discs, endpoints) releases *)
    ("packet-release", "lib/transport/tcp.ml");
  ]

let file_allowed rule path = List.mem (rule, path) file_allowlist

let wall_clock_idents =
  [
    "Unix.gettimeofday";
    "Unix.time";
    "Unix.gmtime";
    "Unix.localtime";
    "Sys.time";
  ]

let stdout_idents =
  [
    "print_string";
    "print_endline";
    "print_newline";
    "print_char";
    "print_int";
    "print_float";
    "print_bytes";
    "Printf.printf";
    "Format.printf";
    "Format.print_string";
    "Format.print_newline";
    "Format.print_flush";
    "Stdlib.print_string";
    "Stdlib.print_endline";
    "Stdlib.print_newline";
    "Stdlib.print_char";
    "Stdlib.print_int";
    "Stdlib.print_float";
  ]

let stderr_idents =
  [
    "Printf.eprintf";
    "Format.eprintf";
    "prerr_string";
    "prerr_endline";
    "prerr_newline";
    "prerr_char";
    "prerr_int";
    "prerr_float";
    "prerr_bytes";
    "Stdlib.prerr_string";
    "Stdlib.prerr_endline";
    "Stdlib.prerr_newline";
  ]

let bare_compare_idents = [ "compare"; "Stdlib.compare"; "Hashtbl.hash" ]

let has_suffix s suf =
  let ls = String.length s and lf = String.length suf in
  ls >= lf && String.sub s (ls - lf) lf = suf

let has_prefix s pre =
  let ls = String.length s and lp = String.length pre in
  ls >= lp && String.sub s 0 lp = pre

let last_component name =
  match String.rindex_opt name '.' with
  | None -> name
  | Some i -> String.sub name (i + 1) (String.length name - i - 1)

(* Identifiers that denote simulated timestamps (or RTTs, which are
   Time.t in the transport layer). Comparisons adjacent to one of these
   must go through Time.compare / Int.compare. *)
let timeish name =
  let last = last_component name in
  List.mem last
    [ "time"; "now"; "ts"; "deadline"; "interval"; "rtt"; "srtt"; "min_rtt" ]
  || has_suffix last "_time"
  || has_suffix last "_deadline"
  || has_suffix last "_at"
  || has_suffix last "_ts"

let comparison_ops = [ "="; "<>"; "<"; ">"; "<="; ">=" ]

(* ------------------------------------------------------------------ *)
(* Token-stream passes (position independent)                           *)

open Lexer

let check_idents rep ~path ~cat (toks : token array) =
  Array.iter
    (fun tok ->
      match tok.kind with
      | Ident name ->
        let line = tok.line in
        if
          List.mem name wall_clock_idents
          && cat <> Bench
          && not (file_allowed "wall-clock" path)
        then
          Report.add rep ~path ~line ~rule:"wall-clock"
            (Printf.sprintf
               "%s reads the wall clock; simulated time must come from \
                Sim.now"
               name);
        if name = "Obj.magic" then
          Report.add rep ~path ~line ~rule:"obj-magic"
            "Obj.magic defeats the type system";
        if name = "Random.self_init" || name = "Random.State.make_self_init"
        then
          Report.add rep ~path ~line ~rule:"unseeded-random"
            (name ^ " is nondeterministic; seed explicitly")
        else if
          has_prefix name "Random."
          && not (name = "Random.State" || has_prefix name "Random.State.")
        then
          Report.add rep ~path ~line ~rule:"unseeded-random"
            (name
           ^ " uses the global RNG; use Random.State.* with an explicit \
              seed (Sim.rng)");
        if
          (cat = Lib || cat = Bin || cat = Examples)
          && has_prefix name "Unix."
          && not (file_allowed "unix-in-lib" path)
          && not (file_allowed "wall-clock" path)
        then
          Report.add rep ~path ~line ~rule:"unix-in-lib"
            (name ^ ": the Unix module is off-limits in simulator code");
        if
          cat = Lib
          && List.mem name stdout_idents
          && not (file_allowed "stdout-in-lib" path)
        then
          Report.add rep ~path ~line ~rule:"stdout-in-lib"
            (name
           ^ " prints to stdout from lib/; route through Render/Table or \
              Slog");
        if
          cat = Lib
          && List.mem name stderr_idents
          && not (file_allowed "direct-printf" path)
        then
          Report.add rep ~path ~line ~rule:"direct-printf"
            (name
           ^ " is an ad-hoc stderr diagnostic in lib/; route through Slog \
              or record telemetry instead")
      | Keyword _ | Op _ | Num _ | Str | Punct _ -> ())
    toks

(* Pooled-packet balance: Packet.data/ack/of_image acquire a record
   from the domain-local pool, and exactly one owner must release it
   (or hand it to a sink that does). A lib/ file that acquires but
   never mentions Packet.release is either leaking pool records —
   silent, since the pool just grows — or transferring ownership, in
   which case it belongs on the allowlist with the hand-off spelled
   out. Exact-ident matching keeps Packet.data_wire_bytes and friends
   out of scope. *)
let packet_acquire_idents =
  [
    "Packet.data"; "Packet.ack"; "Packet.of_image"; "Xmp_net.Packet.data";
    "Xmp_net.Packet.ack"; "Xmp_net.Packet.of_image";
  ]

let packet_release_idents = [ "Packet.release"; "Xmp_net.Packet.release" ]

let check_packet_release rep ~path ~cat (toks : token array) =
  if cat = Lib && not (file_allowed "packet-release" path) then begin
    let first_acquire = ref None in
    let releases = ref false in
    Array.iter
      (fun (tok : token) ->
        match tok.kind with
        | Ident name ->
          if List.mem name packet_acquire_idents && !first_acquire = None
          then first_acquire := Some (tok.line, name);
          if List.mem name packet_release_idents then releases := true
        | Keyword _ | Op _ | Num _ | Str | Punct _ -> ())
      toks;
    match !first_acquire with
    | Some (line, name) when not !releases ->
      Report.add rep ~path ~line ~rule:"packet-release"
        (name
       ^ " acquires a pooled packet but this file never calls \
          Packet.release; release it, hand it to a releasing sink, or \
          allowlist the file as an ownership hand-off point")
    | Some _ | None -> ()
  end

(* ------------------------------------------------------------------ *)
(* Line-scoped passes (ported from the PR 1 scanner; their adjacency
   heuristics are deliberately line-local)                              *)

(* Group the stream into per-line token arrays. *)
let lines_of (toks : token array) : (int * token array) list =
  let acc = ref [] in
  let cur = ref [] in
  let cur_line = ref (-1) in
  let flush () =
    if !cur <> [] then
      acc := (!cur_line, Array.of_list (List.rev !cur)) :: !acc
  in
  Array.iter
    (fun tok ->
      if tok.line <> !cur_line then begin
        flush ();
        cur := [];
        cur_line := tok.line
      end;
      cur := tok :: !cur)
    toks;
  flush ();
  List.rev !acc

let check_bare_compare rep ~path ~cat toks =
  if cat = Lib then
    List.iter
      (fun (line_no, lt) ->
        Array.iteri
          (fun i (tok : token) ->
            match tok.kind with
            | Ident name when List.mem name bare_compare_idents ->
              let prev = if i > 0 then Some lt.(i - 1).kind else None in
              let next =
                if i + 1 < Array.length lt then Some lt.(i + 1).kind else None
              in
              let is_definition =
                match prev with
                | Some (Keyword ("let" | "and" | "val" | "method" | "external"))
                  ->
                  true
                | Some (Op "~") -> true (* labelled argument *)
                | _ -> false
              in
              let is_field_init =
                match next with Some (Op ("=" | ":")) -> true | _ -> false
              in
              if not (is_definition || is_field_init) then
                Report.add rep ~path ~line:line_no ~rule:"bare-compare"
                  (name
                 ^ " is polymorphic; use Time.compare / Int.compare / \
                    Float.compare")
            | _ -> ())
          lt)
      (lines_of toks)

(* A comparison operator already routed through X.compare: the compared
   value is the int result, e.g. [Time.compare a b < 0]. *)
let line_has_compare_call (lt : token array) before =
  let found = ref false in
  Array.iteri
    (fun i (tok : token) ->
      if i < before then
        match tok.kind with
        | Ident name when has_suffix name ".compare" -> found := true
        | _ -> ())
    lt;
  !found

let check_poly_compare rep ~path ~cat toks =
  if cat = Lib then
    List.iter
      (fun (line_no, lt) ->
        Array.iteri
          (fun i (tok : token) ->
            match tok.kind with
            | Op op when List.mem op comparison_ops ->
              let prev = if i > 0 then Some lt.(i - 1).kind else None in
              let prev2 = if i > 1 then Some lt.(i - 2).kind else None in
              let next =
                if i + 1 < Array.length lt then Some lt.(i + 1).kind else None
              in
              let timeish_tok = function
                | Some (Ident name) -> timeish name
                | _ -> false
              in
              let dotted_timeish_tok = function
                | Some (Ident name) -> timeish name && String.contains name '.'
                | _ -> false
              in
              let option_tok = function
                | Some (Ident ("None" | "Some")) -> true
                | _ -> false
              in
              let binding =
                match prev2 with
                | Some (Keyword ("let" | "and" | "rec" | "module" | "type")) ->
                  true
                | _ -> false
              in
              let flagged =
                match op with
                | "=" | "<>" ->
                  (* Equality on a timestamp (or Time.t option) field
                     access. Bare left identifiers are record-literal
                     field initialisers, not comparisons, so only dotted
                     accesses count. *)
                  (not binding)
                  && ((dotted_timeish_tok prev
                      && (option_tok next || timeish_tok next))
                     || (dotted_timeish_tok next && option_tok prev))
                | _ ->
                  (timeish_tok prev || timeish_tok next)
                  && not (line_has_compare_call lt i)
              in
              if flagged then
                Report.add rep ~path ~line:line_no ~rule:"poly-compare-time"
                  (Printf.sprintf
                     "polymorphic %s next to a timestamp; use Time.compare \
                      (or Option.is_none/is_some)"
                     op)
            | _ -> ())
          lt)
      (lines_of toks)

(* ------------------------------------------------------------------ *)
(* [mutable-global] — declaration-level                                 *)

(* Constructors whose result is shared mutable state when bound at
   module toplevel. Atomic.make is deliberately absent: atomics are the
   sanctioned domain-safe representation. *)
let mutable_constructors =
  [
    "ref";
    "Hashtbl.create";
    "Buffer.create";
    "Bytes.create";
    "Bytes.make";
    "Array.make";
    "Array.create_float";
    "Array.init";
    "Queue.create";
    "Stack.create";
    "Weak.create";
  ]

(* Field names declared [mutable] by type items in this file; a toplevel
   record literal initialising one of them is shared mutable state. *)
let mutable_fields_of_items items =
  List.fold_left
    (fun acc (it : item) ->
      if it.head <> "type" then acc
      else
        let acc = ref acc in
        Array.iteri
          (fun i (tok : token) ->
            match tok.kind with
            | Keyword "mutable" when i + 1 < Array.length it.toks -> (
              match it.toks.(i + 1).kind with
              | Ident f -> acc := f :: !acc
              | _ -> ())
            | _ -> ())
          it.toks;
        !acc)
    [] items

(* For a [let]/[and] item, classify the binding: [Some (name, rhs_start)]
   when it is a *value* binding (no parameters — the right-hand side is
   evaluated once, at module init), [None] for function bindings, unit
   bindings and destructuring patterns. *)
let value_binding (it : item) =
  let n = Array.length it.toks in
  let idx = ref 1 in
  let skip_keywords () =
    while
      !idx < n
      && (match it.toks.(!idx).kind with
         | Keyword ("rec" | "nonrec") -> true
         | _ -> false)
    do
      incr idx
    done
  in
  skip_keywords ();
  if !idx >= n then None
  else
    match it.toks.(!idx).kind with
    | Ident name -> (
      if !idx + 1 >= n then None
      else
        match it.toks.(!idx + 1).kind with
        | Op "=" -> Some (name, !idx + 2)
        | Op ":" ->
          (* [let name : ty = rhs] — scan for the '=' ending the
             annotation at bracket depth 0 *)
          let depth = ref 0 in
          let j = ref (!idx + 2) in
          let res = ref None in
          while !res = None && !j < n do
            (match it.toks.(!j).kind with
            | Punct ('(' | '[' | '{') -> incr depth
            | Punct (')' | ']' | '}') -> decr depth
            | Op "=" when !depth = 0 -> res := Some (name, !j + 1)
            | _ -> ());
            incr j
          done;
          !res
        | _ -> None (* parameters: a function binding *))
    | _ -> None (* unit / tuple / record pattern *)

let check_mutable_global rep ~path ~cat items =
  if cat = Lib then
  let mutable_fields = mutable_fields_of_items items in
  List.iter
    (fun (it : item) ->
      if it.head = "let" || it.head = "and" then
        match value_binding it with
        | None -> ()
        | Some (name, rhs_start) ->
          let n = Array.length it.toks in
          (* stop at a lambda: anything it allocates happens per call *)
          let rhs_end = ref n in
          (try
             for j = rhs_start to n - 1 do
               match it.toks.(j).kind with
               | Keyword ("fun" | "function") ->
                 rhs_end := j;
                 raise Exit
               | _ -> ()
             done
           with Exit -> ());
          let flagged = ref None in
          let saw_brace = ref false in
          for j = rhs_start to !rhs_end - 1 do
            match it.toks.(j).kind with
            | Punct '{' -> saw_brace := true
            | Ident id when !flagged = None ->
              if List.mem id mutable_constructors then
                flagged := Some (it.toks.(j).line, id)
              else if
                !saw_brace
                && List.mem id mutable_fields
                && j + 1 < n
                && (match it.toks.(j + 1).kind with
                   | Op "=" -> true
                   | _ -> false)
              then
                flagged :=
                  Some (it.toks.(j).line, "record with mutable field " ^ id)
            | _ -> ()
          done;
          (match !flagged with
          | Some (line, what) ->
            Report.add rep ~path ~line ~rule:"mutable-global" ~decl:name
              (Printf.sprintf
                 "toplevel binding '%s' holds shared mutable state (%s): a \
                  data race once the simulator shards across Domains. \
                  Convert to Atomic.t, localize it, or annotate (* xmplint: \
                  allow mutable-global — <justification> *)"
                 name what)
          | None -> ()))
    items

(* ------------------------------------------------------------------ *)
(* [unit-suffix] — mixed-unit arithmetic                                *)

let unit_of_ident name =
  let last = String.lowercase_ascii (last_component name) in
  if has_suffix last "_ns" then Some "ns"
  else if has_suffix last "_us" then Some "us"
  else if has_suffix last "_ms" then Some "ms"
  else if has_suffix last "_sec" || has_suffix last "_s" then Some "s"
  else if has_suffix last "_bytes" then Some "bytes"
  else if has_suffix last "_bits" then Some "bits"
  else if has_suffix last "_pkts" then Some "pkts"
  else if has_suffix last "_bps" || has_suffix last "rate" then Some "rate"
  else None

let unit_ops = [ "+"; "-"; "+."; "-."; "="; "<>"; "<"; ">"; "<="; ">=" ]

(* Statement-ish boundaries for the conversion-marker window. *)
let unit_boundary = function
  | Keyword
      ( "let" | "in" | "then" | "else" | "match" | "with" | "fun" | "function"
      | "begin" | "end" | "do" | "done" | "if" | "while" | "for" ) ->
    true
  | Punct ';' -> true
  | Op "->" -> true
  | _ -> false

let conversion_literals =
  [
    "1000"; "1_000"; "1000000"; "1_000_000"; "1000000000"; "1_000_000_000";
    "1e3"; "1e6"; "1e9"; "1e-3"; "1e-6"; "1e-9";
  ]

let is_conversion_marker (k : kind) =
  match k with
  | Ident name ->
    let last = last_component name in
    has_prefix name "Time."
    || has_prefix name "Units."
    || String.length name > 5
       && (let rec contains i =
             i + 6 <= String.length name
             && (String.sub name i 6 = ".Time." || contains (i + 1))
           in
           contains 0)
    || has_prefix last "to_"
    || has_prefix last "of_"
  | Num lit ->
    List.mem lit conversion_literals
    || String.contains lit 'e' && String.length lit > 1 && Lexer.is_digit lit.[0]
  | _ -> false

let check_unit_suffix rep ~path ~cat items =
  if cat = Lib then
    List.iter
      (fun (it : item) ->
        let toks = it.toks in
        let n = Array.length toks in
        Array.iteri
          (fun i (tok : token) ->
            match tok.kind with
            | Op op when List.mem op unit_ops ->
              let prev = if i > 0 then Some toks.(i - 1).kind else None in
              let next = if i + 1 < n then Some toks.(i + 1).kind else None in
              let unit_of = function
                | Some (Ident name) -> unit_of_ident name
                | _ -> None
              in
              (match (unit_of prev, unit_of next) with
              | Some u1, Some u2 when u1 <> u2 ->
                (* look for an explicit conversion in the enclosing
                   expression window *)
                let has_conv = ref false in
                let j = ref (i - 1) in
                let steps = ref 0 in
                while
                  !j >= 0 && !steps < 60
                  && not (unit_boundary toks.(!j).kind)
                do
                  if is_conversion_marker toks.(!j).kind then has_conv := true;
                  decr j;
                  incr steps
                done;
                let j = ref (i + 1) in
                let steps = ref 0 in
                while
                  !j < n && !steps < 60
                  && not (unit_boundary toks.(!j).kind)
                do
                  if is_conversion_marker toks.(!j).kind then has_conv := true;
                  incr j;
                  incr steps
                done;
                if not !has_conv then
                  Report.add rep ~path ~line:tok.line ~rule:"unit-suffix"
                    ?decl:it.name
                    (Printf.sprintf
                       "'%s' joins a '%s'-unit value and a '%s'-unit value \
                        with no explicit conversion (Time.to_ns / Units.* / \
                        a power-of-10 literal) in the expression"
                       op u1 u2)
              | _ -> ())
            | _ -> ())
          toks)
      items

(* ------------------------------------------------------------------ *)
(* [hashtbl-order] — unspecified iteration order                        *)

let is_hashtbl_iteration name =
  let last = last_component name in
  (last = "iter" || last = "fold")
  &&
  (* "Hashtbl.iter", "Hashtbl.Make(...).iter" style paths; module-local
     hashtable instances cannot be recognized without type information *)
  match String.rindex_opt name '.' with
  | None -> false
  | Some i -> (
    let path = String.sub name 0 i in
    has_suffix path "Hashtbl" || has_prefix path "Hashtbl.")

let check_hashtbl_order rep ~path ~cat items =
  if cat = Lib then
    List.iter
      (fun (it : item) ->
        let toks = it.toks in
        let sorted_idiom =
          Array.exists
            (fun (tok : token) ->
              match tok.kind with
              | Ident name -> has_prefix (last_component name) "sort"
              | _ -> false)
            toks
        in
        Array.iter
          (fun (tok : token) ->
            match tok.kind with
            | Ident name when is_hashtbl_iteration name ->
              if not sorted_idiom then
                Report.add rep ~path ~line:tok.line ~rule:"hashtbl-order"
                  ?decl:it.name
                  (Printf.sprintf
                     "%s iterates in unspecified hash order; fold to a list \
                      and List.sort before anything order-sensitive \
                      (sorted-iteration idiom), or waive with a pragma if \
                      the order provably cannot reach output or digests"
                     name)
            | _ -> ())
          toks)
      items

(* ------------------------------------------------------------------ *)
(* Per-file driver                                                      *)

(* Rules whose pragma waivers must carry a justification. *)
let justified_waiver_rules = [ "mutable-global" ]

let lint_source rep ~path src =
  let cat = category_of path in
  Report.count_file rep;
  let lx = Lexer.lex ~path src in
  let items = Lexer.items lx in
  let before = rep.Report.findings in
  check_idents rep ~path ~cat lx.tokens;
  check_bare_compare rep ~path ~cat lx.tokens;
  check_poly_compare rep ~path ~cat lx.tokens;
  check_packet_release rep ~path ~cat lx.tokens;
  if Filename.check_suffix path ".ml" then begin
    check_mutable_global rep ~path ~cat items;
    check_unit_suffix rep ~path ~cat items;
    check_hashtbl_order rep ~path ~cat items
  end;
  (* filter the fresh findings against waiver pragmas *)
  let rec fresh acc l =
    if l == before then acc else
      match l with
      | [] -> acc
      | f :: rest -> fresh (f :: acc) rest
  in
  let fresh_findings = fresh [] rep.Report.findings in
  let keep (f : Report.finding) =
    if List.mem f.Report.rule justified_waiver_rules then
      not
        (Lexer.waived_justified lx ~line:f.Report.line ~rule:f.Report.rule)
    else not (Lexer.waived lx ~line:f.Report.line ~rule:f.Report.rule)
  in
  rep.Report.findings <- List.filter keep fresh_findings @ before

let check_mli_presence rep files =
  List.iter
    (fun path ->
      if category_of path = Lib && Filename.check_suffix path ".ml" then begin
        let mli = path ^ "i" in
        if not (List.mem mli files) then
          Report.add rep ~path ~line:1 ~rule:"missing-mli"
            "lib/ module without an interface file"
      end)
    files
