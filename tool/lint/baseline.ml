(* Baseline ratchet: a committed inventory of waived findings.

   The baseline file pins, per (path, rule), how many findings are
   tolerated. Linting against a baseline suppresses exactly that many
   findings for each key; anything beyond the pinned count is a ratchet
   violation and fails the run, naming the rule and the offending
   declarations. Counts only ever go down: when a pinned finding is
   fixed, the stale entry is reported so the baseline can be tightened
   (stale entries warn but do not fail).

   The file format is a strict subset of JSON:

     { "version": 2,
       "pinned": [ { "path": "lib/a.ml", "rule": "unit-suffix", "count": 2 } ] }

   parsed by the minimal recursive-descent reader below (the tool is
   stdlib-only by design; see DESIGN.md "Static analysis"). *)

type entry = { b_path : string; b_rule : string; b_count : int }

type violation = {
  v_path : string;
  v_rule : string;
  v_allowed : int;
  v_found : int;
  v_findings : Report.finding list;  (** every current finding for the key *)
}

type verdict = {
  violations : violation list;
  stale : (string * string * int * int) list;
      (** (path, rule, pinned, found) where found < pinned *)
  suppressed : int;  (** findings absorbed by baseline pins *)
}

(* ------------------------------------------------------------------ *)
(* Minimal JSON reader                                                  *)

type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of json list
  | Obj of (string * json) list

exception Parse_error of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let error msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    if !pos < n && s.[!pos] = c then advance ()
    else error (Printf.sprintf "expected '%c'" c)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then error "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
          advance ();
          if !pos >= n then error "unterminated escape";
          (match s.[!pos] with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'n' -> Buffer.add_char buf '\n'
          | 't' -> Buffer.add_char buf '\t'
          | 'r' -> Buffer.add_char buf '\r'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'u' ->
            if !pos + 4 >= n then error "truncated \\u escape";
            let hex = String.sub s (!pos + 1) 4 in
            let code =
              try int_of_string ("0x" ^ hex)
              with _ -> error "bad \\u escape"
            in
            (* ASCII range only — enough for paths and rule ids *)
            if code < 0x80 then Buffer.add_char buf (Char.chr code)
            else Buffer.add_char buf '?';
            pos := !pos + 4
          | c -> error (Printf.sprintf "bad escape '\\%c'" c));
          advance ();
          go ()
        | c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> error "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((key, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((key, v) :: acc)
          | _ -> error "expected ',' or '}'"
        in
        Obj (members [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec elems acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elems (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> error "expected ',' or ']'"
        in
        List (elems [])
      end
    | Some 't' ->
      if !pos + 4 <= n && String.sub s !pos 4 = "true" then begin
        pos := !pos + 4;
        Bool true
      end
      else error "bad literal"
    | Some 'f' ->
      if !pos + 5 <= n && String.sub s !pos 5 = "false" then begin
        pos := !pos + 5;
        Bool false
      end
      else error "bad literal"
    | Some 'n' ->
      if !pos + 4 <= n && String.sub s !pos 4 = "null" then begin
        pos := !pos + 4;
        Null
      end
      else error "bad literal"
    | Some _ ->
      let start = !pos in
      while
        !pos < n
        &&
        match s.[!pos] with
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      do
        advance ()
      done;
      if !pos = start then error "unexpected character";
      let lit = String.sub s start (!pos - start) in
      (match int_of_string_opt lit with
      | Some i -> Int i
      | None -> (
        match float_of_string_opt lit with
        | Some f -> Float f
        | None -> error "bad number"))
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then error "trailing content";
  v

(* ------------------------------------------------------------------ *)
(* Loading / writing                                                    *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let load path : (entry list, string) result =
  match
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let s = really_input_string ic len in
    close_in ic;
    s
  with
  | exception Sys_error e -> Error e
  | src -> (
    match parse_json src with
    | exception Parse_error e -> Error (path ^ ": " ^ e)
    | json -> (
      match member "pinned" json with
      | Some (List entries) -> (
        let parse_entry = function
          | Obj _ as o -> (
            match (member "path" o, member "rule" o, member "count" o) with
            | Some (Str p), Some (Str r), Some (Int c) when c >= 0 ->
              Ok { b_path = p; b_rule = r; b_count = c }
            | _ -> Error "pinned entry needs path/rule/count fields")
          | _ -> Error "pinned entry is not an object"
        in
        let rec all acc = function
          | [] -> Ok (List.rev acc)
          | e :: rest -> (
            match parse_entry e with
            | Ok entry -> all (entry :: acc) rest
            | Error _ as err -> err)
        in
        match all [] entries with
        | Ok entries -> Ok entries
        | Error e -> Error (path ^ ": " ^ e))
      | Some _ -> Error (path ^ ": \"pinned\" is not an array")
      | None -> Error (path ^ ": missing \"pinned\" array")))

let write path findings =
  let counts = Hashtbl.create 16 in
  List.iter
    (fun (f : Report.finding) ->
      let key = (f.Report.path, f.Report.rule) in
      Hashtbl.replace counts key
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts key)))
    findings;
  let entries =
    Hashtbl.fold (fun (p, r) c acc -> (p, r, c) :: acc) counts []
    |> List.sort compare
  in
  let oc = open_out path in
  output_string oc "{\n";
  output_string oc
    "  \"comment\": \"xmplint baseline ratchet: pinned pre-existing \
     findings. A rule's count per file may shrink (then tighten this file) \
     but never grow; dune build @lint and CI diff the current findings \
     against these entries.\",\n";
  output_string oc "  \"version\": 2,\n";
  output_string oc "  \"pinned\": [\n";
  List.iteri
    (fun i (p, r, c) ->
      output_string oc
        (Printf.sprintf "    { \"path\": %S, \"rule\": %S, \"count\": %d }%s\n"
           p r c
           (if i = List.length entries - 1 then "" else ",")))
    entries;
  output_string oc "  ]\n}\n";
  close_out oc

(* ------------------------------------------------------------------ *)
(* Ratchet comparison                                                   *)

let apply (baseline : entry list) (findings : Report.finding list) : verdict =
  let key_of (f : Report.finding) = (f.Report.path, f.Report.rule) in
  let found = Hashtbl.create 16 in
  List.iter
    (fun f ->
      let k = key_of f in
      Hashtbl.replace found k
        (f :: Option.value ~default:[] (Hashtbl.find_opt found k)))
    findings;
  let violations = ref [] in
  let stale = ref [] in
  let suppressed = ref 0 in
  let pinned_count path rule =
    List.fold_left
      (fun acc e ->
        if e.b_path = path && e.b_rule = rule then acc + e.b_count else acc)
      0 baseline
  in
  (* keys with current findings *)
  let keys =
    Hashtbl.fold (fun k _ acc -> k :: acc) found [] |> List.sort compare
  in
  List.iter
    (fun (path, rule) ->
      let fs = List.rev (Hashtbl.find found (path, rule)) in
      let n = List.length fs in
      let allowed = pinned_count path rule in
      if n > allowed then
        violations :=
          {
            v_path = path;
            v_rule = rule;
            v_allowed = allowed;
            v_found = n;
            v_findings = fs;
          }
          :: !violations
      else begin
        suppressed := !suppressed + n;
        if n < allowed then stale := (path, rule, allowed, n) :: !stale
      end)
    keys;
  (* pinned keys with no current findings at all are stale too *)
  List.iter
    (fun e ->
      if e.b_count > 0 && not (Hashtbl.mem found (e.b_path, e.b_rule)) then
        stale := (e.b_path, e.b_rule, e.b_count, 0) :: !stale)
    baseline;
  {
    violations = List.rev !violations;
    stale = List.sort compare !stale;
    suppressed = !suppressed;
  }

let verdict_to_json v =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf
    (Printf.sprintf "    \"clean\": %b,\n    \"suppressed\": %d,\n"
       (v.violations = []) v.suppressed);
  Buffer.add_string buf "    \"violations\": [";
  List.iteri
    (fun i viol ->
      if i > 0 then Buffer.add_string buf ",";
      Buffer.add_string buf "\n      ";
      Buffer.add_string buf
        (Printf.sprintf
           "{\"path\": \"%s\", \"rule\": \"%s\", \"allowed\": %d, \"found\": \
            %d, \"findings\": [%s]}"
           (Report.json_escape viol.v_path)
           (Report.json_escape viol.v_rule)
           viol.v_allowed viol.v_found
           (String.concat ", "
              (List.map Report.finding_to_json viol.v_findings))))
    v.violations;
  if v.violations <> [] then Buffer.add_string buf "\n    ";
  Buffer.add_string buf "],\n";
  Buffer.add_string buf "    \"stale\": [";
  List.iteri
    (fun i (p, r, pinned, found) ->
      if i > 0 then Buffer.add_string buf ",";
      Buffer.add_string buf "\n      ";
      Buffer.add_string buf
        (Printf.sprintf
           "{\"path\": \"%s\", \"rule\": \"%s\", \"pinned\": %d, \"found\": %d}"
           (Report.json_escape p) (Report.json_escape r) pinned found))
    v.stale;
  if v.stale <> [] then Buffer.add_string buf "\n    ";
  Buffer.add_string buf "]\n  }";
  Buffer.contents buf

let print_verdict_text v =
  List.iter
    (fun viol ->
      Printf.printf
        "xmplint: ratchet violation: [%s] in %s: %d finding(s), baseline \
         allows %d\n"
        viol.v_rule viol.v_path viol.v_found viol.v_allowed;
      List.iter
        (fun f -> print_endline ("  " ^ Report.finding_to_string f))
        viol.v_findings)
    v.violations;
  List.iter
    (fun (p, r, pinned, found) ->
      Printf.printf
        "xmplint: stale baseline entry: [%s] in %s pins %d but only %d \
         found — tighten tool/lint/baseline.json\n"
        r p pinned found)
    v.stale
