(* xmplint driver.

   Walks the requested directories, lints every .ml/.mli through
   {!Xmplint_lib.Rules}, and renders findings as text or JSON. With
   [--baseline FILE] the committed ratchet is applied: pinned findings
   are tolerated (and listed as suppressed), any growth in a rule's
   count per file fails the run. [--write-baseline FILE] regenerates the
   pin file from the current findings.

   Exit status: 0 clean (or within baseline), 1 findings / ratchet
   violations, 2 usage or I/O error. *)

open Xmplint_lib

let usage =
  "xmplint [--root DIR] [--format text|json] [--baseline FILE]\n\
  \        [--write-baseline FILE] DIR...\n"

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

let rec walk dir acc =
  let entries = Array.to_list (Sys.readdir dir) in
  List.fold_left
    (fun acc name ->
      if name = "" || name.[0] = '.' || name.[0] = '_' then acc
      else begin
        let path = if dir = "." then name else Filename.concat dir name in
        if Sys.is_directory path then walk path acc
        else if
          Filename.check_suffix name ".ml" || Filename.check_suffix name ".mli"
        then path :: acc
        else acc
      end)
    acc
    (List.sort String.compare entries)

let () =
  let root = ref "." in
  let format = ref `Text in
  let baseline_file = ref None in
  let write_baseline = ref None in
  let dirs = ref [] in
  let rec parse = function
    | "--root" :: dir :: rest ->
      root := dir;
      parse rest
    | "--format" :: fmt :: rest ->
      (match fmt with
      | "text" -> format := `Text
      | "json" -> format := `Json
      | other ->
        Printf.eprintf "xmplint: unknown format %S (want text or json)\n" other;
        exit 2);
      parse rest
    | "--baseline" :: file :: rest ->
      baseline_file := Some file;
      parse rest
    | "--write-baseline" :: file :: rest ->
      write_baseline := Some file;
      parse rest
    | "--help" :: _ ->
      print_string usage;
      exit 0
    | arg :: _ when String.length arg > 1 && arg.[0] = '-' ->
      Printf.eprintf "xmplint: unknown option %s\n%s" arg usage;
      exit 2
    | dir :: rest ->
      dirs := dir :: !dirs;
      parse rest
    | [] -> ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  let dirs = List.rev !dirs in
  if dirs = [] then begin
    prerr_string usage;
    exit 2
  end;
  (* resolve the baseline before chdir so relative paths keep working *)
  let baseline =
    match !baseline_file with
    | None -> None
    | Some file -> (
      match Baseline.load file with
      | Ok entries -> Some entries
      | Error e ->
        Printf.eprintf "xmplint: cannot load baseline: %s\n" e;
        exit 2)
  in
  Sys.chdir !root;
  let files =
    List.concat_map
      (fun d ->
        if Sys.file_exists d && Sys.is_directory d then List.rev (walk d [])
        else begin
          Printf.eprintf "xmplint: no such directory: %s\n" d;
          exit 2
        end)
      dirs
  in
  let rep = Report.create () in
  List.iter (fun path -> Rules.lint_source rep ~path (read_file path)) files;
  Rules.check_mli_presence rep files;
  let all = Report.sorted rep in
  (match !write_baseline with
  | Some file ->
    Baseline.write file all;
    Printf.eprintf "xmplint: wrote baseline (%d finding(s)) to %s\n"
      (List.length all) file;
    exit 0
  | None -> ());
  match baseline with
  | None -> (
    (* no ratchet: every finding fails the run *)
    match !format with
    | `Json ->
      print_string (Report.to_json ~files:(List.length files) all);
      if all = [] then exit 0 else exit 1
    | `Text -> (
      Report.print_text all;
      match all with
      | [] ->
        Printf.printf "xmplint: %d files clean\n" (List.length files);
        exit 0
      | _ ->
        Printf.printf "xmplint: %d finding(s)\n" (List.length all);
        exit 1))
  | Some entries -> (
    let verdict = Baseline.apply entries all in
    let ok = verdict.Baseline.violations = [] in
    match !format with
    | `Json ->
      print_string
        (Report.to_json
           ~ratchet:(Baseline.verdict_to_json verdict)
           ~files:(List.length files) all);
      if ok then exit 0 else exit 1
    | `Text ->
      List.iter
        (fun v -> List.iter (fun f -> print_endline (Report.finding_to_string f)) v.Baseline.v_findings)
        verdict.Baseline.violations;
      Baseline.print_verdict_text verdict;
      if ok then begin
        Printf.printf
          "xmplint: %d files clean (%d baseline-pinned finding(s))\n"
          (List.length files) verdict.Baseline.suppressed;
        exit 0
      end
      else begin
        Printf.printf "xmplint: ratchet failed: %d rule/file pair(s) grew\n"
          (List.length verdict.Baseline.violations);
        exit 1
      end)
