(* Finding collection and rendering (text and machine-readable JSON).

   A [t] accumulates findings file by file; rendering sorts them by
   (path, line, rule) so output order never depends on directory walk or
   rule evaluation order. JSON output is the integration surface for CI:
   a stable object with per-rule counts, the finding list, and — when a
   baseline ratchet was applied — the ratchet verdict. *)

type finding = {
  path : string;
  line : int;
  rule : string;
  decl : string option;  (** enclosing toplevel declaration, when known *)
  msg : string;
}

type t = { mutable findings : finding list; mutable files : int }

let create () = { findings = []; files = 0 }

let add t ?decl ~path ~line ~rule msg =
  t.findings <- { path; line; rule; decl; msg } :: t.findings

let count_file t = t.files <- t.files + 1

let sorted t =
  List.sort
    (fun a b ->
      match String.compare a.path b.path with
      | 0 -> (
        match Int.compare a.line b.line with
        | 0 -> String.compare a.rule b.rule
        | c -> c)
      | c -> c)
    t.findings

let by_rule findings =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun f ->
      Hashtbl.replace tbl f.rule
        (1 + Option.value ~default:0 (Hashtbl.find_opt tbl f.rule)))
    findings;
  Hashtbl.fold (fun rule count acc -> (rule, count) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* ------------------------------------------------------------------ *)
(* Text rendering                                                      *)

let finding_to_string f =
  let decl = match f.decl with Some d -> " (" ^ d ^ ")" | None -> "" in
  Printf.sprintf "%s:%d: [%s]%s %s" f.path f.line f.rule decl f.msg

let print_text findings = List.iter (fun f -> print_endline (finding_to_string f)) findings

(* ------------------------------------------------------------------ *)
(* JSON rendering (hand-rolled; the tool is stdlib-only)               *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let finding_to_json f =
  let decl =
    match f.decl with
    | Some d -> Printf.sprintf "\"decl\": \"%s\", " (json_escape d)
    | None -> ""
  in
  Printf.sprintf
    "{\"path\": \"%s\", \"line\": %d, \"rule\": \"%s\", %s\"msg\": \"%s\"}"
    (json_escape f.path) f.line (json_escape f.rule) decl (json_escape f.msg)

(* [ratchet_json] is an optional pre-rendered JSON fragment (from
   [Baseline.verdict_to_json]) spliced in as the "ratchet" field. *)
let to_json ?ratchet ~files findings =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"tool\": \"xmplint\",\n";
  Buffer.add_string buf "  \"version\": 2,\n";
  Buffer.add_string buf (Printf.sprintf "  \"files_scanned\": %d,\n" files);
  Buffer.add_string buf "  \"counts\": {";
  Buffer.add_string buf
    (String.concat ", "
       (List.map
          (fun (rule, count) ->
            Printf.sprintf "\"%s\": %d" (json_escape rule) count)
          (by_rule findings)));
  Buffer.add_string buf "},\n";
  Buffer.add_string buf "  \"findings\": [";
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_string buf ",";
      Buffer.add_string buf "\n    ";
      Buffer.add_string buf (finding_to_json f))
    findings;
  if findings <> [] then Buffer.add_string buf "\n  ";
  Buffer.add_string buf "]";
  (match ratchet with
  | Some r ->
    Buffer.add_string buf ",\n  \"ratchet\": ";
    Buffer.add_string buf r
  | None -> ());
  Buffer.add_string buf "\n}\n";
  Buffer.contents buf
