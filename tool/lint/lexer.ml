(* Position-tracked OCaml lexer for xmplint.

   One pass over the raw source produces a token stream in which every
   token carries its 1-based line and 0-based column. Comments, string
   literals and char literals are consumed by the lexer itself (no
   separate stripping pass): strings become [Str] tokens, comments
   disappear except for the [allow] pragmas they may carry, and char
   literals vanish entirely (they can never trip a rule). Dotted module
   paths lex as one [Ident] ("Time.compare", "t.send_time") and maximal
   symbol runs as one [Op] ("->", ">=", "|>"), so a ">" token really is a
   comparison. Lowercase identifiers that are OCaml structure keywords
   come out as [Keyword], which is what lets the item grouper below
   recover declaration-level structure without a grammar.

   The module is pure: [lex] returns a value, no global state. *)

type kind =
  | Ident of string  (** identifier or dotted path *)
  | Keyword of string  (** reserved word ("let", "module", "mutable", …) *)
  | Num of string  (** numeric literal, including 1e9 / 0x2a forms *)
  | Op of string  (** maximal run of symbol characters *)
  | Str  (** a string literal (contents elided) *)
  | Punct of char  (** any other single character *)

type token = { kind : kind; line : int; col : int }

type pragma = {
  p_from : int;  (** first source line the pragma comment touches *)
  p_to : int;  (** last line it waives (comment end + 1, i.e. next line) *)
  p_rule : string;
  p_just : string option;
      (** justification text following the rule id, if any — required by
          rules like [mutable-global] whose waivers must be argued *)
}

type t = { path : string; tokens : token array; pragmas : pragma list }

(* A toplevel structure item: the token slice from one declaration
   keyword at column 0 / nesting depth 0 to the next. *)
type item = {
  head : string;  (** "let" | "and" | "module" | "type" | … *)
  name : string option;  (** first identifier after the head keyword *)
  start_line : int;
  toks : token array;
}

let keywords =
  [
    "and"; "as"; "assert"; "begin"; "class"; "constraint"; "do"; "done";
    "downto"; "else"; "end"; "exception"; "external"; "false"; "for"; "fun";
    "function"; "functor"; "if"; "in"; "include"; "inherit"; "initializer";
    "lazy"; "let"; "match"; "method"; "module"; "mutable"; "new"; "nonrec";
    "object"; "of"; "open"; "private"; "rec"; "sig"; "struct"; "then"; "to";
    "true"; "try"; "type"; "val"; "virtual"; "when"; "while"; "with";
  ]

let is_keyword s = List.mem s keywords

let is_ident_start = function
  | 'a' .. 'z' | 'A' .. 'Z' | '_' -> true
  | _ -> false

let is_ident_char = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '\'' -> true
  | _ -> false

let is_symbol_char c = String.contains "!$%&*+-./:<=>?@^|~" c
let is_digit = function '0' .. '9' -> true | _ -> false

let is_num_char = function
  | '0' .. '9' | '_' | '.' | 'x' | 'o' | 'b' | 'a' | 'c' .. 'f' | 'A' .. 'F'
  | 'l' | 'L' | 'n' ->
    true
  | _ -> false

(* Pragma text: "xmplint: allow <rule-id>[ <justification>]". The
   justification runs to the next pragma in the same comment or to the
   comment's end; leading dashes/colons and trailing comment closers are
   trimmed away. *)
let scan_pragmas ~from_line ~to_line text acc =
  let key = "xmplint: allow " in
  let klen = String.length key in
  let tlen = String.length text in
  let matches = ref [] in
  let rec find i =
    if i + klen <= tlen then
      if String.sub text i klen = key then begin
        let j = ref (i + klen) in
        let start = !j in
        while
          !j < tlen
          && (match text.[!j] with
             | 'a' .. 'z' | '0' .. '9' | '-' -> true
             | _ -> false)
        do
          incr j
        done;
        if !j > start then
          matches := (i, String.sub text start (!j - start), !j) :: !matches;
        find !j
      end
      else find (i + 1)
  in
  find 0;
  let matches = List.rev !matches in
  let trim_justification s =
    let s = String.trim s in
    (* strip a leading separator (em-dash bytes, '-', ':') and the
       trailing comment closer *)
    let s =
      let n = String.length s in
      let i = ref 0 in
      while
        !i < n
        && (match s.[!i] with
           | '-' | ':' | ' ' -> true
           | '\xe2' ->
             (* UTF-8 em/en dash lead byte: skip the 3-byte sequence *)
             i := !i + 2;
             true
           | _ -> false)
      do
        incr i
      done;
      String.sub s !i (n - !i)
    in
    let s =
      let n = String.length s in
      let j = ref n in
      while
        !j > 0 && (match s.[!j - 1] with '*' | ')' | ' ' -> true | _ -> false)
      do
        decr j
      done;
      String.sub s 0 !j
    in
    let s = String.trim s in
    if s = "" then None else Some s
  in
  let rec build acc = function
    | [] -> acc
    | (_, rule, stop) :: rest ->
      let just_end =
        match rest with (next_start, _, _) :: _ -> next_start | [] -> tlen
      in
      let just = trim_justification (String.sub text stop (just_end - stop)) in
      build
        ({ p_from = from_line; p_to = to_line + 1; p_rule = rule; p_just = just }
        :: acc)
        rest
  in
  build acc matches

let lex ~path src =
  let n = String.length src in
  let toks = ref [] in
  let pragmas = ref [] in
  let line = ref 1 in
  let bol = ref 0 in
  (* beginning-of-line offset, for columns *)
  let i = ref 0 in
  let newline at = incr line; bol := at + 1 in
  let col at = at - !bol in
  let emit kind at = toks := { kind; line = !line; col = col at } :: !toks in
  let advance_over c at = if c = '\n' then newline at in
  (* string literal: body consumed, [Str] emitted at the opening quote *)
  let skip_string start =
    emit Str start;
    let j = ref (start + 1) in
    let stop = ref (-1) in
    while !stop < 0 && !j < n do
      (match src.[!j] with
      | '"' -> stop := !j + 1
      | '\\' when !j + 1 < n ->
        advance_over src.[!j + 1] (!j + 1);
        incr j
      | c -> advance_over c !j);
      incr j
    done;
    if !stop < 0 then n else !stop
  in
  (* {id|...|id} quoted string; returns [None] if this '{' opens no
     quoted literal *)
  let skip_quoted start =
    let j = ref (start + 1) in
    while
      !j < n && (match src.[!j] with 'a' .. 'z' | '_' -> true | _ -> false)
    do
      incr j
    done;
    if !j < n && src.[!j] = '|' then begin
      let delim = String.sub src (start + 1) (!j - start - 1) in
      let close = "|" ^ delim ^ "}" in
      let clen = String.length close in
      emit Str start;
      let k = ref (!j + 1) in
      let stop = ref (-1) in
      while !stop < 0 && !k + clen <= n do
        if String.sub src !k clen = close then stop := !k + clen
        else begin
          advance_over src.[!k] !k;
          incr k
        end
      done;
      Some (if !stop < 0 then n else !stop)
    end
    else None
  in
  (* comment: consumed (nesting respected), pragmas recorded *)
  let skip_comment start =
    let from_line = !line in
    let depth = ref 1 in
    let j = ref (start + 2) in
    while !depth > 0 && !j < n do
      if !j + 1 < n && src.[!j] = '(' && src.[!j + 1] = '*' then begin
        incr depth;
        j := !j + 2
      end
      else if !j + 1 < n && src.[!j] = '*' && src.[!j + 1] = ')' then begin
        decr depth;
        j := !j + 2
      end
      else begin
        advance_over src.[!j] !j;
        incr j
      end
    done;
    let stop = Stdlib.min !j n in
    pragmas :=
      scan_pragmas ~from_line ~to_line:!line
        (String.sub src start (stop - start))
        !pragmas;
    stop
  in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then begin
      newline !i;
      incr i
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '"' then i := skip_string !i
    else if c = '(' && !i + 1 < n && src.[!i + 1] = '*' then
      i := skip_comment !i
    else if c = '{' then begin
      match skip_quoted !i with
      | Some stop -> i := stop
      | None ->
        emit (Punct '{') !i;
        incr i
    end
    else if is_ident_start c then begin
      let start = !i in
      let continue = ref true in
      while !continue do
        while !i < n && is_ident_char src.[!i] do
          incr i
        done;
        if !i + 1 < n && src.[!i] = '.' && is_ident_start src.[!i + 1] then
          incr i
        else continue := false
      done;
      let name = String.sub src start (!i - start) in
      let kind = if is_keyword name then Keyword name else Ident name in
      emit kind start
    end
    else if is_digit c then begin
      let start = !i in
      let continue = ref true in
      while !continue do
        while !i < n && is_num_char src.[!i] do
          incr i
        done;
        (* exponent sign: "1e-9" stays one literal *)
        if
          !i < n
          && (src.[!i] = '+' || src.[!i] = '-')
          && (let p = src.[!i - 1] in
              p = 'e' || p = 'E')
        then incr i
        else continue := false
      done;
      emit (Num (String.sub src start (!i - start))) start
    end
    else if
      c = '\'' && !i + 2 < n && src.[!i + 1] <> '\\' && src.[!i + 2] = '\''
    then begin
      advance_over src.[!i + 1] (!i + 1);
      i := !i + 3 (* char literal 'x' *)
    end
    else if c = '\'' && !i + 1 < n && src.[!i + 1] = '\\' then begin
      let j = ref (!i + 2) in
      while !j < n && src.[!j] <> '\'' do
        incr j
      done;
      i := !j + 1 (* escaped char literal *)
    end
    else if is_symbol_char c then begin
      let start = !i in
      while !i < n && is_symbol_char src.[!i] do
        incr i
      done;
      emit (Op (String.sub src start (!i - start))) start
    end
    else begin
      emit (Punct c) !i;
      incr i
    end
  done;
  { path; tokens = Array.of_list (List.rev !toks); pragmas = !pragmas }

let waived t ~line ~rule =
  List.exists
    (fun p -> p.p_rule = rule && line >= p.p_from && line <= p.p_to)
    t.pragmas

(* A waiver for [rule] at [line] that also carries a justification. *)
let waived_justified t ~line ~rule =
  List.exists
    (fun p ->
      p.p_rule = rule && line >= p.p_from && line <= p.p_to && p.p_just <> None)
    t.pragmas

(* ------------------------------------------------------------------ *)
(* Declaration structure                                                *)

let item_heads =
  [
    "let"; "and"; "module"; "type"; "open"; "include"; "exception";
    "external"; "val"; "class";
  ]

let opens_block = function
  | "begin" | "struct" | "sig" | "object" | "do" -> true
  | _ -> false

let closes_block = function "end" | "done" -> true | _ -> false

(* Groups the token stream into toplevel items. A new item starts at a
   structure keyword sitting at column 0 with every bracket and
   begin/struct/sig/object block closed. Anything before the first such
   keyword is ignored (attribute headers etc.). *)
let items t =
  let acc = ref [] in
  let cur_start = ref (-1) in
  let depth = ref 0 in
  let flush upto =
    if !cur_start >= 0 && upto > !cur_start then begin
      let toks = Array.sub t.tokens !cur_start (upto - !cur_start) in
      let head =
        match toks.(0).kind with Keyword k -> k | _ -> assert false
      in
      let name =
        let rec find i =
          if i >= Array.length toks then None
          else
            match toks.(i).kind with
            | Ident n -> Some n
            | Keyword ("rec" | "nonrec") -> find (i + 1)
            | _ -> None
        in
        find 1
      in
      acc := { head; name; start_line = toks.(0).line; toks } :: !acc
    end
  in
  Array.iteri
    (fun idx tok ->
      (match tok.kind with
      | Keyword k when !depth = 0 && tok.col = 0 && List.mem k item_heads ->
        flush idx;
        cur_start := idx
      | _ -> ());
      match tok.kind with
      | Punct ('(' | '[' | '{') -> incr depth
      | Punct (')' | ']' | '}') -> if !depth > 0 then decr depth
      | Keyword k when opens_block k -> incr depth
      | Keyword k when closes_block k -> if !depth > 0 then decr depth
      | _ -> ())
    t.tokens;
  flush (Array.length t.tokens);
  List.rev !acc
