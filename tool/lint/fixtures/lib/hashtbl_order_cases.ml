(* [hashtbl-order] fixture: unspecified iteration order reaching results.
   Never compiled; exercised by test/test_lint.ml. *)

(* positive: raw iteration, no sorting anywhere in the declaration *)
let dump t acc_ref = Hashtbl.iter (fun k v -> acc_ref := (k, v) :: !acc_ref) t

(* positive: fold straight into a result *)
let keys t = Hashtbl.fold (fun k _ acc -> k :: acc) t []

(* negative: the sorted-iteration idiom *)
let sorted_keys t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t [] |> List.sort String.compare

(* negative: sorting before order-sensitive use, iteration feeding it *)
let sorted_pairs t =
  let pairs = Hashtbl.fold (fun k v acc -> (k, v) :: acc) t [] in
  List.sort (fun (a, _) (b, _) -> String.compare a b) pairs

(* negative: not a Hashtbl iteration at all *)
let list_iter xs f = List.iter f xs

(* waived: pragma on the same line *)
let restore t saved =
  Hashtbl.iter (fun k v -> Hashtbl.replace t k v) saved (* xmplint: allow hashtbl-order *)
