(* [packet-release] fixture, negative: the acquiring file also releases,
   so ownership stays balanced. Never compiled; exercised by
   test/test_lint.ml. *)

let bounce p =
  let reply = Packet.ack ~flow:1 ~subflow:0 ~src:1 ~dst:0 ~path:0 ~seq:0 in
  Packet.release p;
  reply

(* releases alone (a sink) are fine too *)
let drop p = Packet.release p
