(* [unit-suffix] fixture: mixed-unit arithmetic and comparisons.
   Never compiled; exercised by test/test_lint.ml. *)

let budget_ns = 5_000
let delay_us = 3
let horizon_s = 2.5
let size_bytes = 1460
let quota_pkts = 100
let line_rate = 1e9

(* positive: additive mix of ns and us with no conversion *)
let total_wait = budget_ns + delay_us

(* positive: comparing bytes against packets *)
let over_quota = size_bytes > quota_pkts

(* positive: seconds vs nanoseconds across a subtraction *)
let drift = horizon_s -. budget_ns

(* negative (scope limit): the rule is adjacency-based, so an unsuffixed
   call between the two operands hides the mismatch *)
let hidden_drift = horizon_s -. float_of_int budget_ns

(* negative: same unit on both sides *)
let sum_ns = budget_ns + budget_ns

(* negative: explicit conversion literal in the expression *)
let total_ns = budget_ns + (delay_us * 1000)

(* negative: scientific-literal conversion *)
let scaled_s = horizon_s +. (line_rate /. 1e9)

(* negative: conversion through a Time./Units. call *)
let elapsed_ns t = budget_ns + Time.to_ns t

(* negative: multiplicative operators convert by construction *)
let tx_time_s = float_of_int size_bytes /. line_rate

(* waived: pragma on the preceding line *)
(* xmplint: allow unit-suffix *)
let waived_mix = budget_ns + delay_us
