(* [mutable-global] fixture: toplevel mutable state in lib/.
   Never compiled; exercised by test/test_lint.ml which asserts exactly
   which declarations fire and which are waived. *)

(* positive: the classic counters that break under Domains *)
let hits = ref 0

let table = Hashtbl.create 16

let scratch = Buffer.create 80

let slots = Array.make 4 0

(* positive: record literal with a mutable field declared in this file *)
type cell = { mutable value : int; label : string }

let shared_cell = { value = 0; label = "seed" }

(* positive: type-annotated binding still counts *)
let annotated : int list ref = ref []

(* positive: a pragma without a justification does not waive this rule *)
(* xmplint: allow mutable-global *)
let unjustified = ref 0

(* negative: function bindings allocate per call *)
let make_counter () = ref 0

let fresh_table _unit = Hashtbl.create 8

(* negative: lambdas on the right-hand side *)
let thunk = fun () -> Buffer.create 32

(* negative: immutable toplevel values *)
let limit = 42

let names = [ "a"; "b" ]

let immutable_cell_label = "seed"

(* negative: atomics are the sanctioned domain-safe form *)
let safe_counter = Atomic.make 0

(* waived: justified pragma *)
(* xmplint: allow mutable-global — single-domain interning table, written
   only during startup before workers fork *)
let interned = Hashtbl.create 4
