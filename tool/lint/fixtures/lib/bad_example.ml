(* Deliberately broken file exercising every xmplint rule. It is never
   compiled; the fixture run in tool/lint's runtest rule asserts xmplint
   exits nonzero on it. *)

let start = Unix.gettimeofday ()

let elapsed () = Sys.time () -. start

let _ = Random.self_init ()

let jitter () = Random.float 1.0

let cast (x : int) : float = Obj.magic x

let expired t deadline = t.time > deadline

let same_stamp a b = a.send_time = b.send_time

let sort_stamps l = List.sort compare l

let debug msg = Printf.printf "debug: %s\n" msg

let shout = print_endline

let moan msg = Printf.eprintf "oops: %s\n" msg

let mutter = prerr_endline
