(* [packet-release] fixture, positive: acquires pooled packets but the
   file never mentions Packet.release. Never compiled; exercised by
   test/test_lint.ml. *)

let probe net =
  let p =
    Packet.data ~flow:1 ~subflow:0 ~src:0 ~dst:1 ~path:0 ~seq:0 ~ect:false
      ~cwr:false ~ts:0
  in
  Node.send net p

(* mentioning sizes must not count as an acquire *)
let tx_ns rate = Units.tx_time rate ~bytes:Packet.data_wire_bytes
