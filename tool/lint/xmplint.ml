(* xmplint — project-specific static analysis for the XMP simulator.

   The reproduction's figures depend on deterministic, seed-reproducible
   runs; this linter rejects the constructs that silently break that
   contract. It is pure OCaml over the stdlib (no parser dependencies): a
   comment/string-stripping pass followed by a line tokenizer, which is
   enough for every rule below because each rule is keyed on identifier
   usage rather than deep syntax.

   Rules (diagnostic ids in brackets):
   - [wall-clock]      no Unix.gettimeofday / Unix.time / Sys.time — the
                       simulator clock is the only time source (bench/ is
                       allowlisted: it times real executions).
   - [unix-in-lib]     no Unix.* at all inside lib/, bin/ or examples/
                       (lib/runner/runner.ml is allowlisted: it is the
                       process orchestrator, not simulator code).
   - [unseeded-random] only Random.State.* (explicitly seeded) is allowed;
                       Random.self_init and the global Random.* functions
                       are nondeterministic.
   - [obj-magic]       no Obj.magic, anywhere.
   - [poly-compare-time] no polymorphic =, <>, <, >, <=, >= adjacent to a
                       timestamp-ish identifier in lib/ — use Time.compare
                       (the rule skips lines that already go through an
                       X.compare function).
   - [bare-compare]    no bare polymorphic `compare` / Stdlib.compare /
                       Hashtbl.hash in lib/ — name the monomorphic one.
   - [stdout-in-lib]   no printing to stdout from lib/ except through the
                       sanctioned sinks (Xmp_stats.Table, Render); logs go
                       through Slog (stderr).
   - [direct-printf]   no ad-hoc stderr diagnostics (Printf.eprintf,
                       Format.eprintf, the prerr_ family) from lib/ —
                       route through Slog or the telemetry sink so output
                       stays structured and byte-stable (Slog itself, the
                       invariant checker and the runner's progress
                       reporting are allowlisted).
   - [missing-mli]     every lib/ module ships an interface.

   A finding can be waived with a pragma comment on the same line or the
   line above: (* xmplint: allow <rule-id> *). File-level waivers live in
   [file_allowlist] below. Exit status is 1 if any finding survives. *)

(* ------------------------------------------------------------------ *)
(* Diagnostics                                                         *)

type finding = { path : string; line : int; rule : string; msg : string }

let findings : finding list ref = ref []

let report ~path ~line ~rule msg =
  findings := { path; line; rule; msg } :: !findings

(* ------------------------------------------------------------------ *)
(* Comment / string stripping with pragma collection                   *)

type pragma = { p_line : int; p_rule : string }

(* Replaces comments, string literals and char literals with spaces
   (newlines preserved, so line/column structure survives), and records
   every "xmplint: allow <rule>" pragma with the line range its comment
   touches. *)
let strip src =
  let n = String.length src in
  let out = Bytes.of_string src in
  let pragmas = ref [] in
  let line = ref 1 in
  let blank i = if Bytes.get out i <> '\n' then Bytes.set out i ' ' in
  let record_pragma ~start_line ~stop_line text =
    let key = "xmplint: allow " in
    let klen = String.length key in
    let tlen = String.length text in
    let rec scan i =
      if i + klen <= tlen then
        if String.sub text i klen = key then begin
          let j = ref (i + klen) in
          let start = !j in
          while
            !j < tlen
            && (match text.[!j] with
               | 'a' .. 'z' | '0' .. '9' | '-' -> true
               | _ -> false)
          do
            incr j
          done;
          if !j > start then begin
            let rule = String.sub text start (!j - start) in
            for l = start_line to stop_line + 1 do
              pragmas := { p_line = l; p_rule = rule } :: !pragmas
            done
          end;
          scan !j
        end
        else scan (i + 1)
    in
    scan 0
  in
  let i = ref 0 in
  let bump c = if c = '\n' then incr line in
  (* skip a string literal body starting after the opening quote *)
  let rec skip_string i =
    if i >= n then i
    else
      match src.[i] with
      | '"' ->
        blank i;
        i + 1
      | '\\' when i + 1 < n ->
        blank i;
        bump src.[i + 1];
        blank (i + 1);
        skip_string (i + 2)
      | c ->
        bump c;
        blank i;
        skip_string (i + 1)
  in
  (* {id|...|id} quoted strings *)
  let skip_quoted i =
    (* i points just after '{'; read the delimiter id *)
    let j = ref i in
    while
      !j < n
      && (match src.[!j] with 'a' .. 'z' | '_' -> true | _ -> false)
    do
      incr j
    done;
    if !j < n && src.[!j] = '|' then begin
      let delim = String.sub src i (!j - i) in
      let close = "|" ^ delim ^ "}" in
      let clen = String.length close in
      let k = ref (!j + 1) in
      let stop = ref (-1) in
      while !stop < 0 && !k + clen <= n do
        if String.sub src !k clen = close then stop := !k + clen
        else begin
          bump src.[!k];
          incr k
        end
      done;
      let stop = if !stop < 0 then n else !stop in
      for x = i - 1 to stop - 1 do
        blank x
      done;
      Some stop
    end
    else None
  in
  let rec skip_comment depth i start_line =
    if i >= n then i
    else if i + 1 < n && src.[i] = '(' && src.[i + 1] = '*' then begin
      blank i;
      blank (i + 1);
      skip_comment (depth + 1) (i + 2) start_line
    end
    else if i + 1 < n && src.[i] = '*' && src.[i + 1] = ')' then begin
      blank i;
      blank (i + 1);
      if depth = 1 then i + 2 else skip_comment (depth - 1) (i + 2) start_line
    end
    else begin
      bump src.[i];
      blank i;
      skip_comment depth (i + 1) start_line
    end
  in
  while !i < n do
    let c = src.[!i] in
    if c = '"' then begin
      blank !i;
      i := skip_string (!i + 1)
    end
    else if c = '{' && !i + 1 < n then begin
      match skip_quoted (!i + 1) with
      | Some stop -> i := stop
      | None -> incr i
    end
    else if !i + 1 < n && c = '(' && src.[!i + 1] = '*' then begin
      let start_line = !line in
      let start = !i in
      let stop = skip_comment 1 (!i + 2) start_line in
      let stop = if stop > n then n else stop in
      blank start;
      blank (start + 1);
      record_pragma ~start_line ~stop_line:!line
        (String.sub src start (stop - start));
      i := stop
    end
    else if
      c = '\''
      && !i + 2 < n
      && src.[!i + 1] <> '\\'
      && src.[!i + 2] = '\''
    then begin
      (* simple char literal 'x' *)
      blank !i;
      blank (!i + 1);
      blank (!i + 2);
      i := !i + 3
    end
    else if c = '\'' && !i + 1 < n && src.[!i + 1] = '\\' then begin
      (* escaped char literal: blank until the closing quote *)
      let j = ref (!i + 2) in
      while !j < n && src.[!j] <> '\'' do
        incr j
      done;
      for x = !i to Stdlib.min !j (n - 1) do
        blank x
      done;
      i := !j + 1
    end
    else begin
      bump c;
      incr i
    end
  done;
  (Bytes.to_string out, !pragmas)

(* ------------------------------------------------------------------ *)
(* Tokenizer                                                           *)

type tok = Ident of string | Op of string | Num of string | Punct of char

let is_ident_start = function
  | 'a' .. 'z' | 'A' .. 'Z' | '_' -> true
  | _ -> false

let is_ident_char = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '\'' -> true
  | _ -> false

let is_symbol_char c = String.contains "!$%&*+-./:<=>?@^|~" c

let is_digit = function '0' .. '9' -> true | _ -> false

(* Tokenizes one (already stripped) line. Dotted module paths come out as
   a single Ident ("Time.compare"); maximal runs of symbol characters
   come out as a single Op ("->", ">=", "|>"), so a ">" token really is a
   comparison and not a fragment of an arrow or bind operator. *)
let tokenize line =
  let n = String.length line in
  let toks = ref [] in
  let i = ref 0 in
  while !i < n do
    let c = line.[!i] in
    if c = ' ' || c = '\t' || c = '\r' then incr i
    else if is_ident_start c then begin
      let start = !i in
      let continue = ref true in
      while !continue do
        while !i < n && is_ident_char line.[!i] do
          incr i
        done;
        (* absorb ".Ident" continuations into a dotted path *)
        if !i + 1 < n && line.[!i] = '.' && is_ident_start line.[!i + 1]
        then i := !i + 1
        else continue := false
      done;
      toks := Ident (String.sub line start (!i - start)) :: !toks
    end
    else if is_digit c then begin
      let start = !i in
      while
        !i < n
        && (is_digit line.[!i]
           || line.[!i] = '_'
           || line.[!i] = '.'
           || line.[!i] = 'x'
           || line.[!i] = 'e')
      do
        incr i
      done;
      toks := Num (String.sub line start (!i - start)) :: !toks
    end
    else if is_symbol_char c then begin
      let start = !i in
      while !i < n && is_symbol_char line.[!i] do
        incr i
      done;
      toks := Op (String.sub line start (!i - start)) :: !toks
    end
    else begin
      toks := Punct c :: !toks;
      incr i
    end
  done;
  Array.of_list (List.rev !toks)

(* ------------------------------------------------------------------ *)
(* Rule configuration                                                  *)

type category = Lib | Bin | Bench | Examples | Test | OtherDir

let category_of path =
  match String.index_opt path '/' with
  | None -> OtherDir
  | Some i -> (
    match String.sub path 0 i with
    | "lib" -> Lib
    | "bin" -> Bin
    | "bench" -> Bench
    | "examples" -> Examples
    | "test" -> Test
    | _ -> OtherDir)

(* File-level waivers: (rule, exact path) pairs. *)
let file_allowlist =
  [
    (* bench times real executions of the simulator *)
    ("wall-clock", "bench/main.ml");
    ("wall-clock", "bench/perf.ml");
    (* the scenario runner forks workers and times whole simulations; it
       is process orchestration, not simulator code *)
    ("wall-clock", "lib/runner/runner.ml");
    ("unix-in-lib", "lib/runner/runner.ml");
    (* the sanctioned stdout sinks *)
    ("stdout-in-lib", "lib/stats/table.ml");
    ("stdout-in-lib", "lib/experiments/render.ml");
    (* the runner replays captured scenario output to stdout *)
    ("stdout-in-lib", "lib/runner/runner.ml");
    (* the sanctioned stderr sinks: the structured logger itself, the
       invariant checker's Warn mode, and the runner's progress lines *)
    ("direct-printf", "lib/engine/slog.ml");
    ("direct-printf", "lib/check/invariant.ml");
    ("direct-printf", "lib/runner/runner.ml");
  ]

let file_allowed rule path = List.mem (rule, path) file_allowlist

let wall_clock_idents =
  [
    "Unix.gettimeofday";
    "Unix.time";
    "Unix.gmtime";
    "Unix.localtime";
    "Sys.time";
  ]

let stdout_idents =
  [
    "print_string";
    "print_endline";
    "print_newline";
    "print_char";
    "print_int";
    "print_float";
    "print_bytes";
    "Printf.printf";
    "Format.printf";
    "Format.print_string";
    "Format.print_newline";
    "Format.print_flush";
    "Stdlib.print_string";
    "Stdlib.print_endline";
    "Stdlib.print_newline";
    "Stdlib.print_char";
    "Stdlib.print_int";
    "Stdlib.print_float";
  ]

let stderr_idents =
  [
    "Printf.eprintf";
    "Format.eprintf";
    "prerr_string";
    "prerr_endline";
    "prerr_newline";
    "prerr_char";
    "prerr_int";
    "prerr_float";
    "prerr_bytes";
    "Stdlib.prerr_string";
    "Stdlib.prerr_endline";
    "Stdlib.prerr_newline";
  ]

let bare_compare_idents = [ "compare"; "Stdlib.compare"; "Hashtbl.hash" ]

let has_suffix s suf =
  let ls = String.length s and lf = String.length suf in
  ls >= lf && String.sub s (ls - lf) lf = suf

let last_component name =
  match String.rindex_opt name '.' with
  | None -> name
  | Some i -> String.sub name (i + 1) (String.length name - i - 1)

(* Identifiers that denote simulated timestamps (or RTTs, which are
   Time.t in the transport layer). Comparisons adjacent to one of these
   must go through Time.compare / Int.compare. *)
let timeish name =
  let last = last_component name in
  List.mem last
    [ "time"; "now"; "ts"; "deadline"; "interval"; "rtt"; "srtt"; "min_rtt" ]
  || has_suffix last "_time"
  || has_suffix last "_deadline"
  || has_suffix last "_at"
  || has_suffix last "_ts"

let comparison_ops = [ "="; "<>"; "<"; ">"; "<="; ">=" ]

(* ------------------------------------------------------------------ *)
(* Per-line checks                                                     *)

let check_idents ~path ~cat ~line_no toks =
  Array.iter
    (fun tok ->
      match tok with
      | Ident name ->
        if
          List.mem name wall_clock_idents
          && cat <> Bench
          && not (file_allowed "wall-clock" path)
        then
          report ~path ~line:line_no ~rule:"wall-clock"
            (Printf.sprintf
               "%s reads the wall clock; simulated time must come from \
                Sim.now"
               name);
        if name = "Obj.magic" then
          report ~path ~line:line_no ~rule:"obj-magic"
            "Obj.magic defeats the type system";
        if
          name = "Random.self_init"
          || name = "Random.State.make_self_init"
        then
          report ~path ~line:line_no ~rule:"unseeded-random"
            (name ^ " is nondeterministic; seed explicitly")
        else if
          String.length name > 7
          && String.sub name 0 7 = "Random."
          && not
               (name = "Random.State"
               || (String.length name > 13
                  && String.sub name 0 13 = "Random.State."))
        then
          report ~path ~line:line_no ~rule:"unseeded-random"
            (name
           ^ " uses the global RNG; use Random.State.* with an explicit \
              seed (Sim.rng)");
        if
          (cat = Lib || cat = Bin || cat = Examples)
          && String.length name > 5
          && String.sub name 0 5 = "Unix."
          && not (file_allowed "unix-in-lib" path)
          && not (file_allowed "wall-clock" path)
        then
          report ~path ~line:line_no ~rule:"unix-in-lib"
            (name ^ ": the Unix module is off-limits in simulator code");
        if
          cat = Lib
          && List.mem name stdout_idents
          && not (file_allowed "stdout-in-lib" path)
        then
          report ~path ~line:line_no ~rule:"stdout-in-lib"
            (name
           ^ " prints to stdout from lib/; route through Render/Table or \
              Slog");
        if
          cat = Lib
          && List.mem name stderr_idents
          && not (file_allowed "direct-printf" path)
        then
          report ~path ~line:line_no ~rule:"direct-printf"
            (name
           ^ " is an ad-hoc stderr diagnostic in lib/; route through Slog \
              or record telemetry instead")
      | Op _ | Num _ | Punct _ -> ())
    toks

let check_bare_compare ~path ~cat ~line_no toks =
  if cat = Lib then
    Array.iteri
      (fun i tok ->
        match tok with
        | Ident name when List.mem name bare_compare_idents ->
          let prev = if i > 0 then Some toks.(i - 1) else None in
          let next =
            if i + 1 < Array.length toks then Some toks.(i + 1) else None
          in
          let is_definition =
            match prev with
            | Some (Ident ("let" | "and" | "val" | "method" | "external")) ->
              true
            | Some (Op "~") -> true (* labelled argument *)
            | _ -> false
          in
          let is_field_init =
            match next with Some (Op ("=" | ":")) -> true | _ -> false
          in
          if not (is_definition || is_field_init) then
            report ~path ~line:line_no ~rule:"bare-compare"
              (name
             ^ " is polymorphic; use Time.compare / Int.compare / \
                Float.compare")
        | _ -> ())
      toks

(* A comparison operator already routed through X.compare: the compared
   value is the int result, e.g. [Time.compare a b < 0]. *)
let line_has_compare_call toks before =
  let found = ref false in
  Array.iteri
    (fun i tok ->
      if i < before then
        match tok with
        | Ident name when has_suffix name ".compare" -> found := true
        | _ -> ())
    toks;
  !found

let check_poly_compare ~path ~cat ~line_no toks =
  if cat = Lib then
    Array.iteri
      (fun i tok ->
        match tok with
        | Op op when List.mem op comparison_ops ->
          let prev = if i > 0 then Some toks.(i - 1) else None in
          let prev2 = if i > 1 then Some toks.(i - 2) else None in
          let next =
            if i + 1 < Array.length toks then Some toks.(i + 1) else None
          in
          let timeish_tok = function
            | Some (Ident name) -> timeish name
            | _ -> false
          in
          let dotted_timeish_tok = function
            | Some (Ident name) -> timeish name && String.contains name '.'
            | _ -> false
          in
          let option_tok = function
            | Some (Ident ("None" | "Some")) -> true
            | _ -> false
          in
          let binding =
            match prev2 with
            | Some (Ident ("let" | "and" | "rec" | "module" | "type")) ->
              true
            | _ -> false
          in
          let flagged =
            match op with
            | "=" | "<>" ->
              (* Equality on a timestamp (or Time.t option) field access.
                 Bare left identifiers are record-literal field
                 initialisers, not comparisons, so only dotted accesses
                 count. *)
              (not binding)
              && ((dotted_timeish_tok prev && (option_tok next || timeish_tok next))
                 || (dotted_timeish_tok next && option_tok prev))
            | _ ->
              (timeish_tok prev || timeish_tok next)
              && not (line_has_compare_call toks i)
          in
          if flagged then
            report ~path ~line:line_no ~rule:"poly-compare-time"
              (Printf.sprintf
                 "polymorphic %s next to a timestamp; use Time.compare \
                  (or Option.is_none/is_some)"
                 op)
        | _ -> ())
      toks

(* ------------------------------------------------------------------ *)
(* File / tree walking                                                 *)

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

let lint_file path =
  let cat = category_of path in
  let src = read_file path in
  let stripped, pragmas = strip src in
  let allowed_by_pragma line rule =
    List.exists (fun p -> p.p_line = line && p.p_rule = rule) pragmas
  in
  let before = List.length !findings in
  let lines = String.split_on_char '\n' stripped in
  List.iteri
    (fun idx line ->
      let line_no = idx + 1 in
      let toks = tokenize line in
      check_idents ~path ~cat ~line_no toks;
      check_bare_compare ~path ~cat ~line_no toks;
      check_poly_compare ~path ~cat ~line_no toks)
    lines;
  (* drop findings waived by pragmas *)
  let fresh, old =
    let rec split i acc = function
      | rest when i = 0 -> (acc, rest)
      | f :: rest -> split (i - 1) (f :: acc) rest
      | [] -> (acc, [])
    in
    split (List.length !findings - before) [] !findings
  in
  findings :=
    List.rev_append
      (List.rev
         (List.filter (fun f -> not (allowed_by_pragma f.line f.rule)) fresh))
      old

let rec walk dir acc =
  let entries = Array.to_list (Sys.readdir dir) in
  List.fold_left
    (fun acc name ->
      if name = "" || name.[0] = '.' || name.[0] = '_' then acc
      else begin
        let path = if dir = "." then name else Filename.concat dir name in
        if Sys.is_directory path then walk path acc
        else if
          Filename.check_suffix name ".ml" || Filename.check_suffix name ".mli"
        then path :: acc
        else acc
      end)
    acc
    (List.sort String.compare entries)

let check_mli_presence files =
  List.iter
    (fun path ->
      if category_of path = Lib && Filename.check_suffix path ".ml" then begin
        let mli = path ^ "i" in
        if not (List.mem mli files) then
          report ~path ~line:1 ~rule:"missing-mli"
            "lib/ module without an interface file"
      end)
    files

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)

let usage = "xmplint [--root DIR] DIR...\n"

let () =
  let root = ref "." in
  let dirs = ref [] in
  let rec parse = function
    | "--root" :: dir :: rest ->
      root := dir;
      parse rest
    | "--help" :: _ ->
      print_string usage;
      exit 0
    | dir :: rest ->
      dirs := dir :: !dirs;
      parse rest
    | [] -> ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  let dirs = List.rev !dirs in
  if dirs = [] then begin
    prerr_string usage;
    exit 2
  end;
  Sys.chdir !root;
  let files =
    List.concat_map
      (fun d ->
        if Sys.file_exists d && Sys.is_directory d then List.rev (walk d [])
        else begin
          Printf.eprintf "xmplint: no such directory: %s\n" d;
          exit 2
        end)
      dirs
  in
  List.iter lint_file files;
  check_mli_presence files;
  let all =
    List.sort
      (fun a b ->
        match String.compare a.path b.path with
        | 0 -> Int.compare a.line b.line
        | c -> c)
      !findings
  in
  List.iter
    (fun f ->
      Printf.printf "%s:%d: [%s] %s\n" f.path f.line f.rule f.msg)
    all;
  match all with
  | [] ->
    Printf.printf "xmplint: %d files clean\n" (List.length files);
    exit 0
  | _ ->
    Printf.printf "xmplint: %d finding(s)\n" (List.length all);
    exit 1
