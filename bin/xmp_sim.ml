(* xmp-sim: command-line front end for the XMP reproduction.

   Subcommands mirror the paper's experiments:
     xmp_sim fig1|fig4|fig6|fig7      — time-series testbed experiments
     xmp_sim matrix                   — fat-tree goodput matrix (Table 1)
     xmp_sim eval                     — one (scheme, pattern) run in detail
     xmp_sim sweep                    — scheme×pattern matrix through the
                                        parallel, cached scenario runner
     xmp_sim trace                    — one instrumented run, flight
                                        recording exported as CSV/JSONL
     xmp_sim faults                   — fat-tree run under an injected
                                        fault schedule (--fault/--loss/
                                        --fail-link also work on the
                                        figure and trace subcommands)
     xmp_sim coexist                  — Table 2
     xmp_sim ablation                 — parameter sweeps *)

open Cmdliner
module E = Xmp_experiments
module Runner = Xmp_runner.Runner
module Time = Xmp_engine.Time
module Scheme = Xmp_workload.Scheme
module Fault_spec = Xmp_engine.Fault_spec

(* ----- shared options ----- *)

let scale_t =
  let doc =
    "Time-scale factor applied to the paper's schedules (1.0 = the paper's \
     wall-clock timeline)."
  in
  Arg.(value & opt float 0.2 & info [ "scale" ] ~docv:"FACTOR" ~doc)

let beta_t =
  let doc = "XMP window-reduction divisor (paper default 4)." in
  Arg.(value & opt int 4 & info [ "beta" ] ~docv:"BETA" ~doc)

let k_arity_t =
  let doc = "Fat-tree arity $(docv) (even; 4 => 16 hosts, 8 => 128)." in
  Arg.(value & opt int 4 & info [ "k" ] ~docv:"K" ~doc)

let horizon_t =
  let doc = "Simulated horizon in seconds for fat-tree runs." in
  Arg.(value & opt float 2.0 & info [ "horizon" ] ~docv:"SECONDS" ~doc)

let seed_t =
  let doc = "Deterministic random seed." in
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc)

let marking_t =
  let doc = "Switch marking threshold K in packets." in
  Arg.(value & opt int 10 & info [ "mark" ] ~docv:"PKTS" ~doc)

let queue_t =
  let doc = "Switch queue capacity in packets." in
  Arg.(value & opt int 100 & info [ "queue" ] ~docv:"PKTS" ~doc)

let sack_t =
  let doc =
    "Enable SACK-based loss recovery on every flow (default: off, matching \
     the paper's RTO-dominated baselines)."
  in
  Arg.(value & flag & info [ "sack" ] ~doc)

let scheme_conv =
  let parse s =
    match Scheme.of_name s with
    | Some scheme -> Ok scheme
    | None ->
      Error (`Msg (Printf.sprintf "unknown scheme %S (try XMP-2, LIA-4, DCTCP, TCP, OLIA-2, BALIA-2, VENO-2, AMP-2)" s))
  in
  Arg.conv (parse, fun fmt s -> Format.pp_print_string fmt (Scheme.name s))

let scheme_t =
  let doc = "Transfer scheme for large flows." in
  Arg.(value & opt scheme_conv (Scheme.xmp 2) & info [ "scheme" ] ~docv:"SCHEME" ~doc)

let pattern_conv =
  let parse = function
    | "permutation" -> Ok E.Fatree_eval.Permutation
    | "random" -> Ok E.Fatree_eval.Random
    | "incast" -> Ok E.Fatree_eval.Incast
    | s -> Error (`Msg (Printf.sprintf "unknown pattern %S" s))
  in
  let print fmt p =
    Format.pp_print_string fmt
      (String.lowercase_ascii (E.Fatree_eval.pattern_name p))
  in
  Arg.conv (parse, print)

let pattern_t =
  let doc = "Traffic pattern: permutation, random or incast." in
  Arg.(
    value
    & opt pattern_conv E.Fatree_eval.Permutation
    & info [ "pattern" ] ~docv:"PATTERN" ~doc)

(* ----- fault-injection options (shared by the figure, trace and faults
   subcommands) ----- *)

let fault_conv =
  let parse s =
    match Fault_spec.spec_of_string s with
    | spec -> Ok spec
    | exception Invalid_argument m -> Error (`Msg m)
  in
  Arg.conv
    (parse, fun fmt s -> Format.pp_print_string fmt (Fault_spec.spec_to_string s))

let fault_t =
  let doc =
    "Inject a fault (repeatable). Canonical forms: $(b,down@T@TARGET), \
     $(b,up@T@TARGET), $(b,loss@T..T@TARGET@bern=P[@any|data|ack]) or \
     $(b,...@ge=PB,PE,LG,LB[@...]), $(b,blackout@T..T@TARGET), \
     $(b,pause@T..T@host=ID). TARGET is $(b,all), $(b,link=NAME) or \
     $(b,tag=NAME); times are integer ns, $(b,1.5s), $(b,250ms), $(b,40us) \
     or $(b,inf)."
  in
  Arg.(value & opt_all fault_conv [] & info [ "fault" ] ~docv:"SPEC" ~doc)

let fail_link_t =
  let doc =
    "Fail link $(b,NAME) — and, for $(b,A->B) names, its reverse direction \
     — at time $(b,T), restoring it at $(b,T2) when given."
  in
  Arg.(value & opt_all string [] & info [ "fail-link" ] ~docv:"NAME@T[:T2]" ~doc)

let loss_t =
  let doc =
    "Bernoulli drop probability applied to every packet of the \
     $(b,--loss-on) target for the whole run."
  in
  Arg.(value & opt (some float) None & info [ "loss" ] ~docv:"P" ~doc)

let loss_on_t =
  let doc = "Target of $(b,--loss): $(b,all), $(b,link=NAME) or $(b,tag=NAME)." in
  Arg.(value & opt string "all" & info [ "loss-on" ] ~docv:"TARGET" ~doc)

let loss_filter_t =
  let doc = "Packets $(b,--loss) applies to: $(b,any), $(b,data) or $(b,ack)." in
  Arg.(
    value
    & opt (enum [ ("any", "any"); ("data", "data"); ("ack", "ack") ]) "any"
    & info [ "loss-filter" ] ~docv:"KIND" ~doc)

let fault_seed_t =
  let doc = "Seed of the fault schedule's own random stream." in
  Arg.(value & opt int 0 & info [ "fault-seed" ] ~docv:"SEED" ~doc)

let reverse_link_name name =
  let n = String.length name in
  let rec find i =
    if i + 1 >= n then None
    else if name.[i] = '-' && name.[i + 1] = '>' then Some i
    else find (i + 1)
  in
  Option.map
    (fun i -> String.sub name (i + 2) (n - i - 2) ^ "->" ^ String.sub name 0 i)
    (find 0)

let fail_link_specs s =
  match String.index_opt s '@' with
  | None ->
    invalid_arg (Printf.sprintf "--fail-link %S: expected NAME@T[:T2]" s)
  | Some i ->
    let name = String.sub s 0 i in
    let times = String.sub s (i + 1) (String.length s - i - 1) in
    let down_t, up_t =
      match String.index_opt times ':' with
      | None -> (times, None)
      | Some j ->
        ( String.sub times 0 j,
          Some (String.sub times (j + 1) (String.length times - j - 1)) )
    in
    let names =
      name
      ::
      (match reverse_link_name name with
      | Some r when not (String.equal r name) -> [ r ]
      | Some _ | None -> [])
    in
    List.concat_map
      (fun n ->
        Fault_spec.spec_of_string (Printf.sprintf "down@%s@link=%s" down_t n)
        ::
        (match up_t with
        | None -> []
        | Some t ->
          [ Fault_spec.spec_of_string (Printf.sprintf "up@%s@link=%s" t n) ]))
      names

let build_faults specs fail_links loss loss_on loss_filter seed =
  try
    let loss_specs =
      match loss with
      | None -> []
      | Some p ->
        [
          Fault_spec.spec_of_string
            (Printf.sprintf "loss@0..inf@%s@bern=%g@%s" loss_on p loss_filter);
        ]
    in
    let all = specs @ List.concat_map fail_link_specs fail_links @ loss_specs in
    match all with [] -> Fault_spec.empty | _ -> Fault_spec.create ~seed all
  with Invalid_argument m ->
    prerr_endline ("xmp_sim: " ^ m);
    exit 2

let faults_t =
  Term.(
    const build_faults $ fault_t $ fail_link_t $ loss_t $ loss_on_t
    $ loss_filter_t $ fault_seed_t)

let base_of ?(sack = false) k horizon seed marking queue beta =
  {
    E.Fatree_eval.default_base with
    k;
    horizon = Time.sec horizon;
    seed;
    marking_threshold = marking;
    queue_pkts = queue;
    beta;
    sack;
  }

(* ----- subcommands ----- *)

let fig1_cmd =
  let run scale faults = E.Fig1.run_and_print_all ~scale ~faults () in
  Cmd.v
    (Cmd.info "fig1" ~doc:"Figure 1: DCTCP vs halving-cwnd on one bottleneck")
    Term.(const run $ scale_t $ faults_t)

let fig4_cmd =
  let run scale beta faults =
    E.Render.heading "Figure 4 (single panel)";
    E.Fig4.print (E.Fig4.run ~scale ~faults ~beta ())
  in
  Cmd.v
    (Cmd.info "fig4" ~doc:"Figure 4: traffic shifting on testbed 3(a)")
    Term.(const run $ scale_t $ beta_t $ faults_t)

let fig6_cmd =
  let run scale beta faults =
    E.Render.heading "Figure 6 (single panel)";
    E.Fig6.print (E.Fig6.run ~scale ~faults ~beta ())
  in
  Cmd.v
    (Cmd.info "fig6" ~doc:"Figure 6: fairness on testbed 3(b)")
    Term.(const run $ scale_t $ beta_t $ faults_t)

let fig7_cmd =
  let run scale beta mark faults =
    E.Render.heading "Figure 7 (single panel)";
    E.Fig7.print (E.Fig7.run ~scale ~faults ~beta ~k:mark ())
  in
  Cmd.v
    (Cmd.info "fig7" ~doc:"Figure 7: rate compensation on the ring")
    Term.(const run $ scale_t $ beta_t $ marking_t $ faults_t)

let matrix_cmd =
  let run k horizon seed mark queue beta =
    let base = base_of k horizon seed mark queue beta in
    E.Fatree_eval.print_table1 base;
    E.Fatree_eval.print_table3 base
  in
  Cmd.v
    (Cmd.info "matrix" ~doc:"Tables 1 and 3: the fat-tree goodput matrix")
    Term.(
      const run $ k_arity_t $ horizon_t $ seed_t $ marking_t $ queue_t
      $ beta_t)

let print_eval base scheme pattern =
  let r = E.Fatree_eval.result base scheme pattern in
  let m = r.Xmp_workload.Driver.metrics in
  E.Render.heading
    (Printf.sprintf "%s under %s" (Scheme.name scheme)
       (E.Fatree_eval.pattern_name pattern));
  Printf.printf "large flows recorded: %d\n"
    (Xmp_workload.Metrics.n_completed_flows m);
  Printf.printf "mean goodput: %.1f Mbps\n"
    (Xmp_workload.Metrics.mean_goodput_bps m /. 1e6);
  let jobs = Xmp_workload.Metrics.job_times_ms m in
  if not (Xmp_stats.Distribution.is_empty jobs) then
    Printf.printf "jobs: %d, mean completion %.1f ms, >300ms %.1f%%\n"
      (Xmp_stats.Distribution.count jobs)
      (Xmp_stats.Distribution.mean jobs)
      (100. *. Xmp_workload.Metrics.jobs_over_ms m 300.);
  E.Render.subheading "link utilization by layer";
  E.Render.five_number_table ~value_header:"layer"
    (Xmp_workload.Driver.utilization_by_layer r);
  E.Render.subheading "RTT by locality (ms)";
  E.Render.five_number_table ~value_header:"locality"
    (List.map
       (fun (loc, d) -> (Xmp_net.Fat_tree.locality_name loc, d))
       (Xmp_workload.Metrics.rtts_by_locality m));
  Printf.printf "events executed: %d\n" r.Xmp_workload.Driver.events

let eval_cmd =
  let run k horizon seed mark queue beta sack scheme pattern =
    let base = base_of ~sack k horizon seed mark queue beta in
    print_eval base scheme pattern
  in
  Cmd.v
    (Cmd.info "eval" ~doc:"One fat-tree run in detail")
    Term.(
      const run $ k_arity_t $ horizon_t $ seed_t $ marking_t $ queue_t
      $ beta_t $ sack_t $ scheme_t $ pattern_t)

(* ----- sweep: the scenario runner exposed for user experiments ----- *)

let jobs_t =
  let doc = "Number of worker processes for the scenario runner." in
  Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let no_cache_t =
  let doc = "Ignore and do not write _xmp_cache/ result entries." in
  Arg.(value & flag & info [ "no-cache" ] ~doc)

(* Commas separate both list elements and scheme tunables
   ("XMP-2:beta=6,k=10"), so a plain [Arg.list] would cut tunable lists
   apart. Split on commas, then fold bare "key=val" segments back onto
   the scheme they qualify: a new scheme either has no '=' at all or
   carries the "NAME-n:" prefix, while a continued tunable has '=' and
   no ':'. *)
let scheme_list_conv =
  let parse s =
    let segments = String.split_on_char ',' s in
    let continues seg =
      String.contains seg '=' && not (String.contains seg ':')
    in
    let grouped =
      List.fold_left
        (fun acc seg ->
          match acc with
          | prev :: rest when continues seg -> (prev ^ "," ^ seg) :: rest
          | _ -> seg :: acc)
        [] segments
    in
    let rec convert acc = function
      | [] -> Ok (List.rev acc)
      | name :: rest -> (
        match Arg.conv_parser scheme_conv name with
        | Ok scheme -> convert (scheme :: acc) rest
        | Error _ as e -> e)
    in
    convert [] (List.rev grouped)
  in
  let print fmt schemes =
    Format.pp_print_string fmt
      (String.concat "," (List.map Scheme.name schemes))
  in
  Arg.conv (parse, print)

let schemes_t =
  let doc = "Comma-separated transfer schemes to sweep." in
  Arg.(
    value
    & opt scheme_list_conv
        [ Scheme.dctcp; Scheme.lia 4; Scheme.xmp 2; Scheme.xmp 4 ]
    & info [ "schemes" ] ~docv:"SCHEMES" ~doc)

let patterns_t =
  let doc = "Comma-separated traffic patterns to sweep." in
  Arg.(
    value
    & opt (list pattern_conv)
        [ E.Fatree_eval.Permutation; E.Fatree_eval.Random;
          E.Fatree_eval.Incast ]
    & info [ "patterns" ] ~docv:"PATTERNS" ~doc)

let sweep_cmd =
  let run k horizon seed mark queue beta sack schemes patterns jobs no_cache =
    let base = base_of ~sack k horizon seed mark queue beta in
    let scenarios =
      List.concat_map
        (fun scheme ->
          List.map
            (fun pattern ->
              let pname =
                String.lowercase_ascii (E.Fatree_eval.pattern_name pattern)
              in
              Xmp_runner.Scenario.create
                ~name:
                  (Printf.sprintf "eval:%s/%s" (Scheme.name scheme) pname)
                ~descr:"one (scheme, pattern) fat-tree run in detail"
                ~params:
                  (("scheme", Scheme.name scheme)
                  :: ("pattern", pname)
                  :: E.Scenarios.base_params base)
                (fun () -> print_eval base scheme pattern))
            patterns)
        schemes
    in
    let cache =
      if no_cache then Runner.No_cache
      else Runner.Cache_dir Xmp_runner.Cache.default_dir
    in
    ignore (Runner.run_and_print ~jobs ~cache scenarios)
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:
         "Scheme-by-pattern evaluation matrix, run across worker processes \
          with digest-keyed result caching")
    Term.(
      const run $ k_arity_t $ horizon_t $ seed_t $ marking_t $ queue_t
      $ beta_t $ sack_t $ schemes_t $ patterns_t $ jobs_t $ no_cache_t)

(* ----- trace: one instrumented experiment, recording exported ----- *)

module Tel = Xmp_telemetry

let experiment_t =
  let doc =
    "Experiment to trace: $(b,fig1), $(b,fig4), $(b,fig6) or $(b,fig7)."
  in
  Arg.(
    value
    & opt (enum [ ("fig1", `Fig1); ("fig4", `Fig4); ("fig6", `Fig6); ("fig7", `Fig7) ]) `Fig4
    & info [ "experiment" ] ~docv:"NAME" ~doc)

let event_kind_conv =
  let parse s =
    if List.mem s Tel.Event.all_kinds then Ok s
    else
      Error
        (`Msg
           (Printf.sprintf "unknown event kind %S (known: %s)" s
              (String.concat ", " Tel.Event.all_kinds)))
  in
  Arg.conv (parse, Format.pp_print_string)

let events_filter_t =
  let doc =
    "Comma-separated event kinds to keep (e.g. $(b,ce-mark,cwnd-change)); \
     default: all."
  in
  Arg.(
    value
    & opt (some (list event_kind_conv)) None
    & info [ "events" ] ~docv:"KINDS" ~doc)

let format_t =
  let doc = "Stdout format when $(b,--out) is absent: $(b,csv) or $(b,jsonl)." in
  Arg.(
    value
    & opt (enum [ ("csv", `Csv); ("jsonl", `Jsonl) ]) `Csv
    & info [ "format" ] ~docv:"FORMAT" ~doc)

let out_t =
  let doc =
    "Write $(docv).csv and $(docv).jsonl (the event recording) plus \
     $(docv).metrics.csv and $(docv).metrics.jsonl (the metrics registry) \
     instead of printing to stdout."
  in
  Arg.(value & opt (some string) None & info [ "out" ] ~docv:"PREFIX" ~doc)

let capacity_t =
  let doc = "Flight-recorder capacity in events (oldest are evicted)." in
  Arg.(value & opt int 65536 & info [ "capacity" ] ~docv:"EVENTS" ~doc)

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents)

let trace_cmd =
  let run experiment scale beta mark faults events format out capacity =
    let sink = Tel.Sink.create ~recorder_capacity:capacity () in
    (match experiment with
    | `Fig1 ->
      ignore
        (E.Fig1.run ~scale ~telemetry:sink ~faults
           { E.Fig1.dctcp = true; k = mark })
    | `Fig4 -> ignore (E.Fig4.run ~scale ~beta ~telemetry:sink ~faults ())
    | `Fig6 -> ignore (E.Fig6.run ~scale ~beta ~telemetry:sink ~faults ())
    | `Fig7 ->
      ignore (E.Fig7.run ~scale ~beta ~k:mark ~telemetry:sink ~faults ()));
    let recorder = Tel.Sink.recorder sink in
    let registry = Tel.Sink.registry sink in
    let keep =
      Option.map
        (fun kinds ev -> List.mem (Tel.Event.kind ev) kinds)
        events
    in
    let events_csv = Tel.Export.events_csv ?keep recorder in
    let events_jsonl = Tel.Export.events_jsonl ?keep recorder in
    (match out with
    | Some prefix ->
      write_file (prefix ^ ".csv") events_csv;
      write_file (prefix ^ ".jsonl") events_jsonl;
      write_file (prefix ^ ".metrics.csv") (Tel.Export.metrics_csv registry);
      write_file (prefix ^ ".metrics.jsonl")
        (Tel.Export.metrics_jsonl registry);
      Printf.eprintf "[trace] wrote %s.{csv,jsonl,metrics.csv,metrics.jsonl}\n"
        prefix
    | None -> (
      match format with
      | `Csv -> print_string events_csv
      | `Jsonl -> print_string events_jsonl));
    Printf.eprintf
      "[trace] %d events retained (%d recorded, %d evicted), %d metrics\n%!"
      (Tel.Recorder.length recorder)
      (Tel.Recorder.total recorder)
      (Tel.Recorder.dropped recorder)
      (Tel.Registry.cardinal registry)
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run one experiment with telemetry enabled and export its flight \
          recording (and metrics registry) as CSV / JSONL")
    Term.(
      const run $ experiment_t $ scale_t $ beta_t $ marking_t $ faults_t
      $ events_filter_t $ format_t $ out_t $ capacity_t)

(* ----- faults: one fat-tree run under an injected fault schedule ----- *)

let list_links_t =
  let doc =
    "Print the fat-tree's link names (the $(b,link=NAME) targets) and exit."
  in
  Arg.(value & flag & info [ "list-links" ] ~doc)

let faults_cmd =
  let run k horizon seed mark queue beta sack scheme pattern faults list_links =
    if list_links then begin
      let sim = Xmp_engine.Sim.create () in
      let net = Xmp_net.Network.create sim in
      let disc () =
        Xmp_net.Queue_disc.create
          ~policy:(Xmp_net.Queue_disc.Threshold_mark mark) ~capacity_pkts:queue
      in
      ignore (Xmp_net.Fat_tree.create ~net ~k ~disc ());
      List.iter
        (fun l -> print_endline (Xmp_net.Link.name l))
        (Xmp_net.Network.links net)
    end
    else
      let base =
        { (base_of ~sack k horizon seed mark queue beta) with
          E.Fatree_eval.faults }
      in
      E.Fatree_eval.print_fault_eval base scheme pattern
  in
  Cmd.v
    (Cmd.info "faults"
       ~doc:
         "One fat-tree run under an injected fault schedule, with a \
          telemetry summary (flows, goodput, injected drops, \
          link-down/link-up/injected-drop events)")
    Term.(
      const run $ k_arity_t $ horizon_t $ seed_t $ marking_t $ queue_t
      $ beta_t $ sack_t $ scheme_t $ pattern_t $ faults_t $ list_links_t)

(* ----- workload: open-loop FCT-slowdown runs at paper scale ----- *)

module Open_loop = Xmp_workload.Open_loop
module Flow_size = Xmp_workload.Flow_size

let cdf_conv =
  let parse = function
    | "websearch" -> Ok Flow_size.web_search
    | "datamining" -> Ok Flow_size.data_mining
    | path when Sys.file_exists path -> (
      match Flow_size.of_file path with
      | t -> Ok t
      | exception Invalid_argument m -> Error (`Msg m))
    | s ->
      Error
        (`Msg
           (Printf.sprintf
              "unknown CDF %S (websearch, datamining, or a file of \
               \"size_segments cum_prob\" lines)"
              s))
  in
  Arg.conv (parse, fun fmt t -> Format.pp_print_string fmt (Flow_size.name t))

let cdf_t =
  let doc =
    "Flow-size distribution: $(b,websearch), $(b,datamining) or a file of \
     $(i,size_segments cum_prob) lines."
  in
  Arg.(value & opt cdf_conv Flow_size.web_search & info [ "cdf" ] ~docv:"CDF" ~doc)

let wl_k_t =
  let doc = "Fat-tree arity $(docv) (even; 8 => 128 hosts)." in
  Arg.(value & opt int 8 & info [ "k" ] ~docv:"K" ~doc)

let load_t =
  let doc = "Offered load as a fraction of the host line rate." in
  Arg.(value & opt float 0.4 & info [ "load" ] ~docv:"FRACTION" ~doc)

let size_scale_t =
  let doc =
    "Factor applied to the CDF's sizes (default 1/32, the repo-wide paper \
     scaling)."
  in
  Arg.(
    value & opt float (1. /. 32.) & info [ "size-scale" ] ~docv:"FACTOR" ~doc)

let wl_horizon_t =
  let doc = "Arrival horizon in simulated seconds." in
  Arg.(value & opt float 0.1 & info [ "horizon" ] ~docv:"SECONDS" ~doc)

let drain_t =
  let doc = "Extra simulated seconds for in-flight flows to finish." in
  Arg.(value & opt float 0.2 & info [ "drain" ] ~docv:"SECONDS" ~doc)

let flows_t =
  let doc = "Stop generating after $(docv) flows (before the horizon)." in
  Arg.(value & opt (some int) None & info [ "flows" ] ~docv:"N" ~doc)

let domains_t =
  let doc = "Worker domains for the pod-sharded run (never changes results)." in
  Arg.(value & opt int 1 & info [ "domains" ] ~docv:"N" ~doc)

let wl_out_t =
  let doc =
    "Write $(docv).fct.csv (per-bucket slowdown summary) and $(docv).cdf.csv \
     (slowdown CDF points)."
  in
  Arg.(value & opt (some string) None & info [ "out" ] ~docv:"PREFIX" ~doc)

let workload_cmd =
  let run k seed scheme cdf size_scale load horizon drain flows domains mark
      queue beta sack out =
    let sizes =
      if size_scale = 1. then cdf else Flow_size.scaled cdf size_scale
    in
    let config =
      {
        Open_loop.default_config with
        Open_loop.k;
        seed;
        scheme;
        sizes;
        load;
        horizon = Time.sec horizon;
        drain = Time.sec drain;
        max_flows = flows;
        marking_threshold = mark;
        queue_pkts = queue;
        beta;
        sack;
      }
    in
    let r = Open_loop.run ~config ~domains () in
    let m = r.Open_loop.metrics in
    Printf.printf
      "workload %s: k=%d seed=%d load=%.3f cdf=%s mean_size=%.1f segments\n"
      (Scheme.name scheme) k seed load (Flow_size.name sizes)
      (Flow_size.mean_segments sizes);
    Printf.printf
      "flows: %d launched, %d completed, %d truncated (horizon %.3fs + drain %.3fs)\n"
      r.Open_loop.launched r.Open_loop.completed r.Open_loop.truncated horizon
      drain;
    Printf.printf "events executed: %d (portal mail %d)\n" r.Open_loop.events
      r.Open_loop.mail;
    print_string (Xmp_workload.Metrics.fct_summary_csv m);
    match out with
    | Some prefix ->
      write_file (prefix ^ ".fct.csv") (Xmp_workload.Metrics.fct_summary_csv m);
      write_file (prefix ^ ".cdf.csv") (Xmp_workload.Metrics.fct_cdf_csv m);
      Printf.eprintf "[workload] wrote %s.fct.csv and %s.cdf.csv\n" prefix
        prefix
    | None -> ()
  in
  Cmd.v
    (Cmd.info "workload"
       ~doc:
         "Open-loop workload on the pod-sharded fat tree: Poisson arrivals, \
          empirical flow sizes, FCT-slowdown CDFs")
    Term.(
      const run $ wl_k_t $ seed_t $ scheme_t $ cdf_t $ size_scale_t $ load_t
      $ wl_horizon_t $ drain_t $ flows_t $ domains_t $ marking_t $ queue_t
      $ beta_t $ sack_t $ wl_out_t)

(* ----- wan: open-loop runs on a bridged two-DC WAN topology ----- *)

module Wan = Xmp_net.Wan
module Units = Xmp_net.Units

(* "ft:K" (fat tree) or "ls:LEAVES,SPINES,HOSTS" (leaf-spine) *)
let dc_spec_conv =
  let parse s =
    match String.split_on_char ':' s with
    | [ "ft"; k ] -> (
      match int_of_string_opt k with
      | Some k when k >= 2 && k mod 2 = 0 -> Ok (Wan.Fat_tree_dc { k })
      | _ ->
        Error (`Msg (Printf.sprintf "bad fat-tree arity %S (even, >= 2)" k)))
    | [ "ls"; dims ] -> (
      match
        List.map int_of_string_opt (String.split_on_char ',' dims)
      with
      | [ Some leaves; Some spines; Some hosts_per_leaf ]
        when leaves >= 1 && spines >= 1 && hosts_per_leaf >= 1 ->
        Ok (Wan.Leaf_spine_dc { leaves; spines; hosts_per_leaf })
      | _ -> Error (`Msg (Printf.sprintf "bad leaf-spine dims %S" dims)))
    | _ ->
      Error
        (`Msg
           (Printf.sprintf
              "bad DC spec %S (use ft:K or ls:LEAVES,SPINES,HOSTS)" s))
  in
  let print fmt = function
    | Wan.Fat_tree_dc { k } -> Format.fprintf fmt "ft:%d" k
    | Wan.Leaf_spine_dc { leaves; spines; hosts_per_leaf } ->
      Format.fprintf fmt "ls:%d,%d,%d" leaves spines hosts_per_leaf
  in
  Arg.conv (parse, print)

let left_dc_t =
  let doc = "Left data center: $(b,ft:K) or $(b,ls:LEAVES,SPINES,HOSTS)." in
  Arg.(
    value
    & opt dc_spec_conv (Wan.Fat_tree_dc { k = 4 })
    & info [ "left" ] ~docv:"DC" ~doc)

let right_dc_t =
  let doc = "Right data center: $(b,ft:K) or $(b,ls:LEAVES,SPINES,HOSTS)." in
  Arg.(
    value
    & opt dc_spec_conv (Wan.Fat_tree_dc { k = 4 })
    & info [ "right" ] ~docv:"DC" ~doc)

(* DELAY_MS[:RATE_GBPS[:QUEUE_PKTS[:MARK_PKTS]]] — MARK_PKTS of 0 means
   a deep droptail border queue (no marking) *)
let trunk_conv =
  let parse s =
    let fields = String.split_on_char ':' s in
    let bad () =
      Error
        (`Msg
           (Printf.sprintf
              "bad trunk spec %S (use DELAY_MS[:RATE_GBPS[:QUEUE_PKTS[:MARK_PKTS]]])"
              s))
    in
    match fields with
    | delay_ms :: rest -> (
      match (float_of_string_opt delay_ms, rest) with
      | (None | Some 0.), _ -> bad ()
      | Some ms, _ when ms < 0. -> bad ()
      | Some ms, rest -> (
        let delay = Time.of_float_s (ms /. 1000.) in
        match rest with
        | [] -> Ok (Wan.trunk ~delay ())
        | [ gbps ] -> (
          match float_of_string_opt gbps with
          | Some g when g > 0. -> Ok (Wan.trunk ~delay ~rate:(Units.gbps g) ())
          | _ -> bad ())
        | [ gbps; queue ] -> (
          match (float_of_string_opt gbps, int_of_string_opt queue) with
          | Some g, Some q when g > 0. && q >= 1 ->
            Ok (Wan.trunk ~delay ~rate:(Units.gbps g) ~queue_pkts:q ())
          | _ -> bad ())
        | [ gbps; queue; mark ] -> (
          match
            ( float_of_string_opt gbps,
              int_of_string_opt queue,
              int_of_string_opt mark )
          with
          | Some g, Some q, Some 0 when g > 0. && q >= 1 ->
            Ok (Wan.trunk ~delay ~rate:(Units.gbps g) ~queue_pkts:q ())
          | Some g, Some q, Some m when g > 0. && q >= 1 && m >= 1 ->
            Ok
              (Wan.trunk ~delay ~rate:(Units.gbps g) ~queue_pkts:q
                 ~marking_threshold:m ())
          | _ -> bad ())
        | _ -> bad ()))
    | [] -> bad ()
  in
  let print fmt (t : Wan.trunk) =
    Format.fprintf fmt "%g:%g:%d:%d"
      (float_of_int t.Wan.trunk_delay /. 1e6)
      (Units.to_gbps t.Wan.trunk_rate)
      t.Wan.trunk_queue_pkts
      (match t.Wan.trunk_marking_threshold with None -> 0 | Some m -> m)
  in
  Arg.conv (parse, print)

let trunks_t =
  let doc =
    "Border trunk (repeatable): \
     $(b,DELAY_MS[:RATE_GBPS[:QUEUE_PKTS[:MARK_PKTS]]]); $(b,MARK_PKTS) 0 \
     means deep droptail. Default: one 40 ms, 10 Gbps trunk."
  in
  Arg.(value & opt_all trunk_conv [] & info [ "trunk" ] ~docv:"SPEC" ~doc)

let cross_dc_t =
  let doc = "Fraction of arrivals aimed at the other data center." in
  Arg.(value & opt float 0.5 & info [ "cross-dc" ] ~docv:"FRACTION" ~doc)

let rto_min_ms_t =
  let doc =
    "RTO floor in milliseconds (default: half the slowest zero-load \
     cross-DC RTT, at least 1 ms)."
  in
  Arg.(value & opt (some float) None & info [ "rto-min" ] ~docv:"MS" ~doc)

let goodput_csv m =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    "locality,flows,mean_mbps,p50_mbps,p90_mbps,max_mbps\n";
  List.iter
    (fun (loc, d) ->
      if not (Xmp_stats.Distribution.is_empty d) then
        Buffer.add_string buf
          (Printf.sprintf "%s,%d,%.6g,%.6g,%.6g,%.6g\n"
             (Xmp_net.Fat_tree.locality_name loc)
             (Xmp_stats.Distribution.count d)
             (Xmp_stats.Distribution.mean d /. 1e6)
             (Xmp_stats.Distribution.percentile d 50. /. 1e6)
             (Xmp_stats.Distribution.percentile d 90. /. 1e6)
             (Xmp_stats.Distribution.max d /. 1e6)))
    (Xmp_workload.Metrics.goodputs_by_locality m);
  Buffer.contents buf

let wan_cmd =
  let run left right trunks cross_dc seed scheme cdf size_scale load horizon
      drain flows domains mark queue beta sack rto_min_ms out =
    let trunks = if trunks = [] then [ Wan.trunk () ] else trunks in
    let sizes =
      if size_scale = 1. then cdf else Flow_size.scaled cdf size_scale
    in
    let rto_min =
      match rto_min_ms with
      | Some ms -> Time.of_float_s (ms /. 1000.)
      | None ->
        Stdlib.max (Time.ms 1)
          (Wan.max_rtt_no_queue_of ~left ~right ~trunks / 2)
    in
    let config =
      {
        Open_loop.default_config with
        Open_loop.seed;
        scheme = Scheme.with_rto ~rto_min scheme;
        sizes;
        load;
        horizon = Time.sec horizon;
        drain = Time.sec drain;
        max_flows = flows;
        marking_threshold = mark;
        queue_pkts = queue;
        beta;
        rto_min;
        sack;
        cross_dc;
      }
    in
    let r = Open_loop.run_wan ~config ~domains ~left ~right ~trunks () in
    let m = r.Open_loop.metrics in
    Printf.printf
      "wan %s: %d+%d hosts, %d trunk(s), cross-dc %.3f, rto_min %.1f ms\n"
      (Scheme.name config.Open_loop.scheme)
      (Wan.dc_n_hosts left) (Wan.dc_n_hosts right) (List.length trunks)
      cross_dc
      (float_of_int rto_min /. 1e6);
    Printf.printf
      "flows: %d launched, %d completed, %d truncated (horizon %.3fs + \
       drain %.3fs)\n"
      r.Open_loop.launched r.Open_loop.completed r.Open_loop.truncated horizon
      drain;
    Printf.printf "events executed: %d (portal mail %d)\n" r.Open_loop.events
      r.Open_loop.mail;
    print_string (Xmp_workload.Metrics.fct_summary_csv m);
    match out with
    | Some prefix ->
      write_file (prefix ^ ".fct.csv") (Xmp_workload.Metrics.fct_summary_csv m);
      write_file (prefix ^ ".cdf.csv") (Xmp_workload.Metrics.fct_cdf_csv m);
      write_file (prefix ^ ".goodput.csv") (goodput_csv m);
      Printf.eprintf "[wan] wrote %s.{fct,cdf,goodput}.csv\n" prefix
    | None -> ()
  in
  Cmd.v
    (Cmd.info "wan"
       ~doc:
         "Open-loop workload on a bridged two-DC WAN topology: \
          high-BDP border trunks, a cross-DC traffic fraction, \
          per-topology RTO floors, FCT-slowdown and per-locality \
          goodput CSV export")
    Term.(
      const run $ left_dc_t $ right_dc_t $ trunks_t $ cross_dc_t $ seed_t
      $ scheme_t $ cdf_t $ size_scale_t $ load_t $ wl_horizon_t $ drain_t
      $ flows_t $ domains_t $ marking_t $ queue_t $ beta_t $ sack_t
      $ rto_min_ms_t $ wl_out_t)

let coexist_cmd =
  let run k horizon seed mark beta =
    let base = base_of k horizon seed mark 100 beta in
    E.Coexistence.print_table2 ~base ()
  in
  Cmd.v
    (Cmd.info "coexist" ~doc:"Table 2: XMP coexisting with other schemes")
    Term.(const run $ k_arity_t $ horizon_t $ seed_t $ marking_t $ beta_t)

let ablation_cmd =
  let run k horizon seed scale =
    let base = base_of k horizon seed 10 100 4 in
    E.Ablations.print_beta_sweep ~scale ();
    E.Ablations.print_k_sweep ();
    E.Ablations.print_subflow_sweep ~base ();
    E.Ablations.print_coupling_comparison ~base ()
  in
  Cmd.v
    (Cmd.info "ablation" ~doc:"Parameter sweeps (beta, K, subflows, coupling)")
    Term.(const run $ k_arity_t $ horizon_t $ seed_t $ scale_t)

let main_cmd =
  let doc = "packet-level reproduction of XMP (CoNEXT 2013)" in
  Cmd.group
    (Cmd.info "xmp_sim" ~version:"1.0.0" ~doc)
    [
      fig1_cmd; fig4_cmd; fig6_cmd; fig7_cmd; matrix_cmd; eval_cmd;
      sweep_cmd; trace_cmd; faults_cmd; workload_cmd; wan_cmd; coexist_cmd;
      ablation_cmd;
    ]

let () =
  (* Simulation allocates fast but retains little; a higher space
     overhead keeps the major GC off the packet hot path (same setting
     as the bench harness — results are byte-identical either way). *)
  Gc.set { (Gc.get ()) with Gc.space_overhead = 200 };
  exit (Cmd.eval main_cmd)
