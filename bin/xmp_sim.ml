(* xmp-sim: command-line front end for the XMP reproduction.

   Subcommands mirror the paper's experiments:
     xmp_sim fig1|fig4|fig6|fig7      — time-series testbed experiments
     xmp_sim matrix                   — fat-tree goodput matrix (Table 1)
     xmp_sim eval                     — one (scheme, pattern) run in detail
     xmp_sim sweep                    — scheme×pattern matrix through the
                                        parallel, cached scenario runner
     xmp_sim trace                    — one instrumented run, flight
                                        recording exported as CSV/JSONL
     xmp_sim coexist                  — Table 2
     xmp_sim ablation                 — parameter sweeps *)

open Cmdliner
module E = Xmp_experiments
module Runner = Xmp_runner.Runner
module Time = Xmp_engine.Time
module Scheme = Xmp_workload.Scheme

(* ----- shared options ----- *)

let scale_t =
  let doc =
    "Time-scale factor applied to the paper's schedules (1.0 = the paper's \
     wall-clock timeline)."
  in
  Arg.(value & opt float 0.2 & info [ "scale" ] ~docv:"FACTOR" ~doc)

let beta_t =
  let doc = "XMP window-reduction divisor (paper default 4)." in
  Arg.(value & opt int 4 & info [ "beta" ] ~docv:"BETA" ~doc)

let k_arity_t =
  let doc = "Fat-tree arity $(docv) (even; 4 => 16 hosts, 8 => 128)." in
  Arg.(value & opt int 4 & info [ "k" ] ~docv:"K" ~doc)

let horizon_t =
  let doc = "Simulated horizon in seconds for fat-tree runs." in
  Arg.(value & opt float 2.0 & info [ "horizon" ] ~docv:"SECONDS" ~doc)

let seed_t =
  let doc = "Deterministic random seed." in
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc)

let marking_t =
  let doc = "Switch marking threshold K in packets." in
  Arg.(value & opt int 10 & info [ "mark" ] ~docv:"PKTS" ~doc)

let queue_t =
  let doc = "Switch queue capacity in packets." in
  Arg.(value & opt int 100 & info [ "queue" ] ~docv:"PKTS" ~doc)

let sack_t =
  let doc =
    "Enable SACK-based loss recovery on every flow (default: off, matching \
     the paper's RTO-dominated baselines)."
  in
  Arg.(value & flag & info [ "sack" ] ~doc)

let scheme_conv =
  let parse s =
    match Scheme.of_name s with
    | Some scheme -> Ok scheme
    | None ->
      Error (`Msg (Printf.sprintf "unknown scheme %S (try XMP-2, LIA-4, DCTCP, TCP, OLIA-2)" s))
  in
  Arg.conv (parse, fun fmt s -> Format.pp_print_string fmt (Scheme.name s))

let scheme_t =
  let doc = "Transfer scheme for large flows." in
  Arg.(value & opt scheme_conv (Scheme.Xmp 2) & info [ "scheme" ] ~docv:"SCHEME" ~doc)

let pattern_conv =
  let parse = function
    | "permutation" -> Ok E.Fatree_eval.Permutation
    | "random" -> Ok E.Fatree_eval.Random
    | "incast" -> Ok E.Fatree_eval.Incast
    | s -> Error (`Msg (Printf.sprintf "unknown pattern %S" s))
  in
  let print fmt p =
    Format.pp_print_string fmt
      (String.lowercase_ascii (E.Fatree_eval.pattern_name p))
  in
  Arg.conv (parse, print)

let pattern_t =
  let doc = "Traffic pattern: permutation, random or incast." in
  Arg.(
    value
    & opt pattern_conv E.Fatree_eval.Permutation
    & info [ "pattern" ] ~docv:"PATTERN" ~doc)

let base_of ?(sack = false) k horizon seed marking queue beta =
  {
    E.Fatree_eval.default_base with
    k;
    horizon = Time.sec horizon;
    seed;
    marking_threshold = marking;
    queue_pkts = queue;
    beta;
    sack;
  }

(* ----- subcommands ----- *)

let fig_cmd name doc run =
  let term = Term.(const (fun scale -> run ~scale ()) $ scale_t) in
  Cmd.v (Cmd.info name ~doc) term

let fig1_cmd =
  fig_cmd "fig1" "Figure 1: DCTCP vs halving-cwnd on one bottleneck"
    (fun ~scale () -> E.Fig1.run_and_print_all ~scale ())

let fig4_cmd =
  let run scale beta =
    E.Render.heading "Figure 4 (single panel)";
    E.Fig4.print (E.Fig4.run ~scale ~beta ())
  in
  Cmd.v
    (Cmd.info "fig4" ~doc:"Figure 4: traffic shifting on testbed 3(a)")
    Term.(const run $ scale_t $ beta_t)

let fig6_cmd =
  let run scale beta =
    E.Render.heading "Figure 6 (single panel)";
    E.Fig6.print (E.Fig6.run ~scale ~beta ())
  in
  Cmd.v
    (Cmd.info "fig6" ~doc:"Figure 6: fairness on testbed 3(b)")
    Term.(const run $ scale_t $ beta_t)

let fig7_cmd =
  let run scale beta mark =
    E.Render.heading "Figure 7 (single panel)";
    E.Fig7.print (E.Fig7.run ~scale ~beta ~k:mark ())
  in
  Cmd.v
    (Cmd.info "fig7" ~doc:"Figure 7: rate compensation on the ring")
    Term.(const run $ scale_t $ beta_t $ marking_t)

let matrix_cmd =
  let run k horizon seed mark queue beta =
    let base = base_of k horizon seed mark queue beta in
    E.Fatree_eval.print_table1 base;
    E.Fatree_eval.print_table3 base
  in
  Cmd.v
    (Cmd.info "matrix" ~doc:"Tables 1 and 3: the fat-tree goodput matrix")
    Term.(
      const run $ k_arity_t $ horizon_t $ seed_t $ marking_t $ queue_t
      $ beta_t)

let print_eval base scheme pattern =
  let r = E.Fatree_eval.result base scheme pattern in
  let m = r.Xmp_workload.Driver.metrics in
  E.Render.heading
    (Printf.sprintf "%s under %s" (Scheme.name scheme)
       (E.Fatree_eval.pattern_name pattern));
  Printf.printf "large flows recorded: %d\n"
    (Xmp_workload.Metrics.n_completed_flows m);
  Printf.printf "mean goodput: %.1f Mbps\n"
    (Xmp_workload.Metrics.mean_goodput_bps m /. 1e6);
  let jobs = Xmp_workload.Metrics.job_times_ms m in
  if not (Xmp_stats.Distribution.is_empty jobs) then
    Printf.printf "jobs: %d, mean completion %.1f ms, >300ms %.1f%%\n"
      (Xmp_stats.Distribution.count jobs)
      (Xmp_stats.Distribution.mean jobs)
      (100. *. Xmp_workload.Metrics.jobs_over_ms m 300.);
  E.Render.subheading "link utilization by layer";
  E.Render.five_number_table ~value_header:"layer"
    (Xmp_workload.Driver.utilization_by_layer r);
  E.Render.subheading "RTT by locality (ms)";
  E.Render.five_number_table ~value_header:"locality"
    (List.map
       (fun (loc, d) -> (Xmp_net.Fat_tree.locality_name loc, d))
       (Xmp_workload.Metrics.rtts_by_locality m));
  Printf.printf "events executed: %d\n" r.Xmp_workload.Driver.events

let eval_cmd =
  let run k horizon seed mark queue beta sack scheme pattern =
    let base = base_of ~sack k horizon seed mark queue beta in
    print_eval base scheme pattern
  in
  Cmd.v
    (Cmd.info "eval" ~doc:"One fat-tree run in detail")
    Term.(
      const run $ k_arity_t $ horizon_t $ seed_t $ marking_t $ queue_t
      $ beta_t $ sack_t $ scheme_t $ pattern_t)

(* ----- sweep: the scenario runner exposed for user experiments ----- *)

let jobs_t =
  let doc = "Number of worker processes for the scenario runner." in
  Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let no_cache_t =
  let doc = "Ignore and do not write _xmp_cache/ result entries." in
  Arg.(value & flag & info [ "no-cache" ] ~doc)

let schemes_t =
  let doc = "Comma-separated transfer schemes to sweep." in
  Arg.(
    value
    & opt (list scheme_conv)
        [ Scheme.Dctcp; Scheme.Lia 4; Scheme.Xmp 2; Scheme.Xmp 4 ]
    & info [ "schemes" ] ~docv:"SCHEMES" ~doc)

let patterns_t =
  let doc = "Comma-separated traffic patterns to sweep." in
  Arg.(
    value
    & opt (list pattern_conv)
        [ E.Fatree_eval.Permutation; E.Fatree_eval.Random;
          E.Fatree_eval.Incast ]
    & info [ "patterns" ] ~docv:"PATTERNS" ~doc)

let sweep_cmd =
  let run k horizon seed mark queue beta sack schemes patterns jobs no_cache =
    let base = base_of ~sack k horizon seed mark queue beta in
    let scenarios =
      List.concat_map
        (fun scheme ->
          List.map
            (fun pattern ->
              let pname =
                String.lowercase_ascii (E.Fatree_eval.pattern_name pattern)
              in
              Xmp_runner.Scenario.create
                ~name:
                  (Printf.sprintf "eval:%s/%s" (Scheme.name scheme) pname)
                ~descr:"one (scheme, pattern) fat-tree run in detail"
                ~params:
                  (("scheme", Scheme.name scheme)
                  :: ("pattern", pname)
                  :: E.Scenarios.base_params base)
                (fun () -> print_eval base scheme pattern))
            patterns)
        schemes
    in
    let cache =
      if no_cache then Runner.No_cache
      else Runner.Cache_dir Xmp_runner.Cache.default_dir
    in
    ignore (Runner.run_and_print ~jobs ~cache scenarios)
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:
         "Scheme-by-pattern evaluation matrix, run across worker processes \
          with digest-keyed result caching")
    Term.(
      const run $ k_arity_t $ horizon_t $ seed_t $ marking_t $ queue_t
      $ beta_t $ sack_t $ schemes_t $ patterns_t $ jobs_t $ no_cache_t)

(* ----- trace: one instrumented experiment, recording exported ----- *)

module Tel = Xmp_telemetry

let experiment_t =
  let doc =
    "Experiment to trace: $(b,fig1), $(b,fig4), $(b,fig6) or $(b,fig7)."
  in
  Arg.(
    value
    & opt (enum [ ("fig1", `Fig1); ("fig4", `Fig4); ("fig6", `Fig6); ("fig7", `Fig7) ]) `Fig4
    & info [ "experiment" ] ~docv:"NAME" ~doc)

let event_kind_conv =
  let parse s =
    if List.mem s Tel.Event.all_kinds then Ok s
    else
      Error
        (`Msg
           (Printf.sprintf "unknown event kind %S (known: %s)" s
              (String.concat ", " Tel.Event.all_kinds)))
  in
  Arg.conv (parse, Format.pp_print_string)

let events_filter_t =
  let doc =
    "Comma-separated event kinds to keep (e.g. $(b,ce-mark,cwnd-change)); \
     default: all."
  in
  Arg.(
    value
    & opt (some (list event_kind_conv)) None
    & info [ "events" ] ~docv:"KINDS" ~doc)

let format_t =
  let doc = "Stdout format when $(b,--out) is absent: $(b,csv) or $(b,jsonl)." in
  Arg.(
    value
    & opt (enum [ ("csv", `Csv); ("jsonl", `Jsonl) ]) `Csv
    & info [ "format" ] ~docv:"FORMAT" ~doc)

let out_t =
  let doc =
    "Write $(docv).csv and $(docv).jsonl (the event recording) plus \
     $(docv).metrics.csv and $(docv).metrics.jsonl (the metrics registry) \
     instead of printing to stdout."
  in
  Arg.(value & opt (some string) None & info [ "out" ] ~docv:"PREFIX" ~doc)

let capacity_t =
  let doc = "Flight-recorder capacity in events (oldest are evicted)." in
  Arg.(value & opt int 65536 & info [ "capacity" ] ~docv:"EVENTS" ~doc)

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents)

let trace_cmd =
  let run experiment scale beta mark events format out capacity =
    let sink = Tel.Sink.create ~recorder_capacity:capacity () in
    (match experiment with
    | `Fig1 -> ignore (E.Fig1.run ~scale ~telemetry:sink { E.Fig1.dctcp = true; k = mark })
    | `Fig4 -> ignore (E.Fig4.run ~scale ~beta ~telemetry:sink ())
    | `Fig6 -> ignore (E.Fig6.run ~scale ~beta ~telemetry:sink ())
    | `Fig7 -> ignore (E.Fig7.run ~scale ~beta ~k:mark ~telemetry:sink ()));
    let recorder = Tel.Sink.recorder sink in
    let registry = Tel.Sink.registry sink in
    let keep =
      Option.map
        (fun kinds ev -> List.mem (Tel.Event.kind ev) kinds)
        events
    in
    let events_csv = Tel.Export.events_csv ?keep recorder in
    let events_jsonl = Tel.Export.events_jsonl ?keep recorder in
    (match out with
    | Some prefix ->
      write_file (prefix ^ ".csv") events_csv;
      write_file (prefix ^ ".jsonl") events_jsonl;
      write_file (prefix ^ ".metrics.csv") (Tel.Export.metrics_csv registry);
      write_file (prefix ^ ".metrics.jsonl")
        (Tel.Export.metrics_jsonl registry);
      Printf.eprintf "[trace] wrote %s.{csv,jsonl,metrics.csv,metrics.jsonl}\n"
        prefix
    | None -> (
      match format with
      | `Csv -> print_string events_csv
      | `Jsonl -> print_string events_jsonl));
    Printf.eprintf
      "[trace] %d events retained (%d recorded, %d evicted), %d metrics\n%!"
      (Tel.Recorder.length recorder)
      (Tel.Recorder.total recorder)
      (Tel.Recorder.dropped recorder)
      (Tel.Registry.cardinal registry)
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run one experiment with telemetry enabled and export its flight \
          recording (and metrics registry) as CSV / JSONL")
    Term.(
      const run $ experiment_t $ scale_t $ beta_t $ marking_t
      $ events_filter_t $ format_t $ out_t $ capacity_t)

let coexist_cmd =
  let run k horizon seed mark beta =
    let base = base_of k horizon seed mark 100 beta in
    E.Coexistence.print_table2 ~base ()
  in
  Cmd.v
    (Cmd.info "coexist" ~doc:"Table 2: XMP coexisting with other schemes")
    Term.(const run $ k_arity_t $ horizon_t $ seed_t $ marking_t $ beta_t)

let ablation_cmd =
  let run k horizon seed scale =
    let base = base_of k horizon seed 10 100 4 in
    E.Ablations.print_beta_sweep ~scale ();
    E.Ablations.print_k_sweep ();
    E.Ablations.print_subflow_sweep ~base ();
    E.Ablations.print_coupling_comparison ~base ()
  in
  Cmd.v
    (Cmd.info "ablation" ~doc:"Parameter sweeps (beta, K, subflows, coupling)")
    Term.(const run $ k_arity_t $ horizon_t $ seed_t $ scale_t)

let main_cmd =
  let doc = "packet-level reproduction of XMP (CoNEXT 2013)" in
  Cmd.group
    (Cmd.info "xmp_sim" ~version:"1.0.0" ~doc)
    [
      fig1_cmd; fig4_cmd; fig6_cmd; fig7_cmd; matrix_cmd; eval_cmd;
      sweep_cmd; trace_cmd; coexist_cmd; ablation_cmd;
    ]

let () = exit (Cmd.eval main_cmd)
