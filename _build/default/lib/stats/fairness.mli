(** Fairness metrics for bandwidth allocations. *)

val jain : float list -> float
(** Jain's fairness index [(Σx)² / (n·Σx²)]: 1 for a perfectly equal
    allocation, 1/n when one member takes everything. Returns 1 for an
    empty or all-zero allocation. *)

val max_min_ratio : float list -> float
(** [min/max] of the allocation — a blunter fairness measure. 1 when
    equal; returns 1 for empty input. *)
