(** Plain-text table rendering for the bench harness: each reproduced paper
    table/figure is printed as an aligned ASCII table. *)

type align = Left | Right

val render :
  ?align:align list ->
  header:string list ->
  rows:string list list ->
  unit ->
  string
(** Renders with a header row, a separator, and one line per row. Columns
    default to [Right] alignment except the first, which defaults to
    [Left]. Short rows are padded with empty cells. *)

val print :
  ?align:align list -> header:string list -> rows:string list list -> unit ->
  unit

val fixed : int -> float -> string
(** [fixed d x] formats with [d] decimals ("--" for NaN). *)
