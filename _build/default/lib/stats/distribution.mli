(** Empirical distribution over collected float samples: quantiles, CDF
    sampling, and the five-number summaries used throughout the paper's
    figures (min / 10th / 50th / 90th / max). *)

type t

val create : unit -> t

val add : t -> float -> unit

val add_list : t -> float list -> unit

val count : t -> int

val is_empty : t -> bool

val mean : t -> float

val percentile : t -> float -> float
(** [percentile t p] for [p] in [0,100], by linear interpolation between
    order statistics. Raises [Invalid_argument] when empty or [p] is out of
    range. *)

val min : t -> float

val max : t -> float

val five_number : t -> float * float * float * float * float
(** [(min, p10, p50, p90, max)] — the summary drawn as the paper's vertical
    bars in Figures 8(c,d), 10 and 11. *)

val cdf_points : t -> int -> (float * float) list
(** [cdf_points t n] samples the empirical CDF at [n] evenly spaced
    cumulative probabilities, returning [(value, probability)] pairs —
    enough to re-draw the paper's CDF figures as a table. *)

val fraction_above : t -> float -> float
(** Fraction of samples strictly greater than the threshold. *)

val values : t -> float array
(** Sorted copy of all samples. *)
