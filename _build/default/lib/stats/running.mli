(** Streaming mean/variance (Welford's algorithm) plus min/max. *)

type t

val create : unit -> t

val add : t -> float -> unit

val count : t -> int

val mean : t -> float
(** 0 when empty. *)

val variance : t -> float
(** Population variance; 0 with fewer than two samples. *)

val stddev : t -> float

val min : t -> float
(** [nan] when empty. *)

val max : t -> float
(** [nan] when empty. *)

val total : t -> float
(** Sum of all samples. *)

val merge : t -> t -> t
(** Combines two summaries as if all samples were added to one. *)
