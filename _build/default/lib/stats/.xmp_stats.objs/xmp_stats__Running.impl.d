lib/stats/running.ml: Float Stdlib
