lib/stats/timeseries.ml: Array Float
