lib/stats/distribution.mli:
