lib/stats/timeseries.mli:
