lib/stats/table.mli:
