lib/stats/fairness.mli:
