lib/stats/running.mli:
