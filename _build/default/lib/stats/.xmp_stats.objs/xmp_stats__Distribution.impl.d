lib/stats/distribution.ml: Array Float List Stdlib
