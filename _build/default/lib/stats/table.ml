type align = Left | Right

let pad align width s =
  let n = width - String.length s in
  if n <= 0 then s
  else
    match align with
    | Left -> s ^ String.make n ' '
    | Right -> String.make n ' ' ^ s

let render ?align ~header ~rows () =
  let n_cols =
    List.fold_left
      (fun acc row -> Stdlib.max acc (List.length row))
      (List.length header) rows
  in
  let normalize row =
    row @ List.init (n_cols - List.length row) (fun _ -> "")
  in
  let header = normalize header in
  let rows = List.map normalize rows in
  let widths = Array.make n_cols 0 in
  let account row =
    List.iteri
      (fun i cell -> widths.(i) <- Stdlib.max widths.(i) (String.length cell))
      row
  in
  account header;
  List.iter account rows;
  let aligns =
    let given = match align with Some a -> a | None -> [] in
    Array.init n_cols (fun i ->
        match List.nth_opt given i with
        | Some a -> a
        | None -> if i = 0 && align = None then Left else Right)
  in
  let line row =
    String.concat "  "
      (List.mapi (fun i cell -> pad aligns.(i) widths.(i) cell) row)
  in
  let sep =
    String.concat "  "
      (Array.to_list (Array.map (fun w -> String.make w '-') widths))
  in
  String.concat "\n" (line header :: sep :: List.map line rows) ^ "\n"

let print ?align ~header ~rows () =
  print_string (render ?align ~header ~rows ())

let fixed d x =
  if Float.is_nan x then "--" else Printf.sprintf "%.*f" d x
