let jain xs =
  let sum = List.fold_left ( +. ) 0. xs in
  let sumsq = List.fold_left (fun acc x -> acc +. (x *. x)) 0. xs in
  let n = List.length xs in
  if n = 0 || sumsq = 0. then 1.
  else sum *. sum /. (float_of_int n *. sumsq)

let max_min_ratio xs =
  match xs with
  | [] -> 1.
  | x :: rest ->
    let mn = List.fold_left Float.min x rest in
    let mx = List.fold_left Float.max x rest in
    if mx = 0. then 1. else mn /. mx
