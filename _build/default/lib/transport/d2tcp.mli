(** D²TCP — Deadline-Aware Datacenter TCP (Vamanan et al., SIGCOMM 2012),
    one of the ECN schemes the paper's related-work section positions XMP
    against (§6: "uses ECN to make flows with tight deadlines obtain more
    bandwidth").

    D²TCP keeps DCTCP's α estimate but gamma-corrects the window cut by a
    deadline-imminence factor [d]:

    {v cwnd ← cwnd · (1 − α^d / 2) v}

    where [d = Tc / D] is the ratio of the time the flow still *needs*
    (at its current rate) to the time its deadline still *allows*.
    Far-from-deadline flows (d < 1) back off more than DCTCP; imminent
    flows (d > 1) back off less, stealing bandwidth exactly when they
    need it. [d] is clamped to \[0.5, 2\] as in the paper. Deadline-less
    flows use d = 1 and behave exactly like DCTCP. *)

type params = {
  g : float;  (** EWMA gain for alpha *)
  init_alpha : float;
  init_cwnd : float;
  min_cwnd : float;
  d_min : float;  (** clamp floor for the imminence factor (0.5) *)
  d_max : float;  (** clamp ceiling (2.0) *)
}

val default_params : params

type deadline = {
  total_segments : int;  (** flow size *)
  deadline_at : Xmp_engine.Time.t;  (** absolute completion deadline *)
}

val imminence :
  params:params ->
  remaining_segments:int ->
  rate_segments_per_s:float ->
  time_left_s:float ->
  float
(** The clamped factor [d = Tc / D]; exposed for unit tests. Returns
    [d_max] when the deadline has passed or no rate is measurable. *)

val make_cc :
  ?params:params ->
  ?deadline:deadline ->
  acked:(unit -> int) ->
  unit ->
  Cc.factory
(** [acked] reports segments delivered so far (the flow's progress
    counter), from which the remaining demand is derived. Without
    [deadline], behaves as DCTCP. *)
