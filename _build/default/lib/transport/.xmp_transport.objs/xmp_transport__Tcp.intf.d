lib/transport/tcp.mli: Cc Xmp_engine Xmp_net
