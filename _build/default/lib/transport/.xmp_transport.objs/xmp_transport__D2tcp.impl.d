lib/transport/d2tcp.ml: Cc Float Xmp_engine
