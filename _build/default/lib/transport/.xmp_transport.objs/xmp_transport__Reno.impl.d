lib/transport/reno.ml: Cc Float
