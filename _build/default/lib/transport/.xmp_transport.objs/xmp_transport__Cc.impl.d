lib/transport/cc.ml: Xmp_engine
