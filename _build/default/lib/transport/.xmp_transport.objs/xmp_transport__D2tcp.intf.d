lib/transport/d2tcp.mli: Cc Xmp_engine
