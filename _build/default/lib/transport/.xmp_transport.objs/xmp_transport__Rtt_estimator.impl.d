lib/transport/rtt_estimator.ml: Stdlib Xmp_engine
