lib/transport/rtt_estimator.mli: Xmp_engine
