lib/transport/dctcp.mli: Cc
