lib/transport/dctcp.ml: Cc Float
