lib/transport/cc.mli: Xmp_engine
