lib/transport/tcp.ml: Cc Hashtbl Int List Rtt_estimator Stdlib Xmp_engine Xmp_net
