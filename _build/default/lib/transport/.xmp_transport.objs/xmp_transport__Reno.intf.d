lib/transport/reno.mli: Cc
