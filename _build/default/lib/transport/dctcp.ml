type params = {
  g : float;
  init_alpha : float;
  init_cwnd : float;
  min_cwnd : float;
}

let default_params =
  { g = 1. /. 16.; init_alpha = 1.; init_cwnd = 3.; min_cwnd = 1. }

type state = {
  params : params;
  view : Cc.view;
  mutable cwnd : float;
  mutable ssthresh : float;
  mutable alpha : float;
  mutable window_end : int;  (* alpha update boundary (snd_nxt snapshot) *)
  mutable acked_in_window : int;
  mutable marked_in_window : int;
  mutable reduced_this_window : bool;
}

let make ?(params = default_params) view =
  let s =
    {
      params;
      view;
      cwnd = params.init_cwnd;
      ssthresh = Float.max_float;
      alpha = params.init_alpha;
      window_end = 0;
      acked_in_window = 0;
      marked_in_window = 0;
      reduced_this_window = false;
    }
  in
  let in_slow_start () = s.cwnd < s.ssthresh in
  let on_ecn ~count:_ =
    let was_slow_start = in_slow_start () in
    if not s.reduced_this_window then begin
      s.reduced_this_window <- true;
      s.cwnd <-
        Float.max s.params.min_cwnd (s.cwnd *. (1. -. (s.alpha /. 2.)))
    end;
    (* leave (and do not re-enter) slow start on a congestion signal *)
    if was_slow_start then
      s.ssthresh <- Float.max s.params.min_cwnd s.cwnd
  in
  let on_ack ~ack ~newly_acked ~ce_count =
    s.acked_in_window <- s.acked_in_window + newly_acked;
    s.marked_in_window <- s.marked_in_window + ce_count;
    if ack > s.window_end then begin
      (* one observation window (≈ one RTT of data) completed *)
      if s.acked_in_window > 0 then begin
        let f =
          float_of_int s.marked_in_window /. float_of_int s.acked_in_window
        in
        s.alpha <-
          ((1. -. s.params.g) *. s.alpha) +. (s.params.g *. Float.min 1. f)
      end;
      s.acked_in_window <- 0;
      s.marked_in_window <- 0;
      s.reduced_this_window <- false;
      s.window_end <- s.view.Cc.snd_nxt ()
    end;
    for _ = 1 to newly_acked do
      if in_slow_start () then s.cwnd <- s.cwnd +. 1.
      else s.cwnd <- s.cwnd +. (1. /. s.cwnd)
    done
  in
  let on_fast_retransmit () =
    s.ssthresh <- Float.max (s.cwnd /. 2.) 2.;
    s.cwnd <- s.ssthresh
  in
  let on_timeout () =
    s.ssthresh <- Float.max (s.cwnd /. 2.) 2.;
    s.cwnd <- Float.max s.params.min_cwnd 1.
  in
  {
    Cc.name = "dctcp";
    cwnd = (fun () -> s.cwnd);
    on_ack;
    on_ecn;
    on_fast_retransmit;
    on_timeout;
    in_slow_start = (fun () -> in_slow_start ());
    take_cwr = Cc.nop_take_cwr;
  }
