(** DCTCP congestion control (Alizadeh et al., SIGCOMM 2010) — the paper's
    single-path ECN baseline.

    The receiver echoes the CE marks it sees (this stack echoes the exact
    per-ACK count, which is what DCTCP's one-bit state machine exists to
    reconstruct under delayed ACKs). The sender maintains
    [alpha ← (1−g)·alpha + g·F] once per window, where [F] is the fraction
    of marked segments in that window, and on the first mark of a window
    cuts [cwnd ← cwnd·(1 − alpha/2)]. Losses are handled as in NewReno. *)

type params = {
  g : float;  (** EWMA gain for alpha, paper value 1/16 *)
  init_alpha : float;
  init_cwnd : float;
  min_cwnd : float;
}

val default_params : params

val make : ?params:params -> Cc.factory
