(** TCP NewReno congestion control — the paper's "TCP" baseline and the
    per-subflow machinery LIA builds on.

    Slow start doubles per RTT (+1 segment per ACK); congestion avoidance
    adds one segment per RTT (+1/cwnd per ACK); fast retransmit halves;
    timeout collapses to 1 segment. Optionally reacts to classic ECN
    echoes as it would to a fast retransmit (off by default: the paper's
    TCP/LIA flows are not ECN-capable). *)

type params = {
  init_cwnd : float;
  min_cwnd : float;
  ecn : bool;  (** respond to ECE like a loss, once per window *)
}

val default_params : params

val make : ?params:params -> Cc.factory

val make_with_increase :
  ?params:params -> increase:(cwnd:float -> float) -> unit -> Cc.factory
(** NewReno skeleton with a custom per-ACK congestion-avoidance increment
    (used by the LIA/OLIA couplings, which replace 1/cwnd with a coupled
    gain). [increase ~cwnd] is the cwnd increment applied per newly-acked
    segment. *)
