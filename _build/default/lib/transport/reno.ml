type params = { init_cwnd : float; min_cwnd : float; ecn : bool }

let default_params = { init_cwnd = 3.; min_cwnd = 1.; ecn = false }

type state = {
  params : params;
  view : Cc.view;
  mutable cwnd : float;
  mutable ssthresh : float;
  mutable cwr_pending : bool;
  mutable ecn_reduced_until : int;  (* ECN reductions gated to once/window *)
}

let in_slow_start s = s.cwnd < s.ssthresh

let halve s =
  s.ssthresh <- Float.max (s.cwnd /. 2.) (Float.max s.params.min_cwnd 2.);
  s.cwnd <- s.ssthresh

let make_state params view =
  {
    params;
    view;
    cwnd = params.init_cwnd;
    ssthresh = Float.max_float;
    cwr_pending = false;
    ecn_reduced_until = 0;
  }

let make_cc ~name ~increase params view =
  let s = make_state params view in
  let on_ack ~ack:_ ~newly_acked ~ce_count:_ =
    for _ = 1 to newly_acked do
      if in_slow_start s then s.cwnd <- s.cwnd +. 1.
      else s.cwnd <- s.cwnd +. increase ~cwnd:s.cwnd
    done
  in
  let on_ecn ~count:_ =
    if s.params.ecn && s.view.Cc.snd_una () >= s.ecn_reduced_until then begin
      halve s;
      s.ecn_reduced_until <- s.view.Cc.snd_nxt ();
      s.cwr_pending <- true
    end
  in
  let on_fast_retransmit () = halve s in
  let on_timeout () =
    s.ssthresh <- Float.max (s.cwnd /. 2.) 2.;
    s.cwnd <- Float.max s.params.min_cwnd 1.
  in
  let take_cwr () =
    if s.cwr_pending then begin
      s.cwr_pending <- false;
      true
    end
    else false
  in
  {
    Cc.name;
    cwnd = (fun () -> s.cwnd);
    on_ack;
    on_ecn;
    on_fast_retransmit;
    on_timeout;
    in_slow_start = (fun () -> in_slow_start s);
    take_cwr;
  }

let make ?(params = default_params) view =
  make_cc ~name:"reno" ~increase:(fun ~cwnd -> 1. /. cwnd) params view

let make_with_increase ?(params = default_params) ~increase () view =
  make_cc ~name:"reno+" ~increase params view
