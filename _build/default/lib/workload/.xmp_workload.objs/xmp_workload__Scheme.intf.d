lib/workload/scheme.mli: Random Xmp_engine Xmp_mptcp Xmp_net Xmp_transport
