lib/workload/driver.mli: Metrics Scheme Xmp_engine Xmp_net Xmp_stats
