lib/workload/driver.ml: Array Float Hashtbl Metrics Pareto Random Scheme Xmp_engine Xmp_mptcp Xmp_net
