lib/workload/scheme.ml: Array List Printf Random Stdlib String Xmp_core Xmp_engine Xmp_mptcp Xmp_transport
