lib/workload/metrics.ml: List Scheme Xmp_engine Xmp_net Xmp_stats
