lib/workload/metrics.mli: Scheme Xmp_engine Xmp_net Xmp_stats
