lib/workload/pareto.mli: Random
