lib/workload/pareto.ml: Float Random Stdlib
