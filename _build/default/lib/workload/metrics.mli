(** Measurement collection for fat-tree evaluation runs: everything needed
    to regenerate Tables 1–3 and Figures 8–11. *)

module Distribution = Xmp_stats.Distribution

type flow_record = {
  flow : int;
  scheme : Scheme.t;
  src : int;  (** host index *)
  dst : int;
  locality : Xmp_net.Fat_tree.locality;
  size_segments : int;
  started : Xmp_engine.Time.t;
  finished : Xmp_engine.Time.t;
  goodput_bps : float;
  truncated : bool;
      (** flow was still running at the horizon; its goodput is measured
          over start → horizon (the paper's "whole running time" for flows
          whose run the simulation cut off). Short-lived truncated flows
          (< 1/10 of the horizon) are not recorded at all. *)
}

type t

val create : rtt_subsample:int -> t
(** RTT samples are decimated by [rtt_subsample] (≥ 1) to bound memory. *)

val record_flow : t -> flow_record -> unit

val record_rtt :
  t -> locality:Xmp_net.Fat_tree.locality -> Xmp_engine.Time.t -> unit

val record_job : t -> Xmp_engine.Time.t -> unit
(** A completed incast job with its completion time. *)

val completed_flows : t -> flow_record list
(** All recorded flows, including horizon-truncated ones. *)

val n_completed_flows : t -> int

val mean_goodput_bps : t -> float
(** Over all recorded large flows (Table 1 cells). *)

val mean_goodput_bps_of_scheme : t -> Scheme.t -> float
(** Restricted to flows of one scheme (Table 2 cells). *)

val goodputs : t -> Distribution.t
(** All completed-flow goodputs, bps (Figure 8a/b CDFs). *)

val goodputs_by_locality :
  t -> (Xmp_net.Fat_tree.locality * Distribution.t) list
(** Figure 8c/d bars. Localities with no flows are omitted. *)

val rtts_by_locality :
  t -> (Xmp_net.Fat_tree.locality * Distribution.t) list
(** Milliseconds (Figure 10 bars). *)

val job_times_ms : t -> Distribution.t
(** Figure 9 CDF / Table 3. *)

val jobs_over_ms : t -> float -> float
(** Fraction of jobs slower than the threshold (Table 3's ">300ms"). *)

val utilization_by_layer :
  net:Xmp_net.Network.t ->
  duration:Xmp_engine.Time.t ->
  (string * Distribution.t) list
(** Per-layer link utilization distributions at the end of a run
    (Figure 11 bars); layers ordered as {!Xmp_net.Fat_tree.layers}. *)
