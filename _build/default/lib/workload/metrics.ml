module Time = Xmp_engine.Time
module Distribution = Xmp_stats.Distribution
module Fat_tree = Xmp_net.Fat_tree

type flow_record = {
  flow : int;
  scheme : Scheme.t;
  src : int;
  dst : int;
  locality : Fat_tree.locality;
  size_segments : int;
  started : Time.t;
  finished : Time.t;
  goodput_bps : float;
  truncated : bool;
}

type t = {
  rtt_subsample : int;
  mutable flows : flow_record list;
  mutable n_flows : int;
  rtt_inner : Distribution.t;
  rtt_rack : Distribution.t;
  rtt_pod : Distribution.t;
  mutable rtt_counter : int;
  jobs : Distribution.t;
}

let create ~rtt_subsample =
  if rtt_subsample < 1 then invalid_arg "Metrics.create";
  {
    rtt_subsample;
    flows = [];
    n_flows = 0;
    rtt_inner = Distribution.create ();
    rtt_rack = Distribution.create ();
    rtt_pod = Distribution.create ();
    rtt_counter = 0;
    jobs = Distribution.create ();
  }

let record_flow t r =
  t.flows <- r :: t.flows;
  t.n_flows <- t.n_flows + 1

let rtt_dist t = function
  | Fat_tree.Inner_rack -> t.rtt_inner
  | Fat_tree.Inter_rack -> t.rtt_rack
  | Fat_tree.Inter_pod -> t.rtt_pod

let record_rtt t ~locality rtt =
  t.rtt_counter <- t.rtt_counter + 1;
  if t.rtt_counter mod t.rtt_subsample = 0 then
    Distribution.add (rtt_dist t locality) (Time.to_ms rtt)

let record_job t d = Distribution.add t.jobs (Time.to_ms d)
let completed_flows t = List.rev t.flows
let n_completed_flows t = t.n_flows

let mean_goodput_over t pred =
  let sum = ref 0. and n = ref 0 in
  List.iter
    (fun r ->
      if pred r then begin
        sum := !sum +. r.goodput_bps;
        incr n
      end)
    t.flows;
  if !n = 0 then 0. else !sum /. float_of_int !n

let mean_goodput_bps t = mean_goodput_over t (fun _ -> true)

let mean_goodput_bps_of_scheme t scheme =
  mean_goodput_over t (fun r -> r.scheme = scheme)

let goodputs t =
  let d = Distribution.create () in
  List.iter (fun r -> Distribution.add d r.goodput_bps) t.flows;
  d

let localities = [ Fat_tree.Inter_pod; Fat_tree.Inter_rack; Fat_tree.Inner_rack ]

let goodputs_by_locality t =
  List.filter_map
    (fun loc ->
      let d = Distribution.create () in
      List.iter
        (fun r -> if r.locality = loc then Distribution.add d r.goodput_bps)
        t.flows;
      if Distribution.is_empty d then None else Some (loc, d))
    localities

let rtts_by_locality t =
  List.filter_map
    (fun loc ->
      let d = rtt_dist t loc in
      if Distribution.is_empty d then None else Some (loc, d))
    localities

let job_times_ms t = t.jobs
let jobs_over_ms t threshold = Distribution.fraction_above t.jobs threshold

let utilization_by_layer ~net ~duration =
  List.filter_map
    (fun layer ->
      let links = Xmp_net.Network.links_tagged net layer in
      if links = [] then None
      else begin
        let d = Distribution.create () in
        List.iter
          (fun l -> Distribution.add d (Xmp_net.Link.utilization l ~duration))
          links;
        Some (layer, d)
      end)
    Fat_tree.layers
