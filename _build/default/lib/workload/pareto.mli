(** Bounded Pareto sampler for the paper's Random traffic pattern (§5.2.1:
    shape 1.5, mean 192 MB, upper bound 768 MB — scaled in the default
    experiments). *)

type t

val create : shape:float -> mean:float -> cap:float -> t
(** [shape] must exceed 1 (finite mean). The scale parameter is derived
    so the *unbounded* distribution has the given mean; [cap] truncates
    the tail (the paper's upper bound). *)

val scale : t -> float
(** The derived minimum value [x_m = mean·(shape−1)/shape]. *)

val sample : t -> Random.State.t -> float

val sample_int : t -> Random.State.t -> int
(** Rounded sample, at least 1. *)
