type t = { shape : float; scale : float; cap : float }

let create ~shape ~mean ~cap =
  if shape <= 1. then invalid_arg "Pareto.create: shape must exceed 1";
  if mean <= 0. || cap < mean then invalid_arg "Pareto.create: mean/cap";
  { shape; scale = mean *. (shape -. 1.) /. shape; cap }

let scale t = t.scale

let sample t rng =
  let u = 1. -. Random.State.float rng 1. (* in (0, 1] *) in
  Float.min t.cap (t.scale /. (u ** (1. /. t.shape)))

let sample_int t rng = Stdlib.max 1 (int_of_float (Float.round (sample t rng)))
