type t = int

let zero = 0
let ns n = n
let us n = n * 1_000
let ms n = n * 1_000_000
let sec s = int_of_float (Float.round (s *. 1e9))
let of_float_s = sec
let to_float_s t = float_of_int t /. 1e9
let to_us t = float_of_int t /. 1e3
let to_ms t = float_of_int t /. 1e6
let add = ( + )
let sub = ( - )
let mul = ( * )
let div = ( / )
let min = Stdlib.min
let max = Stdlib.max
let compare = Int.compare
let infinity = max_int
let is_infinite t = t >= max_int

let pp fmt t =
  if is_infinite t then Format.pp_print_string fmt "inf"
  else if t < 1_000 then Format.fprintf fmt "%dns" t
  else if t < 1_000_000 then Format.fprintf fmt "%dus" (t / 1_000)
  else if t < 1_000_000_000 then Format.fprintf fmt "%.3fms" (to_ms t)
  else Format.fprintf fmt "%.3fs" (to_float_s t)
