(** Periodic callbacks on simulated time — the recurring "sample every
    interval" pattern used by rate probes and queue monitors. *)

type t

val start :
  ?first_after:Time.t -> Sim.t -> interval:Time.t -> (unit -> unit) -> t
(** [start sim ~interval f] runs [f] every [interval] from now on (first
    firing after [first_after] if given, else after one [interval]).
    The callback may stop its own periodic. *)

val stop : t -> unit
(** Idempotent. *)

val is_active : t -> bool

val ticks : t -> int
(** Number of firings so far. *)
