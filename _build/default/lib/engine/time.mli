(** Simulated time, in integer nanoseconds.

    All simulator state advances in whole nanoseconds, which keeps event
    ordering exact and runs reproducible. One nanosecond resolution is fine
    for the data-center regime modelled here: a 1500-byte packet on a
    1 Gbps link lasts 12 000 ns. *)

type t = int

val zero : t

val ns : int -> t
(** [ns n] is [n] nanoseconds. *)

val us : int -> t
(** [us n] is [n] microseconds. *)

val ms : int -> t
(** [ms n] is [n] milliseconds. *)

val sec : float -> t
(** [sec s] is [s] seconds, rounded to the nearest nanosecond. *)

val of_float_s : float -> t
(** Alias of {!sec}. *)

val to_float_s : t -> float
(** Time in seconds. *)

val to_us : t -> float
(** Time in microseconds. *)

val to_ms : t -> float
(** Time in milliseconds. *)

val add : t -> t -> t

val sub : t -> t -> t
(** [sub a b] is [a - b]; may be negative, callers guard where needed. *)

val mul : t -> int -> t

val div : t -> int -> t

val min : t -> t -> t

val max : t -> t -> t

val compare : t -> t -> int

val is_infinite : t -> bool
(** True for {!infinity} (and anything at or beyond it). *)

val infinity : t
(** A time later than any schedulable event ([max_int]). *)

val pp : Format.formatter -> t -> unit
(** Renders with an adaptive unit, e.g. ["12us"], ["1.500ms"], ["2.000s"]. *)
