lib/engine/slog.mli: Format Sim
