lib/engine/sim.mli: Random Time
