lib/engine/sim.ml: Event_queue Format Random Time
