lib/engine/periodic.ml: Sim Time
