lib/engine/slog.ml: Format Sim Time
