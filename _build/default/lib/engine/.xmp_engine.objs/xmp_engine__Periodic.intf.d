lib/engine/periodic.mli: Sim Time
