type level = Quiet | Info | Debug

let current = ref Quiet
let set_level l = current := l
let level () = !current

let log sim fmt =
  Format.eprintf "[%a] " Time.pp (Sim.now sim);
  Format.kfprintf
    (fun f -> Format.pp_print_newline f ())
    Format.err_formatter fmt

let drop fmt = Format.ikfprintf (fun _ -> ()) Format.err_formatter fmt

let info sim fmt =
  match !current with Quiet -> drop fmt | Info | Debug -> log sim fmt

let debug sim fmt =
  match !current with Quiet | Info -> drop fmt | Debug -> log sim fmt
