(** Growable binary min-heap of timestamped events.

    Events are ordered by [(time, seq)] where [seq] is a monotonically
    increasing insertion counter supplied by the caller: two events scheduled
    for the same instant fire in insertion order, which makes simulations
    deterministic. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

val add : 'a t -> time:Time.t -> seq:int -> 'a -> unit

val peek_time : 'a t -> Time.t option
(** Timestamp of the earliest event, if any. *)

val pop : 'a t -> (Time.t * int * 'a) option
(** Removes and returns the earliest event as [(time, seq, payload)]. *)

val clear : 'a t -> unit
