(** Linked Increases Algorithm — MPTCP's default coupled congestion control
    (Wischik et al., NSDI 2011; RFC 6356) and the paper's main multipath
    baseline.

    In congestion avoidance, an ACK for one segment on subflow [r]
    increases its window by

    {v min( alpha / cwnd_total , 1 / cwnd_r ) v}

    with [alpha = cwnd_total · max_i(cwnd_i/rtt_i²) / (Σ_i cwnd_i/rtt_i)²].
    Slow start and loss reactions are per-subflow NewReno. LIA is
    loss-driven: its flows are not ECN-capable in the paper's experiments,
    so they fill drop-tail buffers and pay 200 ms RTOs — the behaviour
    Tables 1 and 3 report. *)

val alpha :
  windows_rtts:(float * float) list -> float
(** [alpha ~windows_rtts] over [(cwnd, rtt_s)] pairs; exposed for tests. *)

val coupling : ?params:Xmp_transport.Reno.params -> unit -> Coupling.t
