(** Opportunistic Linked Increases Algorithm (Khalili et al., CoNEXT 2012).

    The paper's §7 notes TraSh shares LIA's non-Pareto-optimality and that
    OLIA's fix could be applied; we implement OLIA as an extension baseline
    so the ablation bench can compare all three couplings.

    Per ACK of one segment on path [r]:

    {v (w_r/rtt_r²) / (Σ_p w_p/rtt_p)²  +  α_r / w_r v}

    where [α_r] moves window between the "best" paths (largest ℓ_r²/rtt_r,
    with ℓ_r the inter-loss data estimate) and the "collected" paths
    (largest windows): best-but-not-collected paths get
    [+1/(n·|B∖M|)], collected paths get [−1/(n·|M|)] when some best path
    is not collected, and 0 otherwise. *)

val coupling : ?params:Xmp_transport.Reno.params -> unit -> Coupling.t
