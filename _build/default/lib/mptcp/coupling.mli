(** Coupled congestion control across the subflows of one MPTCP flow.

    A coupling is instantiated once per flow ({!fresh}); the resulting
    group closure hands each subflow a {!Xmp_transport.Cc} factory whose
    behaviour may depend on every sibling's state. Implementations
    register each member's window and RTT getters in the group as the
    subflow connections are created. *)

type member = {
  cwnd : unit -> float;  (** subflow congestion window, segments *)
  srtt_s : unit -> float;  (** smoothed RTT, seconds *)
  in_slow_start : unit -> bool;
}

type group
(** Mutable per-flow registry of members. *)

val group : unit -> group

val register : group -> member -> unit

val members : group -> member list
(** In registration order. *)

val total_cwnd : group -> float

val total_rate : group -> float
(** [Σ cwnd_i / srtt_i], segments per second. *)

val min_srtt : group -> float
(** Smallest smoothed RTT across members, seconds. *)

type t = {
  name : string;
  fresh : unit -> int -> Xmp_transport.Cc.factory;
      (** [fresh ()] creates the per-flow group; applying the result to a
          subflow index yields that subflow's controller factory. *)
}

val uncoupled : name:string -> Xmp_transport.Cc.factory -> t
(** Runs the given controller independently on every subflow (the paper's
    "violates fairness" strawman; useful as an experimental control). *)
