lib/mptcp/coupling.ml: Float List Xmp_transport
