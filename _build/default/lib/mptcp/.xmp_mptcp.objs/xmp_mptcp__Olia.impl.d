lib/mptcp/olia.ml: Coupling Float List Xmp_engine Xmp_transport
