lib/mptcp/lia.mli: Coupling Xmp_transport
