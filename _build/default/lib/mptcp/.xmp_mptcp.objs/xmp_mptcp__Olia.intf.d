lib/mptcp/olia.mli: Coupling Xmp_transport
