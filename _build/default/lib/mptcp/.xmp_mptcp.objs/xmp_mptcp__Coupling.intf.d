lib/mptcp/coupling.mli: Xmp_transport
