lib/mptcp/lia.ml: Coupling Float List Xmp_engine Xmp_transport
