lib/mptcp/mptcp_flow.ml: Array Coupling List Xmp_engine Xmp_net Xmp_transport
