lib/mptcp/mptcp_flow.mli: Coupling Xmp_engine Xmp_net Xmp_transport
