lib/experiments/coexistence.ml: Fatree_eval List Printf Render Xmp_stats Xmp_workload
