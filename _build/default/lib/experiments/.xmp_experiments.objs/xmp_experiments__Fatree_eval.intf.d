lib/experiments/fatree_eval.mli: Xmp_engine Xmp_workload
