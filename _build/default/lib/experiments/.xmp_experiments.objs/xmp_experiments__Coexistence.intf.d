lib/experiments/coexistence.mli: Fatree_eval Xmp_workload
