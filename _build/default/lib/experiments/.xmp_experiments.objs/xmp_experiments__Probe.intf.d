lib/experiments/probe.mli: Xmp_engine
