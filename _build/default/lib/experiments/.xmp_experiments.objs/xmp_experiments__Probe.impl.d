lib/experiments/probe.ml: Array Float Hashtbl List Stdlib Xmp_engine Xmp_net Xmp_stats
