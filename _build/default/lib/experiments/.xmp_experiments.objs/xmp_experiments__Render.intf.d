lib/experiments/render.mli: Xmp_stats
