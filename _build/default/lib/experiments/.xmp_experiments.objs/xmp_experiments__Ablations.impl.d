lib/experiments/ablations.ml: Fatree_eval Fig6 List Printf Render Xmp_core Xmp_engine Xmp_mptcp Xmp_net Xmp_stats Xmp_workload
