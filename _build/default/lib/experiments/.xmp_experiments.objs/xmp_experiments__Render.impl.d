lib/experiments/render.ml: Array List Printf String Xmp_stats
