lib/experiments/fig1.ml: Array List Printf Probe Render Xmp_core Xmp_engine Xmp_mptcp Xmp_net Xmp_stats Xmp_transport
