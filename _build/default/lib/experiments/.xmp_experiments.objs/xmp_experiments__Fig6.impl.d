lib/experiments/fig6.ml: Array List Printf Probe Render Stdlib String Xmp_core Xmp_engine Xmp_mptcp Xmp_net Xmp_stats
