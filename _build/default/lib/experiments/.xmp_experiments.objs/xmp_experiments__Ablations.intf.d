lib/experiments/ablations.mli: Fatree_eval
