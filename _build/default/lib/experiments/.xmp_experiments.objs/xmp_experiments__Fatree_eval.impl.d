lib/experiments/fatree_eval.ml: Array Float Hashtbl List Printf Render Stdlib Xmp_engine Xmp_net Xmp_stats Xmp_workload
