module Sim = Xmp_engine.Sim
module Time = Xmp_engine.Time
module Timeseries = Xmp_stats.Timeseries

type t = {
  sim : Sim.t;
  bucket_s : float;
  horizon_s : float;
  table : (string, Timeseries.t) Hashtbl.t;
  mutable order : string list;  (* reverse first-use order *)
}

let create ~sim ~bucket_s ~horizon_s =
  { sim; bucket_s; horizon_s; table = Hashtbl.create 16; order = [] }

let series t name =
  match Hashtbl.find_opt t.table name with
  | Some s -> s
  | None ->
    let s = Timeseries.create ~bucket:t.bucket_s ~horizon:t.horizon_s in
    Hashtbl.replace t.table name s;
    t.order <- name :: t.order;
    s

let recorder t name =
  let s = series t name in
  fun segments ->
    let bits = float_of_int (segments * Xmp_net.Packet.payload_bytes * 8) in
    Timeseries.record s ~time_s:(Time.to_float_s (Sim.now t.sim)) bits

let names t = List.rev t.order

let rates_bps t name =
  match Hashtbl.find_opt t.table name with
  | Some s -> Timeseries.rates s
  | None ->
    Array.make
      (int_of_float (Float.ceil (t.horizon_s /. t.bucket_s)))
      0.

let normalized t name ~norm_bps =
  Array.map (fun r -> r /. norm_bps) (rates_bps t name)

let bucket_s t = t.bucket_s

let n_buckets t = int_of_float (Float.ceil (t.horizon_s /. t.bucket_s))

let window_mean t name ~from_s ~until_s =
  let rates = rates_bps t name in
  let lo = int_of_float (Float.ceil (from_s /. t.bucket_s)) in
  let hi =
    Stdlib.min (Array.length rates)
      (int_of_float (Float.floor (until_s /. t.bucket_s)))
  in
  if hi <= lo then 0.
  else begin
    let sum = ref 0. in
    for i = lo to hi - 1 do
      sum := !sum +. rates.(i)
    done;
    !sum /. float_of_int (hi - lo)
  end
