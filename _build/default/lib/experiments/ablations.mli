(** Ablation benches for the design choices the paper calls out.

    - {b β sweep}: §2.1/§7 argue β should sit in roughly 2–6 — larger β
      means lower latency headroom but slower convergence and worse
      fairness. We rerun the Figure 6 fairness scenario across β.
    - {b K sweep}: Equation 1 predicts the smallest K that keeps the link
      busy; we sweep K on one bottleneck and report utilization and RTT,
      locating the knee.
    - {b Subflow sweep}: Raiciu et al. say LIA needs ~8 subflows for good
      fat-tree utilization; the paper claims XMP needs far fewer (§5.2.2).
      We sweep subflow counts under the Permutation pattern.
    - {b Coupling comparison}: LIA vs OLIA vs XMP at 2 and 4 subflows
      (OLIA is the §7 future-work fix). *)

val print_beta_sweep : ?scale:float -> ?betas:int list -> unit -> unit

val print_k_sweep : ?ks:int list -> ?beta:int -> unit -> unit

val print_subflow_sweep :
  ?base:Fatree_eval.base -> ?counts:int list -> unit -> unit

val print_coupling_comparison : ?base:Fatree_eval.base -> unit -> unit

val print_flow_size_sweep : ?base:Fatree_eval.base -> unit -> unit
(** Scale artifact made explicit: sweeping flow sizes shows LIA-4's
    advantage over LIA-2 appearing only for long-lived flows (the paper's
    regime), because slow-start restart losses cost many-subflow LIA a
    200 ms RTO each. *)

val print_incast_fanout_sweep : ?base:Fatree_eval.base -> unit -> unit
(** Pure incast microbenchmark (no background): job completion time versus
    fanout, locating the buffer-overflow knee where the 200 ms RTO
    collapse of Figure 9 begins. *)

val print_rto_min_sweep : ?base:Fatree_eval.base -> unit -> unit
(** §6 cites Vasudevan et al.'s fine-grained-RTO proposal and notes it
    "may also help MPTCP improve its throughput": sweep RTOmin under the
    Incast pattern for LIA-2 and XMP-2 and report job completion times and
    background goodput. *)

val print_sack_comparison : ?base:Fatree_eval.base -> unit -> unit
(** How much of the baselines' deficit is loss recovery rather than
    congestion control: rerun the Permutation matrix with SACK-based
    recovery enabled on every flow. *)

val print_queue_occupancy : ?beta:int -> ?k:int -> unit -> unit
(** The paper's premise (§1/§2): ECN-driven schemes hold buffer occupancy
    near K while loss-driven ones fill the buffer. Four flows of each
    scheme share one 1 Gbps bottleneck; the queue is sampled every 100 µs
    and summarized. *)

val print_all : ?base:Fatree_eval.base -> unit -> unit
