(** Named per-subflow rate series for the time-series figures: feeds
    segment-acked callbacks into time buckets, then reads back normalized
    rate curves. *)

type t

val create : sim:Xmp_engine.Sim.t -> bucket_s:float -> horizon_s:float -> t

val recorder : t -> string -> int -> unit
(** [recorder t name] returns a callback suitable for
    [on_segment_acked]/[on_subflow_acked]-style hooks: each call records
    [segments * payload_bytes * 8] bits at the current simulated time
    under series [name]. Series are created on first use and remembered
    in first-use order. *)

val names : t -> string list

val rates_bps : t -> string -> float array
(** Per-bucket average bps for the series (zeros if never recorded). *)

val normalized : t -> string -> norm_bps:float -> float array

val bucket_s : t -> float

val n_buckets : t -> int

val window_mean :
  t -> string -> from_s:float -> until_s:float -> float
(** Mean bps over the buckets fully inside [from_s, until_s). *)
