type kind = Data | Ack

type t = {
  uid : int;
  flow : int;
  subflow : int;
  src : int;
  dst : int;
  path : int;
  kind : kind;
  size : int;
  seq : int;
  ect : bool;
  mutable ce : bool;
  ece_count : int;
  cwr : bool;
  ts : Xmp_engine.Time.t;
  sack : (int * int) list;
}

let data_wire_bytes = 1500
let payload_bytes = 1460
let ack_wire_bytes = 60

let data ~uid ~flow ~subflow ~src ~dst ~path ~seq ~ect ~cwr ~ts =
  {
    uid;
    flow;
    subflow;
    src;
    dst;
    path;
    kind = Data;
    size = data_wire_bytes;
    seq;
    ect;
    ce = false;
    ece_count = 0;
    cwr;
    ts;
    sack = [];
  }

let ack ?(sack = []) ~uid ~flow ~subflow ~src ~dst ~path ~seq ~ece_count ~ts
    () =
  {
    uid;
    flow;
    subflow;
    src;
    dst;
    path;
    kind = Ack;
    size = ack_wire_bytes;
    seq;
    ect = false;
    ce = false;
    ece_count;
    cwr = false;
    ts;
    sack;
  }

let pp fmt p =
  let kind = match p.kind with Data -> "data" | Ack -> "ack" in
  Format.fprintf fmt "%s[f%d.%d %d->%d path%d seq=%d%s%s]" kind p.flow
    p.subflow p.src p.dst p.path p.seq
    (if p.ce then " CE" else "")
    (if p.ece_count > 0 then Printf.sprintf " ece=%d" p.ece_count else "")
