(** Network node: a host or a switch.

    A node owns outgoing links indexed by port. A switch forwards transit
    packets through a routing function installed by the topology builder;
    a host delivers packets addressed to itself to its local receive
    handler (the transport demultiplexer). *)

type kind = Host | Switch

type t

val create : kind:kind -> id:int -> name:string -> t

val id : t -> int

val kind : t -> kind

val name : t -> string

val add_port : t -> Link.t -> int
(** Attaches an outgoing link; returns its port number. Links are directed:
    the topology builder wires the far end's {!receive} as the link's
    receiver. *)

val port : t -> int -> Link.t

val n_ports : t -> int

val set_route : t -> (Packet.t -> int) -> unit
(** Installs the forwarding function: maps a transit packet to an egress
    port. Required for switches and for hosts that originate traffic
    through {!send}. *)

val set_local_rx : t -> (Packet.t -> unit) -> unit
(** Handler for packets whose destination is this host. *)

val receive : t -> Packet.t -> unit
(** Entry point for packets arriving on any ingress link. Delivers locally
    when [dst = id] (hosts), otherwise forwards via the routing function. *)

val send : t -> Packet.t -> unit
(** Originates a packet from this host: forwards it via the routing
    function exactly like a transit packet. *)

val packets_forwarded : t -> int
