type rate = int

let bps r = r
let kbps r = int_of_float (r *. 1e3)
let mbps r = int_of_float (r *. 1e6)
let gbps r = int_of_float (r *. 1e9)

let tx_time rate ~bytes =
  if rate <= 0 then invalid_arg "Units.tx_time: rate must be positive";
  let bits = bytes * 8 in
  (* ceil (bits * 1e9 / rate) *)
  ((bits * 1_000_000_000) + rate - 1) / rate

let to_mbps r = float_of_int r /. 1e6
let to_gbps r = float_of_int r /. 1e9
let bytes_per_sec r = float_of_int r /. 8.

let pp_rate fmt r =
  if r >= 1_000_000_000 then Format.fprintf fmt "%.1fGbps" (to_gbps r)
  else if r >= 1_000_000 then Format.fprintf fmt "%.0fMbps" (to_mbps r)
  else Format.fprintf fmt "%dbps" r
