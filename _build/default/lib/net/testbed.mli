(** Parallel-bottleneck testbed topologies.

    A bank of [n_left] sender hosts, a bank of [n_right] receiver hosts and
    [m] two-way bottleneck links between them, each bottleneck fronted by a
    pair of switches (the paper's DummyNet boxes):

    {v
      S1 --+                         +-- D1
      S2 --+--[IN_j]==L_j==[OUT_j]--+-- D2      (one IN/OUT pair per j)
      S3 --+                         +-- D3
    v}

    Every host has a dedicated access link to every IN (senders) or OUT
    (receivers) switch, so a packet's [path] field selects which bottleneck
    it crosses. Access links are fast and unmarked: the bottlenecks are the
    only congestion points, exactly as in the paper's testbed (§4) and
    ring/torus simulation (§5.1).

    This one builder instantiates: Figure 1's single bottleneck, Figure
    3(a)'s two-path traffic-shifting testbed, Figure 3(b)'s shared
    bottleneck fairness testbed, and Figure 5's five-bottleneck ring. *)

type spec = {
  rate : Units.rate;
  delay : Xmp_engine.Time.t;  (** one-way propagation of the bottleneck *)
  disc : unit -> Queue_disc.t;
}

type t

val create :
  net:Network.t ->
  n_left:int ->
  n_right:int ->
  bottlenecks:spec list ->
  ?access_rate:Units.rate ->
  ?access_delay:Xmp_engine.Time.t ->
  ?access_capacity_pkts:int ->
  unit ->
  t
(** Access links default to 10 Gbps, 5 µs, 1000-packet drop-tail. *)

val net : t -> Network.t

val n_bottlenecks : t -> int

val left_id : t -> int -> int
(** Node id of sender host [i]. *)

val right_id : t -> int -> int

val bottleneck_fwd : t -> int -> Link.t
(** Left-to-right direction of bottleneck [j]. *)

val bottleneck_rev : t -> int -> Link.t

val set_bottleneck_up : t -> int -> bool -> unit
(** Takes both directions of bottleneck [j] up or down (Figure 7's "L3 is
    closed" event). *)

val one_way_delay : t -> int -> Xmp_engine.Time.t
(** End-to-end propagation (host to host) through bottleneck [j]:
    [2 * access_delay + bottleneck delay]. The zero-load RTT is twice
    this. *)
