(** Bandwidth and size units.

    Rates are integer bits per second, so serialization times stay exact in
    integer nanoseconds. *)

type rate = int
(** Bits per second. *)

val bps : int -> rate

val kbps : float -> rate

val mbps : float -> rate

val gbps : float -> rate

val tx_time : rate -> bytes:int -> Xmp_engine.Time.t
(** Serialization delay of [bytes] at the given rate, rounded up to a whole
    nanosecond so a link can never send faster than its rate. *)

val to_mbps : rate -> float

val to_gbps : rate -> float

val bytes_per_sec : rate -> float

val pp_rate : Format.formatter -> rate -> unit
