(** Packets.

    Sequence numbers are in whole segments (one data packet carries one
    segment), matching the paper's packet-granularity window arithmetic.
    Wire sizes follow the paper's BDP computations: 1500-byte data packets
    (1460 B payload) and 60-byte ACKs. *)

type kind = Data | Ack

type t = {
  uid : int;  (** unique within a simulation run *)
  flow : int;  (** flow identifier *)
  subflow : int;  (** subflow index within the flow (0 for single-path) *)
  src : int;  (** source host id *)
  dst : int;  (** destination host id *)
  path : int;
      (** path selector: models the destination address choice that steers a
          subflow onto one of the equal-cost paths *)
  kind : kind;
  size : int;  (** bytes on the wire *)
  seq : int;
      (** data: segment index; ack: cumulative acknowledgement (the next
          expected segment) *)
  ect : bool;  (** ECN-capable transport codepoint *)
  mutable ce : bool;  (** Congestion Experienced, set by switches *)
  ece_count : int;
      (** acks only: number of CE marks echoed by this ack. The paper's
          2-bit ECE/CWR encoding caps this at 3 for XMP. *)
  cwr : bool;  (** data only: Congestion Window Reduced (classic ECN) *)
  ts : Xmp_engine.Time.t;
      (** data: send timestamp; ack: echoed timestamp for RTT sampling *)
  sack : (int * int) list;
      (** acks only: selective acknowledgement blocks [start, stop) of
          segments held above the cumulative ack, at most 3 (the option
          space of a real SACK header) *)
}

val data_wire_bytes : int
(** 1500 *)

val payload_bytes : int
(** 1460 *)

val ack_wire_bytes : int
(** 60 *)

val data :
  uid:int ->
  flow:int ->
  subflow:int ->
  src:int ->
  dst:int ->
  path:int ->
  seq:int ->
  ect:bool ->
  cwr:bool ->
  ts:Xmp_engine.Time.t ->
  t

val ack :
  ?sack:(int * int) list ->
  uid:int ->
  flow:int ->
  subflow:int ->
  src:int ->
  dst:int ->
  path:int ->
  seq:int ->
  ece_count:int ->
  ts:Xmp_engine.Time.t ->
  unit ->
  t
(** ACKs are not ECN-capable (per RFC 3168, ACKs are sent non-ECT). *)

val pp : Format.formatter -> t -> unit
