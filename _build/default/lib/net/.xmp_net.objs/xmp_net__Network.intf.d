lib/net/network.mli: Link Node Packet Queue_disc Units Xmp_engine
