lib/net/units.mli: Format Xmp_engine
