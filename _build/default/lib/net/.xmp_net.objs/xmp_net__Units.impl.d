lib/net/units.ml: Format
