lib/net/link.ml: Packet Queue_disc Units Xmp_engine
