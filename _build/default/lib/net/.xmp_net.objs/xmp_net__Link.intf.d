lib/net/link.mli: Packet Queue_disc Units Xmp_engine
