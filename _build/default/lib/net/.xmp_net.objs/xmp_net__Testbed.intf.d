lib/net/testbed.mli: Link Network Queue_disc Units Xmp_engine
