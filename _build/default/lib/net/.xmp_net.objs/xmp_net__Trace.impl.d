lib/net/trace.ml: Format Link List Packet Queue_disc String Xmp_engine
