lib/net/fat_tree.mli: Format Network Queue_disc Units Xmp_engine
