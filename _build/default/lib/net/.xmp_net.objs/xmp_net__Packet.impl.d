lib/net/packet.ml: Format Printf Xmp_engine
