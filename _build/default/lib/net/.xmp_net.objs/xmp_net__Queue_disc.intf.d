lib/net/queue_disc.mli: Packet Xmp_stats
