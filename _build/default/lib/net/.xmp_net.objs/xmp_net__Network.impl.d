lib/net/network.ml: Array Hashtbl Link List Node Packet Printf Xmp_engine
