lib/net/leaf_spine.mli: Network Queue_disc Units Xmp_engine
