lib/net/queue_disc.ml: Float Packet Queue Xmp_stats
