lib/net/node.ml: Array Format Link Packet
