lib/net/fat_tree.ml: Array Format Network Node Packet Printf Units Xmp_engine
