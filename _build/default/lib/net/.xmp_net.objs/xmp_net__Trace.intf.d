lib/net/trace.mli: Link Packet Xmp_engine
