lib/net/packet.mli: Format Xmp_engine
