lib/net/leaf_spine.ml: Array Network Node Packet Printf Units Xmp_engine
