lib/net/testbed.ml: Array Link Network Node Packet Printf Queue_disc Units Xmp_engine
