(** Packet-event tracing.

    A trace collects timestamped per-packet events — link deliveries, CE
    marks, queue drops — into memory, with an optional packet filter.
    Attach it to the links you care about after building the topology;
    detached links cost nothing.

    {[
      let trace = Trace.create ~sim () in
      Trace.watch_link trace bottleneck;   (* deliveries + marks + drops *)
      ...run...
      print_string (Trace.dump trace);
    ]} *)

type event_kind = Delivered | Marked | Dropped

type event = {
  at : Xmp_engine.Time.t;
  kind : event_kind;
  where : string;  (** link name *)
  packet : string;  (** rendered packet (records outlive mutation) *)
  flow : int;
  subflow : int;
  seq : int;
}

type t

val create :
  ?filter:(Packet.t -> bool) -> ?limit:int -> sim:Xmp_engine.Sim.t -> unit ->
  t
(** [filter] selects which packets are recorded (default: all). [limit]
    caps stored events (default 100_000); once full, further events are
    counted but not stored. *)

val watch_link : t -> Link.t -> unit
(** Records a [Delivered] event for every packet the link hands to its
    receiver, and [Marked]/[Dropped] events from its queue discipline.
    Replaces any hooks previously installed on that discipline. *)

val events : t -> event list
(** In arrival order. *)

val count : t -> int
(** Total events seen (may exceed the stored list when over [limit]). *)

val count_kind : t -> event_kind -> int

val dump : t -> string
(** One line per stored event: ["[12us] seg->agg DELIVER data[f1.0 ...]"]. *)

val clear : t -> unit
