(** XMP parameter rules (§2.1, Equation 1).

    XMP has two configurable parameters: the switch marking threshold [K]
    (packets) and the window reduction factor [β] ([cwnd] shrinks by
    [cwnd/β] on congestion). For full utilization with a window oscillating
    between [K + BDP] and [(K + BDP)(1 − 1/β)], Equation 1 requires

    {v K ≥ BDP / (β − 1),  β ≥ 2. v}

    The paper picks [β = 4] and [K = 10] for 1 Gbps / sub-400 µs DCNs
    (BDP ≈ 33 packets) and argues β should stay within roughly 2–6. *)

type t = {
  beta : int;  (** window reduction divisor, ≥ 2 *)
  k : int;  (** marking threshold, packets *)
}

val default : t
(** β = 4, K = 10 — the paper's recommended DCN setting. *)

val make : beta:int -> k:int -> t
(** Validates β ≥ 2 and K ≥ 1. *)

val bdp_packets :
  rate:Xmp_net.Units.rate -> rtt:Xmp_engine.Time.t -> packet_bytes:int ->
  float
(** Bandwidth-delay product in packets: [rate · rtt / (8 · packet_bytes)]. *)

val min_k : bdp_packets:float -> beta:int -> int
(** Equation 1: the smallest integer [K] that keeps the link busy,
    [⌈BDP / (β − 1)⌉]. *)

val sufficient : t -> bdp_packets:float -> bool
(** Whether [t.k] satisfies Equation 1 for the given BDP. *)

val for_network :
  rate:Xmp_net.Units.rate ->
  rtt:Xmp_engine.Time.t ->
  ?packet_bytes:int ->
  beta:int ->
  unit ->
  t
(** Parameters with the minimal Equation-1-compliant [K] for a network. *)
