(** Fluid model of BOS and TraSh (§2, Equations 2–9).

    These are the analytic counterparts of the packet-level
    implementation: the window ODE, its equilibrium, the utility function
    that BOS maximizes, and a fixed-point iterator for TraSh's two-level
    convergence. The test suite checks the packet simulator against these
    predictions, and Proposition 1 is verified as a property test. *)

val cwnd_derivative :
  beta:int -> delta:float -> t_round:float -> p:float -> w:float -> float
(** Equation 2: [dw/dt = δ(1−p)/T − w·p/(T·β)]. *)

val equilibrium_p : beta:int -> delta:float -> w:float -> float
(** Equation 3 (generalized to δ, Equation 8): the round-marking
    probability at equilibrium, [1 / (1 + w/(δβ))]. *)

val equilibrium_rate :
  beta:int -> delta:float -> t_round:float -> p:float -> float
(** Inverse of Equation 8: [x = δβ(1−p) / (T·p)] (segments per second). *)

val utility : beta:int -> delta:float -> t_round:float -> float -> float
(** Equation 4/6: [U(x) = (δβ/T)·log(1 + T·x/(δβ))]. *)

val utility_deriv :
  beta:int -> delta:float -> t_round:float -> float -> float
(** Equation 7: [U'(y) = 1 / (1 + y·T/(δβ))] — the flow's expected
    congestion extent on its virtual single path. *)

val trash_delta : rtt:float -> rate:float -> min_rtt:float -> total_rate:float -> float
(** Equation 9: [δ = (T_r·x_r) / (T_min·y)]. *)

val integrate_bos :
  beta:int ->
  delta:float ->
  t_round:float ->
  p_of_w:(float -> float) ->
  w0:float ->
  dt:float ->
  steps:int ->
  float
(** Euler integration of Equation 2 with a window-dependent marking
    probability; returns the final window. *)

(** A path in the fixed-point model: its RTT and how congested it looks as
    a function of the rate pushed onto it. [p_of_rate] must be strictly
    increasing with values in (0, 1]. *)
type path = { rtt : float; p_of_rate : float -> float }

val rate_for_delta : beta:int -> path -> delta:float -> float
(** Inner level of TraSh: the equilibrium rate on a path for a given δ
    (solves Equation 8 against the path's congestion law by bisection). *)

type trash_state = { deltas : float array; rates : float array }

val trash_fixed_point :
  beta:int -> paths:path list -> iterations:int -> trash_state
(** Outer level: alternates rate convergence and the Equation 9 δ update
    (Algorithm TraSh, steps 2–4) for [iterations] rounds starting from
    δ = 1. *)

val congestion_spread :
  beta:int -> paths:path list -> trash_state -> float
(** Max − min of per-path equilibrium congestion [p̃_r] at a state; tends
    to 0 as TraSh converges (Congestion Equality Principle). *)
