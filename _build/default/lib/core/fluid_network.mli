(** Multi-flow, multi-link fluid dynamics of BOS — the "further
    theoretical analysis" the paper's §7 calls for, usable to predict
    Figure 1/6-style convergence without running the packet simulator.

    The model couples the window ODE (Equation 2) of every subflow with
    explicit queue dynamics at every link:

    - queue:    [dq_l/dt = Σ_{r ∋ l} x_r − c_l], clamped at 0,
    - marking:  a smooth sigmoid around the threshold K (the fluid limit
      of instantaneous-threshold marking),
    - rtt:      base propagation plus the queueing delay of every link on
      the path,
    - window:   [dw_r/dt = δ_r(1−p_r)/T_r − w_r·p_r/(T_r·β)] with
      [p_r = 1 − Π_l (1 − p_l)],
    - TraSh:    δ is refreshed from Equation 9 at every step when the
      flow has multiple subflows.

    Time is advanced by explicit Euler steps. The test suite checks the
    fixed points against the packet-level simulator. *)

type link = {
  capacity : float;  (** segments per second *)
  k_threshold : float;  (** marking threshold, packets *)
  mark_sharpness : float;
      (** sigmoid steepness (packets); smaller = closer to the
          discontinuous rule *)
}

val link :
  ?mark_sharpness:float -> rate:Xmp_net.Units.rate -> k:int -> unit -> link
(** Convenience: capacity from a bit rate (1500 B wire segments). *)

type subflow = {
  flow : int;  (** owning flow id (couples δ across subflows) *)
  links : int list;  (** indices into the link array *)
  base_rtt : float;  (** propagation RTT, seconds *)
}

type t

val create : beta:int -> links:link list -> subflows:subflow list -> t

val step : t -> dt:float -> unit
(** One Euler step. *)

val run : t -> dt:float -> steps:int -> unit

val window : t -> int -> float
(** Current window of subflow [i], segments. *)

val rate : t -> int -> float
(** Current rate of subflow [i], segments per second. *)

val queue : t -> int -> float
(** Current queue of link [l], packets. *)

val delta : t -> int -> float
(** Current TraSh gain of subflow [i]. *)

val flow_rate : t -> int -> float
(** Sum of subflow rates of flow [id]. *)

val total_arrival : t -> int -> float
(** Aggregate arrival rate at link [l], segments per second. *)
