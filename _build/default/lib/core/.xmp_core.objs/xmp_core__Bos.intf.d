lib/core/bos.mli: Xmp_transport
