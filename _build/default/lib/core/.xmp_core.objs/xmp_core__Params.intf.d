lib/core/params.mli: Xmp_engine Xmp_net
