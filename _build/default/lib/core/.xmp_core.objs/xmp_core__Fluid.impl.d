lib/core/fluid.ml: Array Float
