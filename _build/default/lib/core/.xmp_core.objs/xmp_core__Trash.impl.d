lib/core/trash.ml: Bos Float Xmp_engine Xmp_mptcp Xmp_transport
