lib/core/xmp.ml: Bos Params Trash Xmp_mptcp Xmp_net Xmp_transport
