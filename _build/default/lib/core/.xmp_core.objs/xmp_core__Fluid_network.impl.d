lib/core/fluid_network.ml: Array Float Hashtbl List Option Trash
