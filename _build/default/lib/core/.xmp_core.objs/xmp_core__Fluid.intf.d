lib/core/fluid.mli:
