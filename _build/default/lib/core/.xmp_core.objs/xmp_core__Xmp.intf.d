lib/core/xmp.mli: Bos Params Xmp_engine Xmp_mptcp Xmp_net Xmp_transport
