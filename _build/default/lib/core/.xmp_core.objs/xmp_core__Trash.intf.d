lib/core/trash.mli: Bos Xmp_mptcp
