lib/core/params.ml: Float Stdlib Xmp_engine Xmp_net
