lib/core/fluid_network.mli: Xmp_net
