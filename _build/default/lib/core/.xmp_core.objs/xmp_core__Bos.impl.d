lib/core/bos.ml: Float Xmp_transport
