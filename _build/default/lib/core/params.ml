type t = { beta : int; k : int }

let make ~beta ~k =
  if beta < 2 then invalid_arg "Params.make: beta must be >= 2";
  if k < 1 then invalid_arg "Params.make: k must be >= 1";
  { beta; k }

let default = make ~beta:4 ~k:10

let bdp_packets ~rate ~rtt ~packet_bytes =
  if packet_bytes <= 0 then invalid_arg "Params.bdp_packets";
  float_of_int rate
  *. Xmp_engine.Time.to_float_s rtt
  /. (8. *. float_of_int packet_bytes)

let min_k ~bdp_packets ~beta =
  if beta < 2 then invalid_arg "Params.min_k: beta must be >= 2";
  Stdlib.max 1 (int_of_float (Float.ceil (bdp_packets /. float_of_int (beta - 1))))

let sufficient t ~bdp_packets = t.k >= min_k ~bdp_packets ~beta:t.beta

let for_network ~rate ~rtt ?(packet_bytes = Xmp_net.Packet.data_wire_bytes)
    ~beta () =
  let bdp = bdp_packets ~rate ~rtt ~packet_bytes in
  make ~beta ~k:(min_k ~bdp_packets:bdp ~beta)
