(** TraSh — Traffic Shifting (§2.2 and Algorithm 1).

    Couples the subflows of an MPTCP flow by retuning each subflow's BOS
    additive-increase gain once per round:

    {v δ_r = (T_r · x_r) / (T_min · y) = w_r / (Σ_i w_i/T_i · T_min) v}

    where [x_r = w_r / T_r] is the subflow's instantaneous rate, [y] the
    flow's total rate and [T_min] the smallest smoothed subflow RTT. A
    subflow on a path more congested than the flow's aggregate sees its δ
    shrink (traffic moves off); a subflow on a less congested path sees δ
    grow (Proposition 1) — until all used paths are equally congested
    (Congestion Equality Principle). With one subflow, δ = 1 and TraSh
    degenerates to plain BOS. *)

val delta :
  own_cwnd:float -> total_rate:float -> min_rtt_s:float -> float
(** The Equation 9 / Algorithm 1 gain; exposed for unit and property
    tests. Returns 1 when rates are not yet measurable. *)

val coupling : ?params:Bos.params -> unit -> Xmp_mptcp.Coupling.t
(** The XMP coupling: BOS per subflow with TraSh-managed δ. *)
