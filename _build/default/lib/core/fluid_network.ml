type link = {
  capacity : float;
  k_threshold : float;
  mark_sharpness : float;
}

let link ?(mark_sharpness = 2.) ~rate ~k () =
  if rate <= 0 || k < 1 then invalid_arg "Fluid_network.link";
  {
    capacity = float_of_int rate /. 8. /. 1500.;
    k_threshold = float_of_int k;
    mark_sharpness;
  }

type subflow = { flow : int; links : int list; base_rtt : float }

type t = {
  beta : int;
  links : link array;
  subflows : subflow array;
  w : float array;  (* windows *)
  q : float array;  (* queues *)
  deltas : float array;
}

let create ~beta ~links ~subflows =
  if beta < 2 then invalid_arg "Fluid_network.create: beta";
  if links = [] || subflows = [] then
    invalid_arg "Fluid_network.create: empty";
  let links = Array.of_list links in
  let subflows = Array.of_list subflows in
  Array.iter
    (fun s ->
      if s.base_rtt <= 0. then invalid_arg "Fluid_network: base_rtt";
      List.iter
        (fun l ->
          if l < 0 || l >= Array.length links then
            invalid_arg "Fluid_network: link index")
        s.links)
    subflows;
  {
    beta;
    links;
    subflows;
    w = Array.make (Array.length subflows) 2.;
    q = Array.make (Array.length links) 0.;
    deltas = Array.make (Array.length subflows) 1.;
  }

(* queueing delay of link [l] in seconds *)
let qdelay t l = t.q.(l) /. t.links.(l).capacity

let rtt t i =
  let s = t.subflows.(i) in
  List.fold_left (fun acc l -> acc +. qdelay t l) s.base_rtt s.links

let rate t i = t.w.(i) /. rtt t i

(* sigmoid marking probability of link [l] *)
let mark_p t l =
  let lk = t.links.(l) in
  1. /. (1. +. exp (-.(t.q.(l) -. lk.k_threshold) /. lk.mark_sharpness))

(* probability that a round of subflow [i] sees at least one mark *)
let path_p t i =
  let clean =
    List.fold_left
      (fun acc l -> acc *. (1. -. mark_p t l))
      1. t.subflows.(i).links
  in
  1. -. clean

let refresh_deltas t =
  (* Equation 9 per flow, from the current windows and RTTs *)
  let n = Array.length t.subflows in
  let totals = Hashtbl.create 8 in
  let min_rtts = Hashtbl.create 8 in
  for i = 0 to n - 1 do
    let f = t.subflows.(i).flow in
    let r = rate t i in
    Hashtbl.replace totals f
      (r +. Option.value ~default:0. (Hashtbl.find_opt totals f));
    let ti = rtt t i in
    let cur =
      Option.value ~default:Float.max_float (Hashtbl.find_opt min_rtts f)
    in
    if ti < cur then Hashtbl.replace min_rtts f ti
  done;
  for i = 0 to n - 1 do
    let f = t.subflows.(i).flow in
    let total = Hashtbl.find totals f in
    let min_rtt = Hashtbl.find min_rtts f in
    t.deltas.(i) <-
      Trash.delta ~own_cwnd:t.w.(i) ~total_rate:total ~min_rtt_s:min_rtt
  done

let step t ~dt =
  refresh_deltas t;
  let n = Array.length t.subflows in
  let arrivals = Array.make (Array.length t.links) 0. in
  for i = 0 to n - 1 do
    let x = rate t i in
    List.iter (fun l -> arrivals.(l) <- arrivals.(l) +. x) t.subflows.(i).links
  done;
  (* windows *)
  for i = 0 to n - 1 do
    let p = path_p t i in
    let ti = rtt t i in
    let dw =
      (t.deltas.(i) *. (1. -. p) /. ti)
      -. (t.w.(i) *. p /. (ti *. float_of_int t.beta))
    in
    t.w.(i) <- Float.max 1. (t.w.(i) +. (dt *. dw))
  done;
  (* queues *)
  Array.iteri
    (fun l lk ->
      let dq = arrivals.(l) -. lk.capacity in
      t.q.(l) <- Float.max 0. (t.q.(l) +. (dt *. dq)))
    t.links

let run t ~dt ~steps =
  for _ = 1 to steps do
    step t ~dt
  done

let window t i = t.w.(i)
let queue t l = t.q.(l)
let delta t i = t.deltas.(i)

let flow_rate t id =
  let sum = ref 0. in
  Array.iteri
    (fun i s -> if s.flow = id then sum := !sum +. rate t i)
    t.subflows;
  !sum

let total_arrival t l =
  let sum = ref 0. in
  Array.iteri
    (fun i (s : subflow) ->
      if List.mem l s.links then sum := !sum +. rate t i)
    t.subflows;
  !sum
