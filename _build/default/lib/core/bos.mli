(** Buffer Occupancy Suppression — XMP's single-path congestion avoidance
    (§2.1 and Algorithm 1).

    Switches mark arriving packets with CE once the instantaneous queue
    exceeds K; the receiver echoes every CE (up to 3 per ACK via the 2-bit
    ECE/CWR encoding). The sender:

    - {b slow start}: +1 segment per clean ACK; the first congestion echo
      sets [ssthresh ← cwnd − 1] and drops it into congestion avoidance;
    - {b congestion avoidance}: on each round end (an ACK passing the
      [beg_seq] snapshot of Figure 2), [adder ← adder + δ] and the window
      grows by [⌊adder⌋];
    - {b reduction}: on the first congestion echo of a round,
      [cwnd ← max(cwnd − max(cwnd/β, 1), 2)], then the NORMAL→REDUCED
      state machine ([cwr_seq]) suppresses further reductions until every
      ACK of the pre-reduction window has returned.

    The gain [δ] is a closure so the TraSh coupling can retune it each
    round; the single-path default is the constant 1 (plain BOS). *)

type params = {
  beta : int;  (** reduction divisor; paper default 4 *)
  init_cwnd : float;
  min_cwnd : float;  (** floor after reductions; the paper uses 2 *)
}

val default_params : params

val make :
  ?params:params ->
  ?delta:(unit -> float) ->
  ?on_round:(unit -> unit) ->
  unit ->
  Xmp_transport.Cc.factory
(** [delta] is sampled once per round end (default: constant 1).
    [on_round] fires after the round bookkeeping — the hook TraSh uses to
    refresh its rate estimates. *)
