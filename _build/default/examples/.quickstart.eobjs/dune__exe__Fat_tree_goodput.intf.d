examples/fat_tree_goodput.mli:
