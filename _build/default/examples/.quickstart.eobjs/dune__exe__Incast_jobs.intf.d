examples/incast_jobs.mli:
