examples/incast_jobs.ml: Printf Xmp_engine Xmp_stats Xmp_workload
