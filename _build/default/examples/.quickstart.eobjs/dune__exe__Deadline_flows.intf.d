examples/deadline_flows.mli:
