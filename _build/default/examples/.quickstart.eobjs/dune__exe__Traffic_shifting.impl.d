examples/traffic_shifting.ml: Array Printf Xmp_core Xmp_engine Xmp_mptcp Xmp_net Xmp_transport
