examples/deadline_flows.ml: Array List Printf Xmp_core Xmp_engine Xmp_net Xmp_transport
