examples/traffic_shifting.mli:
