examples/fat_tree_goodput.ml: List Printf Xmp_engine Xmp_stats Xmp_workload
