examples/quickstart.mli:
