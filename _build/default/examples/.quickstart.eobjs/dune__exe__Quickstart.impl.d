examples/quickstart.ml: Array List Printf Xmp_core Xmp_engine Xmp_mptcp Xmp_net Xmp_transport
