module Params = Xmp_core.Params
module Time = Xmp_engine.Time
module Units = Xmp_net.Units

let checkf = Alcotest.(check (float 1e-6))

let test_default () =
  Alcotest.(check int) "beta" 4 Params.default.Params.beta;
  Alcotest.(check int) "k" 10 Params.default.Params.k

let test_validation () =
  Alcotest.check_raises "beta < 2"
    (Invalid_argument "Params.make: beta must be >= 2") (fun () ->
      ignore (Params.make ~beta:1 ~k:10));
  Alcotest.check_raises "k < 1"
    (Invalid_argument "Params.make: k must be >= 1") (fun () ->
      ignore (Params.make ~beta:4 ~k:0))

let test_bdp () =
  (* paper's example: 1 Gbps x 225 us / (8 * 1500) ≈ 18.75 packets *)
  checkf "paper bdp" 18.75
    (Params.bdp_packets ~rate:(Units.gbps 1.) ~rtt:(Time.us 225)
       ~packet_bytes:1500);
  (* and the DCN setting: 1 Gbps x 400 us ≈ 33 packets *)
  Alcotest.(check bool) "DCN bdp ~33" true
    (Float.abs
       (Params.bdp_packets ~rate:(Units.gbps 1.) ~rtt:(Time.us 400)
          ~packet_bytes:1500
       -. 33.3)
    < 0.1)

let test_min_k () =
  (* Equation 1: K >= BDP / (beta - 1) *)
  Alcotest.(check int) "beta 2 needs K >= BDP" 19
    (Params.min_k ~bdp_packets:18.75 ~beta:2);
  Alcotest.(check int) "beta 4" 7 (Params.min_k ~bdp_packets:18.75 ~beta:4);
  Alcotest.(check int) "at least 1" 1 (Params.min_k ~bdp_packets:0.1 ~beta:4)

let test_sufficient () =
  let p = Params.make ~beta:4 ~k:10 in
  Alcotest.(check bool) "10 >= 7" true (Params.sufficient p ~bdp_packets:18.75);
  Alcotest.(check bool) "10 < 12" false
    (Params.sufficient p ~bdp_packets:34.)

let test_for_network () =
  let p =
    Params.for_network ~rate:(Units.gbps 1.) ~rtt:(Time.us 225) ~beta:4 ()
  in
  Alcotest.(check int) "minimal K" 7 p.Params.k;
  Alcotest.(check int) "beta carried" 4 p.Params.beta

let prop_eq1_monotone_in_beta =
  QCheck.Test.make ~count:100
    ~name:"Equation 1 bound shrinks as beta grows"
    QCheck.(pair (float_range 1. 200.) (int_range 2 19))
    (fun (bdp, beta) ->
      Params.min_k ~bdp_packets:bdp ~beta
      >= Params.min_k ~bdp_packets:bdp ~beta:(beta + 1))

let suite =
  [
    Alcotest.test_case "defaults" `Quick test_default;
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "bdp computation" `Quick test_bdp;
    Alcotest.test_case "equation 1 bound" `Quick test_min_k;
    Alcotest.test_case "sufficiency check" `Quick test_sufficient;
    Alcotest.test_case "for_network" `Quick test_for_network;
    QCheck_alcotest.to_alcotest prop_eq1_monotone_in_beta;
  ]
