let () =
  Alcotest.run "xmp"
    [
      ("engine.time", Test_time.suite);
      ("engine.event_queue", Test_event_queue.suite);
      ("engine.sim", Test_sim.suite);
      ("engine.slog", Test_slog.suite);
      ("engine.periodic", Test_periodic.suite);
      ("stats", Test_stats.suite);
      ("net.basics", Test_net_basics.suite);
      ("net.link", Test_link.suite);
      ("net.network", Test_network.suite);
      ("net.topologies", Test_topologies.suite);
      ("net.trace", Test_trace.suite);
      ("net.leaf_spine", Test_leaf_spine.suite);
      ("transport.estimator", Test_rtt_estimator.suite);
      ("transport.cc", Test_cc.suite);
      ("transport.tcp", Test_tcp.suite);
      ("transport.tcp_ecn", Test_tcp_ecn.suite);
      ("transport.tcp_edges", Test_tcp_edges.suite);
      ("transport.sack", Test_sack.suite);
      ("mptcp", Test_mptcp.suite);
      ("core.params", Test_params.suite);
      ("core.bos", Test_bos.suite);
      ("core.trash", Test_trash.suite);
      ("core.fluid", Test_fluid.suite);
      ("core.fluid_network", Test_fluid_network.suite);
      ("transport.d2tcp", Test_d2tcp.suite);
      ("core.facade", Test_xmp_facade.suite);
      ("workload", Test_workload.suite);
      ("workload.driver_extra", Test_driver_extra.suite);
      ("experiments", Test_experiments.suite);
      ("experiments.render", Test_render.suite);
      ("experiments.ablations", Test_ablations.suite);
      ("misc", Test_misc.suite);
      ("fuzz", Test_fuzz.suite);
    ]
