module Q = Xmp_engine.Event_queue

let test_empty () =
  let q = Q.create () in
  Alcotest.(check bool) "empty" true (Q.is_empty q);
  Alcotest.(check int) "length" 0 (Q.length q);
  Alcotest.(check bool) "pop none" true (Q.pop q = None);
  Alcotest.(check bool) "peek none" true (Q.peek_time q = None)

let test_ordering () =
  let q = Q.create () in
  Q.add q ~time:30 ~seq:0 "c";
  Q.add q ~time:10 ~seq:1 "a";
  Q.add q ~time:20 ~seq:2 "b";
  let pop () =
    match Q.pop q with Some (_, _, v) -> v | None -> Alcotest.fail "empty"
  in
  Alcotest.(check string) "first" "a" (pop ());
  Alcotest.(check string) "second" "b" (pop ());
  Alcotest.(check string) "third" "c" (pop ())

let test_fifo_ties () =
  let q = Q.create () in
  for i = 0 to 9 do
    Q.add q ~time:5 ~seq:i i
  done;
  for i = 0 to 9 do
    match Q.pop q with
    | Some (_, seq, v) ->
      Alcotest.(check int) "seq order" i seq;
      Alcotest.(check int) "payload order" i v
    | None -> Alcotest.fail "queue exhausted early"
  done

let test_growth () =
  let q = Q.create () in
  let n = 10_000 in
  for i = n downto 1 do
    Q.add q ~time:i ~seq:(n - i) i
  done;
  Alcotest.(check int) "length" n (Q.length q);
  let prev = ref min_int in
  for _ = 1 to n do
    match Q.pop q with
    | Some (t, _, _) ->
      Alcotest.(check bool) "non-decreasing" true (t >= !prev);
      prev := t
    | None -> Alcotest.fail "exhausted"
  done;
  Alcotest.(check bool) "drained" true (Q.is_empty q)

let test_peek () =
  let q = Q.create () in
  Q.add q ~time:42 ~seq:0 ();
  Alcotest.(check bool) "peek" true (Q.peek_time q = Some 42);
  Alcotest.(check int) "peek does not pop" 1 (Q.length q)

let test_clear () =
  let q = Q.create () in
  Q.add q ~time:1 ~seq:0 ();
  Q.add q ~time:2 ~seq:1 ();
  Q.clear q;
  Alcotest.(check bool) "cleared" true (Q.is_empty q);
  Q.add q ~time:3 ~seq:2 ();
  Alcotest.(check bool) "usable after clear" true (Q.peek_time q = Some 3)

let prop_heap_sorts =
  QCheck.Test.make ~count:200 ~name:"heap pops in (time, seq) order"
    QCheck.(list (int_bound 1000))
    (fun times ->
      let q = Q.create () in
      List.iteri (fun i t -> Q.add q ~time:t ~seq:i t) times;
      let rec drain acc =
        match Q.pop q with
        | Some (t, s, _) -> drain ((t, s) :: acc)
        | None -> List.rev acc
      in
      let popped = drain [] in
      let sorted = List.sort compare popped in
      popped = sorted && List.length popped = List.length times)

let suite =
  [
    Alcotest.test_case "empty queue" `Quick test_empty;
    Alcotest.test_case "time ordering" `Quick test_ordering;
    Alcotest.test_case "FIFO on equal times" `Quick test_fifo_ties;
    Alcotest.test_case "growth to 10k" `Quick test_growth;
    Alcotest.test_case "peek" `Quick test_peek;
    Alcotest.test_case "clear" `Quick test_clear;
    QCheck_alcotest.to_alcotest prop_heap_sorts;
  ]
