module Fluid = Xmp_core.Fluid

let checkf = Alcotest.(check (float 1e-6))

let test_equilibrium_p () =
  (* Equation 3 with delta = 1: p = 1 / (1 + w/beta) *)
  checkf "w=12, beta=4" 0.25 (Fluid.equilibrium_p ~beta:4 ~delta:1. ~w:12.);
  checkf "w=0" 1. (Fluid.equilibrium_p ~beta:4 ~delta:1. ~w:0.)

let test_derivative_zero_at_equilibrium () =
  let beta = 4 and delta = 1. and t_round = 0.0002 in
  let w = 24. in
  let p = Fluid.equilibrium_p ~beta ~delta ~w in
  checkf "dw/dt = 0" 0.
    (Fluid.cwnd_derivative ~beta ~delta ~t_round ~p ~w)

let test_equilibrium_rate_inverts () =
  let beta = 4 and delta = 1.5 and t_round = 0.0003 in
  let w = 30. in
  let p = Fluid.equilibrium_p ~beta ~delta ~w in
  let x = Fluid.equilibrium_rate ~beta ~delta ~t_round ~p in
  checkf "x = w / T" (w /. t_round) x

let test_utility_properties () =
  let u = Fluid.utility ~beta:4 ~delta:1. ~t_round:0.0002 in
  checkf "U(0) = 0" 0. (u 0.);
  Alcotest.(check bool) "increasing" true (u 2000. > u 1000.);
  (* strict concavity on a sample triple *)
  Alcotest.(check bool) "concave" true
    (u 1500. > (u 1000. +. u 2000.) /. 2.)

let test_utility_deriv_is_congestion () =
  (* Equation 7 equals Equation 8 when x = equilibrium rate: the marginal
     utility is the equilibrium congestion level *)
  let beta = 4 and delta = 1. and t_round = 0.0002 in
  let w = 40. in
  let p = Fluid.equilibrium_p ~beta ~delta ~w in
  let x = w /. t_round in
  checkf "U'(x) = p~" p (Fluid.utility_deriv ~beta ~delta ~t_round x)

let test_integrate_converges_to_equilibrium () =
  let beta = 4 and delta = 1. and t_round = 0.0002 in
  (* a queue-like marking law, steepening toward w = 30 *)
  let p_of_w w = Float.min 1. ((w /. 30.) ** 4.) in
  let settle w0 =
    Fluid.integrate_bos ~beta ~delta ~t_round ~p_of_w ~w0 ~dt:1e-6
      ~steps:400_000
  in
  let from_above = settle 100. and from_below = settle 2. in
  Alcotest.(check bool) "same fixed point from both sides" true
    (Float.abs (from_above -. from_below) < 0.5);
  let residual =
    Fluid.cwnd_derivative ~beta ~delta ~t_round ~p:(p_of_w from_above)
      ~w:from_above
  in
  (* dw/dt is O(5000) segments/s off equilibrium; demand near-zero *)
  Alcotest.(check bool) "settled" true (Float.abs residual < 50.)

let linear_path ~capacity ~rtt =
  (* congestion grows from a small floor toward 1 as rate approaches and
     exceeds the capacity *)
  {
    Fluid.rtt;
    p_of_rate = (fun x -> Float.min 1. (0.005 +. (0.995 *. x /. capacity)));
  }

let test_rate_for_delta_monotone () =
  let path = linear_path ~capacity:100_000. ~rtt:0.0002 in
  let r1 = Fluid.rate_for_delta ~beta:4 path ~delta:0.5 in
  let r2 = Fluid.rate_for_delta ~beta:4 path ~delta:1.0 in
  let r3 = Fluid.rate_for_delta ~beta:4 path ~delta:2.0 in
  Alcotest.(check bool) "delta raises the equilibrium rate" true
    (r1 < r2 && r2 < r3)

let test_rate_for_delta_solves_eq8 () =
  let path = linear_path ~capacity:50_000. ~rtt:0.0004 in
  let delta = 1.2 in
  let x = Fluid.rate_for_delta ~beta:4 path ~delta in
  let p = path.Fluid.p_of_rate x in
  let x' = Fluid.equilibrium_rate ~beta:4 ~delta ~t_round:path.Fluid.rtt ~p in
  Alcotest.(check bool) "fixed point of Equation 8" true
    (Float.abs (x -. x') /. x < 1e-3)

let test_trash_fixed_point_equalizes_congestion () =
  (* unequal paths: TraSh converges to (nearly) equal congestion *)
  let paths =
    [
      linear_path ~capacity:100_000. ~rtt:0.0002;
      linear_path ~capacity:40_000. ~rtt:0.0002;
      linear_path ~capacity:70_000. ~rtt:0.0003;
    ]
  in
  let st = Fluid.trash_fixed_point ~beta:4 ~paths ~iterations:200 in
  let spread = Fluid.congestion_spread ~beta:4 ~paths st in
  Alcotest.(check bool) "congestion equalized" true (spread < 0.01);
  Array.iter
    (fun d -> Alcotest.(check bool) "deltas positive" true (d > 0.))
    st.Fluid.deltas

let test_trash_fixed_point_identical_paths () =
  let paths =
    [
      linear_path ~capacity:50_000. ~rtt:0.0002;
      linear_path ~capacity:50_000. ~rtt:0.0002;
    ]
  in
  let st = Fluid.trash_fixed_point ~beta:4 ~paths ~iterations:100 in
  Alcotest.(check bool) "equal rates on equal paths" true
    (Float.abs (st.Fluid.rates.(0) -. st.Fluid.rates.(1))
     /. st.Fluid.rates.(0)
    < 1e-6);
  Alcotest.(check bool) "deltas halve" true
    (Float.abs (st.Fluid.deltas.(0) -. 0.5) < 1e-6)

(* Proposition 1: if the path's congestion is below the flow's aggregate
   congestion estimate U'(y), the Equation 9 update raises delta. *)
let prop_proposition_1 =
  QCheck.Test.make ~count:500 ~name:"Proposition 1"
    QCheck.(
      quad (float_range 1. 100.) (float_range 1. 100.)
        (float_range 0.0001 0.001) (float_range 0.0001 0.001))
    (fun (w_r, w_other, rtt_r, rtt_other) ->
      let beta = 4 in
      let delta_r = 1. in
      (* current rates *)
      let x_r = w_r /. rtt_r and x_o = w_other /. rtt_other in
      let y = x_r +. x_o in
      let t_min = Float.min rtt_r rtt_other in
      let p_r = Fluid.equilibrium_p ~beta ~delta:delta_r ~w:w_r in
      let u' = Fluid.utility_deriv ~beta ~delta:1. ~t_round:t_min y in
      let delta_next =
        Fluid.trash_delta ~rtt:rtt_r ~rate:x_r ~min_rtt:t_min ~total_rate:y
      in
      (* Proposition 1 direction: p < U' implies delta grows *)
      (not (p_r < u')) || delta_next > delta_r -. 1e-12)

let test_validation () =
  Alcotest.check_raises "beta" (Invalid_argument "Fluid: beta must be >= 2")
    (fun () -> ignore (Fluid.equilibrium_p ~beta:1 ~delta:1. ~w:1.));
  Alcotest.check_raises "p=0"
    (Invalid_argument "Fluid.equilibrium_rate: p must be positive")
    (fun () ->
      ignore (Fluid.equilibrium_rate ~beta:4 ~delta:1. ~t_round:1. ~p:0.));
  Alcotest.check_raises "no paths"
    (Invalid_argument "Fluid.trash_fixed_point: no paths") (fun () ->
      ignore (Fluid.trash_fixed_point ~beta:4 ~paths:[] ~iterations:1))

let suite =
  [
    Alcotest.test_case "equilibrium p (Eq. 3)" `Quick test_equilibrium_p;
    Alcotest.test_case "dw/dt = 0 at equilibrium (Eq. 2/3)" `Quick
      test_derivative_zero_at_equilibrium;
    Alcotest.test_case "equilibrium rate inverts (Eq. 8)" `Quick
      test_equilibrium_rate_inverts;
    Alcotest.test_case "utility shape (Eq. 4)" `Quick test_utility_properties;
    Alcotest.test_case "U' is the congestion level (Eq. 7)" `Quick
      test_utility_deriv_is_congestion;
    Alcotest.test_case "ODE integration settles" `Quick
      test_integrate_converges_to_equilibrium;
    Alcotest.test_case "rate monotone in delta" `Quick
      test_rate_for_delta_monotone;
    Alcotest.test_case "rate solves Equation 8" `Quick
      test_rate_for_delta_solves_eq8;
    Alcotest.test_case "TraSh equalizes congestion" `Quick
      test_trash_fixed_point_equalizes_congestion;
    Alcotest.test_case "identical paths split evenly" `Quick
      test_trash_fixed_point_identical_paths;
    QCheck_alcotest.to_alcotest prop_proposition_1;
    Alcotest.test_case "validation" `Quick test_validation;
  ]
