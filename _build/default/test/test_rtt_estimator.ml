module R = Xmp_transport.Rtt_estimator
module Time = Xmp_engine.Time

let test_defaults () =
  let e = R.create () in
  Alcotest.(check bool) "no sample" false (R.has_sample e);
  Alcotest.(check int) "initial srtt" (Time.ms 200) (R.srtt e);
  Alcotest.(check bool) "initial min_rtt" true
    (Time.is_infinite (R.min_rtt e))

let test_first_sample () =
  let e = R.create () in
  R.sample e (Time.us 100);
  Alcotest.(check bool) "has sample" true (R.has_sample e);
  Alcotest.(check int) "srtt = sample" (Time.us 100) (R.srtt e);
  Alcotest.(check int) "rttvar = sample/2" (Time.us 50) (R.rttvar e);
  Alcotest.(check int) "min" (Time.us 100) (R.min_rtt e)

let test_ewma () =
  let e = R.create () in
  R.sample e (Time.us 100);
  R.sample e (Time.us 200);
  (* srtt = 7/8*100 + 1/8*200 = 112.5 us *)
  Alcotest.(check int) "srtt smoothing" (Time.ns 112_500) (R.srtt e);
  Alcotest.(check int) "min keeps smallest" (Time.us 100) (R.min_rtt e)

let test_rto_floor () =
  let e = R.create () in
  R.sample e (Time.us 100);
  (* srtt + 4*rttvar = 300 us, far below the 200 ms floor *)
  Alcotest.(check int) "rto floored" (Time.ms 200) (R.rto e)

let test_rto_above_floor () =
  let e = R.create ~rto_min:(Time.us 10) () in
  R.sample e (Time.us 100);
  Alcotest.(check int) "rto = srtt + 4 var" (Time.us 300) (R.rto e)

let test_backoff () =
  let e = R.create () in
  R.sample e (Time.us 100);
  R.backoff e;
  Alcotest.(check int) "doubled" (Time.ms 400) (R.rto e);
  R.backoff e;
  Alcotest.(check int) "quadrupled" (Time.ms 800) (R.rto e);
  R.reset_backoff e;
  Alcotest.(check int) "reset" (Time.ms 200) (R.rto e)

let test_rto_cap () =
  let e = R.create ~rto_max:(Time.sec 1.) () in
  R.sample e (Time.us 100);
  for _ = 1 to 10 do
    R.backoff e
  done;
  Alcotest.(check int) "capped" (Time.sec 1.) (R.rto e)

let test_negative_rejected () =
  let e = R.create () in
  Alcotest.check_raises "negative"
    (Invalid_argument "Rtt_estimator.sample: negative") (fun () ->
      R.sample e (-5))

let suite =
  [
    Alcotest.test_case "defaults" `Quick test_defaults;
    Alcotest.test_case "first sample" `Quick test_first_sample;
    Alcotest.test_case "EWMA smoothing" `Quick test_ewma;
    Alcotest.test_case "RTOmin floor" `Quick test_rto_floor;
    Alcotest.test_case "RTO above floor" `Quick test_rto_above_floor;
    Alcotest.test_case "exponential backoff" `Quick test_backoff;
    Alcotest.test_case "RTO cap" `Quick test_rto_cap;
    Alcotest.test_case "negative sample rejected" `Quick
      test_negative_rejected;
  ]
