test/test_fluid.ml: Alcotest Array Float QCheck QCheck_alcotest Xmp_core
