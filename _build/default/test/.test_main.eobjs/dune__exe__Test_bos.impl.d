test/test_bos.ml: Alcotest Xmp_core Xmp_engine Xmp_net Xmp_transport
