test/test_leaf_spine.ml: Alcotest Array List Printf Xmp_core Xmp_engine Xmp_mptcp Xmp_net Xmp_transport
