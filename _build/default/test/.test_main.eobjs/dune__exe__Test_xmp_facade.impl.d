test/test_xmp_facade.ml: Alcotest Xmp_core Xmp_engine Xmp_net Xmp_transport
