test/test_tcp_edges.ml: Alcotest Xmp_engine Xmp_net Xmp_transport
