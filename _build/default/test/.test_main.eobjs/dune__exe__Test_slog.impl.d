test/test_slog.ml: Alcotest Filename Format Fun String Sys Unix Xmp_engine
