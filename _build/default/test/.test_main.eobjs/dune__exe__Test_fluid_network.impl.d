test/test_fluid_network.ml: Alcotest Float Printf Xmp_core Xmp_engine Xmp_net Xmp_stats Xmp_transport
