test/test_misc.ml: Alcotest Xmp_engine Xmp_mptcp Xmp_net Xmp_transport
