test/test_workload.ml: Alcotest List QCheck QCheck_alcotest Random Stdlib Xmp_engine Xmp_net Xmp_stats Xmp_transport Xmp_workload
