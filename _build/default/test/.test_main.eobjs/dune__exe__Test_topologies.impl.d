test/test_topologies.ml: Alcotest List String Xmp_engine Xmp_net
