test/test_trace.ml: Alcotest List String Xmp_core Xmp_engine Xmp_net Xmp_transport
