test/test_link.ml: Alcotest List Xmp_engine Xmp_net
