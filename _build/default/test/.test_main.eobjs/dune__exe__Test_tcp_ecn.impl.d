test/test_tcp_ecn.ml: Alcotest Xmp_core Xmp_engine Xmp_net Xmp_transport
