test/test_d2tcp.ml: Alcotest Printf Xmp_core Xmp_engine Xmp_net Xmp_transport
