test/test_trash.ml: Alcotest Float Gen List QCheck QCheck_alcotest Xmp_core Xmp_engine Xmp_mptcp Xmp_net Xmp_stats Xmp_transport
