test/test_network.ml: Alcotest List Xmp_engine Xmp_net
