test/test_mptcp.ml: Alcotest Array List Xmp_core Xmp_engine Xmp_mptcp Xmp_net Xmp_transport
