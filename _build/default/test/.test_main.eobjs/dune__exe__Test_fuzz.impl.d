test/test_fuzz.ml: List QCheck QCheck_alcotest Xmp_core Xmp_engine Xmp_mptcp Xmp_net Xmp_transport
