test/test_tcp.ml: Alcotest List Xmp_core Xmp_engine Xmp_net Xmp_stats Xmp_transport
