test/test_ablations.ml: Alcotest Filename Fun Printf String Sys Unix Xmp_core Xmp_engine Xmp_experiments Xmp_net Xmp_stats Xmp_transport
