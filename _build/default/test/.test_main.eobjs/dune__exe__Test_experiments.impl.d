test/test_experiments.ml: Alcotest Array List Printf Xmp_engine Xmp_experiments Xmp_workload
