test/test_cc.ml: Alcotest Xmp_engine Xmp_transport
