test/test_render.ml: Alcotest Filename Fun List String Sys Unix Xmp_experiments Xmp_stats
