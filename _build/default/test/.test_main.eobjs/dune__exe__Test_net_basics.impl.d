test/test_net_basics.ml: Alcotest Format List QCheck QCheck_alcotest String Xmp_net Xmp_stats
