test/test_rtt_estimator.ml: Alcotest Xmp_engine Xmp_transport
