test/test_time.ml: Alcotest Format Xmp_engine
