test/test_event_queue.ml: Alcotest List QCheck QCheck_alcotest Xmp_engine
