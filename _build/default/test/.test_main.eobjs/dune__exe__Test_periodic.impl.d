test/test_periodic.ml: Alcotest List Xmp_engine
