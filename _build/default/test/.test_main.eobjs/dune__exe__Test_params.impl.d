test/test_params.ml: Alcotest Float QCheck QCheck_alcotest Xmp_core Xmp_engine Xmp_net
