test/test_sim.ml: Alcotest List Random Xmp_engine
