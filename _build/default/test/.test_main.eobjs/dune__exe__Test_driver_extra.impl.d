test/test_driver_extra.ml: Alcotest List Printf Xmp_engine Xmp_experiments Xmp_net Xmp_stats Xmp_workload
