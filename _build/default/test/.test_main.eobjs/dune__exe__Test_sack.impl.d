test/test_sack.ml: Alcotest List Printf Xmp_engine Xmp_net Xmp_transport
