module Render = Xmp_experiments.Render
module Distribution = Xmp_stats.Distribution

(* capture stdout during [f] *)
let capture f =
  let buf_file = Filename.temp_file "xmp_render" ".txt" in
  let fd = Unix.openfile buf_file [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600 in
  let saved = Unix.dup Unix.stdout in
  flush stdout;
  Unix.dup2 fd Unix.stdout;
  Fun.protect
    ~finally:(fun () ->
      flush stdout;
      Unix.dup2 saved Unix.stdout;
      Unix.close saved;
      Unix.close fd)
    f;
  let ic = open_in buf_file in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  Sys.remove buf_file;
  s

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_heading () =
  let s = capture (fun () -> Render.heading "Hello") in
  Alcotest.(check bool) "boxed" true (contains s "= Hello =");
  Alcotest.(check bool) "has bars" true (contains s "=========")

let test_series_table () =
  let s =
    capture (fun () ->
        Render.series_table ~bucket_s:0.5
          [ ("a", [| 0.1; 0.2; 0.3 |]); ("b", [| 1.0; 2.0; 3.0 |]) ])
  in
  Alcotest.(check bool) "time column" true (contains s "t(s)");
  Alcotest.(check bool) "bucket times" true
    (contains s "0.00" && contains s "0.50" && contains s "1.00");
  Alcotest.(check bool) "values" true
    (contains s "0.200" && contains s "3.000")

let test_series_table_every () =
  let s =
    capture (fun () ->
        Render.series_table ~bucket_s:1.0 ~every:2
          [ ("a", [| 1.; 2.; 3.; 4. |]) ])
  in
  Alcotest.(check bool) "subsampled keeps 0 and 2" true
    (contains s "1.000" && contains s "3.000");
  Alcotest.(check bool) "drops odd buckets" false (contains s "2.000")

let test_series_table_empty () =
  let s = capture (fun () -> Render.series_table ~bucket_s:1.0 []) in
  Alcotest.(check string) "nothing printed" "" s

let test_cdf_table () =
  let d = Distribution.create () in
  Distribution.add_list d (List.init 100 (fun i -> float_of_int i));
  let s = capture (fun () -> Render.cdf_table [ ("flows", d) ]) in
  Alcotest.(check bool) "header" true (contains s "flows");
  Alcotest.(check bool) "median row" true (contains s "0.50");
  let empty = Distribution.create () in
  let s2 = capture (fun () -> Render.cdf_table [ ("none", empty) ]) in
  Alcotest.(check bool) "empty prints dashes" true (contains s2 "--")

let test_five_number_table () =
  let d = Distribution.create () in
  Distribution.add_list d [ 1.; 2.; 3. ];
  let s =
    capture (fun () ->
        Render.five_number_table ~value_header:"layer"
          [ ("core", d); ("empty", Distribution.create ()) ])
  in
  Alcotest.(check bool) "header columns" true
    (contains s "min" && contains s "p90" && contains s "mean");
  Alcotest.(check bool) "row" true (contains s "core");
  Alcotest.(check bool) "empty row dashes" true (contains s "--")

let suite =
  [
    Alcotest.test_case "heading" `Quick test_heading;
    Alcotest.test_case "series table" `Quick test_series_table;
    Alcotest.test_case "series subsampling" `Quick test_series_table_every;
    Alcotest.test_case "series empty" `Quick test_series_table_empty;
    Alcotest.test_case "cdf table" `Quick test_cdf_table;
    Alcotest.test_case "five-number table" `Quick test_five_number_table;
  ]
