module Time = Xmp_engine.Time

let check = Alcotest.(check int)
let checkf = Alcotest.(check (float 1e-9))

let test_units () =
  check "us" 1_000 (Time.us 1);
  check "ms" 1_000_000 (Time.ms 1);
  check "sec" 1_000_000_000 (Time.sec 1.);
  check "sec fraction" 1_500_000 (Time.sec 0.0015);
  check "sec rounds" 1 (Time.sec 1.4e-9)

let test_conversions () =
  checkf "to_float_s" 0.25 (Time.to_float_s (Time.ms 250));
  checkf "to_us" 12.5 (Time.to_us (Time.ns 12_500));
  checkf "to_ms" 1.5 (Time.to_ms (Time.us 1_500))

let test_arith () =
  check "add" 30 (Time.add 10 20);
  check "sub negative" (-10) (Time.sub 10 20);
  check "mul" 60 (Time.mul 20 3);
  check "div" 7 (Time.div 21 3);
  check "min" 5 (Time.min 5 9);
  check "max" 9 (Time.max 5 9)

let test_infinity () =
  Alcotest.(check bool) "inf is infinite" true (Time.is_infinite Time.infinity);
  Alcotest.(check bool) "finite" false (Time.is_infinite (Time.sec 100.));
  Alcotest.(check bool)
    "inf bigger than anything" true
    (Time.infinity > Time.sec 1e6)

let test_pp () =
  let s t = Format.asprintf "%a" Time.pp t in
  Alcotest.(check string) "ns" "999ns" (s 999);
  Alcotest.(check string) "us" "12us" (s (Time.us 12));
  Alcotest.(check string) "ms" "1.500ms" (s (Time.us 1_500));
  Alcotest.(check string) "s" "2.000s" (s (Time.sec 2.));
  Alcotest.(check string) "inf" "inf" (s Time.infinity)

let suite =
  [
    Alcotest.test_case "unit constructors" `Quick test_units;
    Alcotest.test_case "conversions" `Quick test_conversions;
    Alcotest.test_case "arithmetic" `Quick test_arith;
    Alcotest.test_case "infinity" `Quick test_infinity;
    Alcotest.test_case "pretty printing" `Quick test_pp;
  ]
