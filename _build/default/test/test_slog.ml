module Slog = Xmp_engine.Slog
module Sim = Xmp_engine.Sim

(* capture stderr during [f] *)
let capture_stderr f =
  let file = Filename.temp_file "xmp_slog" ".txt" in
  let fd = Unix.openfile file [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600 in
  let saved = Unix.dup Unix.stderr in
  flush stderr;
  Format.pp_print_flush Format.err_formatter ();
  Unix.dup2 fd Unix.stderr;
  Fun.protect
    ~finally:(fun () ->
      Format.pp_print_flush Format.err_formatter ();
      flush stderr;
      Unix.dup2 saved Unix.stderr;
      Unix.close saved;
      Unix.close fd)
    f;
  let ic = open_in file in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  Sys.remove file;
  s

let test_levels () =
  Slog.set_level Slog.Quiet;
  Alcotest.(check bool) "quiet" true (Slog.level () = Slog.Quiet);
  Slog.set_level Slog.Debug;
  Alcotest.(check bool) "debug" true (Slog.level () = Slog.Debug);
  Slog.set_level Slog.Quiet

let test_quiet_suppresses () =
  let sim = Sim.create () in
  Slog.set_level Slog.Quiet;
  let out =
    capture_stderr (fun () ->
        Slog.info sim "should not appear %d" 1;
        Slog.debug sim "nor this %s" "x")
  in
  Alcotest.(check string) "nothing logged" "" out

let test_info_level () =
  let sim = Sim.create () in
  Sim.at sim (Xmp_engine.Time.us 12) (fun () ->
      Slog.set_level Slog.Info;
      let out =
        capture_stderr (fun () ->
            Slog.info sim "hello %d" 42;
            Slog.debug sim "hidden")
      in
      Slog.set_level Slog.Quiet;
      let contains needle =
        let nl = String.length needle and hl = String.length out in
        let rec go i =
          i + nl <= hl && (String.sub out i nl = needle || go (i + 1))
        in
        go 0
      in
      Alcotest.(check bool) "info appears with timestamp" true
        (String.length out > 0 && String.sub out 0 1 = "[");
      Alcotest.(check bool) "timestamp rendered" true (contains "12us");
      Alcotest.(check bool) "message rendered" true (contains "hello 42");
      Alcotest.(check bool) "debug hidden at info level" false
        (contains "hidden"))
  ;
  Sim.run sim

let suite =
  [
    Alcotest.test_case "level get/set" `Quick test_levels;
    Alcotest.test_case "quiet suppresses" `Quick test_quiet_suppresses;
    Alcotest.test_case "info level output" `Quick test_info_level;
  ]
