module Sim = Xmp_engine.Sim
module Periodic = Xmp_engine.Periodic
module Time = Xmp_engine.Time

let test_fires_on_interval () =
  let sim = Sim.create () in
  let fired = ref [] in
  ignore
    (Periodic.start sim ~interval:(Time.ms 10) (fun () ->
         fired := Sim.now sim :: !fired));
  Sim.run ~until:(Time.ms 35) sim;
  Alcotest.(check (list int))
    "10, 20, 30 ms"
    [ Time.ms 10; Time.ms 20; Time.ms 30 ]
    (List.rev !fired)

let test_first_after () =
  let sim = Sim.create () in
  let fired = ref [] in
  ignore
    (Periodic.start sim ~first_after:(Time.ms 5) ~interval:(Time.ms 10)
       (fun () -> fired := Sim.now sim :: !fired));
  Sim.run ~until:(Time.ms 30) sim;
  Alcotest.(check (list int))
    "5, 15, 25 ms"
    [ Time.ms 5; Time.ms 15; Time.ms 25 ]
    (List.rev !fired)

let test_stop () =
  let sim = Sim.create () in
  let count = ref 0 in
  let p = Periodic.start sim ~interval:(Time.ms 1) (fun () -> incr count) in
  (* the stop event is scheduled now, so at the 3 ms tie it fires before
     the tick that would have been scheduled at 2 ms: 2 ticks survive *)
  Sim.at sim (Time.ms 3) (fun () -> Periodic.stop p);
  Sim.run ~until:(Time.ms 10) sim;
  Alcotest.(check int) "stopped after 2 ticks" 2 !count;
  Alcotest.(check int) "ticks counter" 2 (Periodic.ticks p);
  Alcotest.(check bool) "inactive" false (Periodic.is_active p);
  Periodic.stop p (* idempotent *)

let test_self_stop () =
  let sim = Sim.create () in
  let count = ref 0 in
  let p = ref None in
  p :=
    Some
      (Periodic.start sim ~interval:(Time.ms 1) (fun () ->
           incr count;
           if !count = 2 then
             match !p with Some h -> Periodic.stop h | None -> ()));
  Sim.run ~until:(Time.ms 10) sim;
  Alcotest.(check int) "callback can stop itself" 2 !count

let test_validation () =
  let sim = Sim.create () in
  Alcotest.check_raises "zero interval"
    (Invalid_argument "Periodic.start: interval") (fun () ->
      ignore (Periodic.start sim ~interval:0 ignore))

let suite =
  [
    Alcotest.test_case "fires on interval" `Quick test_fires_on_interval;
    Alcotest.test_case "first_after" `Quick test_first_after;
    Alcotest.test_case "stop" `Quick test_stop;
    Alcotest.test_case "self stop" `Quick test_self_stop;
    Alcotest.test_case "validation" `Quick test_validation;
  ]
