(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Figures 1, 4, 6, 7, 8, 9, 10, 11; Tables 1, 2, 3), plus
   ablation benches and micro-benchmarks of the simulator's hot paths.

   Usage:
     dune exec bench/main.exe                 # everything (default scale)
     dune exec bench/main.exe -- table1 fig9  # a subset
     dune exec bench/main.exe -- --quick      # fast sanity pass
     dune exec bench/main.exe -- --paper-scale table1   # k=8 fat tree
     dune exec bench/main.exe -- micro        # bechamel micro-benches *)

module E = Xmp_experiments
module Time = Xmp_engine.Time

type mode = Default | Quick | Paper

let mode = ref Default

let fig_scale () =
  match !mode with Default -> 0.2 | Quick -> 0.1 | Paper -> 1.0

let base () =
  match !mode with
  | Default -> E.Fatree_eval.default_base
  | Quick -> { E.Fatree_eval.default_base with horizon = Time.sec 0.5 }
  | Paper -> E.Fatree_eval.paper_scale_base

let timed name f =
  let t0 = Unix.gettimeofday () in
  f ();
  Printf.printf "[%s finished in %.1fs]\n%!" name (Unix.gettimeofday () -. t0)

(* ----- micro-benchmarks (Bechamel) ----- *)

let heap_test =
  Bechamel.Test.make ~name:"event_queue push+pop x1000"
    (Bechamel.Staged.stage (fun () ->
         let q = Xmp_engine.Event_queue.create () in
         for i = 0 to 999 do
           Xmp_engine.Event_queue.add q ~time:(i * 7919 mod 1000) ~seq:i i
         done;
         let rec drain () =
           match Xmp_engine.Event_queue.pop q with
           | Some _ -> drain ()
           | None -> ()
         in
         drain ()))

let disc_test =
  Bechamel.Test.make ~name:"queue_disc enqueue+dequeue x100"
    (Bechamel.Staged.stage (fun () ->
         let d =
           Xmp_net.Queue_disc.create
             ~policy:(Xmp_net.Queue_disc.Threshold_mark 10)
             ~capacity_pkts:100
         in
         for i = 0 to 99 do
           let p =
             Xmp_net.Packet.data ~uid:i ~flow:0 ~subflow:0 ~src:0 ~dst:1
               ~path:0 ~seq:i ~ect:true ~cwr:false ~ts:0
           in
           ignore (Xmp_net.Queue_disc.enqueue d p)
         done;
         let rec drain () =
           match Xmp_net.Queue_disc.dequeue d with
           | Some _ -> drain ()
           | None -> ()
         in
         drain ()))

let fluid_test =
  Bechamel.Test.make ~name:"fluid trash_fixed_point (3 paths)"
    (Bechamel.Staged.stage (fun () ->
         let path c =
           {
             Xmp_core.Fluid.rtt = 0.0002;
             p_of_rate = (fun x -> Float.min 1. (0.01 +. (x /. c)));
           }
         in
         ignore
           (Xmp_core.Fluid.trash_fixed_point ~beta:4
              ~paths:[ path 50_000.; path 80_000.; path 20_000. ]
              ~iterations:20)))

let sim_test =
  Bechamel.Test.make ~name:"end-to-end sim, 1 XMP flow, 10 ms"
    (Bechamel.Staged.stage (fun () ->
         let sim = Xmp_engine.Sim.create () in
         let net = Xmp_net.Network.create sim in
         let disc () =
           Xmp_net.Queue_disc.create
             ~policy:(Xmp_net.Queue_disc.Threshold_mark 10)
             ~capacity_pkts:100
         in
         let tb =
           Xmp_net.Testbed.create ~net ~n_left:1 ~n_right:1
             ~bottlenecks:
               [
                 {
                   Xmp_net.Testbed.rate = Xmp_net.Units.gbps 1.;
                   delay = Time.us 62;
                   disc;
                 };
               ]
             ()
         in
         ignore
           (Xmp_core.Xmp.flow ~net ~flow:1
              ~src:(Xmp_net.Testbed.left_id tb 0)
              ~dst:(Xmp_net.Testbed.right_id tb 0)
              ~paths:[ 0 ] ());
         Xmp_engine.Sim.run ~until:(Time.ms 10) sim))

let micro () =
  E.Render.heading "Micro-benchmarks of simulator hot paths (Bechamel)";
  let benchmark test =
    let instances = Bechamel.Toolkit.Instance.[ monotonic_clock ] in
    let cfg =
      Bechamel.Benchmark.cfg ~limit:200
        ~quota:(Bechamel.Time.second 0.5) ()
    in
    Bechamel.Benchmark.all cfg instances test
  in
  let analyze results =
    let ols =
      Bechamel.Analyze.ols ~bootstrap:0 ~r_square:true
        ~predictors:Bechamel.Measure.[| run |]
    in
    Bechamel.Analyze.all ols Bechamel.Toolkit.Instance.monotonic_clock
      results
  in
  List.iter
    (fun test ->
      let results = analyze (benchmark test) in
      Hashtbl.iter
        (fun name result ->
          match Bechamel.Analyze.OLS.estimates result with
          | Some [ est ] -> Printf.printf "%-40s %12.1f ns/run\n" name est
          | Some _ | None -> Printf.printf "%-40s (no estimate)\n" name)
        results)
    [ heap_test; disc_test; fluid_test; sim_test ]

(* ----- experiment registry: one entry per paper table/figure ----- *)

let experiments : (string * string * (unit -> unit)) list =
  [
    ( "fig1",
      "DCTCP vs halving-cwnd on one bottleneck",
      fun () -> E.Fig1.run_and_print_all ~scale:(fig_scale ()) () );
    ( "fig4",
      "traffic shifting on testbed 3(a)",
      fun () -> E.Fig4.run_and_print_all ~scale:(fig_scale ()) () );
    ( "fig6",
      "fairness on testbed 3(b)",
      fun () -> E.Fig6.run_and_print_all ~scale:(fig_scale ()) () );
    ( "fig7",
      "rate compensation on the ring",
      fun () -> E.Fig7.run_and_print_all ~scale:(fig_scale ()) () );
    ( "table1",
      "average goodput matrix",
      fun () -> E.Fatree_eval.print_table1 (base ()) );
    ( "fig8",
      "goodput distributions",
      fun () -> E.Fatree_eval.print_fig8 (base ()) );
    ( "fig9",
      "job completion time CDF",
      fun () -> E.Fatree_eval.print_fig9 (base ()) );
    ( "fig10",
      "RTT distributions",
      fun () -> E.Fatree_eval.print_fig10 (base ()) );
    ( "fig11",
      "link utilization by layer",
      fun () -> E.Fatree_eval.print_fig11 (base ()) );
    ( "table2",
      "coexistence goodput",
      fun () -> E.Coexistence.print_table2 ~base:(base ()) () );
    ( "table3",
      "job completion times",
      fun () -> E.Fatree_eval.print_table3 (base ()) );
    ( "ablations",
      "beta/K/subflow/coupling sweeps",
      fun () ->
        E.Ablations.print_beta_sweep ~scale:(fig_scale ()) ();
        E.Ablations.print_k_sweep ();
        E.Ablations.print_subflow_sweep ~base:(base ()) ();
        E.Ablations.print_coupling_comparison ~base:(base ()) ();
        E.Ablations.print_flow_size_sweep ~base:(base ()) ();
        E.Ablations.print_incast_fanout_sweep ~base:(base ()) ();
        E.Ablations.print_rto_min_sweep ~base:(base ()) ();
        E.Ablations.print_sack_comparison ~base:(base ()) ();
        E.Ablations.print_queue_occupancy () );
    ("micro", "simulator micro-benchmarks", micro);
  ]

let default_set =
  [
    "fig1"; "fig4"; "fig6"; "fig7"; "table1"; "fig8"; "fig9"; "fig10";
    "fig11"; "table2"; "table3"; "ablations";
  ]

let usage () =
  print_endline
    "usage: main.exe [--quick|--paper-scale] [experiment ...]\nexperiments:";
  List.iter
    (fun (id, doc, _) -> Printf.printf "  %-10s %s\n" id doc)
    experiments

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let selected = ref [] in
  let bad = ref false in
  List.iter
    (fun a ->
      match a with
      | "--quick" -> mode := Quick
      | "--paper-scale" -> mode := Paper
      | "--help" | "-h" ->
        usage ();
        exit 0
      | id when List.exists (fun (i, _, _) -> i = id) experiments ->
        selected := id :: !selected
      | unknown ->
        Printf.eprintf "unknown argument: %s\n" unknown;
        bad := true)
    args;
  if !bad then begin
    usage ();
    exit 2
  end;
  let to_run = if !selected = [] then default_set else List.rev !selected in
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun id ->
      let _, _, f = List.find (fun (i, _, _) -> i = id) experiments in
      timed id f)
    to_run;
  Printf.printf "\nAll requested benches done in %.1fs\n"
    (Unix.gettimeofday () -. t0)
