(* Incast jobs on a fat-tree (§5.2.1's Incast pattern, Figure 9 / Table 3).

   A client fans a request out to 8 servers; each replies with 64 KB at
   once — the classic incast burst into the client's edge link. Large
   background flows run XMP (or DCTCP, for comparison); the small
   request/response flows are plain TCP with RTOmin = 200 ms. Jobs that
   lose response packets pay a 200 ms timeout, which is exactly the jump
   the paper's Figure 9 CDF shows.

   Run with: dune exec examples/incast_jobs.exe *)

module Driver = Xmp_workload.Driver
module Metrics = Xmp_workload.Metrics
module Scheme = Xmp_workload.Scheme
module Distribution = Xmp_stats.Distribution

let describe label (scheme : Scheme.t) =
  let cfg =
    {
      Driver.default_config with
      assignment = Driver.Uniform scheme;
      pattern = Driver.incast_scaled;
      horizon = Xmp_engine.Time.sec 1.5;
    }
  in
  let result = Driver.run cfg in
  let m = result.Driver.metrics in
  let jobs = Metrics.job_times_ms m in
  Printf.printf "%s background flows:\n" label;
  if Distribution.is_empty jobs then print_endline "  (no job completed)"
  else
    Printf.printf
      "  %d jobs; completion time median %.1f ms, p90 %.1f ms, max %.1f \
       ms; %.1f%% over 300 ms\n"
      (Distribution.count jobs)
      (Distribution.percentile jobs 50.)
      (Distribution.percentile jobs 90.)
      (Distribution.max jobs)
      (100. *. Metrics.jobs_over_ms m 300.);
  Printf.printf "  large-flow goodput: %.1f Mbps over %d flows\n\n"
    (Metrics.mean_goodput_bps m /. 1e6)
    (Metrics.n_completed_flows m)

let () =
  print_endline
    "Incast: 3 concurrent jobs, 8 servers each, 2 KB requests / 64 KB \
     responses,\nover a k=4 fat-tree with background bulk flows.\n";
  describe "XMP-2" (Scheme.xmp 2);
  describe "DCTCP" Scheme.dctcp;
  describe "LIA-2" (Scheme.lia 2);
  print_endline
    "Expected shape: ECN-driven schemes (XMP, DCTCP) leave queue headroom, \
     so few jobs hit the 200 ms retransmission timeout; LIA fills buffers \
     and pushes many jobs past 300 ms (paper, Table 3)."
