(* Deadline-aware congestion control (D2TCP, from the paper's related
   work, §6): two flows share one marking bottleneck; the one with the
   tight deadline gamma-corrects its window cuts by its imminence factor
   and takes the larger share exactly while it needs it.

   Run with: dune exec examples/deadline_flows.exe *)

module Sim = Xmp_engine.Sim
module Time = Xmp_engine.Time
module Net = Xmp_net
module Tcp = Xmp_transport.Tcp
module D2tcp = Xmp_transport.D2tcp

let () =
  let sim = Sim.create ~config:{ Sim.default_config with seed = 12 } () in
  let net = Net.Network.create sim in
  let disc () =
    Net.Queue_disc.create ~policy:(Net.Queue_disc.Threshold_mark 10)
      ~capacity_pkts:100
  in
  let tb =
    Net.Testbed.create ~net ~n_left:2 ~n_right:2
      ~bottlenecks:
        [ { Net.Testbed.rate = Net.Units.mbps 300.; delay = Time.us 100; disc } ]
      ()
  in
  let mk ~host ~label ~deadline =
    let acked = ref 0 in
    let conn =
      Tcp.create ~net ~flow:host ~subflow:0
        ~src:(Net.Testbed.left_id tb host)
        ~dst:(Net.Testbed.right_id tb host)
        ~path:0
        ~cc:(D2tcp.make_cc ?deadline ~acked:(fun () -> !acked) ())
        ~config:Xmp_core.Xmp.dctcp_tcp_config
        ~on_segment_acked:(fun n -> acked := !acked + n)
        ()
    in
    (label, conn)
  in
  let flows =
    [
      mk ~host:0 ~label:"tight deadline (needs 200 Mbps)"
        ~deadline:
          (Some
             {
               (* ~50 MB due in 2 s: needs ~200 Mbps, above the 150 Mbps
                  fair share, so its imminence factor stays above 1 *)
               D2tcp.total_segments = 34_000;
               deadline_at = Time.sec 2.;
             });
      mk ~host:1 ~label:"no deadline (plain DCTCP behaviour)"
        ~deadline:None;
    ]
  in
  let last = Array.make 2 0 in
  ignore
    (Xmp_engine.Periodic.start sim ~interval:(Time.ms 250) (fun () ->
         Printf.printf "t=%.2fs " (Time.to_float_s (Sim.now sim));
         List.iteri
           (fun i (label, conn) ->
             let a = Tcp.segments_acked conn in
             let mbps =
               float_of_int ((a - last.(i)) * Net.Packet.payload_bytes * 8)
               /. 0.25 /. 1e6
             in
             last.(i) <- a;
             Printf.printf "| %s: %6.1f Mbps " label mbps)
           flows;
         print_newline ()));
  Sim.run ~until:(Time.sec 3.) sim;
  print_endline
    "\nExpected shape: while the tight-deadline flow is behind schedule it \
     backs off less on each ECN mark (imminence factor d > 1) and holds \
     the larger share; once its demand is met the shares even out."
