(* Traffic shifting (the paper's headline behaviour, §2.2 / Figure 4).

   An XMP flow with two subflows shares two 300 Mbps paths with two
   single-path flows. Mid-run, a burst of background traffic loads path A;
   TraSh should shrink the subflow on A (its δ falls below 1) and grow the
   subflow on B to compensate, then shift back once the burst ends. The
   program prints the live subflow rates and δ-style shares every 100 ms.

   Run with: dune exec examples/traffic_shifting.exe *)

module Sim = Xmp_engine.Sim
module Time = Xmp_engine.Time
module Net = Xmp_net
module Tcp = Xmp_transport.Tcp
module Flow = Xmp_mptcp.Mptcp_flow

let bottleneck = Net.Units.mbps 300.

let xmp_flow ~net ~flow ~src ~dst ~paths =
  Xmp_core.Xmp.flow ~net ~flow ~src ~dst ~paths ()

let () =
  let sim = Sim.create ~config:{ Sim.default_config with seed = 3 } () in
  let net = Net.Network.create sim in
  let disc () =
    Net.Queue_disc.create ~policy:(Net.Queue_disc.Threshold_mark 15)
      ~capacity_pkts:100
  in
  let spec = { Net.Testbed.rate = bottleneck; delay = Time.us 600; disc } in
  let tb =
    Net.Testbed.create ~net ~n_left:4 ~n_right:4 ~bottlenecks:[ spec; spec ]
      ~access_delay:(Time.us 150) ()
  in
  let host i = (Net.Testbed.left_id tb i, Net.Testbed.right_id tb i) in
  let s1, d1 = host 0 and s2, d2 = host 1 and s3, d3 = host 2 in
  ignore (xmp_flow ~net ~flow:1 ~src:s1 ~dst:d1 ~paths:[ 0 ]);
  let multi = xmp_flow ~net ~flow:2 ~src:s2 ~dst:d2 ~paths:[ 0; 1 ] in
  ignore (xmp_flow ~net ~flow:3 ~src:s3 ~dst:d3 ~paths:[ 1 ]);
  (* background burst on path 0 during [1.0 s, 2.0 s) *)
  Sim.at sim (Time.sec 1.0) (fun () ->
      print_endline ">>> background flow joins path 0";
      let s4, d4 = host 3 in
      let bg = xmp_flow ~net ~flow:4 ~src:s4 ~dst:d4 ~paths:[ 0 ] in
      Sim.at sim (Time.sec 2.0) (fun () ->
          print_endline ">>> background flow leaves path 0";
          Flow.stop bg));
  (* periodic reporter *)
  let last = Array.make 2 0 in
  let report () =
    let subflows = Flow.subflows multi in
    let rate i =
      let acked = Tcp.segments_acked subflows.(i) in
      let d = acked - last.(i) in
      last.(i) <- acked;
      float_of_int (d * Net.Packet.payload_bytes * 8) /. 0.1 /. 1e6
    in
    let r0 = rate 0 in
    let r1 = rate 1 in
    Printf.printf
      "t=%.1fs  subflow A: %6.1f Mbps (cwnd %5.1f)   subflow B: %6.1f Mbps \
       (cwnd %5.1f)\n"
      (Time.to_float_s (Sim.now sim))
      r0
      (Tcp.cwnd subflows.(0))
      r1
      (Tcp.cwnd subflows.(1))
  in
  ignore (Xmp_engine.Periodic.start sim ~interval:(Time.ms 100) report);
  Sim.run ~until:(Time.sec 3.0) sim;
  print_endline
    "Expected shape: subflow A's rate collapses while the background flow \
     is present (traffic shifts to B), then recovers — the Congestion \
     Equality Principle at work."
