(* Bulk transfer on a fat-tree: the paper's Permutation workload (§5.2.1)
   across schemes — a one-screen version of Table 1's first column.

   Every host sends a multi-megabyte flow to a distinct host; when a wave
   completes, a new permutation starts. Multipath schemes spread subflows
   over the equal-cost paths; single-path DCTCP collides on links and
   wastes others (the paper's Figure 11 argument).

   Run with: dune exec examples/fat_tree_goodput.exe *)

module Driver = Xmp_workload.Driver
module Metrics = Xmp_workload.Metrics
module Scheme = Xmp_workload.Scheme
module Distribution = Xmp_stats.Distribution

let run (scheme : Scheme.t) =
  let cfg =
    {
      Driver.default_config with
      assignment = Driver.Uniform scheme;
      horizon = Xmp_engine.Time.sec 1.0;
    }
  in
  let result = Driver.run cfg in
  let m = result.Driver.metrics in
  let util_core =
    match Driver.utilization_by_layer result with
    | ("core", d) :: _ -> Distribution.mean d
    | _ -> 0.
  in
  Printf.printf "%-7s  mean goodput %6.1f Mbps over %3d flows, core-layer \
                 utilization %.2f\n"
    (Scheme.name scheme)
    (Metrics.mean_goodput_bps m /. 1e6)
    (Metrics.n_completed_flows m)
    util_core

let () =
  print_endline
    "Permutation workload, k=4 fat-tree (16 hosts, 1 Gbps links), 1 s:\n";
  List.iter run
    [ Scheme.dctcp; Scheme.lia 2; Scheme.lia 4; Scheme.xmp 2; Scheme.xmp 4 ];
  print_endline
    "\nExpected shape (paper, Table 1): XMP-4 > XMP-2 > DCTCP > LIA-2, \
     with XMP-2 already beating DCTCP by >13%."
