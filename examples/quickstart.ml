(* Quickstart: the smallest end-to-end XMP simulation.

   One XMP flow with two subflows crosses a two-bottleneck testbed; we run
   for half a second of simulated time and report goodput, windows, RTT
   and the queue occupancy at the bottlenecks — the knobs §2 of the paper
   is about.

   Run with: dune exec examples/quickstart.exe *)

module Sim = Xmp_engine.Sim
module Time = Xmp_engine.Time
module Net = Xmp_net
module Tcp = Xmp_transport.Tcp
module Flow = Xmp_mptcp.Mptcp_flow

let () =
  (* 1. A simulator and an empty network. *)
  let sim = Sim.create ~config:{ Sim.default_config with seed = 42 } () in
  let net = Net.Network.create sim in

  (* 2. Switch queues: the paper's marking rule — CE-mark ECT packets when
     the instantaneous queue exceeds K = 10, over a 100-packet buffer. *)
  let disc = Xmp_core.Xmp.switch_disc ~params:Xmp_core.Params.default () in

  (* 3. A testbed with two 1 Gbps bottleneck paths. *)
  let spec =
    { Net.Testbed.rate = Net.Units.gbps 1.; delay = Time.us 62; disc }
  in
  let tb =
    Net.Testbed.create ~net ~n_left:1 ~n_right:1 ~bottlenecks:[ spec; spec ]
      ~access_delay:(Time.us 25) ()
  in

  (* 4. An XMP flow (BOS + TraSh) with one subflow per path, transferring
     50 MB. *)
  let size_segments = 50_000_000 / Net.Packet.payload_bytes in
  let flow =
    Xmp_core.Xmp.flow ~net ~flow:1
      ~src:(Net.Testbed.left_id tb 0)
      ~dst:(Net.Testbed.right_id tb 0)
      ~paths:[ 0; 1 ] ~size_segments
      ~observer:
        {
          Flow.silent with
          on_complete =
            (fun f ->
              Printf.printf "flow completed at %.3f s\n"
                (Time.to_float_s (Sim.now sim));
              Printf.printf "goodput: %.1f Mbps over two 1 Gbps paths\n"
                (Flow.goodput_bps f /. 1e6));
        }
      ()
  in

  (* 5. Run. *)
  Sim.run ~until:(Time.sec 0.5) sim;

  (* 6. Inspect. *)
  Array.iteri
    (fun i conn ->
      Printf.printf
        "subflow %d: cwnd = %.1f segments, srtt = %.0f us, acked = %d\n" i
        (Tcp.cwnd conn)
        (Time.to_us (Tcp.srtt conn))
        (Tcp.segments_acked conn))
    (Flow.subflows flow);
  List.iteri
    (fun j _ ->
      let disc = Net.Link.disc (Net.Testbed.bottleneck_fwd tb j) in
      Printf.printf
        "bottleneck %d: %d packets marked, %d dropped, max queue %d pkts\n" j
        (Net.Queue_disc.marked disc)
        (Net.Queue_disc.dropped disc)
        (Net.Queue_disc.max_length_seen disc))
    [ (); () ];
  if not (Flow.is_complete flow) then
    Printf.printf "flow still running: %d of %d segments acked\n"
      (Flow.segments_acked flow) size_segments
