(** Fixed-width time-bucketed accumulator, used to turn per-packet byte
    counters into the rate-versus-time series plotted in the paper's
    figures. Bucket indices are in simulated seconds. *)

type t

val create : bucket:float -> horizon:float -> t
(** [create ~bucket ~horizon] covers \[0, horizon) seconds with buckets of
    [bucket] seconds each.

    @raise Invalid_argument unless [bucket] is finite and positive and
    [horizon] is finite with [horizon >= bucket] (at least one bucket). *)

val bucket_width : t -> float

val n_buckets : t -> int

val record : t -> time_s:float -> float -> unit
(** Adds a value into the bucket containing [time_s]. Samples outside
    \[0, horizon) are dropped. *)

val sums : t -> float array
(** Per-bucket totals. *)

val rates : t -> float array
(** Per-bucket totals divided by the bucket width — i.e. bytes recorded per
    bucket become bytes/second. *)

val bucket_start : t -> int -> float
(** Left edge (seconds) of bucket [i]. *)
