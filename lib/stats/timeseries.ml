type t = { bucket : float; sums : float array }

let create ~bucket ~horizon =
  if (not (Float.is_finite bucket)) || bucket <= 0. then
    invalid_arg "Timeseries.create: bucket must be finite and positive";
  if (not (Float.is_finite horizon)) || horizon < bucket then
    invalid_arg "Timeseries.create: horizon must be finite and >= bucket";
  let n = int_of_float (Float.ceil (horizon /. bucket)) in
  { bucket; sums = Array.make n 0. }

let bucket_width t = t.bucket
let n_buckets t = Array.length t.sums

let record t ~time_s v =
  if time_s >= 0. then begin
    let i = int_of_float (time_s /. t.bucket) in
    if i < Array.length t.sums then t.sums.(i) <- t.sums.(i) +. v
  end

let sums t = Array.copy t.sums
let rates t = Array.map (fun s -> s /. t.bucket) t.sums
let bucket_start t i = float_of_int i *. t.bucket
