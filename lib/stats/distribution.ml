type t = {
  mutable samples : float array;
  mutable len : int;
  mutable sorted : bool;
}

let create () = { samples = [||]; len = 0; sorted = true }

let add t x =
  if t.len = Array.length t.samples then begin
    let cap = if t.len = 0 then 64 else t.len * 2 in
    let arr = Array.make cap 0. in
    Array.blit t.samples 0 arr 0 t.len;
    t.samples <- arr
  end;
  t.samples.(t.len) <- x;
  t.len <- t.len + 1;
  t.sorted <- false

let add_list t xs = List.iter (add t) xs
let count t = t.len
let is_empty t = t.len = 0

(* In-place heapsort over the live prefix [0, len). The backing array is
   over-allocated (doubling growth), so [Array.sort] on the whole array
   would order the dead tail too, and the previous copy-out/copy-back
   allocated a full live-size scratch array on every re-sort — the
   dominant allocation when percentile reads interleave with adds at
   millions of samples. Heapsort visits only [0, len), allocates nothing
   and, [Float.compare] being a total order, yields the same sorted
   sequence as any comparison sort. *)
let sift_down a len root =
  let x = Array.unsafe_get a root in
  let i = ref root in
  let continue = ref true in
  while !continue do
    let child = (2 * !i) + 1 in
    if child >= len then continue := false
    else begin
      let child =
        if
          child + 1 < len
          && Float.compare (Array.unsafe_get a child)
               (Array.unsafe_get a (child + 1))
             < 0
        then child + 1
        else child
      in
      if Float.compare x (Array.unsafe_get a child) < 0 then begin
        Array.unsafe_set a !i (Array.unsafe_get a child);
        i := child
      end
      else continue := false
    end
  done;
  Array.unsafe_set a !i x

let ensure_sorted t =
  if not t.sorted then begin
    let a = t.samples and len = t.len in
    for root = (len / 2) - 1 downto 0 do
      sift_down a len root
    done;
    for last = len - 1 downto 1 do
      let x = Array.unsafe_get a last in
      Array.unsafe_set a last (Array.unsafe_get a 0);
      Array.unsafe_set a 0 x;
      sift_down a last 0
    done;
    t.sorted <- true
  end

let mean t =
  if t.len = 0 then 0.
  else begin
    let sum = ref 0. in
    for i = 0 to t.len - 1 do
      sum := !sum +. t.samples.(i)
    done;
    !sum /. float_of_int t.len
  end

let percentile t p =
  if t.len = 0 then invalid_arg "Distribution.percentile: empty";
  if p < 0. || p > 100. then invalid_arg "Distribution.percentile: range";
  ensure_sorted t;
  let rank = p /. 100. *. float_of_int (t.len - 1) in
  let lo = int_of_float (Float.floor rank) in
  let hi = Stdlib.min (lo + 1) (t.len - 1) in
  let frac = rank -. float_of_int lo in
  t.samples.(lo) +. (frac *. (t.samples.(hi) -. t.samples.(lo)))

let min t =
  ensure_sorted t;
  if t.len = 0 then invalid_arg "Distribution.min: empty" else t.samples.(0)

let max t =
  ensure_sorted t;
  if t.len = 0 then invalid_arg "Distribution.max: empty"
  else t.samples.(t.len - 1)

let five_number t =
  (min t, percentile t 10., percentile t 50., percentile t 90., max t)

let cdf_points t n =
  if t.len = 0 || n <= 0 then []
  else begin
    ensure_sorted t;
    let point i =
      let p = float_of_int (i + 1) /. float_of_int n in
      let idx =
        Stdlib.min (t.len - 1)
          (int_of_float (Float.ceil (p *. float_of_int t.len)) - 1)
      in
      (t.samples.(Stdlib.max 0 idx), p)
    in
    List.init n point
  end

let fraction_above t threshold =
  if t.len = 0 then 0.
  else begin
    let above = ref 0 in
    for i = 0 to t.len - 1 do
      if t.samples.(i) > threshold then incr above
    done;
    float_of_int !above /. float_of_int t.len
  end

let values t =
  ensure_sorted t;
  Array.sub t.samples 0 t.len
