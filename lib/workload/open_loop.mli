(** Open-loop workload runs on the pod-sharded fat tree, at paper scale.

    Arrivals are per-host Poisson processes ({!Arrivals}) whose rate
    offers a chosen fraction of the host line rate; flow sizes come from
    an empirical CDF ({!Flow_size}); destinations are uniform over the
    other hosts. Arrivals never wait for completions — the open-loop
    property that exposes a scheme's behaviour under sustained load.

    Flows are created at the {!Xmp_net.Shard.run} epoch barrier (the
    [on_epoch] hook), the only point where registering a flow's sender
    and receiver halves on two different shards is safe; completed
    flows' receiver halves are reaped at the next barrier so endpoint
    tables stay bounded over millions of flows. All per-flow randomness
    comes from the source host's own stream, flow ids are assigned in
    the deterministic barrier order, and per-pod {!Metrics} collectors
    are merged in pod order — so results are byte-identical for any
    [domains] count. *)

type config = {
  k : int;
  seed : int;
  scheme : Scheme.t;
  sizes : Flow_size.t;
  load : float;  (** offered load as a fraction of host line rate *)
  rate : Xmp_net.Units.rate;  (** host line rate *)
  horizon : Xmp_engine.Time.t;  (** arrivals stop here *)
  drain : Xmp_engine.Time.t;
      (** extra simulated time for in-flight flows to finish; flows still
          running at [horizon + drain] are recorded as truncated *)
  max_flows : int option;  (** arrivals also stop after this many launches *)
  queue_pkts : int;
  marking_threshold : int;
      (** overridden by the scheme's own [k] tunable when set, as in
          {!Driver} *)
  beta : int;
  rto_min : Xmp_engine.Time.t;
  sack : bool;
  rtt_subsample : int;
  keep_flows : bool;
      (** retain per-flow records (see {!Metrics.create}); leave [false]
          for long runs *)
  cross_dc : float;
      (** fraction of arrivals aimed at the other data center, on WAN
          fabrics ({!run_wan}) only; ignored (and the destination draw
          sequence unchanged) on the single-tree {!run} *)
}

val default_config : config
(** k = 8, seed 1, XMP-2, web-search sizes, 40% load at 1 Gbps,
    100 ms horizon + 200 ms drain, no flow cap, 100-packet queues with
    marking threshold 10, β = 4, RTOmin 200 ms, SACK off, RTT
    subsampling 64, per-flow records not kept, no cross-DC traffic. *)

type result = {
  metrics : Metrics.t;
      (** pod collectors merged in pod order; FCT slowdowns are in
          {!Metrics.fct_slowdowns} / {!Metrics.fct_summary_csv} /
          {!Metrics.fct_cdf_csv} *)
  launched : int;
  completed : int;
  truncated : int;  (** still running at [horizon + drain] *)
  events : int;
  mail : int;  (** cross-shard portal packets *)
  config : config;
}

val arrival_rate : config -> float
(** The per-host arrival rate (flows/s) the config offers:
    [load · rate / (mean flow size in bits)]. *)

val ideal_fct :
  config ->
  locality:Xmp_net.Fat_tree.locality ->
  size_segments:int ->
  Xmp_engine.Time.t
(** The slowdown denominator: line-rate transfer time plus the zero-load
    RTT for the locality (a flow that never queues or shares scores 1).
    Raises [Invalid_argument] for {!Xmp_net.Fat_tree.Inter_dc}: the
    cross-DC ideal depends on the trunk delay, so WAN runs compute it
    from {!Xmp_net.Wan.zero_load_rtt} internally. *)

val run : ?config:config -> ?domains:int -> unit -> result
(** The pod-sharded fat tree ([config.k] pods), as always. *)

val run_wan :
  ?config:config ->
  ?domains:int ->
  ?faults:Xmp_engine.Fault_spec.t ->
  left:Xmp_net.Wan.dc_spec ->
  right:Xmp_net.Wan.dc_spec ->
  trunks:Xmp_net.Wan.trunk list ->
  unit ->
  result
(** The same open-loop generator over a two-DC {!Xmp_net.Wan} bridge
    (one shard per DC; [config.k] is ignored, the DC specs size the
    fabric). [config.cross_dc] of each host's arrivals target a uniform
    host in the other DC; the rest stay uniform within the source DC.
    Cross-DC ideals use the fastest trunk's zero-load RTT, so slowdown
    stays comparable across trunk configurations. [faults] (e.g.
    Gilbert–Elliott loss targeting the ["wan"] tag or a
    {!Xmp_net.Wan.trunk_link_name}) is installed on both DC networks.
    Determinism contract is unchanged: [domains:1 ≡ domains:2]
    byte-identical. *)
