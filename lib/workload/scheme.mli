(** The data-transfer schemes the paper evaluates, unified behind one
    launcher. A scheme is a {e kind} (the congestion controller), a
    subflow count, and a set of typed per-scheme tunables; values are
    built by the smart constructors below, which validate ranges, and
    print/parse through the strict [NAME-<subflows>[:key=val,...]]
    grammar of {!name}/{!of_name}. *)

type kind =
  | Dctcp  (** single-path DCTCP over ECN switches *)
  | Reno  (** plain single-path TCP, loss-driven *)
  | Lia  (** MPTCP with Linked Increases *)
  | Olia  (** MPTCP with OLIA (extension) *)
  | Xmp  (** MPTCP with XMP (BOS + TraSh) *)
  | Balia  (** MPTCP with BALIA (extension) *)
  | Veno  (** MPTCP with MP-Veno (extension) *)
  | Amp  (** MPTCP with AMP (arXiv:1707.00322) *)

type ect_mode =
  | Counted  (** DCTCP-style exact CE echo (AMP's default) *)
  | Classic  (** RFC 3168: ECE latched until the sender's CWR *)

type tunables = {
  xmp_beta : int option;
      (** XMP's window-reduction divisor β; [None] defers to the ambient
          {!transport_overrides.beta} *)
  xmp_k : int option;
      (** the switch marking threshold K (packets) this scheme was tuned
          for; carried so a driver can configure the fabric to match
          (see {!marking_threshold}) *)
  veno_beta : float option;
      (** MP-Veno's backlog threshold β in segments; [None] means the
          module default ({!Xmp_mptcp.Veno.beta_pkts}, 3) *)
  amp_ect : ect_mode;  (** AMP's ECN echo mode (default [Counted]) *)
  rto_min : Xmp_engine.Time.t option;
      (** per-scheme RTO floor; [None] defers to the ambient
          {!transport_overrides.rto_min} (generic key, any kind) *)
  rto_max : Xmp_engine.Time.t option;
      (** per-scheme RTO ceiling; [None] defers to the ambient
          {!transport_overrides.rto_max} (generic key, any kind) *)
}

val default_tunables : tunables
(** All-default: every option [None], [amp_ect = Counted]. *)

type t = private { kind : kind; subflows : int; tunables : tunables }
(** Private: build values with the constructors below so invariants
    (subflow count ≥ 1, tunables only on the kind they apply to, names
    that round-trip) hold by construction. Matching and field access
    are unrestricted. *)

(** {1 Constructors} *)

val dctcp : t

val reno : t

val lia : int -> t

val olia : int -> t

val xmp : ?beta:int -> ?k:int -> int -> t
(** [xmp ?beta ?k n] — XMP with [n] subflows. [beta ≥ 2] overrides the
    ambient window-reduction divisor for this scheme's flows; [k ≥ 1]
    records the marking threshold the scheme expects from the fabric. *)

val balia : int -> t

val veno : ?beta:float -> int -> t
(** [veno ?beta n] — MP-Veno with [n] subflows. [beta] (> 0, in
    segments) replaces the default backlog threshold of 3. It must
    survive ["%g"] printing exactly (plain decimal, no exponent) so
    {!name} round-trips; e.g. [2.5] is accepted, [1e-7] is not. *)

val amp : ?ect:ect_mode -> int -> t
(** [amp ?ect n] — AMP with [n] subflows, echoing CE marks in [ect]
    mode (default [Counted]). *)

val with_rto :
  ?rto_min:Xmp_engine.Time.t -> ?rto_max:Xmp_engine.Time.t -> t -> t
(** [with_rto ?rto_min ?rto_max t] pins this scheme's RTO floor/ceiling,
    overriding the ambient {!transport_overrides} for its flows — how a
    WAN topology gives its schemes an ms-scale floor without touching
    the driver-wide defaults. Unset arguments keep the current values;
    raises if the result has [rto_min > rto_max]. *)

(** {1 Names} *)

val name : t -> string
(** Paper-style name plus non-default tunables: "DCTCP", "TCP",
    "LIA-4", "XMP-2", "XMP-2:beta=6,k=20", "VENO-2:beta=2.5",
    "AMP-2:ect=classic", "XMP-2:rtomin=1000000". Keys appear in a
    fixed order (kind-specific first, then the generic [rtomin]/
    [rtomax], in nanoseconds) and only when they differ from the
    default, so the name is canonical. *)

val of_name : string -> t option
(** Inverse of {!name} (case-insensitive): strict
    [NAME-<subflows>[:key=val,...]]. The subflow suffix must be a bare
    decimal ≥ 1 — trailing garbage ("XMP-2x"), signs, hex and
    underscores are rejected. Tunable keys must belong to the scheme
    ([beta]/[k] for XMP, [beta] for VENO, [ect] for AMP; [rtomin]/
    [rtomax] in whole nanoseconds on any kind), appear at most once,
    and carry values in range; anything else is [None].
    [of_name (name t) = Some t] for every [t]. *)

(** {1 Properties} *)

val n_subflows : t -> int

val is_multipath : t -> bool

val uses_ecn : t -> bool

val marking_threshold : t -> int option
(** The switch marking threshold K this scheme was tuned for (XMP's [k]
    tunable) — [None] for every other scheme or when unset. Drivers use
    it to override their fabric-wide threshold under a uniform
    assignment. *)

type transport_overrides = {
  rto_min : Xmp_engine.Time.t;
  rto_max : Xmp_engine.Time.t;
  beta : int;  (** XMP's window-reduction divisor *)
  sack : bool;  (** selective acknowledgements for every flow *)
}

val default_overrides : transport_overrides
(** RTOmin 200 ms, RTOmax 60 s, β = 4, SACK off (the paper's
    RTO-dominated regime). Per-scheme [rtomin]/[rtomax] tunables win
    over these (see {!with_rto}). *)

val tcp_config : t -> transport_overrides -> Xmp_transport.Tcp.config
(** The transport configuration this scheme runs with: ECT + capped echo
    for XMP, ECT + exact echo for DCTCP and AMP ([Counted]; AMP in
    [Classic] mode uses RFC 3168 echo instead), plain for the
    loss-driven schemes (TCP/LIA/OLIA/BALIA/VENO). *)

val coupling : t -> transport_overrides -> Xmp_mptcp.Coupling.t
(** The coupled controller a flow of this scheme instantiates (exposed
    so conformance rigs can drive it without a network). Scheme-level
    tunables win over [overrides]: XMP's [beta] replaces
    [overrides.beta], Veno's [beta] replaces the module default. *)

type observer = Xmp_mptcp.Mptcp_flow.observer = {
  on_complete : Xmp_mptcp.Mptcp_flow.t -> unit;
  on_subflow_acked : int -> int -> unit;
  on_rtt_sample : Xmp_engine.Time.t -> unit;
}
(** Flow lifecycle callbacks, re-exported from
    {!Xmp_mptcp.Mptcp_flow.observer}. Build one by record update over
    {!silent}: [{ Scheme.silent with on_complete = ... }]. This replaces
    the former trio of [?on_complete]/[?on_subflow_acked]/
    [?on_rtt_sample] optional arguments: passing part of an observer
    means writing exactly the fields you care about, and adding a future
    callback no longer grows every launcher's signature. For passive
    measurement (rates, queue series) prefer the simulator's telemetry
    sink and leave the observer {!silent}. *)

val silent : observer
(** Ignores every event — the default for {!launch}. *)

val launch :
  net:Xmp_net.Network.t ->
  ?rcv_net:Xmp_net.Network.t ->
  overrides:transport_overrides ->
  flow:int ->
  src:int ->
  dst:int ->
  paths:int list ->
  ?size_segments:int ->
  ?start_at:Xmp_engine.Time.t ->
  ?observer:observer ->
  t ->
  Xmp_mptcp.Mptcp_flow.t
(** Starts a flow of this scheme. [paths] carries up to {!n_subflows}
    selectors — fewer when the host pair has less path diversity than the
    scheme wants (e.g. XMP-4 within a rack). [observer] (default
    {!silent}) receives the flow's lifecycle events. [rcv_net] places the
    receiver half on another shard's network and [start_at] defers the
    first transmission, as in {!Xmp_mptcp.Mptcp_flow.create}. *)

val pick_paths :
  rng:Random.State.t -> available:int -> wanted:int -> int list
(** [wanted] distinct path selectors drawn uniformly from
    [0..available-1] (fewer if [available < wanted]). This models the
    choice of destination addresses when subflows are established. *)
