(** The data-transfer schemes the paper evaluates, unified behind one
    launcher. The trailing digit in names like "XMP-2" is the number of
    subflows a large flow establishes (§5.2.2). *)

type t =
  | Dctcp  (** single-path DCTCP over ECN switches *)
  | Reno  (** plain single-path TCP, loss-driven *)
  | Lia of int  (** MPTCP with Linked Increases, n subflows *)
  | Olia of int  (** MPTCP with OLIA, n subflows (extension) *)
  | Xmp of int  (** MPTCP with XMP (BOS + TraSh), n subflows *)
  | Balia of int  (** MPTCP with BALIA, n subflows (extension) *)
  | Veno of int  (** MPTCP with MP-Veno, n subflows (extension) *)
  | Amp of int  (** MPTCP with AMP (arXiv:1707.00322), n subflows *)

val name : t -> string
(** Paper-style name: "DCTCP", "TCP", "LIA-4", "XMP-2", "OLIA-2",
    "BALIA-2", "VENO-2", "AMP-2". *)

val of_name : string -> t option
(** Inverse of {!name} (case-insensitive). The subflow suffix must be a
    bare decimal ≥ 1 — trailing garbage ("XMP-2x"), signs, hex and
    underscores are rejected. *)

val n_subflows : t -> int

val is_multipath : t -> bool

val uses_ecn : t -> bool

type transport_overrides = {
  rto_min : Xmp_engine.Time.t;
  beta : int;  (** XMP's window-reduction divisor *)
  sack : bool;  (** selective acknowledgements for every flow *)
}

val default_overrides : transport_overrides
(** RTOmin 200 ms, β = 4, SACK off (the paper's RTO-dominated regime). *)

val tcp_config : t -> transport_overrides -> Xmp_transport.Tcp.config
(** The transport configuration this scheme runs with: ECT + capped echo
    for XMP, ECT + exact echo for DCTCP and AMP, plain for the
    loss-driven schemes (TCP/LIA/OLIA/BALIA/VENO). *)

val coupling : t -> transport_overrides -> Xmp_mptcp.Coupling.t
(** The coupled controller a flow of this scheme instantiates (exposed
    so conformance rigs can drive it without a network). *)

type observer = Xmp_mptcp.Mptcp_flow.observer = {
  on_complete : Xmp_mptcp.Mptcp_flow.t -> unit;
  on_subflow_acked : int -> int -> unit;
  on_rtt_sample : Xmp_engine.Time.t -> unit;
}
(** Flow lifecycle callbacks, re-exported from
    {!Xmp_mptcp.Mptcp_flow.observer}. Build one by record update over
    {!silent}: [{ Scheme.silent with on_complete = ... }]. This replaces
    the former trio of [?on_complete]/[?on_subflow_acked]/
    [?on_rtt_sample] optional arguments: passing part of an observer
    means writing exactly the fields you care about, and adding a future
    callback no longer grows every launcher's signature. For passive
    measurement (rates, queue series) prefer the simulator's telemetry
    sink and leave the observer {!silent}. *)

val silent : observer
(** Ignores every event — the default for {!launch}. *)

val launch :
  net:Xmp_net.Network.t ->
  overrides:transport_overrides ->
  flow:int ->
  src:int ->
  dst:int ->
  paths:int list ->
  ?size_segments:int ->
  ?observer:observer ->
  t ->
  Xmp_mptcp.Mptcp_flow.t
(** Starts a flow of this scheme. [paths] carries up to {!n_subflows}
    selectors — fewer when the host pair has less path diversity than the
    scheme wants (e.g. XMP-4 within a rack). [observer] (default
    {!silent}) receives the flow's lifecycle events. *)

val pick_paths :
  rng:Random.State.t -> available:int -> wanted:int -> int list
(** [wanted] distinct path selectors drawn uniformly from
    [0..available-1] (fewer if [available < wanted]). This models the
    choice of destination addresses when subflows are established. *)
