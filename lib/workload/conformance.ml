module Cc = Xmp_transport.Cc
module Time = Xmp_engine.Time
module Coupling = Xmp_mptcp.Coupling

type step =
  | Ack of int
  | Ce_ack of int
  | Fast_retransmit
  | Timeout
  | Sibling_ack of int

type episode = { ep_name : string; steps : step list }

let repeat n s = List.init n (fun _ -> s)

let interleave n a b = List.concat (List.init n (fun _ -> a @ b))

let episodes =
  [
    { ep_name = "ramp"; steps = repeat 24 (Ack 1) };
    {
      ep_name = "ca";
      steps = repeat 16 (Ack 1) @ [ Fast_retransmit ] @ repeat 32 (Ack 1);
    };
    {
      ep_name = "ecn";
      steps =
        (* the 24 clean ACKs between the CE events advance snd_una past a
           full window, so the second mark lands outside every scheme's
           once-per-window gate and exercises the congestion-avoidance
           cut (the first one hits slow start) *)
        repeat 16 (Ack 1)
        @ [ Ce_ack 1 ]
        @ repeat 24 (Ack 1)
        @ [ Ce_ack 3 ]
        @ repeat 16 (Ack 1);
    };
    {
      ep_name = "loss-train";
      steps =
        repeat 16 (Ack 1)
        @ [ Fast_retransmit ]
        @ repeat 8 (Ack 1)
        @ [ Fast_retransmit; Fast_retransmit ]
        @ repeat 16 (Ack 1);
    };
    {
      ep_name = "timeout";
      steps = repeat 16 (Ack 1) @ [ Timeout ] @ repeat 24 (Ack 1);
    };
    {
      ep_name = "sibling";
      steps =
        repeat 8 (Ack 1)
        @ interleave 12 [ Sibling_ack 2 ] [ Ack 1 ]
        @ [ Fast_retransmit ]
        @ interleave 12 [ Sibling_ack 1 ] [ Ack 1 ];
    };
  ]

let schemes =
  [
    Scheme.dctcp;
    Scheme.reno;
    Scheme.lia 2;
    Scheme.olia 2;
    Scheme.xmp 2;
    Scheme.balia 2;
    Scheme.veno 2;
    Scheme.amp 2;
  ]

type sub = { cc : Cc.t; una : int ref; nxt : int ref }

type rig = { scheme : Scheme.t; subs : sub array; now : Time.t ref }

(* Distinct per-subflow smoothed RTTs (subflow 0 is the fastest) over a
   common 200 µs base, so delay- and rate-sensitive rules (Veno's
   backlog, Balia's α, TraSh's δ) see asymmetric paths. *)
let srtt_of_index i = Time.us (300 + (150 * i))

let base_rtt = Time.us 200

(* The WAN-heterogeneity rig: subflow 0 stays on an intra-DC path
   (100 µs) while every sibling crosses a long-haul trunk (20 ms) — a
   200:1 ratio that stresses the rate terms (LIA/OLIA divide by srtt²,
   Balia by srtt) and Veno's backlog estimate far outside the regime
   the couplings were tuned in. min_rtt sits at 4/5 of srtt so
   queue-delay-sensitive rules see a plausible standing backlog on both
   path classes. *)
let asym_srtt_of_index i = if i = 0 then Time.us 100 else Time.ms 20

let asym_min_rtt_of_index i = if i = 0 then Time.us 80 else Time.ms 16

let asym_episode =
  {
    ep_name = "rtt-asym";
    steps =
      repeat 8 (Ack 1)
      @ interleave 12 [ Sibling_ack 1 ] [ Ack 2 ]
      @ [ Ce_ack 2 ]
      @ interleave 8 [ Sibling_ack 2 ] [ Ack 1 ]
      @ [ Fast_retransmit ]
      @ interleave 12 [ Sibling_ack 1 ] [ Ack 1 ]
      @ [ Timeout ]
      @ repeat 16 (Ack 1);
  }

let make_rig ?(srtt_of = srtt_of_index) ?(min_rtt_of = fun _ -> base_rtt)
    scheme =
  let coupling = Scheme.coupling scheme Scheme.default_overrides in
  let factory = coupling.Coupling.fresh () in
  let now = ref (Time.us 0) in
  let make_sub i =
    let una = ref 0 and nxt = ref 0 in
    let srtt = srtt_of i in
    let min_rtt = min_rtt_of i in
    let view =
      {
        Cc.snd_una = (fun () -> !una);
        snd_nxt = (fun () -> !nxt);
        srtt = (fun () -> srtt);
        min_rtt = (fun () -> min_rtt);
        now = (fun () -> !now);
        telemetry = Xmp_telemetry.Sink.unscoped;
      }
    in
    { cc = factory i view; una; nxt }
  in
  { scheme; subs = Array.init (Scheme.n_subflows scheme) make_sub; now }

let make_asym_rig scheme =
  make_rig ~srtt_of:asym_srtt_of_index ~min_rtt_of:asym_min_rtt_of_index
    scheme

let cwnd rig i = rig.subs.(i).cc.Cc.cwnd ()

let in_slow_start rig i = rig.subs.(i).cc.Cc.in_slow_start ()

let total_cwnd rig =
  Array.fold_left (fun acc s -> acc +. s.cc.Cc.cwnd ()) 0. rig.subs

(* Deliver a cumulative ACK for [k] segments on subflow [i], CE-marking
   every one of them when [ce]. A full window is put "in flight" first so
   round detection (BOS) and once-per-window gates (classic ECN, DCTCP)
   see the sequence space advance the way a live connection's would. *)
let deliver rig i ~ce k =
  let sub = rig.subs.(i) in
  let w = Stdlib.max 1 (int_of_float (sub.cc.Cc.cwnd ())) in
  if !(sub.nxt) < !(sub.una) + w then sub.nxt := !(sub.una) + w;
  sub.una := !(sub.una) + k;
  if !(sub.nxt) < !(sub.una) then sub.nxt := !(sub.una);
  let ce_count = if ce then k else 0 in
  if ce_count > 0 then sub.cc.Cc.on_ecn ~count:ce_count;
  sub.cc.Cc.on_ack ~ack:!(sub.una) ~newly_acked:k ~ce_count

let apply rig step =
  rig.now := !(rig.now) + Time.us 150;
  match step with
  | Ack k -> deliver rig 0 ~ce:false k
  | Ce_ack k -> deliver rig 0 ~ce:true k
  | Fast_retransmit -> rig.subs.(0).cc.Cc.on_fast_retransmit ()
  | Timeout -> rig.subs.(0).cc.Cc.on_timeout ()
  | Sibling_ack k ->
    if Array.length rig.subs > 1 then deliver rig 1 ~ce:false k

let step_name = function
  | Ack k -> Printf.sprintf "ack:%d" k
  | Ce_ack k -> Printf.sprintf "ce:%d" k
  | Fast_retransmit -> "retx"
  | Timeout -> "rto"
  | Sibling_ack k -> Printf.sprintf "sib:%d" k

type sample = {
  step_idx : int;
  step : step;
  cwnd0 : float;
  total : float;
  slow_start0 : bool;
}

(* The rig persists across calls, so episodes concatenate: running
   "timeout" after "ecn" continues from the post-ecn state, which is
   what the order-randomized safety fuzz leans on. *)
let run_episode rig episode =
  List.mapi
    (fun step_idx step ->
      apply rig step;
      {
        step_idx;
        step;
        cwnd0 = cwnd rig 0;
        total = total_cwnd rig;
        slow_start0 = in_slow_start rig 0;
      })
    episode.steps

(* One trace line per step: subflow-0 cwnd and the aggregate window,
   %.6g so the text is stable across runs and platforms. *)
let render_episode ?(make = fun s -> make_rig s) scheme episode =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "# %s %s\n" (Scheme.name scheme) episode.ep_name);
  let rig = make scheme in
  List.iter
    (fun s ->
      Buffer.add_string buf
        (Printf.sprintf "%3d %-6s %.6g %.6g\n" s.step_idx (step_name s.step)
           s.cwnd0 s.total))
    (run_episode rig episode);
  Buffer.contents buf

let render_all () =
  String.concat "\n"
    (List.concat_map
       (fun scheme ->
         List.map (fun ep -> render_episode scheme ep) episodes
         @ [ render_episode ~make:make_asym_rig scheme asym_episode ])
       schemes)
