type t = { shape : float; scale : float; cap : float }

(* Expected value of the capped sampler [min cap (scale / U^(1/shape))]:
   the underlying variable is Pareto(scale, shape) truncated by mapping
   all mass above [cap] onto the point [cap], so

     E[X] = shape/(shape-1) · scale
            - 1/(shape-1) · scale^shape · cap^(1-shape)

   This is strictly increasing in [scale] on (0, cap], equals [cap] at
   [scale = cap], and tends to the unbounded mean shape/(shape-1)·scale
   as [cap] grows. *)
let capped_mean ~shape ~cap scale =
  ((shape /. (shape -. 1.)) *. scale)
  -. ((scale ** shape) *. (cap ** (1. -. shape)) /. (shape -. 1.))

let create ~shape ~mean ~cap =
  if shape <= 1. then invalid_arg "Pareto.create: shape must exceed 1";
  if mean <= 0. || cap < mean then invalid_arg "Pareto.create: mean/cap";
  (* Solve capped_mean(scale) = mean by bisection. The unbounded formula
     mean·(shape−1)/shape is a strict lower bound for the root (the cap
     only removes mass from the tail), and [cap] is an upper bound since
     capped_mean(cap) = cap ≥ mean. *)
  let lo = ref (mean *. (shape -. 1.) /. shape) and hi = ref cap in
  for _ = 1 to 200 do
    let mid = 0.5 *. (!lo +. !hi) in
    if capped_mean ~shape ~cap mid < mean then lo := mid else hi := mid
  done;
  { shape; scale = 0.5 *. (!lo +. !hi); cap }

let scale t = t.scale

let sample t rng =
  let u = 1. -. Random.State.float rng 1. (* in (0, 1] *) in
  Float.min t.cap (t.scale /. (u ** (1. /. t.shape)))

(* Probabilistic rounding keeps E[sample_int] = E[sample]: a plain
   [Float.round] plus the [max 1] floor biases small means upward. The
   extra rng draw is part of the sampler's deterministic stream. *)
let sample_int t rng =
  let x = sample t rng in
  let fl = Float.floor x in
  let frac = x -. fl in
  let n = int_of_float fl + (if Random.State.float rng 1. < frac then 1 else 0) in
  Stdlib.max 1 n
