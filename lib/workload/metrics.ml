module Time = Xmp_engine.Time
module Distribution = Xmp_stats.Distribution
module Fat_tree = Xmp_net.Fat_tree

type flow_record = {
  flow : int;
  scheme : Scheme.t;
  src : int;
  dst : int;
  locality : Fat_tree.locality;
  size_segments : int;
  started : Time.t;
  finished : Time.t;
  goodput_bps : float;
  truncated : bool;
}

type scheme_sum = { mutable s_sum : float; mutable s_n : int }

(* FCT-slowdown size buckets, by flow size in bytes (1460 B segments).
   The last bucket is open-ended. *)
let fct_bucket_bounds = [| 10e3; 100e3; 1e6; 10e6; Float.infinity |]
let fct_bucket_labels = [| "0-10KB"; "10KB-100KB"; "100KB-1MB"; "1MB-10MB"; ">10MB" |]
let n_fct_buckets = Array.length fct_bucket_bounds

type t = {
  keep_flows : bool;
  rtt_subsample : int;
  mutable flows : flow_record list; (* reverse chronological; only when keep_flows *)
  mutable n_flows : int;
  mutable n_truncated : int;
  (* streaming aggregates, maintained on every record_flow *)
  mutable goodput_sum : float;
  scheme_sums : (Scheme.t, scheme_sum) Hashtbl.t;
  mutable scheme_order : Scheme.t list; (* reverse insertion order *)
  goodput_all : Distribution.t;
  goodput_inner : Distribution.t;
  goodput_rack : Distribution.t;
  goodput_pod : Distribution.t;
  goodput_dc : Distribution.t;
  rtt_inner : Distribution.t;
  rtt_rack : Distribution.t;
  rtt_pod : Distribution.t;
  rtt_dc : Distribution.t;
  mutable rtt_counter : int;
  jobs : Distribution.t;
  fanout_jobs : (int, Distribution.t) Hashtbl.t;
  mutable fanout_order : int list;
  slowdown_all : Distribution.t;
  slowdown_buckets : Distribution.t array;
}

let create ?(keep_flows = false) ~rtt_subsample () =
  if rtt_subsample < 1 then invalid_arg "Metrics.create";
  {
    keep_flows;
    rtt_subsample;
    flows = [];
    n_flows = 0;
    n_truncated = 0;
    goodput_sum = 0.;
    scheme_sums = Hashtbl.create 7;
    scheme_order = [];
    goodput_all = Distribution.create ();
    goodput_inner = Distribution.create ();
    goodput_rack = Distribution.create ();
    goodput_pod = Distribution.create ();
    goodput_dc = Distribution.create ();
    rtt_inner = Distribution.create ();
    rtt_rack = Distribution.create ();
    rtt_pod = Distribution.create ();
    rtt_dc = Distribution.create ();
    rtt_counter = 0;
    jobs = Distribution.create ();
    fanout_jobs = Hashtbl.create 7;
    fanout_order = [];
    slowdown_all = Distribution.create ();
    slowdown_buckets = Array.init n_fct_buckets (fun _ -> Distribution.create ());
  }

let goodput_dist t = function
  | Fat_tree.Inner_rack -> t.goodput_inner
  | Fat_tree.Inter_rack -> t.goodput_rack
  | Fat_tree.Inter_pod -> t.goodput_pod
  | Fat_tree.Inter_dc -> t.goodput_dc

let scheme_sum t scheme =
  match Hashtbl.find_opt t.scheme_sums scheme with
  | Some s -> s
  | None ->
    let s = { s_sum = 0.; s_n = 0 } in
    Hashtbl.replace t.scheme_sums scheme s;
    t.scheme_order <- scheme :: t.scheme_order;
    s

let record_flow t r =
  t.n_flows <- t.n_flows + 1;
  if r.truncated then t.n_truncated <- t.n_truncated + 1;
  t.goodput_sum <- t.goodput_sum +. r.goodput_bps;
  let s = scheme_sum t r.scheme in
  s.s_sum <- s.s_sum +. r.goodput_bps;
  s.s_n <- s.s_n + 1;
  Distribution.add t.goodput_all r.goodput_bps;
  Distribution.add (goodput_dist t r.locality) r.goodput_bps;
  if t.keep_flows then t.flows <- r :: t.flows

let rtt_dist t = function
  | Fat_tree.Inner_rack -> t.rtt_inner
  | Fat_tree.Inter_rack -> t.rtt_rack
  | Fat_tree.Inter_pod -> t.rtt_pod
  | Fat_tree.Inter_dc -> t.rtt_dc

let record_rtt t ~locality rtt =
  t.rtt_counter <- t.rtt_counter + 1;
  if t.rtt_counter mod t.rtt_subsample = 0 then
    Distribution.add (rtt_dist t locality) (Time.to_ms rtt)

let record_job ?fanout t d =
  Distribution.add t.jobs (Time.to_ms d);
  match fanout with
  | None -> ()
  | Some f ->
    let dist =
      match Hashtbl.find_opt t.fanout_jobs f with
      | Some dist -> dist
      | None ->
        let dist = Distribution.create () in
        Hashtbl.replace t.fanout_jobs f dist;
        t.fanout_order <- f :: t.fanout_order;
        dist
    in
    Distribution.add dist (Time.to_ms d)

let fct_bucket_of_segments size_segments =
  let bytes = float_of_int size_segments *. 1460. in
  let i = ref 0 in
  while bytes > fct_bucket_bounds.(!i) do
    incr i
  done;
  !i

let record_fct t ~size_segments ~fct ~ideal =
  let ideal_s = Time.to_float_s ideal in
  if ideal_s <= 0. then invalid_arg "Metrics.record_fct: ideal must be positive";
  let slowdown = Time.to_float_s fct /. ideal_s in
  Distribution.add t.slowdown_all slowdown;
  Distribution.add t.slowdown_buckets.(fct_bucket_of_segments size_segments) slowdown

let completed_flows t =
  if not t.keep_flows then
    invalid_arg
      "Metrics.completed_flows: per-flow records not kept (create with \
       ~keep_flows:true)";
  List.rev t.flows

let keeps_flows t = t.keep_flows
let n_completed_flows t = t.n_flows
let n_truncated_flows t = t.n_truncated

let mean_goodput_bps t =
  if t.n_flows = 0 then 0. else t.goodput_sum /. float_of_int t.n_flows

let mean_goodput_bps_of_scheme t scheme =
  match Hashtbl.find_opt t.scheme_sums scheme with
  | None -> 0.
  | Some s -> if s.s_n = 0 then 0. else s.s_sum /. float_of_int s.s_n

let goodputs t = t.goodput_all

(* most-distant first; empty classes are filtered below, so runs inside
   one tree never show the Inter-DC row *)
let localities =
  [ Fat_tree.Inter_dc; Fat_tree.Inter_pod; Fat_tree.Inter_rack;
    Fat_tree.Inner_rack ]

let goodputs_by_locality t =
  List.filter_map
    (fun loc ->
      let d = goodput_dist t loc in
      if Distribution.is_empty d then None else Some (loc, d))
    localities

let rtts_by_locality t =
  List.filter_map
    (fun loc ->
      let d = rtt_dist t loc in
      if Distribution.is_empty d then None else Some (loc, d))
    localities

let job_times_ms t = t.jobs
let jobs_over_ms t threshold = Distribution.fraction_above t.jobs threshold

let job_times_by_fanout t =
  let fanouts = List.sort_uniq Int.compare t.fanout_order in
  List.map (fun f -> (f, Hashtbl.find t.fanout_jobs f)) fanouts

let fct_slowdowns t =
  let buckets =
    List.filter_map
      (fun i ->
        let d = t.slowdown_buckets.(i) in
        if Distribution.is_empty d then None
        else Some (fct_bucket_labels.(i), d))
      (List.init n_fct_buckets Fun.id)
  in
  if Distribution.is_empty t.slowdown_all then buckets
  else buckets @ [ ("all", t.slowdown_all) ]

let fct_summary_csv t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "bucket,samples,mean,p50,p90,p99,max\n";
  List.iter
    (fun (label, d) ->
      Buffer.add_string buf
        (Printf.sprintf "%s,%d,%.6g,%.6g,%.6g,%.6g,%.6g\n" label
           (Distribution.count d) (Distribution.mean d)
           (Distribution.percentile d 50.)
           (Distribution.percentile d 90.)
           (Distribution.percentile d 99.)
           (Distribution.max d)))
    (fct_slowdowns t);
  Buffer.contents buf

let fct_cdf_csv ?(points = 100) t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "bucket,slowdown,cum_prob\n";
  List.iter
    (fun (label, d) ->
      List.iter
        (fun (x, p) ->
          Buffer.add_string buf (Printf.sprintf "%s,%.6g,%.6g\n" label x p))
        (Distribution.cdf_points d points))
    (fct_slowdowns t);
  Buffer.contents buf

(* Merge [src] into [into]. Used to combine per-pod collectors after a
   sharded run; calling it in pod-index order keeps every aggregate
   deterministic (distribution contents arrive sorted-per-pod in pod
   order, float sums accumulate in pod order). *)
let merge_dist ~into src = Array.iter (Distribution.add into) (Distribution.values src)

let merge ~into src =
  into.n_flows <- into.n_flows + src.n_flows;
  into.n_truncated <- into.n_truncated + src.n_truncated;
  into.goodput_sum <- into.goodput_sum +. src.goodput_sum;
  if into.keep_flows && src.keep_flows then
    into.flows <- src.flows @ into.flows;
  List.iter
    (fun scheme ->
      let s = Hashtbl.find src.scheme_sums scheme in
      let d = scheme_sum into scheme in
      d.s_sum <- d.s_sum +. s.s_sum;
      d.s_n <- d.s_n + s.s_n)
    (List.rev src.scheme_order);
  merge_dist ~into:into.goodput_all src.goodput_all;
  merge_dist ~into:into.goodput_inner src.goodput_inner;
  merge_dist ~into:into.goodput_rack src.goodput_rack;
  merge_dist ~into:into.goodput_pod src.goodput_pod;
  merge_dist ~into:into.goodput_dc src.goodput_dc;
  merge_dist ~into:into.rtt_inner src.rtt_inner;
  merge_dist ~into:into.rtt_rack src.rtt_rack;
  merge_dist ~into:into.rtt_pod src.rtt_pod;
  merge_dist ~into:into.rtt_dc src.rtt_dc;
  into.rtt_counter <- into.rtt_counter + src.rtt_counter;
  merge_dist ~into:into.jobs src.jobs;
  List.iter
    (fun f ->
      let src_d = Hashtbl.find src.fanout_jobs f in
      let into_d =
        match Hashtbl.find_opt into.fanout_jobs f with
        | Some d -> d
        | None ->
          let d = Distribution.create () in
          Hashtbl.replace into.fanout_jobs f d;
          into.fanout_order <- f :: into.fanout_order;
          d
      in
      merge_dist ~into:into_d src_d)
    (List.rev src.fanout_order);
  merge_dist ~into:into.slowdown_all src.slowdown_all;
  Array.iteri
    (fun i d -> merge_dist ~into:into.slowdown_buckets.(i) d)
    src.slowdown_buckets

let utilization_by_layer ?(layers = Fat_tree.layers) ~net ~duration () =
  List.filter_map
    (fun layer ->
      let links = Xmp_net.Network.links_tagged net layer in
      if links = [] then None
      else begin
        let d = Distribution.create () in
        List.iter
          (fun l -> Distribution.add d (Xmp_net.Link.utilization l ~duration))
          links;
        Some (layer, d)
      end)
    layers
