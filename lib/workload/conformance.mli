(** Scheme-conformance rigs: every scheme's controller driven through
    canned ACK/ECN/loss/timeout episodes against hand-built
    {!Xmp_transport.Cc.view}s — no network, no simulator clock — so the
    test suite can assert the property matrix (windows stay ≥ 1 and
    finite, multiplicative decrease respects each scheme's β, slow start
    exits on the first congestion signal, coupled increase never beats
    uncoupled Reno) and pin byte-stable golden cwnd traces per
    (scheme, episode). *)

type step =
  | Ack of int  (** clean cumulative ACK for n segments on subflow 0 *)
  | Ce_ack of int  (** n segments acked, every one CE-marked *)
  | Fast_retransmit  (** third duplicate ACK on subflow 0 *)
  | Timeout  (** RTO fires on subflow 0 *)
  | Sibling_ack of int
      (** background clean ACK on subflow 1 (ignored for single-path
          schemes) *)

type episode = { ep_name : string; steps : step list }

val episodes : episode list
(** ramp, ca, ecn, loss-train, timeout, sibling — shared by every
    scheme so the matrix is square. *)

val schemes : Scheme.t list
(** The 8 conformance schemes: DCTCP, TCP, LIA-2, OLIA-2, XMP-2,
    BALIA-2, VENO-2, AMP-2. *)

type sub = { cc : Xmp_transport.Cc.t; una : int ref; nxt : int ref }

type rig = {
  scheme : Scheme.t;
  subs : sub array;  (** one per subflow, index 0 is the driven one *)
  now : Xmp_engine.Time.t ref;
}

val srtt_of_index : int -> Xmp_engine.Time.t
(** Fixed smoothed RTT fed to subflow [i]'s view: 300 µs + i·150 µs. *)

val base_rtt : Xmp_engine.Time.t
(** Fixed minimum RTT fed to every view (200 µs). *)

val asym_srtt_of_index : int -> Xmp_engine.Time.t
(** Heterogeneous-RTT profile: 100 µs on subflow 0, 20 ms on every
    sibling — the 200:1 intra-DC vs WAN-trunk ratio. *)

val asym_min_rtt_of_index : int -> Xmp_engine.Time.t
(** 4/5 of {!asym_srtt_of_index} per subflow, so backlog-sensitive
    rules see a plausible standing queue on both path classes. *)

val asym_episode : episode
(** The RTT-asymmetric episode ("rtt-asym"): mixed fast/slow-path ACK
    interleavings with a CE mark, a fast retransmit and a timeout on
    the fast subflow. Kept out of {!episodes} so the square matrix and
    the order-randomized fuzz are unchanged; drive it against
    {!make_asym_rig}. *)

val make_rig :
  ?srtt_of:(int -> Xmp_engine.Time.t) ->
  ?min_rtt_of:(int -> Xmp_engine.Time.t) ->
  Scheme.t ->
  rig
(** Fresh coupling instance with {!Scheme.default_overrides}; subflows
    are created in index order, so group registration order is the
    subflow order. [srtt_of] defaults to {!srtt_of_index} and
    [min_rtt_of] to a constant {!base_rtt}. *)

val make_asym_rig : Scheme.t -> rig
(** [make_rig] with the heterogeneous-RTT per-subflow profile
    ({!asym_srtt_of_index} / {!asym_min_rtt_of_index}). *)

val apply : rig -> step -> unit

val cwnd : rig -> int -> float

val in_slow_start : rig -> int -> bool

val total_cwnd : rig -> float

type sample = {
  step_idx : int;  (** position within the episode *)
  step : step;
  cwnd0 : float;  (** subflow-0 window after the step *)
  total : float;  (** aggregate window after the step *)
  slow_start0 : bool;  (** subflow 0 still in slow start *)
}

val run_episode : rig -> episode -> sample list
(** Applies every step of [episode] to [rig] in order and returns one
    sample per step. The rig keeps its state, so successive calls
    concatenate episodes — run them in any order against one rig to
    check that safety properties are order-independent. *)

val render_episode : ?make:(Scheme.t -> rig) -> Scheme.t -> episode -> string
(** The golden cwnd trace: one line per step with the step label,
    subflow-0 window and aggregate window ([%.6g]). [make] overrides
    the rig constructor (default {!make_rig}) — the asym traces pass
    {!make_asym_rig}. *)

val render_all : unit -> string
(** Every (scheme, episode) trace plus the (scheme, rtt-asym) trace on
    the heterogeneous-RTT rig, blank-line separated — the contents of
    [test/conformance.expected]. *)
