(** Bounded Pareto sampler for the paper's Random traffic pattern (§5.2.1:
    shape 1.5, mean 192 MB, upper bound 768 MB — scaled in the default
    experiments). *)

type t

val create : shape:float -> mean:float -> cap:float -> t
(** [shape] must exceed 1 (finite mean). The scale parameter is solved
    from the closed-form mean of the *capped* sampler, so the achieved
    mean matches [mean] even though [cap] truncates the tail. Requires
    [0 < mean <= cap]. *)

val scale : t -> float
(** The solved minimum value [x_m]; strictly above the unbounded-Pareto
    scale [mean·(shape−1)/shape] whenever the cap is finite relative to
    the tail. *)

val sample : t -> Random.State.t -> float

val sample_int : t -> Random.State.t -> int
(** Integer sample with probabilistic rounding (consumes one extra rng
    draw), so the expected value matches [sample] up to the [max 1]
    floor. *)
