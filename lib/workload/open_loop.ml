module Sim = Xmp_engine.Sim
module Time = Xmp_engine.Time
module Units = Xmp_net.Units
module Queue_disc = Xmp_net.Queue_disc
module Fat_tree = Xmp_net.Fat_tree
module Ft = Xmp_net.Fat_tree_sharded
module Shard = Xmp_net.Shard
module Mptcp_flow = Xmp_mptcp.Mptcp_flow

(* Open-loop workload on the pod-sharded fat tree: Poisson arrivals per
   host (independent of flow completions — the open-loop property), flow
   sizes from an empirical CDF, uniform random destinations. Flows are
   created at the epoch barrier via {!Shard.run}'s [on_epoch] hook: that
   is the only point where registering a flow's endpoints on two shards
   is safe, and it runs on the orchestrating domain in a deterministic
   order, so the generated schedule is identical for any domain count. *)

type config = {
  k : int;
  seed : int;
  scheme : Scheme.t;
  sizes : Flow_size.t;
  load : float;  (** offered load as a fraction of host line rate *)
  rate : Units.rate;  (** host line rate *)
  horizon : Time.t;  (** arrivals stop here *)
  drain : Time.t;  (** extra simulated time for in-flight flows to finish *)
  max_flows : int option;  (** arrivals also stop after this many launches *)
  queue_pkts : int;
  marking_threshold : int;
  beta : int;
  rto_min : Time.t;
  sack : bool;
  rtt_subsample : int;
  keep_flows : bool;
}

let default_config =
  {
    k = 8;
    seed = 1;
    scheme = Scheme.xmp 2;
    sizes = Flow_size.web_search;
    load = 0.4;
    rate = Units.gbps 1.;
    horizon = Time.ms 100;
    drain = Time.ms 200;
    max_flows = None;
    queue_pkts = 100;
    marking_threshold = 10;
    beta = 4;
    rto_min = Time.ms 200;
    sack = false;
    rtt_subsample = 64;
    keep_flows = false;
  }

type result = {
  metrics : Metrics.t;
  launched : int;
  completed : int;
  truncated : int;
  events : int;
  mail : int;
  config : config;
}

(* Per-host arrival rate that offers [load] of the line rate:
   λ = load · C / E[S], with E[S] in bits. *)
let arrival_rate cfg =
  let mean_bits = Flow_size.mean_segments cfg.sizes *. 1460. *. 8. in
  cfg.load *. float_of_int cfg.rate /. mean_bits

(* Zero-load round trip by locality, from the sharded fabric's default
   layer delays (create below does not override them). *)
let rack_delay = Time.us 20

let agg_delay = Time.us 30

let core_delay = Time.us 40

let zero_load_rtt locality =
  let one_way =
    match locality with
    | Fat_tree.Inner_rack -> Time.mul rack_delay 2
    | Fat_tree.Inter_rack -> Time.add (Time.mul rack_delay 2) (Time.mul agg_delay 2)
    | Fat_tree.Inter_pod ->
      Time.add
        (Time.mul rack_delay 2)
        (Time.add (Time.mul agg_delay 2) (Time.mul core_delay 2))
  in
  Time.mul one_way 2

(* Ideal FCT: line-rate transfer time plus the zero-load RTT — the
   standard slowdown denominator (a flow that never queues and never
   shares a link scores 1). *)
let ideal_fct cfg ~locality ~size_segments =
  let transfer =
    Time.of_float_s
      (float_of_int size_segments *. 1460. *. 8. /. float_of_int cfg.rate)
  in
  Time.add transfer (zero_load_rtt locality)

type active = {
  a_src : int;
  a_dst : int;
  a_locality : Fat_tree.locality;
  a_size : int;
  a_handle : Mptcp_flow.t;
}

(* Everything one pod's domain writes during an epoch; drained by the
   orchestrator at the barrier (the crew mutex publishes it). *)
type pod_state = {
  metrics : Metrics.t;
  running : (int, active) Hashtbl.t;
  mutable done_rev : Mptcp_flow.t list;
      (* completed this epoch: receivers reaped at the next barrier *)
  mutable n_completed : int;
}

let run ?(config = default_config) ?(domains = 1) () =
  let cfg = config in
  let marking =
    Option.value (Scheme.marking_threshold cfg.scheme)
      ~default:cfg.marking_threshold
  in
  let disc () =
    Queue_disc.create
      ~policy:(Queue_disc.Threshold_mark marking)
      ~capacity_pkts:cfg.queue_pkts
  in
  let ft =
    Ft.create
      ~config:{ Sim.default_config with Sim.seed = cfg.seed }
      ~k:cfg.k ~rate:cfg.rate ~disc ()
  in
  let n_hosts = Ft.n_hosts ft in
  let overrides =
    { Scheme.rto_min = cfg.rto_min; beta = cfg.beta; sack = cfg.sack }
  in
  let pods =
    Array.init cfg.k (fun _ ->
        {
          metrics =
            Metrics.create ~keep_flows:cfg.keep_flows
              ~rtt_subsample:cfg.rtt_subsample ();
          running = Hashtbl.create 512;
          done_rev = [];
          n_completed = 0;
        })
  in
  let arrivals =
    Arrivals.create ~seed:cfg.seed ~hosts:n_hosts ~rate:(arrival_rate cfg)
  in
  let launched = ref 0 in
  let launch ~host ~at ~rng =
    let src = host in
    (* uniform over the other n-1 hosts *)
    let d = Random.State.int rng (n_hosts - 1) in
    let dst = if d >= src then d + 1 else d in
    let size_segments = Flow_size.sample cfg.sizes rng in
    let locality = Ft.locality ft ~src ~dst in
    let paths =
      Scheme.pick_paths ~rng ~available:(Ft.n_paths ft ~src ~dst)
        ~wanted:(Scheme.n_subflows cfg.scheme)
    in
    let flow = !launched in
    incr launched;
    let pod = Ft.pod_of_host ft src in
    let st = pods.(pod) in
    let ideal = ideal_fct cfg ~locality ~size_segments in
    let handle =
      Scheme.launch
        ~net:(Ft.host_net ft src)
        ~rcv_net:(Ft.host_net ft dst)
        ~overrides ~flow ~src ~dst ~paths ~size_segments ~start_at:at
        ~observer:
          {
            Scheme.silent with
            on_rtt_sample = (fun rtt -> Metrics.record_rtt st.metrics ~locality rtt);
            on_complete =
              (fun f ->
                (* runs in the source pod's domain *)
                Hashtbl.remove st.running flow;
                let finished = Sim.now (Shard.sim (Ft.cluster ft) pod) in
                let started = Mptcp_flow.started_at f in
                Metrics.record_flow st.metrics
                  {
                    Metrics.flow;
                    scheme = cfg.scheme;
                    src;
                    dst;
                    locality;
                    size_segments;
                    started;
                    finished;
                    goodput_bps = Mptcp_flow.goodput_bps f;
                    truncated = false;
                  };
                Metrics.record_fct st.metrics ~size_segments
                  ~fct:(Time.sub finished started) ~ideal;
                st.done_rev <- f :: st.done_rev;
                st.n_completed <- st.n_completed + 1);
          }
        cfg.scheme
    in
    if not (Mptcp_flow.is_complete handle) then
      Hashtbl.replace st.running flow
        { a_src = src; a_dst = dst; a_locality = locality;
          a_size = size_segments; a_handle = handle }
  in
  let at_max () =
    match cfg.max_flows with Some m -> !launched >= m | None -> false
  in
  let on_epoch ~target =
    (* first reap receivers of flows that completed in earlier epochs:
       unregistering a receiver touches the destination shard, which is
       only safe here, with every worker parked *)
    Array.iter
      (fun st ->
        match st.done_rev with
        | [] -> ()
        | fs ->
          st.done_rev <- [];
          List.iter Mptcp_flow.close_receivers (List.rev fs))
      pods;
    if at_max () then Arrivals.stop arrivals;
    let gen_target = Time.min target cfg.horizon in
    let next =
      Arrivals.until arrivals ~target:gen_target ~f:(fun ~host ~at ~rng ->
          if not (at_max ()) then launch ~host ~at ~rng)
    in
    if Time.compare next cfg.horizon > 0 then Time.infinity else next
  in
  let until = Time.add cfg.horizon cfg.drain in
  Ft.run ~domains ~until ~on_epoch ft;
  (* Flows still in flight at the end are recorded as truncated, in
     flow-id order so aggregation never depends on hash-table history
     (sorted-iteration idiom). Their FCT is undefined — only goodput and
     counts are filed. *)
  let total =
    Metrics.create ~keep_flows:cfg.keep_flows ~rtt_subsample:cfg.rtt_subsample
      ()
  in
  Array.iter
    (fun st ->
      let still =
        Hashtbl.fold (fun flow a acc -> (flow, a) :: acc) st.running []
        |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
      in
      List.iter
        (fun (flow, a) ->
          Metrics.record_flow st.metrics
            {
              Metrics.flow;
              scheme = cfg.scheme;
              src = a.a_src;
              dst = a.a_dst;
              locality = a.a_locality;
              size_segments = a.a_size;
              started = Mptcp_flow.started_at a.a_handle;
              finished = until;
              goodput_bps = Mptcp_flow.goodput_bps_until a.a_handle until;
              truncated = true;
            })
        still;
      Metrics.merge ~into:total st.metrics)
    pods;
  let completed = Array.fold_left (fun acc st -> acc + st.n_completed) 0 pods in
  {
    metrics = total;
    launched = !launched;
    completed;
    truncated = Metrics.n_truncated_flows total;
    events = Shard.events_executed (Ft.cluster ft);
    mail = Shard.mail_injected (Ft.cluster ft);
    config = cfg;
  }
