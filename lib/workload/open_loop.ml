module Sim = Xmp_engine.Sim
module Time = Xmp_engine.Time
module Fault_spec = Xmp_engine.Fault_spec
module Units = Xmp_net.Units
module Queue_disc = Xmp_net.Queue_disc
module Fat_tree = Xmp_net.Fat_tree
module Ft = Xmp_net.Fat_tree_sharded
module Wan = Xmp_net.Wan
module Shard = Xmp_net.Shard
module Network = Xmp_net.Network
module Injector = Xmp_faults.Injector
module Mptcp_flow = Xmp_mptcp.Mptcp_flow

(* Open-loop workload on a sharded fabric: Poisson arrivals per host
   (independent of flow completions — the open-loop property), flow
   sizes from an empirical CDF, uniform random destinations. Flows are
   created at the epoch barrier via {!Shard.run}'s [on_epoch] hook: that
   is the only point where registering a flow's endpoints on two shards
   is safe, and it runs on the orchestrating domain in a deterministic
   order, so the generated schedule is identical for any domain count.

   The engine is written against a small fabric record so the same
   generator drives the pod-sharded fat tree ({!run}) and the two-DC
   WAN bridge ({!run_wan}); the fat-tree path performs exactly the
   RNG draws it always did, keeping its digests stable. *)

type config = {
  k : int;
  seed : int;
  scheme : Scheme.t;
  sizes : Flow_size.t;
  load : float;  (** offered load as a fraction of host line rate *)
  rate : Units.rate;  (** host line rate *)
  horizon : Time.t;  (** arrivals stop here *)
  drain : Time.t;  (** extra simulated time for in-flight flows to finish *)
  max_flows : int option;  (** arrivals also stop after this many launches *)
  queue_pkts : int;
  marking_threshold : int;
  beta : int;
  rto_min : Time.t;
  sack : bool;
  rtt_subsample : int;
  keep_flows : bool;
  cross_dc : float;
      (** fraction of flows aimed at the other DC (WAN fabrics only) *)
}

let default_config =
  {
    k = 8;
    seed = 1;
    scheme = Scheme.xmp 2;
    sizes = Flow_size.web_search;
    load = 0.4;
    rate = Units.gbps 1.;
    horizon = Time.ms 100;
    drain = Time.ms 200;
    max_flows = None;
    queue_pkts = 100;
    marking_threshold = 10;
    beta = 4;
    rto_min = Time.ms 200;
    sack = false;
    rtt_subsample = 64;
    keep_flows = false;
    cross_dc = 0.;
  }

type result = {
  metrics : Metrics.t;
  launched : int;
  completed : int;
  truncated : int;
  events : int;
  mail : int;
  config : config;
}

(* Per-host arrival rate that offers [load] of the line rate:
   λ = load · C / E[S], with E[S] in bits. *)
let arrival_rate cfg =
  let mean_bits = Flow_size.mean_segments cfg.sizes *. 1460. *. 8. in
  cfg.load *. float_of_int cfg.rate /. mean_bits

(* Zero-load round trip by locality, from the sharded fabric's default
   layer delays (create below does not override them). *)
let rack_delay = Time.us 20

let agg_delay = Time.us 30

let core_delay = Time.us 40

let zero_load_rtt locality =
  let one_way =
    match locality with
    | Fat_tree.Inner_rack -> Time.mul rack_delay 2
    | Fat_tree.Inter_rack -> Time.add (Time.mul rack_delay 2) (Time.mul agg_delay 2)
    | Fat_tree.Inter_pod ->
      Time.add
        (Time.mul rack_delay 2)
        (Time.add (Time.mul agg_delay 2) (Time.mul core_delay 2))
    | Fat_tree.Inter_dc ->
      invalid_arg
        "Open_loop.zero_load_rtt: Inter_dc depends on the trunk delay \
         (the WAN fabric supplies its own ideal)"
  in
  Time.mul one_way 2

(* Ideal FCT: line-rate transfer time plus the zero-load RTT — the
   standard slowdown denominator (a flow that never queues and never
   shares a link scores 1). *)
let transfer_time cfg ~size_segments =
  Time.of_float_s
    (float_of_int size_segments *. 1460. *. 8. /. float_of_int cfg.rate)

let ideal_fct cfg ~locality ~size_segments =
  Time.add (transfer_time cfg ~size_segments) (zero_load_rtt locality)

(* ---- the fabric seam ------------------------------------------------- *)

type fabric = {
  fb_n_hosts : int;
  fb_shards : int;
  fb_shard_of_host : int -> int;
  fb_host_net : int -> Network.t;
  fb_sim : int -> Sim.t;  (* shard index -> its simulator *)
  fb_locality : src:int -> dst:int -> Fat_tree.locality;
  fb_n_paths : src:int -> dst:int -> int;
  fb_zero_load_rtt : src:int -> dst:int -> Time.t;
  fb_dc_ranges : (int * int) array;  (* (host base, count) per DC *)
  fb_dc_of : int -> int;
  fb_run :
    domains:int -> until:Time.t -> on_epoch:(target:Time.t -> Time.t) -> unit;
  fb_events : unit -> int;
  fb_mail : unit -> int;
}

(* Destination choice. Single-DC fabrics take the one branch the
   original generator had — same draws, same digests. WAN fabrics spend
   one extra uniform draw deciding the side of the cut, then pick within
   the chosen DC. *)
let pick_dst fb ~cross_dc ~rng ~src =
  if Array.length fb.fb_dc_ranges <= 1 || cross_dc <= 0. then begin
    (* uniform over the other n-1 hosts *)
    let d = Random.State.int rng (fb.fb_n_hosts - 1) in
    if d >= src then d + 1 else d
  end
  else begin
    let dc = fb.fb_dc_of src in
    if Random.State.float rng 1.0 < cross_dc then begin
      let base, count = fb.fb_dc_ranges.(1 - dc) in
      base + Random.State.int rng count
    end
    else begin
      let base, count = fb.fb_dc_ranges.(dc) in
      let d = Random.State.int rng (count - 1) in
      let local = src - base in
      base + (if d >= local then d + 1 else d)
    end
  end

type active = {
  a_src : int;
  a_dst : int;
  a_locality : Fat_tree.locality;
  a_size : int;
  a_handle : Mptcp_flow.t;
}

(* Everything one shard's domain writes during an epoch; drained by the
   orchestrator at the barrier (the crew mutex publishes it). *)
type shard_state = {
  metrics : Metrics.t;
  running : (int, active) Hashtbl.t;
  mutable done_rev : Mptcp_flow.t list;
      (* completed this epoch: receivers reaped at the next barrier *)
  mutable n_completed : int;
}

let run_fabric ~cfg ~domains fb =
  let overrides =
    {
      Scheme.default_overrides with
      rto_min = cfg.rto_min;
      beta = cfg.beta;
      sack = cfg.sack;
    }
  in
  let shards =
    Array.init fb.fb_shards (fun _ ->
        {
          metrics =
            Metrics.create ~keep_flows:cfg.keep_flows
              ~rtt_subsample:cfg.rtt_subsample ();
          running = Hashtbl.create 512;
          done_rev = [];
          n_completed = 0;
        })
  in
  let arrivals =
    Arrivals.create ~seed:cfg.seed ~hosts:fb.fb_n_hosts
      ~rate:(arrival_rate cfg)
  in
  let launched = ref 0 in
  let launch ~host ~at ~rng =
    let src = host in
    let dst = pick_dst fb ~cross_dc:cfg.cross_dc ~rng ~src in
    let size_segments = Flow_size.sample cfg.sizes rng in
    let locality = fb.fb_locality ~src ~dst in
    let paths =
      Scheme.pick_paths ~rng ~available:(fb.fb_n_paths ~src ~dst)
        ~wanted:(Scheme.n_subflows cfg.scheme)
    in
    let flow = !launched in
    incr launched;
    let shard = fb.fb_shard_of_host src in
    let st = shards.(shard) in
    let ideal =
      Time.add (transfer_time cfg ~size_segments) (fb.fb_zero_load_rtt ~src ~dst)
    in
    let handle =
      Scheme.launch
        ~net:(fb.fb_host_net src)
        ~rcv_net:(fb.fb_host_net dst)
        ~overrides ~flow ~src ~dst ~paths ~size_segments ~start_at:at
        ~observer:
          {
            Scheme.silent with
            on_rtt_sample = (fun rtt -> Metrics.record_rtt st.metrics ~locality rtt);
            on_complete =
              (fun f ->
                (* runs in the source shard's domain *)
                Hashtbl.remove st.running flow;
                let finished = Sim.now (fb.fb_sim shard) in
                let started = Mptcp_flow.started_at f in
                Metrics.record_flow st.metrics
                  {
                    Metrics.flow;
                    scheme = cfg.scheme;
                    src;
                    dst;
                    locality;
                    size_segments;
                    started;
                    finished;
                    goodput_bps = Mptcp_flow.goodput_bps f;
                    truncated = false;
                  };
                Metrics.record_fct st.metrics ~size_segments
                  ~fct:(Time.sub finished started) ~ideal;
                st.done_rev <- f :: st.done_rev;
                st.n_completed <- st.n_completed + 1);
          }
        cfg.scheme
    in
    if not (Mptcp_flow.is_complete handle) then
      Hashtbl.replace st.running flow
        { a_src = src; a_dst = dst; a_locality = locality;
          a_size = size_segments; a_handle = handle }
  in
  let at_max () =
    match cfg.max_flows with Some m -> !launched >= m | None -> false
  in
  let on_epoch ~target =
    (* first reap receivers of flows that completed in earlier epochs:
       unregistering a receiver touches the destination shard, which is
       only safe here, with every worker parked *)
    Array.iter
      (fun st ->
        match st.done_rev with
        | [] -> ()
        | fs ->
          st.done_rev <- [];
          List.iter Mptcp_flow.close_receivers (List.rev fs))
      shards;
    if at_max () then Arrivals.stop arrivals;
    let gen_target = Time.min target cfg.horizon in
    let next =
      Arrivals.until arrivals ~target:gen_target ~f:(fun ~host ~at ~rng ->
          if not (at_max ()) then launch ~host ~at ~rng)
    in
    if Time.compare next cfg.horizon > 0 then Time.infinity else next
  in
  let until = Time.add cfg.horizon cfg.drain in
  fb.fb_run ~domains ~until ~on_epoch;
  (* Flows still in flight at the end are recorded as truncated, in
     flow-id order so aggregation never depends on hash-table history
     (sorted-iteration idiom). Their FCT is undefined — only goodput and
     counts are filed. *)
  let total =
    Metrics.create ~keep_flows:cfg.keep_flows ~rtt_subsample:cfg.rtt_subsample
      ()
  in
  Array.iter
    (fun st ->
      let still =
        Hashtbl.fold (fun flow a acc -> (flow, a) :: acc) st.running []
        |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
      in
      List.iter
        (fun (flow, a) ->
          Metrics.record_flow st.metrics
            {
              Metrics.flow;
              scheme = cfg.scheme;
              src = a.a_src;
              dst = a.a_dst;
              locality = a.a_locality;
              size_segments = a.a_size;
              started = Mptcp_flow.started_at a.a_handle;
              finished = until;
              goodput_bps = Mptcp_flow.goodput_bps_until a.a_handle until;
              truncated = true;
            })
        still;
      Metrics.merge ~into:total st.metrics)
    shards;
  let completed =
    Array.fold_left (fun acc st -> acc + st.n_completed) 0 shards
  in
  {
    metrics = total;
    launched = !launched;
    completed;
    truncated = Metrics.n_truncated_flows total;
    events = fb.fb_events ();
    mail = fb.fb_mail ();
    config = cfg;
  }

let disc_of cfg =
  let marking =
    Option.value (Scheme.marking_threshold cfg.scheme)
      ~default:cfg.marking_threshold
  in
  fun () ->
    Queue_disc.create
      ~policy:(Queue_disc.Threshold_mark marking)
      ~capacity_pkts:cfg.queue_pkts

let run ?(config = default_config) ?(domains = 1) () =
  let cfg = config in
  let ft =
    Ft.create
      ~config:{ Sim.default_config with Sim.seed = cfg.seed }
      ~k:cfg.k ~rate:cfg.rate ~disc:(disc_of cfg) ()
  in
  let n_hosts = Ft.n_hosts ft in
  let cluster = Ft.cluster ft in
  let fb =
    {
      fb_n_hosts = n_hosts;
      fb_shards = cfg.k;
      fb_shard_of_host = Ft.pod_of_host ft;
      fb_host_net = Ft.host_net ft;
      fb_sim = (fun shard -> Shard.sim cluster shard);
      fb_locality = (fun ~src ~dst -> Ft.locality ft ~src ~dst);
      fb_n_paths = (fun ~src ~dst -> Ft.n_paths ft ~src ~dst);
      fb_zero_load_rtt =
        (fun ~src ~dst -> zero_load_rtt (Ft.locality ft ~src ~dst));
      fb_dc_ranges = [| (0, n_hosts) |];
      fb_dc_of = (fun _ -> 0);
      fb_run =
        (fun ~domains ~until ~on_epoch -> Ft.run ~domains ~until ~on_epoch ft);
      fb_events = (fun () -> Shard.events_executed cluster);
      fb_mail = (fun () -> Shard.mail_injected cluster);
    }
  in
  run_fabric ~cfg ~domains fb

let run_wan ?(config = default_config) ?(domains = 1) ?faults ~left ~right
    ~trunks () =
  let cfg = config in
  let wan =
    Wan.create
      ~config:{ Sim.default_config with Sim.seed = cfg.seed }
      ~left ~right ~trunks ~rate:cfg.rate ~disc:(disc_of cfg) ()
  in
  let cluster = Wan.cluster wan in
  (* arm the fault schedule (e.g. Gilbert-Elliott loss on Tag "wan")
     against both shard networks; targets must resolve in every shard,
     which holds for trunk links since each direction lives in its
     source DC's net *)
  (match faults with
  | None -> ()
  | Some schedule ->
    if not (Fault_spec.is_empty schedule) then
      for s = 0 to 1 do
        ignore (Injector.install ~net:(Shard.net cluster s) ~schedule ())
      done);
  let n0 = Wan.dc_n_hosts (Wan.dc_spec wan 0) in
  let n1 = Wan.dc_n_hosts (Wan.dc_spec wan 1) in
  let fb =
    {
      fb_n_hosts = Wan.n_hosts wan;
      fb_shards = 2;
      fb_shard_of_host = Wan.dc_of_host wan;
      fb_host_net = Wan.host_net wan;
      fb_sim = (fun shard -> Shard.sim cluster shard);
      fb_locality = (fun ~src ~dst -> Wan.locality wan ~src ~dst);
      fb_n_paths = (fun ~src ~dst -> Wan.n_paths wan ~src ~dst);
      fb_zero_load_rtt = (fun ~src ~dst -> Wan.zero_load_rtt wan ~src ~dst);
      fb_dc_ranges = [| (0, n0); (n0, n1) |];
      fb_dc_of = Wan.dc_of_host wan;
      fb_run =
        (fun ~domains ~until ~on_epoch ->
          Wan.run ~domains ~until ~on_epoch wan);
      fb_events = (fun () -> Wan.events_executed wan);
      fb_mail = (fun () -> Wan.mail_injected wan);
    }
  in
  run_fabric ~cfg ~domains fb
