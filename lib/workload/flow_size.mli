(** Empirical flow-size distributions as piecewise-linear inverse CDFs.

    A distribution is a list of [(size_segments, cum_prob)] knots with
    nondecreasing sizes and probabilities ending at 1; sampling inverts
    the CDF with linear interpolation between knots, so the built-in
    tables reproduce the published curves without storing every flow
    size. Sizes are measured in 1460-byte segments, the simulator's
    payload unit. *)

type t

val of_points : name:string -> (float * float) list -> t
(** [(size_segments, cum_prob)] knots. Sizes must be ≥ 1 segment and
    nondecreasing; probabilities nondecreasing in [0, 1] with the last
    equal to 1. A leading probability jump ([probs.(0) > 0]) is a point
    mass at the smallest size. Raises [Invalid_argument] otherwise. *)

val of_file : string -> t
(** Loads whitespace-separated ["size_segments cum_prob"] lines (['#']
    comments and blank lines skipped), named after the file's basename.
    Raises [Invalid_argument] on malformed lines or invalid knots, and
    [Sys_error] if the file cannot be read. *)

val web_search : t
(** The web-search workload of the DCTCP lineage: query traffic mixed
    with multi-MB background updates; mean ≈ 1.6 MB. *)

val data_mining : t
(** The data-mining workload of the VL2 lineage: extremely skewed — half
    the flows fit in one segment while the top 1% reach hundreds of MB. *)

val name : t -> string

val mean_segments : t -> float
(** Exact mean of the piecewise-linear distribution (trapezoid rule over
    the inverse CDF) — used to convert an offered-load fraction into a
    per-host arrival rate. *)

val sample : t -> Random.State.t -> int
(** Inverse-CDF sample rounded to the nearest whole segment, at least 1.
    Consumes exactly one draw from the given stream. *)

val scaled : t -> float -> t
(** [scaled t f] multiplies every knot size by [f] (clamped to ≥ 1
    segment) — for sweeping mean flow size without changing the shape.
    Raises [Invalid_argument] if [f ≤ 0]. *)
