(** Open-loop Poisson flow arrivals with per-host deterministic streams.

    Each host owns a private [Random.State] seeded from the generator
    seed and its own index; interarrival gaps are exponential with the
    given per-host rate, rounded to whole nanoseconds (minimum 1 ns, so
    one host's arrival times strictly increase). Because every random
    decision about a host's flows comes from that host's stream in
    arrival order, the generated schedule depends only on
    [(seed, hosts, rate)] — not on domain count, shard layout or how the
    caller batches the draining — which is what keeps jobs-1 vs jobs-N
    and domains-1 vs domains-N runs byte-identical. *)

type t

val create : seed:int -> hosts:int -> rate:float -> t
(** [rate] is arrivals per second per host, must be positive; [hosts]
    at least 1. The first arrival of each host is one exponential gap
    after time zero. *)

val until :
  t ->
  target:Xmp_engine.Time.t ->
  f:(host:int -> at:Xmp_engine.Time.t -> rng:Random.State.t -> unit) ->
  Xmp_engine.Time.t
(** Pops every pending arrival at or before [target] in [(time, host)]
    order, calling [f] for each. [rng] is the host's own stream — the
    callback should draw any per-flow randomness (size, destination,
    path) from it, and from nothing else, to preserve determinism.
    Returns the earliest remaining arrival (strictly after [target]), or
    [Time.infinity] once stopped — shaped to be returned directly from a
    {!Xmp_net.Shard.run} [on_epoch] hook. *)

val stop : t -> unit
(** Exhausts every stream: no further arrivals are generated (used to
    cut generation at a flow-count target). *)
