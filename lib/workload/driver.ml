module Sim = Xmp_engine.Sim
module Time = Xmp_engine.Time
module Network = Xmp_net.Network
module Queue_disc = Xmp_net.Queue_disc
module Fat_tree = Xmp_net.Fat_tree
module Wan = Xmp_net.Wan
module Mptcp_flow = Xmp_mptcp.Mptcp_flow

type topology =
  | Single_dc
  | Bridged of {
      left : Wan.dc_spec;
      right : Wan.dc_spec;
      trunks : Wan.trunk list;
    }

type assignment = Uniform of Scheme.t | Split of Scheme.t * Scheme.t

type pattern =
  | Permutation of { min_segments : int; max_segments : int }
  | Random_pattern of {
      mean_segments : float;
      cap_segments : float;
      shape : float;
      max_inbound : int;
    }
  | Incast of {
      jobs : int;
      fanout : int;
      request_segments : int;
      response_segments : int;
      bg_mean_segments : float;
      bg_cap_segments : float;
      bg_shape : float;
    }
  | Permutation_churn of {
      min_segments : int;
      max_segments : int;
      churn : Time.t;
    }
  | Incast_sweep of {
      jobs : int;
      fanouts : int list;
      request_segments : int;
      response_segments : int;
    }
  | All_to_all of { segments : int }

type config = {
  k : int;
  seed : int;
  topology : topology;
  cross_dc : float;
  horizon : Time.t;
  queue_pkts : int;
  marking_threshold : int;
  beta : int;
  rto_min : Time.t;
  sack : bool;
  assignment : assignment;
  pattern : pattern;
  rtt_subsample : int;
  keep_flows : bool;
  faults : Xmp_engine.Fault_spec.t;
  telemetry : Xmp_telemetry.Sink.t;
}

(* Paper sizes scaled by 1/32 and converted to 1460-byte segments. *)
let segs_of_mb mb = int_of_float (Float.ceil (mb *. 1e6 /. 1460.))

let permutation_scaled =
  Permutation
    { min_segments = segs_of_mb 2.; max_segments = segs_of_mb 16. }

let random_scaled =
  Random_pattern
    {
      mean_segments = float_of_int (segs_of_mb 6.);
      cap_segments = float_of_int (segs_of_mb 24.);
      shape = 1.5;
      max_inbound = 4;
    }

let incast_scaled =
  Incast
    {
      jobs = 3;
      fanout = 8;
      request_segments = 2;  (* 2 KB *)
      response_segments = 45;  (* 64 KB *)
      bg_mean_segments = float_of_int (segs_of_mb 6.);
      bg_cap_segments = float_of_int (segs_of_mb 24.);
      bg_shape = 1.5;
    }

let default_config =
  {
    k = 4;
    seed = 1;
    topology = Single_dc;
    cross_dc = 0.;
    horizon = Time.sec 2.;
    queue_pkts = 100;
    marking_threshold = 10;
    beta = 4;
    rto_min = Time.ms 200;
    sack = false;
    assignment = Uniform (Scheme.xmp 2);
    pattern = permutation_scaled;
    rtt_subsample = 16;
    keep_flows = true;
    faults = Xmp_engine.Fault_spec.empty;
    telemetry = Xmp_telemetry.Sink.null;
  }

type result = {
  metrics : Metrics.t;
  net : Network.t;
  config : config;
  events : int;
  injected_drops : int;
}

type active = {
  a_scheme : Scheme.t;
  a_src : int;
  a_dst : int;
  a_locality : Fat_tree.locality;
  a_size : int;
  a_handle : Mptcp_flow.t;
}

(* Topology handle: the pattern generators only need host counts,
   locality/path-count classification and (for cross-DC biasing) the DC
   layout, so both the single fat tree and the flat WAN bridge fit
   behind these closures. *)
type topo = {
  t_n_hosts : int;
  t_locality : src:int -> dst:int -> Fat_tree.locality;
  t_n_paths : src:int -> dst:int -> int;
  t_dc_ranges : (int * int) array;  (* (host base, count) per DC *)
  t_dc_of : int -> int;
}

type ctx = {
  cfg : config;
  sim : Sim.t;
  net : Network.t;
  topo : topo;
  rng : Random.State.t;
  metrics : Metrics.t;
  overrides : Scheme.transport_overrides;
  mutable next_flow : int;
  inbound : int array;  (* per-host inbound large-flow count *)
  running : (int, active) Hashtbl.t;  (* large flows still in flight *)
}

let fresh_flow ctx =
  let id = ctx.next_flow in
  ctx.next_flow <- id + 1;
  id

let scheme_for ctx ~src =
  match ctx.cfg.assignment with
  | Uniform s -> s
  | Split (a, b) -> if src mod 2 = 0 then a else b

(* Launch one large flow between host indices and record it on
   completion. *)
let launch_large ctx ~src ~dst ~size_segments ~on_complete =
  let scheme = scheme_for ctx ~src in
  let locality = ctx.topo.t_locality ~src ~dst in
  let available = ctx.topo.t_n_paths ~src ~dst in
  let paths =
    Scheme.pick_paths ~rng:ctx.rng ~available
      ~wanted:(Scheme.n_subflows scheme)
  in
  let flow = fresh_flow ctx in
  let handle =
    Scheme.launch ~net:ctx.net ~overrides:ctx.overrides ~flow ~src ~dst
      ~paths ~size_segments
      ~observer:
        {
          Scheme.silent with
          on_rtt_sample =
            (fun rtt -> Metrics.record_rtt ctx.metrics ~locality rtt);
          on_complete =
            (fun f ->
              Hashtbl.remove ctx.running flow;
              let finished = Sim.now ctx.sim in
              Metrics.record_flow ctx.metrics
                {
                  Metrics.flow;
                  scheme;
                  src;
                  dst;
                  locality;
                  size_segments;
                  started = Mptcp_flow.started_at f;
                  finished;
                  goodput_bps = Mptcp_flow.goodput_bps f;
                  truncated = false;
                };
              on_complete ());
        }
      scheme
  in
  if not (Mptcp_flow.is_complete handle) then
    Hashtbl.replace ctx.running flow
      {
        a_scheme = scheme;
        a_src = src;
        a_dst = dst;
        a_locality = locality;
        a_size = size_segments;
        a_handle = handle;
      }

(* Launch a small (plain-TCP, single-path) flow; not recorded in large-flow
   metrics. *)
let launch_small ctx ~src ~dst ~size_segments ~on_complete =
  let available = ctx.topo.t_n_paths ~src ~dst in
  let paths = Scheme.pick_paths ~rng:ctx.rng ~available ~wanted:1 in
  let flow = fresh_flow ctx in
  ignore
    (Scheme.launch ~net:ctx.net ~overrides:ctx.overrides ~flow ~src ~dst
       ~paths ~size_segments
       ~observer:{ Scheme.silent with on_complete = (fun _ -> on_complete ()) }
       Scheme.reno)

let uniform_size ctx ~min_segments ~max_segments =
  min_segments + Random.State.int ctx.rng (max_segments - min_segments + 1)

(* destination ≠ src, optionally in another rack, respecting the inbound
   cap; falls back to ignoring the cap if sampling keeps failing. *)
let pick_dst ctx ~src ~max_inbound ~other_rack =
  let topo = ctx.topo in
  let n = topo.t_n_hosts in
  let ok ~use_cap d =
    d <> src
    && ((not use_cap) || ctx.inbound.(d) < max_inbound)
    && ((not other_rack)
       || topo.t_locality ~src ~dst:d <> Fat_tree.Inner_rack)
  in
  (* single-DC candidates are uniform over all hosts, exactly as before;
     with a bridged topology and a positive [cross_dc], that fraction of
     candidates is drawn from the other DC and the rest from the
     source's own DC *)
  let candidate () =
    if Array.length topo.t_dc_ranges <= 1 || ctx.cfg.cross_dc <= 0. then
      Random.State.int ctx.rng n
    else begin
      let dc = topo.t_dc_of src in
      let pick =
        if Random.State.float ctx.rng 1.0 < ctx.cfg.cross_dc then 1 - dc
        else dc
      in
      let base, count = topo.t_dc_ranges.(pick) in
      base + Random.State.int ctx.rng count
    end
  in
  let rec try_pick use_cap attempts =
    if attempts = 0 then
      if use_cap then try_pick false 64
      else (src + 1 + Random.State.int ctx.rng (n - 1)) mod n
    else begin
      let d = candidate () in
      if ok ~use_cap d then d else try_pick use_cap (attempts - 1)
    end
  in
  try_pick true 64

(* ----- Permutation pattern ----- *)

let random_derangement ctx n =
  let p = Array.init n (fun i -> i) in
  for i = n - 1 downto 1 do
    let j = Random.State.int ctx.rng (i + 1) in
    let tmp = p.(i) in
    p.(i) <- p.(j);
    p.(j) <- tmp
  done;
  (* repair fixed points by rotating them with their successor *)
  for i = 0 to n - 1 do
    if p.(i) = i then begin
      let j = (i + 1) mod n in
      let tmp = p.(i) in
      p.(i) <- p.(j);
      p.(j) <- tmp
    end
  done;
  p

let run_permutation ctx ~min_segments ~max_segments =
  let n = ctx.topo.t_n_hosts in
  let rec start_wave () =
    let perm = random_derangement ctx n in
    let remaining = ref n in
    for src = 0 to n - 1 do
      let size_segments = uniform_size ctx ~min_segments ~max_segments in
      launch_large ctx ~src ~dst:perm.(src) ~size_segments
        ~on_complete:(fun () ->
          decr remaining;
          if !remaining = 0 then start_wave ())
    done
  in
  start_wave ()

(* Permutation with churn: a fresh derangement wave starts every [churn]
   period on the clock, regardless of whether earlier waves finished —
   so the matrix rotates under the flows and a slow wave overlaps the
   next one instead of gating it. *)
let run_permutation_churn ctx ~min_segments ~max_segments ~churn =
  if Time.compare churn Time.zero <= 0 then
    invalid_arg "Driver: churn period must be positive";
  let n = ctx.topo.t_n_hosts in
  let rec start_wave () =
    let perm = random_derangement ctx n in
    for src = 0 to n - 1 do
      let size_segments = uniform_size ctx ~min_segments ~max_segments in
      launch_large ctx ~src ~dst:perm.(src) ~size_segments
        ~on_complete:(fun () -> ())
    done;
    Sim.after ctx.sim churn start_wave
  in
  start_wave ()

(* ----- Random pattern ----- *)

let start_random_source ctx ~pareto ~max_inbound ~other_rack ~src =
  let rec next () =
    let dst = pick_dst ctx ~src ~max_inbound ~other_rack in
    ctx.inbound.(dst) <- ctx.inbound.(dst) + 1;
    let size_segments = Pareto.sample_int pareto ctx.rng in
    launch_large ctx ~src ~dst ~size_segments ~on_complete:(fun () ->
        ctx.inbound.(dst) <- ctx.inbound.(dst) - 1;
        next ())
  in
  next ()

let run_random ctx ~mean_segments ~cap_segments ~shape ~max_inbound
    ~other_rack =
  let pareto =
    Pareto.create ~shape ~mean:mean_segments ~cap:cap_segments
  in
  for src = 0 to ctx.topo.t_n_hosts - 1 do
    start_random_source ctx ~pareto ~max_inbound ~other_rack ~src
  done

(* ----- Incast pattern ----- *)

let pick_distinct ctx ~n ~from =
  let arr = Array.init from (fun i -> i) in
  for i = 0 to n - 1 do
    let j = i + Random.State.int ctx.rng (from - i) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done;
  Array.sub arr 0 n

let run_incast ctx ~jobs ~fanout ~request_segments ~response_segments
    ~bg_mean_segments ~bg_cap_segments ~bg_shape =
  let n = ctx.topo.t_n_hosts in
  if n < fanout + 1 then invalid_arg "Driver: incast fanout exceeds hosts";
  let rec start_job () =
    let hosts = pick_distinct ctx ~n:(fanout + 1) ~from:n in
    let client = hosts.(0) in
    let t0 = Sim.now ctx.sim in
    let responses = ref 0 in
    for s = 1 to fanout do
      let server = hosts.(s) in
      launch_small ctx ~src:client ~dst:server
        ~size_segments:request_segments ~on_complete:(fun () ->
          launch_small ctx ~src:server ~dst:client
            ~size_segments:response_segments ~on_complete:(fun () ->
              incr responses;
              if !responses = fanout then begin
                Metrics.record_job ctx.metrics
                  (Time.sub (Sim.now ctx.sim) t0);
                start_job ()
              end))
    done
  in
  for _ = 1 to jobs do
    start_job ()
  done;
  (* background large flows, endpoints never in the same rack; a
     non-positive mean disables the background entirely (pure incast) *)
  if bg_mean_segments > 0. then
    run_random ctx ~mean_segments:bg_mean_segments
      ~cap_segments:bg_cap_segments ~shape:bg_shape ~max_inbound:4
      ~other_rack:true

(* Incast sweep: [jobs] concurrent request/response chains, each cycling
   through the fanout list so every fanout accumulates job-time samples
   (filed per fanout via [record_job ~fanout]). No background flows —
   the sweep isolates the fanout effect. *)
let run_incast_sweep ctx ~jobs ~fanouts ~request_segments ~response_segments =
  let fan_arr = Array.of_list fanouts in
  if Array.length fan_arr = 0 then
    invalid_arg "Driver: incast sweep needs at least one fanout";
  let n = ctx.topo.t_n_hosts in
  Array.iter
    (fun fanout ->
      if fanout < 1 || n < fanout + 1 then
        invalid_arg "Driver: incast sweep fanout exceeds hosts")
    fan_arr;
  let rec start_job idx =
    let fanout = fan_arr.(idx mod Array.length fan_arr) in
    let hosts = pick_distinct ctx ~n:(fanout + 1) ~from:n in
    let client = hosts.(0) in
    let t0 = Sim.now ctx.sim in
    let responses = ref 0 in
    for s = 1 to fanout do
      let server = hosts.(s) in
      launch_small ctx ~src:client ~dst:server
        ~size_segments:request_segments ~on_complete:(fun () ->
          launch_small ctx ~src:server ~dst:client
            ~size_segments:response_segments ~on_complete:(fun () ->
              incr responses;
              if !responses = fanout then begin
                Metrics.record_job ~fanout ctx.metrics
                  (Time.sub (Sim.now ctx.sim) t0);
                start_job (idx + 1)
              end))
    done
  in
  (* chain [j] starts at offset [j] into the fanout list, so concurrent
     chains cover different fanouts from the first wave on *)
  for j = 0 to jobs - 1 do
    start_job j
  done

(* All-to-all shuffle: every host sends one flow to every other host; the
   next wave starts when the whole shuffle completes (a map-reduce style
   barrier). *)
let run_all_to_all ctx ~segments =
  let n = ctx.topo.t_n_hosts in
  let rec start_wave () =
    let remaining = ref (n * (n - 1)) in
    for src = 0 to n - 1 do
      for d = 1 to n - 1 do
        (* visit destinations in src-relative order so no host's flow
           set is built before its own outgoing flows exist *)
        let dst = (src + d) mod n in
        launch_large ctx ~src ~dst ~size_segments:segments
          ~on_complete:(fun () ->
            decr remaining;
            if !remaining = 0 then start_wave ())
      done
    done
  in
  start_wave ()

let run cfg =
  let sim =
    Sim.create
      ~config:
        {
          Sim.default_config with
          seed = cfg.seed;
          faults = cfg.faults;
          telemetry = cfg.telemetry;
        }
      ()
  in
  let net = Network.create sim in
  (* under a uniform assignment a scheme tuned for a specific marking
     threshold K (e.g. "XMP-2:k=20") gets the fabric configured to
     match; a split assignment keeps the config's fabric-wide value *)
  let marking =
    match cfg.assignment with
    | Uniform s ->
      Option.value (Scheme.marking_threshold s) ~default:cfg.marking_threshold
    | Split _ -> cfg.marking_threshold
  in
  let disc () =
    Queue_disc.create
      ~policy:(Queue_disc.Threshold_mark marking)
      ~capacity_pkts:cfg.queue_pkts
  in
  let topo =
    match cfg.topology with
    | Single_dc ->
      let ft = Fat_tree.create ~net ~k:cfg.k ~disc () in
      {
        t_n_hosts = Fat_tree.n_hosts ft;
        t_locality = (fun ~src ~dst -> Fat_tree.locality ft ~src ~dst);
        t_n_paths = (fun ~src ~dst -> Fat_tree.n_paths ft ~src ~dst);
        t_dc_ranges = [| (0, Fat_tree.n_hosts ft) |];
        t_dc_of = (fun _ -> 0);
      }
    | Bridged { left; right; trunks } ->
      let wan = Wan.create_flat ~net ~left ~right ~trunks ~disc () in
      let n0 = Wan.dc_n_hosts left and n1 = Wan.dc_n_hosts right in
      {
        t_n_hosts = Wan.n_hosts wan;
        t_locality = (fun ~src ~dst -> Wan.locality wan ~src ~dst);
        t_n_paths = (fun ~src ~dst -> Wan.n_paths wan ~src ~dst);
        t_dc_ranges = [| (0, n0); (n0, n1) |];
        t_dc_of = Wan.dc_of_host wan;
      }
  in
  let injector = Xmp_faults.Injector.install ~net () in
  let ctx =
    {
      cfg;
      sim;
      net;
      topo;
      rng = Sim.rng sim;
      metrics =
        Metrics.create ~keep_flows:cfg.keep_flows
          ~rtt_subsample:cfg.rtt_subsample ();
      overrides =
        {
          Scheme.default_overrides with
          rto_min = cfg.rto_min;
          beta = cfg.beta;
          sack = cfg.sack;
        };
      next_flow = 0;
      inbound = Array.make topo.t_n_hosts 0;
      running = Hashtbl.create 256;
    }
  in
  (match cfg.pattern with
  | Permutation { min_segments; max_segments } ->
    run_permutation ctx ~min_segments ~max_segments
  | Random_pattern { mean_segments; cap_segments; shape; max_inbound } ->
    run_random ctx ~mean_segments ~cap_segments ~shape ~max_inbound
      ~other_rack:false
  | Incast
      {
        jobs;
        fanout;
        request_segments;
        response_segments;
        bg_mean_segments;
        bg_cap_segments;
        bg_shape;
      } ->
    run_incast ctx ~jobs ~fanout ~request_segments ~response_segments
      ~bg_mean_segments ~bg_cap_segments ~bg_shape
  | Permutation_churn { min_segments; max_segments; churn } ->
    run_permutation_churn ctx ~min_segments ~max_segments ~churn
  | Incast_sweep { jobs; fanouts; request_segments; response_segments } ->
    run_incast_sweep ctx ~jobs ~fanouts ~request_segments ~response_segments
  | All_to_all { segments } -> run_all_to_all ctx ~segments);
  Sim.run ~until:cfg.horizon sim;
  (* Flows still running at the horizon are measured over their partial
     lifetime (start → horizon), so slow schemes do not escape the average
     by never finishing. Very young flows carry no signal and are
     skipped. *)
  let min_elapsed = Time.div cfg.horizon 10 in
  (* sorted-iteration idiom: record in flow-id order, not hash order, so
     metric aggregation (float sums included) never depends on the hash
     function or table history *)
  let still_running =
    Hashtbl.fold (fun flow a acc -> (flow, a) :: acc) ctx.running []
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  in
  List.iter
    (fun (flow, a) ->
      let elapsed = Time.sub cfg.horizon (Mptcp_flow.started_at a.a_handle) in
      if elapsed >= min_elapsed then
        Metrics.record_flow ctx.metrics
          {
            Metrics.flow;
            scheme = a.a_scheme;
            src = a.a_src;
            dst = a.a_dst;
            locality = a.a_locality;
            size_segments = a.a_size;
            started = Mptcp_flow.started_at a.a_handle;
            finished = cfg.horizon;
            goodput_bps = Mptcp_flow.goodput_bps_until a.a_handle cfg.horizon;
            truncated = true;
          })
    still_running;
  {
    metrics = ctx.metrics;
    net;
    config = cfg;
    events = Sim.events_executed sim;
    injected_drops = Xmp_faults.Injector.injected_drops injector;
  }

let utilization_by_layer (r : result) =
  let layers =
    match r.config.topology with
    | Single_dc -> Fat_tree.layers
    | Bridged _ -> Wan.layers
  in
  Metrics.utilization_by_layer ~layers ~net:r.net ~duration:r.config.horizon ()
