module Time = Xmp_engine.Time
module Tcp = Xmp_transport.Tcp
module Coupling = Xmp_mptcp.Coupling
module Mptcp_flow = Xmp_mptcp.Mptcp_flow

type kind = Dctcp | Reno | Lia | Olia | Xmp | Balia | Veno | Amp

type ect_mode = Counted | Classic

type tunables = {
  xmp_beta : int option;
  xmp_k : int option;
  veno_beta : float option;
  amp_ect : ect_mode;
  rto_min : Time.t option;
  rto_max : Time.t option;
}

let default_tunables =
  {
    xmp_beta = None;
    xmp_k = None;
    veno_beta = None;
    amp_ect = Counted;
    rto_min = None;
    rto_max = None;
  }

type t = { kind : kind; subflows : int; tunables : tunables }

(* ----- constructors ----- *)

let make kind subflows tunables =
  if subflows < 1 then
    invalid_arg
      (Printf.sprintf "Scheme: subflow count must be >= 1, got %d" subflows);
  (match (tunables.rto_min, tunables.rto_max) with
  | Some lo, Some hi when Time.compare lo hi > 0 ->
    invalid_arg "Scheme: rto_min must be <= rto_max"
  | _ -> ());
  { kind; subflows; tunables }

let dctcp = make Dctcp 1 default_tunables

let reno = make Reno 1 default_tunables

let lia n = make Lia n default_tunables

let olia n = make Olia n default_tunables

let balia n = make Balia n default_tunables

let xmp ?beta ?k n =
  Option.iter
    (fun b ->
      if b < 2 then
        invalid_arg (Printf.sprintf "Scheme.xmp: beta must be >= 2, got %d" b))
    beta;
  Option.iter
    (fun k ->
      if k < 1 then
        invalid_arg (Printf.sprintf "Scheme.xmp: k must be >= 1, got %d" k))
    k;
  make Xmp n { default_tunables with xmp_beta = beta; xmp_k = k }

(* a Veno beta must survive "%g" printing in plain decimal so
   [of_name (name t) = Some t]: the strict grammar has no exponents *)
let plain_decimal s =
  let digits sub = String.length sub > 0 && String.for_all (fun c -> c >= '0' && c <= '9') sub in
  match String.index_opt s '.' with
  | None -> digits s
  | Some i ->
    digits (String.sub s 0 i)
    && digits (String.sub s (i + 1) (String.length s - i - 1))

let veno ?beta n =
  Option.iter
    (fun b ->
      let img = Printf.sprintf "%g" b in
      if not (b > 0. && plain_decimal img && float_of_string img = b) then
        invalid_arg
          (Printf.sprintf
             "Scheme.veno: beta must be positive and print exactly in plain \
              decimal, got %h" b))
    beta;
  make Veno n { default_tunables with veno_beta = beta }

let amp ?(ect = Counted) n = make Amp n { default_tunables with amp_ect = ect }

let with_rto ?rto_min ?rto_max t =
  let u = t.tunables in
  let keep opt old = match opt with Some _ -> opt | None -> old in
  make t.kind t.subflows
    { u with rto_min = keep rto_min u.rto_min; rto_max = keep rto_max u.rto_max }

(* ----- names ----- *)

let base_name t =
  match t.kind with
  | Dctcp -> "DCTCP"
  | Reno -> "TCP"
  | Lia -> Printf.sprintf "LIA-%d" t.subflows
  | Olia -> Printf.sprintf "OLIA-%d" t.subflows
  | Xmp -> Printf.sprintf "XMP-%d" t.subflows
  | Balia -> Printf.sprintf "BALIA-%d" t.subflows
  | Veno -> Printf.sprintf "VENO-%d" t.subflows
  | Amp -> Printf.sprintf "AMP-%d" t.subflows

(* non-default tunables in a fixed key order, making the name canonical:
   kind-specific keys first, then the generic rtomin/rtomax (nanoseconds,
   any kind) *)
let opt_strings t =
  let u = t.tunables in
  let kind_opts =
    match t.kind with
    | Xmp ->
      List.filter_map Fun.id
        [
          Option.map (Printf.sprintf "beta=%d") u.xmp_beta;
          Option.map (Printf.sprintf "k=%d") u.xmp_k;
        ]
    | Veno ->
      List.filter_map Fun.id
        [ Option.map (Printf.sprintf "beta=%g") u.veno_beta ]
    | Amp -> (
      match u.amp_ect with Counted -> [] | Classic -> [ "ect=classic" ])
    | Dctcp | Reno | Lia | Olia | Balia -> []
  in
  kind_opts
  @ List.filter_map Fun.id
      [
        Option.map (Printf.sprintf "rtomin=%d") u.rto_min;
        Option.map (Printf.sprintf "rtomax=%d") u.rto_max;
      ]

let name t =
  match opt_strings t with
  | [] -> base_name t
  | opts -> base_name t ^ ":" ^ String.concat "," opts

let multipath_prefixes =
  [
    ("LIA", Lia); ("OLIA", Olia); ("XMP", Xmp); ("BALIA", Balia);
    ("VENO", Veno); ("AMP", Amp);
  ]

(* strict decimal suffix: [int_of_string_opt] alone would admit "0x2",
   "2_", "+2" and hand "XMP-2x"-style typos a scheme *)
let decimal_opt s =
  if String.length s > 0 && String.for_all (fun c -> c >= '0' && c <= '9') s
  then int_of_string_opt s
  else None

let decimal_float_opt s = if plain_decimal s then float_of_string_opt s else None

let split_on_first c s =
  match String.index_opt s c with
  | None -> (s, None)
  | Some i ->
    (String.sub s 0 i, Some (String.sub s (i + 1) (String.length s - i - 1)))

let base_of_name s =
  let multipath (prefix, kind) =
    let plen = String.length prefix in
    if
      String.length s > plen + 1
      && String.sub s 0 (plen + 1) = prefix ^ "-"
    then
      match
        decimal_opt (String.sub s (plen + 1) (String.length s - plen - 1))
      with
      | Some n when n >= 1 -> Some (kind, n)
      | Some _ | None -> None
    else None
  in
  match s with
  | "DCTCP" -> Some (Dctcp, 1)
  | "TCP" | "RENO" -> Some (Reno, 1)
  | _ -> List.find_map multipath multipath_prefixes

(* keys are per-kind; a key may appear at most once; the fold threads
   [tunables option] so any violation collapses to [None] *)
let apply_opt kind acc kv =
  Option.bind acc (fun u ->
      match (kind, split_on_first '=' kv) with
      | Xmp, ("BETA", Some v) when u.xmp_beta = None ->
        Option.bind (decimal_opt v) (fun b ->
            if b >= 2 then Some { u with xmp_beta = Some b } else None)
      | Xmp, ("K", Some v) when u.xmp_k = None ->
        Option.bind (decimal_opt v) (fun k ->
            if k >= 1 then Some { u with xmp_k = Some k } else None)
      | Veno, ("BETA", Some v) when u.veno_beta = None ->
        Option.bind (decimal_float_opt v) (fun b ->
            if b > 0. && float_of_string (Printf.sprintf "%g" b) = b then
              Some { u with veno_beta = Some b }
            else None)
      | Amp, ("ECT", Some "CLASSIC") when u.amp_ect = Counted ->
        Some { u with amp_ect = Classic }
      (* generic transport keys, valid on every kind; values in whole
         nanoseconds so round-trips through [name] are exact *)
      | _, ("RTOMIN", Some v) when u.rto_min = None ->
        Option.bind (decimal_opt v) (fun ns ->
            if ns >= 1 then Some { u with rto_min = Some ns } else None)
      | _, ("RTOMAX", Some v) when u.rto_max = None ->
        Option.bind (decimal_opt v) (fun ns ->
            if ns >= 1 then Some { u with rto_max = Some ns } else None)
      | _ -> None)

let of_name s =
  let s = String.uppercase_ascii (String.trim s) in
  let base, opts = split_on_first ':' s in
  match base_of_name base with
  | None -> None
  | Some (kind, subflows) -> (
    let tunables =
      match opts with
      | None -> Some default_tunables
      | Some "" -> None (* a trailing ":" names nothing *)
      | Some o ->
        List.fold_left (apply_opt kind) (Some default_tunables)
          (String.split_on_char ',' o)
    in
    match tunables with
    | Some u -> (
      (* [make] re-validates cross-field invariants (rtomin <= rtomax) *)
      try Some (make kind subflows u) with Invalid_argument _ -> None)
    | None -> None)

(* ----- properties ----- *)

let n_subflows t = t.subflows

let is_multipath t = t.subflows > 1

let uses_ecn t =
  match t.kind with
  | Dctcp | Xmp | Amp -> true
  | Reno | Lia | Olia | Balia | Veno -> false

let marking_threshold t =
  match t.kind with Xmp -> t.tunables.xmp_k | _ -> None

type transport_overrides = {
  rto_min : Time.t;
  rto_max : Time.t;
  beta : int;
  sack : bool;
}

let default_overrides =
  { rto_min = Time.ms 200; rto_max = Time.sec 60.; beta = 4; sack = false }

let tcp_config t overrides =
  let base =
    match t.kind with
    | Xmp -> Xmp_core.Xmp.tcp_config
    | Dctcp -> Xmp_core.Xmp.dctcp_tcp_config
    | Amp -> (
      match t.tunables.amp_ect with
      | Counted -> Xmp_core.Xmp.dctcp_tcp_config
      | Classic -> { Xmp_core.Xmp.dctcp_tcp_config with Tcp.echo = Tcp.Classic })
    | Reno | Lia | Olia | Balia | Veno -> Xmp_core.Xmp.plain_tcp_config
  in
  (* per-scheme tunables win over the driver-wide overrides *)
  let rto_min = Option.value t.tunables.rto_min ~default:overrides.rto_min in
  let rto_max = Option.value t.tunables.rto_max ~default:overrides.rto_max in
  { base with Tcp.rto_min; rto_max; sack = overrides.sack }

let coupling t overrides =
  match t.kind with
  | Dctcp ->
    Coupling.uncoupled ~name:"dctcp" (fun view ->
        Xmp_transport.Dctcp.make view)
  | Reno ->
    Coupling.uncoupled ~name:"reno" (fun view ->
        Xmp_transport.Reno.make view)
  | Lia -> Xmp_mptcp.Lia.coupling ()
  | Olia -> Xmp_mptcp.Olia.coupling ()
  | Balia -> Xmp_mptcp.Balia.coupling ()
  | Veno -> Xmp_mptcp.Veno.coupling ?beta_pkts:t.tunables.veno_beta ()
  | Amp -> Xmp_mptcp.Amp.coupling ()
  | Xmp ->
    let beta = Option.value t.tunables.xmp_beta ~default:overrides.beta in
    let params = { Xmp_core.Bos.default_params with beta } in
    Xmp_core.Trash.coupling ~params ()

type observer = Mptcp_flow.observer = {
  on_complete : Mptcp_flow.t -> unit;
  on_subflow_acked : int -> int -> unit;
  on_rtt_sample : Time.t -> unit;
}

let silent = Mptcp_flow.silent

let launch ~net ?rcv_net ~overrides ~flow ~src ~dst ~paths ?size_segments
    ?start_at ?observer t =
  let wanted = n_subflows t in
  let given = List.length paths in
  if given = 0 || given > wanted then
    invalid_arg
      (Printf.sprintf "Scheme.launch: %s takes 1..%d paths, got %d" (name t)
         wanted given);
  Mptcp_flow.create ~net ?rcv_net ~flow ~src ~dst ~paths
    ~coupling:(coupling t overrides) ~config:(tcp_config t overrides)
    ?size_segments ?start_at ?observer ()

let pick_paths ~rng ~available ~wanted =
  if available <= 0 then invalid_arg "Scheme.pick_paths: available";
  let wanted = Stdlib.min wanted available in
  (* partial Fisher-Yates over 0..available-1 *)
  let arr = Array.init available (fun i -> i) in
  let picked = ref [] in
  for i = 0 to wanted - 1 do
    let j = i + Random.State.int rng (available - i) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp;
    picked := arr.(i) :: !picked
  done;
  List.rev !picked
