module Time = Xmp_engine.Time
module Tcp = Xmp_transport.Tcp
module Coupling = Xmp_mptcp.Coupling
module Mptcp_flow = Xmp_mptcp.Mptcp_flow

type t =
  | Dctcp
  | Reno
  | Lia of int
  | Olia of int
  | Xmp of int
  | Balia of int
  | Veno of int
  | Amp of int

let name = function
  | Dctcp -> "DCTCP"
  | Reno -> "TCP"
  | Lia n -> Printf.sprintf "LIA-%d" n
  | Olia n -> Printf.sprintf "OLIA-%d" n
  | Xmp n -> Printf.sprintf "XMP-%d" n
  | Balia n -> Printf.sprintf "BALIA-%d" n
  | Veno n -> Printf.sprintf "VENO-%d" n
  | Amp n -> Printf.sprintf "AMP-%d" n

let multipath_prefixes =
  [
    ("LIA", fun n -> Lia n);
    ("OLIA", fun n -> Olia n);
    ("XMP", fun n -> Xmp n);
    ("BALIA", fun n -> Balia n);
    ("VENO", fun n -> Veno n);
    ("AMP", fun n -> Amp n);
  ]

(* strict decimal suffix: [int_of_string_opt] alone would admit "0x2",
   "2_", "+2" and hand "XMP-2x"-style typos a scheme *)
let decimal_opt s =
  if String.length s > 0 && String.for_all (fun c -> c >= '0' && c <= '9') s
  then int_of_string_opt s
  else None

let of_name s =
  let s = String.uppercase_ascii (String.trim s) in
  let multipath (prefix, mk) =
    let plen = String.length prefix in
    if
      String.length s > plen + 1
      && String.sub s 0 (plen + 1) = prefix ^ "-"
    then
      match decimal_opt (String.sub s (plen + 1) (String.length s - plen - 1)) with
      | Some n when n >= 1 -> Some (mk n)
      | Some _ | None -> None
    else None
  in
  match s with
  | "DCTCP" -> Some Dctcp
  | "TCP" | "RENO" -> Some Reno
  | _ -> List.find_map multipath multipath_prefixes

let n_subflows = function
  | Dctcp | Reno -> 1
  | Lia n | Olia n | Xmp n | Balia n | Veno n | Amp n -> n

let is_multipath t = n_subflows t > 1

let uses_ecn = function
  | Dctcp | Xmp _ | Amp _ -> true
  | Reno | Lia _ | Olia _ | Balia _ | Veno _ -> false

type transport_overrides = { rto_min : Time.t; beta : int; sack : bool }

let default_overrides = { rto_min = Time.ms 200; beta = 4; sack = false }

let tcp_config t overrides =
  let base =
    match t with
    | Xmp _ -> Xmp_core.Xmp.tcp_config
    | Dctcp | Amp _ -> Xmp_core.Xmp.dctcp_tcp_config
    | Reno | Lia _ | Olia _ | Balia _ | Veno _ -> Xmp_core.Xmp.plain_tcp_config
  in
  { base with Tcp.rto_min = overrides.rto_min; sack = overrides.sack }

let coupling t overrides =
  match t with
  | Dctcp ->
    Coupling.uncoupled ~name:"dctcp" (fun view ->
        Xmp_transport.Dctcp.make view)
  | Reno ->
    Coupling.uncoupled ~name:"reno" (fun view ->
        Xmp_transport.Reno.make view)
  | Lia _ -> Xmp_mptcp.Lia.coupling ()
  | Olia _ -> Xmp_mptcp.Olia.coupling ()
  | Balia _ -> Xmp_mptcp.Balia.coupling ()
  | Veno _ -> Xmp_mptcp.Veno.coupling ()
  | Amp _ -> Xmp_mptcp.Amp.coupling ()
  | Xmp _ ->
    let params = { Xmp_core.Bos.default_params with beta = overrides.beta } in
    Xmp_core.Trash.coupling ~params ()

type observer = Mptcp_flow.observer = {
  on_complete : Mptcp_flow.t -> unit;
  on_subflow_acked : int -> int -> unit;
  on_rtt_sample : Time.t -> unit;
}

let silent = Mptcp_flow.silent

let launch ~net ~overrides ~flow ~src ~dst ~paths ?size_segments ?observer t =
  let wanted = n_subflows t in
  let given = List.length paths in
  if given = 0 || given > wanted then
    invalid_arg
      (Printf.sprintf "Scheme.launch: %s takes 1..%d paths, got %d" (name t)
         wanted given);
  Mptcp_flow.create ~net ~flow ~src ~dst ~paths ~coupling:(coupling t overrides)
    ~config:(tcp_config t overrides) ?size_segments ?observer ()

let pick_paths ~rng ~available ~wanted =
  if available <= 0 then invalid_arg "Scheme.pick_paths: available";
  let wanted = Stdlib.min wanted available in
  (* partial Fisher-Yates over 0..available-1 *)
  let arr = Array.init available (fun i -> i) in
  let picked = ref [] in
  for i = 0 to wanted - 1 do
    let j = i + Random.State.int rng (available - i) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp;
    picked := arr.(i) :: !picked
  done;
  List.rev !picked
