module Time = Xmp_engine.Time
module Tcp = Xmp_transport.Tcp
module Coupling = Xmp_mptcp.Coupling
module Mptcp_flow = Xmp_mptcp.Mptcp_flow

type t = Dctcp | Reno | Lia of int | Olia of int | Xmp of int

let name = function
  | Dctcp -> "DCTCP"
  | Reno -> "TCP"
  | Lia n -> Printf.sprintf "LIA-%d" n
  | Olia n -> Printf.sprintf "OLIA-%d" n
  | Xmp n -> Printf.sprintf "XMP-%d" n

let of_name s =
  let s = String.uppercase_ascii (String.trim s) in
  let multipath prefix mk =
    let plen = String.length prefix in
    if
      String.length s > plen + 1
      && String.sub s 0 (plen + 1) = prefix ^ "-"
    then
      match int_of_string_opt (String.sub s (plen + 1) (String.length s - plen - 1)) with
      | Some n when n >= 1 -> Some (mk n)
      | Some _ | None -> None
    else None
  in
  match s with
  | "DCTCP" -> Some Dctcp
  | "TCP" | "RENO" -> Some Reno
  | _ -> (
    match multipath "LIA" (fun n -> Lia n) with
    | Some _ as r -> r
    | None -> (
      match multipath "OLIA" (fun n -> Olia n) with
      | Some _ as r -> r
      | None -> multipath "XMP" (fun n -> Xmp n)))

let n_subflows = function
  | Dctcp | Reno -> 1
  | Lia n | Olia n | Xmp n -> n

let is_multipath t = n_subflows t > 1

let uses_ecn = function
  | Dctcp | Xmp _ -> true
  | Reno | Lia _ | Olia _ -> false

type transport_overrides = { rto_min : Time.t; beta : int; sack : bool }

let default_overrides = { rto_min = Time.ms 200; beta = 4; sack = false }

let tcp_config t overrides =
  let base =
    match t with
    | Xmp _ -> Xmp_core.Xmp.tcp_config
    | Dctcp -> Xmp_core.Xmp.dctcp_tcp_config
    | Reno | Lia _ | Olia _ -> Xmp_core.Xmp.plain_tcp_config
  in
  { base with Tcp.rto_min = overrides.rto_min; sack = overrides.sack }

let coupling t overrides =
  match t with
  | Dctcp ->
    Coupling.uncoupled ~name:"dctcp" (fun view ->
        Xmp_transport.Dctcp.make view)
  | Reno ->
    Coupling.uncoupled ~name:"reno" (fun view ->
        Xmp_transport.Reno.make view)
  | Lia _ -> Xmp_mptcp.Lia.coupling ()
  | Olia _ -> Xmp_mptcp.Olia.coupling ()
  | Xmp _ ->
    let params = { Xmp_core.Bos.default_params with beta = overrides.beta } in
    Xmp_core.Trash.coupling ~params ()

type observer = Mptcp_flow.observer = {
  on_complete : Mptcp_flow.t -> unit;
  on_subflow_acked : int -> int -> unit;
  on_rtt_sample : Time.t -> unit;
}

let silent = Mptcp_flow.silent

let launch ~net ~overrides ~flow ~src ~dst ~paths ?size_segments ?observer t =
  let wanted = n_subflows t in
  let given = List.length paths in
  if given = 0 || given > wanted then
    invalid_arg
      (Printf.sprintf "Scheme.launch: %s takes 1..%d paths, got %d" (name t)
         wanted given);
  Mptcp_flow.create ~net ~flow ~src ~dst ~paths ~coupling:(coupling t overrides)
    ~config:(tcp_config t overrides) ?size_segments ?observer ()

let pick_paths ~rng ~available ~wanted =
  if available <= 0 then invalid_arg "Scheme.pick_paths: available";
  let wanted = Stdlib.min wanted available in
  (* partial Fisher-Yates over 0..available-1 *)
  let arr = Array.init available (fun i -> i) in
  let picked = ref [] in
  for i = 0 to wanted - 1 do
    let j = i + Random.State.int rng (available - i) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp;
    picked := arr.(i) :: !picked
  done;
  List.rev !picked
