(** Measurement collection for fat-tree evaluation runs: everything needed
    to regenerate Tables 1–3 and Figures 8–11, plus streaming FCT-slowdown
    accumulators for the open-loop workload scenarios.

    All goodput/RTT/job aggregates are maintained incrementally on every
    {!record_flow} / {!record_rtt} / {!record_job}, so memory stays bounded
    at millions of flows. Retaining the individual {!flow_record}s is
    opt-in via [keep_flows]. *)

module Distribution = Xmp_stats.Distribution

type flow_record = {
  flow : int;
  scheme : Scheme.t;
  src : int;  (** host index *)
  dst : int;
  locality : Xmp_net.Fat_tree.locality;
  size_segments : int;
  started : Xmp_engine.Time.t;
  finished : Xmp_engine.Time.t;
  goodput_bps : float;
  truncated : bool;
      (** flow was still running at the horizon; its goodput is measured
          over start → horizon (the paper's "whole running time" for flows
          whose run the simulation cut off). Short-lived truncated flows
          (< 1/10 of the horizon) are not recorded at all. *)
}

type t

val create : ?keep_flows:bool -> rtt_subsample:int -> unit -> t
(** RTT samples are decimated by [rtt_subsample] (≥ 1) to bound memory.
    [keep_flows] (default [false]) retains every {!flow_record} for
    {!completed_flows}; the streaming aggregates below are maintained
    either way. *)

val record_flow : t -> flow_record -> unit

val record_rtt :
  t -> locality:Xmp_net.Fat_tree.locality -> Xmp_engine.Time.t -> unit

val record_job : ?fanout:int -> t -> Xmp_engine.Time.t -> unit
(** A completed incast job with its completion time; [fanout] additionally
    files it under a per-fanout distribution (incast-sweep pattern). *)

val record_fct :
  t ->
  size_segments:int ->
  fct:Xmp_engine.Time.t ->
  ideal:Xmp_engine.Time.t ->
  unit
(** Record one flow-completion-time sample as a slowdown [fct/ideal],
    where [ideal] is the zero-load transfer time at line rate (must be
    positive). Filed under the matching flow-size bucket and "all". *)

val completed_flows : t -> flow_record list
(** All recorded flows, including horizon-truncated ones.
    @raise Invalid_argument
      when the collector was created without [~keep_flows:true]. *)

val keeps_flows : t -> bool

val n_completed_flows : t -> int

val n_truncated_flows : t -> int
(** Flows recorded as horizon-truncated (streaming count; available even
    without [keep_flows]). *)

val mean_goodput_bps : t -> float
(** Over all recorded large flows (Table 1 cells). *)

val mean_goodput_bps_of_scheme : t -> Scheme.t -> float
(** Restricted to flows of one scheme (Table 2 cells). *)

val goodputs : t -> Distribution.t
(** All completed-flow goodputs, bps (Figure 8a/b CDFs). *)

val goodputs_by_locality :
  t -> (Xmp_net.Fat_tree.locality * Distribution.t) list
(** Figure 8c/d bars. Localities with no flows are omitted. *)

val rtts_by_locality :
  t -> (Xmp_net.Fat_tree.locality * Distribution.t) list
(** Milliseconds (Figure 10 bars). *)

val job_times_ms : t -> Distribution.t
(** Figure 9 CDF / Table 3. *)

val jobs_over_ms : t -> float -> float
(** Fraction of jobs slower than the threshold (Table 3's ">300ms"). *)

val job_times_by_fanout : t -> (int * Distribution.t) list
(** Per-fanout job completion times (ms), ascending fanout; only fanouts
    passed to {!record_job} appear. *)

val fct_slowdowns : t -> (string * Distribution.t) list
(** Non-empty FCT-slowdown distributions per size bucket, smallest bucket
    first, with an aggregate ["all"] entry last. Bucket labels are byte
    ranges ("0-10KB" … ">10MB"); a flow's bucket is its size in 1460-byte
    segments times 1460. *)

val fct_summary_csv : t -> string
(** CSV [bucket,samples,mean,p50,p90,p99,max] over {!fct_slowdowns}. *)

val fct_cdf_csv : ?points:int -> t -> string
(** CSV [bucket,slowdown,cum_prob] with [points] (default 100) CDF points
    per bucket. *)

val merge : into:t -> t -> unit
(** Fold a second collector's aggregates into [into] (per-pod collectors
    after a sharded run). Call in pod-index order for deterministic
    float-summation and distribution order. Per-flow records are carried
    over only when both collectors keep them. *)

val utilization_by_layer :
  ?layers:string list ->
  net:Xmp_net.Network.t ->
  duration:Xmp_engine.Time.t ->
  unit ->
  (string * Distribution.t) list
(** Per-layer link utilization distributions at the end of a run
    (Figure 11 bars); [layers] defaults to {!Xmp_net.Fat_tree.layers}
    (pass {!Xmp_net.Wan.layers} for a bridged run). Tags with no links
    are dropped. *)
