(* Empirical flow-size distributions as piecewise-linear inverse CDFs.
   Sizes are in 1460-byte segments (the simulator's payload unit). *)

type t = {
  name : string;
  (* strictly increasing cumulative probabilities paired with
     nondecreasing sizes; last prob is 1 *)
  sizes : float array;
  probs : float array;
}

let name t = t.name

let of_points ~name points =
  if points = [] then invalid_arg "Flow_size.of_points: empty";
  let sizes = Array.of_list (List.map fst points) in
  let probs = Array.of_list (List.map snd points) in
  let n = Array.length sizes in
  if probs.(n - 1) <> 1. then
    invalid_arg "Flow_size.of_points: last probability must be 1";
  for i = 0 to n - 1 do
    if sizes.(i) < 1. then
      invalid_arg "Flow_size.of_points: sizes must be at least one segment";
    if probs.(i) < 0. || probs.(i) > 1. then
      invalid_arg "Flow_size.of_points: probabilities must lie in [0,1]";
    if i > 0 && (sizes.(i) < sizes.(i - 1) || probs.(i) < probs.(i - 1)) then
      invalid_arg "Flow_size.of_points: points must be nondecreasing"
  done;
  { name; sizes; probs }

(* Web-search (DCTCP-lineage) and data-mining (VL2-lineage) flow-size
   CDFs as used across the pFabric/PIAS evaluation line, quantized to
   1460-byte segments. Web search mixes short queries with multi-MB
   background updates; data mining is far more skewed — half the flows
   are a single segment while the top 1% reach hundreds of MB. *)
let web_search =
  of_points ~name:"websearch"
    [
      (1., 0.);
      (6., 0.15);
      (13., 0.2);
      (19., 0.3);
      (33., 0.4);
      (53., 0.53);
      (133., 0.6);
      (667., 0.7);
      (1333., 0.8);
      (3333., 0.9);
      (6667., 0.97);
      (20000., 1.);
    ]

let data_mining =
  of_points ~name:"datamining"
    [
      (1., 0.);
      (1., 0.5);
      (2., 0.6);
      (3., 0.7);
      (7., 0.8);
      (267., 0.9);
      (2107., 0.95);
      (66667., 0.99);
      (666667., 1.);
    ]

(* E[S] = ∫₀¹ S(p) dp over the piecewise-linear inverse CDF: trapezoids
   between knots, plus the point mass of any leading probability jump
   (probs.(0) > 0 means a fraction probs.(0) of flows sit exactly at the
   smallest size). *)
let mean_segments t =
  let n = Array.length t.sizes in
  let acc = ref (t.probs.(0) *. t.sizes.(0)) in
  for i = 0 to n - 2 do
    acc :=
      !acc
      +. (t.probs.(i + 1) -. t.probs.(i))
         *. (t.sizes.(i) +. t.sizes.(i + 1))
         /. 2.
  done;
  !acc

let sample_float t rng =
  let u = Random.State.float rng 1. in
  let n = Array.length t.probs in
  if u <= t.probs.(0) then t.sizes.(0)
  else begin
    (* binary search for the knot interval with probs.(lo) < u <= probs.(hi) *)
    let lo = ref 0 and hi = ref (n - 1) in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if t.probs.(mid) < u then lo := mid else hi := mid
    done;
    let p0 = t.probs.(!lo) and p1 = t.probs.(!hi) in
    let s0 = t.sizes.(!lo) and s1 = t.sizes.(!hi) in
    if p1 <= p0 then s1
    else s0 +. ((u -. p0) /. (p1 -. p0) *. (s1 -. s0))
  end

let sample t rng =
  Stdlib.max 1 (int_of_float (Float.round (sample_float t rng)))

let scaled t factor =
  if factor <= 0. then invalid_arg "Flow_size.scaled: factor";
  if factor = 1. then t
  else
    {
      t with
      name = Printf.sprintf "%s/x%.4g" t.name factor;
      sizes = Array.map (fun s -> Float.max 1. (s *. factor)) t.sizes;
    }

let of_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let points = ref [] in
      (try
         while true do
           let line = String.trim (input_line ic) in
           if line <> "" && line.[0] <> '#' then
             match String.split_on_char ' ' line |> List.filter (( <> ) "") with
             | [ s; p ] -> (
               match (float_of_string_opt s, float_of_string_opt p) with
               | Some s, Some p -> points := (s, p) :: !points
               | _ ->
                 invalid_arg
                   (Printf.sprintf "Flow_size.of_file: %s: bad line %S" path
                      line))
             | _ ->
               invalid_arg
                 (Printf.sprintf
                    "Flow_size.of_file: %s: want \"size_segments prob\", got %S"
                    path line)
         done
       with End_of_file -> ());
      of_points ~name:(Filename.remove_extension (Filename.basename path))
        (List.rev !points))
