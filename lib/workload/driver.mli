(** Fat-tree evaluation driver (§5.2): builds the topology, generates one
    of the paper's three traffic patterns, runs to the horizon, and
    returns collected metrics.

    Patterns (§5.2.1):
    - {b Permutation}: every host sends one flow to a random distinct host
      such that each host receives exactly one flow; when a whole wave
      completes, a new permutation starts. Uniform flow sizes.
    - {b Random}: every host keeps one outgoing flow alive to a random
      host (at most 4 flows per destination), with bounded-Pareto sizes.
    - {b Incast}: [jobs] concurrent jobs, each a 1-client/8-server
      request(2 KB)/response(64 KB) exchange over plain TCP, repeated
      forever; plus one Random-pattern large background flow per host
      whose endpoints never share a rack.

    Large flows use the configured scheme(s); incast request/response
    small flows always use plain TCP, as in the paper. *)

type topology =
  | Single_dc  (** one [k]-ary fat tree (the historical driver) *)
  | Bridged of {
      left : Xmp_net.Wan.dc_spec;
      right : Xmp_net.Wan.dc_spec;
      trunks : Xmp_net.Wan.trunk list;
    }
      (** two DCs joined by WAN trunks ({!Xmp_net.Wan.create_flat});
          [config.k] is ignored — the DC specs size the fabric *)

type assignment =
  | Uniform of Scheme.t
  | Split of Scheme.t * Scheme.t
      (** coexistence: even-indexed hosts originate the first scheme,
          odd-indexed the second (Table 2). *)

type pattern =
  | Permutation of { min_segments : int; max_segments : int }
  | Random_pattern of {
      mean_segments : float;
      cap_segments : float;
      shape : float;
      max_inbound : int;
    }
  | Incast of {
      jobs : int;
      fanout : int;  (** servers per job; paper: 8 *)
      request_segments : int;
      response_segments : int;
      bg_mean_segments : float;
          (** mean background flow size; ≤ 0 disables background flows
              entirely (a pure incast microbenchmark) *)
      bg_cap_segments : float;
      bg_shape : float;
    }
  | Permutation_churn of {
      min_segments : int;
      max_segments : int;
      churn : Xmp_engine.Time.t;
          (** a fresh derangement wave starts every [churn] period
              regardless of completions, so waves overlap and the traffic
              matrix rotates under running flows; must be positive *)
    }
  | Incast_sweep of {
      jobs : int;  (** concurrent request/response chains *)
      fanouts : int list;
          (** each chain cycles through this fanout list; job times are
              additionally filed per fanout
              ({!Metrics.job_times_by_fanout}) *)
      request_segments : int;
      response_segments : int;
    }
  | All_to_all of { segments : int }
      (** every host sends [segments] to every other host; the next
          shuffle wave starts when the whole wave completes *)

type config = {
  k : int;  (** fat-tree arity (single-DC topology only) *)
  seed : int;
  topology : topology;
  cross_dc : float;
      (** with a {!Bridged} topology, the fraction of randomly chosen
          destinations drawn from the other DC (Random-pattern and
          incast-background candidate draws); 0 keeps all random picks
          DC-local. Ignored for {!Single_dc}. Derangement-based patterns
          (Permutation, All_to_all) always mix globally. *)
  horizon : Xmp_engine.Time.t;
  queue_pkts : int;
  marking_threshold : int;  (** switch K *)
  beta : int;  (** XMP reduction divisor *)
  rto_min : Xmp_engine.Time.t;
  sack : bool;  (** selective acknowledgements on every flow *)
  assignment : assignment;
  pattern : pattern;
  rtt_subsample : int;
  keep_flows : bool;
      (** retain every per-flow {!Metrics.flow_record} (the historical
          behaviour; required by the table/figure printers). Disable for
          long open-loop runs where only the streaming aggregates are
          needed. *)
  faults : Xmp_engine.Fault_spec.t;
      (** fault schedule armed against the fat-tree before traffic starts;
          {!Xmp_engine.Fault_spec.empty} (the default) injects nothing *)
  telemetry : Xmp_telemetry.Sink.t;
      (** sink handed to the simulator, so fault transitions and injected
          drops are observable; {!Xmp_telemetry.Sink.null} by default *)
}

val default_config : config
(** k = 4 single-DC, seed 1, 2 s horizon, 100-packet queues, K = 10,
    β = 4, RTOmin 200 ms, XMP-2 Permutation with the ×1/32-scaled paper
    sizes, per-flow records kept, no faults, null telemetry sink, no
    cross-DC bias. *)

val permutation_scaled : pattern
(** Paper's 64–512 MB uniform sizes scaled by 1/32 (2–16 MB). *)

val random_scaled : pattern
(** Paper's Pareto(1.5, mean 192 MB, cap 768 MB) scaled by 1/32. *)

val incast_scaled : pattern
(** 2 KB requests / 64 KB responses exactly as the paper; 3 concurrent
    jobs (scaled from 8 for the k = 4 topology) over scaled Random
    background flows. *)

type result = {
  metrics : Metrics.t;
  net : Xmp_net.Network.t;
  config : config;
  events : int;
  injected_drops : int;
      (** packets killed by the fault injector's loss filters; 0 when the
          schedule is empty *)
}

val run : config -> result

val utilization_by_layer : result -> (string * Xmp_stats.Distribution.t) list
(** Figure 11 data for this run; bridged runs include the ["wan"] and
    ["border"] layers. *)
