module Time = Xmp_engine.Time

(* Open-loop Poisson arrivals, one independent stream per host.

   Each host owns a private [Random.State] seeded from (seed, host), and
   every random decision about one of its flows — interarrival gap, then
   whatever the caller draws from [rng] inside the callback (size,
   destination, ...) — comes from that stream in arrival order. The
   schedule is therefore a pure function of (seed, rate, hosts),
   independent of how many shards, domains or jobs execute the run. *)

type stream = {
  rng : Random.State.t;
  mutable next : Time.t;  (* Time.infinity once stopped *)
}

type t = { streams : stream array; rate : float }

(* Exponential gap in whole nanoseconds, at least 1 so each host's
   arrival times strictly increase (ties across hosts are fine — the
   caller breaks them by host index). 1 - u maps [0,1) to (0,1]. *)
let gap_ns rng rate =
  let u = 1. -. Random.State.float rng 1. in
  Stdlib.max 1 (int_of_float (Float.round (-.Float.log u /. rate *. 1e9)))

let create ~seed ~hosts ~rate =
  if hosts < 1 then invalid_arg "Arrivals.create: hosts";
  if rate <= 0. then invalid_arg "Arrivals.create: rate must be positive";
  let streams =
    Array.init hosts (fun host ->
        let rng = Random.State.make [| seed; host; 0x4a5 |] in
        { rng; next = Time.ns (gap_ns rng rate) })
  in
  { streams; rate }

let next_arrival t =
  Array.fold_left (fun acc s -> Time.min acc s.next) Time.infinity t.streams

(* Pop everything due at or before [target], in (time, host) order: a
   linear min-scan per pop. Host counts here are small (a k=8 fabric has
   128) and pops dominate scans at any interesting load, so this beats
   maintaining a heap for the sizes we care about. *)
let until t ~target ~f =
  let n = Array.length t.streams in
  let continue = ref true in
  while !continue do
    let best = ref (-1) and best_t = ref Time.infinity in
    for host = 0 to n - 1 do
      if Time.compare t.streams.(host).next !best_t < 0 then begin
        best := host;
        best_t := t.streams.(host).next
      end
    done;
    if !best < 0 || Time.compare !best_t target > 0 then continue := false
    else begin
      let s = t.streams.(!best) in
      let at = s.next in
      s.next <- Time.add at (Time.ns (gap_ns s.rng t.rate));
      f ~host:!best ~at ~rng:s.rng
    end
  done;
  next_arrival t

let stop t =
  Array.iter (fun s -> s.next <- Time.infinity) t.streams
