module Sim = Xmp_engine.Sim
module Time = Xmp_engine.Time
module Invariant = Xmp_check.Invariant

module Tel = Xmp_telemetry

(* The serialize-complete and deliver events are the two hottest closures
   in the simulator (two per packet per hop). Both are allocated once per
   link: the serializing packet sits in the [tx] register (only one
   packet serializes at a time), and in-flight packets sit in the [wire]
   FIFO ring (propagation delay is constant per link, so deliveries
   complete in push order and each deliver event pops the head). *)
type t = {
  sim : Sim.t;
  id : int;
  name : string;
  rate : Units.rate;
  tx_ns_data : Time.t;  (* Units.tx_time rate for the two wire sizes, *)
  tx_ns_ack : Time.t;  (* computed once — kinds fix the sizes *)
  delay : Time.t;
  disc : Queue_disc.t;
  mutable receiver : Packet.t -> unit;
  mutable drop_filter : (Packet.t -> bool) option;
  mutable busy : bool;
  mutable up : bool;
  mutable bytes_sent : int;
  mutable packets_sent : int;
  mutable tx : Packet.t;  (* the packet currently serializing *)
  mutable wire : Packet.t array;  (* circular FIFO of in-flight packets *)
  mutable wire_head : int;
  mutable wire_len : int;
  mutable on_serialized : unit -> unit;  (* preallocated, see [create] *)
  mutable on_deliver : unit -> unit;
  (* resolved once at creation iff the sim's sink is active *)
  c_tx_packets : Tel.Metric.Counter.t option;
  c_tx_bytes : Tel.Metric.Counter.t option;
}

let no_receiver _ = failwith "Link: receiver not attached"

let wire_push t p =
  if t.wire_len = Array.length t.wire then begin
    let cap = 2 * t.wire_len in
    let wire = Array.make cap Packet.dummy in
    for i = 0 to t.wire_len - 1 do
      wire.(i) <- t.wire.((t.wire_head + i) mod t.wire_len)
    done;
    t.wire <- wire;
    t.wire_head <- 0
  end;
  let tail = t.wire_head + t.wire_len in
  let cap = Array.length t.wire in
  let tail = if tail >= cap then tail - cap else tail in
  t.wire.(tail) <- p;
  t.wire_len <- t.wire_len + 1

let wire_pop t =
  let p = t.wire.(t.wire_head) in
  let cap = Array.length t.wire in
  t.wire_head <- (if t.wire_head + 1 >= cap then 0 else t.wire_head + 1);
  t.wire_len <- t.wire_len - 1;
  p

let rec transmit t (p : Packet.t) =
  t.busy <- true;
  if Invariant.enabled () then
    Invariant.require ~name:"link.queue-within-capacity"
      (Queue_disc.length t.disc <= Queue_disc.capacity t.disc) (fun () ->
        Printf.sprintf "%s holds %d packets, capacity %d" t.name
          (Queue_disc.length t.disc)
          (Queue_disc.capacity t.disc));
  t.tx <- p;
  Sim.after t.sim
    (if Packet.is_ack p then t.tx_ns_ack else t.tx_ns_data)
    t.on_serialized

and serialized t =
  let p = t.tx in
  t.bytes_sent <- t.bytes_sent + Packet.size p;
  t.packets_sent <- t.packets_sent + 1;
  (match t.c_tx_packets with
  | Some c ->
    Tel.Metric.Counter.inc c;
    (match t.c_tx_bytes with
    | Some b -> Tel.Metric.Counter.inc b ~by:(Packet.size p)
    | None -> ())
  | None -> ());
  (* Propagation: the packet is on the wire while the next one
     serializes. Deliver only if the link is still up. *)
  if t.up then begin
    wire_push t p;
    Sim.after t.sim t.delay t.on_deliver
  end
  else Packet.release p;
  match Queue_disc.dequeue t.disc with
  | Some next -> transmit t next
  | None -> t.busy <- false

and deliver t =
  let p = wire_pop t in
  if t.up then t.receiver p else Packet.release p

let create ~sim ~id ~name ~rate ~delay ~disc =
  if rate <= 0 then invalid_arg "Link.create: rate";
  let sink = Sim.telemetry sim in
  Queue_disc.set_telemetry disc ~sink ~now:(fun () -> Sim.now sim) ~queue:name;
  let c_tx_packets, c_tx_bytes =
    if Tel.Sink.active sink then begin
      let reg = Tel.Sink.registry sink in
      let labels = Tel.Label.v [ ("link", name) ] in
      ( Some
          (Tel.Registry.counter reg ~labels ~subsystem:"net" ~name:"tx_packets"
             ()),
        Some
          (Tel.Registry.counter reg ~labels ~subsystem:"net" ~name:"tx_bytes"
             ()) )
    end
    else (None, None)
  in
  let t =
    {
      sim;
      id;
      name;
      rate;
      tx_ns_data = Units.tx_time rate ~bytes:Packet.data_wire_bytes;
      tx_ns_ack = Units.tx_time rate ~bytes:Packet.ack_wire_bytes;
      delay;
      disc;
      receiver = no_receiver;
      drop_filter = None;
      busy = false;
      up = true;
      bytes_sent = 0;
      packets_sent = 0;
      tx = Packet.dummy;
      wire = Array.make 16 Packet.dummy;
      wire_head = 0;
      wire_len = 0;
      on_serialized = ignore;
      on_deliver = ignore;
      c_tx_packets;
      c_tx_bytes;
    }
  in
  t.on_serialized <- (fun () -> serialized t);
  t.on_deliver <- (fun () -> deliver t);
  t

let set_receiver t f = t.receiver <- f
let wrap_receiver t wrap = t.receiver <- wrap t.receiver
let set_drop_filter t f = t.drop_filter <- f
let id t = t.id
let name t = t.name
let rate t = t.rate
let delay t = t.delay
let disc t = t.disc
let is_up t = t.up

let send t p =
  if t.up then
    (* The drop filter models loss on the wire's ingress: a killed packet
       never reaches the queue. Accounting/telemetry is the filter's job
       (the fault injector counts and emits Injected_drop). *)
    if match t.drop_filter with Some f -> f p | None -> false then
      Packet.release p
    else if t.busy then ignore (Queue_disc.enqueue t.disc p)
    else begin
      (* An idle link still runs the packet through the discipline so that
         marking/occupancy accounting sees every arrival. *)
      if Queue_disc.enqueue t.disc p then
        match Queue_disc.dequeue t.disc with
        | Some q -> transmit t q
        | None -> assert false
    end
  else Packet.release p

let set_up t up =
  if t.up && not up then ignore (Queue_disc.clear t.disc);
  t.up <- up

let bytes_sent t = t.bytes_sent
let packets_sent t = t.packets_sent

let utilization t ~duration =
  if duration <= 0 then 0.
  else
    float_of_int (t.bytes_sent * 8)
    /. (float_of_int t.rate *. Time.to_float_s duration)
