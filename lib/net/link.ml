module Sim = Xmp_engine.Sim
module Time = Xmp_engine.Time
module Invariant = Xmp_check.Invariant

module Tel = Xmp_telemetry

type t = {
  sim : Sim.t;
  id : int;
  name : string;
  rate : Units.rate;
  delay : Time.t;
  disc : Queue_disc.t;
  mutable receiver : Packet.t -> unit;
  mutable drop_filter : (Packet.t -> bool) option;
  mutable busy : bool;
  mutable up : bool;
  mutable bytes_sent : int;
  mutable packets_sent : int;
  (* resolved once at creation iff the sim's sink is active *)
  c_tx_packets : Tel.Metric.Counter.t option;
  c_tx_bytes : Tel.Metric.Counter.t option;
}

let no_receiver _ = failwith "Link: receiver not attached"

let create ~sim ~id ~name ~rate ~delay ~disc =
  if rate <= 0 then invalid_arg "Link.create: rate";
  let sink = Sim.telemetry sim in
  Queue_disc.set_telemetry disc ~sink ~now:(fun () -> Sim.now sim) ~queue:name;
  let c_tx_packets, c_tx_bytes =
    if Tel.Sink.active sink then begin
      let reg = Tel.Sink.registry sink in
      let labels = Tel.Label.v [ ("link", name) ] in
      ( Some
          (Tel.Registry.counter reg ~labels ~subsystem:"net" ~name:"tx_packets"
             ()),
        Some
          (Tel.Registry.counter reg ~labels ~subsystem:"net" ~name:"tx_bytes"
             ()) )
    end
    else (None, None)
  in
  {
    sim;
    id;
    name;
    rate;
    delay;
    disc;
    receiver = no_receiver;
    drop_filter = None;
    busy = false;
    up = true;
    bytes_sent = 0;
    packets_sent = 0;
    c_tx_packets;
    c_tx_bytes;
  }

let set_receiver t f = t.receiver <- f
let wrap_receiver t wrap = t.receiver <- wrap t.receiver
let set_drop_filter t f = t.drop_filter <- f
let id t = t.id
let name t = t.name
let rate t = t.rate
let delay t = t.delay
let disc t = t.disc
let is_up t = t.up

let rec transmit t (p : Packet.t) =
  t.busy <- true;
  Invariant.require ~name:"link.queue-within-capacity"
    (Queue_disc.length t.disc <= Queue_disc.capacity t.disc) (fun () ->
      Printf.sprintf "%s holds %d packets, capacity %d" t.name
        (Queue_disc.length t.disc)
        (Queue_disc.capacity t.disc));
  let tx = Units.tx_time t.rate ~bytes:p.size in
  Sim.after t.sim tx (fun () ->
      t.bytes_sent <- t.bytes_sent + p.size;
      t.packets_sent <- t.packets_sent + 1;
      (match t.c_tx_packets with
      | Some c ->
        Tel.Metric.Counter.inc c;
        (match t.c_tx_bytes with
        | Some b -> Tel.Metric.Counter.inc b ~by:p.size
        | None -> ())
      | None -> ());
      (* Propagation: the packet is on the wire while the next one
         serializes. Deliver only if the link is still up. *)
      if t.up then
        Sim.after t.sim t.delay (fun () -> if t.up then t.receiver p);
      match Queue_disc.dequeue t.disc with
      | Some next -> transmit t next
      | None -> t.busy <- false)

let send t p =
  if t.up then
    (* The drop filter models loss on the wire's ingress: a killed packet
       never reaches the queue. Accounting/telemetry is the filter's job
       (the fault injector counts and emits Injected_drop). *)
    if (match t.drop_filter with Some f -> f p | None -> false) then ()
    else if t.busy then ignore (Queue_disc.enqueue t.disc p)
    else begin
      (* An idle link still runs the packet through the discipline so that
         marking/occupancy accounting sees every arrival. *)
      if Queue_disc.enqueue t.disc p then
        match Queue_disc.dequeue t.disc with
        | Some q -> transmit t q
        | None -> assert false
    end

let set_up t up =
  if t.up && not up then ignore (Queue_disc.clear t.disc);
  t.up <- up

let bytes_sent t = t.bytes_sent
let packets_sent t = t.packets_sent

let utilization t ~duration =
  if duration <= 0 then 0.
  else
    float_of_int (t.bytes_sent * 8)
    /. (float_of_int t.rate *. Time.to_float_s duration)
