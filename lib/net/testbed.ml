module Time = Xmp_engine.Time

type spec = {
  rate : Units.rate;
  delay : Time.t;
  disc : unit -> Queue_disc.t;
}

type t = {
  net : Network.t;
  specs : spec array;
  left_base : int;
  n_left : int;
  right_base : int;
  n_right : int;
  bottlenecks : (Link.t * Link.t) array;
  access_delay : Time.t;
}

let default_access_rate = Units.gbps 10.
let default_access_delay = Time.us 5

let create ~net ~n_left ~n_right ~bottlenecks
    ?(access_rate = default_access_rate)
    ?(access_delay = default_access_delay) ?(access_capacity_pkts = 1000) ()
    =
  if n_left <= 0 || n_right <= 0 then invalid_arg "Testbed.create: hosts";
  if bottlenecks = [] then invalid_arg "Testbed.create: bottlenecks";
  let specs = Array.of_list bottlenecks in
  let m = Array.length specs in
  let left =
    Array.init n_left (fun i ->
        Network.add_host net ~name:(Printf.sprintf "S%d" (i + 1)))
  in
  let right =
    Array.init n_right (fun i ->
        Network.add_host net ~name:(Printf.sprintf "D%d" (i + 1)))
  in
  let in_sw =
    Array.init m (fun j ->
        Network.add_switch net ~name:(Printf.sprintf "IN%d" (j + 1)))
  in
  let out_sw =
    Array.init m (fun j ->
        Network.add_switch net ~name:(Printf.sprintf "OUT%d" (j + 1)))
  in
  let access_disc () =
    Queue_disc.create ~policy:Queue_disc.Droptail
      ~capacity_pkts:access_capacity_pkts
  in
  (* Access wiring. Loop order matters for port numbering: host [i] gets
     its port to IN/OUT_j at index [j]; switch [j] gets its port to host
     [i] at index [i]. *)
  for j = 0 to m - 1 do
    for i = 0 to n_left - 1 do
      ignore
        (Network.connect net ~tag:"access" ~rate:access_rate
           ~delay:access_delay ~disc:access_disc left.(i) in_sw.(j))
    done;
    for i = 0 to n_right - 1 do
      ignore
        (Network.connect net ~tag:"access" ~rate:access_rate
           ~delay:access_delay ~disc:access_disc right.(i) out_sw.(j))
    done
  done;
  let bnecks =
    Array.init m (fun j ->
        let spec = specs.(j) in
        Network.connect net ~tag:"bottleneck" ~rate:spec.rate
          ~delay:spec.delay ~disc:spec.disc in_sw.(j) out_sw.(j))
  in
  let left_base = Node.id left.(0) in
  let right_base = Node.id right.(0) in
  let is_left id = id >= left_base && id < left_base + n_left in
  let is_right id = id >= right_base && id < right_base + n_right in
  (* Hosts: the access port toward bottleneck [path] is port [path]. *)
  Array.iter (fun h -> Node.set_route h (fun p -> Packet.path p)) left;
  Array.iter (fun h -> Node.set_route h (fun p -> Packet.path p)) right;
  (* IN_j: packets for left hosts came back over the bottleneck and go down
     the matching access port; everything else crosses the bottleneck
     (port [n_left]). *)
  Array.iter
    (fun sw ->
      Node.set_route sw (fun p ->
          if is_left (Packet.dst p) then Packet.dst p - left_base else n_left))
    in_sw;
  Array.iter
    (fun sw ->
      Node.set_route sw (fun p ->
          if is_right (Packet.dst p) then Packet.dst p - right_base
          else n_right))
    out_sw;
  {
    net;
    specs;
    left_base;
    n_left;
    right_base;
    n_right;
    bottlenecks = bnecks;
    access_delay;
  }

let net t = t.net
let n_bottlenecks t = Array.length t.bottlenecks

let left_id t i =
  if i < 0 || i >= t.n_left then invalid_arg "Testbed.left_id";
  t.left_base + i

let right_id t i =
  if i < 0 || i >= t.n_right then invalid_arg "Testbed.right_id";
  t.right_base + i

let bottleneck_fwd t j = fst t.bottlenecks.(j)
let bottleneck_rev t j = snd t.bottlenecks.(j)

let set_bottleneck_up t j up =
  Link.set_up (fst t.bottlenecks.(j)) up;
  Link.set_up (snd t.bottlenecks.(j)) up

let one_way_delay t j =
  Time.add (Time.mul t.access_delay 2) t.specs.(j).delay
