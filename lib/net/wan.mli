(** Inter-DC WAN bridge: two data centers (fat tree or leaf-spine)
    joined by configurable high-BDP border trunks.

    Each trunk gets a border router per DC hanging off the exit layer
    (every core switch, or every spine), so cross-DC traffic keeps the
    full intra-DC path diversity up to the border and the trunk choice
    is a separate selector stratum: a cross-DC packet's [path] decomposes
    as [path mod up_div] (intra-DC ascent, [up_div] = (k/2)² for a fat
    tree, [spines] for a leaf-spine) and [path / up_div mod n_trunks]
    (trunk). ACKs reuse the selector, so the reverse path mirrors the
    forward one through its own DC's geometry.

    Host ids are globally unique across both DCs (DC 0's hosts first,
    switches after all hosts), so locality and routing classify a
    destination with one range check, and {!Fat_tree.Inter_dc} extends
    the locality classes.

    Two backends share the geometry byte-for-byte:
    - {!create} — one {!Shard} per DC with each trunk direction on a
      portal. The trunk delay (10–100 ms) is the epoch lookahead, so
      [domains:1 ≡ domains:N] byte equality holds as for the sharded
      fat tree, at a far coarser barrier cadence.
    - {!create_flat} — the same nodes, links and routing on a single
      {!Network} for closed-loop single-simulator drivers. *)

type dc_spec =
  | Fat_tree_dc of { k : int }
  | Leaf_spine_dc of { leaves : int; spines : int; hosts_per_leaf : int }

type trunk = {
  trunk_rate : Units.rate;
  trunk_delay : Xmp_engine.Time.t;
  trunk_queue_pkts : int;
  trunk_marking_threshold : int option;
}
(** One border link. [trunk_marking_threshold = None] models a
    deep-buffer droptail WAN router; [Some k] a shallow ECN-marking
    border queue — the regime where Eq. 1 ([K ≥ BDP/(β−1)]) sizes [K]
    against a BDP three orders of magnitude beyond the intra-DC one. *)

val trunk :
  ?rate:Units.rate ->
  ?delay:Xmp_engine.Time.t ->
  ?queue_pkts:int ->
  ?marking_threshold:int ->
  unit ->
  trunk
(** Defaults: 10 Gbps, 40 ms one-way, 2000-packet droptail (no
    marking). [delay] must be positive — it is the shard lookahead. *)

type t

val create :
  ?config:Xmp_engine.Sim.config ->
  left:dc_spec ->
  right:dc_spec ->
  trunks:trunk list ->
  ?rate:Units.rate ->
  disc:(unit -> Queue_disc.t) ->
  unit ->
  t
(** Sharded build: shard 0 carries [left], shard 1 carries [right],
    each trunk is a portal pair. [rate] (default 1 Gbps) and [disc]
    configure the intra-DC links; layer delays are the {!Fat_tree} /
    {!Leaf_spine} defaults (rack 20 µs, aggregation 30 µs, core 40 µs,
    spine 30 µs; border attach links use the exit-layer delay and the
    trunk's rate). At least one trunk is required. *)

val create_flat :
  net:Network.t ->
  left:dc_spec ->
  right:dc_spec ->
  trunks:trunk list ->
  ?rate:Units.rate ->
  disc:(unit -> Queue_disc.t) ->
  unit ->
  t
(** The identical geometry on one pre-existing network, for single-sim
    drivers. {!run} and {!cluster} reject a flat build; drive
    [Sim.run (Network.sim net)] directly. *)

val layers : string list
(** Link tags in display order, for utilization grouping: ["wan"],
    ["border"], then the intra-DC layers of both topology families. *)

val n_hosts : t -> int

val dc_n_hosts : dc_spec -> int
(** Host count of one DC spec ([k³/4] for a fat tree,
    [leaves × hosts_per_leaf] for a leaf-spine). *)

val n_trunks : t -> int

val host_id : t -> int -> int
(** Identity on [0 .. n_hosts), with bounds checking. *)

val dc_of_host : t -> int -> int
(** 0 or 1. *)

val dc_spec : t -> int -> dc_spec

val cluster : t -> Shard.t
(** The shard cluster of a sharded build; raises on a flat build. *)

val net : t -> Network.t
(** The single network of a flat build; raises on a sharded build. *)

val host_net : t -> int -> Network.t
(** The network a host's endpoints register on (per-DC shard net, or
    the flat net). *)

val run :
  ?domains:int ->
  ?until:Xmp_engine.Time.t ->
  ?on_epoch:(target:Xmp_engine.Time.t -> Xmp_engine.Time.t) ->
  t ->
  unit
(** {!Shard.run} on the cluster; raises on a flat build. *)

val locality : t -> src:int -> dst:int -> Fat_tree.locality
(** {!Fat_tree.Inter_dc} across the cut; the host DC's own class
    otherwise (a leaf-spine pair is [Inner_rack] on one leaf,
    [Inter_rack] across leaves). *)

val n_paths : t -> src:int -> dst:int -> int
(** Distinct path selectors: the DC-local count within one DC;
    [up_div(src DC) × n_trunks] across the cut. *)

val zero_load_rtt : t -> src:int -> dst:int -> Xmp_engine.Time.t
(** Propagation-only round trip between two hosts — the ideal-FCT
    denominator. Cross-DC pairs use the fastest trunk. *)

val max_rtt_no_queue : t -> Xmp_engine.Time.t
(** Zero-load RTT of the slowest cross-DC path (slowest trunk) — what
    RTO floors should be sized against. *)

val max_rtt_no_queue_of :
  left:dc_spec ->
  right:dc_spec ->
  trunks:trunk list ->
  Xmp_engine.Time.t
(** {!max_rtt_no_queue} computed from the specs alone, so drivers can
    size RTO floors and horizons before building anything. *)

val min_trunk_delay : t -> Xmp_engine.Time.t

val trunk_link_name : t -> from_dc:int -> trunk:int -> string
(** The directed trunk link's ["d0.bdr0->d1.bdr0"]-style name, for
    {!Xmp_engine.Fault_spec.Link} targeting. All trunk links also carry
    the ["wan"] tag. *)

val events_executed : t -> int

val mail_injected : t -> int
(** Portal packets carried across epoch barriers (0 for a flat build). *)
