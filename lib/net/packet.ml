type kind = Data | Ack

let data_wire_bytes = 1500
let payload_bytes = 1460
let ack_wire_bytes = 60

(* Two packed header words (the PR 5 endpoint-key trick extended to the
   whole header), a flag word and a timestamp; SACK blocks live in three
   packed slots instead of a list. All fields mutable so one record can
   be reused for the lifetime of the process via the free-list pool. *)
type t = {
  mutable w0 : int;  (* dst:20 | flow:30 | subflow:12 — endpoint-key layout *)
  mutable w1 : int;  (* src:20 | path:10 | kind:1 | seq:31 *)
  mutable flags : int;  (* ect:1 | ce:1 | cwr:1 | free:1 | ece:16 | nsack:2 *)
  mutable ts : Xmp_engine.Time.t;
  mutable sack0 : int;  (* start:31 | stop:31, valid below nsack *)
  mutable sack1 : int;
  mutable sack2 : int;
}

(* ---- packed-field layout ---------------------------------------------- *)

let subflow_bits = 12
let flow_bits = 30
let host_bits = 20
let path_bits = 10
let seq_bits = 31
let ece_bits = 16

let max_subflow = (1 lsl subflow_bits) - 1
let max_flow = (1 lsl flow_bits) - 1
let max_host = (1 lsl host_bits) - 1
let max_path = (1 lsl path_bits) - 1
let max_seq = (1 lsl seq_bits) - 1
let max_ece = (1 lsl ece_bits) - 1
let max_sack_bound = (1 lsl 31) - 1

let ect_bit = 1
let ce_bit = 2
let cwr_bit = 4
let free_bit = 8
let ece_shift = 4
let nsack_shift = ece_shift + ece_bits
let kind_bit = 1 lsl seq_bits

let pack_w0 ~dst ~flow ~subflow =
  (((dst lsl flow_bits) lor flow) lsl subflow_bits) lor subflow

let pack_w1 ~src ~path ~ack ~seq =
  (((src lsl path_bits) lor path) lsl (seq_bits + 1))
  lor (if ack then kind_bit else 0)
  lor seq

(* ---- accessors -------------------------------------------------------- *)

let[@inline] dst p = p.w0 lsr (flow_bits + subflow_bits)
let[@inline] flow p = (p.w0 lsr subflow_bits) land max_flow
let[@inline] subflow p = p.w0 land max_subflow

let[@inline] endpoint_key p = p.w0

let[@inline] src p = p.w1 lsr (path_bits + seq_bits + 1)
let[@inline] path p = (p.w1 lsr (seq_bits + 1)) land max_path
let[@inline] is_ack p = p.w1 land kind_bit <> 0
let[@inline] kind p = if is_ack p then Ack else Data
let[@inline] seq p = p.w1 land max_seq

let[@inline] size p = if is_ack p then ack_wire_bytes else data_wire_bytes

let[@inline] ect p = p.flags land ect_bit <> 0
let[@inline] ce p = p.flags land ce_bit <> 0
let[@inline] cwr p = p.flags land cwr_bit <> 0
let[@inline] ece_count p = (p.flags lsr ece_shift) land max_ece
let[@inline] ts p = p.ts

let[@inline] set_ce p = p.flags <- p.flags lor ce_bit

let[@inline] sack_count p = p.flags lsr nsack_shift

let sack_slot p i =
  match i with
  | 0 -> p.sack0
  | 1 -> p.sack1
  | _ -> p.sack2

let[@inline] sack_start p i = sack_slot p i lsr 31
let[@inline] sack_stop p i = sack_slot p i land max_sack_bound

let sack p =
  let rec blocks i acc =
    if i < 0 then acc
    else blocks (i - 1) ((sack_start p i, sack_stop p i) :: acc)
  in
  blocks (sack_count p - 1) []

let add_sack_block p ~start ~stop =
  let n = sack_count p in
  if n >= 3 then invalid_arg "Packet.add_sack_block: at most 3 blocks";
  if start < 0 || start > max_sack_bound || stop < 0 || stop > max_sack_bound
  then invalid_arg "Packet.add_sack_block: bound outside 31-bit range";
  let slot = (start lsl 31) lor stop in
  (match n with
  | 0 -> p.sack0 <- slot
  | 1 -> p.sack1 <- slot
  | _ -> p.sack2 <- slot);
  p.flags <- p.flags + (1 lsl nsack_shift)

(* ---- free-list pool --------------------------------------------------- *)

(* Packets cycle acquire -> wire -> consume -> release; the pool keeps
   every record ever created so steady state allocates nothing. The pool
   is domain-local (no locks on the hot path); a sharded simulation's
   shards each recycle through their own domain's pool. *)
type pool = {
  mutable stack : t array;  (* free records in stack.(0 .. top-1) *)
  mutable top : int;
  mutable created : int;
}

(* Shared placeholder for array slots and pre-transmit link registers;
   never enters circulation (its free bit stays set, so releasing it is
   reported as a double release). *)
let dummy =
  (* xmplint: allow mutable-global — placeholder record nothing ever
     writes; the mutability is structural (same type as pooled packets) *)
  { w0 = 0; w1 = 0; flags = free_bit; ts = 0; sack0 = 0; sack1 = 0; sack2 = 0 }

let pool_key =
  Domain.DLS.new_key (fun () -> { stack = [||]; top = 0; created = 0 })

let pool_created () = (Domain.DLS.get pool_key).created
let pool_free () = (Domain.DLS.get pool_key).top

let acquire () =
  let pool = Domain.DLS.get pool_key in
  if pool.top > 0 then begin
    pool.top <- pool.top - 1;
    pool.stack.(pool.top)
  end
  else begin
    pool.created <- pool.created + 1;
    { w0 = 0; w1 = 0; flags = 0; ts = 0; sack0 = 0; sack1 = 0; sack2 = 0 }
  end

let release p =
  if p.flags land free_bit <> 0 then
    invalid_arg "Packet.release: packet already released";
  (* the free flag doubles as a full reset: every other flag bit (and the
     sack count) is cleared, and the constructors overwrite the rest *)
  p.flags <- free_bit;
  let pool = Domain.DLS.get pool_key in
  if pool.top = Array.length pool.stack then begin
    let cap = Stdlib.max 64 (2 * pool.top) in
    let stack = Array.make cap dummy in
    Array.blit pool.stack 0 stack 0 pool.top;
    pool.stack <- stack
  end;
  pool.stack.(pool.top) <- p;
  pool.top <- pool.top + 1

(* ---- constructors ----------------------------------------------------- *)

let check_header ~flow ~subflow ~src ~dst ~path ~seq =
  if
    flow < 0 || flow > max_flow || subflow < 0 || subflow > max_subflow
    || src < 0 || src > max_host || dst < 0 || dst > max_host || path < 0
    || path > max_path || seq < 0 || seq > max_seq
  then
    invalid_arg
      (Printf.sprintf
         "Packet: header (flow=%d subflow=%d src=%d dst=%d path=%d seq=%d) \
          outside packed ranges (flow<=%d, subflow<=%d, host<=%d, path<=%d, \
          seq<=%d)"
         flow subflow src dst path seq max_flow max_subflow max_host max_path
         max_seq)

let data ~flow ~subflow ~src ~dst ~path ~seq ~ect ~cwr ~ts =
  check_header ~flow ~subflow ~src ~dst ~path ~seq;
  let p = acquire () in
  p.w0 <- pack_w0 ~dst ~flow ~subflow;
  p.w1 <- pack_w1 ~src ~path ~ack:false ~seq;
  p.flags <- (if ect then ect_bit else 0) lor (if cwr then cwr_bit else 0);
  p.ts <- ts;
  p

let ack ?(sack = []) ~flow ~subflow ~src ~dst ~path ~seq ~ece_count ~ts () =
  check_header ~flow ~subflow ~src ~dst ~path ~seq;
  if ece_count < 0 || ece_count > max_ece then
    invalid_arg "Packet: ece_count outside packed range";
  let p = acquire () in
  p.w0 <- pack_w0 ~dst ~flow ~subflow;
  p.w1 <- pack_w1 ~src ~path ~ack:true ~seq;
  p.flags <- ece_count lsl ece_shift;
  p.ts <- ts;
  List.iter (fun (start, stop) -> add_sack_block p ~start ~stop) sack;
  p

(* ---- cross-domain image ----------------------------------------------- *)

type image = {
  i_w0 : int;
  i_w1 : int;
  i_flags : int;
  i_ts : Xmp_engine.Time.t;
  i_sack0 : int;
  i_sack1 : int;
  i_sack2 : int;
}

let image p =
  {
    i_w0 = p.w0;
    i_w1 = p.w1;
    i_flags = p.flags land lnot free_bit;
    i_ts = p.ts;
    i_sack0 = p.sack0;
    i_sack1 = p.sack1;
    i_sack2 = p.sack2;
  }

let of_image im =
  let p = acquire () in
  p.w0 <- im.i_w0;
  p.w1 <- im.i_w1;
  p.flags <- im.i_flags land lnot free_bit;
  p.ts <- im.i_ts;
  p.sack0 <- im.i_sack0;
  p.sack1 <- im.i_sack1;
  p.sack2 <- im.i_sack2;
  p

let pp fmt p =
  let kind = if is_ack p then "ack" else "data" in
  Format.fprintf fmt "%s[f%d.%d %d->%d path%d seq=%d%s%s]" kind (flow p)
    (subflow p) (src p) (dst p) (path p) (seq p)
    (if ce p then " CE" else "")
    (if ece_count p > 0 then Printf.sprintf " ece=%d" (ece_count p) else "")
