(** k-ary Fat-Tree topology (Al-Fares et al., SIGCOMM 2008) with the
    deterministic per-destination-address routing the paper uses (§5.2.1:
    Two-Level Routing Lookup; multiple addresses per host so that MPTCP
    subflows take different paths).

    For even [k]: [k] pods, each with [k/2] edge and [k/2] aggregation
    switches; [(k/2)^2] core switches; [k^3/4] hosts. A packet's [path]
    field plays the role of the destination address choice: inter-pod
    traffic with selector [p] ascends via aggregation switch [p / (k/2)]
    and core offset [p mod (k/2)]; intra-pod inter-rack traffic uses
    aggregation switch [p mod (k/2)]. ACKs carry the same selector, so the
    reverse path is the mirror of the forward path, as with symmetric
    two-level lookup tables. *)

type locality = Inner_rack | Inter_rack | Inter_pod | Inter_dc
(** [Inter_dc] never arises within one tree; it is produced by the
    {!Wan} bridge for host pairs on opposite sides of a border link. *)

val pp_locality : Format.formatter -> locality -> unit

val locality_name : locality -> string

val decompose : k:int -> int -> int * int * int
(** [decompose ~k i] splits host index [i] into [(pod, edge, slot)] —
    [k/2] hosts per edge switch, [(k/2)²] per pod. *)

type t

val create :
  net:Network.t ->
  k:int ->
  ?rate:Units.rate ->
  ?rack_delay:Xmp_engine.Time.t ->
  ?agg_delay:Xmp_engine.Time.t ->
  ?core_delay:Xmp_engine.Time.t ->
  disc:(unit -> Queue_disc.t) ->
  unit ->
  t
(** Defaults follow §5.2.1: 1 Gbps links everywhere; one-way delays 20 µs
    (rack), 30 µs (aggregation), 40 µs (core). [k] must be even and ≥ 2.
    Link layer tags are ["rack"], ["aggregation"], ["core"]. *)

val k : t -> int

val net : t -> Network.t

val n_hosts : t -> int

val host_id : t -> int -> int
(** Node id of host index [i] (0 ≤ i < n_hosts). *)

val host_index : t -> int -> int
(** Inverse of {!host_id}. *)

val locality : t -> src:int -> dst:int -> locality
(** Locality class of a host-index pair. *)

val n_paths : t -> src:int -> dst:int -> int
(** Number of distinct path selectors between two hosts: 1 within a rack,
    [k/2] within a pod, [(k/2)^2] across pods. *)

val max_rtt_no_queue : t -> Xmp_engine.Time.t
(** Zero-load RTT of the longest (inter-pod) path. *)

val rack_uplink_name : t -> pod:int -> edge:int -> agg:int -> string
(** ["e<pod>.<edge>->a<pod>.<agg>"] — the edge-to-aggregation uplink's
    link name, for building {!Xmp_engine.Fault_spec} schedules that fail
    a rack uplink mid-run. Raises on out-of-range coordinates. *)

val rack_downlink_name : t -> pod:int -> edge:int -> agg:int -> string
(** The reverse (aggregation-to-edge) direction; fail both names to cut
    the cable rather than one direction. *)

val host_uplink_name : t -> int -> string
(** ["h<pod>.<edge>.<slot>-><edge switch>"] for host index [i]. *)

val rack_uplink : t -> pod:int -> edge:int -> agg:int -> Link.t
(** The live link for {!rack_uplink_name}; raises [Invalid_argument] if
    absent. *)

val rack_downlink : t -> pod:int -> edge:int -> agg:int -> Link.t

val layers : string list
(** [\["core"; "aggregation"; "rack"\]] — tags usable with
    {!Network.links_tagged}. *)
