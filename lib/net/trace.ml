module Sim = Xmp_engine.Sim
module Time = Xmp_engine.Time

type event_kind = Delivered | Marked | Dropped

type event = {
  at : Time.t;
  kind : event_kind;
  where : string;
  packet : string;
  flow : int;
  subflow : int;
  seq : int;
}

type t = {
  sim : Sim.t;
  filter : Packet.t -> bool;
  limit : int;
  mutable events : event list;  (* reverse order *)
  mutable stored : int;
  mutable seen : int;
  mutable delivered : int;
  mutable marked : int;
  mutable dropped : int;
}

let create ?(filter = fun _ -> true) ?(limit = 100_000) ~sim () =
  {
    sim;
    filter;
    limit;
    events = [];
    stored = 0;
    seen = 0;
    delivered = 0;
    marked = 0;
    dropped = 0;
  }

let record t kind ~where (p : Packet.t) =
  if t.filter p then begin
    t.seen <- t.seen + 1;
    (match kind with
    | Delivered -> t.delivered <- t.delivered + 1
    | Marked -> t.marked <- t.marked + 1
    | Dropped -> t.dropped <- t.dropped + 1);
    if t.stored < t.limit then begin
      t.events <-
        {
          at = Sim.now t.sim;
          kind;
          where;
          packet = Format.asprintf "%a" Packet.pp p;
          flow = Packet.flow p;
          subflow = Packet.subflow p;
          seq = Packet.seq p;
        }
        :: t.events;
      t.stored <- t.stored + 1
    end
  end

let watch_link t link =
  let name = Link.name link in
  Link.wrap_receiver link (fun inner p ->
      record t Delivered ~where:name p;
      inner p);
  Queue_disc.set_hooks (Link.disc link)
    ~on_drop:(record t Dropped ~where:name)
    ~on_mark:(record t Marked ~where:name)
    ()

let events t = List.rev t.events
let count t = t.seen

let count_kind t = function
  | Delivered -> t.delivered
  | Marked -> t.marked
  | Dropped -> t.dropped

let kind_name = function
  | Delivered -> "DELIVER"
  | Marked -> "MARK"
  | Dropped -> "DROP"

let dump t =
  String.concat ""
    (List.map
       (fun e ->
         Format.asprintf "[%a] %s %s %s\n" Time.pp e.at e.where
           (kind_name e.kind) e.packet)
       (events t))

let clear t =
  t.events <- [];
  t.stored <- 0
