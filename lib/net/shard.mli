(** Pod-sharded parallel simulation: several {!Xmp_engine.Sim}/{!Network}
    pairs advancing in lockstep epochs, coupled by portal links.

    Each shard is an ordinary single-domain simulation. A {!portal} is a
    directed cross-shard link: its serializer and egress queue run in the
    source shard at the given rate, and its propagation delay is applied
    across the epoch barrier — the packet is captured as an immutable
    {!Packet.image} when it finishes serializing, released into the
    sending domain's pool, and rebuilt from the receiving domain's pool
    when it is injected.

    {2 Epoch-barrier semantics}

    The epoch length is the minimum portal delay Δ (the conservative
    lookahead): epoch [e] simulates [[eΔ, (e+1)Δ)] in every shard, so any
    mail emitted during epoch [e] carries an arrival timestamp of at
    least [(e+1)Δ] and is injected at the barrier before the epoch that
    contains it — no shard ever receives an event in its past.

    {2 Determinism}

    Shards are pinned to domains round-robin, each shard's event loop is
    sequential, and the barrier merges all mail into one total order —
    [(arrival, source shard, per-shard emission sequence)] — before
    injection. That order fixes the destination sims' tie-breaking
    sequence numbers, so a run with [domains:1] and a run with
    [domains:N] produce byte-identical results. Nothing a shard computes
    may depend on which domain hosts it (per-domain packet pools satisfy
    this: pool identity never changes packet contents). *)

type t

val create : ?config:Xmp_engine.Sim.config -> shards:int -> unit -> t
(** Each shard gets its own simulator seeded [config.seed + index] and
    its own network. *)

val n_shards : t -> int

val net : t -> int -> Network.t

val sim : t -> int -> Xmp_engine.Sim.t

val portal :
  t ->
  ?tag:string ->
  src:int * Node.t ->
  dst:int * Node.t ->
  rate:Units.rate ->
  delay:Xmp_engine.Time.t ->
  disc:(unit -> Queue_disc.t) ->
  unit ->
  Link.t
(** [portal t ~src:(i, a) ~dst:(j, b) ~rate ~delay ~disc ()] wires a
    directed cross-shard link from node [a] of shard [i] to node [b] of
    shard [j], taking the next port number on [a] exactly as
    {!Network.connect} would. [delay] must be positive: it is the
    lookahead that bounds the epoch length. Raises [Invalid_argument] on
    a same-shard portal or a non-positive delay. *)

val epoch_delta : t -> Xmp_engine.Time.t
(** The epoch length Δ (minimum portal delay); [Time.infinity] while no
    portal exists. *)

val run :
  ?domains:int ->
  ?until:Xmp_engine.Time.t ->
  ?on_epoch:(target:Xmp_engine.Time.t -> Xmp_engine.Time.t) ->
  t ->
  unit
(** Advances every shard to [until] in Δ-sized epochs, injecting portal
    mail at each barrier. [domains:1] (the default) runs the epochs on
    the calling domain; [domains:n] spawns [n - 1] worker domains for
    the duration of the call and shards are pinned round-robin. The
    domain count never changes results (see the determinism notes
    above). Idle stretches where no shard has events and no mail is in
    flight are skipped in O(1).

    [on_epoch] is the barrier hook for open-loop traffic generation: it
    runs on the orchestrating domain at the start of every epoch, while
    all workers are parked, so it may safely mutate any shard — in
    particular create cross-shard flows (which register endpoints on two
    shards) due inside the epoch's window. The callback receives the
    epoch's end time [target], must schedule everything it wants at or
    before [target], and returns the time of its earliest remaining
    action strictly beyond [target] ([Time.infinity] when exhausted);
    that return feeds the idle fast-forward so quiet stretches are still
    skipped. Without portals the hook fires exactly once with
    [target = until]. *)

val events_executed : t -> int
(** Sum of {!Xmp_engine.Sim.events_executed} over the shards. *)

val mail_injected : t -> int
(** Portal packets carried across barriers so far. *)
