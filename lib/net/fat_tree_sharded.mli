(** {!Fat_tree} rebuilt over a {!Shard} cluster, one shard per pod.

    Geometry, host addressing, path selectors and routing are identical
    to {!Fat_tree}: host index [i] is also its node id in every shard's
    network, and the port-indexed routing functions are the same
    formulas. The rack and aggregation layers are pod-local links; each
    agg↔core hop whose core switch lives in another shard becomes a pair
    of {!Shard.portal}s with the core-layer propagation delay as the
    lookahead (so the epoch length is [core_delay]). Core switch (g, c)
    is placed in shard [(g·k/2 + c) mod k], spreading inter-pod
    contention across the shards. *)

type t

val create :
  ?config:Xmp_engine.Sim.config ->
  k:int ->
  ?rate:Units.rate ->
  ?rack_delay:Xmp_engine.Time.t ->
  ?agg_delay:Xmp_engine.Time.t ->
  ?core_delay:Xmp_engine.Time.t ->
  disc:(unit -> Queue_disc.t) ->
  unit ->
  t

val k : t -> int

val cluster : t -> Shard.t

val n_hosts : t -> int

val host_id : t -> int -> int
(** Identity on [0 .. n_hosts), with bounds checking — kept for symmetry
    with {!Fat_tree.host_id}. *)

val pod_of_host : t -> int -> int

val host_net : t -> int -> Network.t
(** The network of the shard holding host [i] — what a transport's [net]
    (sender side) or [rcv_net] (receiver side) should be. *)

val locality : t -> src:int -> dst:int -> Fat_tree.locality

val n_paths : t -> src:int -> dst:int -> int

val max_rtt_no_queue : t -> Xmp_engine.Time.t
(** Zero-load inter-pod round trip, as {!Fat_tree.max_rtt_no_queue}. *)

val run :
  ?domains:int ->
  ?until:Xmp_engine.Time.t ->
  ?on_epoch:(target:Xmp_engine.Time.t -> Xmp_engine.Time.t) ->
  t ->
  unit
(** {!Shard.run} on the cluster ([on_epoch] is the epoch-barrier hook —
    see {!Shard.run}). *)
