(** Network container: node/link registry, directed wiring helper, and the
    per-host transport demultiplexer.

    Delivery is a packet's last stop: the demultiplexer hands it to the
    registered endpoint handler (or dead-letters it) and then releases it
    back to the {!Packet} pool, so handlers must extract what they keep
    before returning. *)

type t

val create : Xmp_engine.Sim.t -> t

val sim : t -> Xmp_engine.Sim.t

val add_host : t -> name:string -> Node.t

val add_switch : t -> name:string -> Node.t

val add_host_at : t -> id:int -> name:string -> Node.t
(** Like {!add_host} with an explicit node id — sharded topologies keep
    host ids globally meaningful across shard networks. The id must fit
    the packed 20-bit host range and be unused; ids skipped over are
    never assigned implicitly afterwards. *)

val add_switch_at : t -> id:int -> name:string -> Node.t

val node : t -> int -> Node.t

val n_nodes : t -> int

val connect :
  t ->
  ?tag:string ->
  rate:Units.rate ->
  delay:Xmp_engine.Time.t ->
  disc:(unit -> Queue_disc.t) ->
  Node.t ->
  Node.t ->
  Link.t * Link.t
(** [connect t ~rate ~delay ~disc a b] creates a link in each direction
    (each with its own queue discipline from the factory), attaches them as
    ports on [a] and [b], and wires packet delivery to the far node's
    receive. Returns [(a_to_b, b_to_a)]. The [tag] labels both directions
    (e.g. the fat-tree layer) for utilization grouping. *)

val add_egress :
  t ->
  ?tag:string ->
  name:string ->
  rate:Units.rate ->
  delay:Xmp_engine.Time.t ->
  disc:(unit -> Queue_disc.t) ->
  Node.t ->
  (Packet.t -> unit) ->
  Link.t
(** [add_egress t ~name ~rate ~delay ~disc src receiver] creates a single
    directed link whose deliveries go to [receiver] instead of a peer
    node — the seam {!Shard} portals use to hand packets across a domain
    boundary. The link takes the next port number on [src] exactly as
    {!connect} would, so builders can substitute a portal for a local
    link without disturbing port-indexed routing. The receiver owns each
    delivered packet (it must pass it on or release it). *)

val connect_asym :
  t ->
  ?tag:string ->
  rate_fwd:Units.rate ->
  rate_rev:Units.rate ->
  delay:Xmp_engine.Time.t ->
  disc:(unit -> Queue_disc.t) ->
  Node.t ->
  Node.t ->
  Link.t * Link.t
(** Like {!connect} with different rates per direction. *)

val links : t -> Link.t list
(** All links, in creation order. *)

val links_tagged : t -> string -> Link.t list

val tag_of_link : t -> Link.t -> string option

val find_link : t -> name:string -> Link.t option
(** Looks a link up by its ["src->dst"] name (first match in creation
    order; builder-generated names are unique). How fault schedules and
    the CLI address links. *)

val register_endpoint :
  t -> host:int -> flow:int -> subflow:int -> (Packet.t -> unit) -> unit
(** Registers the transport handler for packets of [(flow, subflow)]
    arriving at [host]. Replaces any previous registration.

    Endpoint keys are packed into one immediate int for per-packet
    dispatch, so the components are range-checked here: [host] must fit
    20 bits, [flow] 30 bits and [subflow] 12 bits (all non-negative);
    out-of-range values raise [Invalid_argument]. *)

val unregister_endpoint : t -> host:int -> flow:int -> subflow:int -> unit
(** Removing a registration outside the packed ranges is a no-op (nothing
    could have been registered there). *)

val packets_delivered : t -> int
(** Packets handed to transport endpoints. *)

val packets_dead_lettered : t -> int
(** Packets that arrived at a host with no registered endpoint (e.g. after
    the flow completed and tore down); they are counted and discarded. *)
