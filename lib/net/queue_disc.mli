(** Queue disciplines for switch egress ports.

    Three policies:

    - [Droptail]: FIFO, drop on overflow, no marking. What the paper's LIA
      and TCP baselines run against.
    - [Threshold_mark k]: the paper's packet-marking rule (§2.1) — mark the
      arriving ECT packet with CE when the instantaneous queue length
      exceeds [k] packets, drop on overflow. Equivalent to RED with
      [Wq = 1] and both thresholds at [k], the configuration trick of §3.
    - [Red]: classic RED with EWMA average queue estimation, for the
      comparison arguments of §2.1. Marks ECT packets (or drops, when
      [mark_ecn = false]). The average also decays on every dequeue — the
      deterministic, clock-free equivalent of RED's idle-time correction,
      so the first arrival after a drain-and-idle period does not face a
      stale pre-idle average.

    Non-ECT packets are never marked; they are only dropped on overflow.
    This is what lets ECN and non-ECN flows coexist in Table 2. *)

type red_params = {
  wq : float;  (** EWMA weight for the average queue length *)
  min_th : float;  (** packets *)
  max_th : float;  (** packets *)
  max_p : float;  (** marking probability at [max_th] *)
  mark_ecn : bool;  (** mark ECT packets instead of dropping them *)
}

val default_red : red_params

type policy = Droptail | Threshold_mark of int | Red of red_params

type t

val create : policy:policy -> capacity_pkts:int -> t

val policy : t -> policy

val capacity : t -> int

val length : t -> int
(** Packets currently waiting (excludes any packet in transmission). *)

val enqueue : t -> Packet.t -> bool
(** [enqueue t p] applies the marking policy to [p] and appends it; returns
    [false] when the packet was dropped (queue full, RED drop, or the
    queue is blacked out). *)

val dequeue : t -> Packet.t option

val clear : t -> int
(** Empties the queue (used when a link goes down); returns the number of
    packets discarded. *)

val enqueued : t -> int
(** Cumulative packets accepted. *)

val dropped : t -> int
(** Cumulative packets dropped. *)

val marked : t -> int
(** Cumulative packets CE-marked. *)

val max_length_seen : t -> int

val sample_length : t -> unit
(** Feeds the current length into the occupancy statistics. *)

val occupancy_stats : t -> Xmp_stats.Running.t
(** Statistics over lengths recorded by {!sample_length}. *)

val set_hooks :
  t ->
  ?on_drop:(Packet.t -> unit) ->
  ?on_mark:(Packet.t -> unit) ->
  unit ->
  unit
(** Per-packet observers for tracing. Unset hooks cost one branch per
    enqueue. Calling again replaces both hooks (omitted = removed). *)

val set_blackout : t -> bool -> unit
(** While blacked out the queue drops every arriving packet with normal
    drop accounting (counters, [on_drop], Drop events); packets already
    queued still drain. The fault injector's [Blackout] spec toggles
    this. *)

val blackout : t -> bool

val set_telemetry :
  t -> sink:Xmp_telemetry.Sink.t -> now:(unit -> int) -> queue:string -> unit
(** Attaches the owning simulation's telemetry sink (normally done by
    {!Link.create}): resolves per-queue counters / a depth histogram under
    labels [queue=<queue>] and emits enqueue / dequeue / CE-mark / drop
    events stamped with [now ()] (simulated nanoseconds). With a disabled
    sink this resolves nothing and every per-packet site stays a single
    branch. *)
