module Invariant = Xmp_check.Invariant
module Tel = Xmp_telemetry

type red_params = {
  wq : float;
  min_th : float;
  max_th : float;
  max_p : float;
  mark_ecn : bool;
}

let default_red =
  { wq = 0.002; min_th = 5.; max_th = 15.; max_p = 0.1; mark_ecn = true }

type policy = Droptail | Threshold_mark of int | Red of red_params

(* telemetry bundle, present exactly when the owning sim's sink is active;
   handles are resolved once in [set_telemetry] so the per-packet cost of a
   disabled sink is the single [t.telem] branch *)
type telem = {
  sink : Tel.Sink.t;
  now : unit -> int;  (* simulated nanoseconds, supplied by the link *)
  queue : string;
  c_enqueued : Tel.Metric.Counter.t;
  c_dropped : Tel.Metric.Counter.t;
  c_marked : Tel.Metric.Counter.t;
  h_depth : Tel.Metric.Histogram.t;
}

type t = {
  policy : policy;
  capacity : int;
  ring : Packet.t array;  (* circular FIFO of [capacity] slots *)
  mutable head : int;  (* index of the next packet to dequeue *)
  mutable len : int;
  mutable enqueued : int;
  mutable dropped : int;
  mutable marked : int;
  mutable max_len : int;
  (* RED state *)
  mutable avg : float;
  mutable count_since_mark : int;
  occupancy : Xmp_stats.Running.t;
  mutable on_drop : (Packet.t -> unit) option;
  mutable on_mark : (Packet.t -> unit) option;
  mutable telem : telem option;
  mutable blackout : bool;
}

let create ~policy ~capacity_pkts =
  if capacity_pkts <= 0 then invalid_arg "Queue_disc.create: capacity";
  {
    policy;
    capacity = capacity_pkts;
    ring = Array.make capacity_pkts Packet.dummy;
    head = 0;
    len = 0;
    enqueued = 0;
    dropped = 0;
    marked = 0;
    max_len = 0;
    avg = 0.;
    count_since_mark = -1;
    occupancy = Xmp_stats.Running.create ();
    on_drop = None;
    on_mark = None;
    telem = None;
    blackout = false;
  }

let set_telemetry t ~sink ~now ~queue =
  if Tel.Sink.active sink then begin
    let reg = Tel.Sink.registry sink in
    let labels = Tel.Label.v [ ("queue", queue) ] in
    t.telem <-
      Some
        {
          sink;
          now;
          queue;
          c_enqueued =
            Tel.Registry.counter reg ~labels ~subsystem:"net" ~name:"enqueued"
              ();
          c_dropped =
            Tel.Registry.counter reg ~labels ~subsystem:"net" ~name:"dropped"
              ();
          c_marked =
            Tel.Registry.counter reg ~labels ~subsystem:"net" ~name:"marked" ();
          h_depth =
            Tel.Registry.histogram reg ~labels ~subsystem:"net"
              ~name:"queue_depth" ();
        }
  end
  else t.telem <- None

let policy t = t.policy
let capacity t = t.capacity
let length t = t.len

let mark t (p : Packet.t) =
  if Packet.ect p && not (Packet.ce p) then begin
    Packet.set_ce p;
    t.marked <- t.marked + 1;
    (match t.telem with
    | Some tl ->
      Tel.Metric.Counter.inc tl.c_marked;
      Tel.Sink.event tl.sink ~time_ns:(tl.now ())
        (Tel.Event.Ce_mark
           { queue = tl.queue; flow = Packet.flow p;
             subflow = Packet.subflow p; depth = t.len })
    | None -> ());
    match t.on_mark with Some f -> f p | None -> ()
  end

(* RED decision for an arriving packet: [`Pass], [`Mark] or [`Drop].
   Classic gentle-less RED with the count-based probability correction. *)
let red_decision t params =
  t.avg <- ((1. -. params.wq) *. t.avg) +. (params.wq *. float_of_int t.len);
  if t.avg < params.min_th then begin
    t.count_since_mark <- -1;
    `Pass
  end
  else if t.avg >= params.max_th then `Force
  else begin
    t.count_since_mark <- t.count_since_mark + 1;
    let pb =
      params.max_p *. (t.avg -. params.min_th)
      /. (params.max_th -. params.min_th)
    in
    let pa =
      let denom = 1. -. (float_of_int t.count_since_mark *. pb) in
      if denom <= 0. then 1. else pb /. denom
    in
    (* Deterministic threshold on the accumulated probability keeps runs
       reproducible without threading an RNG into the queue: mark when the
       expected number of marks since the last one reaches 1. *)
    if pa >= 1. || Float.rem (float_of_int t.count_since_mark *. pb) 1. < pb
    then begin
      t.count_since_mark <- 0;
      `Force
    end
    else `Pass
  end

let append t (p : Packet.t) =
  let tail = t.head + t.len in
  let tail = if tail >= t.capacity then tail - t.capacity else tail in
  t.ring.(tail) <- p;
  t.len <- t.len + 1;
  t.enqueued <- t.enqueued + 1;
  if t.len > t.max_len then t.max_len <- t.len;
  (match t.telem with
  | Some tl ->
    Tel.Metric.Counter.inc tl.c_enqueued;
    Tel.Metric.Histogram.add tl.h_depth (float_of_int t.len);
    Tel.Sink.event tl.sink ~time_ns:(tl.now ())
      (Tel.Event.Enqueue
         { queue = tl.queue; flow = Packet.flow p;
           subflow = Packet.subflow p; depth = t.len })
  | None -> ());
  if Invariant.enabled () then
    Invariant.require ~name:"queue.occupancy-bounds"
      (t.len >= 0 && t.len <= t.capacity) (fun () ->
        Printf.sprintf "occupancy %d outside [0, %d]" t.len t.capacity)

(* A dropped packet's life ends here: account it, let the hook observe it,
   then return the record to the pool. *)
let drop t (p : Packet.t) =
  t.dropped <- t.dropped + 1;
  (match t.telem with
  | Some tl ->
    Tel.Metric.Counter.inc tl.c_dropped;
    Tel.Sink.event tl.sink ~time_ns:(tl.now ())
      (Tel.Event.Drop
         { queue = tl.queue; flow = Packet.flow p;
           subflow = Packet.subflow p; depth = t.len })
  | None -> ());
  (match t.on_drop with Some f -> f p | None -> ());
  Packet.release p;
  false

let enqueue t (p : Packet.t) =
  (* a blacked-out queue refuses everything; [drop] keeps the normal
     accounting so the loss is visible in counters and Drop events *)
  if t.blackout then drop t p
  else if t.len >= t.capacity then drop t p
  else begin
    match t.policy with
    | Droptail ->
      append t p;
      true
    | Threshold_mark k ->
      (* PAPER.md §BOS (Equation 1): the marking decision compares the
         *instantaneous* queue length against K as seen by the arriving
         packet, i.e. the occupancy *before* this packet is enqueued —
         the arrival does not count toward its own decision. [pre] and
         [ce_eligible] are captured before [mark]/[append] mutate
         anything so the invariant below checks the decision against
         independent state (the marked counter), in both directions:
         a mark only ever happens above K, and above K every
         CE-markable packet is marked. *)
      let pre = t.len in
      let ce_eligible = Packet.ect p && not (Packet.ce p) in
      let marked_before = t.marked in
      if pre > k then mark t p;
      append t p;
      if Invariant.enabled () then
        Invariant.require ~name:"queue.mark-above-threshold"
          (if t.marked > marked_before then pre > k
           else not (pre > k && ce_eligible))
          (fun () ->
            Printf.sprintf
              "ECN decision at pre-enqueue occupancy %d disagrees with K=%d \
               (marked %b, eligible %b)"
              pre k
              (t.marked > marked_before)
              ce_eligible);
      true
    | Red params -> (
      match red_decision t params with
      | `Pass ->
        append t p;
        true
      | `Force ->
        if params.mark_ecn && Packet.ect p then begin
          mark t p;
          append t p;
          true
        end
        else drop t p)
  end

let dequeue t =
  if t.len = 0 then None
  else begin
    t.len <- t.len - 1;
    (* RED idle-time correction, deterministically: classic RED decays
       [avg] by (1-wq)^m for m packet-times of idle before an arrival,
       because an average only updated on arrivals stays stale across an
       idle period. The queue has no clock, so the equivalent
       departure-driven form is used: every dequeue relaxes the average
       toward the instantaneous occupancy, and a drain-to-empty (what
       precedes every idle period) therefore leaves the first packet
       after the idle gap facing a decayed average instead of the
       pre-idle backlog. *)
    (match t.policy with
    | Red params ->
      t.avg <-
        ((1. -. params.wq) *. t.avg) +. (params.wq *. float_of_int t.len)
    | Droptail | Threshold_mark _ -> ());
    if Invariant.enabled () then
      Invariant.require ~name:"queue.occupancy-bounds" (t.len >= 0) (fun () ->
          Printf.sprintf "occupancy %d went negative" t.len);
    let p = t.ring.(t.head) in
    t.head <- (if t.head + 1 >= t.capacity then 0 else t.head + 1);
    (match t.telem with
    | Some tl ->
      Tel.Sink.event tl.sink ~time_ns:(tl.now ())
        (Tel.Event.Dequeue
           { queue = tl.queue; flow = Packet.flow p;
             subflow = Packet.subflow p; depth = t.len })
    | None -> ());
    Some p
  end

let clear t =
  let n = t.len in
  for i = 0 to n - 1 do
    let slot = t.head + i in
    let slot = if slot >= t.capacity then slot - t.capacity else slot in
    Packet.release t.ring.(slot)
  done;
  t.head <- 0;
  t.len <- 0;
  t.dropped <- t.dropped + n;
  n

let set_hooks t ?on_drop ?on_mark () =
  t.on_drop <- on_drop;
  t.on_mark <- on_mark

let set_blackout t b = t.blackout <- b
let blackout t = t.blackout

let enqueued t = t.enqueued
let dropped t = t.dropped
let marked t = t.marked
let max_length_seen t = t.max_len
let sample_length t = Xmp_stats.Running.add t.occupancy (float_of_int t.len)
let occupancy_stats t = t.occupancy
