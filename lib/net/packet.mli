(** Pooled, packed packets.

    Sequence numbers are in whole segments (one data packet carries one
    segment), matching the paper's packet-granularity window arithmetic.
    Wire sizes follow the paper's BDP computations: 1500-byte data packets
    (1460 B payload) and 60-byte ACKs.

    The representation is allocation-free on the hot path: header fields
    are packed into two immediate words (range-checked at construction),
    flags and the up-to-3 SACK blocks into fixed slots, and records are
    recycled through a domain-local free-list pool. {!data}, {!ack} and
    {!of_image} acquire from the pool; {!release} returns a record to it.

    Ownership rule: exactly one component owns a packet at any instant,
    and the owner either passes it on (link -> queue -> link -> dispatch)
    or releases it. The sinks that release are: endpoint dispatch after
    the handler returns ({!Network.dispatch}), queue-disc drops and
    clears, a link's ingress drop filter, and in-flight delivery on a
    downed link. Handlers must therefore copy anything they need out of
    the packet before returning — retaining a packet reads as garbage
    once the pool reuses it. *)

type kind = Data | Ack

type t

val data_wire_bytes : int
(** 1500 *)

val payload_bytes : int
(** 1460 *)

val ack_wire_bytes : int
(** 60 *)

(** {1 Packed-field ranges}

    Construction range-checks every header field; the limits are chosen
    so both packed words stay within OCaml's 63-bit immediate ints. *)

val max_flow : int
(** flows: 30 bits *)

val max_subflow : int
(** subflows: 12 bits *)

val max_host : int
(** src/dst host ids: 20 bits *)

val max_path : int
(** path selectors: 10 bits *)

val max_seq : int
(** sequence numbers: 31 bits *)

val max_ece : int
(** echoed CE count: 16 bits *)

(** {1 Constructors (pool acquires)} *)

val data :
  flow:int ->
  subflow:int ->
  src:int ->
  dst:int ->
  path:int ->
  seq:int ->
  ect:bool ->
  cwr:bool ->
  ts:Xmp_engine.Time.t ->
  t

val ack :
  ?sack:(int * int) list ->
  flow:int ->
  subflow:int ->
  src:int ->
  dst:int ->
  path:int ->
  seq:int ->
  ece_count:int ->
  ts:Xmp_engine.Time.t ->
  unit ->
  t
(** ACKs are not ECN-capable (per RFC 3168, ACKs are sent non-ECT).
    [sack] is a convenience for tests; the transport's hot path fills
    blocks with {!add_sack_block} instead. *)

val release : t -> unit
(** Returns the record to the current domain's pool. Raises
    [Invalid_argument] on a double release. *)

val dummy : t
(** A shared placeholder for preallocated slots (queue rings, wire
    registers). It never circulates: releasing it raises, and its fields
    read as zeros. *)

val pool_created : unit -> int
(** Records ever created by the current domain's pool (grows only when
    the pool runs dry). *)

val pool_free : unit -> int
(** Records currently available for reuse in the current domain's pool. *)

(** {1 Accessors} *)

val flow : t -> int
val subflow : t -> int

val src : t -> int
val dst : t -> int

val path : t -> int
(** path selector: models the destination address choice that steers a
    subflow onto one of the equal-cost paths *)

val kind : t -> kind
val is_ack : t -> bool

val size : t -> int
(** bytes on the wire, derived from the kind *)

val seq : t -> int
(** data: segment index; ack: cumulative acknowledgement (the next
    expected segment) *)

val ect : t -> bool
(** ECN-capable transport codepoint *)

val ce : t -> bool
(** Congestion Experienced, set by switches via {!set_ce} *)

val set_ce : t -> unit

val cwr : t -> bool
(** data only: Congestion Window Reduced (classic ECN) *)

val ece_count : t -> int
(** acks only: number of CE marks echoed by this ack. The paper's 2-bit
    ECE/CWR encoding caps this at 3 for XMP. *)

val ts : t -> Xmp_engine.Time.t
(** data: send timestamp; ack: echoed timestamp for RTT sampling *)

val endpoint_key : t -> int
(** The packet's (dst, flow, subflow) triple packed exactly as
    {!Network.Endpoint_key.pack} lays it out — endpoint dispatch reads
    the key straight out of the header word. *)

(** {1 SACK blocks}

    acks only: selective acknowledgement blocks [start, stop) of segments
    held above the cumulative ack, at most 3 (the option space of a real
    SACK header). *)

val sack_count : t -> int

val sack_start : t -> int -> int
(** [sack_start p i] for [i < sack_count p]; block bounds are 31-bit. *)

val sack_stop : t -> int -> int

val add_sack_block : t -> start:int -> stop:int -> unit
(** Appends a block; raises [Invalid_argument] past the third block or
    on bounds outside 31 bits. *)

val sack : t -> (int * int) list
(** The blocks as a list (allocates — tests and pretty-printers only). *)

(** {1 Cross-domain image}

    A shard boundary copies the packet's words into an immutable [image],
    releases the original into the sending domain's pool, and rebuilds
    with {!of_image} from the receiving domain's pool. *)

type image

val image : t -> image

val of_image : image -> t

val pp : Format.formatter -> t -> unit
