module Sim = Xmp_engine.Sim
module Time = Xmp_engine.Time

(* Cross-shard mail: a packet captured at a portal. The image is taken
   (and the record released into the sending domain's pool) the moment
   the packet finishes serializing; the portal's propagation delay is
   applied across the barrier, so [arrival] is exactly the delivery time
   the packet would have had on an ordinary link. *)
type mail = {
  arrival : Time.t;
  src_shard : int;
  emit_seq : int;  (* per-shard emission counter: total order within a shard *)
  img : Packet.image;
  dst_shard : int;
  dst_node : Node.t;
}

type shard = {
  sim : Sim.t;
  net : Network.t;
  mutable outbox_rev : mail list;
  mutable emitted : int;
}

type t = {
  shards : shard array;
  mutable min_portal_delay : Time.t;  (* Time.infinity until a portal exists *)
  mutable n_portals : int;
  mutable epoch : int;  (* next epoch window to run *)
  mutable injected : int;  (* lifetime mail count, for stats/tests *)
}

let create ?(config = Sim.default_config) ~shards:n () =
  if n < 1 then invalid_arg "Shard.create: need at least one shard";
  let shards =
    Array.init n (fun index ->
        (* distinct seed per shard so shards do not mirror each other's
           random choices; the offset is part of the reproducible setup *)
        let sim =
          Sim.create ~config:{ config with Sim.seed = config.seed + index } ()
        in
        { sim; net = Network.create sim; outbox_rev = []; emitted = 0 })
  in
  {
    shards;
    min_portal_delay = Time.infinity;
    n_portals = 0;
    epoch = 0;
    injected = 0;
  }

let n_shards t = Array.length t.shards

let check_index t i =
  if i < 0 || i >= Array.length t.shards then invalid_arg "Shard: index"

let net t i =
  check_index t i;
  t.shards.(i).net

let sim t i =
  check_index t i;
  t.shards.(i).sim

let epoch_delta t = t.min_portal_delay

let mail_injected t = t.injected

(* A portal is one directed cross-shard link. Serialization (and the
   egress queue) runs in the source shard at the given rate; the
   propagation [delay] is applied across the epoch barrier. [delay] is
   the conservative-parallelism lookahead, so it must be positive — the
   epoch length is the minimum portal delay, and mail emitted in epoch e
   then always arrives in epoch e+1 or later. *)
let portal t ?tag ~src:(src_shard, src_node) ~dst:(dst_shard, dst_node) ~rate
    ~delay ~disc () =
  check_index t src_shard;
  check_index t dst_shard;
  if src_shard = dst_shard then
    invalid_arg "Shard.portal: endpoints in the same shard";
  if Time.compare delay Time.zero <= 0 then
    invalid_arg "Shard.portal: delay must be positive (it is the lookahead)";
  let s = t.shards.(src_shard) in
  let name = Node.name src_node ^ "->" ^ Node.name dst_node in
  let receiver p =
    let m =
      {
        arrival = Time.add (Sim.now s.sim) delay;
        src_shard;
        emit_seq = s.emitted;
        img = Packet.image p;
        dst_shard;
        dst_node;
      }
    in
    s.emitted <- s.emitted + 1;
    s.outbox_rev <- m :: s.outbox_rev;
    Packet.release p
  in
  let link =
    Network.add_egress s.net ?tag ~name ~rate ~delay:Time.zero ~disc src_node
      receiver
  in
  if Time.compare delay t.min_portal_delay < 0 then t.min_portal_delay <- delay;
  t.n_portals <- t.n_portals + 1;
  link

(* ---- the epoch barrier ------------------------------------------------ *)

let mail_order a b =
  let c = Time.compare a.arrival b.arrival in
  if c <> 0 then c
  else
    let c = Int.compare a.src_shard b.src_shard in
    if c <> 0 then c else Int.compare a.emit_seq b.emit_seq

(* Drain every outbox, then inject in one deterministic total order:
   (arrival, src_shard, emit_seq). The order fixes the destination sims'
   insertion sequence numbers, which is what makes a domains-1 run and a
   domains-N run byte-identical. Runs on the orchestrating domain while
   the workers are parked at the barrier. *)
let inject t =
  let mails =
    Array.fold_left
      (fun acc s ->
        let ms = List.rev s.outbox_rev in
        s.outbox_rev <- [];
        ms :: acc)
      [] t.shards
    |> List.concat |> List.sort mail_order
  in
  List.iter
    (fun m ->
      let img = m.img and node = m.dst_node in
      Sim.at t.shards.(m.dst_shard).sim m.arrival (fun () ->
          Node.receive node (Packet.of_image img)))
    mails;
  let n = List.length mails in
  t.injected <- t.injected + n;
  n

let run_share t ~offset ~stride ~until =
  let n = Array.length t.shards in
  let i = ref offset in
  while !i < n do
    Sim.run ~until t.shards.(!i).sim;
    i := !i + stride
  done

(* Persistent worker crew: spawned once per [run] call, signalled once
   per epoch. Worker [w] owns shards {i | i mod domains = w+1}; the
   orchestrating domain takes residue 0 and runs the barrier phases
   (mail merge, injection) alone while the workers wait. The mutex
   hand-offs at the barrier are also the happens-before edges that
   publish each epoch's simulator state between domains. *)
type crew = {
  domains : int;
  mutex : Mutex.t;
  go : Condition.t;
  finished : Condition.t;
  mutable generation : int;
  mutable target : Time.t;
  mutable stop : bool;
  mutable completed : int;
  mutable failure : exn option;
  mutable handles : unit Domain.t list;
}

let worker t crew ~offset =
  let rec loop my_gen =
    Mutex.lock crew.mutex;
    while crew.generation = my_gen && not crew.stop do
      Condition.wait crew.go crew.mutex
    done;
    let stop = crew.stop in
    let gen = crew.generation in
    let target = crew.target in
    Mutex.unlock crew.mutex;
    if not stop then begin
      (match run_share t ~offset ~stride:crew.domains ~until:target with
      | () -> ()
      | exception e ->
        Mutex.lock crew.mutex;
        if crew.failure = None then crew.failure <- Some e;
        Mutex.unlock crew.mutex);
      Mutex.lock crew.mutex;
      crew.completed <- crew.completed + 1;
      Condition.signal crew.finished;
      Mutex.unlock crew.mutex;
      loop gen
    end
  in
  loop 0

let start_crew t ~domains =
  let crew =
    {
      domains;
      mutex = Mutex.create ();
      go = Condition.create ();
      finished = Condition.create ();
      generation = 0;
      target = Time.zero;
      stop = false;
      completed = 0;
      failure = None;
      handles = [];
    }
  in
  crew.handles <-
    List.init (domains - 1) (fun w ->
        Domain.spawn (fun () -> worker t crew ~offset:(w + 1)));
  crew

let crew_epoch t crew ~until =
  Mutex.lock crew.mutex;
  crew.target <- until;
  crew.completed <- 0;
  crew.generation <- crew.generation + 1;
  Condition.broadcast crew.go;
  Mutex.unlock crew.mutex;
  run_share t ~offset:0 ~stride:crew.domains ~until;
  Mutex.lock crew.mutex;
  while crew.completed < crew.domains - 1 do
    Condition.wait crew.finished crew.mutex
  done;
  let failure = crew.failure in
  Mutex.unlock crew.mutex;
  match failure with Some e -> raise e | None -> ()

let stop_crew crew =
  Mutex.lock crew.mutex;
  crew.stop <- true;
  Condition.broadcast crew.go;
  Mutex.unlock crew.mutex;
  List.iter Domain.join crew.handles

let min_next_event t =
  Array.fold_left
    (fun acc s -> Time.min acc (Sim.next_event_time s.sim))
    Time.infinity t.shards

let run ?(domains = 1) ?(until = Time.infinity) ?on_epoch t =
  if domains < 1 then invalid_arg "Shard.run: domains";
  if t.n_portals = 0 then begin
    (* no cross-shard edges: the shards are independent simulations and
       one pass each is the whole computation. The barrier hook still
       fires once so generators can seed their whole schedule. *)
    (match on_epoch with Some f -> ignore (f ~target:until) | None -> ());
    Array.iter (fun s -> Sim.run ~until s.sim) t.shards;
    ignore (inject t)
  end
  else begin
    let delta = t.min_portal_delay in
    let crew =
      if domains > 1 && Array.length t.shards > 1 then
        Some (start_crew t ~domains:(Stdlib.min domains (Array.length t.shards)))
      else None
    in
    let run_epoch ~until =
      match crew with
      | Some c -> crew_epoch t c ~until
      | None -> run_share t ~offset:0 ~stride:1 ~until
    in
    let finally () = match crew with Some c -> stop_crew c | None -> () in
    Fun.protect ~finally (fun () ->
        let continue = ref true in
        while !continue do
          (* epoch e covers [e*delta, (e+1)*delta); run is inclusive of
             its bound, hence the -1 *)
          let window_end = Time.mul delta (t.epoch + 1) - 1 in
          let target = Time.min until window_end in
          (* barrier hook: every worker is parked here, so the callback
             may mutate any shard (e.g. create cross-shard flows due in
             this window). It returns the time of its earliest remaining
             action beyond [target] (Time.infinity when exhausted), which
             joins the idle fast-forward below. *)
          let hint =
            match on_epoch with
            | Some f -> f ~target
            | None -> Time.infinity
          in
          run_epoch ~until:target;
          let injected = inject t in
          if target >= until then continue := false
          else begin
            (* the full window completed: advance, fast-forwarding over
               idle epochs when nothing is scheduled, no mail landed and
               the hook holds nothing sooner *)
            t.epoch <- t.epoch + 1;
            if injected = 0 then begin
              let nt = Time.min (min_next_event t) hint in
              if nt = Time.infinity || Time.compare nt until > 0 then begin
                (* nothing left inside the horizon: one last pass parks
                   every clock at [until] (matching Sim.run's cutoff
                   semantics), then stop *)
                if not (Time.is_infinite until) then run_epoch ~until;
                continue := false
              end
              else t.epoch <- Stdlib.max t.epoch (Time.div nt delta)
            end
          end
        done)
  end

let events_executed t =
  Array.fold_left (fun acc s -> acc + Sim.events_executed s.sim) 0 t.shards
