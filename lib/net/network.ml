module Sim = Xmp_engine.Sim

(* Endpoint dispatch is the per-packet hot path: every delivered packet
   looks up its (dst, flow, subflow) handler. A tuple-keyed Hashtbl hashes
   and compares the tuple structurally per packet; packing the three
   components into one immediate int (dst:20 | flow:30 | subflow:12 bits,
   62 bits total — injective within the validated ranges) makes the key
   hash one multiply and the bucket probe one integer compare. *)
module Endpoint_key = struct
  let subflow_bits = 12
  let flow_bits = 30
  let dst_bits = 20
  let max_subflow = (1 lsl subflow_bits) - 1
  let max_flow = (1 lsl flow_bits) - 1
  let max_dst = (1 lsl dst_bits) - 1

  let pack ~host ~flow ~subflow =
    (((host lsl flow_bits) lor flow) lsl subflow_bits) lor subflow

  let validate ~host ~flow ~subflow =
    if
      host < 0 || host > max_dst || flow < 0 || flow > max_flow
      || subflow < 0 || subflow > max_subflow
    then
      invalid_arg
        (Printf.sprintf
           "Network.register_endpoint: (%d, %d, %d) outside packed key \
            ranges (dst<=%d, flow<=%d, subflow<=%d)"
           host flow subflow max_dst max_flow max_subflow)
end

module Endpoints = Hashtbl.Make (struct
  type t = int

  let equal = Int.equal

  (* Fibonacci multiplicative mix: packed keys differ mostly in their low
     (subflow) and middle (flow) bits, so spread them before bucketing. *)
  let hash k = (k * 0x331A7B2F63C1) land max_int
end)

type t = {
  sim : Sim.t;
  mutable nodes : Node.t list;  (* reverse creation order *)
  mutable node_arr : Node.t option array;  (* indexed by node id *)
  mutable n_nodes : int;
  mutable next_id : int;
  mutable links_rev : Link.t list;
  mutable next_link : int;
  tags : (int, string) Hashtbl.t;  (* link id -> tag *)
  endpoints : (Packet.t -> unit) Endpoints.t;  (* packed (dst, flow, subflow) *)
  mutable delivered : int;
  mutable dead : int;
}

let create sim =
  {
    sim;
    nodes = [];
    node_arr = [||];
    n_nodes = 0;
    next_id = 0;
    links_rev = [];
    next_link = 0;
    tags = Hashtbl.create 64;
    endpoints = Endpoints.create 256;
    delivered = 0;
    dead = 0;
  }

let sim t = t.sim

(* Endpoint dispatch consumes the packet: whether a handler ran or the
   packet dead-lettered, the record returns to the pool when the handler
   is done with it. Handlers copy what they keep (the transport extracts
   scalars; traces format eagerly) — nothing downstream retains the
   record. The header word IS the endpoint key, and the lookup goes
   through [find] + [Not_found] so a delivery allocates nothing. *)
let dispatch t (p : Packet.t) =
  (match Endpoints.find t.endpoints (Packet.endpoint_key p) with
  | handler ->
    t.delivered <- t.delivered + 1;
    handler p
  | exception Not_found -> t.dead <- t.dead + 1);
  Packet.release p

let add_node_opt t ~id ~kind ~name =
  let id =
    match id with
    | None -> t.next_id
    | Some i ->
      if i < 0 || i > Endpoint_key.max_dst then
        invalid_arg "Network.add_node: id outside packed range";
      if i < Array.length t.node_arr && Option.is_some t.node_arr.(i) then
        invalid_arg (Printf.sprintf "Network.add_node: id %d taken" i);
      i
  in
  let node = Node.create ~kind ~id ~name in
  if id >= Array.length t.node_arr then begin
    let cap = Stdlib.max 16 (Stdlib.max (2 * Array.length t.node_arr) (id + 1)) in
    let arr = Array.make cap None in
    Array.blit t.node_arr 0 arr 0 (Array.length t.node_arr);
    t.node_arr <- arr
  end;
  t.node_arr.(id) <- Some node;
  t.n_nodes <- t.n_nodes + 1;
  if id >= t.next_id then t.next_id <- id + 1;
  t.nodes <- node :: t.nodes;
  (match kind with
  | Node.Host -> Node.set_local_rx node (dispatch t)
  | Node.Switch -> ());
  node

let add_host t ~name = add_node_opt t ~id:None ~kind:Node.Host ~name
let add_switch t ~name = add_node_opt t ~id:None ~kind:Node.Switch ~name

(* Sharded topologies place nodes at explicit ids so host addresses stay
   globally meaningful across shard networks (a packet's [dst] must name
   the same host in whichever shard decodes it). *)
let add_host_at t ~id ~name = add_node_opt t ~id:(Some id) ~kind:Node.Host ~name

let add_switch_at t ~id ~name =
  add_node_opt t ~id:(Some id) ~kind:Node.Switch ~name

let node t i =
  if i < 0 || i >= Array.length t.node_arr then invalid_arg "Network.node";
  match t.node_arr.(i) with
  | Some n -> n
  | None -> invalid_arg "Network.node"

let n_nodes t = t.n_nodes

(* An egress link delivers to an arbitrary callback instead of a peer
   node's receive — the seam shard portals use to carry packets across a
   domain boundary. The link still gets the next port number on [src],
   so topology builders can mix local links and portals freely as long
   as they keep their construction order. *)
let add_egress t ?tag ~name ~rate ~delay ~disc src receiver =
  let id = t.next_link in
  t.next_link <- id + 1;
  let link = Link.create ~sim:t.sim ~id ~name ~rate ~delay ~disc:(disc ()) in
  Link.set_receiver link receiver;
  ignore (Node.add_port src link);
  t.links_rev <- link :: t.links_rev;
  (match tag with Some tag -> Hashtbl.replace t.tags id tag | None -> ());
  link

let make_link t ?tag ~rate ~delay ~disc src dst =
  let name = Printf.sprintf "%s->%s" (Node.name src) (Node.name dst) in
  add_egress t ?tag ~name ~rate ~delay ~disc src (fun p -> Node.receive dst p)

let connect_asym t ?tag ~rate_fwd ~rate_rev ~delay ~disc a b =
  let fwd = make_link t ?tag ~rate:rate_fwd ~delay ~disc a b in
  let rev = make_link t ?tag ~rate:rate_rev ~delay ~disc b a in
  (fwd, rev)

let connect t ?tag ~rate ~delay ~disc a b =
  connect_asym t ?tag ~rate_fwd:rate ~rate_rev:rate ~delay ~disc a b

let links t = List.rev t.links_rev

let links_tagged t tag =
  List.filter
    (fun l -> Hashtbl.find_opt t.tags (Link.id l) = Some tag)
    (links t)

let tag_of_link t l = Hashtbl.find_opt t.tags (Link.id l)

let find_link t ~name =
  List.find_opt (fun l -> String.equal (Link.name l) name) (links t)

let register_endpoint t ~host ~flow ~subflow handler =
  Endpoint_key.validate ~host ~flow ~subflow;
  Endpoints.replace t.endpoints
    (Endpoint_key.pack ~host ~flow ~subflow)
    handler

let unregister_endpoint t ~host ~flow ~subflow =
  if
    host >= 0 && host <= Endpoint_key.max_dst && flow >= 0
    && flow <= Endpoint_key.max_flow
    && subflow >= 0
    && subflow <= Endpoint_key.max_subflow
  then Endpoints.remove t.endpoints (Endpoint_key.pack ~host ~flow ~subflow)

let packets_delivered t = t.delivered
let packets_dead_lettered t = t.dead
