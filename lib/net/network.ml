module Sim = Xmp_engine.Sim

type t = {
  sim : Sim.t;
  mutable nodes : Node.t list;  (* reverse creation order *)
  mutable node_arr : Node.t array;
  mutable n_nodes : int;
  mutable links_rev : Link.t list;
  mutable next_uid : int;
  mutable next_link : int;
  tags : (int, string) Hashtbl.t;  (* link id -> tag *)
  endpoints : (int * int * int, Packet.t -> unit) Hashtbl.t;
  mutable delivered : int;
  mutable dead : int;
}

let create sim =
  {
    sim;
    nodes = [];
    node_arr = [||];
    n_nodes = 0;
    links_rev = [];
    next_uid = 0;
    next_link = 0;
    tags = Hashtbl.create 64;
    endpoints = Hashtbl.create 256;
    delivered = 0;
    dead = 0;
  }

let sim t = t.sim

let fresh_uid t =
  let u = t.next_uid in
  t.next_uid <- u + 1;
  u

let dispatch t (p : Packet.t) =
  match Hashtbl.find_opt t.endpoints (p.dst, p.flow, p.subflow) with
  | Some handler ->
    t.delivered <- t.delivered + 1;
    handler p
  | None -> t.dead <- t.dead + 1

let add_node t ~kind ~name =
  let node = Node.create ~kind ~id:t.n_nodes ~name in
  if t.n_nodes = Array.length t.node_arr then begin
    let cap = if t.n_nodes = 0 then 16 else t.n_nodes * 2 in
    let arr = Array.make cap node in
    Array.blit t.node_arr 0 arr 0 t.n_nodes;
    t.node_arr <- arr
  end;
  t.node_arr.(t.n_nodes) <- node;
  t.n_nodes <- t.n_nodes + 1;
  t.nodes <- node :: t.nodes;
  (match kind with
  | Node.Host -> Node.set_local_rx node (dispatch t)
  | Node.Switch -> ());
  node

let add_host t ~name = add_node t ~kind:Node.Host ~name
let add_switch t ~name = add_node t ~kind:Node.Switch ~name

let node t i =
  if i < 0 || i >= t.n_nodes then invalid_arg "Network.node";
  t.node_arr.(i)

let n_nodes t = t.n_nodes

let make_link t ?tag ~rate ~delay ~disc src dst =
  let id = t.next_link in
  t.next_link <- id + 1;
  let name = Printf.sprintf "%s->%s" (Node.name src) (Node.name dst) in
  let link =
    Link.create ~sim:t.sim ~id ~name ~rate ~delay ~disc:(disc ())
  in
  Link.set_receiver link (fun p -> Node.receive dst p);
  ignore (Node.add_port src link);
  t.links_rev <- link :: t.links_rev;
  (match tag with Some tag -> Hashtbl.replace t.tags id tag | None -> ());
  link

let connect_asym t ?tag ~rate_fwd ~rate_rev ~delay ~disc a b =
  let fwd = make_link t ?tag ~rate:rate_fwd ~delay ~disc a b in
  let rev = make_link t ?tag ~rate:rate_rev ~delay ~disc b a in
  (fwd, rev)

let connect t ?tag ~rate ~delay ~disc a b =
  connect_asym t ?tag ~rate_fwd:rate ~rate_rev:rate ~delay ~disc a b

let links t = List.rev t.links_rev

let links_tagged t tag =
  List.filter
    (fun l -> Hashtbl.find_opt t.tags (Link.id l) = Some tag)
    (links t)

let tag_of_link t l = Hashtbl.find_opt t.tags (Link.id l)

let find_link t ~name =
  List.find_opt (fun l -> String.equal (Link.name l) name) (links t)

let register_endpoint t ~host ~flow ~subflow handler =
  Hashtbl.replace t.endpoints (host, flow, subflow) handler

let unregister_endpoint t ~host ~flow ~subflow =
  Hashtbl.remove t.endpoints (host, flow, subflow)

let packets_delivered t = t.delivered
let packets_dead_lettered t = t.dead
