module Time = Xmp_engine.Time

type locality = Inner_rack | Inter_rack | Inter_pod | Inter_dc

let locality_name = function
  | Inner_rack -> "Inner-Rack"
  | Inter_rack -> "Inter-Rack"
  | Inter_pod -> "Inter-Pod"
  | Inter_dc -> "Inter-DC"

let pp_locality fmt l = Format.pp_print_string fmt (locality_name l)

type t = {
  k : int;
  net : Network.t;
  host_base : int;
  n_hosts : int;
  rack_delay : Time.t;
  agg_delay : Time.t;
  core_delay : Time.t;
}

let layers = [ "core"; "aggregation"; "rack" ]

(* Host index [i] decomposes as (pod, edge, slot) with k/2 hosts per edge
   switch and (k/2)^2 hosts per pod. *)
let decompose ~k i =
  let half = k / 2 in
  let per_pod = half * half in
  (i / per_pod, i mod per_pod / half, i mod half)

let create ~net ~k ?(rate = Units.gbps 1.) ?(rack_delay = Time.us 20)
    ?(agg_delay = Time.us 30) ?(core_delay = Time.us 40) ~disc () =
  if k < 2 || k mod 2 <> 0 then invalid_arg "Fat_tree.create: k";
  let half = k / 2 in
  let n_hosts = k * half * half in
  let hosts =
    Array.init n_hosts (fun i ->
        let pod, edge, slot = decompose ~k i in
        Network.add_host net
          ~name:(Printf.sprintf "h%d.%d.%d" pod edge slot))
  in
  let edges =
    Array.init k (fun pod ->
        Array.init half (fun e ->
            Network.add_switch net ~name:(Printf.sprintf "e%d.%d" pod e)))
  in
  let aggs =
    Array.init k (fun pod ->
        Array.init half (fun a ->
            Network.add_switch net ~name:(Printf.sprintf "a%d.%d" pod a)))
  in
  let cores =
    Array.init half (fun g ->
        Array.init half (fun c ->
            Network.add_switch net ~name:(Printf.sprintf "c%d.%d" g c)))
  in
  let host_base = Node.id hosts.(0) in
  (* Rack layer: host [slot]'s uplink is its port 0; edge switch port to
     host [slot] is port [slot]. *)
  for pod = 0 to k - 1 do
    for e = 0 to half - 1 do
      for slot = 0 to half - 1 do
        let i = (pod * half * half) + (e * half) + slot in
        ignore
          (Network.connect net ~tag:"rack" ~rate ~delay:rack_delay ~disc
             hosts.(i)
             edges.(pod).(e))
      done
    done
  done;
  (* Aggregation layer: edge port to agg [a] is [half + a]; agg port to
     edge [e] is [e]. *)
  for pod = 0 to k - 1 do
    for e = 0 to half - 1 do
      for a = 0 to half - 1 do
        ignore
          (Network.connect net ~tag:"aggregation" ~rate ~delay:agg_delay
             ~disc
             edges.(pod).(e)
             aggs.(pod).(a))
      done
    done
  done;
  (* Core layer: agg [a] port to core offset [c] is [half + c]; core (g,c)
     port to pod [pod] is [pod]. Loop pods outer so core ports land in pod
     order. *)
  for pod = 0 to k - 1 do
    for a = 0 to half - 1 do
      for c = 0 to half - 1 do
        ignore
          (Network.connect net ~tag:"core" ~rate ~delay:core_delay ~disc
             aggs.(pod).(a)
             cores.(a).(c))
      done
    done
  done;
  let host_index id = id - host_base in
  let pod_of id = host_index id / (half * half) in
  let edge_of id = host_index id mod (half * half) / half in
  let slot_of id = host_index id mod half in
  Array.iter (fun h -> Node.set_route h (fun _ -> 0)) hosts;
  for pod = 0 to k - 1 do
    for e = 0 to half - 1 do
      Node.set_route
        edges.(pod).(e)
        (fun p ->
          let dst = Packet.dst p in
          if pod_of dst = pod && edge_of dst = e then slot_of dst
          else begin
            let a =
              if pod_of dst = pod then Packet.path p mod half
              else Packet.path p / half mod half
            in
            half + a
          end)
    done;
    for a = 0 to half - 1 do
      Node.set_route
        aggs.(pod).(a)
        (fun p ->
          let dst = Packet.dst p in
          if pod_of dst = pod then edge_of dst
          else half + (Packet.path p mod half))
    done
  done;
  for g = 0 to half - 1 do
    for c = 0 to half - 1 do
      Node.set_route cores.(g).(c) (fun p -> pod_of (Packet.dst p))
    done
  done;
  { k; net; host_base; n_hosts; rack_delay; agg_delay; core_delay }

let k t = t.k
let net t = t.net
let n_hosts t = t.n_hosts

let host_id t i =
  if i < 0 || i >= t.n_hosts then invalid_arg "Fat_tree.host_id";
  t.host_base + i

let host_index t id =
  let i = id - t.host_base in
  if i < 0 || i >= t.n_hosts then invalid_arg "Fat_tree.host_index";
  i

let locality t ~src ~dst =
  let pod_s, edge_s, _ = decompose ~k:t.k src
  and pod_d, edge_d, _ = decompose ~k:t.k dst in
  if pod_s <> pod_d then Inter_pod
  else if edge_s <> edge_d then Inter_rack
  else Inner_rack

let n_paths t ~src ~dst =
  let half = t.k / 2 in
  match locality t ~src ~dst with
  | Inner_rack -> 1
  | Inter_rack -> half
  | Inter_pod -> half * half
  | Inter_dc -> assert false (* both endpoints live in this tree *)

(* ---- link naming for fault schedules --------------------------------- *)

let check_pod t pod = if pod < 0 || pod >= t.k then invalid_arg "Fat_tree: pod"

let check_half t what i =
  if i < 0 || i >= t.k / 2 then invalid_arg ("Fat_tree: " ^ what)

let rack_uplink_name t ~pod ~edge ~agg =
  check_pod t pod;
  check_half t "edge" edge;
  check_half t "agg" agg;
  Printf.sprintf "e%d.%d->a%d.%d" pod edge pod agg

let rack_downlink_name t ~pod ~edge ~agg =
  check_pod t pod;
  check_half t "edge" edge;
  check_half t "agg" agg;
  Printf.sprintf "a%d.%d->e%d.%d" pod agg pod edge

let host_uplink_name t i =
  let pod, edge, slot = decompose ~k:t.k (host_index t (host_id t i)) in
  Printf.sprintf "h%d.%d.%d->e%d.%d" pod edge slot pod edge

let find_link_exn t name =
  match Network.find_link t.net ~name with
  | Some l -> l
  | None -> invalid_arg ("Fat_tree: no link named " ^ name)

let rack_uplink t ~pod ~edge ~agg =
  find_link_exn t (rack_uplink_name t ~pod ~edge ~agg)

let rack_downlink t ~pod ~edge ~agg =
  find_link_exn t (rack_downlink_name t ~pod ~edge ~agg)

let max_rtt_no_queue t =
  (* host-edge-agg-core-agg-edge-host, both directions *)
  let one_way =
    Time.add
      (Time.mul t.rack_delay 2)
      (Time.add (Time.mul t.agg_delay 2) (Time.mul t.core_delay 2))
  in
  Time.mul one_way 2
