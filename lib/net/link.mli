(** Unidirectional link: a serializing transmitter, a queue discipline, and
    a fixed propagation delay.

    A packet handed to {!send} is transmitted immediately if the link is
    idle, otherwise it passes through the queue discipline (where it may be
    CE-marked or dropped). Transmission takes [size * 8 / rate]; the packet
    then arrives at the receiver after the propagation delay. Multiple
    packets can be in flight on the wire simultaneously (transmission
    pipelining), as on a real link. *)

type t

val create :
  sim:Xmp_engine.Sim.t ->
  id:int ->
  name:string ->
  rate:Units.rate ->
  delay:Xmp_engine.Time.t ->
  disc:Queue_disc.t ->
  t
(** The receiver callback must be attached with {!set_receiver} before the
    first {!send}. *)

val set_receiver : t -> (Packet.t -> unit) -> unit

val wrap_receiver : t -> ((Packet.t -> unit) -> Packet.t -> unit) -> unit
(** [wrap_receiver t f] replaces the receiver [r] with [f r] — the hook
    point for taps and fault injectors (see {!Trace}). Must be called
    after the topology builder wired the link. *)

val set_drop_filter : t -> (Packet.t -> bool) option -> unit
(** Ingress loss hook: when set, every packet offered to {!send} on an up
    link is first shown to the filter, and discarded before reaching the
    queue if it returns [true]. The filter owns accounting/telemetry for
    what it kills (the fault injector counts drops and emits
    [Injected_drop] events). [None] (the default) disables the hook at the
    cost of one branch. *)

val id : t -> int

val name : t -> string

val rate : t -> Units.rate

val delay : t -> Xmp_engine.Time.t

val disc : t -> Queue_disc.t

val send : t -> Packet.t -> unit
(** Queue the packet for transmission. Dropped silently (with accounting)
    if the link is down or the queue rejects it. *)

val set_up : t -> bool -> unit
(** Taking a link down clears its queue and drops everything sent to it;
    bringing it back up resumes normal service. *)

val is_up : t -> bool

val bytes_sent : t -> int
(** Total wire bytes fully serialized so far (basis for utilization). *)

val packets_sent : t -> int

val utilization : t -> duration:Xmp_engine.Time.t -> float
(** [bytes_sent * 8 / (rate * duration)]. *)
