module Time = Xmp_engine.Time

(* Same geometry, addressing and routing as {!Fat_tree}, but built over a
   {!Shard} cluster with one shard per pod. Node ids are assigned
   explicitly so a host's address means the same thing in every shard's
   network; link construction follows Fat_tree's loop order exactly, so
   the port-indexed routing functions carry over unchanged whether a
   given hop is a local link or a portal. *)
type t = {
  k : int;
  cluster : Shard.t;
  n_hosts : int;
  rack_delay : Time.t;
  agg_delay : Time.t;
  core_delay : Time.t;
}

let decompose = Fat_tree.decompose

(* Explicit id layout: hosts first (host index = node id, so a packet's
   dst decomposes directly), then edge, aggregation and core switches. *)
let host_id_of ~k:_ i = i

let edge_id ~k ~n_hosts pod e = n_hosts + (pod * (k / 2)) + e

let agg_id ~k ~n_hosts pod a = n_hosts + (k * (k / 2)) + (pod * (k / 2)) + a

let core_id ~k ~n_hosts g c = n_hosts + (2 * k * (k / 2)) + (g * (k / 2)) + c

(* Core (g, c) lives in shard (g*half + c) mod k: the core layer spreads
   round-robin across the pod shards so no shard serializes all
   inter-pod contention. *)
let core_shard ~k g c = ((g * (k / 2)) + c) mod k

let create ?config ~k ?(rate = Units.gbps 1.) ?(rack_delay = Time.us 20)
    ?(agg_delay = Time.us 30) ?(core_delay = Time.us 40) ~disc () =
  if k < 2 || k mod 2 <> 0 then invalid_arg "Fat_tree_sharded.create: k";
  let half = k / 2 in
  let n_hosts = k * half * half in
  let cluster = Shard.create ?config ~shards:k () in
  let hosts =
    Array.init n_hosts (fun i ->
        let pod, edge, slot = decompose ~k i in
        Network.add_host_at (Shard.net cluster pod) ~id:(host_id_of ~k i)
          ~name:(Printf.sprintf "h%d.%d.%d" pod edge slot))
  in
  let edges =
    Array.init k (fun pod ->
        Array.init half (fun e ->
            Network.add_switch_at (Shard.net cluster pod)
              ~id:(edge_id ~k ~n_hosts pod e)
              ~name:(Printf.sprintf "e%d.%d" pod e)))
  in
  let aggs =
    Array.init k (fun pod ->
        Array.init half (fun a ->
            Network.add_switch_at (Shard.net cluster pod)
              ~id:(agg_id ~k ~n_hosts pod a)
              ~name:(Printf.sprintf "a%d.%d" pod a)))
  in
  let cores =
    Array.init half (fun g ->
        Array.init half (fun c ->
            Network.add_switch_at
              (Shard.net cluster (core_shard ~k g c))
              ~id:(core_id ~k ~n_hosts g c)
              ~name:(Printf.sprintf "c%d.%d" g c)))
  in
  (* Rack and aggregation layers are pod-local: ordinary links, in
     Fat_tree's construction order so port numbers match its routing. *)
  for pod = 0 to k - 1 do
    let net = Shard.net cluster pod in
    for e = 0 to half - 1 do
      for slot = 0 to half - 1 do
        let i = (pod * half * half) + (e * half) + slot in
        ignore
          (Network.connect net ~tag:"rack" ~rate ~delay:rack_delay ~disc
             hosts.(i)
             edges.(pod).(e))
      done
    done;
    for e = 0 to half - 1 do
      for a = 0 to half - 1 do
        ignore
          (Network.connect net ~tag:"aggregation" ~rate ~delay:agg_delay ~disc
             edges.(pod).(e)
             aggs.(pod).(a))
      done
    done
  done;
  (* Core layer: agg (pod, a) <-> core (a, c). A pair in the same shard
     is a local link; otherwise one portal per direction. Either way the
     agg's uplink to core c is its port [half + c] and core (g, c)'s
     downlinks land in pod order, as in Fat_tree. *)
  for pod = 0 to k - 1 do
    for a = 0 to half - 1 do
      for c = 0 to half - 1 do
        let cs = core_shard ~k a c in
        let agg = aggs.(pod).(a) and core = cores.(a).(c) in
        if cs = pod then
          ignore
            (Network.connect (Shard.net cluster pod) ~tag:"core" ~rate
               ~delay:core_delay ~disc agg core)
        else begin
          ignore
            (Shard.portal cluster ~tag:"core" ~src:(pod, agg) ~dst:(cs, core)
               ~rate ~delay:core_delay ~disc ());
          ignore
            (Shard.portal cluster ~tag:"core" ~src:(cs, core) ~dst:(pod, agg)
               ~rate ~delay:core_delay ~disc ())
        end
      done
    done
  done;
  (* Routing: identical formulas to Fat_tree, on globally meaningful
     host ids (host id = host index, so no base offset). *)
  let pod_of id = id / (half * half) in
  let edge_of id = id mod (half * half) / half in
  let slot_of id = id mod half in
  Array.iter (fun h -> Node.set_route h (fun _ -> 0)) hosts;
  for pod = 0 to k - 1 do
    for e = 0 to half - 1 do
      Node.set_route
        edges.(pod).(e)
        (fun p ->
          let dst = Packet.dst p in
          if pod_of dst = pod && edge_of dst = e then slot_of dst
          else begin
            let a =
              if pod_of dst = pod then Packet.path p mod half
              else Packet.path p / half mod half
            in
            half + a
          end)
    done;
    for a = 0 to half - 1 do
      Node.set_route
        aggs.(pod).(a)
        (fun p ->
          let dst = Packet.dst p in
          if pod_of dst = pod then edge_of dst
          else half + (Packet.path p mod half))
    done
  done;
  for g = 0 to half - 1 do
    for c = 0 to half - 1 do
      Node.set_route cores.(g).(c) (fun p -> pod_of (Packet.dst p))
    done
  done;
  { k; cluster; n_hosts; rack_delay; agg_delay; core_delay }

let k t = t.k
let cluster t = t.cluster
let n_hosts t = t.n_hosts

let host_id t i =
  if i < 0 || i >= t.n_hosts then invalid_arg "Fat_tree_sharded.host_id";
  i

let pod_of_host t i =
  ignore (host_id t i);
  let half = t.k / 2 in
  i / (half * half)

let host_net t i = Shard.net t.cluster (pod_of_host t i)

let locality t ~src ~dst =
  let pod_s, edge_s, _ = decompose ~k:t.k src
  and pod_d, edge_d, _ = decompose ~k:t.k dst in
  if pod_s <> pod_d then Fat_tree.Inter_pod
  else if edge_s <> edge_d then Fat_tree.Inter_rack
  else Fat_tree.Inner_rack

let n_paths t ~src ~dst =
  let half = t.k / 2 in
  match locality t ~src ~dst with
  | Fat_tree.Inner_rack -> 1
  | Fat_tree.Inter_rack -> half
  | Fat_tree.Inter_pod -> half * half
  | Fat_tree.Inter_dc -> assert false (* both endpoints live in this tree *)

let max_rtt_no_queue t =
  let one_way =
    Time.add
      (Time.mul t.rack_delay 2)
      (Time.add (Time.mul t.agg_delay 2) (Time.mul t.core_delay 2))
  in
  Time.mul one_way 2

let run ?domains ?until ?on_epoch t =
  Shard.run ?domains ?until ?on_epoch t.cluster
