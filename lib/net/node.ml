type kind = Host | Switch

type t = {
  id : int;
  kind : kind;
  name : string;
  mutable ports : Link.t array;
  mutable n_ports : int;
  mutable route : Packet.t -> int;
  mutable local_rx : Packet.t -> unit;
  mutable forwarded : int;
}

let no_route (p : Packet.t) =
  failwith (Format.asprintf "Node: no route installed for %a" Packet.pp p)

let no_local_rx (p : Packet.t) =
  failwith (Format.asprintf "Node: no local handler for %a" Packet.pp p)

let create ~kind ~id ~name =
  {
    id;
    kind;
    name;
    ports = [||];
    n_ports = 0;
    route = no_route;
    local_rx = no_local_rx;
    forwarded = 0;
  }

let id t = t.id
let kind t = t.kind
let name t = t.name

let add_port t link =
  if t.n_ports = Array.length t.ports then begin
    let cap = if t.n_ports = 0 then 4 else t.n_ports * 2 in
    let arr = Array.make cap link in
    Array.blit t.ports 0 arr 0 t.n_ports;
    t.ports <- arr
  end;
  t.ports.(t.n_ports) <- link;
  t.n_ports <- t.n_ports + 1;
  t.n_ports - 1

let port t i =
  if i < 0 || i >= t.n_ports then invalid_arg "Node.port";
  t.ports.(i)

let n_ports t = t.n_ports
let set_route t f = t.route <- f
let set_local_rx t f = t.local_rx <- f

let forward t p =
  t.forwarded <- t.forwarded + 1;
  let port = t.route p in
  Link.send t.ports.(port) p

let receive t (p : Packet.t) =
  match t.kind with
  | Host ->
    if Packet.dst p = t.id then t.local_rx p
    else
      failwith
        (Format.asprintf "Node %s: received transit packet %a" t.name
           Packet.pp p)
  | Switch -> forward t p

let send t p = forward t p
let packets_forwarded t = t.forwarded
