(** Two-tier leaf–spine (Clos) topology — the VL2-style multi-rooted tree
    of the paper's related work (§6 cites VL2; §5's Fat-Tree is the
    three-tier variant). Useful for checking that XMP's behaviour is not
    an artifact of the Fat-Tree's structure.

    [leaves] leaf switches with [hosts_per_leaf] hosts each, every leaf
    connected to every one of [spines] spine switches. A packet's [path]
    selector picks the spine ([path mod spines]), so inter-leaf host
    pairs have [spines] equal-cost paths; ACKs retrace the mirror path.
    Spine links are typically faster than host links (VL2 used 10 G up /
    1 G down). *)

type t

val create :
  net:Network.t ->
  leaves:int ->
  spines:int ->
  hosts_per_leaf:int ->
  ?host_rate:Units.rate ->
  ?spine_rate:Units.rate ->
  ?host_delay:Xmp_engine.Time.t ->
  ?spine_delay:Xmp_engine.Time.t ->
  disc:(unit -> Queue_disc.t) ->
  unit ->
  t
(** Defaults: 1 Gbps host links (20 µs), 10 Gbps spine links (30 µs).
    Link layer tags are ["leaf"] (host–leaf) and ["spine"] (leaf–spine). *)

val n_hosts : t -> int

val host_id : t -> int -> int
(** Node id of host index [i]. *)

val host_index : t -> int -> int

val same_leaf : t -> src:int -> dst:int -> bool
(** Whether two host indices share a leaf switch. *)

val uplink_name : t -> leaf:int -> spine:int -> string
(** ["leaf<l>->spine<s>"] — for addressing the uplink in a
    {!Xmp_engine.Fault_spec} schedule. Raises on out-of-range indices. *)

val downlink_name : t -> leaf:int -> spine:int -> string
(** ["spine<s>->leaf<l>"], the reverse direction. *)

val n_paths : t -> src:int -> dst:int -> int
(** 1 within a leaf, [spines] across leaves. *)

val layers : string list
(** [\["spine"; "leaf"\]]. *)
