module Time = Xmp_engine.Time

(* Two data centers joined by high-BDP border trunks. Each DC is a
   complete fat tree or leaf-spine built with the same loop orders (and
   therefore the same port-indexed routing) as {!Fat_tree} /
   {!Leaf_spine}, plus one border router per trunk hanging off the
   exit layer (cores, or spines). Host ids are globally unique — DC 0's
   hosts first, then DC 1's, switches after all hosts — so a border
   router classifies a packet as local or remote with one range check.

   The sharded backend puts each DC on its own {!Shard} and each trunk
   direction on a portal: the trunk delay (10–100 ms) is the epoch
   lookahead, dwarfing the intra-DC event horizon, so domains:1 and
   domains:N runs stay byte-identical at near-zero barrier cost. The
   flat backend lays the identical geometry on one {!Network} for
   single-sim closed-loop drivers. *)

type dc_spec =
  | Fat_tree_dc of { k : int }
  | Leaf_spine_dc of { leaves : int; spines : int; hosts_per_leaf : int }

type trunk = {
  trunk_rate : Units.rate;
  trunk_delay : Time.t;
  trunk_queue_pkts : int;
  trunk_marking_threshold : int option;
      (* None = droptail (deep-buffer WAN router); Some k = shallow
         ECN-marking border queue, the regime where Eq. 1 sizes K *)
}

let trunk ?(rate = Units.gbps 10.) ?(delay = Time.ms 40)
    ?(queue_pkts = 2000) ?marking_threshold () =
  if Time.compare delay Time.zero <= 0 then
    invalid_arg "Wan.trunk: delay must be positive";
  if queue_pkts < 1 then invalid_arg "Wan.trunk: queue_pkts";
  Option.iter
    (fun k -> if k < 1 then invalid_arg "Wan.trunk: marking_threshold")
    marking_threshold;
  {
    trunk_rate = rate;
    trunk_delay = delay;
    trunk_queue_pkts = queue_pkts;
    trunk_marking_threshold = marking_threshold;
  }

(* Default intra-DC layer delays, matching Fat_tree's and Leaf_spine's
   optional-argument defaults (zero_load_rtt below depends on them). *)
let rack_delay = Time.us 20
let agg_delay = Time.us 30
let core_delay = Time.us 40
let spine_delay = Time.us 30

let layers =
  [ "wan"; "border"; "core"; "aggregation"; "rack"; "leaf"; "spine" ]

let dc_n_hosts = function
  | Fat_tree_dc { k } -> k * (k / 2) * (k / 2)
  | Leaf_spine_dc { leaves; hosts_per_leaf; _ } -> leaves * hosts_per_leaf

(* Selector stratum consumed by the ascent to the exit layer: the trunk
   index is read from [path / up_div], so intra-DC path diversity and
   trunk choice are independent coordinates of one selector. *)
let dc_up_div = function
  | Fat_tree_dc { k } -> k / 2 * (k / 2)
  | Leaf_spine_dc { spines; _ } -> spines

type dc = {
  spec : dc_spec;
  host_base : int;
  borders : Node.t array;
}

type backend = Sharded of Shard.t | Flat of Network.t

type t = {
  backend : backend;
  dcs : dc array;  (* length 2 *)
  trunks : trunk array;
  n_hosts : int;
  min_trunk_delay : Time.t;
}

let validate_spec = function
  | Fat_tree_dc { k } ->
    if k < 2 || k mod 2 <> 0 then invalid_arg "Wan: fat-tree k"
  | Leaf_spine_dc { leaves; spines; hosts_per_leaf } ->
    if leaves < 1 || spines < 1 || hosts_per_leaf < 1 then
      invalid_arg "Wan: leaf-spine shape"

(* ---- per-DC construction --------------------------------------------

   [net] is the network this DC's nodes live in (its shard's, or the
   shared flat one). Returns the exit-layer switches in selector order;
   border wiring and routing for them is installed here, so the caller
   only wires border <-> border trunks. *)

let is_local ~host_base ~n dst = dst >= host_base && dst < host_base + n

let build_fat_tree ~net ~k ~host_base ~switch_base ~prefix ~rate ~disc
    ~n_trunks =
  let half = k / 2 in
  let n = k * half * half in
  let hosts =
    Array.init n (fun i ->
        let pod, edge, slot = Fat_tree.decompose ~k i in
        Network.add_host_at net ~id:(host_base + i)
          ~name:(Printf.sprintf "%s.h%d.%d.%d" prefix pod edge slot))
  in
  let edges =
    Array.init k (fun pod ->
        Array.init half (fun e ->
            Network.add_switch_at net
              ~id:(switch_base + (pod * half) + e)
              ~name:(Printf.sprintf "%s.e%d.%d" prefix pod e)))
  in
  let aggs =
    Array.init k (fun pod ->
        Array.init half (fun a ->
            Network.add_switch_at net
              ~id:(switch_base + (k * half) + (pod * half) + a)
              ~name:(Printf.sprintf "%s.a%d.%d" prefix pod a)))
  in
  let cores =
    Array.init half (fun g ->
        Array.init half (fun c ->
            Network.add_switch_at net
              ~id:(switch_base + (2 * k * half) + (g * half) + c)
              ~name:(Printf.sprintf "%s.c%d.%d" prefix g c)))
  in
  (* Fat_tree's wiring order, so its port-indexed routing carries over. *)
  for pod = 0 to k - 1 do
    for e = 0 to half - 1 do
      for slot = 0 to half - 1 do
        let i = (pod * half * half) + (e * half) + slot in
        ignore
          (Network.connect net ~tag:"rack" ~rate ~delay:rack_delay ~disc
             hosts.(i)
             edges.(pod).(e))
      done
    done;
    for e = 0 to half - 1 do
      for a = 0 to half - 1 do
        ignore
          (Network.connect net ~tag:"aggregation" ~rate ~delay:agg_delay
             ~disc
             edges.(pod).(e)
             aggs.(pod).(a))
      done
    done
  done;
  for pod = 0 to k - 1 do
    for a = 0 to half - 1 do
      for c = 0 to half - 1 do
        ignore
          (Network.connect net ~tag:"core" ~rate ~delay:core_delay ~disc
             aggs.(pod).(a)
             cores.(a).(c))
      done
    done
  done;
  let local = is_local ~host_base ~n in
  let pod_of id = (id - host_base) / (half * half) in
  let edge_of id = (id - host_base) mod (half * half) / half in
  let slot_of id = (id - host_base) mod half in
  let up_div = half * half in
  Array.iter (fun h -> Node.set_route h (fun _ -> 0)) hosts;
  for pod = 0 to k - 1 do
    for e = 0 to half - 1 do
      Node.set_route
        edges.(pod).(e)
        (fun p ->
          let dst = Packet.dst p in
          if local dst && pod_of dst = pod && edge_of dst = e then
            slot_of dst
          else begin
            (* remote destinations ascend like inter-pod traffic *)
            let a =
              if local dst && pod_of dst = pod then Packet.path p mod half
              else Packet.path p / half mod half
            in
            half + a
          end)
    done;
    for a = 0 to half - 1 do
      Node.set_route
        aggs.(pod).(a)
        (fun p ->
          let dst = Packet.dst p in
          if local dst && pod_of dst = pod then edge_of dst
          else half + (Packet.path p mod half))
    done
  done;
  (* Core port map: pods 0..k-1 (wired above), then border j at k + j
     (wired by the caller in j order). Remote traffic picks its trunk
     from the selector stratum above the intra-DC diversity. *)
  for g = 0 to half - 1 do
    for c = 0 to half - 1 do
      Node.set_route cores.(g).(c) (fun p ->
          let dst = Packet.dst p in
          if local dst then pod_of dst
          else k + (Packet.path p / up_div mod n_trunks))
    done
  done;
  Array.init (half * half) (fun i -> cores.(i / half).(i mod half))

let build_leaf_spine ~net ~leaves ~spines ~hosts_per_leaf ~host_base
    ~switch_base ~prefix ~rate ~disc ~n_trunks =
  let n = leaves * hosts_per_leaf in
  let hosts =
    Array.init n (fun i ->
        Network.add_host_at net ~id:(host_base + i)
          ~name:
            (Printf.sprintf "%s.h%d.%d" prefix (i / hosts_per_leaf)
               (i mod hosts_per_leaf)))
  in
  let leaf_sw =
    Array.init leaves (fun l ->
        Network.add_switch_at net ~id:(switch_base + l)
          ~name:(Printf.sprintf "%s.leaf%d" prefix l))
  in
  let spine_sw =
    Array.init spines (fun s ->
        Network.add_switch_at net ~id:(switch_base + leaves + s)
          ~name:(Printf.sprintf "%s.spine%d" prefix s))
  in
  for l = 0 to leaves - 1 do
    for slot = 0 to hosts_per_leaf - 1 do
      ignore
        (Network.connect net ~tag:"leaf" ~rate ~delay:rack_delay ~disc
           hosts.((l * hosts_per_leaf) + slot)
           leaf_sw.(l))
    done
  done;
  for l = 0 to leaves - 1 do
    for s = 0 to spines - 1 do
      ignore
        (Network.connect net ~tag:"spine" ~rate ~delay:spine_delay ~disc
           leaf_sw.(l)
           spine_sw.(s))
    done
  done;
  let local = is_local ~host_base ~n in
  let leaf_of id = (id - host_base) / hosts_per_leaf in
  let slot_of id = (id - host_base) mod hosts_per_leaf in
  Array.iter (fun h -> Node.set_route h (fun _ -> 0)) hosts;
  Array.iteri
    (fun l sw ->
      Node.set_route sw (fun p ->
          let dst = Packet.dst p in
          if local dst && leaf_of dst = l then slot_of dst
          else hosts_per_leaf + (Packet.path p mod spines)))
    leaf_sw;
  (* Spine port map: leaves 0..leaves-1, then border j at leaves + j. *)
  Array.iter
    (fun sw ->
      Node.set_route sw (fun p ->
          let dst = Packet.dst p in
          if local dst then leaf_of dst
          else leaves + (Packet.path p / spines mod n_trunks)))
    spine_sw;
  spine_sw

let dc_n_switches = function
  | Fat_tree_dc { k } -> (2 * k * (k / 2)) + (k / 2 * (k / 2))
  | Leaf_spine_dc { leaves; spines; _ } -> leaves + spines

let build_dc ~net ~spec ~host_base ~switch_base ~prefix ~rate ~disc
    ~n_trunks =
  let exits =
    match spec with
    | Fat_tree_dc { k } ->
      build_fat_tree ~net ~k ~host_base ~switch_base ~prefix ~rate ~disc
        ~n_trunks
    | Leaf_spine_dc { leaves; spines; hosts_per_leaf } ->
      build_leaf_spine ~net ~leaves ~spines ~hosts_per_leaf ~host_base
        ~switch_base ~prefix ~rate ~disc ~n_trunks
  in
  (exits, dc_n_switches spec)

(* Border router j: ports 0..n_exits-1 down to the exit switches (in
   selector order), port n_exits out to the WAN trunk. *)
let border_route ~host_base ~n ~n_exits =
  let local = is_local ~host_base ~n in
  fun p ->
    let dst = Packet.dst p in
    if local dst then Packet.path p mod n_exits else n_exits

let trunk_disc tr () =
  let policy =
    match tr.trunk_marking_threshold with
    | Some k -> Queue_disc.Threshold_mark k
    | None -> Queue_disc.Droptail
  in
  Queue_disc.create ~policy ~capacity_pkts:tr.trunk_queue_pkts

let trunk_link_name t ~from_dc ~trunk =
  if from_dc < 0 || from_dc > 1 then invalid_arg "Wan.trunk_link_name: dc";
  if trunk < 0 || trunk >= Array.length t.trunks then
    invalid_arg "Wan.trunk_link_name: trunk";
  Printf.sprintf "d%d.bdr%d->d%d.bdr%d" from_dc trunk (1 - from_dc) trunk

(* ---- assembly -------------------------------------------------------- *)

(* One-way propagation of a DC's ascent (host to exit layer) and of the
   exit-to-border attach hop; both also feed zero_load_rtt below. *)
let dc_ascent = function
  | Fat_tree_dc _ -> Time.add rack_delay (Time.add agg_delay core_delay)
  | Leaf_spine_dc _ -> Time.add rack_delay spine_delay

let dc_attach = function
  | Fat_tree_dc _ -> core_delay
  | Leaf_spine_dc _ -> spine_delay

let build ~net_of ~connect_trunk ~left ~right ~trunks ~rate ~disc =
  validate_spec left;
  validate_spec right;
  if trunks = [] then invalid_arg "Wan: at least one trunk required";
  let trunks = Array.of_list trunks in
  let n_trunks = Array.length trunks in
  let specs = [| left; right |] in
  let n0 = dc_n_hosts left in
  let n_hosts = n0 + dc_n_hosts right in
  let switch_cursor = ref n_hosts in
  let built =
    Array.mapi
      (fun d spec ->
        let host_base = if d = 0 then 0 else n0 in
        let exits, n_switches =
          build_dc ~net:(net_of d) ~spec ~host_base
            ~switch_base:!switch_cursor
            ~prefix:(Printf.sprintf "d%d" d)
            ~rate ~disc ~n_trunks
        in
        switch_cursor := !switch_cursor + n_switches;
        (spec, host_base, exits))
      specs
  in
  let dcs =
    Array.mapi
      (fun d (spec, host_base, exits) ->
        let borders =
          Array.init n_trunks (fun j ->
              let b =
                Network.add_switch_at (net_of d) ~id:!switch_cursor
                  ~name:(Printf.sprintf "d%d.bdr%d" d j)
              in
              incr switch_cursor;
              b)
        in
        (* j outer, exits inner: exit switch port for border j is
           (standard ports) + j, matching the exit-layer routing. *)
        Array.iteri
          (fun j b ->
            Array.iter
              (fun exit ->
                ignore
                  (Network.connect (net_of d) ~tag:"border"
                     ~rate:trunks.(j).trunk_rate ~delay:(dc_attach spec)
                     ~disc exit b))
              exits)
          borders;
        let n = dc_n_hosts spec in
        Array.iter
          (fun b ->
            Node.set_route b
              (border_route ~host_base ~n ~n_exits:(Array.length exits)))
          borders;
        { spec; host_base; borders })
      built
  in
  (* WAN trunks last: border j's trunk port is its port n_exits. *)
  Array.iteri
    (fun j tr ->
      connect_trunk ~trunk:j
        ~a:(0, dcs.(0).borders.(j))
        ~b:(1, dcs.(1).borders.(j))
        ~rate:tr.trunk_rate ~delay:tr.trunk_delay ~disc:(trunk_disc tr))
    trunks;
  let min_trunk_delay =
    Array.fold_left
      (fun acc tr -> Time.min acc tr.trunk_delay)
      Time.infinity trunks
  in
  (dcs, trunks, n_hosts, min_trunk_delay)

let create ?config ~left ~right ~trunks ?(rate = Units.gbps 1.) ~disc () =
  let cluster = Shard.create ?config ~shards:2 () in
  let net_of d = Shard.net cluster d in
  let connect_trunk ~trunk:_ ~a:(sa, na) ~b:(sb, nb) ~rate ~delay ~disc =
    ignore
      (Shard.portal cluster ~tag:"wan" ~src:(sa, na) ~dst:(sb, nb) ~rate
         ~delay ~disc ());
    ignore
      (Shard.portal cluster ~tag:"wan" ~src:(sb, nb) ~dst:(sa, na) ~rate
         ~delay ~disc ())
  in
  let dcs, trunks, n_hosts, min_trunk_delay =
    build ~net_of ~connect_trunk ~left ~right ~trunks ~rate ~disc
  in
  { backend = Sharded cluster; dcs; trunks; n_hosts; min_trunk_delay }

let create_flat ~net ~left ~right ~trunks ?(rate = Units.gbps 1.) ~disc () =
  let net_of _ = net in
  let connect_trunk ~trunk:_ ~a:(_, na) ~b:(_, nb) ~rate ~delay ~disc =
    ignore (Network.connect net ~tag:"wan" ~rate ~delay ~disc na nb)
  in
  let dcs, trunks, n_hosts, min_trunk_delay =
    build ~net_of ~connect_trunk ~left ~right ~trunks ~rate ~disc
  in
  { backend = Flat net; dcs; trunks; n_hosts; min_trunk_delay }

(* ---- accessors ------------------------------------------------------- *)

let n_hosts t = t.n_hosts

let n_trunks t = Array.length t.trunks

let host_id t i =
  if i < 0 || i >= t.n_hosts then invalid_arg "Wan.host_id";
  i

let dc_of_host t i =
  ignore (host_id t i);
  if i < t.dcs.(1).host_base then 0 else 1

let dc_spec t d =
  if d < 0 || d > 1 then invalid_arg "Wan.dc_spec";
  t.dcs.(d).spec

let cluster t =
  match t.backend with
  | Sharded c -> c
  | Flat _ -> invalid_arg "Wan.cluster: flat build has no shard cluster"

let net t =
  match t.backend with
  | Flat n -> n
  | Sharded _ -> invalid_arg "Wan.net: sharded build has one net per DC"

let host_net t i =
  match t.backend with
  | Flat n ->
    ignore (host_id t i);
    n
  | Sharded c -> Shard.net c (dc_of_host t i)

let run ?domains ?until ?on_epoch t =
  match t.backend with
  | Sharded c -> Shard.run ?domains ?until ?on_epoch c
  | Flat _ -> invalid_arg "Wan.run: drive the flat build's own simulator"

let dc_locality spec local_src local_dst =
  match spec with
  | Fat_tree_dc { k } ->
    let pod_s, edge_s, _ = Fat_tree.decompose ~k local_src
    and pod_d, edge_d, _ = Fat_tree.decompose ~k local_dst in
    if pod_s <> pod_d then Fat_tree.Inter_pod
    else if edge_s <> edge_d then Fat_tree.Inter_rack
    else Fat_tree.Inner_rack
  | Leaf_spine_dc { hosts_per_leaf; _ } ->
    if local_src / hosts_per_leaf = local_dst / hosts_per_leaf then
      Fat_tree.Inner_rack
    else Fat_tree.Inter_rack

let locality t ~src ~dst =
  let ds = dc_of_host t src and dd = dc_of_host t dst in
  if ds <> dd then Fat_tree.Inter_dc
  else
    let base = t.dcs.(ds).host_base in
    dc_locality t.dcs.(ds).spec (src - base) (dst - base)

let dc_intra_paths spec loc =
  match (spec, loc) with
  | _, Fat_tree.Inner_rack -> 1
  | Fat_tree_dc { k }, Fat_tree.Inter_rack -> k / 2
  | Fat_tree_dc { k }, Fat_tree.Inter_pod -> k / 2 * (k / 2)
  | Leaf_spine_dc { spines; _ }, (Fat_tree.Inter_rack | Fat_tree.Inter_pod)
    -> spines
  | _, Fat_tree.Inter_dc -> assert false

let n_paths t ~src ~dst =
  match locality t ~src ~dst with
  | Fat_tree.Inter_dc ->
    (* intra-DC diversity times trunk choice: the selector's low stratum
       spreads over the source tree's exit layer, the next one picks the
       trunk (the destination DC reuses the low stratum for descent) *)
    dc_up_div (t.dcs.(dc_of_host t src)).spec * Array.length t.trunks
  | loc -> dc_intra_paths (t.dcs.(dc_of_host t src)).spec loc

(* Zero-load round trips, from the fixed layer delays above. *)
let dc_zero_load_one_way spec loc =
  match (spec, loc) with
  | _, Fat_tree.Inner_rack -> Time.mul rack_delay 2
  | Fat_tree_dc _, Fat_tree.Inter_rack ->
    Time.add (Time.mul rack_delay 2) (Time.mul agg_delay 2)
  | Fat_tree_dc _, Fat_tree.Inter_pod ->
    Time.add
      (Time.mul rack_delay 2)
      (Time.add (Time.mul agg_delay 2) (Time.mul core_delay 2))
  | Leaf_spine_dc _, (Fat_tree.Inter_rack | Fat_tree.Inter_pod) ->
    Time.add (Time.mul rack_delay 2) (Time.mul spine_delay 2)
  | _, Fat_tree.Inter_dc -> assert false

let zero_load_rtt t ~src ~dst =
  let ds = dc_of_host t src and dd = dc_of_host t dst in
  let one_way =
    if ds = dd then
      dc_zero_load_one_way t.dcs.(ds).spec (locality t ~src ~dst)
    else
      let s = t.dcs.(ds).spec and d = t.dcs.(dd).spec in
      Time.add
        (Time.add (dc_ascent s) (dc_attach s))
        (Time.add t.min_trunk_delay
           (Time.add (dc_attach d) (dc_ascent d)))
  in
  Time.mul one_way 2

(* Static form of [max_rtt_no_queue]: lets callers size RTO floors and
   horizons from the specs alone, before any network exists. *)
let max_rtt_no_queue_of ~left ~right ~trunks =
  validate_spec left;
  validate_spec right;
  if trunks = [] then invalid_arg "Wan.max_rtt_no_queue_of: no trunks";
  let max_trunk =
    List.fold_left
      (fun acc tr -> Time.max acc tr.trunk_delay)
      Time.zero trunks
  in
  let one_way =
    Time.add
      (Time.add (dc_ascent left) (dc_attach left))
      (Time.add max_trunk (Time.add (dc_attach right) (dc_ascent right)))
  in
  Time.mul one_way 2

let max_rtt_no_queue t =
  let cross01 =
    zero_load_rtt t ~src:0 ~dst:(t.dcs.(1).host_base)
  in
  (* trunks may be slower than the minimum used by zero_load_rtt *)
  let max_trunk =
    Array.fold_left
      (fun acc tr -> Time.max acc tr.trunk_delay)
      Time.zero t.trunks
  in
  Time.add cross01
    (Time.mul (Time.sub max_trunk t.min_trunk_delay) 2)

let min_trunk_delay t = t.min_trunk_delay

let events_executed t =
  match t.backend with
  | Sharded c -> Shard.events_executed c
  | Flat n -> Xmp_engine.Sim.events_executed (Network.sim n)

let mail_injected t =
  match t.backend with Sharded c -> Shard.mail_injected c | Flat _ -> 0
