module Time = Xmp_engine.Time

type t = {
  leaves : int;
  spines : int;
  hosts_per_leaf : int;
  host_base : int;
}

let layers = [ "spine"; "leaf" ]

let create ~net ~leaves ~spines ~hosts_per_leaf
    ?(host_rate = Units.gbps 1.) ?(spine_rate = Units.gbps 10.)
    ?(host_delay = Time.us 20) ?(spine_delay = Time.us 30) ~disc () =
  if leaves < 1 || spines < 1 || hosts_per_leaf < 1 then
    invalid_arg "Leaf_spine.create";
  let n_hosts = leaves * hosts_per_leaf in
  let hosts =
    Array.init n_hosts (fun i ->
        Network.add_host net
          ~name:(Printf.sprintf "h%d.%d" (i / hosts_per_leaf) (i mod hosts_per_leaf)))
  in
  let leaf_sw =
    Array.init leaves (fun l ->
        Network.add_switch net ~name:(Printf.sprintf "leaf%d" l))
  in
  let spine_sw =
    Array.init spines (fun s ->
        Network.add_switch net ~name:(Printf.sprintf "spine%d" s))
  in
  let host_base = Node.id hosts.(0) in
  (* host [slot] <-> its leaf: leaf port [slot] points at the host *)
  for l = 0 to leaves - 1 do
    for slot = 0 to hosts_per_leaf - 1 do
      ignore
        (Network.connect net ~tag:"leaf" ~rate:host_rate ~delay:host_delay
           ~disc
           hosts.((l * hosts_per_leaf) + slot)
           leaf_sw.(l))
    done
  done;
  (* leaf <-> spine: leaf port [hosts_per_leaf + s]; spine port [l] *)
  for l = 0 to leaves - 1 do
    for s = 0 to spines - 1 do
      ignore
        (Network.connect net ~tag:"spine" ~rate:spine_rate
           ~delay:spine_delay ~disc
           leaf_sw.(l)
           spine_sw.(s))
    done
  done;
  let leaf_of id = (id - host_base) / hosts_per_leaf in
  let slot_of id = (id - host_base) mod hosts_per_leaf in
  Array.iter (fun h -> Node.set_route h (fun _ -> 0)) hosts;
  Array.iteri
    (fun l sw ->
      Node.set_route sw (fun p ->
          let dst = Packet.dst p in
          if leaf_of dst = l then slot_of dst
          else hosts_per_leaf + (Packet.path p mod spines)))
    leaf_sw;
  Array.iter
    (fun sw -> Node.set_route sw (fun p -> leaf_of (Packet.dst p)))
    spine_sw;
  { leaves; spines; hosts_per_leaf; host_base }

let n_hosts t = t.leaves * t.hosts_per_leaf

let host_id t i =
  if i < 0 || i >= n_hosts t then invalid_arg "Leaf_spine.host_id";
  t.host_base + i

let host_index t id =
  let i = id - t.host_base in
  if i < 0 || i >= n_hosts t then invalid_arg "Leaf_spine.host_index";
  i

let uplink_name t ~leaf ~spine =
  if leaf < 0 || leaf >= t.leaves then invalid_arg "Leaf_spine: leaf";
  if spine < 0 || spine >= t.spines then invalid_arg "Leaf_spine: spine";
  Printf.sprintf "leaf%d->spine%d" leaf spine

let downlink_name t ~leaf ~spine =
  if leaf < 0 || leaf >= t.leaves then invalid_arg "Leaf_spine: leaf";
  if spine < 0 || spine >= t.spines then invalid_arg "Leaf_spine: spine";
  Printf.sprintf "spine%d->leaf%d" spine leaf

let same_leaf t ~src ~dst = src / t.hosts_per_leaf = dst / t.hosts_per_leaf

let n_paths t ~src ~dst = if same_leaf t ~src ~dst then 1 else t.spines
