(* Bounded ring-buffer flight recorder.

   Recording is O(1) and never allocates beyond the entry itself; when the
   ring is full the oldest entry is overwritten, so a long run keeps the
   most recent [capacity] events and counts what it had to discard. *)

type entry = {
  time_ns : int;
  event : Event.t;
}

type t = {
  capacity : int;
  ring : entry option array;
  mutable next : int;  (* slot the next entry lands in *)
  mutable total : int;  (* entries ever recorded *)
}

let create ~capacity =
  if capacity <= 0 then
    invalid_arg "Telemetry.Recorder.create: capacity must be positive";
  { capacity; ring = Array.make capacity None; next = 0; total = 0 }

let capacity t = t.capacity
let total t = t.total
let length t = if t.total < t.capacity then t.total else t.capacity
let dropped t = if t.total > t.capacity then t.total - t.capacity else 0

let record t ~time_ns event =
  t.ring.(t.next) <- Some { time_ns; event };
  t.next <- (t.next + 1) mod t.capacity;
  t.total <- t.total + 1

let iter f t =
  let n = length t in
  let start = if t.total <= t.capacity then 0 else t.next in
  for i = 0 to n - 1 do
    match t.ring.((start + i) mod t.capacity) with
    | Some e -> f e
    | None -> ()
  done

let to_list t =
  let acc = ref [] in
  iter (fun e -> acc := e :: !acc) t;
  List.rev !acc

let clear t =
  Array.fill t.ring 0 t.capacity None;
  t.next <- 0;
  t.total <- 0
