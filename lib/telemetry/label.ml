(* Canonical label sets for telemetry metrics.

   A label set is a sorted association list of (key, value) pairs; sorting
   at construction makes the rendered form ("flow=3,subflow=1") a stable
   identity usable as part of a registry key. *)

type t = (string * string) list

let none = []

let check_component ~what s =
  if String.length s = 0 then
    invalid_arg (Printf.sprintf "Telemetry.Label: empty %s" what);
  String.iter
    (fun c ->
      match c with
      | '=' | ',' | '{' | '}' | '"' | '\n' ->
        invalid_arg
          (Printf.sprintf "Telemetry.Label: %s %S contains reserved %C" what s
             c)
      | _ -> ())
    s

let v pairs =
  List.iter
    (fun (k, value) ->
      check_component ~what:"key" k;
      check_component ~what:"value" value)
    pairs;
  let sorted =
    List.sort (fun (a, _) (b, _) -> String.compare a b) pairs
  in
  let rec check_dups = function
    | (a, _) :: ((b, _) :: _ as rest) ->
      if String.equal a b then
        invalid_arg
          (Printf.sprintf "Telemetry.Label: duplicate key %S" a);
      check_dups rest
    | [] | [ _ ] -> ()
  in
  check_dups sorted;
  sorted

let is_empty t = t = []

let to_string t =
  String.concat "," (List.map (fun (k, value) -> k ^ "=" ^ value) t)

let equal a b =
  List.length a = List.length b
  && List.for_all2
       (fun (ka, va) (kb, vb) -> String.equal ka kb && String.equal va vb)
       a b

let pp fmt t = Format.pp_print_string fmt (to_string t)
