(** Scalar metric shapes held by the telemetry {!Registry}.

    Every update is O(1) and every metric is bounded in memory regardless
    of sample count, so instrumentation on simulator hot paths cannot grow
    the heap with the length of a run. For unbounded-precision offline
    statistics use [Xmp_stats.Distribution] instead. *)

module Counter : sig
  (** A monotonically non-decreasing integer count. *)

  type t

  val create : unit -> t

  val inc : ?by:int -> t -> unit
  (** Adds [by] (default 1). @raise Invalid_argument if [by < 0]. *)

  val value : t -> int
end

module Gauge : sig
  (** A last-write-wins float sample. *)

  type t

  val create : unit -> t
  val set : t -> float -> unit

  val value : t -> float
  (** Most recent value; [0.] before any {!set}. *)

  val samples : t -> int
  (** Number of {!set} calls. *)
end

module Histogram : sig
  (** A log-bucketed histogram with bounded relative error.

      Samples [v > 0] land in bucket [floor(log v / log gamma)] where
      [gamma = 1 + precision]; percentiles read off the bucket midpoint are
      accurate to about [precision / 2] relative error. Samples [<= 0] are
      folded into a dedicated zero bucket; non-finite samples are ignored.
      Memory is proportional to the number of occupied buckets. *)

  type t

  val create : ?precision:float -> unit -> t
  (** Default [precision] 0.05 (5% bucket ratio).
      @raise Invalid_argument unless [0 < precision < 1]. *)

  val add : t -> float -> unit
  val count : t -> int
  val sum : t -> float

  val mean : t -> float
  (** Exact (tracked separately from the buckets); [0.] when empty. *)

  val min_value : t -> float
  (** Exact minimum; [0.] when empty. *)

  val max_value : t -> float
  (** Exact maximum; [0.] when empty. *)

  val percentile : t -> float -> float
  (** [percentile t p] for [p] in [0..100] (clamped), nearest-rank over
      the buckets, clamped to the observed [min/max]; [0.] when empty. *)
end
