(* The sink a simulation owns: a registry plus a flight recorder, with an
   [enabled] flag instrumentation sites test first. [null] is the shared
   disabled sink; emitting through it is a single load-and-branch, so
   un-instrumented runs pay essentially nothing. *)

type t = {
  enabled : bool;
  registry : Registry.t;
  recorder : Recorder.t;
}

let null =
  { enabled = false; registry = Registry.create (); recorder = Recorder.create ~capacity:1 }

let create ?(recorder_capacity = 65536) () =
  {
    enabled = true;
    registry = Registry.create ();
    recorder = Recorder.create ~capacity:recorder_capacity;
  }

let active t = t.enabled
let registry t = t.registry
let recorder t = t.recorder

let event t ~time_ns ev =
  if t.enabled then Recorder.record t.recorder ~time_ns ev

type scope = {
  sink : t;
  flow : int;
  subflow : int;
}

let unscoped = { sink = null; flow = 0; subflow = 0 }
let scope t ~flow ~subflow = { sink = t; flow; subflow }
