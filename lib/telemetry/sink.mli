(** The telemetry sink a simulation owns.

    A sink bundles a metrics {!Registry} with a flight {!Recorder} behind
    an [enabled] flag. Instrumentation sites hold the sink (or a {!scope}
    of it) and test {!active} before doing any work, so with the {!null}
    sink — the default for [Xmp_engine.Sim.create] — every instrumented
    hot path costs a single load-and-branch and records nothing.

    Lifecycle: a sink is created before the simulation ([create]), handed
    to [Sim.create] via [Sim.config], shared by reference with every
    component built over that sim (queues, links, transports, flows), and
    read out after [Sim.run] via {!registry} / {!recorder} and the
    {!Export} functions. Sinks are passive: they never schedule simulator
    events, so enabling one cannot perturb a run's trajectory. *)

type t

val null : t
(** The shared disabled sink. Never emits and never accumulates; its
    registry and recorder stay empty. *)

val create : ?recorder_capacity:int -> unit -> t
(** An enabled sink with a fresh registry and a flight recorder of
    [recorder_capacity] entries (default 65536).
    @raise Invalid_argument if [recorder_capacity <= 0]. *)

val active : t -> bool
(** [false] exactly for disabled sinks; the guard instrumentation sites
    test before building events or resolving metric handles. *)

val registry : t -> Registry.t
val recorder : t -> Recorder.t

val event : t -> time_ns:int -> Event.t -> unit
(** Records into the flight recorder; no-op when the sink is disabled.
    Prefer guarding with {!active} when constructing the event itself
    costs an allocation. *)

(** A sink pre-bound to one subflow's identity, threaded to congestion
    controllers through [Cc.view] so BOS / TraSh can emit events tagged
    with the right [flow]/[subflow] without knowing about transport
    internals. *)
type scope = {
  sink : t;
  flow : int;
  subflow : int;
}

val unscoped : scope
(** {!null} with zeroed identity — the default for hand-built views in
    tests. *)

val scope : t -> flow:int -> subflow:int -> scope
