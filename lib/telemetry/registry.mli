(** Central metrics registry.

    Metrics are keyed by ["subsystem/name"] plus an optional {!Label.t}
    set, rendered as e.g. ["net/queue_depth{queue=bottleneck0}"]. Accessors
    are get-or-create and memoizing: the first call registers the metric,
    subsequent calls with the same key return the same instance, and a key
    collision across metric types raises. Enumeration is sorted by full
    name, so exports are deterministic. *)

type metric =
  | Counter of Metric.Counter.t
  | Gauge of Metric.Gauge.t
  | Histogram of Metric.Histogram.t
  | Series of Xmp_stats.Timeseries.t

type t

val create : unit -> t

val counter :
  t -> ?labels:Label.t -> subsystem:string -> name:string -> unit ->
  Metric.Counter.t
(** @raise Invalid_argument on a reserved character in [subsystem]/[name]
    (slash, equals, comma, brace, double-quote or newline) or if the key exists as another
    metric type. *)

val gauge :
  t -> ?labels:Label.t -> subsystem:string -> name:string -> unit ->
  Metric.Gauge.t

val histogram :
  t -> ?labels:Label.t -> ?precision:float -> subsystem:string ->
  name:string -> unit -> Metric.Histogram.t
(** [precision] is only used when the call creates the histogram. *)

val series :
  t -> ?labels:Label.t -> subsystem:string -> name:string -> bucket:float ->
  horizon:float -> unit -> Xmp_stats.Timeseries.t
(** [bucket]/[horizon] (seconds) are only used when the call creates the
    series. *)

val cardinal : t -> int

val to_alist : t -> (string * metric) list
(** (full name, metric) pairs sorted by full name. *)

val iter : (string -> metric -> unit) -> t -> unit
(** In sorted full-name order. *)

val metric_type : metric -> string
(** ["counter"], ["gauge"], ["histogram"] or ["series"]. *)
