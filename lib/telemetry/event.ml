(* Typed trace events captured by the flight recorder.

   One constructor per instrumented phenomenon; the exporters flatten them
   onto a fixed column set (time_s, event, queue, flow, subflow, value) so
   a single CSV/JSONL schema covers every kind. *)

type t =
  | Enqueue of { queue : string; flow : int; subflow : int; depth : int }
  | Dequeue of { queue : string; flow : int; subflow : int; depth : int }
  | Ce_mark of { queue : string; flow : int; subflow : int; depth : int }
  | Drop of { queue : string; flow : int; subflow : int; depth : int }
  | Cwnd_change of { flow : int; subflow : int; cwnd : float }
  | Trash_delta of { flow : int; subflow : int; delta : float }
  | Retransmit of { flow : int; subflow : int; seq : int }
  | Rto_timeout of { flow : int; subflow : int }
  | Subflow_complete of { flow : int; subflow : int; acked : int }
  | Flow_complete of { flow : int; acked : int }
  | Link_down of { link : string }
  | Link_up of { link : string }
  | Injected_drop of { link : string; flow : int; subflow : int; seq : int }

let kind = function
  | Enqueue _ -> "enqueue"
  | Dequeue _ -> "dequeue"
  | Ce_mark _ -> "ce-mark"
  | Drop _ -> "drop"
  | Cwnd_change _ -> "cwnd-change"
  | Trash_delta _ -> "trash-delta"
  | Retransmit _ -> "retransmit"
  | Rto_timeout _ -> "rto-timeout"
  | Subflow_complete _ -> "subflow-complete"
  | Flow_complete _ -> "flow-complete"
  | Link_down _ -> "link-down"
  | Link_up _ -> "link-up"
  | Injected_drop _ -> "injected-drop"

let all_kinds =
  [
    "enqueue"; "dequeue"; "ce-mark"; "drop"; "cwnd-change"; "trash-delta";
    "retransmit"; "rto-timeout"; "subflow-complete"; "flow-complete";
    "link-down"; "link-up"; "injected-drop";
  ]

(* fault events reuse the queue column for the link name: both identify
   "the place in the network", and the CSV schema stays fixed *)
let queue = function
  | Enqueue e -> Some e.queue
  | Dequeue e -> Some e.queue
  | Ce_mark e -> Some e.queue
  | Drop e -> Some e.queue
  | Link_down e -> Some e.link
  | Link_up e -> Some e.link
  | Injected_drop e -> Some e.link
  | Cwnd_change _ | Trash_delta _ | Retransmit _ | Rto_timeout _
  | Subflow_complete _ | Flow_complete _ ->
    None

let flow = function
  | Enqueue e -> e.flow
  | Dequeue e -> e.flow
  | Ce_mark e -> e.flow
  | Drop e -> e.flow
  | Cwnd_change e -> e.flow
  | Trash_delta e -> e.flow
  | Retransmit e -> e.flow
  | Rto_timeout e -> e.flow
  | Subflow_complete e -> e.flow
  | Flow_complete e -> e.flow
  | Injected_drop e -> e.flow
  | Link_down _ | Link_up _ -> -1

let subflow = function
  | Enqueue e -> Some e.subflow
  | Dequeue e -> Some e.subflow
  | Ce_mark e -> Some e.subflow
  | Drop e -> Some e.subflow
  | Cwnd_change e -> Some e.subflow
  | Trash_delta e -> Some e.subflow
  | Retransmit e -> Some e.subflow
  | Rto_timeout e -> Some e.subflow
  | Subflow_complete e -> Some e.subflow
  | Injected_drop e -> Some e.subflow
  | Flow_complete _ | Link_down _ | Link_up _ -> None

(* the per-kind scalar payload: queue depth, cwnd, delta, seq or acked *)
let value = function
  | Enqueue e -> Some (float_of_int e.depth)
  | Dequeue e -> Some (float_of_int e.depth)
  | Ce_mark e -> Some (float_of_int e.depth)
  | Drop e -> Some (float_of_int e.depth)
  | Cwnd_change e -> Some e.cwnd
  | Trash_delta e -> Some e.delta
  | Retransmit e -> Some (float_of_int e.seq)
  | Rto_timeout _ -> None
  | Subflow_complete e -> Some (float_of_int e.acked)
  | Flow_complete e -> Some (float_of_int e.acked)
  | Injected_drop e -> Some (float_of_int e.seq)
  | Link_down _ | Link_up _ -> None

let csv_header = "time_s,event,queue,flow,subflow,value"

let time_s time_ns = float_of_int time_ns *. 1e-9

let to_csv ~time_ns ev =
  Printf.sprintf "%.9f,%s,%s,%s,%s,%s" (time_s time_ns) (kind ev)
    (match queue ev with Some q -> q | None -> "")
    (let f = flow ev in
     if f >= 0 then string_of_int f else "")
    (match subflow ev with Some s -> string_of_int s | None -> "")
    (match value ev with Some v -> Printf.sprintf "%.12g" v | None -> "")

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json ~time_ns ev =
  let buf = Buffer.create 96 in
  Buffer.add_string buf
    (Printf.sprintf "{\"time_s\":%.9f,\"event\":\"%s\"" (time_s time_ns)
       (kind ev));
  (match queue ev with
  | Some q ->
    Buffer.add_string buf (Printf.sprintf ",\"queue\":\"%s\"" (json_escape q))
  | None -> ());
  (let f = flow ev in
   if f >= 0 then Buffer.add_string buf (Printf.sprintf ",\"flow\":%d" f));
  (match subflow ev with
  | Some s -> Buffer.add_string buf (Printf.sprintf ",\"subflow\":%d" s)
  | None -> ());
  (match value ev with
  | Some v -> Buffer.add_string buf (Printf.sprintf ",\"value\":%.12g" v)
  | None -> ());
  Buffer.add_char buf '}';
  Buffer.contents buf
