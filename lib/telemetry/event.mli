(** Typed trace events recorded by the flight {!Recorder}.

    The taxonomy covers the phenomena the paper's evaluation hinges on:
    queue dynamics (enqueue / dequeue / CE mark / drop with the occupancy
    after the action), congestion control (cwnd changes from BOS, TraSh
    [delta] updates), loss recovery (retransmits, RTO timeouts), flow
    lifecycle (per-subflow and whole-flow completion) and injected faults
    (link transitions, scheduled packet kills). *)

type t =
  | Enqueue of { queue : string; flow : int; subflow : int; depth : int }
      (** packet accepted; [depth] is the occupancy after the enqueue *)
  | Dequeue of { queue : string; flow : int; subflow : int; depth : int }
      (** packet left for transmission; [depth] after the dequeue *)
  | Ce_mark of { queue : string; flow : int; subflow : int; depth : int }
      (** ECN CE codepoint set on an ECT packet *)
  | Drop of { queue : string; flow : int; subflow : int; depth : int }
      (** packet dropped (overflow or RED on a non-ECT packet) *)
  | Cwnd_change of { flow : int; subflow : int; cwnd : float }
      (** congestion-window update from the controller *)
  | Trash_delta of { flow : int; subflow : int; delta : float }
      (** TraSh coupling recomputed a subflow's additive-increase share *)
  | Retransmit of { flow : int; subflow : int; seq : int }
      (** segment [seq] re-sent (fast retransmit or go-back-N) *)
  | Rto_timeout of { flow : int; subflow : int }  (** watchdog fired *)
  | Subflow_complete of { flow : int; subflow : int; acked : int }
  | Flow_complete of { flow : int; acked : int }
  | Link_down of { link : string }
      (** a fault injector (or scenario) took [link] down *)
  | Link_up of { link : string }  (** [link] restored *)
  | Injected_drop of { link : string; flow : int; subflow : int; seq : int }
      (** the fault injector killed a packet on [link] (loss model) *)

val kind : t -> string
(** Stable lowercase name, e.g. ["ce-mark"]; the filter key used by
    [xmp_sim trace --events]. *)

val all_kinds : string list
(** Every {!kind} value, in declaration order. *)

val queue : t -> string option
(** The queue name — or, for the fault events, the link name: both
    identify "the place in the network" and share the CSV column. *)

val flow : t -> int
(** [-1] for events not attributable to a flow ({!Link_down}/{!Link_up});
    the exporters render those with an empty flow field. *)

val subflow : t -> int option

val value : t -> float option
(** The event's scalar payload: queue depth, cwnd, delta, seq or acked
    segments; [None] for {!Rto_timeout}. *)

val csv_header : string
(** ["time_s,event,queue,flow,subflow,value"] — the unified column set;
    fields an event kind lacks are left empty. *)

val to_csv : time_ns:int -> t -> string
(** One CSV row (no trailing newline) under {!csv_header}. *)

val to_json : time_ns:int -> t -> string
(** One JSON object (no trailing newline) with the fields present for the
    event's kind. *)

val json_escape : string -> string
(** Escapes double-quotes, backslashes and control characters for
    embedding in a JSON string literal (shared with the metrics
    exporter). *)
