(* Central metrics registry.

   Metrics are keyed by "subsystem/name{labels}"; the first lookup creates
   the metric and later lookups with the same key return the same instance,
   so instrumentation sites can resolve their handles once (at setup) or on
   every call with the same result. *)

type metric =
  | Counter of Metric.Counter.t
  | Gauge of Metric.Gauge.t
  | Histogram of Metric.Histogram.t
  | Series of Xmp_stats.Timeseries.t

type t = { metrics : (string, metric) Hashtbl.t }

let create () = { metrics = Hashtbl.create 64 }

let metric_type = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"
  | Series _ -> "series"

let check_component ~what s =
  if String.length s = 0 then
    invalid_arg (Printf.sprintf "Telemetry.Registry: empty %s" what);
  String.iter
    (fun c ->
      match c with
      | '=' | ',' | '{' | '}' | '"' | '\n' | '/' ->
        invalid_arg
          (Printf.sprintf "Telemetry.Registry: %s %S contains reserved %C"
             what s c)
      | _ -> ())
    s

let full_name ~subsystem ~name ~labels =
  check_component ~what:"subsystem" subsystem;
  check_component ~what:"name" name;
  let base = subsystem ^ "/" ^ name in
  if Label.is_empty labels then base
  else base ^ "{" ^ Label.to_string labels ^ "}"

let resolve t ~subsystem ~name ~labels ~make ~cast =
  let key = full_name ~subsystem ~name ~labels in
  match Hashtbl.find_opt t.metrics key with
  | Some m -> (
    match cast m with
    | Some v -> v
    | None ->
      invalid_arg
        (Printf.sprintf
           "Telemetry.Registry: %s already registered as a %s" key
           (metric_type m)))
  | None ->
    let m = make () in
    Hashtbl.add t.metrics key m;
    (match cast m with
    | Some v -> v
    | None -> assert false)

let counter t ?(labels = Label.none) ~subsystem ~name () =
  resolve t ~subsystem ~name ~labels
    ~make:(fun () -> Counter (Metric.Counter.create ()))
    ~cast:(function Counter c -> Some c | _ -> None)

let gauge t ?(labels = Label.none) ~subsystem ~name () =
  resolve t ~subsystem ~name ~labels
    ~make:(fun () -> Gauge (Metric.Gauge.create ()))
    ~cast:(function Gauge g -> Some g | _ -> None)

let histogram t ?(labels = Label.none) ?precision ~subsystem ~name () =
  resolve t ~subsystem ~name ~labels
    ~make:(fun () -> Histogram (Metric.Histogram.create ?precision ()))
    ~cast:(function Histogram h -> Some h | _ -> None)

let series t ?(labels = Label.none) ~subsystem ~name ~bucket ~horizon () =
  resolve t ~subsystem ~name ~labels
    ~make:(fun () ->
      Series (Xmp_stats.Timeseries.create ~bucket ~horizon))
    ~cast:(function Series s -> Some s | _ -> None)

let cardinal t = Hashtbl.length t.metrics

let to_alist t =
  Hashtbl.fold (fun k m acc -> (k, m) :: acc) t.metrics []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let iter f t = List.iter (fun (k, m) -> f k m) (to_alist t)
