(* The three scalar metric shapes held by the registry.

   All of them are O(1) per update and bounded in memory regardless of how
   many samples they absorb, so instrumented hot paths never accumulate
   per-sample state. *)

module Counter = struct
  type t = { mutable count : int }

  let create () = { count = 0 }

  let inc ?(by = 1) t =
    if by < 0 then invalid_arg "Telemetry.Metric.Counter.inc: negative";
    t.count <- t.count + by

  let value t = t.count
end

module Gauge = struct
  type t = {
    mutable value : float;
    mutable samples : int;
  }

  let create () = { value = 0.; samples = 0 }

  let set t v =
    t.value <- v;
    t.samples <- t.samples + 1

  let value t = t.value
  let samples t = t.samples
end

module Histogram = struct
  (* Logarithmic buckets: a sample v > 0 lands in bucket
     floor(log v / log gamma), so each bucket spans a fixed ratio gamma and
     a percentile read off the bucket midpoint carries a bounded *relative*
     error of about (gamma - 1) / 2, independent of the value range.
     Memory is O(occupied buckets), not O(samples). Samples <= 0 are
     folded into a dedicated zero bucket. *)
  type t = {
    gamma : float;
    log_gamma : float;
    counts : (int, int ref) Hashtbl.t;
    mutable zero : int;
    mutable n : int;
    mutable sum : float;
    mutable minv : float;
    mutable maxv : float;
  }

  let create ?(precision = 0.05) () =
    if (not (Float.is_finite precision)) || precision <= 0. || precision >= 1.
    then invalid_arg "Telemetry.Metric.Histogram.create: precision";
    let gamma = 1. +. precision in
    {
      gamma;
      log_gamma = Float.log gamma;
      counts = Hashtbl.create 64;
      zero = 0;
      n = 0;
      sum = 0.;
      minv = Float.infinity;
      maxv = Float.neg_infinity;
    }

  let add t v =
    if Float.is_finite v then begin
      t.n <- t.n + 1;
      t.sum <- t.sum +. v;
      if v < t.minv then t.minv <- v;
      if v > t.maxv then t.maxv <- v;
      if v <= 0. then t.zero <- t.zero + 1
      else begin
        let b = int_of_float (Float.floor (Float.log v /. t.log_gamma)) in
        match Hashtbl.find_opt t.counts b with
        | Some r -> incr r
        | None -> Hashtbl.add t.counts b (ref 1)
      end
    end

  let count t = t.n
  let sum t = t.sum
  let mean t = if t.n = 0 then 0. else t.sum /. float_of_int t.n
  let min_value t = if t.n = 0 then 0. else t.minv
  let max_value t = if t.n = 0 then 0. else t.maxv

  let percentile t p =
    if t.n = 0 then 0.
    else begin
      let p = Float.max 0. (Float.min 100. p) in
      (* nearest-rank, 1-based, consistent with Stats.Distribution's
         interpolation to within one bucket *)
      let rank =
        1 + int_of_float (Float.round (p /. 100. *. float_of_int (t.n - 1)))
      in
      if rank <= t.zero then 0.
      else begin
        let buckets =
          Hashtbl.fold (fun b r acc -> (b, !r) :: acc) t.counts []
          |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
        in
        let rec go seen = function
          | [] -> t.maxv
          | (b, c) :: rest ->
            let seen = seen + c in
            if rank <= seen then
              let lo = t.gamma ** float_of_int b in
              (* bucket midpoint, clamped to the observed range *)
              Float.min t.maxv
                (Float.max t.minv (lo *. (1. +. t.gamma) /. 2.))
            else go seen rest
        in
        go t.zero buckets
      end
    end
end
