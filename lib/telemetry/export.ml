(* Structured export of a run's telemetry.

   All functions build strings; writing them somewhere is the caller's
   business (the [xmp_sim trace] subcommand writes files, tests compare
   in memory). Output order is deterministic: recorder order for events,
   sorted full-name order for metrics. *)

let events_csv ?(keep = fun _ -> true) recorder =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf Event.csv_header;
  Buffer.add_char buf '\n';
  Recorder.iter
    (fun { Recorder.time_ns; event } ->
      if keep event then begin
        Buffer.add_string buf (Event.to_csv ~time_ns event);
        Buffer.add_char buf '\n'
      end)
    recorder;
  Buffer.contents buf

let events_jsonl ?(keep = fun _ -> true) recorder =
  let buf = Buffer.create 4096 in
  Recorder.iter
    (fun { Recorder.time_ns; event } ->
      if keep event then begin
        Buffer.add_string buf (Event.to_json ~time_ns event);
        Buffer.add_char buf '\n'
      end)
    recorder;
  Buffer.contents buf

let metrics_csv_header = "metric,type,count,value,mean,p50,p99,max"

let metrics_csv registry =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf metrics_csv_header;
  Buffer.add_char buf '\n';
  Registry.iter
    (fun name m ->
      let row =
        match m with
        | Registry.Counter c ->
          Printf.sprintf "%s,counter,%d,%d,,,," name
            (Metric.Counter.value c) (Metric.Counter.value c)
        | Registry.Gauge g ->
          Printf.sprintf "%s,gauge,%d,%.12g,,,," name (Metric.Gauge.samples g)
            (Metric.Gauge.value g)
        | Registry.Histogram h ->
          Printf.sprintf "%s,histogram,%d,%.12g,%.12g,%.12g,%.12g,%.12g" name
            (Metric.Histogram.count h) (Metric.Histogram.sum h)
            (Metric.Histogram.mean h)
            (Metric.Histogram.percentile h 50.)
            (Metric.Histogram.percentile h 99.)
            (Metric.Histogram.max_value h)
        | Registry.Series s ->
          let sums = Xmp_stats.Timeseries.sums s in
          let total = Array.fold_left ( +. ) 0. sums in
          Printf.sprintf "%s,series,%d,%.12g,,,," name (Array.length sums)
            total
      in
      Buffer.add_string buf row;
      Buffer.add_char buf '\n')
    registry;
  Buffer.contents buf

let metrics_jsonl registry =
  let buf = Buffer.create 1024 in
  Registry.iter
    (fun name m ->
      let line =
        match m with
        | Registry.Counter c ->
          Printf.sprintf
            "{\"metric\":\"%s\",\"type\":\"counter\",\"value\":%d}"
            (Event.json_escape name) (Metric.Counter.value c)
        | Registry.Gauge g ->
          Printf.sprintf
            "{\"metric\":\"%s\",\"type\":\"gauge\",\"value\":%.12g,\"samples\":%d}"
            (Event.json_escape name) (Metric.Gauge.value g)
            (Metric.Gauge.samples g)
        | Registry.Histogram h ->
          Printf.sprintf
            "{\"metric\":\"%s\",\"type\":\"histogram\",\"count\":%d,\"sum\":%.12g,\"mean\":%.12g,\"p50\":%.12g,\"p99\":%.12g,\"min\":%.12g,\"max\":%.12g}"
            (Event.json_escape name) (Metric.Histogram.count h)
            (Metric.Histogram.sum h) (Metric.Histogram.mean h)
            (Metric.Histogram.percentile h 50.)
            (Metric.Histogram.percentile h 99.)
            (Metric.Histogram.min_value h)
            (Metric.Histogram.max_value h)
        | Registry.Series s ->
          let sums = Xmp_stats.Timeseries.sums s in
          let body =
            String.concat ","
              (Array.to_list (Array.map (Printf.sprintf "%.12g") sums))
          in
          Printf.sprintf
            "{\"metric\":\"%s\",\"type\":\"series\",\"bucket_s\":%.12g,\"sums\":[%s]}"
            (Event.json_escape name)
            (Xmp_stats.Timeseries.bucket_width s)
            body
      in
      Buffer.add_string buf line;
      Buffer.add_char buf '\n')
    registry;
  Buffer.contents buf
