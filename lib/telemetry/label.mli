(** Canonical label sets attached to telemetry metrics.

    Labels distinguish instances of the same logical metric — e.g. the
    per-queue drop counter [net/drops] carries [queue=core0-agg1]. A label
    set is canonicalized (sorted by key) at construction so that its
    rendered form, e.g. ["flow=3,subflow=1"], is a stable identity that the
    {!Registry} can key on. *)

type t = private (string * string) list
(** Sorted, duplicate-free (key, value) pairs. *)

val none : t
(** The empty label set. *)

val v : (string * string) list -> t
(** Canonicalizes a label set: sorts pairs by key.

    @raise Invalid_argument on duplicate keys, empty components, or
    components containing one of the reserved characters
    equals, comma, brace, double-quote or newline. *)

val is_empty : t -> bool

val to_string : t -> string
(** ["k1=v1,k2=v2"] in key order; [""] for {!none}. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
