(** Structured export of a run's telemetry as CSV or JSONL strings.

    Pure string builders — callers decide where the bytes go ([xmp_sim
    trace] writes files; tests compare in memory). Output is
    deterministic: events in recorder (time) order, metrics sorted by full
    name. *)

val events_csv : ?keep:(Event.t -> bool) -> Recorder.t -> string
(** Header line ({!Event.csv_header}) plus one row per retained event
    passing [keep] (default: all). *)

val events_jsonl : ?keep:(Event.t -> bool) -> Recorder.t -> string
(** One JSON object per line, no header. *)

val metrics_csv_header : string

val metrics_csv : Registry.t -> string
(** Columns [metric,type,count,value,mean,p50,p99,max]; columns a metric
    type lacks are empty. For counters [value] is the count; for gauges
    the last sample; for histograms the sum; for series the total. *)

val metrics_jsonl : Registry.t -> string
(** One JSON object per metric with type-specific fields (histograms get
    count/sum/mean/p50/p99/min/max; series get [bucket_s] and the full
    [sums] array). *)
