(** Bounded ring-buffer flight recorder for trace {!Event}s.

    Recording is O(1); once {!capacity} entries are held, each new entry
    overwrites the oldest, so a recorder always retains the most recent
    window of a run and reports how much it had to discard. Timestamps are
    integer nanoseconds of simulated time (the representation of
    [Xmp_engine.Time.t]). *)

type entry = {
  time_ns : int;
  event : Event.t;
}

type t

val create : capacity:int -> t
(** @raise Invalid_argument if [capacity <= 0]. *)

val capacity : t -> int

val record : t -> time_ns:int -> Event.t -> unit

val total : t -> int
(** Entries ever recorded, including overwritten ones. *)

val length : t -> int
(** Entries currently retained: [min total capacity]. *)

val dropped : t -> int
(** Entries lost to overwriting: [max 0 (total - capacity)]. *)

val iter : (entry -> unit) -> t -> unit
(** Oldest retained entry first. *)

val to_list : t -> entry list
(** Oldest retained entry first. *)

val clear : t -> unit
