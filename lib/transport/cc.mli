(** Pluggable congestion-control interface.

    A congestion controller owns [cwnd] (in segments) and reacts to the
    events the connection machinery reports. The connection reads the
    window through {!cwnd} before sending.

    Controllers that need connection state (sequence numbers for round
    tracking, smoothed RTT) receive a read-only {!view} at construction
    time. *)

type view = {
  snd_una : unit -> int;  (** highest unacknowledged segment *)
  snd_nxt : unit -> int;  (** next segment to be sent *)
  srtt : unit -> Xmp_engine.Time.t;  (** smoothed RTT *)
  min_rtt : unit -> Xmp_engine.Time.t;
  now : unit -> Xmp_engine.Time.t;
  telemetry : Xmp_telemetry.Sink.scope;
      (** the connection's telemetry sink, pre-bound to this subflow's
          [flow]/[subflow] identity, so controllers can emit cwnd-change /
          TraSh-delta events without knowing transport internals.
          Hand-built views use [Xmp_telemetry.Sink.unscoped]. *)
}

type t = {
  name : string;
  cwnd : unit -> float;
      (** current congestion window in segments; the connection sends while
          flight-size < ⌊cwnd⌋ (at least 1). *)
  on_ack : ack:int -> newly_acked:int -> ce_count:int -> unit;
      (** a cumulative ACK advanced [snd_una] by [newly_acked] segments;
          [ce_count] CE echoes rode on it. *)
  on_ecn : count:int -> unit;
      (** an ACK (including a duplicate) carried [count ≥ 1] CE echoes.
          Called before {!on_ack} for the same ACK. *)
  on_fast_retransmit : unit -> unit;
      (** third duplicate ACK: a loss was repaired by fast retransmit. *)
  on_timeout : unit -> unit;  (** retransmission timeout fired. *)
  in_slow_start : unit -> bool;
  take_cwr : unit -> bool;
      (** classic-ECN support: [true] exactly once after an ECN-triggered
          reduction, telling the sender to set CWR on its next data
          packet. Controllers that repurpose CWR (XMP) always return
          [false]. *)
}

type factory = view -> t
(** How connections are given their controller. *)

val nop_take_cwr : unit -> bool
(** Always [false]; convenience for controllers without classic ECN. *)
