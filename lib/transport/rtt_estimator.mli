(** RTT estimation and retransmission timeout per RFC 6298, with the
    configurable RTO floor that drives the paper's incast results
    (RTOmin = 200 ms). *)

type t

val create : ?rto_min:Xmp_engine.Time.t -> ?rto_max:Xmp_engine.Time.t ->
  ?granularity:Xmp_engine.Time.t -> unit -> t
(** Defaults: [rto_min] 200 ms, [rto_max] 60 s, [granularity] 200 µs.
    [granularity] is the clock term [G] in RFC 6298's
    [RTO = SRTT + max (G, 4 * RTTVAR)]: it keeps the timeout strictly
    above srtt even once rttvar has decayed on a steady path, which
    matters as soon as [rto_min] drops below the delayed-ACK hold. *)

val sample : t -> Xmp_engine.Time.t -> unit
(** Feeds one RTT measurement. *)

val has_sample : t -> bool

val srtt : t -> Xmp_engine.Time.t
(** Smoothed RTT; the initial default (200 ms) before any sample. *)

val rttvar : t -> Xmp_engine.Time.t

val rto : t -> Xmp_engine.Time.t
(** [clamp (srtt + max (granularity, 4 * rttvar))] with the current
    backoff applied. *)

val backoff : t -> unit
(** Doubles the RTO (up to [rto_max]) after a retransmission timeout. *)

val reset_backoff : t -> unit
(** Called when new data is acknowledged. *)

val min_rtt : t -> Xmp_engine.Time.t
(** Smallest sample seen; [Time.infinity] before any sample. *)
