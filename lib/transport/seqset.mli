(** Sets of segment numbers as sorted, disjoint, non-adjacent
    [[start, stop)] intervals.

    The representation the TCP SACK scoreboard and the receiver's reorder
    buffer share: all operations are O(number of blocks), and a block list
    is already the wire format of a SACK option ({!blocks} is free).
    Values are immutable; operations return the new set. *)

type t

val empty : t

val is_empty : t -> bool

val mem : int -> t -> bool

val add : int -> t -> t
(** [add x t] = [add_range ~start:x ~stop:(x + 1) t]. *)

val add_range : start:int -> stop:int -> t -> t
(** Unions [[start, stop)] into the set, merging overlapping and adjacent
    blocks. Empty ranges ([start >= stop]) are a no-op. *)

val remove_below : int -> t -> t
(** [remove_below b t] drops every member < [b] — how the scoreboard is
    pruned as [snd_una] advances, keeping the set bounded by data in
    flight. *)

val first_absent_from : int -> t -> int
(** [first_absent_from x t] is the smallest [y >= x] with [y] not in
    [t] — the next hole at or after [x]. *)

val consume_from : int -> t -> int * t
(** [consume_from x t] is [(stop, rest)] if a block [[x, stop)] starts
    exactly at [x] (the block removed), else [(x, t)] — how the receiver
    advances [rcv_nxt] across buffered out-of-order data in one step. *)

val blocks : t -> (int * int) list
(** The maximal [[start, stop)] runs in ascending order. *)

val n_blocks : t -> int

val cardinal : t -> int
(** Total members across all blocks. *)
