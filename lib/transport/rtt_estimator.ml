module Time = Xmp_engine.Time

type t = {
  rto_min : Time.t;
  rto_max : Time.t;
  granularity : Time.t;
  mutable srtt : Time.t;
  mutable rttvar : Time.t;
  mutable has_sample : bool;
  mutable backoff : int;  (* power-of-two multiplier exponent *)
  mutable min_rtt : Time.t;
}

let default_rto_min = Time.ms 200
let default_rto_max = Time.sec 60.
let default_granularity = Time.us 200

let create ?(rto_min = default_rto_min) ?(rto_max = default_rto_max)
    ?(granularity = default_granularity) () =
  {
    rto_min;
    rto_max;
    granularity;
    srtt = Time.ms 200;
    rttvar = Time.ms 100;
    has_sample = false;
    backoff = 0;
    min_rtt = Time.infinity;
  }

let sample t rtt =
  if Time.compare rtt Time.zero < 0 then
    invalid_arg "Rtt_estimator.sample: negative";
  if Time.compare rtt t.min_rtt < 0 then t.min_rtt <- rtt;
  if not t.has_sample then begin
    t.srtt <- rtt;
    t.rttvar <- Time.div rtt 2;
    t.has_sample <- true
  end
  else begin
    (* RFC 6298: alpha = 1/8, beta = 1/4 *)
    let err = abs (Time.sub t.srtt rtt) in
    t.rttvar <- Time.div (Time.add (Time.mul t.rttvar 3) err) 4;
    t.srtt <- Time.div (Time.add (Time.mul t.srtt 7) rtt) 8
  end

let has_sample t = t.has_sample
let srtt t = t.srtt
let rttvar t = t.rttvar

let rto t =
  (* RFC 6298 (2.4): RTO = SRTT + max(G, 4 * RTTVAR). Without the
     granularity term rttvar decays geometrically toward zero on a
     steady path, and with a small rto_min the RTO converges to ~srtt —
     so the delayed-ACK hold on a transfer's last odd segment fires a
     spurious timeout on a perfectly clean link. The 200 ms default
     floor masked this; WAN-scale floors (~ms) don't. *)
  let base =
    Time.add t.srtt (Time.max t.granularity (Time.mul t.rttvar 4))
  in
  let clamped = Time.max t.rto_min (Time.min t.rto_max base) in
  let backed = clamped * (1 lsl Stdlib.min t.backoff 16) in
  Time.min t.rto_max backed

let backoff t = t.backoff <- t.backoff + 1
let reset_backoff t = t.backoff <- 0
let min_rtt t = t.min_rtt
