module Time = Xmp_engine.Time

type params = {
  g : float;
  init_alpha : float;
  init_cwnd : float;
  min_cwnd : float;
  d_min : float;
  d_max : float;
}

let default_params =
  {
    g = 1. /. 16.;
    init_alpha = 1.;
    init_cwnd = 3.;
    min_cwnd = 1.;
    d_min = 0.5;
    d_max = 2.0;
  }

type deadline = { total_segments : int; deadline_at : Time.t }

let imminence ~params ~remaining_segments ~rate_segments_per_s ~time_left_s =
  if remaining_segments <= 0 then params.d_min
  else if time_left_s <= 0. || rate_segments_per_s <= 0. then params.d_max
  else begin
    let needed_s = float_of_int remaining_segments /. rate_segments_per_s in
    Float.min params.d_max (Float.max params.d_min (needed_s /. time_left_s))
  end

type state = {
  params : params;
  deadline : deadline option;
  acked : unit -> int;
  view : Cc.view;
  mutable cwnd : float;
  mutable ssthresh : float;
  mutable alpha : float;
  mutable window_end : int;
  mutable acked_in_window : int;
  mutable marked_in_window : int;
  mutable reduced_this_window : bool;
}

let current_d s =
  match s.deadline with
  | None -> 1.
  | Some dl ->
    let now = s.view.Cc.now () in
    let srtt = s.view.Cc.srtt () in
    let rate =
      if Time.compare srtt Time.zero > 0 then s.cwnd /. Time.to_float_s srtt
      else 0.
    in
    imminence ~params:s.params
      ~remaining_segments:(dl.total_segments - s.acked ())
      ~rate_segments_per_s:rate
      ~time_left_s:(Time.to_float_s (Time.sub dl.deadline_at now))

let make_cc ?(params = default_params) ?deadline ~acked () view =
  let s =
    {
      params;
      deadline;
      acked;
      view;
      cwnd = params.init_cwnd;
      ssthresh = Float.max_float;
      alpha = params.init_alpha;
      window_end = 0;
      acked_in_window = 0;
      marked_in_window = 0;
      reduced_this_window = false;
    }
  in
  let in_slow_start () = s.cwnd < s.ssthresh in
  let on_ecn ~count:_ =
    let was_slow_start = in_slow_start () in
    if not s.reduced_this_window then begin
      s.reduced_this_window <- true;
      (* the D2TCP gamma correction: penalty = alpha^d / 2 *)
      let p = (s.alpha ** current_d s) /. 2. in
      s.cwnd <- Float.max s.params.min_cwnd (s.cwnd *. (1. -. p))
    end;
    if was_slow_start then
      s.ssthresh <- Float.max s.params.min_cwnd s.cwnd
  in
  let on_ack ~ack ~newly_acked ~ce_count =
    s.acked_in_window <- s.acked_in_window + newly_acked;
    s.marked_in_window <- s.marked_in_window + ce_count;
    if ack > s.window_end then begin
      if s.acked_in_window > 0 then begin
        let f =
          float_of_int s.marked_in_window /. float_of_int s.acked_in_window
        in
        s.alpha <-
          ((1. -. s.params.g) *. s.alpha) +. (s.params.g *. Float.min 1. f)
      end;
      s.acked_in_window <- 0;
      s.marked_in_window <- 0;
      s.reduced_this_window <- false;
      s.window_end <- s.view.Cc.snd_nxt ()
    end;
    for _ = 1 to newly_acked do
      if in_slow_start () then s.cwnd <- s.cwnd +. 1.
      else s.cwnd <- s.cwnd +. (1. /. s.cwnd)
    done
  in
  let on_fast_retransmit () =
    s.ssthresh <- Float.max (s.cwnd /. 2.) 2.;
    s.cwnd <- s.ssthresh
  in
  let on_timeout () =
    s.ssthresh <- Float.max (s.cwnd /. 2.) 2.;
    s.cwnd <- Float.max s.params.min_cwnd 1.
  in
  {
    Cc.name = "d2tcp";
    cwnd = (fun () -> s.cwnd);
    on_ack;
    on_ecn;
    on_fast_retransmit;
    on_timeout;
    in_slow_start = (fun () -> in_slow_start ());
    take_cwr = Cc.nop_take_cwr;
  }
