module Sim = Xmp_engine.Sim
module Time = Xmp_engine.Time
module Invariant = Xmp_check.Invariant
module Network = Xmp_net.Network
module Node = Xmp_net.Node
module Packet = Xmp_net.Packet
module Tel = Xmp_telemetry

type echo_mode = Classic | Counted of int option

type config = {
  rto_min : Time.t;
  rto_max : Time.t;
  rto_granularity : Time.t;
  delack_segments : int;
  delack_timeout : Time.t;
  dupack_threshold : int;
  ect : bool;
  echo : echo_mode;
  sack : bool;
  reassembly_limit : int;
}

let default_config =
  {
    rto_min = Time.ms 200;
    rto_max = Time.sec 60.;
    rto_granularity = Time.us 200;
    delack_segments = 2;
    delack_timeout = Time.us 200;
    dupack_threshold = 3;
    ect = false;
    echo = Counted (Some 3);
    (* SACK defaults off: the paper's evaluation is dominated by 200 ms
       RTO recovery for its loss-driven baselines (§5.2.2/§5.2.3), which
       is the behaviour of a stack whose losses exceed what SACK-based
       fast recovery repairs. The SACK ablation quantifies the
       difference. *)
    sack = false;
    (* cap on buffered out-of-order segments; far above any cwnd this
       simulator reaches, so it only bites under pathological injected
       loss, where it bounds receiver state instead of growing without
       limit *)
    reassembly_limit = 4096;
  }

let ecn_config = { default_config with ect = true }

type source = Infinite | Limited of int ref

type t = {
  net : Network.t;
  sim : Sim.t;
  config : config;
  flow : int;
  subflow : int;
  src : int;
  dst : int;
  path : int;
  src_node : Node.t;
  dst_node : Node.t;
  (* Receiver half. In split mode ([rcv_net] differs from [net]) the
     receiver lives on another shard: its endpoint registers on
     [rcv_net], its timers run on [rcv_sim], and no mutable field is
     touched by both halves — the sender and receiver then communicate
     through packets alone, which keeps a cross-shard flow free of
     cross-domain data races. *)
  rcv_net : Network.t;
  rcv_sim : Sim.t;
  split : bool;
  mutable cc : Cc.t;
  est : Rtt_estimator.t;
  source : source;
  started_at : Time.t;
  (* sender. Sequence positions: [snd_una] ≤ [snd_nxt] ≤ [snd_max].
     [snd_max] is the highest segment ever taken from the source (+1);
     [snd_nxt] is the next segment to (re)transmit — after a timeout it is
     rolled back to [snd_una] (go-back-N), so segments in
     [snd_nxt, snd_max) are pending retransmission. *)
  mutable snd_una : int;
  mutable snd_nxt : int;
  mutable snd_max : int;
  mutable dupacks : int;
  mutable in_recovery : bool;
  mutable recover : int;
  mutable sacked : Seqset.t;
      (* scoreboard: segments above snd_una the receiver holds *)
  mutable rexmit_high : int;
      (* highest hole fast recovery has retransmitted; repairs triggered
         by later SACK news start above it so a hole is resent at most
         once per recovery episode *)
  mutable rto_deadline : Time.t;
  mutable watchdog_time : Time.t;  (* fire time of the live watchdog *)
  mutable watchdog : Sim.timer option;  (* the live watchdog's handle *)
  mutable wd_fire : unit -> unit;
      (* the watchdog body, allocated once — rescheduling the chased
         deadline then costs no closure *)
  mutable torn_down : bool;
  mutable completed_at : Time.t option;
  (* receiver *)
  mutable rcv_nxt : int;
  mutable rcv_ooo : Seqset.t;  (* buffered segments above rcv_nxt *)
  mutable pending_ce : int;
  mutable ece_latched : bool;
  mutable delack_pending : int;
  mutable delack_timer : Sim.timer option;
  mutable delack_fire : unit -> unit;  (* allocated once, like [wd_fire] *)
  mutable rcv_closed : bool;
      (* receiver-owned teardown mark; mirrors [torn_down] in same-net
         mode and stays false for a split receiver (which outlives the
         sender half and simply dead-letters late arrivals) *)
  mutable last_ts : Time.t;
  (* stats *)
  mutable segments_sent : int;
  mutable segments_acked : int;
  mutable retransmits : int;
  mutable timeouts : int;
  mutable fast_retransmits : int;
  on_segment_acked : int -> unit;
  on_rtt_sample : Time.t -> unit;
  on_complete : unit -> unit;
  (* telemetry: [tel] is the sim's sink; the metric handles are resolved
     once at creation and are [None] exactly when the sink is disabled, so
     the disabled case stays a single branch per site *)
  tel : Tel.Sink.t;
  h_rtt : Tel.Metric.Histogram.t option;
  c_retransmits : Tel.Metric.Counter.t option;
  c_timeouts : Tel.Metric.Counter.t option;
}

let nop1 _ = ()

let flight t = t.snd_nxt - t.snd_una

(* data taken from the source but not yet acknowledged *)
let outstanding t = t.snd_max - t.snd_una

let take_segment t =
  match t.source with
  | Infinite -> true
  | Limited r ->
    if !r > 0 then begin
      decr r;
      true
    end
    else false

let source_drained t =
  match t.source with Infinite -> false | Limited r -> !r = 0

let teardown t =
  if not t.torn_down then begin
    t.torn_down <- true;
    if not t.split then begin
      (match t.delack_timer with Some tm -> Sim.cancel tm | None -> ());
      t.delack_timer <- None;
      t.rcv_closed <- true
    end;
    (match t.watchdog with Some tm -> Sim.cancel tm | None -> ());
    t.watchdog <- None;
    Network.unregister_endpoint t.net ~host:t.src ~flow:t.flow
      ~subflow:t.subflow;
    (* a split receiver's registration belongs to another shard's network
       (and domain); it stays registered and late packets dead-letter *)
    if not t.split then
      Network.unregister_endpoint t.rcv_net ~host:t.dst ~flow:t.flow
        ~subflow:t.subflow
  end

let complete t =
  if Option.is_none t.completed_at then begin
    t.completed_at <- Some (Sim.now t.sim);
    teardown t;
    if Tel.Sink.active t.tel then
      Tel.Sink.event t.tel ~time_ns:(Sim.now t.sim)
        (Tel.Event.Subflow_complete
           { flow = t.flow; subflow = t.subflow; acked = t.segments_acked });
    t.on_complete ()
  end

let send_data t ~seq ~retx =
  let now = Sim.now t.sim in
  let cwr = (not retx) && t.cc.Cc.take_cwr () in
  let p =
    Packet.data ~flow:t.flow ~subflow:t.subflow ~src:t.src ~dst:t.dst
      ~path:t.path ~seq ~ect:t.config.ect ~cwr ~ts:now
  in
  if retx then begin
    t.retransmits <- t.retransmits + 1;
    match t.c_retransmits with
    | Some c ->
      Tel.Metric.Counter.inc c;
      Tel.Sink.event t.tel ~time_ns:now
        (Tel.Event.Retransmit { flow = t.flow; subflow = t.subflow; seq })
    | None -> ()
  end
  else t.segments_sent <- t.segments_sent + 1;
  Node.send t.src_node p

(* RTO handling: one logical watchdog event chases the mutable deadline.
   ACK processing only moves the deadline *later*, which needs no heap
   traffic (the watchdog fires early, notices, and re-schedules itself);
   the deadline moving *earlier* (the RTO estimate shrinking after the
   first samples, or a fresh arm) re-schedules and cancels the superseded
   event, which the event heap's lazy-deletion compaction then reaps —
   so a long transfer keeps O(1) watchdog entries pending instead of one
   per reschedule aging out at full RTO depth. *)
let schedule_watchdog t at =
  (match t.watchdog with Some tm -> Sim.cancel tm | None -> ());
  t.watchdog_time <- at;
  t.watchdog <- Some (Sim.timer_at t.sim at t.wd_fire)

let rec watchdog_fire t =
  t.watchdog <- None;
  if not t.torn_down then begin
    t.watchdog_time <- Time.infinity;
    if outstanding t > 0 then begin
      let now = Sim.now t.sim in
      if Time.compare now t.rto_deadline >= 0 then begin
        t.timeouts <- t.timeouts + 1;
        (match t.c_timeouts with
        | Some c ->
          Tel.Metric.Counter.inc c;
          Tel.Sink.event t.tel ~time_ns:now
            (Tel.Event.Rto_timeout { flow = t.flow; subflow = t.subflow })
        | None -> ());
        Rtt_estimator.backoff t.est;
        t.cc.Cc.on_timeout ();
        t.in_recovery <- false;
        t.dupacks <- 0;
        (* go-back-N: resume (re)transmission from the unacknowledged
           point; the send loop resends forward as the window allows *)
        t.snd_nxt <- t.snd_una;
        t.rto_deadline <- Time.add now (Rtt_estimator.rto t.est);
        schedule_watchdog t t.rto_deadline;
        send_pending t
      end
      else schedule_watchdog t t.rto_deadline
    end
  end

and ensure_watchdog t =
  if outstanding t > 0 && Time.compare t.rto_deadline t.watchdog_time < 0 then
    schedule_watchdog t t.rto_deadline

and refresh_rto t =
  t.rto_deadline <- Time.add (Sim.now t.sim) (Rtt_estimator.rto t.est);
  ensure_watchdog t

and send_pending t =
  if not t.torn_down then begin
    if Invariant.enabled () then begin
      Invariant.require ~name:"tcp.cwnd-at-least-one-mss"
        (t.cc.Cc.cwnd () >= 1.) (fun () ->
          Printf.sprintf "flow %d subflow %d: %s cwnd %.3f < 1 segment" t.flow
            t.subflow t.cc.Cc.name (t.cc.Cc.cwnd ()));
      Invariant.require ~name:"tcp.inflight-conservation"
        (t.snd_una <= t.snd_nxt && t.snd_nxt <= t.snd_max) (fun () ->
          Printf.sprintf "flow %d subflow %d: una=%d nxt=%d max=%d" t.flow
            t.subflow t.snd_una t.snd_nxt t.snd_max)
    end;
    let window = Stdlib.max 1 (int_of_float (t.cc.Cc.cwnd ())) in
    if flight t < window then begin
      (* skip segments the SACK scoreboard says the receiver already has *)
      if not (Seqset.is_empty t.sacked) then
        t.snd_nxt <-
          Stdlib.min t.snd_max (Seqset.first_absent_from t.snd_nxt t.sacked);
      if t.snd_nxt < t.snd_max then begin
        (* retransmission of taken-but-unacked data (post-timeout) *)
        let seq = t.snd_nxt in
        t.snd_nxt <- t.snd_nxt + 1;
        send_data t ~seq ~retx:true;
        send_pending t
      end
      else if take_segment t then begin
        let seq = t.snd_nxt in
        t.snd_nxt <- t.snd_nxt + 1;
        t.snd_max <- t.snd_nxt;
        if outstanding t = 1 then refresh_rto t;
        send_data t ~seq ~retx:false;
        send_pending t
      end
      else if source_drained t && outstanding t = 0 then complete t
    end
    else if source_drained t && outstanding t = 0 then complete t
  end

let send_loop = send_pending

(* ----- receiver side ----- *)

(* up to 3 maximal [start, stop) runs of out-of-order segments copied
   into the ack's fixed SACK slots — the reorder buffer already stores
   maximal runs, so this is a prefix walk that allocates nothing *)
let fill_sack t p =
  if t.config.sack && not (Seqset.is_empty t.rcv_ooo) then begin
    let rec put n l =
      match l with
      | (start, stop) :: rest when n > 0 ->
        Packet.add_sack_block p ~start ~stop;
        put (n - 1) rest
      | _ -> ()
    in
    put 3 (Seqset.blocks t.rcv_ooo)
  end

let make_ack t =
  let ece_count =
    match t.config.echo with
    | Classic -> if t.ece_latched then 1 else 0
    | Counted cap ->
      let n =
        match cap with
        | Some limit -> Stdlib.min t.pending_ce limit
        | None -> t.pending_ce
      in
      t.pending_ce <- t.pending_ce - n;
      n
  in
  let p =
    Packet.ack ~flow:t.flow ~subflow:t.subflow ~src:t.dst ~dst:t.src
      ~path:t.path ~seq:t.rcv_nxt ~ece_count ~ts:t.last_ts ()
  in
  fill_sack t p;
  p

let send_ack t =
  (match t.delack_timer with Some tm -> Sim.cancel tm | None -> ());
  t.delack_timer <- None;
  t.delack_pending <- 0;
  Node.send t.dst_node (make_ack t)

let arm_delack t =
  match t.delack_timer with
  | Some _ -> ()
  | None ->
    t.delack_timer <-
      Some (Sim.timer_after t.rcv_sim t.config.delack_timeout t.delack_fire)

let receiver_rx t (p : Packet.t) =
  (* Echo the timestamp of the most recent arrival: re-ACKs triggered by
     retransmissions then carry a fresh timestamp, so the sender's RTT
     samples are never polluted by pre-loss history (the ambiguity Karn's
     rule exists for). *)
  t.last_ts <- Packet.ts p;
  (match t.config.echo with
  | Classic ->
    if Packet.cwr p then t.ece_latched <- false;
    if Packet.ce p then t.ece_latched <- true
  | Counted _ -> if Packet.ce p then t.pending_ce <- t.pending_ce + 1);
  let seq = Packet.seq p in
  if seq = t.rcv_nxt then begin
    t.rcv_nxt <- t.rcv_nxt + 1;
    (* the reorder buffer keeps maximal runs, so the whole contiguous
       stretch above the new rcv_nxt lifts out in one step *)
    let nxt, rest = Seqset.consume_from t.rcv_nxt t.rcv_ooo in
    t.rcv_nxt <- nxt;
    t.rcv_ooo <- rest;
    t.delack_pending <- t.delack_pending + 1;
    if t.delack_pending >= t.config.delack_segments then send_ack t
    else arm_delack t
  end
  else if seq > t.rcv_nxt then begin
    (* buffer unless the reassembly queue is at its limit; beyond it the
       segment is treated as lost (the sender will retransmit), which
       bounds receiver state under sustained injected loss *)
    if
      (not (Seqset.mem seq t.rcv_ooo))
      && Seqset.cardinal t.rcv_ooo < t.config.reassembly_limit
    then t.rcv_ooo <- Seqset.add seq t.rcv_ooo;
    (* out of order: duplicate ACK right away so the sender can detect the
       loss with fast retransmit *)
    send_ack t
  end
  else
    (* stale retransmission: re-ACK so the sender advances *)
    send_ack t

(* ----- sender ACK processing ----- *)

(* returns true when the ACK's blocks taught us about segments we did not
   know the receiver holds — the signal that a dup ACK is advancing the
   scoreboard during recovery *)
let ingest_sack t (p : Packet.t) =
  (* in-order traffic carries no blocks; skip the scoreboard-cardinal
     walks entirely rather than computing an unchanged count twice *)
  let n = Packet.sack_count p in
  if (not t.config.sack) || n = 0 then false
  else begin
    let before = Seqset.cardinal t.sacked in
    for i = 0 to n - 1 do
      let start = Stdlib.max (Packet.sack_start p i) (t.snd_una + 1) in
      let stop = Packet.sack_stop p i in
      if start < stop then t.sacked <- Seqset.add_range ~start ~stop t.sacked
    done;
    Seqset.cardinal t.sacked > before
  end

let prune_scoreboard t = t.sacked <- Seqset.remove_below t.snd_una t.sacked

(* First unSACKed hole at or above [from] that is safe to declare lost:
   a repair needs SACK evidence *above* the hole (RFC 6675's IsLost
   idea) — the gap between the highest SACKed segment and the send
   frontier is data still in flight, not a hole, and retransmitting it
   would be spurious. *)
let next_hole t ~from =
  let hole = Seqset.first_absent_from from t.sacked in
  if hole < t.recover && hole < t.snd_nxt then Some hole else None

(* IsLost (RFC 6675): only declare a hole lost on SACK information when
   dupack_threshold SACKed segments lie above it — the gap between the
   highest SACKed segment and the send frontier is data still in flight,
   and repairing it would be a spurious retransmission. Cumulative-ACK
   evidence (a partial ACK parking on the hole) needs no such guard.

   Runs on the dup-ACK hot path: [Seqset.blocks] is the scoreboard's own
   interval list (no allocation), and the scan stops as soon as enough
   evidence accumulates instead of folding the whole scoreboard. *)
let hole_is_lost t hole =
  let threshold = t.config.dupack_threshold in
  let rec scan acc = function
    | [] -> false
    | (start, stop) :: rest ->
      if start > hole then begin
        let acc = acc + (stop - start) in
        acc >= threshold || scan acc rest
      end
      else scan acc rest
  in
  scan 0 (Seqset.blocks t.sacked)

let repair_hole t hole =
  if hole > t.rexmit_high then t.rexmit_high <- hole;
  send_data t ~seq:hole ~retx:true

let sender_rx t (p : Packet.t) =
  if not t.torn_down then begin
    let ece_count = Packet.ece_count p in
    if ece_count > 0 then t.cc.Cc.on_ecn ~count:ece_count;
    let sack_advanced = ingest_sack t p in
    let ack = Packet.seq p in
    if ack > t.snd_una then begin
      if Invariant.enabled () then
        Invariant.require ~name:"tcp.ack-within-sent" (ack <= t.snd_max)
          (fun () ->
            Printf.sprintf "flow %d subflow %d: cumulative ACK %d beyond \
                            snd_max %d"
              t.flow t.subflow ack t.snd_max);
      let newly = ack - t.snd_una in
      t.snd_una <- ack;
      if ack > t.snd_nxt then t.snd_nxt <- ack;
      t.dupacks <- 0;
      prune_scoreboard t;
      let now = Sim.now t.sim in
      let rtt = Time.sub now (Packet.ts p) in
      if Time.compare rtt Time.zero >= 0 then begin
        Rtt_estimator.sample t.est rtt;
        (match t.h_rtt with
        | Some h -> Tel.Metric.Histogram.add h (Time.to_us rtt)
        | None -> ());
        t.on_rtt_sample rtt
      end;
      Rtt_estimator.reset_backoff t.est;
      t.cc.Cc.on_ack ~ack ~newly_acked:newly ~ce_count:ece_count;
      t.segments_acked <- t.segments_acked + newly;
      t.on_segment_acked newly;
      if t.in_recovery then begin
        if t.snd_una >= t.recover then t.in_recovery <- false
        else
          (* NewReno partial ACK: repair the next hole immediately.
             The hole is not necessarily snd_una — with SACK the
             scoreboard may show the receiver already holds it (the
             partial ACK can race a SACKed retransmission), and resending
             a held segment both wastes the repair and re-triggers dup
             ACKs. Skip forward to the first segment actually missing,
             and do not resend a hole this episode already repaired (its
             retransmission is still in flight; if that copy is also
             lost, the RTO backstop recovers it). Without a scoreboard
             there is nothing to consult and the hole is snd_una, as in
             classic NewReno. *)
          if Seqset.is_empty t.sacked then repair_hole t t.snd_una
          else
            match next_hole t ~from:t.snd_una with
            | Some hole when hole > t.rexmit_high -> repair_hole t hole
            | Some _ | None -> ()
      end;
      refresh_rto t;
      send_loop t
    end
    else if outstanding t > 0 then begin
      t.dupacks <- t.dupacks + 1;
      if t.dupacks = t.config.dupack_threshold && not t.in_recovery then begin
        t.in_recovery <- true;
        t.recover <- t.snd_max;
        t.rexmit_high <- t.snd_una - 1;
        t.fast_retransmits <- t.fast_retransmits + 1;
        t.cc.Cc.on_fast_retransmit ();
        match next_hole t ~from:t.snd_una with
        | Some hole -> repair_hole t hole
        | None -> repair_hole t t.snd_una
      end
      else if t.in_recovery && sack_advanced then begin
        (* Dup ACKs during recovery that carry fresh SACK news used to be
           ignored, so a multi-hole loss burst repaired one hole per RTT
           and usually ended in an RTO. Retransmit the next unrepaired
           hole, but pace by a conservative pipe estimate (RFC 6675's
           idea): data in flight that the scoreboard does not cover must
           stay under the window, else the repairs themselves overflow
           the bottleneck and are lost in turn. *)
        let window = Stdlib.max 1 (int_of_float (t.cc.Cc.cwnd ())) in
        let pipe = flight t - Seqset.cardinal t.sacked in
        if pipe < window then
          match
            next_hole t ~from:(Stdlib.max t.snd_una (t.rexmit_high + 1))
          with
          | Some hole when hole_is_lost t hole -> repair_hole t hole
          | Some _ | None -> ()
      end
    end
  end

let create ~net ?rcv_net ~flow ~subflow ~src ~dst ~path ~cc
    ?(config = default_config) ?(source = Infinite) ?start_at
    ?(on_segment_acked = nop1) ?(on_rtt_sample = nop1)
    ?(on_complete = fun () -> ()) () =
  let sim = Network.sim net in
  let rcv_net = match rcv_net with Some n -> n | None -> net in
  let split = not (rcv_net == net) in
  let est =
    Rtt_estimator.create ~rto_min:config.rto_min ~rto_max:config.rto_max
      ~granularity:config.rto_granularity ()
  in
  let tel = Sim.telemetry sim in
  let h_rtt, c_retransmits, c_timeouts =
    if Tel.Sink.active tel then begin
      let reg = Tel.Sink.registry tel in
      ( Some (Tel.Registry.histogram reg ~subsystem:"transport" ~name:"rtt_us" ()),
        Some
          (Tel.Registry.counter reg ~subsystem:"transport" ~name:"retransmits"
             ()),
        Some
          (Tel.Registry.counter reg ~subsystem:"transport" ~name:"timeouts" ())
      )
    end
    else (None, None, None)
  in
  let placeholder_cc =
    {
      Cc.name = "uninitialized";
      cwnd = (fun () -> 1.);
      on_ack = (fun ~ack:_ ~newly_acked:_ ~ce_count:_ -> ());
      on_ecn = (fun ~count:_ -> ());
      on_fast_retransmit = ignore;
      on_timeout = ignore;
      in_slow_start = (fun () -> true);
      take_cwr = Cc.nop_take_cwr;
    }
  in
  let t =
    {
      net;
      sim;
      config;
      flow;
      subflow;
      src;
      dst;
      path;
      src_node = Network.node net src;
      dst_node = Network.node rcv_net dst;
      rcv_net;
      rcv_sim = Network.sim rcv_net;
      split;
      cc = placeholder_cc;
      est;
      source;
      started_at =
        (match start_at with
        | None -> Sim.now sim
        | Some ts -> Time.max (Sim.now sim) ts);
      snd_una = 0;
      snd_nxt = 0;
      snd_max = 0;
      dupacks = 0;
      in_recovery = false;
      recover = 0;
      sacked = Seqset.empty;
      rexmit_high = -1;
      rto_deadline = Time.infinity;
      watchdog_time = Time.infinity;
      watchdog = None;
      wd_fire = ignore;
      torn_down = false;
      completed_at = None;
      rcv_nxt = 0;
      rcv_ooo = Seqset.empty;
      pending_ce = 0;
      ece_latched = false;
      delack_pending = 0;
      delack_timer = None;
      delack_fire = ignore;
      rcv_closed = false;
      last_ts = Time.zero;
      segments_sent = 0;
      segments_acked = 0;
      retransmits = 0;
      timeouts = 0;
      fast_retransmits = 0;
      on_segment_acked;
      on_rtt_sample;
      on_complete;
      tel;
      h_rtt;
      c_retransmits;
      c_timeouts;
    }
  in
  let view =
    {
      Cc.snd_una = (fun () -> t.snd_una);
      (* Algorithm 1's snd_nxt means "next new sequence"; after a timeout
         rollback the transmission pointer regresses, but round/cwr
         snapshots must not, so controllers see the high-water mark. *)
      snd_nxt = (fun () -> t.snd_max);
      srtt = (fun () -> Rtt_estimator.srtt t.est);
      min_rtt = (fun () -> Rtt_estimator.min_rtt t.est);
      now = (fun () -> Sim.now sim);
      telemetry = Tel.Sink.scope tel ~flow ~subflow;
    }
  in
  t.cc <- cc view;
  t.wd_fire <- (fun () -> watchdog_fire t);
  t.delack_fire <-
    (fun () ->
      t.delack_timer <- None;
      if not t.rcv_closed then send_ack t);
  Network.register_endpoint net ~host:src ~flow ~subflow (sender_rx t);
  Network.register_endpoint rcv_net ~host:dst ~flow ~subflow (receiver_rx t);
  (* A deferred start keeps registration immediate (so the receiver half
     exists before any packet can arrive) but first transmits at
     [started_at]; the guard covers flows stopped before their start. *)
  if Time.compare t.started_at (Sim.now sim) > 0 then
    Sim.at sim t.started_at (fun () -> if not t.torn_down then send_loop t)
  else send_loop t;
  t

let stop t = teardown t

let close_receiver t =
  if t.split && not t.rcv_closed then begin
    t.rcv_closed <- true;
    (match t.delack_timer with Some tm -> Sim.cancel tm | None -> ());
    t.delack_timer <- None;
    Network.unregister_endpoint t.rcv_net ~host:t.dst ~flow:t.flow
      ~subflow:t.subflow
  end
let flow t = t.flow
let subflow t = t.subflow
let path t = t.path
let cwnd t = t.cc.Cc.cwnd ()
let cc_name t = t.cc.Cc.name
let srtt t = Rtt_estimator.srtt t.est
let snd_una t = t.snd_una
let snd_nxt t = t.snd_nxt
let snd_max t = t.snd_max
let outstanding_segments t = outstanding t
let segments_acked t = t.segments_acked
let segments_sent t = t.segments_sent
let retransmits t = t.retransmits
let timeouts t = t.timeouts
let fast_retransmits t = t.fast_retransmits
let is_complete t = Option.is_some t.completed_at
let completed_at t = t.completed_at
let started_at t = t.started_at
