(* Sorted list of disjoint, non-adjacent, non-empty [start, stop)
   intervals over segment numbers.

   Replaces the per-segment hashtables the SACK scoreboard and the
   receiver reorder buffer used to keep: membership and block extraction
   become O(blocks) instead of O(segments) + a sort, and the number of
   blocks is bounded by the number of holes (= loss events in flight),
   not by how much data sits above a hole. *)

type t = (int * int) list

let empty = []

let is_empty = function [] -> true | _ :: _ -> false

let blocks t = t

let n_blocks = List.length

let cardinal t = List.fold_left (fun acc (a, b) -> acc + (b - a)) 0 t

let rec mem x = function
  | [] -> false
  | (a, b) :: rest -> if x < a then false else if x < b then true else mem x rest

let add_range ~start ~stop t =
  if start >= stop then t
  else
    (* walk left of the insertion point, then swallow every interval that
       overlaps or touches [start, stop) *)
    let rec place acc start stop = function
      | [] -> List.rev_append acc [ (start, stop) ]
      | ((a, b) as iv) :: rest ->
        if b < start then place (iv :: acc) start stop rest
        else if stop < a then List.rev_append acc ((start, stop) :: iv :: rest)
        else place acc (Stdlib.min a start) (Stdlib.max b stop) rest
    in
    place [] start stop t

let add x t = add_range ~start:x ~stop:(x + 1) t

let rec remove_below bound t =
  match t with
  | [] -> []
  | (a, b) :: rest ->
    if b <= bound then remove_below bound rest
    else if a < bound then (bound, b) :: rest
    else t

let rec first_absent_from x = function
  | [] -> x
  | (a, b) :: rest ->
    if x < a then x
    else if x < b then first_absent_from b rest
    else first_absent_from x rest

let consume_from x t =
  match t with (a, b) :: rest when a = x -> (b, rest) | _ -> (x, t)
