(** TCP-like reliable transport over the simulated network.

    One {!t} owns both endpoints of a connection: the sender side lives at
    the source host (receives ACKs), the receiver side at the destination
    host (receives data, generates cumulative ACKs with delayed-ACK
    batching). Sequence numbers are in segments. The transmission rate is
    limited only by the congestion window (the paper configures send and
    receive buffers "sufficiently large"), so there is no flow control.

    Loss recovery: fast retransmit on the third duplicate ACK with
    NewReno-style partial-ACK retransmission, plus a retransmission timer
    with exponential backoff and a configurable floor (RTOmin = 200 ms by
    default, the value behind the paper's incast collapse results).

    ECN: data packets carry ECT when [ect] is set. The receiver echo mode
    matches the scheme under test:
    - [Counted (Some 3)] — the paper's XMP two-bit ECE/CWR encoding: each
      ACK returns up to 3 pending CE marks, leftovers carry over.
    - [Counted None] — exact echo, as DCTCP's one-bit state machine
      reconstructs.
    - [Classic] — RFC 3168: ECE latched until the sender's CWR arrives. *)

type echo_mode = Classic | Counted of int option

type config = {
  rto_min : Xmp_engine.Time.t;
  rto_max : Xmp_engine.Time.t;
  rto_granularity : Xmp_engine.Time.t;
      (** clock term [G] in [RTO = srtt + max (G, 4 * rttvar)]; keeps
          the timeout above srtt once rttvar decays on steady paths *)
  delack_segments : int;  (** ACK every n-th segment (paper: 2) *)
  delack_timeout : Xmp_engine.Time.t;
  dupack_threshold : int;
  ect : bool;
  echo : echo_mode;
  sack : bool;
      (** selective acknowledgements: the receiver advertises up to 3
          out-of-order blocks per ACK and the sender never retransmits
          segments the scoreboard covers (what a Linux-era stack does;
          without it, post-timeout go-back-N resends delivered data) *)
  reassembly_limit : int;
      (** cap on out-of-order segments the receiver buffers; arrivals
          beyond it are treated as lost (the sender retransmits), bounding
          receiver state under sustained loss *)
}

val default_config : config
(** RTOmin 200 ms, RTOmax 60 s, granularity 200 µs, delayed ACK every 2 segments with a 200 µs
    timer, 3 dupacks, ECT off, counted echo capped at 3, SACK off (matching
    the RTO-dominated loss recovery the paper's baselines exhibit; flip
    [sack] on to model a modern stack), reassembly limit 4096 segments. *)

val ecn_config : config
(** {!default_config} with [ect = true]. *)

type source = Infinite | Limited of int ref
(** Where segments come from: an unbounded bulk sender, or a shared counter
    of segments not yet handed to any subflow (MPTCP subflows share one). *)

type t

val create :
  net:Xmp_net.Network.t ->
  ?rcv_net:Xmp_net.Network.t ->
  flow:int ->
  subflow:int ->
  src:int ->
  dst:int ->
  path:int ->
  cc:Cc.factory ->
  ?config:config ->
  ?source:source ->
  ?start_at:Xmp_engine.Time.t ->
  ?on_segment_acked:(int -> unit) ->
  ?on_rtt_sample:(Xmp_engine.Time.t -> unit) ->
  ?on_complete:(unit -> unit) ->
  unit ->
  t
(** Registers both endpoints and starts sending immediately, or — when
    [start_at] is in the future — at [start_at] (registration stays
    immediate so the receiver half exists before any packet arrives;
    [started_at] reports the deferred time). [source] defaults to
    [Infinite]. [on_complete] fires once, when a [Limited] source is
    exhausted and every segment is acknowledged; the connection then
    tears down.

    [rcv_net] places the receiver half on a different network (a sharded
    run's destination shard): the data endpoint registers there, its
    delayed-ACK timer runs on that network's simulator, and the two
    halves share no timers — only packets — so each shard's domain
    touches only its own half. The receiver half stays registered after
    teardown in this mode (late cross-shard arrivals dead-letter) until
    {!close_receiver} reaps it. *)

val stop : t -> unit
(** Tears the connection down without completing it (cancels timers,
    unregisters endpoints). Idempotent. *)

val close_receiver : t -> unit
(** Reaps a split receiver half after the sender side tore down:
    unregisters the data endpoint from [rcv_net] and cancels its
    delayed-ACK timer. Only meaningful in split mode — it must be called
    from the destination shard's domain, or at a barrier where no shard
    is running (the open-loop driver reaps completed flows there, so a
    million-flow run does not leak endpoint registrations). No-op for
    non-split connections and on repeat calls. *)

(** {1 Introspection} *)

val flow : t -> int

val subflow : t -> int

val path : t -> int

val cwnd : t -> float

val cc_name : t -> string

val srtt : t -> Xmp_engine.Time.t

val flight : t -> int

val snd_una : t -> int

val snd_nxt : t -> int
(** Next segment to (re)transmit; regresses to {!snd_una} after a
    retransmission timeout (go-back-N). *)

val snd_max : t -> int
(** High-water mark: segments taken from the source so far. *)

val outstanding_segments : t -> int
(** [snd_max - snd_una]. *)

val segments_acked : t -> int

val segments_sent : t -> int

val retransmits : t -> int

val timeouts : t -> int

val fast_retransmits : t -> int

val is_complete : t -> bool

val completed_at : t -> Xmp_engine.Time.t option

val started_at : t -> Xmp_engine.Time.t
