type view = {
  snd_una : unit -> int;
  snd_nxt : unit -> int;
  srtt : unit -> Xmp_engine.Time.t;
  min_rtt : unit -> Xmp_engine.Time.t;
  now : unit -> Xmp_engine.Time.t;
  telemetry : Xmp_telemetry.Sink.scope;
}

type t = {
  name : string;
  cwnd : unit -> float;
  on_ack : ack:int -> newly_acked:int -> ce_count:int -> unit;
  on_ecn : count:int -> unit;
  on_fast_retransmit : unit -> unit;
  on_timeout : unit -> unit;
  in_slow_start : unit -> bool;
  take_cwr : unit -> bool;
}

type factory = view -> t

let nop_take_cwr () = false
