module Coupling = Xmp_mptcp.Coupling
module Cc = Xmp_transport.Cc
module Tel = Xmp_telemetry

let delta ~own_cwnd ~total_rate ~min_rtt_s =
  if total_rate <= 0. || min_rtt_s <= 0. || min_rtt_s = Float.max_float then
    1.
  else own_cwnd /. (total_rate *. min_rtt_s)

let coupling ?(params = Bos.default_params) () =
  let fresh () =
    let g = Coupling.group () in
    fun _index view ->
      (* The subflow's own window getter only exists once the BOS instance
         is built; tie the knot through a cell. *)
      let own_cwnd = ref (fun () -> params.Bos.init_cwnd) in
      let subflow_delta () =
        let d =
          delta ~own_cwnd:(!own_cwnd ())
            ~total_rate:(Coupling.total_rate g)
            ~min_rtt_s:(Coupling.min_srtt g)
        in
        let tel = view.Cc.telemetry in
        if Tel.Sink.active tel.Tel.Sink.sink then
          Tel.Sink.event tel.Tel.Sink.sink ~time_ns:(view.Cc.now ())
            (Tel.Event.Trash_delta
               {
                 flow = tel.Tel.Sink.flow;
                 subflow = tel.Tel.Sink.subflow;
                 delta = d;
               });
        d
      in
      let cc = Bos.make ~params ~delta:subflow_delta () view in
      own_cwnd := cc.Cc.cwnd;
      Coupling.register g
        {
          Coupling.cwnd = cc.Cc.cwnd;
          srtt_s = (fun () -> Xmp_engine.Time.to_float_s (view.Cc.srtt ()));
          in_slow_start = cc.Cc.in_slow_start;
        };
      { cc with Cc.name = "xmp" }
  in
  { Coupling.name = "xmp"; fresh }
