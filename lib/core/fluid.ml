let check_beta beta = if beta < 2 then invalid_arg "Fluid: beta must be >= 2"

let cwnd_derivative ~beta ~delta ~t_round ~p ~w =
  check_beta beta;
  (delta *. (1. -. p) /. t_round) -. (w *. p /. (t_round *. float_of_int beta))

let equilibrium_p ~beta ~delta ~w =
  check_beta beta;
  1. /. (1. +. (w /. (delta *. float_of_int beta)))

let equilibrium_rate ~beta ~delta ~t_round ~p =
  check_beta beta;
  if p <= 0. then invalid_arg "Fluid.equilibrium_rate: p must be positive";
  delta *. float_of_int beta *. (1. -. p) /. (t_round *. p)

let utility ~beta ~delta ~t_round x =
  check_beta beta;
  let db = delta *. float_of_int beta in
  db /. t_round *. log (1. +. (t_round *. x /. db))

let utility_deriv ~beta ~delta ~t_round y =
  check_beta beta;
  1. /. (1. +. (y *. t_round /. (delta *. float_of_int beta)))

let trash_delta ~rtt ~rate ~min_rtt ~total_rate =
  (* float scalars in seconds, not Time.t *)
  if min_rtt <= 0. || total_rate <= 0. then 1. (* xmplint: allow poly-compare-time *)
  else rtt *. rate /. (min_rtt *. total_rate)

let integrate_bos ~beta ~delta ~t_round ~p_of_w ~w0 ~dt ~steps =
  check_beta beta;
  let w = ref w0 in
  for _ = 1 to steps do
    let p = p_of_w !w in
    w := Float.max 1. (!w +. (dt *. cwnd_derivative ~beta ~delta ~t_round ~p ~w:!w))
  done;
  !w

type path = { rtt : float; p_of_rate : float -> float }

type trash_state = { deltas : float array; rates : float array }

(* Solve x = δβ(1−p(x)) / (T·p(x)) by bisection on
   g(x) = x·T·p(x) − δβ(1−p(x)), which is increasing in x. *)
let rate_for_delta ~beta path ~delta =
  check_beta beta;
  let db = delta *. float_of_int beta in
  let g x =
    let p = path.p_of_rate x in
    (x *. path.rtt *. p) -. (db *. (1. -. p))
  in
  let rec widen hi n =
    if n = 0 || g hi >= 0. then hi else widen (hi *. 2.) (n - 1)
  in
  let hi = widen 1.0 128 in
  let rec bisect lo hi n =
    if n = 0 then (lo +. hi) /. 2.
    else begin
      let mid = (lo +. hi) /. 2. in
      if g mid >= 0. then bisect lo mid (n - 1) else bisect mid hi (n - 1)
    end
  in
  bisect 0. hi 80

let trash_fixed_point ~beta ~paths ~iterations =
  check_beta beta;
  let paths = Array.of_list paths in
  let n = Array.length paths in
  if n = 0 then invalid_arg "Fluid.trash_fixed_point: no paths";
  let deltas = Array.make n 1. in
  let rates = Array.make n 0. in
  for _ = 1 to iterations do
    (* step 2: rate convergence per path given δ *)
    for i = 0 to n - 1 do
      rates.(i) <- rate_for_delta ~beta paths.(i) ~delta:deltas.(i)
    done;
    (* step 3: Equation 9 update *)
    let total = Array.fold_left ( +. ) 0. rates in
    let min_rtt =
      Array.fold_left (fun acc p -> Float.min acc p.rtt) Float.max_float
        paths
    in
    for i = 0 to n - 1 do
      deltas.(i) <-
        trash_delta ~rtt:paths.(i).rtt ~rate:rates.(i) ~min_rtt
          ~total_rate:total
    done
  done;
  (* final inner convergence so rates match the returned deltas *)
  for i = 0 to n - 1 do
    rates.(i) <- rate_for_delta ~beta paths.(i) ~delta:deltas.(i)
  done;
  { deltas; rates }

let congestion_spread ~beta ~paths state =
  check_beta beta;
  let paths = Array.of_list paths in
  let ps =
    Array.mapi (fun i p -> p.p_of_rate state.rates.(i)) paths
  in
  let mx = Array.fold_left Float.max neg_infinity ps in
  let mn = Array.fold_left Float.min infinity ps in
  mx -. mn
