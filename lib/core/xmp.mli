(** XMP — eXplicit MultiPath congestion control: the public facade.

    XMP = {!Bos} (per-subflow window control against ECN marks) +
    {!Trash} (per-round δ retuning that shifts traffic toward less
    congested paths). This module bundles the pieces with the transport
    configuration and switch marking discipline the paper deploys them
    with. Typical use:

    {[
      let disc () = Xmp_core.Xmp.switch_disc ~params ~queue_pkts:100 () in
      (* build a topology whose switches use [disc] ... *)
      let flow =
        Xmp_core.Xmp.flow ~net ~flow:1 ~src ~dst ~paths:[0; 1] ~params ()
      in
      ...
    ]} *)

val bos : ?params:Bos.params -> unit -> Xmp_transport.Cc.factory
(** Single-path BOS controller (δ = 1). *)

val coupling : ?params:Bos.params -> unit -> Xmp_mptcp.Coupling.t
(** The full XMP coupling (BOS + TraSh). *)

val bos_params : Params.t -> Bos.params
(** BOS parameters from a [(β, K)] pair, paper defaults elsewhere. *)

val tcp_config : Xmp_transport.Tcp.config
(** Transport configuration for XMP endpoints: ECT on, exact CE echo
    capped at 3 per ACK (the 2-bit ECE/CWR encoding). *)

val dctcp_tcp_config : Xmp_transport.Tcp.config
(** For the DCTCP baseline: ECT on, uncapped CE echo. *)

val plain_tcp_config : Xmp_transport.Tcp.config
(** For TCP/LIA baselines: not ECN-capable. *)

val switch_disc :
  ?params:Params.t -> ?queue_pkts:int -> unit -> unit -> Xmp_net.Queue_disc.t
(** Queue-discipline factory for switches: threshold marking at [K] over a
    [queue_pkts]-packet drop-tail buffer (defaults: paper's K = 10,
    100 packets). Usable directly as the [disc] argument of the topology
    builders. *)

val flow :
  net:Xmp_net.Network.t ->
  flow:int ->
  src:int ->
  dst:int ->
  paths:int list ->
  ?params:Bos.params ->
  ?size_segments:int ->
  ?observer:Xmp_mptcp.Mptcp_flow.observer ->
  unit ->
  Xmp_mptcp.Mptcp_flow.t
(** An MPTCP flow running XMP with the paper's transport settings.
    [observer] (default {!Xmp_mptcp.Mptcp_flow.silent}) receives the
    flow's lifecycle events. *)
