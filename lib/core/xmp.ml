module Tcp = Xmp_transport.Tcp
module Queue_disc = Xmp_net.Queue_disc

let bos ?params () = Bos.make ?params ()
let coupling = Trash.coupling

let bos_params (p : Params.t) =
  { Bos.default_params with beta = p.Params.beta }

let tcp_config = { Tcp.ecn_config with echo = Tcp.Counted (Some 3) }
let dctcp_tcp_config = { Tcp.ecn_config with echo = Tcp.Counted None }
let plain_tcp_config = Tcp.default_config

let switch_disc ?(params = Params.default) ?(queue_pkts = 100) () () =
  Queue_disc.create
    ~policy:(Queue_disc.Threshold_mark params.Params.k)
    ~capacity_pkts:queue_pkts

let flow ~net ~flow ~src ~dst ~paths ?params ?size_segments ?observer () =
  let coupling = Trash.coupling ?params () in
  Xmp_mptcp.Mptcp_flow.create ~net ~flow ~src ~dst ~paths ~coupling
    ~config:tcp_config ?size_segments ?observer ()
