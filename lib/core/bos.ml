module Cc = Xmp_transport.Cc
module Tel = Xmp_telemetry

type params = { beta : int; init_cwnd : float; min_cwnd : float }

let default_params = { beta = 4; init_cwnd = 3.; min_cwnd = 2. }

type reduction_state = Normal | Reduced

type state = {
  params : params;
  view : Cc.view;
  mutable cwnd : float;
  mutable ssthresh : float;
  mutable adder : float;
  mutable beg_seq : int;
  mutable cwr_seq : int;
  mutable reduction : reduction_state;
}

let make ?(params = default_params) ?(delta = fun () -> 1.)
    ?(on_round = fun () -> ()) () view =
  if params.beta < 2 then invalid_arg "Bos.make: beta must be >= 2";
  let s =
    {
      params;
      view;
      cwnd = params.init_cwnd;
      ssthresh = Float.max_float;
      adder = 0.;
      beg_seq = 0;
      cwr_seq = 0;
      reduction = Normal;
    }
  in
  let in_slow_start () = s.cwnd <= s.ssthresh in
  let tel = view.Cc.telemetry in
  (* one branch when the sink is disabled; called only after cwnd moved *)
  let emit_cwnd () =
    if Tel.Sink.active tel.Tel.Sink.sink then
      Tel.Sink.event tel.Tel.Sink.sink ~time_ns:(view.Cc.now ())
        (Tel.Event.Cwnd_change
           {
             flow = tel.Tel.Sink.flow;
             subflow = tel.Tel.Sink.subflow;
             cwnd = s.cwnd;
           })
  in
  let on_ack ~ack ~newly_acked:_ ~ce_count:_ =
    (* per-round operations (Algorithm 1) *)
    if ack > s.beg_seq then begin
      if s.reduction = Normal && not (in_slow_start ()) then begin
        s.adder <- s.adder +. delta ();
        let whole = Float.of_int (int_of_float s.adder) in
        s.cwnd <- s.cwnd +. whole;
        s.adder <- s.adder -. whole;
        if whole > 0. then emit_cwnd ()
      end;
      s.beg_seq <- s.view.Cc.snd_nxt ();
      on_round ()
    end;
    (* per-ack operations *)
    if s.reduction = Normal && in_slow_start () then begin
      s.cwnd <- s.cwnd +. 1.;
      emit_cwnd ()
    end;
    if s.reduction <> Normal && ack >= s.cwr_seq then s.reduction <- Normal
  in
  let on_ecn ~count:_ =
    if s.reduction = Normal then begin
      s.reduction <- Reduced;
      s.cwr_seq <- s.view.Cc.snd_nxt ();
      if not (in_slow_start ()) then begin
        let cut = Float.max (s.cwnd /. float_of_int s.params.beta) 1. in
        s.cwnd <- Float.max (s.cwnd -. cut) s.params.min_cwnd;
        emit_cwnd ()
      end;
      (* leave (or stay out of) slow start without re-entering it *)
      s.ssthresh <- s.cwnd -. 1.
    end
  in
  let on_fast_retransmit () =
    s.cwnd <- Float.max (s.cwnd /. 2.) s.params.min_cwnd;
    s.ssthresh <- s.cwnd -. 1.;
    emit_cwnd ()
  in
  let on_timeout () =
    s.ssthresh <- Float.max (s.cwnd /. 2.) s.params.min_cwnd;
    s.cwnd <- 1.;
    emit_cwnd ()
  in
  {
    Cc.name = "bos";
    cwnd = (fun () -> s.cwnd);
    on_ack;
    on_ecn;
    on_fast_retransmit;
    on_timeout;
    in_slow_start = (fun () -> in_slow_start ());
    take_cwr = Cc.nop_take_cwr;
  }
