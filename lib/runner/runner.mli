(** Parallel scenario execution with a digest-keyed result cache.

    Scenarios are independent seeded simulations sharing no mutable
    state, so the runner executes them across [jobs] forked worker
    processes (a pipe-based work queue gives dynamic load balancing) and
    memoizes each completed scenario's rendered output on disk under its
    content digest. Results are delivered in input-list order no matter
    which worker finishes first, so output is deterministic for any
    [jobs]; a warm cache reproduces the exact same bytes without
    simulating anything.

    Scenario payloads go to stdout (via {!run_and_print}); the runner's
    own progress and cache statistics go to stderr, keeping stdout
    byte-stable across cold, warm, sequential and parallel runs. *)

type cache_mode =
  | No_cache  (** always simulate; the cache is neither read nor written *)
  | Cache_dir of string

type outcome = {
  scenario : Scenario.t;
  digest : string;
  output : string;  (** the bytes the scenario printed to stdout *)
  from_cache : bool;
  elapsed_s : float;  (** simulation wall time; 0 on a cache hit *)
  events : int;
      (** simulation events the scenario executed (process-wide counter
          delta in the worker); 0 on a cache hit *)
}

type stats = {
  hits : int;  (** scenarios served from the cache *)
  misses : int;  (** scenarios that had to simulate *)
  wall_s : float;
}

val capture : (unit -> unit) -> string
(** [capture f] runs [f] in-process with stdout redirected (at the file
    descriptor level, so [Printf.printf] and friends are caught) and
    returns exactly the bytes it printed. stdout is restored afterwards,
    also on exception. *)

val run :
  ?jobs:int ->
  ?cache:cache_mode ->
  ?progress:bool ->
  ?on_outcome:(outcome -> unit) ->
  Scenario.t list ->
  outcome list * stats
(** Executes every scenario, returning outcomes in input order.

    [jobs] (default 1, values < 1 clamped to 1) is the number of worker
    processes; cache probing, cache writes and [on_outcome] all happen in
    the parent, which is the cache's single writer. [on_outcome] is
    called once per scenario, in input order, as soon as that scenario
    and all its predecessors have completed — i.e. ordered streaming.
    [progress] (default [true]) prints per-scenario progress lines and a
    final cache-statistics line to stderr.

    A worker that dies or a scenario that raises aborts the whole run
    with [Failure] after the remaining children are reaped. *)

val run_and_print :
  ?jobs:int ->
  ?cache:cache_mode ->
  ?progress:bool ->
  Scenario.t list ->
  stats
(** {!run} with [on_outcome] printing each scenario's bytes to stdout —
    the streaming equivalent of running the scenarios sequentially in
    one process. *)
