let default_dir = "_xmp_cache"

(* Entry layout: one header line, then the raw payload bytes.

     xmp-cache 1 <md5hex-of-payload> <payload-length>\n
     <payload>

   The header's checksum and length make every failure mode detectable:
   truncation changes the length, corruption changes the checksum, and a
   file that never was an entry fails the header parse. *)

let magic = "xmp-cache"
let version = "1"

let entry_path ~dir ~key =
  (* keys are hex digests; refuse anything that could escape [dir] *)
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'f' | '0' .. '9' -> ()
      | _ -> invalid_arg ("Cache: malformed key " ^ key))
    key;
  Filename.concat dir key

let header payload =
  Printf.sprintf "%s %s %s %d\n" magic version
    (Digest.to_hex (Digest.string payload))
    (String.length payload)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let parse entry =
  match String.index_opt entry '\n' with
  | None -> None
  | Some nl -> (
    let payload = String.sub entry (nl + 1) (String.length entry - nl - 1) in
    match String.split_on_char ' ' (String.sub entry 0 nl) with
    | [ m; v; sum; len ]
      when m = magic && v = version
           && int_of_string_opt len = Some (String.length payload)
           && sum = Digest.to_hex (Digest.string payload) ->
      Some payload
    | _ -> None)

let load ~dir ~key =
  let path = entry_path ~dir ~key in
  if not (Sys.file_exists path) then None
  else
    match parse (read_file path) with
    | Some payload -> Some payload
    | None | (exception Sys_error _) ->
      (* corrupt / truncated / unreadable: drop it and recompute *)
      (try Sys.remove path with Sys_error _ -> ());
      None

let ensure_dir dir =
  if not (Sys.file_exists dir) then
    try Sys.mkdir dir 0o755
    with Sys_error _ when Sys.file_exists dir -> ()

let store ~dir ~key payload =
  ensure_dir dir;
  let path = entry_path ~dir ~key in
  let tmp = Filename.concat dir (".tmp." ^ key) in
  let oc = open_out_bin tmp in
  (try
     output_string oc (header payload);
     output_string oc payload;
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path
