(** Digest-keyed result cache on disk.

    One file per completed scenario under a cache directory (default
    [_xmp_cache/]), named by the scenario's content digest. Each entry
    carries its own payload checksum and length, so a corrupted,
    truncated or half-written entry is detected on load, discarded, and
    recomputed instead of being served. Writes go through a temp file in
    the same directory followed by an atomic rename, so a crash mid-write
    can leave at most a stale [.tmp.*] file, never a bad entry. *)

val default_dir : string
(** ["_xmp_cache"], relative to the working directory. *)

val load : dir:string -> key:string -> string option
(** The verified payload for [key], or [None] if the entry is absent or
    fails verification (in which case the bad file is removed). *)

val store : dir:string -> key:string -> string -> unit
(** Atomically (re)writes the entry for [key], creating [dir] if needed. *)

val entry_path : dir:string -> key:string -> string
(** Where [key]'s entry lives — exposed for tests that corrupt it. *)
