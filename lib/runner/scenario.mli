(** A first-class description of one experiment run.

    A scenario is a named, parameterized, seeded unit of work that prints
    its result to stdout (through the sanctioned [Render]/[Table] sinks).
    Because every simulation in this repository is deterministic — a
    contract xmplint and the invariant checker enforce — a scenario's
    output is a pure function of its name and parameters, which is what
    makes the content digest below safe to use as a cache key and as a
    golden-test fingerprint. *)

type t = {
  name : string;  (** unique id, e.g. ["fig7"] or ["ablations.beta"] *)
  descr : string;  (** one-line human description *)
  params : (string * string) list;
      (** everything that affects the output: seeds, scales, topology and
          scheme parameters. Order is irrelevant (the digest sorts). *)
  run : unit -> unit;  (** prints the result to stdout *)
}

val create :
  name:string ->
  ?descr:string ->
  ?params:(string * string) list ->
  (unit -> unit) ->
  t

val digest : t -> string
(** Stable content digest (hex) over the scenario's name and canonicalized
    parameter list — the closure is not (and cannot be) hashed, so [params]
    must cover every input the run depends on. Changing any parameter value
    changes the digest; reordering parameters does not. The digest is
    salted with a format version so cache layout changes invalidate old
    entries wholesale. *)

val describe : t -> string
(** ["name k=4 seed=1 ..."] — the canonical parameter line, for logs. *)
