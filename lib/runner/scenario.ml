type t = {
  name : string;
  descr : string;
  params : (string * string) list;
  run : unit -> unit;
}

let create ~name ?(descr = "") ?(params = []) run =
  { name; descr; params; run }

(* Bump whenever the cache entry layout or the digest input changes; a
   bump orphans every existing cache entry rather than misreading it. *)
let format_version = "1"

let canonical_params t =
  List.sort_uniq
    (fun (a, va) (b, vb) ->
      match String.compare a b with
      | 0 -> String.compare va vb
      | c -> c)
    t.params

let digest t =
  let buf = Buffer.create 128 in
  Buffer.add_string buf "xmp-scenario/";
  Buffer.add_string buf format_version;
  Buffer.add_char buf '\n';
  Buffer.add_string buf t.name;
  Buffer.add_char buf '\n';
  List.iter
    (fun (k, v) ->
      Buffer.add_string buf k;
      Buffer.add_char buf '=';
      Buffer.add_string buf v;
      Buffer.add_char buf '\n')
    (canonical_params t);
  Digest.to_hex (Digest.string (Buffer.contents buf))

let describe t =
  String.concat " "
    (t.name :: List.map (fun (k, v) -> k ^ "=" ^ v) (canonical_params t))
