(* Fork-based scenario execution. This is the one module allowed to use
   Unix and the wall clock in lib/ (see xmplint's file allowlist): it
   never touches simulated state, it only schedules whole deterministic
   simulations across processes and times them for progress output. *)

type cache_mode = No_cache | Cache_dir of string

type outcome = {
  scenario : Scenario.t;
  digest : string;
  output : string;
  from_cache : bool;
  elapsed_s : float;
  events : int;
}

type stats = { hits : int; misses : int; wall_s : float }

(* ------------------------------------------------------------------ *)
(* small IO helpers                                                    *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let rec write_all fd s off len =
  if len > 0 then begin
    match Unix.write_substring fd s off len with
    | n -> write_all fd s (off + n) (len - n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all fd s off len
  end

let send_line fd line = write_all fd (line ^ "\n") 0 (String.length line + 1)

let rec read_some fd bytes =
  match Unix.read fd bytes 0 (Bytes.length bytes) with
  | n -> n
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_some fd bytes

(* ------------------------------------------------------------------ *)
(* stdout capture (fd level, so Printf.printf is caught)               *)

let capture_to_file path f =
  flush Stdlib.stdout;
  let saved = Unix.dup Unix.stdout in
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  Unix.dup2 fd Unix.stdout;
  Unix.close fd;
  let restore () =
    flush Stdlib.stdout;
    Unix.dup2 saved Unix.stdout;
    Unix.close saved
  in
  match f () with
  | () -> restore ()
  | exception e ->
    restore ();
    raise e

let capture f =
  let tmp = Filename.temp_file "xmp_capture_" ".out" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove tmp with Sys_error _ -> ())
    (fun () ->
      capture_to_file tmp f;
      read_file tmp)

(* ------------------------------------------------------------------ *)
(* worker child                                                        *)

(* Protocol: parent sends one scenario index per line on the work pipe
   ("q" = no more work); the child runs it with stdout captured into
   result_file(i) and answers "<i> <elapsed_s> <events>" on the done
   pipe, where <events> is the number of simulation events the scenario
   executed (the process-wide counter delta, so it also covers nested
   simulations). All messages are far below PIPE_BUF, so writes are
   atomic. *)

let child_loop scenarios ~result_file ~work_r ~done_w =
  let ic = Unix.in_channel_of_descr work_r in
  let rec loop () =
    match input_line ic with
    | exception End_of_file -> 0
    | "q" -> 0
    | line -> (
      let i = int_of_string line in
      let sc = scenarios.(i) in
      let t0 = Unix.gettimeofday () in
      let e0 = Xmp_engine.Sim.total_events_executed () in
      match capture_to_file (result_file i) sc.Scenario.run with
      | () ->
        send_line done_w
          (Printf.sprintf "%d %.6f %d" i
             (Unix.gettimeofday () -. t0)
             (Xmp_engine.Sim.total_events_executed () - e0));
        loop ()
      | exception e ->
        Printf.eprintf "[runner] scenario %s raised: %s\n%!" sc.Scenario.name
          (Printexc.to_string e);
        1)
  in
  let status = loop () in
  (* _exit: skip the parent's inherited at_exit handlers (alcotest, dune,
     channel flushers) — everything this child owns is already flushed *)
  Unix._exit status

(* ------------------------------------------------------------------ *)
(* parent-side worker pool                                             *)

type worker = {
  pid : int;
  work_w : Unix.file_descr;
  done_r : Unix.file_descr;
  rbuf : Buffer.t;
  mutable running : int option;  (* scenario index in flight *)
  mutable draining : bool;  (* "q" sent, work_w closed *)
}

let spawn scenarios ~result_file =
  let work_r, work_w = Unix.pipe ~cloexec:false () in
  let done_r, done_w = Unix.pipe ~cloexec:false () in
  flush Stdlib.stdout;
  flush Stdlib.stderr;
  match Unix.fork () with
  | 0 ->
    Unix.close work_w;
    Unix.close done_r;
    child_loop scenarios ~result_file ~work_r ~done_w
  | pid ->
    Unix.close work_r;
    Unix.close done_w;
    { pid; work_w; done_r; rbuf = Buffer.create 64; running = None;
      draining = false }

let quit w =
  if not w.draining then begin
    w.draining <- true;
    (try send_line w.work_w "q"
     with Unix.Unix_error ((Unix.EPIPE | Unix.EBADF), _, _) -> ());
    try Unix.close w.work_w with Unix.Unix_error _ -> ()
  end

let reap w =
  quit w;
  (try Unix.close w.done_r with Unix.Unix_error _ -> ());
  match Unix.waitpid [] w.pid with
  | _, Unix.WEXITED 0 -> Ok ()
  | _, status ->
    let what =
      match status with
      | Unix.WEXITED c -> Printf.sprintf "exited %d" c
      | Unix.WSIGNALED s -> Printf.sprintf "killed by signal %d" s
      | Unix.WSTOPPED s -> Printf.sprintf "stopped by signal %d" s
    in
    Error (Printf.sprintf "worker %d %s" w.pid what)

(* Runs [pending] (scenario indices) over [jobs] workers; calls
   [on_done i elapsed] in the parent as each finishes, in completion
   order. *)
let execute_pool scenarios ~jobs ~result_file ~pending ~on_done =
  let queue = Queue.create () in
  List.iter (fun i -> Queue.add i queue) pending;
  let n_workers = min jobs (Queue.length queue) in
  let workers = List.init n_workers (fun _ -> spawn scenarios ~result_file) in
  let assign w =
    match Queue.take_opt queue with
    | Some i ->
      w.running <- Some i;
      send_line w.work_w (string_of_int i)
    | None ->
      w.running <- None;
      quit w
  in
  let failure = ref None in
  let fail msg = if Option.is_none !failure then failure := Some msg in
  (try
     List.iter assign workers;
     let buf = Bytes.create 4096 in
     let rec pump () =
       let busy = List.filter (fun w -> Option.is_some w.running) workers in
       if busy <> [] && Option.is_none !failure then begin
         let ready, _, _ =
           Unix.select (List.map (fun w -> w.done_r) busy) [] [] (-1.0)
         in
         List.iter
           (fun w ->
             if List.mem w.done_r ready then begin
               let n = read_some w.done_r buf in
               if n = 0 then
                 fail
                   (Printf.sprintf "worker %d died while running scenario %s"
                      w.pid
                      (match w.running with
                      | Some i -> scenarios.(i).Scenario.name
                      | None -> "?"))
               else begin
                 Buffer.add_subbytes w.rbuf buf 0 n;
                 (* complete lines in rbuf are finished scenarios *)
                 let s = Buffer.contents w.rbuf in
                 match String.rindex_opt s '\n' with
                 | None -> ()
                 | Some last ->
                   Buffer.clear w.rbuf;
                   Buffer.add_string w.rbuf
                     (String.sub s (last + 1) (String.length s - last - 1));
                   String.split_on_char '\n' (String.sub s 0 last)
                   |> List.iter (fun line ->
                          match String.split_on_char ' ' line with
                          | [ i; dt; ev ] ->
                            on_done (int_of_string i) (float_of_string dt)
                              (int_of_string ev);
                            assign w
                          | _ -> fail ("bad worker message: " ^ line))
               end
             end)
           busy;
         pump ()
       end
     in
     pump ()
   with e -> fail (Printexc.to_string e));
  (* tear down: on failure, kill whatever is still running *)
  if Option.is_some !failure then
    List.iter
      (fun w ->
        if Option.is_some w.running then
          try Unix.kill w.pid Sys.sigkill with Unix.Unix_error _ -> ())
      workers;
  List.iter
    (fun w ->
      match reap w with
      | Ok () -> ()
      | Error msg -> fail msg)
    workers;
  match !failure with
  | Some msg -> failwith ("Runner: " ^ msg)
  | None -> ()

(* ------------------------------------------------------------------ *)
(* top level                                                           *)

let progress_line fmt = Printf.eprintf fmt

let with_tmpdir f =
  (* mkdtemp is not in the stdlib: reserve a name via temp_file, then
     swap the file for a directory *)
  let marker = Filename.temp_file "xmp_runner_" ".d" in
  Sys.remove marker;
  Sys.mkdir marker 0o700;
  Fun.protect
    ~finally:(fun () ->
      (try
         Array.iter
           (fun f -> Sys.remove (Filename.concat marker f))
           (Sys.readdir marker)
       with Sys_error _ -> ());
      try Sys.rmdir marker with Sys_error _ -> ())
    (fun () -> f marker)

let run ?(jobs = 1) ?(cache = Cache_dir Cache.default_dir) ?(progress = true)
    ?(on_outcome = fun _ -> ()) scenario_list =
  let t0 = Unix.gettimeofday () in
  let jobs = if jobs < 1 then 1 else jobs in
  let scenarios = Array.of_list scenario_list in
  let n = Array.length scenarios in
  let digests = Array.map Scenario.digest scenarios in
  let outcomes : outcome option array = Array.make n None in
  (* ordered streaming: emit outcome i only once 0..i-1 have emitted *)
  let next_emit = ref 0 in
  let emit_ready () =
    while !next_emit < n && Option.is_some outcomes.(!next_emit) do
      (match outcomes.(!next_emit) with
      | Some o -> on_outcome o
      | None -> assert false);
      incr next_emit
    done
  in
  let hits = ref 0 in
  let settle i ~output ~from_cache ~elapsed_s ~events =
    outcomes.(i) <-
      Some
        {
          scenario = scenarios.(i);
          digest = digests.(i);
          output;
          from_cache;
          elapsed_s;
          events;
        };
    emit_ready ()
  in
  (* cache probe; duplicate digests within one run simulate only once *)
  let first_of_digest = Hashtbl.create 16 in
  let pending = ref [] in
  for i = 0 to n - 1 do
    let cached =
      match cache with
      | No_cache -> None
      | Cache_dir dir -> Cache.load ~dir ~key:digests.(i)
    in
    match cached with
    | Some output ->
      incr hits;
      if progress then
        progress_line "[runner] %-18s cache hit  (%s)\n%!"
          scenarios.(i).Scenario.name
          (String.sub digests.(i) 0 8);
      settle i ~output ~from_cache:true ~elapsed_s:0. ~events:0
    | None ->
      if not (Hashtbl.mem first_of_digest digests.(i)) then begin
        Hashtbl.add first_of_digest digests.(i) i;
        pending := i :: !pending
      end
  done;
  let pending = List.rev !pending in
  let done_count = ref 0 in
  let n_to_run = List.length pending in
  with_tmpdir (fun tmpdir ->
      let result_file i = Filename.concat tmpdir ("out." ^ string_of_int i) in
      let on_done i elapsed_s events =
        let output = read_file (result_file i) in
        (match cache with
        | No_cache -> ()
        | Cache_dir dir -> Cache.store ~dir ~key:digests.(i) output);
        incr done_count;
        if progress then
          progress_line
            "[runner] %-18s finished in %6.1fs  %9d events  (%d/%d)\n%!"
            scenarios.(i).Scenario.name elapsed_s events !done_count n_to_run;
        (* settle every scenario sharing this digest *)
        Array.iteri
          (fun j d ->
            if String.equal d digests.(i) && Option.is_none outcomes.(j) then
              settle j ~output ~from_cache:false ~elapsed_s ~events)
          digests
      in
      if pending <> [] then begin
        let prev_sigpipe =
          (* a worker dying between assignment and write must surface as
             EPIPE, not kill the parent *)
          try Some (Sys.signal Sys.sigpipe Sys.Signal_ignore)
          with Invalid_argument _ -> None
        in
        Fun.protect
          ~finally:(fun () ->
            match prev_sigpipe with
            | Some b -> Sys.set_signal Sys.sigpipe b
            | None -> ())
          (fun () ->
            execute_pool scenarios ~jobs ~result_file ~pending ~on_done)
      end);
  let wall_s = Unix.gettimeofday () -. t0 in
  let stats = { hits = !hits; misses = n - !hits; wall_s } in
  if progress then
    progress_line
      "[runner] cache: %d hit%s, %d miss%s; %d job%s; wall %.1fs\n%!"
      stats.hits
      (if stats.hits = 1 then "" else "s")
      stats.misses
      (if stats.misses = 1 then "" else "es")
      jobs
      (if jobs = 1 then "" else "s")
      wall_s;
  let results =
    Array.to_list
      (Array.map
         (function Some o -> o | None -> assert false)
         outcomes)
  in
  (results, stats)

let run_and_print ?jobs ?cache ?progress scenarios =
  let _, stats =
    run ?jobs ?cache ?progress
      ~on_outcome:(fun o ->
        print_string o.output;
        flush Stdlib.stdout)
      scenarios
  in
  stats
