(** Discrete-event simulator.

    A simulator owns a clock, an event heap and a deterministic random state.
    Events are thunks fired in strict timestamp order (ties resolved by
    scheduling order). Scheduling in the past is a programming error and
    raises [Invalid_argument]. *)

type t

type timer
(** Handle to a cancellable scheduled event. *)

val create : ?seed:int -> ?invariants:bool -> unit -> t
(** [create ?seed ?invariants ()] makes a fresh simulator at time 0. The
    random state is seeded with [seed] (default 42), so runs are
    reproducible. [invariants], when given, sets the global
    {!Xmp_check.Invariant} toggle for this run (checks default to on). *)

val now : t -> Time.t

val rng : t -> Random.State.t

val events_executed : t -> int
(** Number of events fired so far (a cheap progress/work metric). *)

val pending : t -> int
(** Number of events still queued (including cancelled timers not yet
    reaped). *)

val at : t -> Time.t -> (unit -> unit) -> unit
(** [at sim time f] schedules [f] to run at absolute [time]. *)

val after : t -> Time.t -> (unit -> unit) -> unit
(** [after sim d f] schedules [f] to run [d] from now. *)

val timer_at : t -> Time.t -> (unit -> unit) -> timer
(** Like {!at} but returns a cancellable handle. *)

val timer_after : t -> Time.t -> (unit -> unit) -> timer

val cancel : timer -> unit
(** Cancelling an already-fired or already-cancelled timer is a no-op. *)

val timer_active : timer -> bool
(** True if the timer is scheduled and neither fired nor cancelled. *)

val run : ?until:Time.t -> t -> unit
(** Runs events until the heap is empty, or until the clock would pass
    [until]. The clock is left at the last executed event's time (or at
    [until] if a cutoff was hit). Events scheduled exactly at [until] do
    run. *)

val step : t -> bool
(** Executes the single earliest event. Returns [false] if none is queued. *)
