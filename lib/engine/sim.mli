(** Discrete-event simulator.

    A simulator owns a clock, an event heap, a deterministic random state
    and a telemetry sink. Events are thunks fired in strict timestamp order
    (ties resolved by scheduling order). Scheduling in the past is a
    programming error and raises [Invalid_argument].

    Cancelled timers are deleted lazily: {!cancel} is O(1) and the heap
    compacts itself once dead entries outnumber half the live ones, so
    pending-event count stays O(live timers) under per-ACK timer churn
    (see {!stats}). Compaction is invisible to dispatch order. *)

type t

type timer
(** Handle to a cancellable scheduled event. *)

type config = {
  seed : int;  (** random-state seed; runs with equal seeds are identical *)
  invariants : bool option;
      (** when [Some b], invariant checking is [b] for events this sim
          dispatches (snapshotted per-sim, so two sims in one process do
          not reconfigure each other); [None] snapshots the ambient
          global {!Xmp_check.Invariant} toggle at creation time (checks
          default to on) *)
  telemetry : Xmp_telemetry.Sink.t;
      (** sink shared with every component built over this simulator;
          {!Xmp_telemetry.Sink.null} disables instrumentation *)
  faults : Fault_spec.t;
      (** declarative fault schedule carried for the benefit of
          [Xmp_faults.Injector.install], which arms it against a concrete
          network; {!Fault_spec.empty} (the default) injects nothing *)
}

type stats = {
  executed : int;  (** live events dispatched *)
  cancelled_skipped : int;
      (** cancelled entries popped and skipped without dispatch *)
  heap_peak : int;  (** largest pending-event count ever reached *)
  rebuilds : int;  (** lazy-deletion compactions of the event heap *)
}

val default_config : config
(** [{ seed = 42; invariants = None; telemetry = Sink.null;
    faults = Fault_spec.empty }] — override fields with record update
    syntax: [Sim.create ~config:{ Sim.default_config with seed = 7 } ()]. *)

val create : ?config:config -> unit -> t
(** A fresh simulator at time 0 (default {!default_config}). *)

val create_legacy : ?seed:int -> ?invariants:bool -> unit -> t
[@@ocaml.deprecated
  "use Sim.create ?config () with a Sim.config record instead"]
(** The pre-telemetry construction API, kept for one release as a
    compatibility shim over {!create}. *)

val now : t -> Time.t

val rng : t -> Random.State.t

val telemetry : t -> Xmp_telemetry.Sink.t
(** The sink this simulator was created with. *)

val faults : t -> Fault_spec.t
(** The fault schedule this simulator was created with (inert until an
    injector is installed over it). *)

val events_executed : t -> int
(** Number of events fired so far (a cheap progress/work metric). *)

val total_events_executed : unit -> int
(** Process-wide event tally across every simulator instance, for harnesses
    (e.g. the scenario runner's workers) that report work done per task as
    a delta of this counter. *)

val global_heap_peak : unit -> int
(** Process-wide event-heap high-water mark across every simulator
    instance since the last {!reset_global_heap_peak} — for harnesses
    (the perf bench) measuring scenarios that construct sims
    internally. *)

val reset_global_heap_peak : unit -> unit

val pending : t -> int
(** Number of events still queued (cancelled timers not yet reaped
    included — bounded at 1.5× the live count by lazy-deletion
    compaction). *)

val next_event_time : t -> Time.t
(** Timestamp of the earliest queued event (cancelled entries included),
    or [Time.infinity] if none — what an epoch orchestrator uses to
    fast-forward over idle windows. *)

val stats : t -> stats
(** Dispatch-loop and heap-hygiene counters for this simulator. *)

val at : t -> Time.t -> (unit -> unit) -> unit
(** [at sim time f] schedules [f] to run at absolute [time]. *)

val after : t -> Time.t -> (unit -> unit) -> unit
(** [after sim d f] schedules [f] to run [d] from now. *)

val timer_at : t -> Time.t -> (unit -> unit) -> timer
(** Like {!at} but returns a cancellable handle. *)

val timer_after : t -> Time.t -> (unit -> unit) -> timer

val cancel : timer -> unit
(** O(1); the heap entry is reaped by a later compaction or skipped at
    pop. Cancelling an already-fired or already-cancelled timer is a
    no-op. *)

val timer_active : timer -> bool
(** True if the timer is scheduled and neither fired nor cancelled. *)

val run : ?until:Time.t -> t -> unit
(** Runs events until the heap is empty, or until the clock would pass
    [until]. The clock is left at the last executed event's time (or at
    [until] if a cutoff was hit). Events scheduled exactly at [until] do
    run. *)

val step : t -> bool
(** Executes the single earliest event. Returns [false] if none is queued. *)
