(** Declarative, deterministic fault schedules.

    A schedule is pure data — links are named by string, hosts by id — so
    that {!Sim.config} can carry one without the engine depending on the
    network layer. The mechanism that resolves targets against a concrete
    [Network.t] and arms simulator events is [Xmp_faults.Injector].

    Determinism: a schedule contributes its own [seed]; every random
    draw the injector makes is taken from a [Random.State] derived from
    [(seed, spec index, link id)], never from wall clock or from the
    simulation's main RNG, so fault outcomes are identical across runs,
    across [--jobs] widths and regardless of other traffic. *)

type target =
  | Link of string  (** one link, by its ["src->dst"] name *)
  | Tag of string  (** every link carrying this topology tag *)
  | All_links

type loss_model =
  | Bernoulli of float  (** i.i.d. drop probability per matching packet *)
  | Gilbert_elliott of {
      enter_bad : float;  (** P(good -> bad) per matching packet *)
      exit_bad : float;  (** P(bad -> good) per matching packet *)
      loss_good : float;  (** drop probability in the good state *)
      loss_bad : float;  (** drop probability in the bad state *)
    }  (** two-state bursty loss channel, advanced per matching packet *)

type packet_filter = Any_packet | Data_only | Ack_only

type window = { from_ns : Time.t; until_ns : Time.t }
(** Half-open activity interval [[from_ns, until_ns)]. *)

type spec =
  | Link_down of { target : target; at : Time.t }
  | Link_up of { target : target; at : Time.t }
  | Loss of {
      target : target;
      window : window;
      model : loss_model;
      filter : packet_filter;
    }
  | Blackout of { target : target; window : window }
      (** the target links' queues drop every arriving packet in-window *)
  | Host_pause of { host : int; window : window }
      (** takes every port of node [host] down for the window *)

type t = { seed : int; specs : spec list }

val empty : t
(** No faults; the default of [Sim.config.faults]. [to_params empty = []],
    so fault-free scenario digests are unchanged by this module's
    existence. *)

val is_empty : t -> bool

val always : window
(** [[0, infinity)]. *)

val window : from_ns:Time.t -> until_ns:Time.t -> window

val create : ?seed:int -> spec list -> t
(** Validates (see {!validate}) and packs a schedule. [seed] defaults
    to 0. *)

val validate : t -> unit
(** Raises [Invalid_argument] on malformed specs: probabilities outside
    [[0, 1]], empty link/tag names, negative times, windows whose end is
    not after their start, negative host ids. *)

val spec_to_string : spec -> string
(** Canonical form, e.g. ["down@1000000000@link=e0.0->a0.0"] or
    ["loss@0..inf@tag=rack@bern=0.01@any"]. Round-trips through
    {!spec_of_string}; also the CLI [--fault] syntax. *)

val spec_of_string : string -> spec
(** Parses {!spec_to_string} output. Times additionally accept
    human-friendly ["1.5s"], ["250ms"], ["40us"] and ["inf"]; the filter
    field of [loss@...] may be omitted (defaults to [any]). Raises
    [Invalid_argument] on anything else. *)

val to_params : t -> (string * string) list
(** Digest serialization: [[]] for an empty schedule, otherwise
    [("faults.seed", ...)] followed by one ["faults.<i>"] pair per spec in
    canonical form. Scenario digests therefore change exactly when the
    effective fault schedule does. *)
