(** Growable binary min-heap of timestamped events, with lazy deletion.

    Events are ordered by [(time, seq)] where [seq] is a monotonically
    increasing insertion counter supplied by the caller: two events scheduled
    for the same instant fire in insertion order, which makes simulations
    deterministic.

    Cancellation support is cooperative: the payload owner flips its own
    "cancelled" mark (cheap, O(1)) and tells the heap via {!note_dead};
    once dead entries outnumber half the live ones the heap compacts
    itself (drops every entry the [live] predicate rejects and rebuilds
    in O(n)), so heap size stays O(live entries) rather than O(total
    cancellations) under timer-churn workloads. Compaction never changes
    the pop order of live entries. *)

type 'a t

val create : ?live:('a -> bool) -> unit -> 'a t
(** [live] classifies payloads during compaction and dead-count
    bookkeeping; the default accepts everything (no lazy deletion —
    {!note_dead} must only be paired with a real predicate). *)

val set_dummy : 'a t -> 'a -> unit
(** Provides the payload used to scrub vacated slots so popped entries
    are not retained by the backing array. Optional: without it the
    first added entry is used, pinning that single payload for the
    heap's lifetime (O(1) retention). Only the first call has effect. *)

val length : 'a t -> int
(** Entries currently in the heap, dead (cancelled, not yet compacted)
    entries included. *)

val is_empty : 'a t -> bool

val dead_count : 'a t -> int
(** Entries still in the heap whose payload the [live] predicate rejects
    — bounded by [length / 3] right after any compaction check. *)

val rebuilds : 'a t -> int
(** Number of lazy-deletion compactions performed so far. *)

val add : 'a t -> time:Time.t -> seq:int -> 'a -> unit

val note_dead : 'a t -> unit
(** Tells the heap one of its entries' payloads just became dead (the
    caller already flipped the state that [live] inspects). May trigger
    an O(n) compaction; amortized O(1) per cancellation. *)

val compact : 'a t -> unit
(** Explicit compaction: drops dead entries now and, when the backing
    array is at most a quarter full afterwards, shrinks it. An emptied
    heap otherwise keeps its capacity so bursty simulations do not
    re-allocate from scratch on every burst. *)

val peek_time : 'a t -> Time.t option
(** Timestamp of the earliest event, if any (dead entries included:
    the dispatcher skips them as it pops). *)

val top_time : 'a t -> Time.t
(** Like {!peek_time} but unboxed: [Time.infinity] when the heap is
    empty. The dispatcher's per-event peek allocates nothing. *)

val pop : 'a t -> (Time.t * int * 'a) option
(** Removes and returns the earliest event as [(time, seq, payload)].
    Dead entries are returned too (adjusting the dead count) — the
    caller decides whether to dispatch. *)

val pop_payload : 'a t -> 'a
(** Removes the earliest event and returns only its payload (its time is
    whatever {!top_time} just said). Allocation-free counterpart of
    {!pop}; raises [Invalid_argument] on an empty heap. *)

val clear : 'a t -> unit
(** Empties the heap and releases the backing array. *)
