type 'a entry = { time : Time.t; seq : int; payload : 'a }

type 'a t = {
  mutable arr : 'a entry array;
  mutable len : int;
  mutable dead : int;
      (* entries still in the heap whose payload [live] rejects; kept
         accurate by [note_dead] (+1) and [pop] (-1 on a dead top) *)
  mutable rebuilds : int;
  mutable dummy : 'a entry option;
      (* canonical entry used to overwrite vacated slots so popped
         payloads are not retained by the backing array; seeded by
         [set_dummy], else by the first [add] (which pins that one
         payload for the heap's lifetime — O(1), documented) *)
  live : 'a -> bool;
}

let create ?(live = fun _ -> true) () =
  { arr = [||]; len = 0; dead = 0; rebuilds = 0; dummy = None; live }

let set_dummy h payload =
  match h.dummy with
  | Some _ -> ()
  | None -> h.dummy <- Some { time = Time.zero; seq = -1; payload }

let length h = h.len

let is_empty h = h.len = 0

let dead_count h = h.dead

let rebuilds h = h.rebuilds

let earlier a b =
  let c = Time.compare a.time b.time in
  c < 0 || (c = 0 && Int.compare a.seq b.seq < 0)

let grow h =
  let cap = Array.length h.arr in
  let cap' = if cap = 0 then 64 else cap * 2 in
  (* The dummy cell below the live region is never read. *)
  let dummy = h.arr.(0) in
  let arr' = Array.make cap' dummy in
  Array.blit h.arr 0 arr' 0 h.len;
  h.arr <- arr'

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if earlier h.arr.(i) h.arr.(parent) then begin
      let tmp = h.arr.(i) in
      h.arr.(i) <- h.arr.(parent);
      h.arr.(parent) <- tmp;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let left = (2 * i) + 1 and right = (2 * i) + 2 in
  let smallest = ref i in
  if left < h.len && earlier h.arr.(left) h.arr.(!smallest) then smallest := left;
  if right < h.len && earlier h.arr.(right) h.arr.(!smallest) then
    smallest := right;
  if !smallest <> i then begin
    let tmp = h.arr.(i) in
    h.arr.(i) <- h.arr.(!smallest);
    h.arr.(!smallest) <- tmp;
    sift_down h !smallest
  end

let add h ~time ~seq payload =
  let entry = { time; seq; payload } in
  if Option.is_none h.dummy then h.dummy <- Some entry;
  if h.len = 0 && Array.length h.arr = 0 then h.arr <- Array.make 64 entry;
  if h.len = Array.length h.arr then grow h;
  h.arr.(h.len) <- entry;
  h.len <- h.len + 1;
  sift_up h (h.len - 1)

let peek_time h = if h.len = 0 then None else Some h.arr.(0).time

let scrub h i =
  match h.dummy with Some d -> h.arr.(i) <- d | None -> ()

let pop h =
  if h.len = 0 then None
  else begin
    let top = h.arr.(0) in
    h.len <- h.len - 1;
    if h.len > 0 then begin
      h.arr.(0) <- h.arr.(h.len);
      (* Clear the vacated slot: left as an alias of the moved entry it
         would keep referencing that entry after it too is popped, so a
         drained heap would pin a backing array's worth of dead
         payloads. One dummy write per pop keeps capacity reusable
         without retaining anything. *)
      scrub h h.len;
      sift_down h 0
    end
    else
      (* Emptied: keep the backing array (bursty simulations would
         otherwise re-allocate from 64 on every burst — call [compact]
         or [clear] to release memory explicitly), but scrub the root
         slot so the popped payload is not retained. *)
      scrub h 0;
    if not (h.live top.payload) then h.dead <- h.dead - 1;
    Some (top.time, top.seq, top.payload)
  end

(* Sift out every dead entry and re-establish the heap property with
   Floyd's bottom-up heapify. Dead entries are never dispatched, so
   removing them is invisible to pop order; heapify preserves the
   (time, seq) total order of the survivors. *)
let purge h =
  if h.dead > 0 then begin
    let j = ref 0 in
    for i = 0 to h.len - 1 do
      let e = h.arr.(i) in
      if h.live e.payload then begin
        h.arr.(!j) <- e;
        incr j
      end
    done;
    for i = !j to h.len - 1 do
      scrub h i
    done;
    h.len <- !j;
    h.dead <- 0;
    for i = (h.len / 2) - 1 downto 0 do
      sift_down h i
    done;
    h.rebuilds <- h.rebuilds + 1
  end

let note_dead h =
  h.dead <- h.dead + 1;
  (* Lazy-deletion compaction: rebuild once dead entries outnumber half
     the live ones, so the heap stays O(live) instead of O(total
     cancellations) under cancel-heavy workloads (per-ACK timer churn). *)
  if h.dead > (h.len - h.dead) / 2 then purge h

let compact h =
  purge h;
  let cap = Array.length h.arr in
  if cap > 64 && h.len * 4 <= cap then begin
    let cap' = Stdlib.max 64 (2 * h.len) in
    if h.len = 0 then h.arr <- [||]
    else begin
      let arr' = Array.make cap' h.arr.(0) in
      Array.blit h.arr 0 arr' 0 h.len;
      h.arr <- arr'
    end
  end

let clear h =
  h.len <- 0;
  h.dead <- 0;
  h.arr <- [||]
