type 'a entry = { time : Time.t; seq : int; payload : 'a }

type 'a t = { mutable arr : 'a entry array; mutable len : int }

let create () = { arr = [||]; len = 0 }

let length h = h.len

let is_empty h = h.len = 0

let earlier a b =
  let c = Time.compare a.time b.time in
  c < 0 || (c = 0 && Int.compare a.seq b.seq < 0)

let grow h =
  let cap = Array.length h.arr in
  let cap' = if cap = 0 then 64 else cap * 2 in
  (* The dummy cell below the live region is never read. *)
  let dummy = h.arr.(0) in
  let arr' = Array.make cap' dummy in
  Array.blit h.arr 0 arr' 0 h.len;
  h.arr <- arr'

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if earlier h.arr.(i) h.arr.(parent) then begin
      let tmp = h.arr.(i) in
      h.arr.(i) <- h.arr.(parent);
      h.arr.(parent) <- tmp;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let left = (2 * i) + 1 and right = (2 * i) + 2 in
  let smallest = ref i in
  if left < h.len && earlier h.arr.(left) h.arr.(!smallest) then smallest := left;
  if right < h.len && earlier h.arr.(right) h.arr.(!smallest) then
    smallest := right;
  if !smallest <> i then begin
    let tmp = h.arr.(i) in
    h.arr.(i) <- h.arr.(!smallest);
    h.arr.(!smallest) <- tmp;
    sift_down h !smallest
  end

let add h ~time ~seq payload =
  let entry = { time; seq; payload } in
  if h.len = 0 && Array.length h.arr = 0 then h.arr <- Array.make 64 entry;
  if h.len = Array.length h.arr then grow h;
  h.arr.(h.len) <- entry;
  h.len <- h.len + 1;
  sift_up h (h.len - 1)

let peek_time h = if h.len = 0 then None else Some h.arr.(0).time

let pop h =
  if h.len = 0 then None
  else begin
    let top = h.arr.(0) in
    h.len <- h.len - 1;
    if h.len > 0 then begin
      h.arr.(0) <- h.arr.(h.len);
      (* The slot above the live region would otherwise pin the moved
         entry's payload; the root entry is live anyway, so aliasing it
         there retains nothing extra. *)
      h.arr.(h.len) <- h.arr.(0);
      sift_down h 0
    end
    else
      (* Emptied: drop the whole array rather than pin stale payloads. *)
      h.arr <- [||];
    Some (top.time, top.seq, top.payload)
  end

let clear h =
  h.len <- 0;
  h.arr <- [||]
