(* The heap is stored as parallel int arrays plus a slot table rather
   than an array of (time, seq, payload) records: [times], [seqs] and
   [slots] are unboxed int arrays ordered by heap position, while the
   payload pointers sit still in the slot-indexed [payloads] table. Sift
   operations therefore move only immediates — no write barrier runs
   while the heap reorders itself, where swap-chaining boxed entries
   would call the barrier once per level per sift. A payload pointer is
   written exactly twice per event: once on [add] (into its slot) and
   once on pop (the slot is scrubbed back to the dummy). *)
type 'a t = {
  mutable times : int array;  (* heap-ordered *)
  mutable seqs : int array;  (* heap-ordered *)
  mutable slots : int array;  (* heap-ordered: index into [payloads] *)
  mutable payloads : 'a array;  (* slot-indexed *)
  mutable free : int array;  (* free slot stack: free.(0 .. free_top-1) *)
  mutable free_top : int;
  mutable len : int;
  mutable dead : int;
      (* entries still in the heap whose payload [live] rejects; kept
         accurate by [note_dead] (+1) and [pop] (-1 on a dead top) *)
  mutable rebuilds : int;
  mutable dummy : 'a option;
      (* canonical payload used to overwrite vacated slots so popped
         payloads are not retained by the backing array; seeded by
         [set_dummy], else by the first [add] (which pins that one
         payload for the heap's lifetime — O(1), documented) *)
  live : 'a -> bool;
}

let create ?(live = fun _ -> true) () =
  {
    times = [||];
    seqs = [||];
    slots = [||];
    payloads = [||];
    free = [||];
    free_top = 0;
    len = 0;
    dead = 0;
    rebuilds = 0;
    dummy = None;
    live;
  }

let set_dummy h payload =
  match h.dummy with Some _ -> () | None -> h.dummy <- Some payload

let length h = h.len

let is_empty h = h.len = 0

let dead_count h = h.dead

let rebuilds h = h.rebuilds

(* Every entry holds exactly one slot, so capacity and slot count grow in
   lockstep; freshly added capacity goes straight onto the free stack. *)
let grow_to h cap' =
  let cap = Array.length h.times in
  let times' = Array.make cap' 0 in
  Array.blit h.times 0 times' 0 h.len;
  h.times <- times';
  let seqs' = Array.make cap' 0 in
  Array.blit h.seqs 0 seqs' 0 h.len;
  h.seqs <- seqs';
  let slots' = Array.make cap' 0 in
  Array.blit h.slots 0 slots' 0 h.len;
  h.slots <- slots';
  (* the dummy cells above the live region are never read *)
  let payloads' = Array.make cap' h.payloads.(0) in
  Array.blit h.payloads 0 payloads' 0 cap;
  h.payloads <- payloads';
  let free' = Array.make cap' 0 in
  Array.blit h.free 0 free' 0 h.free_top;
  h.free <- free';
  for s = cap to cap' - 1 do
    h.free.(h.free_top) <- s;
    h.free_top <- h.free_top + 1
  done

(* Both sifts move the displaced entry as a "hole": its three ints are
   held in locals while ancestors/descendants shift one level, then
   written once at the final position — half the array traffic of
   swap-chaining, on the two loops that dominate heap cost. Indices are
   maintained in [0, len) by construction, so accesses are unchecked. *)
let sift_up h i0 =
  let times = h.times and seqs = h.seqs and slots = h.slots in
  let time = Array.unsafe_get times i0 in
  let seq = Array.unsafe_get seqs i0 in
  let slot = Array.unsafe_get slots i0 in
  let i = ref i0 in
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    let tp = Array.unsafe_get times parent in
    (* xmplint: allow poly-compare-time — int array cells, specialized *)
    if time < tp || (time = tp && seq < Array.unsafe_get seqs parent) then begin
      Array.unsafe_set times !i tp;
      Array.unsafe_set seqs !i (Array.unsafe_get seqs parent);
      Array.unsafe_set slots !i (Array.unsafe_get slots parent);
      i := parent
    end
    else continue := false
  done;
  if !i <> i0 then begin
    Array.unsafe_set times !i time;
    Array.unsafe_set seqs !i seq;
    Array.unsafe_set slots !i slot
  end

let sift_down h i0 =
  let len = h.len in
  let times = h.times and seqs = h.seqs and slots = h.slots in
  let time = Array.unsafe_get times i0 in
  let seq = Array.unsafe_get seqs i0 in
  let slot = Array.unsafe_get slots i0 in
  let i = ref i0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 in
    if l >= len then continue := false
    else begin
      let r = l + 1 in
      let c =
        if r < len then begin
          let tl = Array.unsafe_get times l and tr = Array.unsafe_get times r in
          if
            tr < tl
            || (tr = tl && Array.unsafe_get seqs r < Array.unsafe_get seqs l)
          then r
          else l
        end
        else l
      in
      let tc = Array.unsafe_get times c in
      (* xmplint: allow poly-compare-time — int array cells, specialized *)
      if tc < time || (tc = time && Array.unsafe_get seqs c < seq) then begin
        Array.unsafe_set times !i tc;
        Array.unsafe_set seqs !i (Array.unsafe_get seqs c);
        Array.unsafe_set slots !i (Array.unsafe_get slots c);
        i := c
      end
      else continue := false
    end
  done;
  if !i <> i0 then begin
    Array.unsafe_set times !i time;
    Array.unsafe_set seqs !i seq;
    Array.unsafe_set slots !i slot
  end

let add h ~time ~seq payload =
  if Option.is_none h.dummy then h.dummy <- Some payload;
  if h.len = Array.length h.times then
    if h.len = 0 then begin
      h.times <- Array.make 64 0;
      h.seqs <- Array.make 64 0;
      h.slots <- Array.make 64 0;
      h.payloads <- Array.make 64 payload;
      h.free <- Array.init 64 (fun s -> s);
      h.free_top <- 64
    end
    else grow_to h (2 * h.len);
  h.free_top <- h.free_top - 1;
  let s = h.free.(h.free_top) in
  h.payloads.(s) <- payload;
  let i = h.len in
  h.times.(i) <- time;
  h.seqs.(i) <- seq;
  h.slots.(i) <- s;
  h.len <- i + 1;
  sift_up h i

let peek_time h = if h.len = 0 then None else Some h.times.(0)

let top_time h = if h.len = 0 then Time.infinity else h.times.(0)

let scrub h s =
  match h.dummy with Some d -> h.payloads.(s) <- d | None -> ()

(* Shared pop mechanics: read the root's payload, scrub and free its
   slot (left populated it would keep the payload reachable — a drained
   heap would pin a backing array's worth of dead payloads), move the
   last entry up and restore the heap property, and settle the dead
   count. An emptied heap keeps its capacity (bursty simulations would
   otherwise re-allocate from 64 on every burst — call [compact] or
   [clear] to release memory explicitly). *)
let remove_top h =
  let s = h.slots.(0) in
  let top = h.payloads.(s) in
  scrub h s;
  h.free.(h.free_top) <- s;
  h.free_top <- h.free_top + 1;
  h.len <- h.len - 1;
  if h.len > 0 then begin
    h.times.(0) <- h.times.(h.len);
    h.seqs.(0) <- h.seqs.(h.len);
    h.slots.(0) <- h.slots.(h.len);
    sift_down h 0
  end;
  if not (h.live top) then h.dead <- h.dead - 1;
  top

let pop h =
  if h.len = 0 then None
  else begin
    let time = h.times.(0) and seq = h.seqs.(0) in
    let top = remove_top h in
    Some (time, seq, top)
  end

let pop_payload h =
  if h.len = 0 then invalid_arg "Event_queue.pop_payload: empty"
  else remove_top h

(* Sift out every dead entry and re-establish the heap property with
   Floyd's bottom-up heapify. Dead entries are never dispatched, so
   removing them is invisible to pop order; heapify preserves the
   (time, seq) total order of the survivors. *)
let purge h =
  if h.dead > 0 then begin
    let j = ref 0 in
    for i = 0 to h.len - 1 do
      let s = h.slots.(i) in
      if h.live h.payloads.(s) then begin
        h.times.(!j) <- h.times.(i);
        h.seqs.(!j) <- h.seqs.(i);
        h.slots.(!j) <- s;
        incr j
      end
      else begin
        scrub h s;
        h.free.(h.free_top) <- s;
        h.free_top <- h.free_top + 1
      end
    done;
    h.len <- !j;
    h.dead <- 0;
    for i = (h.len / 2) - 1 downto 0 do
      sift_down h i
    done;
    h.rebuilds <- h.rebuilds + 1
  end

let note_dead h =
  h.dead <- h.dead + 1;
  (* Lazy-deletion compaction: rebuild once dead entries outnumber half
     the live ones, so the heap stays O(live) instead of O(total
     cancellations) under cancel-heavy workloads (per-ACK timer churn). *)
  if h.dead > (h.len - h.dead) / 2 then purge h

let compact h =
  purge h;
  let cap = Array.length h.times in
  if cap > 64 && h.len * 4 <= cap then
    if h.len = 0 then begin
      h.times <- [||];
      h.seqs <- [||];
      h.slots <- [||];
      h.payloads <- [||];
      h.free <- [||];
      h.free_top <- 0
    end
    else begin
      (* live payloads keep their slot numbers, so the slot table can
         only shrink to just past the highest live slot *)
      let max_slot = ref 0 in
      for i = 0 to h.len - 1 do
        if h.slots.(i) > !max_slot then max_slot := h.slots.(i)
      done;
      let cap' = Stdlib.max 64 (Stdlib.max (2 * h.len) (!max_slot + 1)) in
      if cap' < cap then begin
        let times' = Array.make cap' 0 in
        Array.blit h.times 0 times' 0 h.len;
        h.times <- times';
        let seqs' = Array.make cap' 0 in
        Array.blit h.seqs 0 seqs' 0 h.len;
        h.seqs <- seqs';
        let slots' = Array.make cap' 0 in
        Array.blit h.slots 0 slots' 0 h.len;
        h.slots <- slots';
        let payloads' = Array.make cap' h.payloads.(0) in
        Array.blit h.payloads 0 payloads' 0 cap';
        h.payloads <- payloads';
        (* rebuild the free stack from the slots not held by live
           entries *)
        let held = Array.make cap' false in
        for i = 0 to h.len - 1 do
          held.(h.slots.(i)) <- true
        done;
        let free' = Array.make cap' 0 in
        let top = ref 0 in
        for s = cap' - 1 downto 0 do
          if not held.(s) then begin
            free'.(!top) <- s;
            incr top
          end
        done;
        h.free <- free';
        h.free_top <- !top
      end
    end

let clear h =
  h.len <- 0;
  h.dead <- 0;
  h.times <- [||];
  h.seqs <- [||];
  h.slots <- [||];
  h.payloads <- [||];
  h.free <- [||];
  h.free_top <- 0
