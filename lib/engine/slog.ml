type level = Quiet | Info | Debug

(* xmplint: allow mutable-global — the log level is a process-wide UI
   setting written once by the CLI/test harness before any simulation
   starts and only read afterwards; under Domains sharding, worker
   domains never write it, so a plain ref cannot race (see slog.mli). *)
let current = ref Quiet
let set_level l = current := l
let level () = !current

let log sim fmt =
  Format.eprintf "[%a] " Time.pp (Sim.now sim);
  Format.kfprintf
    (fun f -> Format.pp_print_newline f ())
    Format.err_formatter fmt

let drop fmt = Format.ikfprintf (fun _ -> ()) Format.err_formatter fmt

let info sim fmt =
  match !current with Quiet -> drop fmt | Info | Debug -> log sim fmt

let debug sim fmt =
  match !current with Quiet | Info -> drop fmt | Debug -> log sim fmt
