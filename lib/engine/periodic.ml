type t = {
  sim : Sim.t;
  interval : Time.t;
  callback : unit -> unit;
  mutable active : bool;
  mutable ticks : int;
}

let rec schedule t delay =
  Sim.after t.sim delay (fun () ->
      if t.active then begin
        t.ticks <- t.ticks + 1;
        t.callback ();
        if t.active then schedule t t.interval
      end)

let start ?first_after sim ~interval callback =
  if Time.compare interval Time.zero <= 0 then
    invalid_arg "Periodic.start: interval";
  let t = { sim; interval; callback; active = true; ticks = 0 } in
  let first = match first_after with Some d -> d | None -> interval in
  schedule t first;
  t

let stop t = t.active <- false
let is_active t = t.active
let ticks t = t.ticks
