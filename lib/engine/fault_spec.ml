(* Declarative fault schedules.

   This module is pure data: it names links by string and hosts by id so
   that the engine can carry a schedule inside [Sim.config] without
   depending on the network layer. The mechanism that resolves targets
   and arms simulator events lives in [Xmp_faults.Injector].

   Every spec has an exact canonical string form ([spec_to_string] /
   [spec_of_string] round-trip) which doubles as the CLI syntax and as
   the serialization mixed into scenario digests ([to_params]). *)

type target = Link of string | Tag of string | All_links

type loss_model =
  | Bernoulli of float
  | Gilbert_elliott of {
      enter_bad : float;
      exit_bad : float;
      loss_good : float;
      loss_bad : float;
    }

type packet_filter = Any_packet | Data_only | Ack_only

type window = { from_ns : Time.t; until_ns : Time.t }

type spec =
  | Link_down of { target : target; at : Time.t }
  | Link_up of { target : target; at : Time.t }
  | Loss of {
      target : target;
      window : window;
      model : loss_model;
      filter : packet_filter;
    }
  | Blackout of { target : target; window : window }
  | Host_pause of { host : int; window : window }

type t = { seed : int; specs : spec list }

let empty = { seed = 0; specs = [] }

let is_empty t = match t.specs with [] -> true | _ :: _ -> false

let always = { from_ns = Time.zero; until_ns = Time.infinity }

let window ~from_ns ~until_ns = { from_ns; until_ns }

(* ---- validation ------------------------------------------------------ *)

let fail fmt = Printf.ksprintf invalid_arg fmt

let check_probability what p =
  if not (p >= 0. && p <= 1.) then
    fail "Fault_spec: %s probability %g outside [0, 1]" what p

let check_target = function
  | Link "" -> fail "Fault_spec: empty link name"
  | Tag "" -> fail "Fault_spec: empty tag name"
  | Link _ | Tag _ | All_links -> ()

let check_time what at =
  if Time.compare at Time.zero < 0 then
    fail "Fault_spec: negative %s time" what

let check_window w =
  check_time "window start" w.from_ns;
  if Time.compare w.from_ns w.until_ns >= 0 then
    fail "Fault_spec: window end not after start"

let check_model = function
  | Bernoulli p -> check_probability "loss" p
  | Gilbert_elliott g ->
    check_probability "enter-bad" g.enter_bad;
    check_probability "exit-bad" g.exit_bad;
    check_probability "good-state loss" g.loss_good;
    check_probability "bad-state loss" g.loss_bad

let validate_spec = function
  | Link_down { target; at } | Link_up { target; at } ->
    check_target target;
    check_time "link transition" at
  | Loss { target; window; model; filter = _ } ->
    check_target target;
    check_window window;
    check_model model
  | Blackout { target; window } ->
    check_target target;
    check_window window
  | Host_pause { host; window } ->
    if host < 0 then fail "Fault_spec: negative host id %d" host;
    check_window window

let validate t = List.iter validate_spec t.specs

let create ?(seed = 0) specs =
  let t = { seed; specs } in
  validate t;
  t

(* ---- canonical string form ------------------------------------------ *)

let target_to_string = function
  | Link name -> "link=" ^ name
  | Tag name -> "tag=" ^ name
  | All_links -> "all"

let time_to_string at =
  if Time.compare at Time.infinity = 0 then "inf" else string_of_int at

let window_to_string w =
  time_to_string w.from_ns ^ ".." ^ time_to_string w.until_ns

let filter_to_string = function
  | Any_packet -> "any"
  | Data_only -> "data"
  | Ack_only -> "ack"

let model_to_string = function
  | Bernoulli p -> Printf.sprintf "bern=%.12g" p
  | Gilbert_elliott g ->
    Printf.sprintf "ge=%.12g,%.12g,%.12g,%.12g" g.enter_bad g.exit_bad
      g.loss_good g.loss_bad

let spec_to_string = function
  | Link_down { target; at } ->
    Printf.sprintf "down@%s@%s" (time_to_string at) (target_to_string target)
  | Link_up { target; at } ->
    Printf.sprintf "up@%s@%s" (time_to_string at) (target_to_string target)
  | Loss { target; window; model; filter } ->
    Printf.sprintf "loss@%s@%s@%s@%s" (window_to_string window)
      (target_to_string target) (model_to_string model)
      (filter_to_string filter)
  | Blackout { target; window } ->
    Printf.sprintf "blackout@%s@%s" (window_to_string window)
      (target_to_string target)
  | Host_pause { host; window } ->
    Printf.sprintf "pause@%s@host=%d" (window_to_string window) host

let parse_error s why = fail "Fault_spec: cannot parse %S (%s)" s why

(* a time is canonical integer nanoseconds, "inf", or a human-friendly
   float with an s/ms/us suffix ("1.5s", "250ms") *)
let time_of_string s full =
  match int_of_string_opt s with
  | Some ns -> ns
  | None -> (
    if s = "inf" then Time.infinity
    else
      let suffixed suffix scale =
        let n = String.length s - String.length suffix in
        if n > 0 && Filename.check_suffix s suffix then
          match float_of_string_opt (String.sub s 0 n) with
          | Some sec when sec >= 0. ->
            Some (int_of_float (Float.round (sec *. scale)))
          | _ -> None
        else None
      in
      match (suffixed "ms" 1e6, suffixed "us" 1e3, suffixed "s" 1e9) with
      | Some ns, _, _ | None, Some ns, _ | None, None, Some ns -> ns
      | None, None, None -> parse_error full ("bad time " ^ s))

(* "<from>..<until>"; the split is on the last ".." so float starts like
   "1.5s..inf" parse unambiguously *)
let window_of_string s full =
  let sep = ref (-1) in
  String.iteri
    (fun i c -> if c = '.' && i + 1 < String.length s && s.[i + 1] = '.' then
        sep := i)
    s;
  if !sep < 0 then parse_error full ("bad window " ^ s)
  else
    let i = !sep in
    {
      from_ns = time_of_string (String.sub s 0 i) full;
      until_ns = time_of_string (String.sub s (i + 2) (String.length s - i - 2)) full;
    }

let target_of_string s full =
  if s = "all" then All_links
  else
    match String.index_opt s '=' with
    | Some i when String.sub s 0 i = "link" ->
      Link (String.sub s (i + 1) (String.length s - i - 1))
    | Some i when String.sub s 0 i = "tag" ->
      Tag (String.sub s (i + 1) (String.length s - i - 1))
    | _ -> parse_error full ("bad target " ^ s)

let filter_of_string s full =
  match s with
  | "any" -> Any_packet
  | "data" -> Data_only
  | "ack" -> Ack_only
  | _ -> parse_error full ("bad packet filter " ^ s)

let model_of_string s full =
  match String.index_opt s '=' with
  | Some i when String.sub s 0 i = "bern" -> (
    match float_of_string_opt (String.sub s (i + 1) (String.length s - i - 1))
    with
    | Some p -> Bernoulli p
    | None -> parse_error full ("bad loss probability in " ^ s))
  | Some i when String.sub s 0 i = "ge" -> (
    let body = String.sub s (i + 1) (String.length s - i - 1) in
    match List.map float_of_string_opt (String.split_on_char ',' body) with
    | [ Some enter_bad; Some exit_bad; Some loss_good; Some loss_bad ] ->
      Gilbert_elliott { enter_bad; exit_bad; loss_good; loss_bad }
    | _ -> parse_error full ("ge wants 4 comma-separated probabilities: " ^ s))
  | _ -> parse_error full ("bad loss model " ^ s)

let spec_of_string s =
  let spec =
    match String.split_on_char '@' s with
    | [ "down"; at; target ] ->
      Link_down
        { target = target_of_string target s; at = time_of_string at s }
    | [ "up"; at; target ] ->
      Link_up { target = target_of_string target s; at = time_of_string at s }
    | [ "loss"; window; target; model ] ->
      Loss
        {
          target = target_of_string target s;
          window = window_of_string window s;
          model = model_of_string model s;
          filter = Any_packet;
        }
    | [ "loss"; window; target; model; filter ] ->
      Loss
        {
          target = target_of_string target s;
          window = window_of_string window s;
          model = model_of_string model s;
          filter = filter_of_string filter s;
        }
    | [ "blackout"; window; target ] ->
      Blackout
        {
          target = target_of_string target s;
          window = window_of_string window s;
        }
    | [ "pause"; window; host ] -> (
      match String.index_opt host '=' with
      | Some i
        when String.sub host 0 i = "host"
             && int_of_string_opt
                  (String.sub host (i + 1) (String.length host - i - 1))
                <> None ->
        Host_pause
          {
            host =
              int_of_string
                (String.sub host (i + 1) (String.length host - i - 1));
            window = window_of_string window s;
          }
      | _ -> parse_error s ("bad host " ^ host))
    | _ -> parse_error s "unknown fault form"
  in
  validate_spec spec;
  spec

(* ---- digest serialization ------------------------------------------- *)

let to_params t =
  if is_empty t then []
  else
    ("faults.seed", string_of_int t.seed)
    :: List.mapi
         (fun i spec ->
           (Printf.sprintf "faults.%d" i, spec_to_string spec))
         t.specs
