type event = { run : unit -> unit; mutable live : bool }

type timer = event

type t = {
  mutable now : Time.t;
  heap : event Event_queue.t;
  mutable next_seq : int;
  mutable executed : int;
  random : Random.State.t;
  telemetry : Xmp_telemetry.Sink.t;
  faults : Fault_spec.t;
}

module Invariant = Xmp_check.Invariant

type config = {
  seed : int;
  invariants : bool option;
  telemetry : Xmp_telemetry.Sink.t;
  faults : Fault_spec.t;
}

let default_config =
  {
    seed = 42;
    invariants = None;
    telemetry = Xmp_telemetry.Sink.null;
    faults = Fault_spec.empty;
  }

(* process-wide tally across every simulator instance; the scenario runner
   reads deltas of this to report events-per-scenario from its workers *)
let total = ref 0

let total_events_executed () = !total

let create ?(config = default_config) () =
  (match config.invariants with
  | Some b -> Invariant.set_enabled b
  | None -> ());
  {
    now = Time.zero;
    heap = Event_queue.create ();
    next_seq = 0;
    executed = 0;
    random = Random.State.make [| config.seed; 0x584d50 (* "XMP" *) |];
    telemetry = config.telemetry;
    faults = config.faults;
  }

let create_legacy ?(seed = 42) ?invariants () =
  create ~config:{ default_config with seed; invariants } ()

let now t = t.now
let rng t = t.random
let telemetry (t : t) = t.telemetry
let faults (t : t) = t.faults
let events_executed t = t.executed
let pending t = Event_queue.length t.heap

let schedule t time f =
  if Time.compare time t.now < 0 then
    invalid_arg
      (Format.asprintf "Sim: scheduling at %a before now %a" Time.pp time
         Time.pp t.now);
  let ev = { run = f; live = true } in
  Event_queue.add t.heap ~time ~seq:t.next_seq ev;
  t.next_seq <- t.next_seq + 1;
  ev

let at t time f = ignore (schedule t time f)
let after t d f = ignore (schedule t (Time.add t.now d) f)
let timer_at t time f = schedule t time f
let timer_after t d f = schedule t (Time.add t.now d) f
let cancel (ev : timer) = ev.live <- false
let timer_active (ev : timer) = ev.live

let step t =
  match Event_queue.pop t.heap with
  | None -> false
  | Some (time, _seq, ev) ->
    Invariant.require ~name:"sim.dispatch-monotone"
      (Time.compare time t.now >= 0) (fun () ->
        Format.asprintf "event at %a dispatched after clock reached %a"
          Time.pp time Time.pp t.now);
    t.now <- time;
    if ev.live then begin
      ev.live <- false;
      t.executed <- t.executed + 1;
      incr total;
      ev.run ()
    end;
    true

let run ?(until = Time.infinity) t =
  let continue = ref true in
  while !continue do
    match Event_queue.peek_time t.heap with
    | None -> continue := false
    | Some time when Time.compare time until > 0 ->
      t.now <- until;
      continue := false
    | Some _ -> ignore (step t)
  done
