type event = {
  mutable run : unit -> unit;
  mutable live : bool;
  pooled : bool;
      (* anonymous [at]/[after] events are recycled through the sim's
         free list right after they fire — their handles never escape, so
         nothing can cancel or inspect a recycled record. Timer events
         ([timer_at]/[timer_after]) hand their record out and are never
         pooled: a recycled timer handle would let a stale [cancel] kill
         whatever event the record was reused for. *)
  heap : event Event_queue.t;
      (* owning heap, so [cancel] can report the dead entry for
         lazy-deletion compaction without widening its signature *)
}

type timer = event

type t = {
  mutable now : Time.t;
  heap : event Event_queue.t;
  mutable free_events : event array;  (* free list of pooled records *)
  mutable free_top : int;
  mutable next_seq : int;
  mutable executed : int;
  mutable flushed : int;
      (* portion of [executed] already added to the process-wide counter;
         flushed at the end of every [run] so the hot loop never touches
         the atomic *)
  mutable cancelled_skipped : int;
  mutable heap_peak : int;
  invariants : bool;
      (* snapshot taken at creation; re-asserted on every dispatch so two
         sims with different settings in one process do not bleed into
         each other (the global toggle is the ambient default) *)
  random : Random.State.t;
  telemetry : Xmp_telemetry.Sink.t;
  faults : Fault_spec.t;
}

module Invariant = Xmp_check.Invariant

type config = {
  seed : int;
  invariants : bool option;
  telemetry : Xmp_telemetry.Sink.t;
  faults : Fault_spec.t;
}

type stats = {
  executed : int;
  cancelled_skipped : int;
  heap_peak : int;
  rebuilds : int;
}

let default_config =
  {
    seed = 42;
    invariants = None;
    telemetry = Xmp_telemetry.Sink.null;
    faults = Fault_spec.empty;
  }

(* process-wide tally across every simulator instance; the scenario runner
   reads deltas of this to report events-per-scenario from its workers.
   Atomic so the count stays exact when sims run on several Domains. *)
let total = Atomic.make 0

let total_events_executed () = Atomic.get total

(* process-wide heap high-water mark, for harnesses (the perf bench)
   that measure scenarios which construct their sims internally *)
let global_peak = Atomic.make 0

let global_heap_peak () = Atomic.get global_peak
let reset_global_heap_peak () = Atomic.set global_peak 0

(* lock-free monotone max: retry only when another domain raced the slot *)
let rec raise_global_peak len =
  let cur = Atomic.get global_peak in
  if len > cur && not (Atomic.compare_and_set global_peak cur len) then
    raise_global_peak len

let create ?(config = default_config) () =
  let invariants =
    match config.invariants with
    | Some b ->
      (* also applied immediately: construction-time code (e.g. a
         transport's initial send) checks under the requested setting *)
      Invariant.set_enabled b;
      b
    | None -> Invariant.enabled ()
  in
  let heap = Event_queue.create ~live:(fun (ev : event) -> ev.live) () in
  Event_queue.set_dummy heap { run = ignore; live = false; pooled = false; heap };
  {
    now = Time.zero;
    heap;
    free_events = [||];
    free_top = 0;
    next_seq = 0;
    executed = 0;
    flushed = 0;
    cancelled_skipped = 0;
    heap_peak = 0;
    invariants;
    random = Random.State.make [| config.seed; 0x584d50 (* "XMP" *) |];
    telemetry = config.telemetry;
    faults = config.faults;
  }

let create_legacy ?(seed = 42) ?invariants () =
  create ~config:{ default_config with seed; invariants } ()

let now t = t.now
let next_event_time (t : t) = Event_queue.top_time t.heap
let rng t = t.random
let telemetry (t : t) = t.telemetry
let faults (t : t) = t.faults
let events_executed (t : t) = t.executed
let pending t = Event_queue.length t.heap

let stats (t : t) =
  {
    executed = t.executed;
    cancelled_skipped = t.cancelled_skipped;
    heap_peak = t.heap_peak;
    rebuilds = Event_queue.rebuilds t.heap;
  }

let check_time t time =
  if Time.compare time t.now < 0 then
    invalid_arg
      (Format.asprintf "Sim: scheduling at %a before now %a" Time.pp time
         Time.pp t.now)

let enqueue t time ev =
  Event_queue.add t.heap ~time ~seq:t.next_seq ev;
  t.next_seq <- t.next_seq + 1;
  let len = Event_queue.length t.heap in
  if len > t.heap_peak then begin
    t.heap_peak <- len;
    (* the global mark only moves when the local one does, so the atomic
       stays off the per-event path *)
    raise_global_peak len
  end

let acquire_event t f =
  if t.free_top > 0 then begin
    let i = t.free_top - 1 in
    t.free_top <- i;
    let ev = t.free_events.(i) in
    ev.run <- f;
    ev.live <- true;
    ev
  end
  else { run = f; live = true; pooled = true; heap = t.heap }

let release_event t ev =
  (* drop the fired closure now — a parked free-list record must not keep
     an arbitrary closure graph (packets, connections) reachable *)
  ev.run <- ignore;
  if t.free_top = Array.length t.free_events then begin
    let cap = Stdlib.max 64 (2 * t.free_top) in
    let arr = Array.make cap ev in
    Array.blit t.free_events 0 arr 0 t.free_top;
    t.free_events <- arr
  end;
  t.free_events.(t.free_top) <- ev;
  t.free_top <- t.free_top + 1

let at t time f =
  check_time t time;
  enqueue t time (acquire_event t f)

let after t d f =
  let time = Time.add t.now d in
  check_time t time;
  enqueue t time (acquire_event t f)

let timer_at t time f =
  check_time t time;
  let ev = { run = f; live = true; pooled = false; heap = t.heap } in
  enqueue t time ev;
  ev

let timer_after t d f = timer_at t (Time.add t.now d) f

let cancel (ev : timer) =
  if ev.live then begin
    ev.live <- false;
    Event_queue.note_dead ev.heap
  end

let timer_active (ev : timer) = ev.live

(* Dispatch mechanics shared by [step] and the [run] loop; the caller has
   already established the heap is non-empty and read the top's time. *)
let dispatch_top t time =
  let ev = Event_queue.pop_payload t.heap in
  if ev.live then begin
      if Invariant.enabled () <> t.invariants then
        Invariant.set_enabled t.invariants;
      if t.invariants then
        Invariant.require ~name:"sim.dispatch-monotone"
          (Time.compare time t.now >= 0) (fun () ->
            Format.asprintf "event at %a dispatched after clock reached %a"
              Time.pp time Time.pp t.now);
      t.now <- time;
      ev.live <- false;
      t.executed <- t.executed + 1;
      let f = ev.run in
      (* recycle before running: [f] is saved, and anything [f] schedules
         may legitimately reuse this record *)
      if ev.pooled then release_event t ev;
      f ()
    end
    else begin
      (* cancelled (or compaction dummy) entries still advance the clock
         — exactly what dispatching them used to do — but are not
         counted as executed work *)
      if Time.compare time t.now > 0 then t.now <- time;
      t.cancelled_skipped <- t.cancelled_skipped + 1
    end

let step t =
  if Event_queue.is_empty t.heap then false
  else begin
    dispatch_top t (Event_queue.top_time t.heap);
    true
  end

let flush_total (t : t) =
  if t.executed > t.flushed then begin
    ignore (Atomic.fetch_and_add total (t.executed - t.flushed));
    t.flushed <- t.executed
  end

let run ?(until = Time.infinity) t =
  let continue = ref true in
  while !continue do
    if Event_queue.is_empty t.heap then continue := false
    else begin
      let time = Event_queue.top_time t.heap in
      if Time.compare time until > 0 then begin
        t.now <- until;
        continue := false
      end
      else dispatch_top t time
    end
  done;
  flush_total t
