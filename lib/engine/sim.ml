type event = {
  run : unit -> unit;
  mutable live : bool;
  heap : event Event_queue.t;
      (* owning heap, so [cancel] can report the dead entry for
         lazy-deletion compaction without widening its signature *)
}

type timer = event

type t = {
  mutable now : Time.t;
  heap : event Event_queue.t;
  mutable next_seq : int;
  mutable executed : int;
  mutable cancelled_skipped : int;
  mutable heap_peak : int;
  invariants : bool;
      (* snapshot taken at creation; re-asserted on every dispatch so two
         sims with different settings in one process do not bleed into
         each other (the global toggle is the ambient default) *)
  random : Random.State.t;
  telemetry : Xmp_telemetry.Sink.t;
  faults : Fault_spec.t;
}

module Invariant = Xmp_check.Invariant

type config = {
  seed : int;
  invariants : bool option;
  telemetry : Xmp_telemetry.Sink.t;
  faults : Fault_spec.t;
}

type stats = {
  executed : int;
  cancelled_skipped : int;
  heap_peak : int;
  rebuilds : int;
}

let default_config =
  {
    seed = 42;
    invariants = None;
    telemetry = Xmp_telemetry.Sink.null;
    faults = Fault_spec.empty;
  }

(* process-wide tally across every simulator instance; the scenario runner
   reads deltas of this to report events-per-scenario from its workers.
   Atomic so the count stays exact when sims run on several Domains. *)
let total = Atomic.make 0

let total_events_executed () = Atomic.get total

(* process-wide heap high-water mark, for harnesses (the perf bench)
   that measure scenarios which construct their sims internally *)
let global_peak = Atomic.make 0

let global_heap_peak () = Atomic.get global_peak
let reset_global_heap_peak () = Atomic.set global_peak 0

(* lock-free monotone max: retry only when another domain raced the slot *)
let rec raise_global_peak len =
  let cur = Atomic.get global_peak in
  if len > cur && not (Atomic.compare_and_set global_peak cur len) then
    raise_global_peak len

let create ?(config = default_config) () =
  let invariants =
    match config.invariants with
    | Some b ->
      (* also applied immediately: construction-time code (e.g. a
         transport's initial send) checks under the requested setting *)
      Invariant.set_enabled b;
      b
    | None -> Invariant.enabled ()
  in
  let heap = Event_queue.create ~live:(fun (ev : event) -> ev.live) () in
  Event_queue.set_dummy heap { run = ignore; live = false; heap };
  {
    now = Time.zero;
    heap;
    next_seq = 0;
    executed = 0;
    cancelled_skipped = 0;
    heap_peak = 0;
    invariants;
    random = Random.State.make [| config.seed; 0x584d50 (* "XMP" *) |];
    telemetry = config.telemetry;
    faults = config.faults;
  }

let create_legacy ?(seed = 42) ?invariants () =
  create ~config:{ default_config with seed; invariants } ()

let now t = t.now
let rng t = t.random
let telemetry (t : t) = t.telemetry
let faults (t : t) = t.faults
let events_executed (t : t) = t.executed
let pending t = Event_queue.length t.heap

let stats (t : t) =
  {
    executed = t.executed;
    cancelled_skipped = t.cancelled_skipped;
    heap_peak = t.heap_peak;
    rebuilds = Event_queue.rebuilds t.heap;
  }

let schedule t time f =
  if Time.compare time t.now < 0 then
    invalid_arg
      (Format.asprintf "Sim: scheduling at %a before now %a" Time.pp time
         Time.pp t.now);
  let ev = { run = f; live = true; heap = t.heap } in
  Event_queue.add t.heap ~time ~seq:t.next_seq ev;
  t.next_seq <- t.next_seq + 1;
  let len = Event_queue.length t.heap in
  if len > t.heap_peak then t.heap_peak <- len;
  raise_global_peak len;
  ev

let at t time f = ignore (schedule t time f)
let after t d f = ignore (schedule t (Time.add t.now d) f)
let timer_at t time f = schedule t time f
let timer_after t d f = schedule t (Time.add t.now d) f

let cancel (ev : timer) =
  if ev.live then begin
    ev.live <- false;
    Event_queue.note_dead ev.heap
  end

let timer_active (ev : timer) = ev.live

let step t =
  match Event_queue.pop t.heap with
  | None -> false
  | Some (time, _seq, ev) ->
    if ev.live then begin
      if Invariant.enabled () <> t.invariants then
        Invariant.set_enabled t.invariants;
      Invariant.require ~name:"sim.dispatch-monotone"
        (Time.compare time t.now >= 0) (fun () ->
          Format.asprintf "event at %a dispatched after clock reached %a"
            Time.pp time Time.pp t.now);
      t.now <- time;
      ev.live <- false;
      t.executed <- t.executed + 1;
      Atomic.incr total;
      ev.run ()
    end
    else begin
      (* cancelled (or compaction dummy) entries still advance the clock
         — exactly what dispatching them used to do — but are not
         counted as executed work *)
      if Time.compare time t.now > 0 then t.now <- time;
      t.cancelled_skipped <- t.cancelled_skipped + 1
    end;
    true

let run ?(until = Time.infinity) t =
  let continue = ref true in
  while !continue do
    match Event_queue.peek_time t.heap with
    | None -> continue := false
    | Some time when Time.compare time until > 0 ->
      t.now <- until;
      continue := false
    | Some _ -> ignore (step t)
  done
