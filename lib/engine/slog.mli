(** Minimal simulation-time-stamped logging.

    Disabled by default so hot paths cost a single branch. Intended for
    debugging scenarios, not for measurement output (benches print their own
    tables). *)

type level = Quiet | Info | Debug

val set_level : level -> unit
(** Sets the process-wide level. Single-domain by contract: call it from
    the main domain before simulations start (the CLI does this once at
    argument-parse time). Worker domains must only read the level — the
    backing store is a deliberate non-atomic global (see the
    [mutable-global] waiver in [slog.ml]). *)

val level : unit -> level

val info : Sim.t -> ('a, Format.formatter, unit) format -> 'a
(** [info sim fmt ...] prints ["[<time>] ..."] on stderr when the level is
    [Info] or [Debug]. *)

val debug : Sim.t -> ('a, Format.formatter, unit) format -> 'a
(** Like {!info}, only at [Debug]. *)
