module Cc = Xmp_transport.Cc
module Reno = Xmp_transport.Reno

type state = {
  params : Reno.params;
  view : Cc.view;
  g : Coupling.group;
  mutable cwnd : float;
  mutable ssthresh : float;
}

let srtt_s st = Xmp_engine.Time.to_float_s (st.view.Cc.srtt ())

(* alpha_r = max_k x_k / x_r >= 1, the best-path rate ratio; 1 when the
   subflow's own rate is unknown (no RTT sample yet). *)
let alpha_of st =
  let rtt_s = srtt_s st in
  if rtt_s <= 0. then 1.
  else begin
    let x_r = st.cwnd /. rtt_s in
    if x_r <= 0. then 1. else Float.max 1. (Coupling.max_rate st.g /. x_r)
  end

(* Per-ACK congestion-avoidance gain:
   (x_r/rtt_r) / (Σ_k x_k)² · (1+α)/2 · (4+α)/5.
   With one path α = 1 and the gain is exactly 1/w (plain Reno); in
   general α² ≥ max/x ratios make the gain ≤ 1/w (do no harm). *)
let increase st =
  let rtt_s = srtt_s st in
  let sum = Coupling.total_rate st.g in
  if rtt_s <= 0. || sum <= 0. then 1. /. st.cwnd
  else begin
    let x_r = st.cwnd /. rtt_s in
    if x_r <= 0. then 1. /. st.cwnd
    else begin
      let alpha = Float.max 1. (Coupling.max_rate st.g /. x_r) in
      let f = (1. +. alpha) /. 2. *. ((4. +. alpha) /. 5.) in
      x_r /. rtt_s /. (sum *. sum) *. f
    end
  end

(* Loss cut: w ← w · (1 − min(α, 1.5)/2), i.e. between half (α = 1,
   Reno-equivalent) and a quarter (α ≥ 1.5) of the window survives. *)
let cut st =
  let factor = 1. -. (Float.min (alpha_of st) 1.5 /. 2.) in
  st.ssthresh <-
    Float.max (st.cwnd *. factor) (Float.max st.params.min_cwnd 2.);
  st.cwnd <- st.ssthresh

let in_slow_start st = st.cwnd < st.ssthresh

let coupling ?(params = Reno.default_params) () =
  let module M = struct
    let name = "balia"

    type flow = unit

    type nonrec state = state

    let flow () = ()

    let init ~flow:() ~group:g ~index:_ view =
      {
        params;
        view;
        g;
        cwnd = params.Reno.init_cwnd;
        ssthresh = Float.max_float;
      }

    let cwnd st = st.cwnd

    let in_slow_start = in_slow_start

    let take_cwr _st = false

    let on_ack st ~ack:_ ~newly_acked ~ce_count:_ =
      for _ = 1 to newly_acked do
        if in_slow_start st then st.cwnd <- st.cwnd +. 1.
        else st.cwnd <- st.cwnd +. increase st
      done

    (* loss-driven: Balia flows are not ECN-capable *)
    let on_ecn _st ~count:_ = ()

    let on_fast_retransmit st = cut st

    let on_timeout st =
      st.ssthresh <- Float.max (st.cwnd /. 2.) 2.;
      st.cwnd <- Float.max st.params.Reno.min_cwnd 1.
  end in
  Coupling.make (module M)
