(** Coupled congestion control across the subflows of one MPTCP flow.

    A coupling is instantiated once per flow ({!fresh}); the resulting
    group closure hands each subflow a {!Xmp_transport.Cc} factory whose
    behaviour may depend on every sibling's state. Implementations
    register each member's window and RTT getters in the group as the
    subflow connections are created.

    Controllers are written as {!COUPLING} instances and turned into a
    scheme-facing coupling with {!make}; the legacy closure form
    ({!uncoupled}, or building {!t} by hand as XMP's TraSh does) remains
    available for controllers that predate the signature. *)

type member = {
  cwnd : unit -> float;  (** subflow congestion window, segments *)
  srtt_s : unit -> float;  (** smoothed RTT, seconds *)
  in_slow_start : unit -> bool;
}

type group
(** Mutable per-flow registry of members. *)

val group : unit -> group

val register : group -> member -> unit

val members : group -> member list
(** In registration order. *)

val n_members : group -> int

val total_cwnd : group -> float

val total_rate : group -> float
(** [Σ cwnd_i / srtt_i], segments per second. *)

val max_rate : group -> float
(** [max_i cwnd_i / srtt_i], segments per second (0 when no member has a
    positive RTT yet); the best-path rate Balia's α ratio is taken
    against. *)

val min_srtt : group -> float
(** Smallest smoothed RTT across members, seconds. *)

type t = {
  name : string;
  fresh : unit -> int -> Xmp_transport.Cc.factory;
      (** [fresh ()] creates the per-flow group; applying the result to a
          subflow index yields that subflow's controller factory. *)
}

val uncoupled : name:string -> Xmp_transport.Cc.factory -> t
(** Runs the given controller independently on every subflow (the paper's
    "violates fairness" strawman; useful as an experimental control). *)

(** The coupled-controller signature: per-subflow [state] created by
    [init] against the flow's shared [flow] value and member [group],
    with event hooks mirroring {!Xmp_transport.Cc.t}. [init] must not
    register the subflow itself — {!make} registers a member whose
    getters delegate to [cwnd]/[in_slow_start] right after [init]
    returns, so registration order equals subflow creation order. *)
module type COUPLING = sig
  val name : string

  type flow
  (** State shared by every subflow of one MPTCP flow (e.g. OLIA's
      per-path loss history list). *)

  type state
  (** One subflow's controller state. *)

  val flow : unit -> flow

  val init : flow:flow -> group:group -> index:int -> Xmp_transport.Cc.view -> state

  val cwnd : state -> float

  val in_slow_start : state -> bool

  val take_cwr : state -> bool

  val on_ack : state -> ack:int -> newly_acked:int -> ce_count:int -> unit

  val on_ecn : state -> count:int -> unit

  val on_fast_retransmit : state -> unit

  val on_timeout : state -> unit
end

val make : (module COUPLING) -> t
(** Wraps a {!COUPLING} instance: [fresh ()] creates the shared [flow]
    value and an empty member group; each subflow's factory builds its
    [state] via [init], registers it as a group member, and exposes the
    hooks as a {!Xmp_transport.Cc.t}. *)
