module Cc = Xmp_transport.Cc
module Reno = Xmp_transport.Reno

let default_params = { Reno.default_params with ecn = true }

let coupling ?(params = default_params) () =
  let params = { params with Reno.ecn = true } in
  let module M = struct
    let name = "amp"

    type flow = unit

    type state = Cc.t

    let flow () = ()

    let init ~flow:() ~group:g ~index:_ view =
      (* semi-coupled congestion avoidance: each acked segment adds
         1/Σ_k w_k, so the flow as a whole grows one segment per RTT
         regardless of how many subflows it runs (≤ 1/w on every
         subflow — do no harm) *)
      let increase ~cwnd =
        let total = Coupling.total_cwnd g in
        if total <= 0. then 1. /. cwnd else Float.min (1. /. total) (1. /. cwnd)
      in
      Reno.make_with_increase ~params ~increase () view

    let cwnd (cc : state) = cc.Cc.cwnd ()

    let in_slow_start (cc : state) = cc.Cc.in_slow_start ()

    let take_cwr (cc : state) = cc.Cc.take_cwr ()

    let on_ack (cc : state) = cc.Cc.on_ack

    let on_ecn (cc : state) = cc.Cc.on_ecn

    let on_fast_retransmit (cc : state) = cc.Cc.on_fast_retransmit ()

    let on_timeout (cc : state) = cc.Cc.on_timeout ()
  end in
  Coupling.make (module M)
