(** AMP — the ECN-driven multipath controller of Kheirkhah & Lee,
    "AMP: A Better Multipath TCP for Data Center Networks"
    (arXiv:1707.00322), reconstructed from the paper's published rules
    (PAPERS.md carries only the abstract, so this is a documented
    reconstruction, not a line-for-line port):

    - subflows are ECN-capable and run over DCTCP-style exact-echo
      marking ({!Xmp_core.Xmp.dctcp_tcp_config});
    - congestion avoidance is semi-coupled: an acked segment on subflow
      [r] adds [1/Σ_k w_k], one segment per RTT flow-wide;
    - a CE echo halves the marked subflow's window at most once per
      window of data (classic CWR gating), replacing AMP's once-per-RTT
      marking reaction;
    - loss reactions stay NewReno per subflow — AMP's fast path
      failover rides on the transport's existing retransmission logic.

    Slow start is per-subflow standard; the first CE echo exits it. *)

val default_params : Xmp_transport.Reno.params
(** Reno defaults with [ecn = true]. *)

val coupling : ?params:Xmp_transport.Reno.params -> unit -> Coupling.t
(** [ecn] is forced on regardless of [params]. *)
