(** MP-Veno — TCP Veno's delay-threshold loss discrimination (Fu & Liew,
    JSAC 2003) grafted onto LIA's coupled increase, after the
    [mp_veno_sender] exemplar.

    Each subflow estimates its bottleneck backlog from the RTT inflation
    over the path's base RTT ({!Xmp_transport.Cc.view}'s [min_rtt]):

    {v N = w · (srtt − base_rtt) / srtt v}

    In congestion avoidance the subflow applies LIA's coupled gain while
    [N < β] (β = 3 segments) and half of it once [N ≥ β] (Veno's
    increase-every-other-ACK rule). On fast retransmit the cut keeps 4/5
    of the window when [N < β] — the loss is presumed random — and half
    otherwise. Loss-driven (not ECN-capable). *)

val beta_pkts : float
(** Veno's default backlog threshold β in segments (3). *)

val coupling :
  ?params:Xmp_transport.Reno.params ->
  ?beta_pkts:float ->
  unit ->
  Coupling.t
(** [beta_pkts] (default {!beta_pkts}) is the backlog threshold β the
    random-vs-congestive discrimination compares against. *)
