type member = {
  cwnd : unit -> float;
  srtt_s : unit -> float;
  in_slow_start : unit -> bool;
}

type group = { mutable members : member list (* reverse order *) }

let group () = { members = [] }
let register g m = g.members <- m :: g.members
let members g = List.rev g.members

let total_cwnd g =
  List.fold_left (fun acc m -> acc +. m.cwnd ()) 0. g.members

let total_rate g =
  List.fold_left
    (fun acc m ->
      let rtt_s = m.srtt_s () in
      if rtt_s > 0. then acc +. (m.cwnd () /. rtt_s) else acc)
    0. g.members

let min_srtt g =
  List.fold_left
    (fun acc m ->
      let rtt_s = m.srtt_s () in
      if rtt_s > 0. then Float.min acc rtt_s else acc)
    Float.max_float g.members

type t = { name : string; fresh : unit -> int -> Xmp_transport.Cc.factory }

let uncoupled ~name factory =
  { name; fresh = (fun () _index -> factory) }
