module Cc = Xmp_transport.Cc

type member = {
  cwnd : unit -> float;
  srtt_s : unit -> float;
  in_slow_start : unit -> bool;
}

type group = { mutable members : member list (* reverse order *) }

let group () = { members = [] }
let register g m = g.members <- m :: g.members
let members g = List.rev g.members
let n_members g = List.length g.members

let total_cwnd g =
  List.fold_left (fun acc m -> acc +. m.cwnd ()) 0. g.members

let total_rate g =
  List.fold_left
    (fun acc m ->
      let rtt_s = m.srtt_s () in
      if rtt_s > 0. then acc +. (m.cwnd () /. rtt_s) else acc)
    0. g.members

let max_rate g =
  List.fold_left
    (fun acc m ->
      let rtt_s = m.srtt_s () in
      if rtt_s > 0. then Float.max acc (m.cwnd () /. rtt_s) else acc)
    0. g.members

let min_srtt g =
  List.fold_left
    (fun acc m ->
      let rtt_s = m.srtt_s () in
      if rtt_s > 0. then Float.min acc rtt_s else acc)
    Float.max_float g.members

type t = { name : string; fresh : unit -> int -> Xmp_transport.Cc.factory }

let uncoupled ~name factory =
  { name; fresh = (fun () _index -> factory) }

module type COUPLING = sig
  val name : string

  type flow

  type state

  val flow : unit -> flow

  val init : flow:flow -> group:group -> index:int -> Cc.view -> state

  val cwnd : state -> float

  val in_slow_start : state -> bool

  val take_cwr : state -> bool

  val on_ack : state -> ack:int -> newly_acked:int -> ce_count:int -> unit

  val on_ecn : state -> count:int -> unit

  val on_fast_retransmit : state -> unit

  val on_timeout : state -> unit
end

let make (module C : COUPLING) =
  let fresh () =
    let f = C.flow () in
    let g = group () in
    fun index view ->
      let st = C.init ~flow:f ~group:g ~index view in
      register g
        {
          cwnd = (fun () -> C.cwnd st);
          srtt_s = (fun () -> Xmp_engine.Time.to_float_s (view.Cc.srtt ()));
          in_slow_start = (fun () -> C.in_slow_start st);
        };
      {
        Cc.name = C.name;
        cwnd = (fun () -> C.cwnd st);
        on_ack =
          (fun ~ack ~newly_acked ~ce_count ->
            C.on_ack st ~ack ~newly_acked ~ce_count);
        on_ecn = (fun ~count -> C.on_ecn st ~count);
        on_fast_retransmit = (fun () -> C.on_fast_retransmit st);
        on_timeout = (fun () -> C.on_timeout st);
        in_slow_start = (fun () -> C.in_slow_start st);
        take_cwr = (fun () -> C.take_cwr st);
      }
  in
  { name = C.name; fresh }
