module Reno = Xmp_transport.Reno
module Cc = Xmp_transport.Cc

let alpha ~windows_rtts =
  let total = List.fold_left (fun acc (w, _) -> acc +. w) 0. windows_rtts in
  let best =
    List.fold_left
      (fun acc (w, rtt_s) ->
        if rtt_s > 0. then Float.max acc (w /. (rtt_s *. rtt_s)) else acc)
      0. windows_rtts
  in
  let denom =
    List.fold_left
      (fun acc (w, rtt_s) -> if rtt_s > 0. then acc +. (w /. rtt_s) else acc)
      0. windows_rtts
  in
  if denom <= 0. || total <= 0. then 0.
  else total *. best /. (denom *. denom)

let coupling ?(params = Reno.default_params) () =
  let module M = struct
    let name = "lia"

    type flow = unit

    type state = Cc.t

    let flow () = ()

    let init ~flow:() ~group:g ~index:_ view =
      let increase ~cwnd =
        let windows_rtts =
          List.map
            (fun m -> (m.Coupling.cwnd (), m.Coupling.srtt_s ()))
            (Coupling.members g)
        in
        let total = Coupling.total_cwnd g in
        let a = alpha ~windows_rtts in
        if total <= 0. then 1. /. cwnd
        else Float.min (a /. total) (1. /. cwnd)
      in
      Reno.make_with_increase ~params ~increase () view

    let cwnd (cc : state) = cc.Cc.cwnd ()

    let in_slow_start (cc : state) = cc.Cc.in_slow_start ()

    let take_cwr (cc : state) = cc.Cc.take_cwr ()

    let on_ack (cc : state) = cc.Cc.on_ack

    let on_ecn (cc : state) = cc.Cc.on_ecn

    let on_fast_retransmit (cc : state) = cc.Cc.on_fast_retransmit ()

    let on_timeout (cc : state) = cc.Cc.on_timeout ()
  end in
  Coupling.make (module M)
