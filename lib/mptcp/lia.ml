module Reno = Xmp_transport.Reno
module Cc = Xmp_transport.Cc

let alpha ~windows_rtts =
  let total = List.fold_left (fun acc (w, _) -> acc +. w) 0. windows_rtts in
  let best =
    List.fold_left
      (fun acc (w, rtt_s) ->
        if rtt_s > 0. then Float.max acc (w /. (rtt_s *. rtt_s)) else acc)
      0. windows_rtts
  in
  let denom =
    List.fold_left
      (fun acc (w, rtt_s) -> if rtt_s > 0. then acc +. (w /. rtt_s) else acc)
      0. windows_rtts
  in
  if denom <= 0. || total <= 0. then 0.
  else total *. best /. (denom *. denom)

let coupling ?(params = Reno.default_params) () =
  let fresh () =
    let g = Coupling.group () in
    fun _index view ->
      let increase ~cwnd =
        let windows_rtts =
          List.map
            (fun m -> (m.Coupling.cwnd (), m.Coupling.srtt_s ()))
            (Coupling.members g)
        in
        let total = Coupling.total_cwnd g in
        let a = alpha ~windows_rtts in
        if total <= 0. then 1. /. cwnd
        else Float.min (a /. total) (1. /. cwnd)
      in
      let cc = Reno.make_with_increase ~params ~increase () view in
      Coupling.register g
        {
          Coupling.cwnd = cc.Cc.cwnd;
          srtt_s = (fun () -> Xmp_engine.Time.to_float_s (view.Cc.srtt ()));
          in_slow_start = cc.Cc.in_slow_start;
        };
      { cc with Cc.name = "lia" }
  in
  { Coupling.name = "lia"; fresh }
