module Reno = Xmp_transport.Reno
module Cc = Xmp_transport.Cc

type path_state = {
  member : Coupling.member;
  mutable since_loss : float;  (* segments acked since the last loss *)
  mutable between_losses : float;  (* segments between the last two *)
}

let interloss p = Float.max p.since_loss p.between_losses

let epsilon = 1e-9

(* alpha_r for path [me] given all paths of the flow *)
let alpha_for paths me =
  let n = List.length paths in
  if n <= 1 then 0.
  else begin
    let quality p =
      let rtt_s = p.member.Coupling.srtt_s () in
      if rtt_s > 0. then interloss p *. interloss p /. rtt_s else 0.
    in
    let best_q = List.fold_left (fun acc p -> Float.max acc (quality p)) 0. paths in
    let max_w =
      List.fold_left
        (fun acc p -> Float.max acc (p.member.Coupling.cwnd ()))
        0. paths
    in
    let is_best p = quality p >= best_q -. epsilon in
    let is_collected p = p.member.Coupling.cwnd () >= max_w -. epsilon in
    let best_not_collected =
      List.filter (fun p -> is_best p && not (is_collected p)) paths
    in
    let collected = List.filter is_collected paths in
    if best_not_collected = [] then 0.
    else if is_best me && not (is_collected me) then
      1. /. (float_of_int n *. float_of_int (List.length best_not_collected))
    else if is_collected me then
      -1. /. (float_of_int n *. float_of_int (List.length collected))
    else 0.
  end

let coupling ?(params = Reno.default_params) () =
  let module M = struct
    let name = "olia"

    type flow = path_state list ref

    type state = { p : path_state; cc : Cc.t }

    let flow () : flow = ref []

    let init ~flow:paths ~group:_ ~index:_ view =
      let me : path_state option ref = ref None in
      let increase ~cwnd =
        match !me with
        | None -> 1. /. cwnd
        | Some p ->
          let all = !paths in
          let denom =
            List.fold_left
              (fun acc q ->
                let rtt_s = q.member.Coupling.srtt_s () in
                if rtt_s > 0. then acc +. (q.member.Coupling.cwnd () /. rtt_s)
                else acc)
              0. all
          in
          let rtt_s = p.member.Coupling.srtt_s () in
          if denom <= 0. || rtt_s <= 0. then 1. /. cwnd
          else begin
            let base = cwnd /. (rtt_s *. rtt_s) /. (denom *. denom) in
            let extra = alpha_for all p /. cwnd in
            base +. extra
          end
      in
      let cc = Reno.make_with_increase ~params ~increase () view in
      let member =
        {
          Coupling.cwnd = cc.Cc.cwnd;
          srtt_s = (fun () -> Xmp_engine.Time.to_float_s (view.Cc.srtt ()));
          in_slow_start = cc.Cc.in_slow_start;
        }
      in
      let p = { member; since_loss = 0.; between_losses = 0. } in
      me := Some p;
      paths := !paths @ [ p ];
      { p; cc }

    let on_loss p =
      p.between_losses <- p.since_loss;
      p.since_loss <- 0.

    let cwnd st = st.cc.Cc.cwnd ()

    let in_slow_start st = st.cc.Cc.in_slow_start ()

    let take_cwr st = st.cc.Cc.take_cwr ()

    let on_ack st ~ack ~newly_acked ~ce_count =
      st.p.since_loss <- st.p.since_loss +. float_of_int newly_acked;
      st.cc.Cc.on_ack ~ack ~newly_acked ~ce_count

    let on_ecn st = st.cc.Cc.on_ecn

    let on_fast_retransmit st =
      on_loss st.p;
      st.cc.Cc.on_fast_retransmit ()

    let on_timeout st =
      on_loss st.p;
      st.cc.Cc.on_timeout ()
  end in
  Coupling.make (module M)
