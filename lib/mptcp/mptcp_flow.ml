module Time = Xmp_engine.Time
module Network = Xmp_net.Network
module Tcp = Xmp_transport.Tcp
module Packet = Xmp_net.Packet
module Tel = Xmp_telemetry

type t = {
  net : Network.t;
  rcv_net : Network.t option;  (* split receiver shard, if any *)
  flow : int;
  src : int;
  dst : int;
  size_segments : int option;
  config : Tcp.config option;
  source : Tcp.source;
  group_factory : int -> Xmp_transport.Cc.factory;
  mutable subflows : Tcp.t array;
  mutable acked : int;
  mutable n_done : int;
  mutable completed_at : Time.t option;
  started_at : Time.t;
  start_at : Time.t option;
  observer : observer;
}

and observer = {
  on_complete : t -> unit;
  on_subflow_acked : int -> int -> unit;
  on_rtt_sample : Time.t -> unit;
}

let silent =
  {
    on_complete = (fun _ -> ());
    on_subflow_acked = (fun _ _ -> ());
    on_rtt_sample = (fun _ -> ());
  }

module Invariant = Xmp_check.Invariant

(* Per-subflow accounting must stay conserved: the flow-level ack counter
   is fed exclusively by subflow callbacks, so it always equals the sum of
   the subflows' own counters, and no subflow can complete twice. *)
let check_conservation t =
  Invariant.require ~name:"mptcp.subflow-completions"
    (t.n_done <= Array.length t.subflows)
    (fun () ->
      Printf.sprintf "flow %d: %d completions for %d subflows" t.flow
        t.n_done (Array.length t.subflows));
  Invariant.require ~name:"mptcp.acked-conservation"
    (t.acked
    = Array.fold_left (fun acc c -> acc + Tcp.segments_acked c) 0 t.subflows)
    (fun () ->
      Printf.sprintf "flow %d: flow-level acked %d <> sum of subflows %d"
        t.flow t.acked
        (Array.fold_left (fun acc c -> acc + Tcp.segments_acked c) 0
           t.subflows))

let check_complete t =
  check_conservation t;
  if t.n_done = Array.length t.subflows && Option.is_none t.completed_at
  then begin
    let sim = Network.sim t.net in
    let now = Xmp_engine.Sim.now sim in
    t.completed_at <- Some now;
    let tel = Xmp_engine.Sim.telemetry sim in
    if Tel.Sink.active tel then
      Tel.Sink.event tel ~time_ns:now
        (Tel.Event.Flow_complete { flow = t.flow; acked = t.acked });
    t.observer.on_complete t
  end

let launch_subflow t ~path =
  let idx = Array.length t.subflows in
  let conn =
    Tcp.create ~net:t.net ?rcv_net:t.rcv_net ~flow:t.flow ~subflow:idx
      ~src:t.src ~dst:t.dst
      ~path ~cc:(t.group_factory idx) ?config:t.config ~source:t.source
      ?start_at:t.start_at
      ~on_segment_acked:(fun n ->
        t.acked <- t.acked + n;
        t.observer.on_subflow_acked idx n)
      ~on_rtt_sample:t.observer.on_rtt_sample
      ~on_complete:(fun () ->
        t.n_done <- t.n_done + 1;
        check_complete t)
      ()
  in
  t.subflows <- Array.append t.subflows [| conn |];
  (* a zero-size source can complete a subflow synchronously inside
     Tcp.create, before the append above; re-check now *)
  check_complete t;
  conn

let create ~net ?rcv_net ~flow ~src ~dst ~paths ~coupling ?config
    ?size_segments ?start_at ?(observer = silent) () =
  if paths = [] then invalid_arg "Mptcp_flow.create: paths";
  let sim = Network.sim net in
  let source =
    match size_segments with
    | None -> Tcp.Infinite
    | Some n ->
      if n < 0 then invalid_arg "Mptcp_flow.create: size_segments";
      Tcp.Limited (ref n)
  in
  let t =
    {
      net;
      rcv_net;
      flow;
      src;
      dst;
      size_segments;
      config;
      source;
      group_factory = coupling.Coupling.fresh ();
      subflows = [||];
      acked = 0;
      n_done = 0;
      completed_at = None;
      started_at =
        (match start_at with
        | None -> Xmp_engine.Sim.now sim
        | Some ts -> Time.max (Xmp_engine.Sim.now sim) ts);
      start_at;
      observer;
    }
  in
  List.iter (fun path -> ignore (launch_subflow t ~path)) paths;
  t

let add_subflow t ~path =
  if Option.is_some t.completed_at then
    invalid_arg "Mptcp_flow.add_subflow: flow already complete";
  launch_subflow t ~path

let flow_id t = t.flow
let src t = t.src
let dst t = t.dst
let n_subflows t = Array.length t.subflows

let subflow t i =
  if i < 0 || i >= Array.length t.subflows then
    invalid_arg "Mptcp_flow.subflow";
  t.subflows.(i)

let subflows t = Array.copy t.subflows
let segments_acked t = t.acked
let size_segments t = t.size_segments
let is_complete t = Option.is_some t.completed_at
let completed_at t = t.completed_at
let started_at t = t.started_at

let goodput_bps_until t until =
  let stop =
    match t.completed_at with
    | Some c -> Time.min c until
    | None -> until
  in
  let dur = Time.to_float_s (Time.sub stop t.started_at) in
  if dur <= 0. then 0.
  else float_of_int (t.acked * Packet.payload_bytes * 8) /. dur

let goodput_bps t =
  match t.completed_at with
  | None -> invalid_arg "Mptcp_flow.goodput_bps: flow not complete"
  | Some c -> goodput_bps_until t c

let stop t = Array.iter Tcp.stop t.subflows
let close_receivers t = Array.iter Tcp.close_receiver t.subflows
