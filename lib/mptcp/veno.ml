module Cc = Xmp_transport.Cc
module Reno = Xmp_transport.Reno

(* Veno's default backlog threshold: below [beta_pkts] queued segments
   a loss is presumed random, not congestive. *)
let beta_pkts = 3.

type state = {
  params : Reno.params;
  beta : float;  (* backlog threshold in segments *)
  view : Cc.view;
  g : Coupling.group;
  mutable cwnd : float;
  mutable ssthresh : float;
}

let srtt_s st = Xmp_engine.Time.to_float_s (st.view.Cc.srtt ())

let base_rtt_s st = Xmp_engine.Time.to_float_s (st.view.Cc.min_rtt ())

(* N = w·(srtt − base)/srtt — the subflow's estimated backlog in the
   bottleneck queue (Vegas' Diff measured in segments). *)
let backlog st =
  let rtt_s = srtt_s st in
  let base_s = base_rtt_s st in
  if rtt_s <= 0. || base_s <= 0. || rtt_s <= base_s then 0.
  else st.cwnd *. (rtt_s -. base_s) /. rtt_s

(* LIA's coupled gain over the flow's members (do-no-harm capped at
   1/w); the delay signal only modulates it below. *)
let coupled_increase st =
  let windows_rtts =
    List.map
      (fun m -> (m.Coupling.cwnd (), m.Coupling.srtt_s ()))
      (Coupling.members st.g)
  in
  let total = Coupling.total_cwnd st.g in
  let a = Lia.alpha ~windows_rtts in
  if total <= 0. then 1. /. st.cwnd
  else Float.min (a /. total) (1. /. st.cwnd)

let in_slow_start st = st.cwnd < st.ssthresh

let coupling ?(params = Reno.default_params) ?(beta_pkts = beta_pkts) () =
  let module M = struct
    let name = "veno"

    type flow = unit

    type nonrec state = state

    let flow () = ()

    let init ~flow:() ~group:g ~index:_ view =
      {
        params;
        beta = beta_pkts;
        view;
        g;
        cwnd = params.Reno.init_cwnd;
        ssthresh = Float.max_float;
      }

    let cwnd st = st.cwnd

    let in_slow_start = in_slow_start

    let take_cwr _st = false

    let on_ack st ~ack:_ ~newly_acked ~ce_count:_ =
      for _ = 1 to newly_acked do
        if in_slow_start st then st.cwnd <- st.cwnd +. 1.
        else begin
          (* available bandwidth: full coupled gain; congestive region
             (N ≥ β): half the gain, Veno's every-other-ACK increase *)
          let gain = coupled_increase st in
          if backlog st >= st.beta then st.cwnd <- st.cwnd +. (gain /. 2.)
          else st.cwnd <- st.cwnd +. gain
        end
      done

    (* loss-driven: Veno flows are not ECN-capable *)
    let on_ecn _st ~count:_ = ()

    let on_fast_retransmit st =
      (* N < β: the loss is presumed random — keep 4/5 of the window;
         otherwise congestive — classic halving *)
      let factor = if backlog st < st.beta then 0.8 else 0.5 in
      st.ssthresh <-
        Float.max (st.cwnd *. factor) (Float.max st.params.Reno.min_cwnd 2.);
      st.cwnd <- st.ssthresh

    let on_timeout st =
      st.ssthresh <- Float.max (st.cwnd /. 2.) 2.;
      st.cwnd <- Float.max st.params.Reno.min_cwnd 1.
  end in
  Coupling.make (module M)
