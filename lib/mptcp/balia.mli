(** BALIA — the Balanced Linked Adaptation coupled controller
    (Peng, Walid, Hwang & Low, "Multipath TCP: Analysis, Design and
    Implementation", IEEE/ACM ToN 2016; the Linux [mptcp_balia] module).

    Per ACK of one segment on subflow [r] in congestion avoidance, with
    rates [x_k = w_k/rtt_k] and [α_r = max_k x_k / x_r]:

    {v (x_r/rtt_r) / (Σ_k x_k)² · (1+α_r)/2 · (4+α_r)/5 v}

    On loss the window is cut to [w_r·(1 − min(α_r, 1.5)/2)] — half at
    α = 1, down to a quarter on strongly imbalanced paths. With a single
    path α = 1 and both rules collapse to plain Reno. BALIA is
    loss-driven (not ECN-capable), like LIA and OLIA in the paper's
    Table 2 setup. *)

val coupling : ?params:Xmp_transport.Reno.params -> unit -> Coupling.t
