(** An MPTCP flow: several TCP subflows over distinct paths, pulling
    segments from one shared source and governed by a coupled congestion
    controller.

    Each subflow is a full {!Xmp_transport.Tcp} connection (own sequence
    space, RTT estimator, loss recovery). Subflows take new segments from
    the flow's shared counter as their windows open, so the split across
    paths is decided purely by congestion control — the paper's setting,
    where rate is limited only by congestion windows. *)

type t

type observer = {
  on_complete : t -> unit;
      (** fires once, when all segments of a sized flow are acknowledged *)
  on_subflow_acked : int -> int -> unit;
      (** [on_subflow_acked idx n]: subflow [idx] got [n] segments newly
          acknowledged *)
  on_rtt_sample : Xmp_engine.Time.t -> unit;
      (** a fresh RTT sample on any subflow *)
}
(** Callbacks into the application for flow lifecycle events. Build one
    with record update over {!silent}:
    [{ Mptcp_flow.silent with on_complete = ... }]. For rate/occupancy
    series prefer the simulator's telemetry sink; an observer is for
    logic that must react (experiment probes, workload drivers). *)

val silent : observer
(** Ignores everything — the default observer. *)

val create :
  net:Xmp_net.Network.t ->
  ?rcv_net:Xmp_net.Network.t ->
  flow:int ->
  src:int ->
  dst:int ->
  paths:int list ->
  coupling:Coupling.t ->
  ?config:Xmp_transport.Tcp.config ->
  ?size_segments:int ->
  ?start_at:Xmp_engine.Time.t ->
  ?observer:observer ->
  unit ->
  t
(** One subflow per element of [paths] (the subflow's path selector).
    [size_segments = None] means an unbounded bulk flow. [observer]
    defaults to {!silent}. A future [start_at] defers every subflow's
    first transmission to that instant (endpoints register immediately);
    {!started_at} then reports [start_at] and goodput is measured from
    there. *)

val add_subflow : t -> path:int -> Xmp_transport.Tcp.t
(** Establishes an additional subflow on [path] (Figure 6's staggered
    subflow arrivals). It joins the flow's coupling group and shares the
    remaining data. Raises [Invalid_argument] on a completed flow. *)

val flow_id : t -> int

val src : t -> int

val dst : t -> int

val n_subflows : t -> int

val subflow : t -> int -> Xmp_transport.Tcp.t

val subflows : t -> Xmp_transport.Tcp.t array

val segments_acked : t -> int
(** Across all subflows. *)

val size_segments : t -> int option
(** The size the flow was created with; [None] for bulk flows. *)

val is_complete : t -> bool

val completed_at : t -> Xmp_engine.Time.t option

val started_at : t -> Xmp_engine.Time.t

val goodput_bps : t -> float
(** Payload bits per second over the flow's lifetime: from start to
    completion for finished flows. Raises [Invalid_argument] on
    unfinished flows (use {!goodput_bps_until}). *)

val goodput_bps_until : t -> Xmp_engine.Time.t -> float
(** Payload bits per second from start until [t] (or completion, if
    earlier). *)

val stop : t -> unit
(** Stops all subflows without completing the flow. *)

val close_receivers : t -> unit
(** Reaps every subflow's split receiver half
    ({!Xmp_transport.Tcp.close_receiver}): call after completion, from
    the destination shard's domain or at an epoch barrier, so sharded
    open-loop runs do not accumulate dead endpoint registrations. No-op
    for non-split flows. *)
