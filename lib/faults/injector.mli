(** Fault injector: arms an {!Xmp_engine.Fault_spec} schedule against a
    live {!Xmp_net.Network}.

    [install] resolves every target eagerly (unknown link or tag names
    raise [Invalid_argument] at setup), schedules the timed transitions
    on the network's simulator, and attaches per-link drop filters for
    the loss models. Call it after the topology is built and before
    [Sim.run].

    Effects, by spec:
    - [Link_down]/[Link_up] call [Link.set_up] at the given time and emit
      a [Link_down]/[Link_up] telemetry event (down also clears the
      link's queue, as when a cable is pulled).
    - [Loss] installs a [Link.set_drop_filter] process that kills
      matching in-window packets at the link's ingress, counts them and
      emits [Injected_drop] events. One RNG and one Gilbert-Elliott
      channel per (spec, link), seeded from (schedule seed, spec index,
      link id) — independent of the simulation's main RNG, so loss
      realizations are reproducible across runs and [--jobs] widths.
    - [Blackout] toggles [Queue_disc.set_blackout] over the window: the
      queue refuses every arrival with normal drop accounting.
    - [Host_pause] takes every port of the host down for the window
      (with the corresponding link events); the node must be a host. *)

type t

val install : net:Xmp_net.Network.t -> ?schedule:Xmp_engine.Fault_spec.t -> unit -> t
(** Defaults to the schedule carried by the network's simulator
    ([Sim.faults]); an empty schedule installs nothing and costs
    nothing. Raises [Invalid_argument] on invalid specs or unresolvable
    targets. *)

val schedule : t -> Xmp_engine.Fault_spec.t

val injected_drops : t -> int
(** Packets killed by loss filters so far (blackout drops are counted by
    the queue disciplines instead). *)

val link_downs : t -> int
(** Down-transitions performed (a [Host_pause] of an [n]-port host
    counts [n]). *)

val link_ups : t -> int
