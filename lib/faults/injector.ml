(* Arms a declarative Fault_spec schedule against a concrete network.

   The schedule is pure data carried by [Sim.config] (or passed
   explicitly); installing resolves every target to live links, arms
   simulator events for the timed transitions, and attaches drop filters
   for the loss models. Installation is eager so an unknown link or tag
   name fails fast at setup instead of silently injecting nothing.

   Determinism: each Loss spec draws from its own [Random.State] seeded
   with (schedule seed, spec index, link id) — independent of the sim's
   main RNG and of traffic interleaving across worker processes, so a
   given (schedule, topology) pair kills exactly the same packets in
   every run. *)

module Sim = Xmp_engine.Sim
module Time = Xmp_engine.Time
module Spec = Xmp_engine.Fault_spec
module Network = Xmp_net.Network
module Link = Xmp_net.Link
module Node = Xmp_net.Node
module Packet = Xmp_net.Packet
module Queue_disc = Xmp_net.Queue_disc
module Tel = Xmp_telemetry

type t = {
  schedule : Spec.t;
  mutable injected_drops : int;
  mutable link_downs : int;
  mutable link_ups : int;
}

let resolve_links net target =
  match target with
  | Spec.Link name -> (
    match Network.find_link net ~name with
    | Some l -> [ l ]
    | None ->
      invalid_arg (Printf.sprintf "Fault injector: no link named %S" name))
  | Spec.Tag tag -> (
    match Network.links_tagged net tag with
    | [] -> invalid_arg (Printf.sprintf "Fault injector: no links tagged %S" tag)
    | ls -> ls)
  | Spec.All_links -> Network.links net

let transition t sim sink link up =
  Link.set_up link up;
  if up then t.link_ups <- t.link_ups + 1
  else t.link_downs <- t.link_downs + 1;
  if Tel.Sink.active sink then
    Tel.Sink.event sink ~time_ns:(Sim.now sim)
      (if up then Tel.Event.Link_up { link = Link.name link }
       else Tel.Event.Link_down { link = Link.name link })

let in_window sim (w : Spec.window) =
  let now = Sim.now sim in
  Time.compare now w.from_ns >= 0 && Time.compare now w.until_ns < 0

let matches filter (p : Packet.t) =
  match (filter, Packet.kind p) with
  | Spec.Any_packet, _ -> true
  | Spec.Data_only, Packet.Data | Spec.Ack_only, Packet.Ack -> true
  | Spec.Data_only, Packet.Ack | Spec.Ack_only, Packet.Data -> false

(* One loss process per (spec, link): own RNG, own Gilbert-Elliott channel
   state. The channel advances once per matching in-window packet. *)
let loss_filter t sim sink ~seed ~index ~link ~window ~model ~filter =
  let rng = Random.State.make [| seed; index; Link.id link; 0xFA17 |] in
  let bad = ref false in
  fun (p : Packet.t) ->
    if in_window sim window && matches filter p then begin
      let dropped =
        match model with
        | Spec.Bernoulli prob -> Random.State.float rng 1. < prob
        | Spec.Gilbert_elliott g ->
          let flip = if !bad then g.exit_bad else g.enter_bad in
          if Random.State.float rng 1. < flip then bad := not !bad;
          let loss = if !bad then g.loss_bad else g.loss_good in
          loss > 0. && Random.State.float rng 1. < loss
      in
      if dropped then begin
        t.injected_drops <- t.injected_drops + 1;
        if Tel.Sink.active sink then
          Tel.Sink.event sink ~time_ns:(Sim.now sim)
            (Tel.Event.Injected_drop
               {
                 link = Link.name link;
                 flow = Packet.flow p;
                 subflow = Packet.subflow p;
                 seq = Packet.seq p;
               })
      end;
      dropped
    end
    else false

let pause_links net host =
  let node = Network.node net host in
  (match Node.kind node with
  | Node.Host -> ()
  | Node.Switch ->
    invalid_arg (Printf.sprintf "Fault injector: node %d is not a host" host));
  List.init (Node.n_ports node) (Node.port node)

let install ~net ?schedule () =
  let sim = Network.sim net in
  let schedule =
    match schedule with Some s -> s | None -> Sim.faults sim
  in
  Spec.validate schedule;
  let t = { schedule; injected_drops = 0; link_downs = 0; link_ups = 0 } in
  let sink = Sim.telemetry sim in
  (* accumulate loss filters per link so several specs can overlay *)
  let filters : (Link.t * (Packet.t -> bool) list ref) list ref = ref [] in
  let add_filter link f =
    match
      List.find_opt (fun (l, _) -> Link.id l = Link.id link) !filters
    with
    | Some (_, fns) -> fns := !fns @ [ f ]
    | None -> filters := !filters @ [ (link, ref [ f ]) ]
  in
  let arm_window (w : Spec.window) on off =
    Sim.at sim w.from_ns on;
    if Time.compare w.until_ns Time.infinity < 0 then Sim.at sim w.until_ns off
  in
  List.iteri
    (fun index spec ->
      match spec with
      | Spec.Link_down { target; at } ->
        let links = resolve_links net target in
        Sim.at sim at (fun () ->
            List.iter (fun l -> transition t sim sink l false) links)
      | Spec.Link_up { target; at } ->
        let links = resolve_links net target in
        Sim.at sim at (fun () ->
            List.iter (fun l -> transition t sim sink l true) links)
      | Spec.Loss { target; window; model; filter } ->
        List.iter
          (fun link ->
            add_filter link
              (loss_filter t sim sink ~seed:schedule.seed ~index ~link
                 ~window ~model ~filter))
          (resolve_links net target)
      | Spec.Blackout { target; window } ->
        let discs = List.map Link.disc (resolve_links net target) in
        arm_window window
          (fun () -> List.iter (fun d -> Queue_disc.set_blackout d true) discs)
          (fun () ->
            List.iter (fun d -> Queue_disc.set_blackout d false) discs)
      | Spec.Host_pause { host; window } ->
        let links = pause_links net host in
        arm_window window
          (fun () ->
            List.iter (fun l -> transition t sim sink l false) links)
          (fun () -> List.iter (fun l -> transition t sim sink l true) links))
    schedule.specs;
  List.iter
    (fun (link, fns) ->
      let fns = !fns in
      (* no short-circuit: every loss process sees every packet so its
         channel state advances identically whatever the others decide *)
      Link.set_drop_filter link
        (Some
           (fun p -> List.fold_left (fun acc f -> f p || acc) false fns)))
    !filters;
  t

let schedule t = t.schedule
let injected_drops t = t.injected_drops
let link_downs t = t.link_downs
let link_ups t = t.link_ups
