(** WAN / heterogeneous-RTT evaluation over a bridged k=4/k=4 fat-tree
    pair ({!Xmp_net.Wan}) — the [wan.asym] / [wan.bdp] / [wan.mixed]
    scenario family: per-subflow RTT asymmetry across unequal trunks,
    the Eq. 1 marking threshold at WAN BDPs, and a cross-DC traffic
    fraction sweep. RTO floors are sized per topology (half the max
    zero-load RTT, ≥ 1 ms) through the {!Xmp_workload.Scheme.with_rto}
    tunable. *)

val wan_rto_min : trunks:Xmp_net.Wan.trunk list -> Xmp_engine.Time.t
(** max(1 ms, {!Xmp_net.Wan.max_rtt_no_queue_of} / 2) for the bridged
    k=4/k=4 pair. *)

val bdp_packets :
  rate:Xmp_net.Units.rate -> delay:Xmp_engine.Time.t -> int
(** Propagation-RTT bandwidth-delay product in 1500 B packets. *)

val eq1_k :
  rate:Xmp_net.Units.rate -> delay:Xmp_engine.Time.t -> beta:int -> int
(** Eq. 1's minimum marking threshold, ⌈BDP/(β−1)⌉ packets. *)

val wan_config :
  scale:float ->
  trunks:Xmp_net.Wan.trunk list ->
  cross_dc:float ->
  scheme:Xmp_workload.Scheme.t ->
  Xmp_workload.Open_loop.config
(** The shared open-loop configuration: web-search sizes (×1/32), 25%
    load, horizon 0.4·scale s, drain covering 25 trunk RTTs, flow cap
    max(40, 400·scale), and the per-topology RTO floor applied both to
    the config and as a scheme tunable. *)

val asym_trunks : Xmp_net.Wan.trunk list
(** The wan.asym pair: 10 ms and 40 ms trunks, 10 Gbps, 4000-packet
    border queues marking at 1000. *)

val print_asym : scale:float -> unit -> unit
(** FCT slowdowns per scheme at cross-DC 0.6, the closed-loop
    utilization-by-layer table (TraSh shifting), and the
    domains:1 ≡ domains:2 digest cross-check. *)

val print_bdp : scale:float -> unit -> unit
(** The analytic Eq. 1 table for 10/40/100 ms at 1 Gbps, plus goodput
    probes with the border queue marking at K_eq1 vs K_eq1/16. Runs at
    a fixed probe size (the [scale] argument is ignored). *)

val print_mixed : scale:float -> unit -> unit
(** FCT slowdowns at cross-DC fractions 0 / 0.25 / 0.75 over a single
    40 ms trunk. *)

val asym_params : scale:float -> (string * string) list
(** Scenario digest parameters covering every input of {!print_asym}. *)

val bdp_params : (string * string) list

val mixed_params : scale:float -> (string * string) list
