(** The paper's figures, tables and ablation sweeps as registered
    {!Xmp_runner.Scenario} values.

    This is the single source of truth for what "the evaluation" is: the
    bench harness, the CLI and the golden-output regression tests all
    select from this registry instead of hard-wiring experiment calls.
    Each scenario declares every parameter its output depends on, which
    gives it a stable content digest for the runner's result cache. *)

type config = {
  tag : string;  (** "quick" | "default" | "paper" — for display only *)
  scale : float;  (** time-scale factor of the testbed figure schedules *)
  base : Fatree_eval.base;  (** fat-tree configuration for tables/CDFs *)
}

val default : config
(** The bench's default scale: 0.2× schedules, [Fatree_eval.default_base]. *)

val quick : config
(** [--quick]: 0.1× schedules, 0.5 s fat-tree horizon. *)

val paper : config
(** [--paper-scale]: 1.0× schedules, [Fatree_eval.paper_scale_base]. *)

val all : config -> Xmp_runner.Scenario.t list
(** Every registered scenario, in canonical (paper) order: fig1, fig4,
    fig6, fig7, table1, fig8–fig11, table2, table3, then the
    [ablations.*] sweeps. *)

val groups : (string * string list) list
(** Alias -> member scenario names (e.g. ["ablations"] expands to every
    ["ablations.*"] sweep). *)

val select :
  config -> string list -> (Xmp_runner.Scenario.t list, string) result
(** Resolves scenario names and group aliases, preserving request order
    and dropping duplicates; [Error name] on an unknown id. *)

val base_params : Fatree_eval.base -> (string * string) list
(** Exact serialization of a fat-tree configuration, for building custom
    scenarios (user sweeps) whose digests cover the full configuration. *)

val golden : unit -> Xmp_runner.Scenario.t list
(** The golden-regression set: fig1/fig4/fig6/fig7 at [quick] scale —
    cheap enough for every [dune runtest], rich enough to fingerprint the
    whole engine/transport/mptcp/core stack. *)
