module Table = Xmp_stats.Table
module Distribution = Xmp_stats.Distribution

(* This module (with Table) is the one sanctioned stdout sink in lib/ —
   xmplint's stdout-in-lib rule allowlists it, so every experiment prints
   through these helpers. *)

let printf fmt = Printf.printf fmt

let say line = print_endline line

let heading title =
  let bar = String.make (String.length title + 4) '=' in
  Printf.printf "\n%s\n= %s =\n%s\n" bar title bar

let subheading title = Printf.printf "\n--- %s ---\n" title

let series_table ~bucket_s ?(every = 1) series =
  match series with
  | [] -> ()
  | (_, first) :: _ ->
    let n = Array.length first in
    let rows = ref [] in
    let i = ref 0 in
    while !i < n do
      let time = float_of_int !i *. bucket_s in
      let row =
        Printf.sprintf "%.2f" time
        :: List.map
             (fun (_, arr) ->
               if !i < Array.length arr then Table.fixed 3 arr.(!i)
               else "")
             series
      in
      rows := row :: !rows;
      i := !i + every
    done;
    Table.print
      ~header:("t(s)" :: List.map fst series)
      ~rows:(List.rev !rows) ()

let default_cdf_probs = [ 0.05; 0.1; 0.2; 0.3; 0.4; 0.5; 0.6; 0.7; 0.8; 0.9; 0.95; 0.99 ]

let cdf_table ?points dists =
  let probs =
    match points with
    | None -> default_cdf_probs
    | Some n -> List.init n (fun i -> float_of_int (i + 1) /. float_of_int n)
  in
  let rows =
    List.map
      (fun p ->
        Printf.sprintf "%.2f" p
        :: List.map
             (fun (_, d) ->
               if Distribution.is_empty d then "--"
               else Table.fixed 3 (Distribution.percentile d (p *. 100.)))
             dists)
      probs
  in
  Table.print ~header:("CDF" :: List.map fst dists) ~rows ()

let five_number_table ~value_header dists =
  let rows =
    List.map
      (fun (name, d) ->
        if Distribution.is_empty d then [ name; "--"; "--"; "--"; "--"; "--"; "--" ]
        else begin
          let mn, p10, p50, p90, mx = Distribution.five_number d in
          [
            name;
            Table.fixed 3 mn;
            Table.fixed 3 p10;
            Table.fixed 3 p50;
            Table.fixed 3 p90;
            Table.fixed 3 mx;
            Table.fixed 3 (Distribution.mean d);
          ]
        end)
      dists
  in
  Table.print
    ~header:[ value_header; "min"; "p10"; "p50"; "p90"; "max"; "mean" ]
    ~rows ()
