module Time = Xmp_engine.Time
module Scheme = Xmp_workload.Scheme
module Driver = Xmp_workload.Driver
module Metrics = Xmp_workload.Metrics
module Flow_size = Xmp_workload.Flow_size
module Open_loop = Xmp_workload.Open_loop

(* Open-loop workload scenarios: FCT slowdowns under Poisson arrivals
   with empirical flow sizes, and the closed-loop sweep patterns that
   ride on the same Driver. Flow sizes follow the repo-wide ×1/32
   convention for paper sizes (see Driver.segs_of_mb). *)

let websearch_config ~scale =
  {
    Open_loop.default_config with
    Open_loop.horizon = Time.of_float_s (0.25 *. scale);
    drain = Time.of_float_s (0.5 *. scale);
    sizes = Flow_size.scaled Flow_size.web_search (1. /. 32.);
  }

let print_slowdowns m =
  Render.five_number_table ~value_header:"FCT slowdown"
    (Metrics.fct_slowdowns m)

let print_websearch ~scale () =
  let config = websearch_config ~scale in
  Render.heading
    (Printf.sprintf
       "Open-loop web-search workload: k=%d, %s, load %.2f, %s sizes"
       config.Open_loop.k
       (Scheme.name config.Open_loop.scheme)
       config.Open_loop.load
       (Flow_size.name config.Open_loop.sizes))
  ;
  let r = Open_loop.run ~config () in
  Render.say
    (Printf.sprintf "flows: %d launched, %d completed, %d truncated"
       r.Open_loop.launched r.Open_loop.completed r.Open_loop.truncated);
  Render.say
    (Printf.sprintf "events: %d (portal mail %d)" r.Open_loop.events
       r.Open_loop.mail);
  print_slowdowns r.Open_loop.metrics

let sweep_schemes = [ Scheme.dctcp; Scheme.xmp 2 ]

let incast_sweep_fanouts = [ 2; 4; 8 ]

let incast_sweep_config (base : Fatree_eval.base) scheme =
  {
    (Fatree_eval.driver_config base scheme Fatree_eval.Incast) with
    Driver.pattern =
      Driver.Incast_sweep
        {
          jobs = base.Fatree_eval.incast_jobs;
          fanouts = incast_sweep_fanouts;
          request_segments = 2;
          response_segments = 45;
        };
  }

let print_incast_sweep (base : Fatree_eval.base) =
  Render.heading "Incast sweep: job completion time (ms) across fanout";
  List.iter
    (fun scheme ->
      Render.subheading (Scheme.name scheme);
      let r = Driver.run (incast_sweep_config base scheme) in
      Render.five_number_table ~value_header:"job ms"
        (List.map
           (fun (fanout, d) -> (Printf.sprintf "fanout %d" fanout, d))
           (Metrics.job_times_by_fanout r.Driver.metrics)))
    sweep_schemes

let shuffle_config (base : Fatree_eval.base) scheme =
  let segments =
    Stdlib.max 1
      (int_of_float (Float.round (45. *. base.Fatree_eval.size_scale)))
  in
  {
    (Fatree_eval.driver_config base scheme Fatree_eval.Permutation) with
    Driver.pattern = Driver.All_to_all { segments };
  }

let print_shuffle (base : Fatree_eval.base) =
  Render.heading "All-to-all shuffle: goodput of n(n-1) concurrent flows";
  List.iter
    (fun scheme ->
      Render.subheading (Scheme.name scheme);
      let r = Driver.run (shuffle_config base scheme) in
      let m = r.Driver.metrics in
      Render.say
        (Printf.sprintf "flows: %d recorded (%d truncated), mean goodput %.3f Mbps"
           (Metrics.n_completed_flows m)
           (Metrics.n_truncated_flows m)
           (Metrics.mean_goodput_bps m /. 1e6));
      Render.five_number_table ~value_header:"goodput Mbps"
        [ ("all flows", Metrics.goodputs m) ])
    sweep_schemes
