module Scenario = Xmp_runner.Scenario
module Time = Xmp_engine.Time
module Fault_spec = Xmp_engine.Fault_spec

type config = {
  tag : string;
  scale : float;
  base : Fatree_eval.base;
}

let default = { tag = "default"; scale = 0.2; base = Fatree_eval.default_base }

let quick =
  {
    tag = "quick";
    scale = 0.1;
    base = { Fatree_eval.default_base with horizon = Time.sec 0.5 };
  }

let paper = { tag = "paper"; scale = 1.0; base = Fatree_eval.paper_scale_base }

(* Every input a fat-tree run depends on. Time.t is integer nanoseconds,
   so the serialization is exact. *)
let base_params (b : Fatree_eval.base) =
  [
    ("k", string_of_int b.k);
    ("horizon_ns", string_of_int b.horizon);
    ("seed", string_of_int b.seed);
    ("queue_pkts", string_of_int b.queue_pkts);
    ("marking_threshold", string_of_int b.marking_threshold);
    ("beta", string_of_int b.beta);
    ("rto_min_ns", string_of_int b.rto_min);
    ("sack", string_of_bool b.sack);
    ("size_scale", string_of_float b.size_scale);
    ("incast_jobs", string_of_int b.incast_jobs);
  ]
  (* empty schedule contributes nothing, so fault-free digests are
     untouched *)
  @ Fault_spec.to_params b.faults

let scale_params scale = [ ("scale", string_of_float scale) ]

(* The testbed figures take their seed as an optional argument defaulting
   inside each module; the registry pins the default explicitly so the
   digest covers it. *)
let fig ~name ~descr ~scale run =
  Scenario.create ~name ~descr ~params:(scale_params scale) (fun () ->
      run ~scale ())

let table ~name ~descr ~base run =
  Scenario.create ~name ~descr ~params:(base_params base) (fun () -> run base)

(* fig4 with bottleneck DN2 failing mid-run: both directions of the
   second bottleneck go down at 1.0 schedule units and come back at 1.5
   (at quick scale, down at t = 1 s for 0.5 s). Flow 3 loses its only
   path and must ride out the outage on retransmission timers; Flow 2
   shifts everything onto DN1. *)
let fig4_linkfail_faults ~scale =
  let unit_s = 10. *. scale in
  let down_at = Time.sec (1.0 *. unit_s) in
  let up_at = Time.sec (1.5 *. unit_s) in
  Fault_spec.create
    (List.concat_map
       (fun name ->
         [
           Fault_spec.Link_down { target = Fault_spec.Link name; at = down_at };
           Fault_spec.Link_up { target = Fault_spec.Link name; at = up_at };
         ])
       [ "IN2->OUT2"; "OUT2->IN2" ])

(* incast under 1% i.i.d. loss on every rack (host <-> edge) link, both
   directions — data and ACK packets alike. *)
let incast_lossy_base base =
  {
    base with
    Fatree_eval.faults =
      Fault_spec.create ~seed:97
        [
          Fault_spec.Loss
            {
              target = Fault_spec.Tag "rack";
              window = Fault_spec.always;
              model = Fault_spec.Bernoulli 0.01;
              filter = Fault_spec.Any_packet;
            };
        ];
  }

let all cfg =
  let { scale; base; _ } = cfg in
  [
    fig ~name:"fig1" ~descr:"DCTCP vs halving-cwnd on one bottleneck" ~scale
      (fun ~scale () -> Fig1.run_and_print_all ~scale ());
    fig ~name:"fig4" ~descr:"traffic shifting on testbed 3(a)" ~scale
      (fun ~scale () -> Fig4.run_and_print_all ~scale ());
    fig ~name:"fig6" ~descr:"fairness on testbed 3(b)" ~scale
      (fun ~scale () -> Fig6.run_and_print_all ~scale ());
    fig ~name:"fig7" ~descr:"rate compensation on the ring" ~scale
      (fun ~scale () -> Fig7.run_and_print_all ~scale ());
    table ~name:"table1" ~descr:"average goodput matrix" ~base
      Fatree_eval.print_table1;
    table ~name:"fig8" ~descr:"goodput distributions" ~base
      Fatree_eval.print_fig8;
    table ~name:"fig9" ~descr:"job completion time CDF" ~base
      Fatree_eval.print_fig9;
    table ~name:"fig10" ~descr:"RTT distributions" ~base
      Fatree_eval.print_fig10;
    table ~name:"fig11" ~descr:"link utilization by layer" ~base
      Fatree_eval.print_fig11;
    table ~name:"table2" ~descr:"coexistence goodput" ~base (fun base ->
        Coexistence.print_table2 ~base ());
    table ~name:"table2.extended"
      ~descr:"coexistence goodput vs BALIA/VENO/AMP" ~base (fun base ->
        Coexistence.print_table2_extended ~base ());
    table ~name:"table3" ~descr:"job completion times" ~base
      Fatree_eval.print_table3;
    fig ~name:"ablations.beta" ~descr:"fairness/latency across beta" ~scale
      (fun ~scale () -> Ablations.print_beta_sweep ~scale ());
    Scenario.create ~name:"ablations.k"
      ~descr:"utilization/RTT across marking threshold K"
      ~params:[ ("beta", "4") ]
      (fun () -> Ablations.print_k_sweep ());
    table ~name:"ablations.subflows" ~descr:"goodput across subflow counts"
      ~base (fun base -> Ablations.print_subflow_sweep ~base ());
    table ~name:"ablations.coupling" ~descr:"LIA vs OLIA vs XMP coupling"
      ~base (fun base -> Ablations.print_coupling_comparison ~base ());
    table ~name:"ablations.flow_size" ~descr:"goodput across flow sizes"
      ~base (fun base -> Ablations.print_flow_size_sweep ~base ());
    table ~name:"ablations.incast_fanout"
      ~descr:"incast completion across fanout" ~base (fun base ->
        Ablations.print_incast_fanout_sweep ~base ());
    table ~name:"ablations.rto_min" ~descr:"incast across RTOmin" ~base
      (fun base -> Ablations.print_rto_min_sweep ~base ());
    table ~name:"ablations.sack" ~descr:"matrix with SACK recovery" ~base
      (fun base -> Ablations.print_sack_comparison ~base ());
    Scenario.create ~name:"ablations.queue"
      ~descr:"buffer occupancy by scheme"
      ~params:[ ("beta", "4"); ("k", "10") ]
      (fun () -> Ablations.print_queue_occupancy ());
    Scenario.create ~name:"fig4.sharded"
      ~descr:"traffic shifting on a pod-sharded fat tree (k=4)"
      ~params:(scale_params scale @ [ ("beta", "4"); ("k", "4") ])
      (fun () -> Fig4_sharded.run_and_print ~scale ());
    (let faults = fig4_linkfail_faults ~scale in
     Scenario.create ~name:"fig4.linkfail"
       ~descr:"traffic shifting with bottleneck DN2 failing mid-run"
       ~params:(scale_params scale @ Fault_spec.to_params faults)
       (fun () ->
         Render.heading
           "Figure 4 variant: DN2 down for half a load interval";
         Fig4.print (Fig4.run ~scale ~faults ~beta:4 ())));
    (let base = incast_lossy_base base in
     Scenario.create ~name:"incast.lossy"
       ~descr:"incast with 1% Bernoulli loss on rack links"
       ~params:(base_params base)
       (fun () ->
         Fatree_eval.print_fault_eval base (Xmp_workload.Scheme.xmp 2)
           Fatree_eval.Incast));
    (let wl = Workload_eval.websearch_config ~scale in
     Scenario.create ~name:"wl.websearch.k8"
       ~descr:"open-loop web-search FCT slowdowns on the sharded k=8 tree"
       ~params:
         [
           ("k", string_of_int wl.Xmp_workload.Open_loop.k);
           ("seed", string_of_int wl.Xmp_workload.Open_loop.seed);
           ("scheme", Xmp_workload.Scheme.name wl.Xmp_workload.Open_loop.scheme);
           ("cdf", Xmp_workload.Flow_size.name wl.Xmp_workload.Open_loop.sizes);
           ("load", string_of_float wl.Xmp_workload.Open_loop.load);
           ("horizon_ns", string_of_int wl.Xmp_workload.Open_loop.horizon);
           ("drain_ns", string_of_int wl.Xmp_workload.Open_loop.drain);
         ]
       (fun () -> Workload_eval.print_websearch ~scale ()));
    table ~name:"wl.incast.sweep"
      ~descr:"job completion times across incast fanout" ~base
      Workload_eval.print_incast_sweep;
    table ~name:"wl.shuffle" ~descr:"all-to-all shuffle goodput" ~base
      Workload_eval.print_shuffle;
    Scenario.create ~name:"wan.asym"
      ~descr:
        "bridged k=4/k=4 with 10 ms vs 40 ms trunks: per-subflow RTT \
         asymmetry, TraSh shifting, domains byte-equality"
      ~params:(Wan_eval.asym_params ~scale)
      (fun () -> Wan_eval.print_asym ~scale ());
    Scenario.create ~name:"wan.bdp"
      ~descr:"Eq. 1 marking threshold at 10/40/100 ms WAN BDPs"
      ~params:Wan_eval.bdp_params
      (fun () -> Wan_eval.print_bdp ~scale ());
    Scenario.create ~name:"wan.mixed"
      ~descr:"cross-DC traffic fraction sweep over a 40 ms trunk"
      ~params:(Wan_eval.mixed_params ~scale)
      (fun () -> Wan_eval.print_mixed ~scale ());
  ]

let groups =
  [
    ( "ablations",
      [
        "ablations.beta"; "ablations.k"; "ablations.subflows";
        "ablations.coupling"; "ablations.flow_size";
        "ablations.incast_fanout"; "ablations.rto_min"; "ablations.sack";
        "ablations.queue";
      ] );
    ("faults", [ "fig4.linkfail"; "incast.lossy" ]);
    ("workload", [ "wl.websearch.k8"; "wl.incast.sweep"; "wl.shuffle" ]);
    ("wan", [ "wan.asym"; "wan.bdp"; "wan.mixed" ]);
  ]

let select cfg ids =
  let scenarios = all cfg in
  let by_name name =
    List.find_opt (fun s -> String.equal s.Scenario.name name) scenarios
  in
  let expand id =
    match List.assoc_opt id groups with
    | Some members -> members
    | None -> [ id ]
  in
  let rec resolve acc seen = function
    | [] -> Ok (List.rev acc)
    | name :: rest -> (
      if List.mem name seen then resolve acc seen rest
      else
        match by_name name with
        | Some s -> resolve (s :: acc) (name :: seen) rest
        | None -> Error name)
  in
  resolve [] [] (List.concat_map expand ids)

let golden () =
  match select quick [ "fig1"; "fig4"; "fig6"; "fig7" ] with
  | Ok l -> l
  | Error _ -> assert false
