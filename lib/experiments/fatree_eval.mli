(** Fat-tree evaluation (§5.2): one simulation per (scheme, pattern) pair,
    shared across Table 1, Figures 8–11 and Table 3 exactly as the paper
    derives them from the same runs. Results are memoized per
    configuration within the process. *)

type pattern_id = Permutation | Random | Incast

val pattern_name : pattern_id -> string

type base = {
  k : int;
  horizon : Xmp_engine.Time.t;
  seed : int;
  queue_pkts : int;
  marking_threshold : int;
  beta : int;
  rto_min : Xmp_engine.Time.t;
  sack : bool;
  size_scale : float;
      (** multiplies the default (×1/32-of-paper) flow sizes *)
  incast_jobs : int;
  faults : Xmp_engine.Fault_spec.t;
      (** fault schedule armed before traffic starts (empty by default);
          folded into the memoization key via its canonical parameters *)
}

val default_base : base
(** k = 4, 2.5 s horizon, queue 100, K = 10, β = 4, RTOmin 200 ms,
    size_scale 4 (8–64 MB permutation flows), 3 incast jobs. *)

val paper_scale_base : base
(** k = 8, 3 s horizon, 8 incast jobs, ×8 sizes — much closer to the
    paper's absolute setup (~10⁸ events per run). *)

val driver_config :
  base -> Xmp_workload.Scheme.t -> pattern_id -> Xmp_workload.Driver.config
(** The driver configuration a run uses (building block for variations
    such as Table 2's split assignment and the ablations). *)

val result : base -> Xmp_workload.Scheme.t -> pattern_id ->
  Xmp_workload.Driver.result
(** Runs (or returns the memoized) simulation. *)

val cache_size : unit -> int
(** Number of memoized runs currently held for this process. *)

val clear_cache : unit -> unit
(** Drops every memoized run. Runner workers call this between scenarios
    when they must prove results carry no cross-scenario state. *)

val with_cache : (unit -> 'a) -> 'a
(** [with_cache f] runs [f] against a fresh, empty memo table and
    restores the previous table afterwards (exception-safe), so a scoped
    evaluation can neither observe earlier runs nor leak its own into
    the enclosing scope. *)

val table1_schemes : Xmp_workload.Scheme.t list
(** DCTCP, LIA-2, LIA-4, XMP-2, XMP-4 — the paper's Table 1 row set. *)

val bar_schemes : Xmp_workload.Scheme.t list
(** DCTCP, LIA-4, XMP-2, XMP-4 — the set in Figures 8(c,d), 10 and 11. *)

val print_fault_eval :
  base -> Xmp_workload.Scheme.t -> pattern_id -> unit
(** One run of the base's fault schedule with a live telemetry sink:
    prints the schedule and a summary table (flows, goodput, jobs,
    injected drops, link-down/link-up/injected-drop event counts). Not
    memoized. *)

val print_table1 : base -> unit

val print_fig8 : base -> unit

val print_fig9 : base -> unit

val print_fig10 : base -> unit

val print_fig11 : base -> unit

val print_table3 : base -> unit
