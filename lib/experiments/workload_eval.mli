(** Workload-layer scenarios: open-loop FCT-slowdown runs on the sharded
    fat tree, and the Driver's sweep patterns (incast fanout sweep,
    all-to-all shuffle) printed as tables. *)

val websearch_config : scale:float -> Xmp_workload.Open_loop.config
(** The [wl.websearch.k8] configuration: k = 8, XMP-2, 40% load,
    web-search sizes at the repo's ×1/32 scale, horizon [0.25·scale]
    seconds plus [0.5·scale] drain. *)

val print_websearch : scale:float -> unit -> unit
(** Runs {!websearch_config} and prints launch/completion counts plus the
    per-size-bucket FCT-slowdown table. *)

val sweep_schemes : Xmp_workload.Scheme.t list
(** DCTCP and XMP-2 — the pair compared in the sweep scenarios. *)

val incast_sweep_fanouts : int list

val incast_sweep_config :
  Fatree_eval.base -> Xmp_workload.Scheme.t -> Xmp_workload.Driver.config

val print_incast_sweep : Fatree_eval.base -> unit
(** Per-fanout job completion times for each of {!sweep_schemes}. *)

val shuffle_config :
  Fatree_eval.base -> Xmp_workload.Scheme.t -> Xmp_workload.Driver.config

val print_shuffle : Fatree_eval.base -> unit
(** All-to-all shuffle goodput summary for each of {!sweep_schemes}. *)
