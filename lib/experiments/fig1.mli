(** Figure 1 — DCTCP versus constant-factor ("halving cwnd") reduction on
    one bottleneck (§2.1).

    Four ECN flows share a 1 Gbps link (zero-load RTT 225 µs, 100-packet
    queue, instantaneous-threshold marking at K). Flows start one by one,
    then stop one by one, at a fixed interval. The paper's observation:
    DCTCP can converge to unfair shares (especially at small K) while a
    constant 1/2 reduction with K satisfying Equation 1 is both fair and
    fully utilizing; K = 10 loses little because a smaller K shortens the
    RTT and speeds window growth.

    "Halving cwnd" is exactly BOS with β = 2, so this experiment is the
    paper's motivation for BOS run against its DCTCP baseline. *)

type variant = { dctcp : bool; k : int }

type result = {
  variant : variant;
  bucket_s : float;
  rates : (string * float array) list;  (** normalized per-flow rates *)
  utilization : float;  (** bottleneck utilization over the run *)
  jain_all_active : float;
      (** Jain index of flow rates while all four flows are active *)
}

val variants : variant list
(** The paper's four panels: DCTCP/halving × K ∈ \{10, 20\}. *)

val run :
  ?scale:float -> ?seed:int -> ?telemetry:Xmp_telemetry.Sink.t ->
  ?faults:Xmp_engine.Fault_spec.t -> variant -> result
(** [scale] multiplies the paper's 5 s schedule interval (default 0.2,
    i.e. flows arrive/leave every second — convergence takes
    milliseconds, so the dwell time is still ≫ 100× convergence).
    [telemetry] (default the null sink) instruments the run for
    [xmp_sim trace]. *)

val print : result -> unit

val run_and_print_all :
  ?scale:float -> ?faults:Xmp_engine.Fault_spec.t -> unit -> unit
