module Sim = Xmp_engine.Sim
module Time = Xmp_engine.Time
module Net = Xmp_net
module Mptcp_flow = Xmp_mptcp.Mptcp_flow

type result = {
  beta : int;
  k : int;
  interval_s : float;
  rates : (string * float array) list;
}

let capacities_gbps = [ 0.8; 1.2; 2.0; 1.5; 0.5 ]

let run ?(scale = 0.2) ?(seed = 17) ?(telemetry = Xmp_telemetry.Sink.null)
    ?(faults = Xmp_engine.Fault_spec.empty) ~beta ~k () =
  let unit_s = 5. *. scale in
  let horizon_s = 14. *. unit_s (* paper: 70 s *) in
  let sim =
    Sim.create ~config:{ Sim.default_config with seed; telemetry; faults } ()
  in
  let net = Net.Network.create sim in
  let disc () =
    Net.Queue_disc.create ~policy:(Net.Queue_disc.Threshold_mark k)
      ~capacity_pkts:100
  in
  (* zero-load RTT 350 us: 2 * (2 * 40 us + 95 us) *)
  let specs =
    List.map
      (fun g ->
        { Net.Testbed.rate = Net.Units.gbps g; delay = Time.us 95; disc })
      capacities_gbps
  in
  let tb =
    Net.Testbed.create ~net ~n_left:9 ~n_right:9 ~bottlenecks:specs
      ~access_delay:(Time.us 40) ()
  in
  ignore (Xmp_faults.Injector.install ~net ());
  let params = { Xmp_core.Bos.default_params with beta } in
  let probe = Probe.create ~sim ~bucket_s:unit_s ~horizon_s in
  (* Flows 1..5: subflow 1 on L_i, subflow 2 on L_{i+1 mod 5} *)
  for i = 0 to 4 do
    let names =
      [ Printf.sprintf "F%d-1" (i + 1); Printf.sprintf "F%d-2" (i + 1) ]
    in
    let recorders = Array.of_list (List.map (Probe.recorder probe) names) in
    Sim.at sim
      (Time.sec (float_of_int i *. unit_s))
      (fun () ->
        ignore
          (Mptcp_flow.create ~net ~flow:(i + 1)
             ~src:(Net.Testbed.left_id tb i)
             ~dst:(Net.Testbed.right_id tb i)
             ~paths:[ i; (i + 1) mod 5 ]
             ~coupling:(Xmp_core.Trash.coupling ~params ())
             ~config:Xmp_core.Xmp.tcp_config
             ~observer:
               {
                 Mptcp_flow.silent with
                 on_subflow_acked = (fun idx n -> recorders.(idx) n);
               }
             ()))
  done;
  (* four background flows on L3 (index 2): arrive at units 5..8, leave at
     units 9..12 *)
  for j = 0 to 3 do
    Sim.at sim
      (Time.sec (float_of_int (5 + j) *. unit_s))
      (fun () ->
        let f =
          Mptcp_flow.create ~net ~flow:(10 + j)
            ~src:(Net.Testbed.left_id tb (5 + j))
            ~dst:(Net.Testbed.right_id tb (5 + j))
            ~paths:[ 2 ]
            ~coupling:(Xmp_core.Trash.coupling ~params ())
            ~config:Xmp_core.Xmp.tcp_config ()
        in
        Sim.at sim
          (Time.sec (float_of_int (9 + j) *. unit_s))
          (fun () -> Mptcp_flow.stop f))
  done;
  (* L3 goes down at unit 12 (paper: 60 s) *)
  Sim.at sim
    (Time.sec (12. *. unit_s))
    (fun () -> Net.Testbed.set_bottleneck_up tb 2 false);
  Sim.run ~until:(Time.sec horizon_s) sim;
  let names =
    List.concat_map
      (fun i -> [ Printf.sprintf "F%d-1" i; Printf.sprintf "F%d-2" i ])
      [ 1; 2; 3; 4; 5 ]
  in
  let rates =
    List.map
      (fun n -> (n, Probe.normalized probe n ~norm_bps:(Net.Units.gbps 1. |> float_of_int)))
      names
  in
  { beta; k; interval_s = unit_s; rates }

let print r =
  Render.subheading
    (Printf.sprintf "Figure 7 panel: beta = %d, K = %d" r.beta r.k);
  Render.series_table ~bucket_s:r.interval_s r.rates

let run_and_print_all ?scale ?faults () =
  Render.heading
    "Figure 7: rate compensation on the ring (interval-averaged, / 1 Gbps)";
  List.iter
    (fun (beta, k) -> print (run ?scale ?faults ~beta ~k ()))
    [ (4, 20); (5, 15); (6, 10) ]
