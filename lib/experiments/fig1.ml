module Sim = Xmp_engine.Sim
module Time = Xmp_engine.Time
module Net = Xmp_net
module Mptcp_flow = Xmp_mptcp.Mptcp_flow
module Coupling = Xmp_mptcp.Coupling

type variant = { dctcp : bool; k : int }

type result = {
  variant : variant;
  bucket_s : float;
  rates : (string * float array) list;
  utilization : float;
  jain_all_active : float;
}

let variants =
  [
    { dctcp = true; k = 10 };
    { dctcp = true; k = 20 };
    { dctcp = false; k = 10 };
    { dctcp = false; k = 20 };
  ]

let variant_name v =
  Printf.sprintf "%s, K=%d" (if v.dctcp then "DCTCP" else "Halving cwnd") v.k

let rate = Net.Units.gbps 1.

let run ?(scale = 0.2) ?(seed = 7) ?(telemetry = Xmp_telemetry.Sink.null)
    ?(faults = Xmp_engine.Fault_spec.empty) v =
  let interval = 5. *. scale in
  let horizon_s = 7. *. interval in
  let sim =
    Sim.create ~config:{ Sim.default_config with seed; telemetry; faults } ()
  in
  let net = Net.Network.create sim in
  let disc () =
    Net.Queue_disc.create ~policy:(Net.Queue_disc.Threshold_mark v.k)
      ~capacity_pkts:100
  in
  (* zero-load RTT 225 us: 2 * (2 * 25 us + 62.5 us) *)
  let tb =
    Net.Testbed.create ~net ~n_left:4 ~n_right:4
      ~bottlenecks:[ { Net.Testbed.rate; delay = Time.ns 62_500; disc } ]
      ~access_delay:(Time.us 25) ()
  in
  ignore (Xmp_faults.Injector.install ~net ());
  let probe =
    Probe.create ~sim ~bucket_s:(interval /. 10.) ~horizon_s
  in
  let coupling =
    if v.dctcp then
      Coupling.uncoupled ~name:"dctcp" (fun view ->
          Xmp_transport.Dctcp.make view)
    else
      Coupling.uncoupled ~name:"halving" (fun view ->
          Xmp_core.Bos.make
            ~params:{ Xmp_core.Bos.default_params with beta = 2 }
            () view)
  in
  let config =
    if v.dctcp then Xmp_core.Xmp.dctcp_tcp_config else Xmp_core.Xmp.tcp_config
  in
  let flows = Array.make 4 None in
  for i = 0 to 3 do
    let name = Printf.sprintf "Flow %d" (i + 1) in
    let rec_fn = Probe.recorder probe name in
    Sim.at sim
      (Time.sec (float_of_int i *. interval))
      (fun () ->
        flows.(i) <-
          Some
            (Mptcp_flow.create ~net ~flow:(i + 1)
               ~src:(Net.Testbed.left_id tb i)
               ~dst:(Net.Testbed.right_id tb i)
               ~paths:[ 0 ] ~coupling ~config
               ~observer:
                 {
                   Mptcp_flow.silent with
                   on_subflow_acked = (fun _ n -> rec_fn n);
                 }
               ()))
  done;
  (* stop flows 1..3 one by one; flow 4 runs to the end *)
  for i = 0 to 2 do
    Sim.at sim
      (Time.sec (float_of_int (4 + i) *. interval))
      (fun () ->
        match flows.(i) with
        | Some f -> Mptcp_flow.stop f
        | None -> ())
  done;
  Sim.run ~until:(Time.sec horizon_s) sim;
  let names = List.init 4 (fun i -> Printf.sprintf "Flow %d" (i + 1)) in
  let rates =
    List.map
      (fun n -> (n, Probe.normalized probe n ~norm_bps:(float_of_int rate)))
      names
  in
  (* all four flows are active during [3*interval, 4*interval) *)
  let jain =
    Xmp_stats.Fairness.jain
      (List.map
         (fun n ->
           Probe.window_mean probe n ~from_s:(3.2 *. interval)
             ~until_s:(4. *. interval))
         names)
  in
  let utilization =
    Net.Link.utilization (Net.Testbed.bottleneck_fwd tb 0)
      ~duration:(Time.sec horizon_s)
  in
  {
    variant = v;
    bucket_s = Probe.bucket_s probe;
    rates;
    utilization;
    jain_all_active = jain;
  }

let print r =
  Render.subheading
    (Printf.sprintf "Figure 1 panel: %s" (variant_name r.variant));
  Render.series_table ~bucket_s:r.bucket_s ~every:2 r.rates;
  Render.printf
    "bottleneck utilization = %.3f, Jain index (4 flows active) = %.3f\n"
    r.utilization r.jain_all_active

let run_and_print_all ?scale ?faults () =
  Render.heading
    "Figure 1: four flows on a 1 Gbps bottleneck (normalized rates)";
  List.iter (fun v -> print (run ?scale ?faults v)) variants
