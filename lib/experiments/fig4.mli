(** Figure 4 — traffic shifting on the Figure 3(a) testbed (§4).

    Three XMP flows start together: Flow 1 crosses bottleneck DN1, Flow 3
    crosses DN2, Flow 2 has a subflow on each. A background flow loads DN1
    during the second quarter of the run and DN2 during the third. Flow
    2's subflows should shift traffic away from whichever path is loaded
    and compensate on the other; a larger β slows the shift (the paper's
    β = 6 panel).

    Testbed parameters as the paper: 300 Mbps bottlenecks, zero-load RTT
    1.8 ms (BDP ≈ 45 packets), K = 15, 100-packet queues. *)

type result = {
  beta : int;
  bucket_s : float;
  rates : (string * float array) list;
      (** Flow 2's subflow rates, normalized to 300 Mbps *)
  shifted_share : float;
      (** Flow 2-1's mean share while DN1 is loaded — low when shifting
          works *)
  compensation : float;
      (** Flow 2's total rate while DN1 is loaded / its unloaded total *)
}

val run :
  ?scale:float -> ?seed:int -> ?telemetry:Xmp_telemetry.Sink.t ->
  ?faults:Xmp_engine.Fault_spec.t -> beta:int -> unit -> result
(** [telemetry] (default the null sink) instruments the run for
    [xmp_sim trace]; [faults] (default empty) is armed against the
    testbed before the flows start. *)

val print : result -> unit

val run_and_print_all :
  ?scale:float -> ?faults:Xmp_engine.Fault_spec.t -> unit -> unit
(** The paper's two panels: β = 4 and β = 6. *)
