(* WAN / heterogeneous-RTT evaluation: the scenario family the paper
   never ran. Two k=4 fat trees joined by high-BDP border trunks
   (Xmp_net.Wan), driven open-loop (Open_loop.run_wan) and closed-loop
   (Driver with a Bridged topology), measuring:

   - wan.asym  — per-subflow RTT asymmetry across two trunks of
     different delay: FCT slowdowns per scheme, TraSh's traffic
     shifting read off the per-layer utilization, and the sharded
     domains:1 ≡ domains:2 byte-equality cross-check.
   - wan.bdp   — Eq. 1 (K ≥ BDP/(β−1)) at WAN BDPs: the analytic K for
     10/40/100 ms trunks plus a goodput probe with the border queue
     marking at K_eq1 vs a starved K_eq1/16.
   - wan.mixed — mixed intra/inter-DC matrices: the cross-DC fraction
     knob swept at a fixed 40 ms trunk.

   RTO floors are sized per topology — max(1 ms, max zero-load RTT / 2)
   — through the Scheme rtomin tunable, never the historical 200 ms
   constant (which exceeds every trunk RTT here and would mask timeout
   behaviour entirely). *)

module Time = Xmp_engine.Time
module Scheme = Xmp_workload.Scheme
module Driver = Xmp_workload.Driver
module Metrics = Xmp_workload.Metrics
module Open_loop = Xmp_workload.Open_loop
module Flow_size = Xmp_workload.Flow_size
module Wan = Xmp_net.Wan
module Units = Xmp_net.Units
module Fat_tree = Xmp_net.Fat_tree
module Table = Xmp_stats.Table

let left = Wan.Fat_tree_dc { k = 4 }
let right = Wan.Fat_tree_dc { k = 4 }

(* Per-topology RTO floor: half the slowest zero-load cross-DC RTT,
   never below 1 ms. On a 40 ms trunk this is ~40 ms — above any
   delayed-ACK hold, far below the 200 ms intra-DC default. *)
let wan_rto_min ~trunks =
  Stdlib.max (Time.ms 1) (Wan.max_rtt_no_queue_of ~left ~right ~trunks / 2)

(* Eq. 1 of the paper at a trunk's BDP: K >= BDP/(beta-1), with the BDP
   counted in 1500 B packets over the propagation round trip. *)
let bdp_packets ~rate ~delay =
  let rtt_s = float_of_int (2 * delay) /. 1e9 in
  int_of_float (Float.ceil (Units.bytes_per_sec rate *. rtt_s /. 1500.))

let eq1_k ~rate ~delay ~beta =
  int_of_float
    (Float.ceil
       (float_of_int (bdp_packets ~rate ~delay) /. float_of_int (beta - 1)))

(* ---- shared open-loop configuration ---- *)

let wan_config ~scale ~trunks ~cross_dc ~scheme =
  let rto_min = wan_rto_min ~trunks in
  {
    Open_loop.default_config with
    Open_loop.seed = 11;
    scheme = Scheme.with_rto ~rto_min scheme;
    sizes = Flow_size.scaled Flow_size.web_search (1. /. 32.);
    load = 0.25;
    horizon = Time.of_float_s (0.4 *. scale);
    (* flows that cross a trunk need tens of trunk RTTs to finish *)
    drain =
      Time.add
        (Time.of_float_s scale)
        (Time.mul (Wan.max_rtt_no_queue_of ~left ~right ~trunks) 25);
    max_flows = Some (Stdlib.max 40 (int_of_float (400. *. scale)));
    rto_min;
    cross_dc;
  }

let print_open_loop (r : Open_loop.result) =
  Render.say
    (Printf.sprintf "flows: %d launched, %d completed, %d truncated"
       r.Open_loop.launched r.Open_loop.completed r.Open_loop.truncated);
  Render.say
    (Printf.sprintf "events: %d (portal mail %d)" r.Open_loop.events
       r.Open_loop.mail);
  Render.five_number_table ~value_header:"FCT slowdown"
    (Metrics.fct_slowdowns r.Open_loop.metrics)

(* Everything a run's observable outcome feeds through: the digest two
   domain counts must agree on byte for byte. *)
let result_digest (r : Open_loop.result) =
  Digest.to_hex
    (Digest.string
       (Printf.sprintf "%d/%d/%d|%s" r.Open_loop.launched
          r.Open_loop.completed r.Open_loop.truncated
          (Metrics.fct_summary_csv r.Open_loop.metrics)))

(* ---- wan.asym ---- *)

let asym_trunks =
  [
    Wan.trunk ~delay:(Time.ms 10) ~queue_pkts:4000 ~marking_threshold:1000 ();
    Wan.trunk ~delay:(Time.ms 40) ~queue_pkts:4000 ~marking_threshold:1000 ();
  ]

let asym_schemes = [ Scheme.xmp 2; Scheme.lia 2; Scheme.dctcp ]

(* Closed-loop bridged run for the utilization read-out: TraSh shifting
   shows up as the wan/border layers' utilization spread. *)
let asym_driver_config ~scale scheme =
  let base =
    { Fatree_eval.default_base with horizon = Time.of_float_s scale }
  in
  {
    (Fatree_eval.driver_config base scheme Fatree_eval.Random) with
    Driver.topology = Driver.Bridged { left; right; trunks = asym_trunks };
    cross_dc = 0.5;
    rto_min = wan_rto_min ~trunks:asym_trunks;
  }

let print_asym ~scale () =
  Render.heading
    "wan.asym: bridged k=4/k=4, 10 ms vs 40 ms trunks, cross-DC 0.6";
  List.iter
    (fun scheme ->
      Render.subheading (Scheme.name scheme);
      let config = wan_config ~scale ~trunks:asym_trunks ~cross_dc:0.6 ~scheme in
      print_open_loop
        (Open_loop.run_wan ~config ~domains:1 ~left ~right
           ~trunks:asym_trunks ()))
    asym_schemes;
  Render.subheading "TraSh shifting: utilization by layer (XMP-2, closed loop)";
  let r = Driver.run (asym_driver_config ~scale (Scheme.xmp 2)) in
  Render.five_number_table ~value_header:"utilization"
    (Driver.utilization_by_layer r);
  Render.five_number_table ~value_header:"goodput Mbps"
    (List.map
       (fun (loc, d) -> (Fat_tree.locality_name loc, d))
       (Metrics.goodputs_by_locality r.Driver.metrics));
  Render.subheading "determinism across the WAN cut";
  let config =
    wan_config ~scale ~trunks:asym_trunks ~cross_dc:0.6 ~scheme:(Scheme.xmp 2)
  in
  let d1 =
    result_digest
      (Open_loop.run_wan ~config ~domains:1 ~left ~right ~trunks:asym_trunks ())
  in
  let d2 =
    result_digest
      (Open_loop.run_wan ~config ~domains:2 ~left ~right ~trunks:asym_trunks ())
  in
  Render.say (Printf.sprintf "domains:1 digest %s" d1);
  Render.say
    (Printf.sprintf "domains:1 == domains:2 : %b" (String.equal d1 d2))

(* ---- wan.bdp ---- *)

let bdp_delays = [ Time.ms 10; Time.ms 40; Time.ms 100 ]

let bdp_rate = Units.gbps 1.

let bdp_beta = 4

(* Two constant-size cross-DC flows, long-lived enough to reach the
   trunk's steady state past slow start even at 100 ms. The intra-DC
   queues are deep and never mark, so the border queue's threshold is
   the only congestion signal — the regime Eq. 1 sizes K for. *)
let bdp_probe_segments = 20_000

let bdp_probe_sizes =
  Flow_size.of_points ~name:"bdp-probe"
    [ (float_of_int bdp_probe_segments, 1.) ]

let bdp_config ~trunks =
  {
    (wan_config ~scale:0.1 ~trunks ~cross_dc:1.0 ~scheme:(Scheme.xmp 2)) with
    Open_loop.sizes = bdp_probe_sizes;
    (* nominally oversubscribed so the first arrivals land within a few
       ms; max_flows caps the probe at its two flows regardless *)
    load = 8.;
    horizon = Time.ms 20;
    drain = Time.sec 30.;
    max_flows = Some 2;
    queue_pkts = 2 * bdp_probe_segments;
    marking_threshold = 2 * bdp_probe_segments;
    (* a slow-start overshoot at WAN BDP loses thousands of segments in
       one burst when the border queue tail-drops; without SACK the
       recovery tail would dwarf the steady state Eq. 1 is about *)
    sack = true;
  }

let print_bdp ~scale:_ () =
  Render.heading "wan.bdp: Eq. 1 marking threshold at WAN BDPs (1 Gbps trunk)";
  Table.print
    ~header:[ "delay (ms)"; "BDP (pkts)"; "K_eq1 (pkts)" ]
    ~rows:
      (List.map
         (fun delay ->
           [
             string_of_int (delay / 1_000_000);
             string_of_int (bdp_packets ~rate:bdp_rate ~delay);
             string_of_int (eq1_k ~rate:bdp_rate ~delay ~beta:bdp_beta);
           ])
         bdp_delays)
    ();
  List.iter
    (fun delay ->
      Render.subheading (Printf.sprintf "trunk %d ms" (delay / 1_000_000));
      let k_eq1 = eq1_k ~rate:bdp_rate ~delay ~beta:bdp_beta in
      List.iter
        (fun (label, k) ->
          let trunks =
            [
              (* marking at K with enough droptail headroom above it to
                 absorb the slow-start overshoot before the first mark
                 takes effect (one RTT later) *)
              Wan.trunk ~rate:bdp_rate ~delay
                ~queue_pkts:(bdp_packets ~rate:bdp_rate ~delay + (2 * k) + 64)
                ~marking_threshold:k ();
            ]
          in
          let config = bdp_config ~trunks in
          let r = Open_loop.run_wan ~config ~left ~right ~trunks () in
          Render.say
            (Printf.sprintf
               "%s (K=%d): %d/%d flows completed, mean goodput %.1f Mbps"
               label k r.Open_loop.completed r.Open_loop.launched
               (Metrics.mean_goodput_bps r.Open_loop.metrics /. 1e6)))
        [ ("K = K_eq1   ", k_eq1); ("K = K_eq1/16", Stdlib.max 1 (k_eq1 / 16)) ])
    bdp_delays

(* ---- wan.mixed ---- *)

let mixed_trunks =
  [ Wan.trunk ~delay:(Time.ms 40) ~queue_pkts:4000 ~marking_threshold:1000 () ]

let mixed_fractions = [ 0.; 0.25; 0.75 ]

let print_mixed ~scale () =
  Render.heading
    "wan.mixed: cross-DC traffic fraction sweep (XMP-2, 40 ms trunk)";
  List.iter
    (fun cross_dc ->
      Render.subheading (Printf.sprintf "cross-DC fraction %.2f" cross_dc);
      let config =
        wan_config ~scale ~trunks:mixed_trunks ~cross_dc ~scheme:(Scheme.xmp 2)
      in
      print_open_loop
        (Open_loop.run_wan ~config ~left ~right ~trunks:mixed_trunks ()))
    mixed_fractions

(* ---- scenario parameter lists (everything a run depends on) ---- *)

let trunk_params trunks =
  List.concat
    (List.mapi
       (fun i (t : Wan.trunk) ->
         [
           (Printf.sprintf "trunk%d_rate_mbps" i,
            Printf.sprintf "%g" (Units.to_mbps t.Wan.trunk_rate));
           (Printf.sprintf "trunk%d_delay_ns" i,
            string_of_int t.Wan.trunk_delay);
           (Printf.sprintf "trunk%d_queue_pkts" i,
            string_of_int t.Wan.trunk_queue_pkts);
           (Printf.sprintf "trunk%d_mark" i,
            match t.Wan.trunk_marking_threshold with
            | None -> "droptail"
            | Some k -> string_of_int k);
         ])
       trunks)

let open_loop_params (c : Open_loop.config) =
  [
    ("scheme", Scheme.name c.Open_loop.scheme);
    ("cdf", Flow_size.name c.Open_loop.sizes);
    ("seed", string_of_int c.Open_loop.seed);
    ("load", string_of_float c.Open_loop.load);
    ("horizon_ns", string_of_int c.Open_loop.horizon);
    ("drain_ns", string_of_int c.Open_loop.drain);
    ("max_flows",
     match c.Open_loop.max_flows with
     | None -> "none"
     | Some n -> string_of_int n);
    ("rto_min_ns", string_of_int c.Open_loop.rto_min);
    ("cross_dc", string_of_float c.Open_loop.cross_dc);
  ]

let asym_params ~scale =
  let config =
    wan_config ~scale ~trunks:asym_trunks ~cross_dc:0.6 ~scheme:(Scheme.xmp 2)
  in
  (("scale", string_of_float scale) :: trunk_params asym_trunks)
  @ open_loop_params config

let bdp_params =
  [
    ("rate_mbps", Printf.sprintf "%g" (Units.to_mbps bdp_rate));
    ("beta", string_of_int bdp_beta);
    ("delays_ms",
     String.concat ","
       (List.map (fun d -> string_of_int (d / 1_000_000)) bdp_delays));
    ("probe_segments", string_of_int bdp_probe_segments);
    ("probe_flows", "2");
  ]

let mixed_params ~scale =
  let config =
    wan_config ~scale ~trunks:mixed_trunks ~cross_dc:0. ~scheme:(Scheme.xmp 2)
  in
  (("scale", string_of_float scale)
   :: ("fractions",
       String.concat "," (List.map string_of_float mixed_fractions))
   :: trunk_params mixed_trunks)
  @ open_loop_params config
