(** Text rendering of experiment outputs in the shapes the paper's tables
    and figures use. *)

val printf : ('a, out_channel, unit) format -> 'a
(** The sanctioned stdout formatter for experiment output. Experiment
    modules must not call [Printf.printf] directly (enforced by xmplint's
    [stdout-in-lib] rule); routing prints through here keeps a single
    choke point for future redirection of experiment output. *)

val say : string -> unit
(** Prints one line to experiment output. *)

val heading : string -> unit
(** Prints a boxed section title. *)

val subheading : string -> unit

val series_table :
  bucket_s:float -> ?every:int -> (string * float array) list -> unit
(** Prints a time column plus one column per named series, sampling every
    [every]-th bucket (default 1). Values rendered with 3 decimals. *)

val cdf_table : ?points:int -> (string * Xmp_stats.Distribution.t) list -> unit
(** Empirical CDFs side by side: for each cumulative probability (default
    deciles plus extremes), the value of each named distribution. *)

val five_number_table :
  value_header:string -> (string * Xmp_stats.Distribution.t) list -> unit
(** One row per name: min / p10 / p50 / p90 / max and mean — the paper's
    vertical-bar figures as text. *)
