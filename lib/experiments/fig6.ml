module Sim = Xmp_engine.Sim
module Time = Xmp_engine.Time
module Net = Xmp_net
module Mptcp_flow = Xmp_mptcp.Mptcp_flow

type result = {
  beta : int;
  bucket_s : float;
  subflow_rates : (string * float array) list;
  flow_rates : (string * float array) list;
  jain_flows : float;
}

let bottleneck_rate = Net.Units.mbps 300.

let run ?(scale = 0.2) ?(seed = 13) ?(telemetry = Xmp_telemetry.Sink.null)
    ?(faults = Xmp_engine.Fault_spec.empty) ~beta () =
  let unit_s = 5. *. scale in
  let horizon_s = 6. *. unit_s (* paper: 30 s *) in
  let sim =
    Sim.create ~config:{ Sim.default_config with seed; telemetry; faults } ()
  in
  let net = Net.Network.create sim in
  let disc () =
    Net.Queue_disc.create ~policy:(Net.Queue_disc.Threshold_mark 15)
      ~capacity_pkts:100
  in
  let tb =
    Net.Testbed.create ~net ~n_left:4 ~n_right:4
      ~bottlenecks:
        [ { Net.Testbed.rate = bottleneck_rate; delay = Time.us 600; disc } ]
      ~access_delay:(Time.us 150) ()
  in
  ignore (Xmp_faults.Injector.install ~net ());
  let params = { Xmp_core.Bos.default_params with beta } in
  let probe = Probe.create ~sim ~bucket_s:(unit_s /. 10.) ~horizon_s in
  let subflow_names = ref [] in
  let launch ~flow ~host ~n_initial =
    let recorders = ref [||] in
    let add_recorder () =
      let name = Printf.sprintf "Flow %d-%d" flow (Array.length !recorders + 1) in
      subflow_names := name :: !subflow_names;
      recorders := Array.append !recorders [| Probe.recorder probe name |]
    in
    for _ = 1 to n_initial do
      add_recorder ()
    done;
    let f =
      Mptcp_flow.create ~net ~flow
        ~src:(Net.Testbed.left_id tb host)
        ~dst:(Net.Testbed.right_id tb host)
        ~paths:(List.init n_initial (fun _ -> 0))
        ~coupling:(Xmp_core.Trash.coupling ~params ())
        ~config:Xmp_core.Xmp.tcp_config
        ~observer:
          {
            Mptcp_flow.silent with
            on_subflow_acked = (fun idx n -> !recorders.(idx) n);
          }
        ()
    in
    (f, add_recorder)
  in
  (* Flow 1: subflows at 0, 5, 15 s *)
  let f1, f1_add = launch ~flow:1 ~host:0 ~n_initial:1 in
  List.iter
    (fun u ->
      Sim.at sim
        (Time.sec (u *. unit_s))
        (fun () ->
          f1_add ();
          ignore (Mptcp_flow.add_subflow f1 ~path:0)))
    [ 1.; 3. ];
  (* Flow 2: two subflows at 20 s *)
  Sim.at sim
    (Time.sec (4. *. unit_s))
    (fun () -> ignore (launch ~flow:2 ~host:1 ~n_initial:2));
  (* Flows 3 and 4: single path; stop at 25 s *)
  let f3, _ = launch ~flow:3 ~host:2 ~n_initial:1 in
  let f4_cell = ref None in
  Sim.at sim
    (Time.sec (2. *. unit_s))
    (fun () ->
      let f4, _ = launch ~flow:4 ~host:3 ~n_initial:1 in
      f4_cell := Some f4);
  Sim.at sim
    (Time.sec (5. *. unit_s))
    (fun () ->
      Mptcp_flow.stop f3;
      match !f4_cell with Some f -> Mptcp_flow.stop f | None -> ());
  Sim.run ~until:(Time.sec horizon_s) sim;
  let norm = float_of_int bottleneck_rate in
  let names = List.sort String.compare !subflow_names in
  let subflow_rates =
    List.map (fun n -> (n, Probe.normalized probe n ~norm_bps:norm)) names
  in
  let flow_of name = String.sub name 5 1 in
  let flow_ids = [ "1"; "2"; "3"; "4" ] in
  let flow_rates =
    List.map
      (fun fid ->
        let parts =
          List.filter_map
            (fun (n, arr) -> if flow_of n = fid then Some arr else None)
            subflow_rates
        in
        let len =
          List.fold_left (fun acc a -> Stdlib.max acc (Array.length a)) 0 parts
        in
        let sum = Array.make len 0. in
        List.iter
          (fun a -> Array.iteri (fun i x -> sum.(i) <- sum.(i) +. x) a)
          parts;
        ("Flow " ^ fid, sum))
      flow_ids
  in
  (* all four flows active in [4.2, 5.0) units *)
  let jain =
    Xmp_stats.Fairness.jain
      (List.map
         (fun (_, arr) ->
           let lo = int_of_float (4.2 *. 10.) and hi = 5 * 10 in
           let s = ref 0. in
           for i = lo to Stdlib.min (hi - 1) (Array.length arr - 1) do
             s := !s +. arr.(i)
           done;
           !s)
         flow_rates)
  in
  {
    beta;
    bucket_s = Probe.bucket_s probe;
    subflow_rates;
    flow_rates;
    jain_flows = jain;
  }

let print r =
  Render.subheading (Printf.sprintf "Figure 6 panel: beta = %d" r.beta);
  Render.series_table ~bucket_s:r.bucket_s ~every:2 r.subflow_rates;
  Render.printf "per-flow totals:\n";
  Render.series_table ~bucket_s:r.bucket_s ~every:5 r.flow_rates;
  Render.printf "Jain index across flows (all active) = %.3f\n" r.jain_flows

let run_and_print_all ?scale ?faults () =
  Render.heading
    "Figure 6: four flows, 3/2/1/1 subflows, one 300 Mbps bottleneck";
  List.iter (fun beta -> print (run ?scale ?faults ~beta ())) [ 4; 6 ]
