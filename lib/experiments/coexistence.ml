module Scheme = Xmp_workload.Scheme
module Driver = Xmp_workload.Driver
module Metrics = Xmp_workload.Metrics
module Table = Xmp_stats.Table

type cell = { xmp_mbps : float; partner_mbps : float }

type result = {
  partner : Scheme.t;
  queue_pkts : int;
  cell : cell;
}

let xmp = Scheme.xmp 2

let run ?(base = Fatree_eval.default_base) ~partner ~queue_pkts () =
  let base = { base with Fatree_eval.queue_pkts } in
  let cfg =
    {
      (Fatree_eval.driver_config base xmp Fatree_eval.Random) with
      Driver.assignment = Driver.Split (xmp, partner);
    }
  in
  let r = Driver.run cfg in
  let m = r.Driver.metrics in
  {
    partner;
    queue_pkts;
    cell =
      {
        xmp_mbps = Metrics.mean_goodput_bps_of_scheme m xmp /. 1e6;
        partner_mbps = Metrics.mean_goodput_bps_of_scheme m partner /. 1e6;
      };
  }

let partners = [ Scheme.lia 2; Scheme.reno; Scheme.dctcp ]

let extended_partners = [ Scheme.balia 2; Scheme.veno 2; Scheme.amp 2 ]

let print_rows ~base partners =
  let cell partner queue_pkts =
    let r = run ~base ~partner ~queue_pkts () in
    Printf.sprintf "%s : %s"
      (Table.fixed 1 r.cell.xmp_mbps)
      (Table.fixed 1 r.cell.partner_mbps)
  in
  let rows =
    List.map
      (fun partner ->
        [
          Printf.sprintf "XMP : %s" (Scheme.name partner);
          cell partner 50;
          cell partner 100;
        ])
      partners
  in
  Table.print
    ~header:[ "Pairing"; "Queue 50 pkts"; "Queue 100 pkts" ]
    ~rows ()

let print_table2 ?(base = Fatree_eval.default_base) () =
  Render.heading
    "Table 2: average goodput (Mbps), XMP-2 coexisting per Random pattern";
  print_rows ~base partners

let print_table2_extended ?(base = Fatree_eval.default_base) () =
  Render.heading
    "Table 2 (extended): XMP-2 coexisting with BALIA/VENO/AMP per Random \
     pattern";
  print_rows ~base extended_partners
