module Sim = Xmp_engine.Sim
module Time = Xmp_engine.Time
module Net = Xmp_net
module Scheme = Xmp_workload.Scheme
module Metrics = Xmp_workload.Metrics
module Driver = Xmp_workload.Driver
module Table = Xmp_stats.Table
module Mptcp_flow = Xmp_mptcp.Mptcp_flow

let print_beta_sweep ?scale ?(betas = [ 2; 3; 4; 5; 6; 8 ]) () =
  Render.heading
    "Ablation: beta vs fairness (Figure 6 scenario, Jain across flows)";
  let rows =
    List.map
      (fun beta ->
        let r = Fig6.run ?scale ~beta () in
        [ string_of_int beta; Table.fixed 3 r.Fig6.jain_flows ])
      betas
  in
  Table.print ~header:[ "beta"; "Jain index" ] ~rows ()

(* One long-lived BOS flow on a 1 Gbps / 225 us bottleneck per K:
   utilization should cross ~1 at the Equation 1 bound and RTT should
   grow linearly in K beyond it. *)
let k_sweep_point ~k ~beta =
  let sim = Sim.create ~config:{ Sim.default_config with seed = 23 } () in
  let net = Net.Network.create sim in
  let disc () =
    Net.Queue_disc.create ~policy:(Net.Queue_disc.Threshold_mark k)
      ~capacity_pkts:200
  in
  let tb =
    Net.Testbed.create ~net ~n_left:1 ~n_right:1
      ~bottlenecks:
        [ { Net.Testbed.rate = Net.Units.gbps 1.; delay = Time.ns 62_500; disc } ]
      ~access_delay:(Time.us 25) ()
  in
  let rtts = Xmp_stats.Running.create () in
  let params = { Xmp_core.Bos.default_params with beta } in
  ignore
    (Mptcp_flow.create ~net ~flow:1
       ~src:(Net.Testbed.left_id tb 0)
       ~dst:(Net.Testbed.right_id tb 0)
       ~paths:[ 0 ]
       ~coupling:(Xmp_core.Trash.coupling ~params ())
       ~config:Xmp_core.Xmp.tcp_config
       ~observer:
         {
           Mptcp_flow.silent with
           on_rtt_sample =
             (fun rtt -> Xmp_stats.Running.add rtts (Time.to_us rtt));
         }
       ());
  let horizon = Time.sec 0.5 in
  Sim.run ~until:horizon sim;
  let util =
    Net.Link.utilization (Net.Testbed.bottleneck_fwd tb 0) ~duration:horizon
  in
  (util, Xmp_stats.Running.mean rtts)

let print_k_sweep ?(ks = [ 2; 4; 6; 8; 10; 15; 20; 40 ]) ?(beta = 4) () =
  Render.heading
    (Printf.sprintf
       "Ablation: marking threshold K vs utilization and RTT (beta = %d)"
       beta);
  let bdp =
    Xmp_core.Params.bdp_packets ~rate:(Net.Units.gbps 1.) ~rtt:(Time.us 225)
      ~packet_bytes:Net.Packet.data_wire_bytes
  in
  let k_min = Xmp_core.Params.min_k ~bdp_packets:bdp ~beta in
  Render.printf "BDP = %.1f packets; Equation 1 bound: K >= %d\n" bdp k_min;
  let rows =
    List.map
      (fun k ->
        let util, rtt_us = k_sweep_point ~k ~beta in
        [
          string_of_int k;
          Table.fixed 3 util;
          Table.fixed 0 rtt_us;
          (if k >= k_min then "yes" else "no");
        ])
      ks
  in
  Table.print
    ~header:[ "K"; "utilization"; "mean RTT (us)"; "Eq.1 satisfied" ]
    ~rows ()

let mean_goodput base scheme pattern =
  let r = Fatree_eval.result base scheme pattern in
  Metrics.mean_goodput_bps r.Driver.metrics /. 1e6

let print_subflow_sweep ?(base = Fatree_eval.default_base)
    ?(counts = [ 1; 2; 3; 4 ]) () =
  Render.heading
    "Ablation: subflow count vs mean goodput (Permutation pattern, Mbps)";
  let rows =
    List.map
      (fun n ->
        [
          string_of_int n;
          Table.fixed 1
            (mean_goodput base (Scheme.lia n) Fatree_eval.Permutation);
          Table.fixed 1
            (mean_goodput base (Scheme.xmp n) Fatree_eval.Permutation);
        ])
      counts
  in
  Table.print ~header:[ "subflows"; "LIA"; "XMP" ] ~rows ()

let print_coupling_comparison ?(base = Fatree_eval.default_base) () =
  Render.heading
    "Ablation: coupling comparison LIA / OLIA / XMP (mean goodput, Mbps)";
  let rows =
    List.concat_map
      (fun n ->
        List.map
          (fun (label, scheme) ->
            [
              Printf.sprintf "%s-%d" label n;
              Table.fixed 1
                (mean_goodput base scheme Fatree_eval.Permutation);
              Table.fixed 1 (mean_goodput base scheme Fatree_eval.Random);
            ])
          [
            ("LIA", Scheme.lia n);
            ("OLIA", Scheme.olia n);
            ("XMP", Scheme.xmp n);
          ])
      [ 2; 4 ]
  in
  Table.print ~header:[ "Coupling"; "Permutation"; "Random" ] ~rows ()

let print_flow_size_sweep ?(base = Fatree_eval.default_base) () =
  Render.heading
    "Ablation: flow size vs LIA's multipath gain (Permutation, Mbps)";
  Render.say
    "Short flows restart slow start constantly; the synchronized restart\n\
     losses hit many-subflow LIA hardest (tiny per-subflow windows cannot\n\
     fast-retransmit, so every loss costs a 200 ms RTO). The paper's\n\
     64-512 MB flows are long-lived: LIA-4's path-diversity gain only\n\
     appears once flows live much longer than slow start.";
  let rows =
    List.map
      (fun size_scale ->
        let base = { base with Fatree_eval.size_scale } in
        let gp s =
          Table.fixed 1 (mean_goodput base s Fatree_eval.Permutation)
        in
        [
          Printf.sprintf "%g-%g MB" (2. *. size_scale) (16. *. size_scale);
          gp (Scheme.lia 2);
          gp (Scheme.lia 4);
          gp (Scheme.xmp 2);
        ])
      [ 0.5; 2.; 8. ]
  in
  Table.print
    ~header:[ "Flow sizes"; "LIA-2"; "LIA-4"; "XMP-2" ]
    ~rows ()

let print_incast_fanout_sweep ?(base = Fatree_eval.default_base) () =
  Render.heading
    "Ablation: pure incast fanout (no background flows, TCP small flows)";
  Render.say
    "The TCP-collapse mechanics behind Figure 9 and Table 3 (Vasudevan et\n\
     al., cited in section 6): once the synchronized responses overflow\n\
     the client's edge-port buffer, jobs pay the 200 ms RTOmin.";
  let rows =
    List.map
      (fun fanout ->
        let pattern =
          Driver.Incast
            {
              jobs = 1;
              fanout;
              request_segments = 2;
              response_segments = 45;
              bg_mean_segments = 0.;
              bg_cap_segments = 1.;
              bg_shape = 1.5;
            }
        in
        let cfg =
          {
            (Fatree_eval.driver_config base (Scheme.xmp 2)
               Fatree_eval.Incast)
            with
            Driver.pattern;
          }
        in
        let r = Driver.run cfg in
        let jobs = Metrics.job_times_ms r.Driver.metrics in
        if Xmp_stats.Distribution.is_empty jobs then
          [ string_of_int fanout; "--"; "--"; "--" ]
        else
          [
            string_of_int fanout;
            Table.fixed 1 (Xmp_stats.Distribution.percentile jobs 50.);
            Table.fixed 1 (Xmp_stats.Distribution.mean jobs);
            Table.fixed 1
              (100.
              *. Xmp_workload.Metrics.jobs_over_ms r.Driver.metrics 200.);
          ])
      [ 2; 4; 8; 12; 15 ]
  in
  Table.print
    ~header:
      [ "Fanout"; "Median JCT (ms)"; "Mean JCT (ms)"; "> 200 ms (%)" ]
    ~rows ()

let print_rto_min_sweep ?(base = Fatree_eval.default_base) () =
  Render.heading
    "Ablation: RTOmin under Incast (jobs + background goodput)";
  let rows =
    List.concat_map
      (fun scheme ->
        List.map
          (fun rto_ms ->
            let base = { base with Fatree_eval.rto_min = Time.ms rto_ms } in
            let r = Fatree_eval.result base scheme Fatree_eval.Incast in
            let m = r.Driver.metrics in
            let jobs = Xmp_workload.Metrics.job_times_ms m in
            [
              Scheme.name scheme;
              string_of_int rto_ms;
              (if Xmp_stats.Distribution.is_empty jobs then "--"
               else Table.fixed 0 (Xmp_stats.Distribution.mean jobs));
              string_of_int (Xmp_stats.Distribution.count jobs);
              Table.fixed 1
                (Xmp_workload.Metrics.mean_goodput_bps m /. 1e6);
            ])
          [ 200; 20; 2 ])
      [ Scheme.lia 2; Scheme.xmp 2 ]
  in
  Table.print
    ~header:
      [ "Scheme"; "RTOmin (ms)"; "Mean JCT (ms)"; "Jobs"; "Goodput (Mbps)" ]
    ~rows ()

(* Sample the bottleneck queue occupancy under four same-scheme flows. *)
let queue_occupancy_point ~beta ~k scheme =
  let sim = Sim.create ~config:{ Sim.default_config with seed = 29 } () in
  let net = Net.Network.create sim in
  let policy =
    if Scheme.uses_ecn scheme then Net.Queue_disc.Threshold_mark k
    else Net.Queue_disc.Droptail
  in
  let disc () = Net.Queue_disc.create ~policy ~capacity_pkts:100 in
  let tb =
    Net.Testbed.create ~net ~n_left:4 ~n_right:4
      ~bottlenecks:
        [ { Net.Testbed.rate = Net.Units.gbps 1.; delay = Time.ns 62_500; disc } ]
      ~access_delay:(Time.us 25) ()
  in
  let overrides = { Scheme.default_overrides with beta } in
  for i = 0 to 3 do
    ignore
      (Scheme.launch ~net ~overrides ~flow:i
         ~src:(Net.Testbed.left_id tb i)
         ~dst:(Net.Testbed.right_id tb i)
         ~paths:[ 0 ] scheme)
  done;
  let queue = Net.Link.disc (Net.Testbed.bottleneck_fwd tb 0) in
  let occupancy = Xmp_stats.Distribution.create () in
  ignore
    (Xmp_engine.Periodic.start sim ~first_after:(Time.ms 20)
       ~interval:(Time.us 100) (fun () ->
         Xmp_stats.Distribution.add occupancy
           (float_of_int (Net.Queue_disc.length queue))));
  Sim.run ~until:(Time.ms 200) sim;
  (occupancy, Net.Queue_disc.dropped queue)

let print_sack_comparison ?(base = Fatree_eval.default_base) () =
  Render.heading
    "Ablation: SACK vs go-back-N recovery (Permutation goodput, Mbps)";
  Render.say
    "The paper's LIA/TCP results are dominated by 200 ms RTO recovery.\n\
     Giving the loss-driven schemes SACK-based recovery (a modern stack)\n\
     closes much of their gap to the ECN schemes - i.e. part of what the\n\
     paper measures is its baselines' loss recovery, not only their\n\
     congestion control.";
  let rows =
    List.map
      (fun scheme ->
        let gp sack =
          let base = { base with Fatree_eval.sack } in
          Table.fixed 1 (mean_goodput base scheme Fatree_eval.Permutation)
        in
        [ Scheme.name scheme; gp false; gp true ])
      [ Scheme.reno; Scheme.lia 2; Scheme.lia 4; Scheme.xmp 2 ]
  in
  Table.print ~header:[ "Scheme"; "no SACK"; "SACK" ] ~rows ()

let print_queue_occupancy ?(beta = 4) ?(k = 10) () =
  Render.heading
    (Printf.sprintf
       "Ablation: queue occupancy, 4 flows on one 1 Gbps link (K = %d)" k);
  let rows =
    List.map
      (fun scheme ->
        let occ, drops = queue_occupancy_point ~beta ~k scheme in
        let mn, p10, p50, p90, mx = Xmp_stats.Distribution.five_number occ in
        [
          Scheme.name scheme;
          Table.fixed 1 mn;
          Table.fixed 1 p10;
          Table.fixed 1 p50;
          Table.fixed 1 p90;
          Table.fixed 1 mx;
          string_of_int drops;
        ])
      [ Scheme.xmp 1; Scheme.dctcp; Scheme.reno; Scheme.lia 1 ]
  in
  Table.print
    ~header:
      [ "Scheme"; "min"; "p10"; "p50"; "p90"; "max"; "drops" ]
    ~rows ()

let print_all ?(base = Fatree_eval.default_base) () =
  print_beta_sweep ();
  print_k_sweep ();
  print_subflow_sweep ~base ();
  print_coupling_comparison ~base ();
  print_flow_size_sweep ~base ();
  print_incast_fanout_sweep ~base ();
  print_rto_min_sweep ~base ();
  print_sack_comparison ~base ();
  print_queue_occupancy ()
