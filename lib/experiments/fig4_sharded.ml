module Sim = Xmp_engine.Sim
module Time = Xmp_engine.Time
module Net = Xmp_net
module Mptcp_flow = Xmp_mptcp.Mptcp_flow

(* The Figure-4 traffic-shifting dynamic restaged on a pod-sharded k=4
   fat tree (one shard per pod, portals at the core layer). The shared
   bottlenecks are pod 0's two edge-to-aggregation uplinks: Flow 2's two
   subflows leave edge 0 through agg 0 and agg 1 respectively, and two
   pod-local background flows load first the agg-0 uplink, then the
   agg-1 uplink, so Flow 2 shifts across — the fig4 schedule, with the
   dumbbell's DN1/DN2 played by e0.0->a0.0 and e0.0->a0.1.

   Every sender lives in pod 0, so all observers record on shard 0's
   clock; receivers sit in pods 1 and 2, exercising the split-transport
   path (data out through the core portals, ACKs back). Background flows
   are pod-local on purpose: they start and stop mid-run, and creating a
   cross-shard flow from inside an epoch would race the other domain. *)

type result = {
  beta : int;
  domains : int;
  bucket_s : float;
  rates : (string * float array) list;
  loaded_share : float;  (* Flow 2-1 share of Flow 2 while agg 0 is loaded *)
  recovered_share : float;  (* same share once the load moves to agg 1 *)
  events : int;
  mail : int;
}

let bottleneck_rate = Net.Units.mbps 300.

let xmp_flow ~net ?rcv_net ~beta ~flow ~src ~dst ~paths ?observer () =
  let params = { Xmp_core.Bos.default_params with beta } in
  Mptcp_flow.create ~net ?rcv_net ~flow ~src ~dst ~paths
    ~coupling:(Xmp_core.Trash.coupling ~params ())
    ~config:Xmp_core.Xmp.tcp_config ?observer ()

let run ?(scale = 0.2) ?(seed = 11) ?(domains = 1) ~beta () =
  let unit_s = 10. *. scale in
  let horizon_s = 4. *. unit_s in
  let disc () =
    Net.Queue_disc.create ~policy:(Net.Queue_disc.Threshold_mark 15)
      ~capacity_pkts:100
  in
  let ft =
    Net.Fat_tree_sharded.create
      ~config:{ Sim.default_config with Sim.seed }
      ~k:4 ~rate:bottleneck_rate ~disc ()
  in
  (* k=4: pod p holds hosts (p, e, s) = 4p + 2e + s *)
  let host pod e s = (pod * 4) + (e * 2) + s in
  let sim0 = Net.Shard.sim (Net.Fat_tree_sharded.cluster ft) 0 in
  let probe = Probe.create ~sim:sim0 ~bucket_s:(unit_s /. 20.) ~horizon_s in
  let launch ~flow ~src ~dst ~paths ~probe_names =
    let recorders =
      Array.of_list (List.map (Probe.recorder probe) probe_names)
    in
    let net = Net.Fat_tree_sharded.host_net ft src in
    let rcv_net = Net.Fat_tree_sharded.host_net ft dst in
    ignore
      (xmp_flow ~net ~rcv_net ~beta ~flow ~src ~dst ~paths
         ~observer:
           {
             Mptcp_flow.silent with
             on_subflow_acked = (fun idx n -> recorders.(idx) n);
           }
         ())
  in
  (* Inter-pod path p maps to agg (p / 2 mod 2) and core group column
     (p mod 2): paths 0 and 3 diverge at the edge and stay disjoint
     through the core. *)
  launch ~flow:1 ~src:(host 0 0 0) ~dst:(host 1 0 0) ~paths:[ 0 ]
    ~probe_names:[ "Flow 1" ];
  launch ~flow:2 ~src:(host 0 0 1) ~dst:(host 2 0 0) ~paths:[ 0; 3 ]
    ~probe_names:[ "Flow 2-1"; "Flow 2-2" ];
  launch ~flow:3 ~src:(host 0 1 0) ~dst:(host 2 1 0) ~paths:[ 3 ]
    ~probe_names:[ "Flow 3" ];
  (* Pod-local background: [path] picks the aggregation switch for an
     inter-rack flow, so path 0 loads e0.0->a0.0 and path 1 loads
     e0.0->a0.1. Created and stopped from shard 0's own events. *)
  let background ~flow ~src ~dst ~path ~from_u ~until_u =
    Sim.at sim0
      (Time.sec (from_u *. unit_s))
      (fun () ->
        let net = Net.Fat_tree_sharded.host_net ft src in
        let f = xmp_flow ~net ~beta ~flow ~src ~dst ~paths:[ path ] () in
        Sim.at sim0
          (Time.sec (until_u *. unit_s))
          (fun () -> Mptcp_flow.stop f))
  in
  background ~flow:4 ~src:(host 0 0 0) ~dst:(host 0 1 0) ~path:0 ~from_u:1.
    ~until_u:2.;
  background ~flow:5 ~src:(host 0 0 0) ~dst:(host 0 1 1) ~path:1 ~from_u:2.
    ~until_u:3.;
  Net.Fat_tree_sharded.run ~domains ~until:(Time.sec horizon_s) ft;
  let norm = float_of_int bottleneck_rate in
  let rates =
    List.map
      (fun n -> (n, Probe.normalized probe n ~norm_bps:norm))
      [ "Flow 2-1"; "Flow 2-2" ]
  in
  let share ~from_u ~until_u =
    let mean name =
      Probe.window_mean probe name ~from_s:(from_u *. unit_s)
        ~until_s:(until_u *. unit_s)
    in
    let a = mean "Flow 2-1" and b = mean "Flow 2-2" in
    if a +. b > 0. then a /. (a +. b) else 0.
  in
  {
    beta;
    domains;
    bucket_s = Probe.bucket_s probe;
    rates;
    loaded_share = share ~from_u:1.3 ~until_u:2.;
    recovered_share = share ~from_u:2.3 ~until_u:3.;
    events = Net.Shard.events_executed (Net.Fat_tree_sharded.cluster ft);
    mail = Net.Shard.mail_injected (Net.Fat_tree_sharded.cluster ft);
  }

let print r =
  Render.subheading
    (Printf.sprintf "Sharded fat tree: beta = %d, %d pod shards" r.beta 4);
  Render.series_table ~bucket_s:r.bucket_s ~every:2 r.rates;
  Render.printf
    "Flow 2-1 share: agg-0 loaded = %.3f, agg-1 loaded = %.3f\n"
    r.loaded_share r.recovered_share;
  Render.printf "events executed = %d, portal mail = %d\n" r.events r.mail

let run_and_print ?scale ?(domains = 1) () =
  Render.heading
    "Figure 4 on a pod-sharded fat tree (k=4, rates / 300 Mbps)";
  print (run ?scale ~domains ~beta:4 ())
