module Time = Xmp_engine.Time
module Scheme = Xmp_workload.Scheme
module Driver = Xmp_workload.Driver
module Metrics = Xmp_workload.Metrics
module Distribution = Xmp_stats.Distribution
module Table = Xmp_stats.Table
module Fat_tree = Xmp_net.Fat_tree

type pattern_id = Permutation | Random | Incast

let pattern_name = function
  | Permutation -> "Permutation"
  | Random -> "Random"
  | Incast -> "Incast"

type base = {
  k : int;
  horizon : Time.t;
  seed : int;
  queue_pkts : int;
  marking_threshold : int;
  beta : int;
  rto_min : Time.t;
  sack : bool;
  size_scale : float;
  incast_jobs : int;
  faults : Xmp_engine.Fault_spec.t;
}

let default_base =
  {
    k = 4;
    horizon = Time.sec 2.5;
    seed = 1;
    queue_pkts = 100;
    marking_threshold = 10;
    beta = 4;
    rto_min = Time.ms 200;
    sack = false;
    (* size_scale 4 gives 8-64 MB flows: long-lived enough that slow-start
       restarts do not dominate (the paper's flows are 64-512 MB); with
       smaller flows the synchronized restarts systematically punish
       many-subflow LIA (see the flow-size ablation) *)
    size_scale = 4.;
    incast_jobs = 3;
    faults = Xmp_engine.Fault_spec.empty;
  }

let paper_scale_base =
  {
    default_base with
    k = 8;
    horizon = Time.sec 3.;
    size_scale = 8.;
    incast_jobs = 8;
  }

let scaled_segments base s =
  Stdlib.max 1 (int_of_float (Float.round (float_of_int s *. base.size_scale)))

let segs_of_mb mb = int_of_float (Float.ceil (mb *. 1e6 /. 1460.))

let pattern_of base = function
  | Permutation ->
    Driver.Permutation
      {
        min_segments = scaled_segments base (segs_of_mb 2.);
        max_segments = scaled_segments base (segs_of_mb 16.);
      }
  | Random ->
    Driver.Random_pattern
      {
        mean_segments = float_of_int (scaled_segments base (segs_of_mb 6.));
        cap_segments = float_of_int (scaled_segments base (segs_of_mb 24.));
        shape = 1.5;
        max_inbound = 4;
      }
  | Incast ->
    Driver.Incast
      {
        jobs = base.incast_jobs;
        fanout = 8;
        request_segments = 2;
        response_segments = 45;
        bg_mean_segments = float_of_int (scaled_segments base (segs_of_mb 6.));
        bg_cap_segments = float_of_int (scaled_segments base (segs_of_mb 24.));
        bg_shape = 1.5;
      }

let driver_config base scheme pattern =
  {
    Driver.k = base.k;
    seed = base.seed;
    topology = Driver.Single_dc;
    cross_dc = 0.;
    horizon = base.horizon;
    queue_pkts = base.queue_pkts;
    marking_threshold = base.marking_threshold;
    beta = base.beta;
    rto_min = base.rto_min;
    sack = base.sack;
    assignment = Driver.Uniform scheme;
    pattern = pattern_of base pattern;
    rtt_subsample = 16;
    keep_flows = true;
    faults = base.faults;
    telemetry = Xmp_telemetry.Sink.null;
  }

(* xmplint: allow mutable-global — per-process memo of completed runs,
   keyed by the full canonical configuration; it is an explicitly scoped
   cache (clear_cache / with_cache below let runner workers isolate
   scenarios), and a stale entry cannot change results because the key
   covers every input that affects a run. Not yet domain-safe: guard or
   shard it before Domains-parallel evaluation. *)
let cache : (string, Driver.result) Hashtbl.t = Hashtbl.create 32

let cache_size () = Hashtbl.length cache
let clear_cache () = Hashtbl.reset cache

let with_cache f =
  let saved = Hashtbl.copy cache in
  Hashtbl.reset cache;
  Fun.protect
    ~finally:(fun () ->
      Hashtbl.reset cache;
      (* xmplint: allow hashtbl-order — restoring a snapshot into an
         empty table; only lookups ever read it, so insertion order is
         unobservable *)
      Hashtbl.iter (fun k v -> Hashtbl.replace cache k v) saved)
    f

let cache_key base scheme pattern =
  (* fault schedule folds into the key via its canonical params; an empty
     schedule contributes nothing, keeping fault-free keys unchanged *)
  let fault_part =
    String.concat ";"
      (List.map
         (fun (k, v) -> k ^ "=" ^ v)
         (Xmp_engine.Fault_spec.to_params base.faults))
  in
  Printf.sprintf "%s|%s|k%d|h%d|s%d|q%d|K%d|b%d|r%d|x%g|j%d|sk%b|%s"
    (Scheme.name scheme) (pattern_name pattern) base.k base.horizon
    base.seed base.queue_pkts base.marking_threshold base.beta base.rto_min
    base.size_scale base.incast_jobs base.sack fault_part

let result base scheme pattern =
  let key = cache_key base scheme pattern in
  match Hashtbl.find_opt cache key with
  | Some r -> r
  | None ->
    let r = Driver.run (driver_config base scheme pattern) in
    Hashtbl.replace cache key r;
    r

(* Fault-injection evaluation: one run with a live telemetry sink so the
   injector's Link_down / Link_up / Injected_drop events are observable,
   summarized as a deterministic table. Not memoized — the run is cheap at
   scenario scale and the sink makes the result unshareable. *)
let print_fault_eval base scheme pattern =
  Render.heading
    (Printf.sprintf "Fault evaluation: %s under %s" (Scheme.name scheme)
       (pattern_name pattern));
  List.iter
    (fun spec ->
      Render.say
        (Printf.sprintf "fault: %s" (Xmp_engine.Fault_spec.spec_to_string spec)))
    base.faults.Xmp_engine.Fault_spec.specs;
  let sink = Xmp_telemetry.Sink.create () in
  let cfg = { (driver_config base scheme pattern) with telemetry = sink } in
  let r = Driver.run cfg in
  let count kind =
    let n = ref 0 in
    Xmp_telemetry.Recorder.iter
      (fun e ->
        if String.equal (Xmp_telemetry.Event.kind e.Xmp_telemetry.Recorder.event) kind
        then incr n)
      (Xmp_telemetry.Sink.recorder sink);
    !n
  in
  let m = r.Driver.metrics in
  let jobs = Metrics.job_times_ms m in
  Table.print
    ~header:[ "Metric"; "Value" ]
    ~rows:
      [
        [ "Flows recorded"; string_of_int (Metrics.n_completed_flows m) ];
        [
          "Flows truncated at horizon";
          string_of_int (Metrics.n_truncated_flows m);
        ];
        [
          "Mean goodput (Mbps)";
          Table.fixed 1 (Metrics.mean_goodput_bps r.Driver.metrics /. 1e6);
        ];
        [ "Jobs completed"; string_of_int (Distribution.count jobs) ];
        [ "Injected drops"; string_of_int r.Driver.injected_drops ];
        [ "link-down events"; string_of_int (count "link-down") ];
        [ "link-up events"; string_of_int (count "link-up") ];
        [ "injected-drop events"; string_of_int (count "injected-drop") ];
      ]
    ()

let table1_schemes =
  [ Scheme.dctcp; Scheme.lia 2; Scheme.lia 4; Scheme.xmp 2; Scheme.xmp 4 ]

let bar_schemes =
  [ Scheme.dctcp; Scheme.lia 4; Scheme.xmp 2; Scheme.xmp 4 ]

let all_patterns = [ Permutation; Random; Incast ]

let print_table1 base =
  Render.heading "Table 1: average goodput of large flows (Mbps)";
  let rows =
    List.map
      (fun scheme ->
        Scheme.name scheme
        :: List.map
             (fun pat ->
               let r = result base scheme pat in
               Table.fixed 1
                 (Metrics.mean_goodput_bps r.Driver.metrics /. 1e6))
             all_patterns)
      table1_schemes
  in
  Table.print
    ~header:("Scheme" :: List.map pattern_name all_patterns)
    ~rows ()

let goodput_dist base scheme pat =
  let r = result base scheme pat in
  let d = Distribution.create () in
  List.iter
    (fun (f : Metrics.flow_record) ->
      Distribution.add d (f.goodput_bps /. 1e9))
    (Metrics.completed_flows r.Driver.metrics);
  d

let print_fig8 base =
  Render.heading "Figure 8: goodput distributions (normalized to 1 Gbps)";
  List.iter
    (fun pat ->
      Render.subheading
        (Printf.sprintf "Fig 8 CDF, %s pattern" (pattern_name pat));
      Render.cdf_table
        (List.map
           (fun s -> (Scheme.name s, goodput_dist base s pat))
           table1_schemes))
    [ Permutation; Incast ];
  List.iter
    (fun pat ->
      Render.subheading
        (Printf.sprintf "Fig 8 locality breakdown, %s pattern"
           (pattern_name pat));
      List.iter
        (fun scheme ->
          let r = result base scheme pat in
          let by_loc = Metrics.goodputs_by_locality r.Driver.metrics in
          Render.five_number_table
            ~value_header:(Scheme.name scheme)
            (List.map
               (fun (loc, d) ->
                 let scaled = Distribution.create () in
                 Array.iter
                   (fun v -> Distribution.add scaled (v /. 1e9))
                   (Distribution.values d);
                 (Fat_tree.locality_name loc, scaled))
               by_loc))
        bar_schemes)
    [ Permutation; Incast ]

let print_fig9 base =
  Render.heading "Figure 9: job completion time CDF (ms, Incast pattern)";
  Render.cdf_table
    (List.map
       (fun s ->
         let r = result base s Incast in
         (Scheme.name s, Metrics.job_times_ms r.Driver.metrics))
       table1_schemes)

let print_fig10 base =
  Render.heading "Figure 10: RTT distributions of large flows (ms)";
  List.iter
    (fun pat ->
      Render.subheading (pattern_name pat);
      List.iter
        (fun scheme ->
          let r = result base scheme pat in
          Render.five_number_table
            ~value_header:(Scheme.name scheme)
            (List.map
               (fun (loc, d) -> (Fat_tree.locality_name loc, d))
               (Metrics.rtts_by_locality r.Driver.metrics)))
        bar_schemes)
    all_patterns

let print_fig11 base =
  Render.heading "Figure 11: link utilization by layer";
  List.iter
    (fun pat ->
      Render.subheading (pattern_name pat);
      List.iter
        (fun scheme ->
          let r = result base scheme pat in
          Render.five_number_table
            ~value_header:(Scheme.name scheme)
            (Driver.utilization_by_layer r))
        bar_schemes)
    all_patterns

let print_table3 base =
  Render.heading "Table 3: average job completion time (Incast pattern)";
  let rows =
    List.map
      (fun scheme ->
        let r = result base scheme Incast in
        let jobs = Metrics.job_times_ms r.Driver.metrics in
        [
          Scheme.name scheme;
          (if Distribution.is_empty jobs then "--"
           else Table.fixed 0 (Distribution.mean jobs));
          string_of_int (Distribution.count jobs);
          Table.fixed 1
            (100. *. Metrics.jobs_over_ms r.Driver.metrics 300.);
        ])
      table1_schemes
  in
  Table.print
    ~header:[ "Scheme"; "Mean JCT (ms)"; "Jobs done"; "> 300 ms (%)" ]
    ~rows ()
