(** Figure 7 — rate compensation on the Figure 5 ring (§5.1).

    Five bottleneck links L1..L5 with capacities 0.8 / 1.2 / 2 / 1.5 /
    0.5 Gbps. Flow i (i = 1..5) has two subflows: one on L_i and one on
    L_{i+1} (L5 wraps to L1 — the "torus"). Flows start one per interval;
    then four single-path background flows pile onto L3 one per interval
    and later leave one per interval; finally L3 goes down entirely.

    Expected shape (the "attenuated dominos"): as L3 congests, Flow 2-2
    and Flow 3-1 fall while their siblings 2-1 and 3-2 rise in
    compensation, which in turn pushes Flow 1-2 and Flow 4-1 down a
    little; Flows 1-1, 4-2 (and 5) barely move. For each flow, when one
    subflow's curve is concave the sibling's is convex. *)

type result = {
  beta : int;
  k : int;
  interval_s : float;
  rates : (string * float array) list;
      (** interval-averaged subflow rates of Flows 1–5, normalized to
          1 Gbps; one value per schedule interval *)
}

val run :
  ?scale:float -> ?seed:int -> ?telemetry:Xmp_telemetry.Sink.t ->
  ?faults:Xmp_engine.Fault_spec.t -> beta:int -> k:int -> unit -> result
(** [telemetry] (default the null sink) instruments the run for
    [xmp_sim trace]. *)

val print : result -> unit

val run_and_print_all :
  ?scale:float -> ?faults:Xmp_engine.Fault_spec.t -> unit -> unit
(** The paper's three parameterizations: (β,K) = (4,20), (5,15), (6,10). *)
