(** Figure 6 — fairness on the Figure 3(b) testbed (§4).

    Four XMP flows share one 300 Mbps bottleneck. Flow 1 grows from one to
    three subflows (established at 0, 5 and 15 s), Flow 2 brings up two
    subflows at 20 s, Flows 3 and 4 are single-path (starting at 0 and
    10 s) and both stop at 25 s. With β = 4 every *flow* should hold
    roughly one fair share regardless of its subflow count; with β = 6
    fairness degrades. *)

type result = {
  beta : int;
  bucket_s : float;
  subflow_rates : (string * float array) list;  (** normalized, per subflow *)
  flow_rates : (string * float array) list;  (** summed per flow *)
  jain_flows : float;
      (** Jain index across the four flow totals while all are active
          (the window just after Flow 2 joins) *)
}

val run :
  ?scale:float -> ?seed:int -> ?telemetry:Xmp_telemetry.Sink.t ->
  ?faults:Xmp_engine.Fault_spec.t -> beta:int -> unit -> result
(** [telemetry] (default the null sink) instruments the run for
    [xmp_sim trace]. *)

val print : result -> unit

val run_and_print_all :
  ?scale:float -> ?faults:Xmp_engine.Fault_spec.t -> unit -> unit
