(** The Figure-4 traffic-shifting experiment restaged on a pod-sharded
    k=4 fat tree ({!Xmp_net.Fat_tree_sharded}): Flow 2's two subflows
    leave pod 0 through different aggregation switches, and pod-local
    background flows load first one uplink then the other. Exercises the
    split sender/receiver transport and the core-layer portals; the
    [domains] argument never changes the output bytes. *)

type result = {
  beta : int;
  domains : int;
  bucket_s : float;
  rates : (string * float array) list;
  loaded_share : float;
  recovered_share : float;
  events : int;
  mail : int;
}

val run :
  ?scale:float -> ?seed:int -> ?domains:int -> beta:int -> unit -> result

val print : result -> unit

val run_and_print : ?scale:float -> ?domains:int -> unit -> unit
