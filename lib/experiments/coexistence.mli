(** Table 2 — coexistence of XMP with other schemes (§5.2.2).

    Random pattern on the fat-tree; even-indexed hosts originate XMP-2
    flows, odd-indexed hosts originate the partner scheme, under queue
    sizes of 50 and 100 packets. The paper's findings to reproduce:
    XMP ≈ DCTCP (both ECN-driven), XMP ≫ TCP, XMP > LIA with the gap
    narrowing at the larger queue (deeper buffers help the loss-driven
    schemes). *)

type cell = { xmp_mbps : float; partner_mbps : float }

type result = {
  partner : Xmp_workload.Scheme.t;
  queue_pkts : int;
  cell : cell;
}

val run :
  ?base:Fatree_eval.base ->
  partner:Xmp_workload.Scheme.t ->
  queue_pkts:int ->
  unit ->
  result

val partners : Xmp_workload.Scheme.t list
(** The paper's Table 2 partner column: LIA-2, TCP, DCTCP. *)

val extended_partners : Xmp_workload.Scheme.t list
(** The extension rows: BALIA-2, VENO-2, AMP-2. *)

val print_table2 : ?base:Fatree_eval.base -> unit -> unit

val print_table2_extended : ?base:Fatree_eval.base -> unit -> unit
(** Same layout as {!print_table2} over {!extended_partners}. *)
