module Sim = Xmp_engine.Sim
module Time = Xmp_engine.Time
module Net = Xmp_net
module Mptcp_flow = Xmp_mptcp.Mptcp_flow

type result = {
  beta : int;
  bucket_s : float;
  rates : (string * float array) list;
  shifted_share : float;
  compensation : float;
}

let bottleneck_rate = Net.Units.mbps 300.

let xmp_flow ~net ~beta ~flow ~src ~dst ~paths ?observer () =
  let params = { Xmp_core.Bos.default_params with beta } in
  Mptcp_flow.create ~net ~flow ~src ~dst ~paths
    ~coupling:(Xmp_core.Trash.coupling ~params ())
    ~config:Xmp_core.Xmp.tcp_config ?observer ()

let run ?(scale = 0.2) ?(seed = 11) ?(telemetry = Xmp_telemetry.Sink.null)
    ?(faults = Xmp_engine.Fault_spec.empty) ~beta () =
  let unit_s = 10. *. scale in
  (* paper schedule: bg on DN1 during [10,20) s, bg on DN2 during
     [20,30) s, run ends at 40 s *)
  let horizon_s = 4. *. unit_s in
  let sim =
    Sim.create ~config:{ Sim.default_config with seed; telemetry; faults } ()
  in
  let net = Net.Network.create sim in
  let disc () =
    Net.Queue_disc.create ~policy:(Net.Queue_disc.Threshold_mark 15)
      ~capacity_pkts:100
  in
  (* zero-load RTT 1.8 ms: 2 * (2 * 150 us + 600 us) *)
  let spec =
    { Net.Testbed.rate = bottleneck_rate; delay = Time.us 600; disc }
  in
  let tb =
    Net.Testbed.create ~net ~n_left:5 ~n_right:5 ~bottlenecks:[ spec; spec ]
      ~access_delay:(Time.us 150) ()
  in
  ignore (Xmp_faults.Injector.install ~net ());
  let probe = Probe.create ~sim ~bucket_s:(unit_s /. 20.) ~horizon_s in
  let launch ~flow ~host ~paths ~probe_names =
    let recorders = Array.of_list (List.map (Probe.recorder probe) probe_names) in
    xmp_flow ~net ~beta ~flow
      ~src:(Net.Testbed.left_id tb host)
      ~dst:(Net.Testbed.right_id tb host)
      ~paths
      ~observer:
        {
          Mptcp_flow.silent with
          on_subflow_acked = (fun idx n -> recorders.(idx) n);
        }
      ()
  in
  ignore (launch ~flow:1 ~host:0 ~paths:[ 0 ] ~probe_names:[ "Flow 1" ]);
  ignore
    (launch ~flow:2 ~host:1 ~paths:[ 0; 1 ]
       ~probe_names:[ "Flow 2-1"; "Flow 2-2" ]);
  ignore (launch ~flow:3 ~host:2 ~paths:[ 1 ] ~probe_names:[ "Flow 3" ]);
  (* background flows *)
  let background ~flow ~host ~path ~from_u ~until_u =
    Sim.at sim
      (Time.sec (from_u *. unit_s))
      (fun () ->
        let f =
          xmp_flow ~net ~beta ~flow
            ~src:(Net.Testbed.left_id tb host)
            ~dst:(Net.Testbed.right_id tb host)
            ~paths:[ path ] ()
        in
        Sim.at sim
          (Time.sec (until_u *. unit_s))
          (fun () -> Mptcp_flow.stop f))
  in
  background ~flow:4 ~host:3 ~path:0 ~from_u:1. ~until_u:2.;
  background ~flow:5 ~host:4 ~path:1 ~from_u:2. ~until_u:3.;
  Sim.run ~until:(Time.sec horizon_s) sim;
  let norm = float_of_int bottleneck_rate in
  let rates =
    List.map
      (fun n -> (n, Probe.normalized probe n ~norm_bps:norm))
      [ "Flow 2-1"; "Flow 2-2" ]
  in
  let mean name ~from_u ~until_u =
    Probe.window_mean probe name ~from_s:(from_u *. unit_s)
      ~until_s:(until_u *. unit_s)
    /. norm
  in
  let shifted_share = mean "Flow 2-1" ~from_u:1.3 ~until_u:2. in
  let loaded_total =
    mean "Flow 2-1" ~from_u:1.3 ~until_u:2.
    +. mean "Flow 2-2" ~from_u:1.3 ~until_u:2.
  in
  let unloaded_total =
    mean "Flow 2-1" ~from_u:0.3 ~until_u:1.
    +. mean "Flow 2-2" ~from_u:0.3 ~until_u:1.
  in
  let compensation =
    if unloaded_total > 0. then loaded_total /. unloaded_total else 0.
  in
  {
    beta;
    bucket_s = Probe.bucket_s probe;
    rates;
    shifted_share;
    compensation;
  }

let print r =
  Render.subheading (Printf.sprintf "Figure 4 panel: beta = %d" r.beta);
  Render.series_table ~bucket_s:r.bucket_s ~every:2 r.rates;
  Render.printf
    "Flow 2-1 share while DN1 loaded = %.3f; total-rate retention = %.3f\n"
    r.shifted_share r.compensation

let run_and_print_all ?scale ?faults () =
  Render.heading
    "Figure 4: traffic shifting of Flow 2 (testbed 3a, rates / 300 Mbps)";
  List.iter
    (fun beta -> print (run ?scale ?faults ~beta ()))
    [ 4; 6 ]
