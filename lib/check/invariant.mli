(** Runtime invariant checker.

    Engine, net and transport layers assert structural invariants through
    this module: event dispatch times are monotone, queue occupancy stays
    within bounds, ECN marks only happen above the marking threshold,
    congestion windows never drop below one segment, and per-subflow
    in-flight accounting stays conserved.

    Checks are globally toggled (cheap O(1) predicates; on by default and
    always on under the test suite). A failing check raises {!Violation}
    in the default [Raise] mode, or logs to stderr in [Warn] mode for
    long production runs where a corrupted metric beats a crash. *)

exception Violation of string

type mode =
  | Raise  (** a violated invariant raises {!Violation} (default) *)
  | Warn  (** a violated invariant logs one line to stderr *)

val enabled : unit -> bool

val set_enabled : bool -> unit
(** Global toggle. [Sim.create ?invariants] forwards to this, so a
    simulation opts in or out at construction time. *)

val mode : unit -> mode

val set_mode : mode -> unit

val require : name:string -> bool -> (unit -> string) -> unit
(** [require ~name cond detail] checks [cond] when enabled. The [detail]
    thunk only runs on failure, so call sites pay one branch and no
    formatting on the hot path. *)

val checks_run : unit -> int
(** Checks evaluated since the last {!reset_counters}. Counting is off
    until the first {!reset_counters} arms it — the tally costs a
    domain-local increment per check, which the simulation hot path
    only pays once a caller has shown interest. *)

val violations : unit -> int
(** Violations seen — only observable above zero in [Warn] mode, since
    [Raise] aborts the run. *)

val reset_counters : unit -> unit

val with_enabled : bool -> (unit -> 'a) -> 'a
(** [with_enabled b f] runs [f] with the toggle set to [b], restoring the
    previous state afterwards (exception-safe). *)
