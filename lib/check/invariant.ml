exception Violation of string

type mode = Raise | Warn

(* All four globals are atomics: invariants fire on the hottest dispatch
   paths, and once the simulator shards across OCaml 5 Domains
   (ROADMAP item 3) plain refs here would be data races and would drop
   counts. Atomic.get is a plain load on the flat-footprint runtimes we
   target, so the enabled check stays one branch. *)
let enabled_flag = Atomic.make true
let mode_flag = Atomic.make Raise
let checked_count = Atomic.make 0
let violation_count = Atomic.make 0

let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b
let mode () = Atomic.get mode_flag
let set_mode m = Atomic.set mode_flag m
let checks_run () = Atomic.get checked_count
let violations () = Atomic.get violation_count

let reset_counters () =
  Atomic.set checked_count 0;
  Atomic.set violation_count 0

let fail ~name detail =
  Atomic.incr violation_count;
  let msg = Printf.sprintf "invariant %s violated: %s" name (detail ()) in
  match Atomic.get mode_flag with
  | Raise -> raise (Violation msg)
  | Warn -> Format.eprintf "[invariant] %s@." msg

let require ~name cond detail =
  if Atomic.get enabled_flag then begin
    Atomic.incr checked_count;
    if not cond then fail ~name detail
  end

let with_enabled b f =
  let saved = Atomic.get enabled_flag in
  Atomic.set enabled_flag b;
  Fun.protect ~finally:(fun () -> Atomic.set enabled_flag saved) f
