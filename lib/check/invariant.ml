exception Violation of string

type mode = Raise | Warn

(* The toggles are atomics: invariants fire on the hottest dispatch paths
   and the simulator shards across OCaml 5 Domains, so plain refs here
   would be data races. Atomic.get is a plain load on the flat-footprint
   runtimes we target, so the enabled check stays one branch. *)
let enabled_flag = Atomic.make true
let mode_flag = Atomic.make Raise
let violation_count = Atomic.make 0

(* The checks-run tally is different: it increments on every check, and a
   lock-prefixed RMW per check would dominate the very dispatch paths the
   checks guard. Each domain counts into its own cell (registered once in
   a global list); readers sum the cells. A cell has one writer, so the
   sum is exact once the writing domains are quiescent — which is when
   the test-facing [checks_run] is read. *)
(* xmplint: allow mutable-global — registry of per-domain tally cells;
   each ref has exactly one writing domain, readers sum at quiescence *)
let check_cells = Atomic.make ([] : int ref list)

(* Counting is armed lazily by the first [reset_counters] (the tests that
   assert exact tallies always reset first). Until then the hot path pays
   one predictable-false branch instead of a domain-local increment. *)
let counting = Atomic.make false

let check_cell_key =
  Domain.DLS.new_key (fun () ->
      let cell = ref 0 in
      let rec register () =
        let cur = Atomic.get check_cells in
        if not (Atomic.compare_and_set check_cells cur (cell :: cur)) then
          register ()
      in
      register ();
      cell)

let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b
let mode () = Atomic.get mode_flag
let set_mode m = Atomic.set mode_flag m

let checks_run () =
  List.fold_left (fun acc c -> acc + !c) 0 (Atomic.get check_cells)

let violations () = Atomic.get violation_count

let reset_counters () =
  Atomic.set counting true;
  List.iter (fun c -> c := 0) (Atomic.get check_cells);
  Atomic.set violation_count 0

let fail ~name detail =
  Atomic.incr violation_count;
  let msg = Printf.sprintf "invariant %s violated: %s" name (detail ()) in
  match Atomic.get mode_flag with
  | Raise -> raise (Violation msg)
  | Warn -> Format.eprintf "[invariant] %s@." msg

let require ~name cond detail =
  if Atomic.get enabled_flag then begin
    if Atomic.get counting then incr (Domain.DLS.get check_cell_key);
    if not cond then fail ~name detail
  end

let with_enabled b f =
  let saved = Atomic.get enabled_flag in
  Atomic.set enabled_flag b;
  Fun.protect ~finally:(fun () -> Atomic.set enabled_flag saved) f
