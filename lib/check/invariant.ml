exception Violation of string

type mode = Raise | Warn

let enabled_flag = ref true
let mode_flag = ref Raise
let checked_count = ref 0
let violation_count = ref 0

let enabled () = !enabled_flag
let set_enabled b = enabled_flag := b
let mode () = !mode_flag
let set_mode m = mode_flag := m
let checks_run () = !checked_count
let violations () = !violation_count

let reset_counters () =
  checked_count := 0;
  violation_count := 0

let fail ~name detail =
  violation_count := !violation_count + 1;
  let msg = Printf.sprintf "invariant %s violated: %s" name (detail ()) in
  match !mode_flag with
  | Raise -> raise (Violation msg)
  | Warn -> Format.eprintf "[invariant] %s@." msg

let require ~name cond detail =
  if !enabled_flag then begin
    checked_count := !checked_count + 1;
    if not cond then fail ~name detail
  end

let with_enabled b f =
  let saved = !enabled_flag in
  enabled_flag := b;
  Fun.protect ~finally:(fun () -> enabled_flag := saved) f
