module Sim = Xmp_engine.Sim
module Time = Xmp_engine.Time
module Units = Xmp_net.Units
module Packet = Xmp_net.Packet
module Link = Xmp_net.Link
module Queue_disc = Xmp_net.Queue_disc

let mk_data ?(size_seq = 0) seq =
  ignore size_seq;
  Packet.data ~flow:0 ~subflow:0 ~src:0 ~dst:1 ~path:0 ~seq
    ~ect:true ~cwr:false ~ts:0

let mk_link ?(rate = Units.gbps 1.) ?(delay = Time.us 10) ?(capacity = 10)
    ?(policy = Queue_disc.Droptail) sim =
  let disc = Queue_disc.create ~policy ~capacity_pkts:capacity in
  Link.create ~sim ~id:0 ~name:"test" ~rate ~delay ~disc

let test_delivery_timing () =
  let sim = Sim.create () in
  let link = mk_link sim in
  let arrivals = ref [] in
  Link.set_receiver link (fun p -> arrivals := (Sim.now sim, (Packet.seq p)) :: !arrivals);
  Link.send link (mk_data 1);
  Sim.run sim;
  (* 1500B at 1Gbps = 12us serialization + 10us propagation = 22us *)
  Alcotest.(check (list (pair int int)))
    "arrival time"
    [ (Time.us 22, 1) ]
    !arrivals

let test_serialization_queueing () =
  let sim = Sim.create () in
  let link = mk_link sim in
  let arrivals = ref [] in
  Link.set_receiver link (fun p ->
      arrivals := (Sim.now sim, (Packet.seq p)) :: !arrivals);
  (* two packets sent back to back: second is delayed by serialization of
     the first only (propagation pipelines) *)
  Link.send link (mk_data 1);
  Link.send link (mk_data 2);
  Sim.run sim;
  Alcotest.(check (list (pair int int)))
    "pipelined arrivals"
    [ (Time.us 22, 1); (Time.us 34, 2) ]
    (List.rev !arrivals)

let test_queue_used_when_busy () =
  let sim = Sim.create () in
  let link = mk_link ~capacity:2 sim in
  let count = ref 0 in
  Link.set_receiver link (fun _ -> incr count);
  (* 1 transmitting + 2 queued + 1 dropped *)
  List.iter (fun s -> Link.send link (mk_data s)) [ 1; 2; 3; 4 ];
  Sim.run sim;
  Alcotest.(check int) "three delivered" 3 !count;
  Alcotest.(check int) "one dropped" 1 (Queue_disc.dropped (Link.disc link))

let test_bytes_and_utilization () =
  let sim = Sim.create () in
  let link = mk_link sim in
  Link.set_receiver link (fun _ -> ());
  List.iter (fun s -> Link.send link (mk_data s)) [ 1; 2 ];
  Sim.run sim;
  Alcotest.(check int) "bytes" 3000 (Link.bytes_sent link);
  Alcotest.(check int) "packets" 2 (Link.packets_sent link);
  let util = Link.utilization link ~duration:(Time.us 24) in
  Alcotest.(check (float 1e-6)) "utilization" 1.0 util

let test_link_down () =
  let sim = Sim.create () in
  let link = mk_link sim in
  let count = ref 0 in
  Link.set_receiver link (fun _ -> incr count);
  Link.send link (mk_data 1);
  Link.send link (mk_data 2);
  Link.send link (mk_data 3);
  (* take the link down mid-transmission: queued packets are discarded and
     the in-flight one is not delivered *)
  Sim.at sim (Time.us 1) (fun () -> Link.set_up link false);
  Sim.run sim;
  Alcotest.(check int) "nothing delivered" 0 !count;
  Alcotest.(check bool) "down" false (Link.is_up link);
  (* sends while down are dropped silently *)
  Link.send link (mk_data 4);
  Sim.run sim;
  Alcotest.(check int) "still nothing" 0 !count;
  (* bring it back *)
  Link.set_up link true;
  Link.send link (mk_data 5);
  Sim.run sim;
  Alcotest.(check int) "recovers" 1 !count

let test_marking_on_busy_link () =
  let sim = Sim.create () in
  let link = mk_link ~policy:(Queue_disc.Threshold_mark 1) ~capacity:10 sim in
  let ce_seen = ref 0 in
  Link.set_receiver link (fun p -> if (Packet.ce p) then incr ce_seen);
  for s = 1 to 5 do
    Link.send link (mk_data s)
  done;
  Sim.run sim;
  (* packet 1 transmits immediately; 2 arrives to queue len 0; 3 to len 1
     (not > 1); 4 to len 2 (mark); 5 to len 3 (mark) *)
  Alcotest.(check int) "CE-marked deliveries" 2 !ce_seen

let test_receiver_required () =
  let sim = Sim.create () in
  let link = mk_link sim in
  Link.send link (mk_data 1);
  Alcotest.check_raises "no receiver" (Failure "Link: receiver not attached")
    (fun () -> Sim.run sim)

let suite =
  [
    Alcotest.test_case "delivery timing" `Quick test_delivery_timing;
    Alcotest.test_case "serialization pipelining" `Quick
      test_serialization_queueing;
    Alcotest.test_case "queue when busy" `Quick test_queue_used_when_busy;
    Alcotest.test_case "bytes and utilization" `Quick
      test_bytes_and_utilization;
    Alcotest.test_case "link down" `Quick test_link_down;
    Alcotest.test_case "marking behind busy link" `Quick
      test_marking_on_busy_link;
    Alcotest.test_case "receiver required" `Quick test_receiver_required;
  ]
