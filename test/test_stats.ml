module Running = Xmp_stats.Running
module Distribution = Xmp_stats.Distribution
module Timeseries = Xmp_stats.Timeseries
module Table = Xmp_stats.Table
module Fairness = Xmp_stats.Fairness

let checkf = Alcotest.(check (float 1e-6))

(* ----- Running ----- *)

let test_running_basics () =
  let r = Running.create () in
  Alcotest.(check int) "empty count" 0 (Running.count r);
  checkf "empty mean" 0. (Running.mean r);
  List.iter (Running.add r) [ 1.; 2.; 3.; 4. ];
  Alcotest.(check int) "count" 4 (Running.count r);
  checkf "mean" 2.5 (Running.mean r);
  checkf "variance" 1.25 (Running.variance r);
  checkf "min" 1. (Running.min r);
  checkf "max" 4. (Running.max r);
  checkf "total" 10. (Running.total r)

let test_running_merge () =
  let a = Running.create () and b = Running.create () in
  List.iter (Running.add a) [ 1.; 2. ];
  List.iter (Running.add b) [ 3.; 4.; 5. ];
  let m = Running.merge a b in
  Alcotest.(check int) "merged count" 5 (Running.count m);
  checkf "merged mean" 3. (Running.mean m);
  checkf "merged variance" 2. (Running.variance m);
  checkf "merged min" 1. (Running.min m);
  checkf "merged max" 5. (Running.max m)

let test_running_merge_empty () =
  let a = Running.create () and b = Running.create () in
  Running.add b 7.;
  let m = Running.merge a b in
  checkf "merge with empty" 7. (Running.mean m);
  Alcotest.(check int) "count" 1 (Running.count m)

let prop_welford_matches_direct =
  QCheck.Test.make ~count:200 ~name:"welford mean/var match direct formulas"
    QCheck.(list_of_size (Gen.int_range 1 50) (float_range 0. 1000.))
    (fun xs ->
      let r = Running.create () in
      List.iter (Running.add r) xs;
      let n = float_of_int (List.length xs) in
      let mean = List.fold_left ( +. ) 0. xs /. n in
      let var =
        List.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.)) 0. xs /. n
      in
      Float.abs (Running.mean r -. mean) < 1e-6
      && Float.abs (Running.variance r -. var) < 1e-4)

(* ----- Distribution ----- *)

let test_distribution_percentiles () =
  let d = Distribution.create () in
  Distribution.add_list d [ 5.; 1.; 3.; 2.; 4. ];
  checkf "min" 1. (Distribution.percentile d 0.);
  checkf "median" 3. (Distribution.percentile d 50.);
  checkf "max" 5. (Distribution.percentile d 100.);
  checkf "interpolated p25" 2. (Distribution.percentile d 25.);
  checkf "interpolated p12.5" 1.5 (Distribution.percentile d 12.5)

let test_distribution_five_number () =
  let d = Distribution.create () in
  for i = 1 to 100 do
    Distribution.add d (float_of_int i)
  done;
  let mn, p10, p50, p90, mx = Distribution.five_number d in
  checkf "min" 1. mn;
  checkf "max" 100. mx;
  Alcotest.(check bool) "p10 near 10" true (Float.abs (p10 -. 10.9) < 0.2);
  Alcotest.(check bool) "p50 near 50" true (Float.abs (p50 -. 50.5) < 0.2);
  Alcotest.(check bool) "p90 near 90" true (Float.abs (p90 -. 90.1) < 0.2)

let test_distribution_errors () =
  let d = Distribution.create () in
  Alcotest.(check bool) "empty" true (Distribution.is_empty d);
  Alcotest.check_raises "percentile on empty"
    (Invalid_argument "Distribution.percentile: empty") (fun () ->
      ignore (Distribution.percentile d 50.));
  Distribution.add d 1.;
  Alcotest.check_raises "percentile range"
    (Invalid_argument "Distribution.percentile: range") (fun () ->
      ignore (Distribution.percentile d 101.))

let test_distribution_cdf () =
  let d = Distribution.create () in
  Distribution.add_list d [ 1.; 2.; 3.; 4. ];
  let pts = Distribution.cdf_points d 4 in
  Alcotest.(check int) "points" 4 (List.length pts);
  Alcotest.(check bool)
    "values match quartiles" true
    (List.map fst pts = [ 1.; 2.; 3.; 4. ]);
  Alcotest.(check bool)
    "probabilities" true
    (List.map snd pts = [ 0.25; 0.5; 0.75; 1. ])

let test_fraction_above () =
  let d = Distribution.create () in
  Distribution.add_list d [ 1.; 2.; 3.; 4. ];
  checkf "half above 2" 0.5 (Distribution.fraction_above d 2.);
  checkf "none above 4" 0. (Distribution.fraction_above d 4.);
  checkf "all above 0" 1. (Distribution.fraction_above d 0.)

let test_add_after_sort () =
  (* sorting then adding must not lose or misplace samples *)
  let d = Distribution.create () in
  Distribution.add_list d [ 3.; 1. ];
  checkf "median of two" 2. (Distribution.percentile d 50.);
  Distribution.add d 2.;
  checkf "median of three" 2. (Distribution.percentile d 50.);
  Alcotest.(check int) "count" 3 (Distribution.count d)

(* Reference for the in-place ensure_sorted rewrite: a shadow
   copy-based implementation (sort a fresh copy of the live samples on
   every read, like the pre-rewrite code did) driven by the same
   interleaved add/percentile schedule must agree exactly. *)
let prop_inplace_sort_matches_copy =
  QCheck.Test.make ~count:200
    ~name:"interleaved add/percentile match copy-based sort"
    QCheck.(
      list_of_size (Gen.int_range 1 120)
        (pair (float_range (-500.) 500.) (float_range 0. 100.)))
    (fun ops ->
      let d = Distribution.create () in
      let shadow = ref [] in
      let copy_percentile p =
        let a = Array.of_list !shadow in
        Array.sort Float.compare a;
        let n = Array.length a in
        let rank = p /. 100. *. float_of_int (n - 1) in
        let lo = int_of_float (Float.floor rank) in
        let hi = Stdlib.min (lo + 1) (n - 1) in
        let frac = rank -. float_of_int lo in
        a.(lo) +. (frac *. (a.(hi) -. a.(lo)))
      in
      List.for_all
        (fun (x, p) ->
          (* each step: add a sample (forces a re-sort next read), then
             query an arbitrary percentile against the shadow *)
          Distribution.add d x;
          shadow := x :: !shadow;
          let got = Distribution.percentile d p in
          let want = copy_percentile p in
          Float.abs (got -. want) <= 1e-9 *. (1. +. Float.abs want))
        ops)

let test_inplace_sort_duplicates_and_specials () =
  (* heapsort path: duplicates, negatives and infinities must order the
     same as Array.sort Float.compare, across repeated re-sorts *)
  let d = Distribution.create () in
  let xs = [ 3.; 3.; neg_infinity; 0.; -0.; 7.5; infinity; 3.; -2. ] in
  List.iter
    (fun x ->
      Distribution.add d x;
      ignore (Distribution.percentile d 50.))
    xs;
  let sorted = Distribution.values d in
  let expect = Array.of_list xs in
  Array.sort Float.compare expect;
  Alcotest.(check bool) "matches Array.sort" true (sorted = expect)

let prop_percentile_monotone =
  QCheck.Test.make ~count:100 ~name:"percentiles are monotone in p"
    QCheck.(list_of_size (Gen.int_range 2 40) (float_range 0. 100.))
    (fun xs ->
      let d = Distribution.create () in
      Distribution.add_list d xs;
      let ps = [ 0.; 10.; 25.; 50.; 75.; 90.; 100. ] in
      let vals = List.map (Distribution.percentile d) ps in
      let rec increasing = function
        | a :: (b :: _ as rest) -> a <= b +. 1e-9 && increasing rest
        | _ -> true
      in
      increasing vals)

(* ----- Timeseries ----- *)

let test_timeseries () =
  let ts = Timeseries.create ~bucket:0.1 ~horizon:1.0 in
  Alcotest.(check int) "buckets" 10 (Timeseries.n_buckets ts);
  Timeseries.record ts ~time_s:0.05 10.;
  Timeseries.record ts ~time_s:0.09 5.;
  Timeseries.record ts ~time_s:0.95 2.;
  Timeseries.record ts ~time_s:1.5 99.;
  (* dropped *)
  Timeseries.record ts ~time_s:(-0.1) 99.;
  (* dropped *)
  let sums = Timeseries.sums ts in
  checkf "bucket 0" 15. sums.(0);
  checkf "bucket 9" 2. sums.(9);
  checkf "rates divide by width" 150. (Timeseries.rates ts).(0);
  checkf "bucket start" 0.9 (Timeseries.bucket_start ts 9)

let test_timeseries_validation () =
  let raises msg f =
    match f () with
    | (_ : Timeseries.t) -> Alcotest.failf "%s: expected Invalid_argument" msg
    | exception Invalid_argument _ -> ()
  in
  raises "zero bucket" (fun () -> Timeseries.create ~bucket:0. ~horizon:1.);
  raises "negative bucket" (fun () ->
      Timeseries.create ~bucket:(-0.1) ~horizon:1.);
  raises "nan bucket" (fun () ->
      Timeseries.create ~bucket:Float.nan ~horizon:1.);
  raises "horizon below bucket" (fun () ->
      Timeseries.create ~bucket:0.5 ~horizon:0.1);
  raises "nan horizon" (fun () ->
      Timeseries.create ~bucket:0.1 ~horizon:Float.nan);
  (* horizon = bucket is the smallest legal series: one bucket *)
  let ts = Timeseries.create ~bucket:0.5 ~horizon:0.5 in
  Alcotest.(check int) "one bucket" 1 (Timeseries.n_buckets ts)

(* ----- Table ----- *)

let test_table_render () =
  let s =
    Table.render ~header:[ "name"; "v" ]
      ~rows:[ [ "a"; "1" ]; [ "bb"; "22" ] ]
      ()
  in
  Alcotest.(check bool) "has header" true
    (String.length s > 0 && String.sub s 0 4 = "name");
  (* all lines equal width structure: 4 lines *)
  Alcotest.(check int) "line count" 4
    (List.length (String.split_on_char '\n' (String.trim s)))

let test_table_ragged_rows () =
  let s = Table.render ~header:[ "a" ] ~rows:[ [ "x"; "y"; "z" ] ] () in
  Alcotest.(check bool) "pads header" true (String.length s > 0)

let test_fixed () =
  Alcotest.(check string) "fixed" "1.50" (Table.fixed 2 1.5);
  Alcotest.(check string) "nan" "--" (Table.fixed 2 Float.nan)

(* ----- Fairness ----- *)

let test_jain () =
  checkf "equal shares" 1. (Fairness.jain [ 5.; 5.; 5.; 5. ]);
  checkf "one hog" 0.25 (Fairness.jain [ 1.; 0.; 0.; 0. ]);
  checkf "empty" 1. (Fairness.jain []);
  checkf "all zero" 1. (Fairness.jain [ 0.; 0. ])

let test_max_min () =
  checkf "equal" 1. (Fairness.max_min_ratio [ 2.; 2. ]);
  checkf "half" 0.5 (Fairness.max_min_ratio [ 1.; 2. ]);
  checkf "empty" 1. (Fairness.max_min_ratio [])

let prop_jain_bounds =
  QCheck.Test.make ~count:200 ~name:"jain index in [1/n, 1]"
    QCheck.(list_of_size (Gen.int_range 1 20) (float_range 0.001 100.))
    (fun xs ->
      let j = Fairness.jain xs in
      j <= 1. +. 1e-9 && j >= (1. /. float_of_int (List.length xs)) -. 1e-9)

let suite =
  [
    Alcotest.test_case "running basics" `Quick test_running_basics;
    Alcotest.test_case "running merge" `Quick test_running_merge;
    Alcotest.test_case "running merge empty" `Quick test_running_merge_empty;
    QCheck_alcotest.to_alcotest prop_welford_matches_direct;
    Alcotest.test_case "distribution percentiles" `Quick
      test_distribution_percentiles;
    Alcotest.test_case "five-number summary" `Quick
      test_distribution_five_number;
    Alcotest.test_case "distribution errors" `Quick test_distribution_errors;
    Alcotest.test_case "cdf points" `Quick test_distribution_cdf;
    Alcotest.test_case "fraction above" `Quick test_fraction_above;
    Alcotest.test_case "add after sort" `Quick test_add_after_sort;
    QCheck_alcotest.to_alcotest prop_inplace_sort_matches_copy;
    Alcotest.test_case "in-place sort handles duplicates/specials" `Quick
      test_inplace_sort_duplicates_and_specials;
    QCheck_alcotest.to_alcotest prop_percentile_monotone;
    Alcotest.test_case "timeseries buckets" `Quick test_timeseries;
    Alcotest.test_case "timeseries validation" `Quick
      test_timeseries_validation;
    Alcotest.test_case "table render" `Quick test_table_render;
    Alcotest.test_case "table ragged rows" `Quick test_table_ragged_rows;
    Alcotest.test_case "fixed formatting" `Quick test_fixed;
    Alcotest.test_case "jain index" `Quick test_jain;
    Alcotest.test_case "max-min ratio" `Quick test_max_min;
    QCheck_alcotest.to_alcotest prop_jain_bounds;
  ]
