module Xmp = Xmp_core.Xmp
module Params = Xmp_core.Params
module Tcp = Xmp_transport.Tcp
module Queue_disc = Xmp_net.Queue_disc
module Sim = Xmp_engine.Sim
module Time = Xmp_engine.Time

let test_switch_disc () =
  let make = Xmp.switch_disc ~params:(Params.make ~beta:4 ~k:7) ~queue_pkts:50 () in
  let d = make in
  let disc = d () in
  Alcotest.(check int) "capacity" 50 (Queue_disc.capacity disc);
  Alcotest.(check bool) "policy is threshold at K" true
    (Queue_disc.policy disc = Queue_disc.Threshold_mark 7);
  (* the factory makes independent queues *)
  let disc2 = d () in
  ignore
    (Queue_disc.enqueue disc
       (Xmp_net.Packet.data ~flow:0 ~subflow:0 ~src:0 ~dst:1 ~path:0
          ~seq:0 ~ect:true ~cwr:false ~ts:0));
  Alcotest.(check int) "independent state" 0 (Queue_disc.length disc2);
  Alcotest.(check int) "first has the packet" 1 (Queue_disc.length disc)

let test_configs () =
  Alcotest.(check bool) "xmp config is ECT" true Xmp.tcp_config.Tcp.ect;
  Alcotest.(check bool) "xmp echo capped at 3" true
    (Xmp.tcp_config.Tcp.echo = Tcp.Counted (Some 3));
  Alcotest.(check bool) "dctcp echo exact" true
    (Xmp.dctcp_tcp_config.Tcp.echo = Tcp.Counted None);
  Alcotest.(check bool) "plain not ECT" false Xmp.plain_tcp_config.Tcp.ect;
  Alcotest.(check int) "paper RTOmin" (Time.ms 200)
    Xmp.tcp_config.Tcp.rto_min

let test_bos_params () =
  let p = Xmp.bos_params (Params.make ~beta:6 ~k:15) in
  Alcotest.(check int) "beta carried over" 6 p.Xmp_core.Bos.beta;
  Alcotest.(check (float 1e-9)) "floor stays 2" 2. p.Xmp_core.Bos.min_cwnd

let test_facade_flow_runs () =
  let sim = Sim.create ~config:{ Sim.default_config with seed = 2 } () in
  let net = Xmp_net.Network.create sim in
  let disc = Xmp.switch_disc () in
  let tb =
    Xmp_net.Testbed.create ~net ~n_left:1 ~n_right:1
      ~bottlenecks:
        [
          {
            Xmp_net.Testbed.rate = Xmp_net.Units.mbps 100.;
            delay = Time.us 50;
            disc;
          };
        ]
      ()
  in
  let completed = ref false in
  ignore
    (Xmp.flow ~net ~flow:1
       ~src:(Xmp_net.Testbed.left_id tb 0)
       ~dst:(Xmp_net.Testbed.right_id tb 0)
       ~paths:[ 0 ] ~size_segments:100
       ~observer:
         {
           Xmp_mptcp.Mptcp_flow.silent with
           on_complete = (fun _ -> completed := true);
         }
       ());
  Sim.run ~until:(Time.sec 1.) sim;
  Alcotest.(check bool) "facade flow completes" true !completed

let test_facade_bos_is_cc_factory () =
  (* the single-path BOS factory is usable directly with Tcp *)
  let sim = Sim.create ~config:{ Sim.default_config with seed = 2 } () in
  let net = Xmp_net.Network.create sim in
  let disc = Xmp.switch_disc () in
  let tb =
    Xmp_net.Testbed.create ~net ~n_left:1 ~n_right:1
      ~bottlenecks:
        [
          {
            Xmp_net.Testbed.rate = Xmp_net.Units.mbps 100.;
            delay = Time.us 50;
            disc;
          };
        ]
      ()
  in
  let conn =
    Tcp.create ~net ~flow:1 ~subflow:0
      ~src:(Xmp_net.Testbed.left_id tb 0)
      ~dst:(Xmp_net.Testbed.right_id tb 0)
      ~path:0 ~cc:(Xmp.bos ()) ~config:Xmp.tcp_config ()
  in
  Sim.run ~until:(Time.ms 100) sim;
  Alcotest.(check string) "cc name" "bos" (Tcp.cc_name conn);
  Alcotest.(check bool) "progressing" true (Tcp.segments_acked conn > 100)

let suite =
  [
    Alcotest.test_case "switch_disc factory" `Quick test_switch_disc;
    Alcotest.test_case "transport configs" `Quick test_configs;
    Alcotest.test_case "bos params" `Quick test_bos_params;
    Alcotest.test_case "facade flow" `Quick test_facade_flow_runs;
    Alcotest.test_case "facade bos factory" `Quick
      test_facade_bos_is_cc_factory;
  ]
