module Q = Xmp_engine.Event_queue

let test_empty () =
  let q = Q.create () in
  Alcotest.(check bool) "empty" true (Q.is_empty q);
  Alcotest.(check int) "length" 0 (Q.length q);
  Alcotest.(check bool) "pop none" true (Q.pop q = None);
  Alcotest.(check bool) "peek none" true (Q.peek_time q = None)

let test_ordering () =
  let q = Q.create () in
  Q.add q ~time:30 ~seq:0 "c";
  Q.add q ~time:10 ~seq:1 "a";
  Q.add q ~time:20 ~seq:2 "b";
  let pop () =
    match Q.pop q with Some (_, _, v) -> v | None -> Alcotest.fail "empty"
  in
  Alcotest.(check string) "first" "a" (pop ());
  Alcotest.(check string) "second" "b" (pop ());
  Alcotest.(check string) "third" "c" (pop ())

let test_fifo_ties () =
  let q = Q.create () in
  for i = 0 to 9 do
    Q.add q ~time:5 ~seq:i i
  done;
  for i = 0 to 9 do
    match Q.pop q with
    | Some (_, seq, v) ->
      Alcotest.(check int) "seq order" i seq;
      Alcotest.(check int) "payload order" i v
    | None -> Alcotest.fail "queue exhausted early"
  done

let test_growth () =
  let q = Q.create () in
  let n = 10_000 in
  for i = n downto 1 do
    Q.add q ~time:i ~seq:(n - i) i
  done;
  Alcotest.(check int) "length" n (Q.length q);
  let prev = ref min_int in
  for _ = 1 to n do
    match Q.pop q with
    | Some (t, _, _) ->
      Alcotest.(check bool) "non-decreasing" true (t >= !prev);
      prev := t
    | None -> Alcotest.fail "exhausted"
  done;
  Alcotest.(check bool) "drained" true (Q.is_empty q)

let test_peek () =
  let q = Q.create () in
  Q.add q ~time:42 ~seq:0 ();
  Alcotest.(check bool) "peek" true (Q.peek_time q = Some 42);
  Alcotest.(check int) "peek does not pop" 1 (Q.length q)

let test_clear () =
  let q = Q.create () in
  Q.add q ~time:1 ~seq:0 ();
  Q.add q ~time:2 ~seq:1 ();
  Q.clear q;
  Alcotest.(check bool) "cleared" true (Q.is_empty q);
  Q.add q ~time:3 ~seq:2 ();
  Alcotest.(check bool) "usable after clear" true (Q.peek_time q = Some 3)

(* ----- lazy-deletion / heap-hygiene ----- *)

type cell = { value : int; mutable alive : bool }

let test_cancel_heavy_bounded () =
  (* N adds, N-1 cancels, repeated: without compaction the heap holds
     every dead entry until its fire time (O(total cancels)); with
     lazy deletion it must stay O(live). *)
  let q = Q.create ~live:(fun c -> c.alive) () in
  let seq = ref 0 in
  let rounds = 50 and n = 200 in
  let max_len = ref 0 in
  for r = 0 to rounds - 1 do
    let cells =
      List.init n (fun i ->
          let c = { value = (r * n) + i; alive = true } in
          Q.add q ~time:(1_000_000 + c.value) ~seq:!seq c;
          incr seq;
          c)
    in
    List.iteri
      (fun i c ->
        if i < n - 1 then begin
          c.alive <- false;
          Q.note_dead q
        end)
      cells;
    if Q.length q > !max_len then max_len := Q.length q
  done;
  let live = rounds in
  Alcotest.(check bool)
    (Printf.sprintf "length %d bounded by O(live=%d)" (Q.length q) live)
    true
    (Q.length q <= (2 * live) + n);
  Alcotest.(check bool) "compactions happened" true (Q.rebuilds q > 0);
  Alcotest.(check bool)
    "dead entries bounded after compaction" true
    (Q.dead_count q <= (Q.length q / 2) + 1)

let test_cancel_pop_order_vs_reference () =
  (* Interleaved adds and cancels, driven by a seeded PRNG: the live
     survivors must pop in exactly the order a naive sorted list gives. *)
  let rng = Random.State.make [| 0xBEEF |] in
  let q = Q.create ~live:(fun c -> c.alive) () in
  let reference = ref [] in
  let pending = ref [] in
  for seq = 0 to 2_000 - 1 do
    let time = Random.State.int rng 500 in
    let c = { value = seq; alive = true } in
    Q.add q ~time ~seq c;
    reference := (time, seq, c) :: !reference;
    pending := c :: !pending;
    (* cancel a random earlier survivor about half the time *)
    if Random.State.bool rng then begin
      let candidates = List.filter (fun c -> c.alive) !pending in
      match candidates with
      | [] -> ()
      | _ ->
        let victim =
          List.nth candidates (Random.State.int rng (List.length candidates))
        in
        victim.alive <- false;
        Q.note_dead q
    end
  done;
  let expected =
    List.sort compare
      (List.filter_map
         (fun (t, s, c) -> if c.alive then Some (t, s) else None)
         !reference)
  in
  let rec drain acc =
    match Q.pop q with
    | Some (t, s, c) -> drain (if c.alive then (t, s) :: acc else acc)
    | None -> List.rev acc
  in
  let popped = drain [] in
  Alcotest.(check bool)
    (Printf.sprintf "pop order matches reference (%d live survivors)"
       (List.length expected))
    true (popped = expected)

let test_compact_shrinks () =
  let q = Q.create ~live:(fun c -> c.alive) () in
  let cells =
    List.init 10_000 (fun i ->
        let c = { value = i; alive = true } in
        Q.add q ~time:i ~seq:i c;
        c)
  in
  List.iteri
    (fun i c ->
      if i > 0 then begin
        c.alive <- false;
        Q.note_dead q
      end)
    cells;
  Q.compact q;
  Alcotest.(check int) "only the live entry remains" 1 (Q.length q);
  Alcotest.(check int) "no dead entries" 0 (Q.dead_count q);
  match Q.pop q with
  | Some (0, 0, c) -> Alcotest.(check int) "survivor payload" 0 c.value
  | _ -> Alcotest.fail "expected the one live entry"

(* End-to-end heap hygiene: a real TCP transfer reschedules its RTO
   watchdog and delayed-ACK timers continuously; the superseded timers
   are cancelled, and lazy deletion must keep the pending-event count at
   the scale of packets in flight — not of total reschedules. *)
let test_tcp_transfer_pending_bounded () =
  let module Sim = Xmp_engine.Sim in
  let module Time = Xmp_engine.Time in
  let module Net = Xmp_net in
  let module Tcp = Xmp_transport.Tcp in
  let module Testbed = Xmp_net.Testbed in
  let sim = Sim.create ~config:{ Sim.default_config with seed = 11 } () in
  let net = Net.Network.create sim in
  let disc () =
    Net.Queue_disc.create ~policy:Net.Queue_disc.Droptail ~capacity_pkts:100
  in
  let tb =
    Testbed.create ~net ~n_left:1 ~n_right:1
      ~bottlenecks:
        [ { Testbed.rate = Net.Units.mbps 100.; delay = Time.us 50; disc } ]
      ~access_delay:(Time.us 10) ()
  in
  let conn =
    Tcp.create ~net ~flow:1 ~subflow:0 ~src:(Testbed.left_id tb 0)
      ~dst:(Testbed.right_id tb 0) ~path:0
      ~cc:(fun view -> Xmp_transport.Reno.make view)
      ~source:(Tcp.Limited (ref 5_000))
      ()
  in
  Sim.run ~until:(Time.sec 10.) sim;
  Alcotest.(check bool) "transfer completed" true (Tcp.is_complete conn);
  let st = Sim.stats sim in
  (* in-flight data is capped by the 100-packet bottleneck queue; every
     pending event is tied to a packet in flight or a live timer, so the
     peak must sit at O(window), far below the 5000 segments moved *)
  Alcotest.(check bool)
    (Printf.sprintf "heap peak %d is O(live timers), not O(reschedules)"
       st.Sim.heap_peak)
    true (st.Sim.heap_peak < 600);
  Alcotest.(check int) "no events left pending" 0 (Sim.pending sim)

let prop_heap_sorts =
  QCheck.Test.make ~count:200 ~name:"heap pops in (time, seq) order"
    QCheck.(list (int_bound 1000))
    (fun times ->
      let q = Q.create () in
      List.iteri (fun i t -> Q.add q ~time:t ~seq:i t) times;
      let rec drain acc =
        match Q.pop q with
        | Some (t, s, _) -> drain ((t, s) :: acc)
        | None -> List.rev acc
      in
      let popped = drain [] in
      let sorted = List.sort compare popped in
      popped = sorted && List.length popped = List.length times)

let suite =
  [
    Alcotest.test_case "empty queue" `Quick test_empty;
    Alcotest.test_case "time ordering" `Quick test_ordering;
    Alcotest.test_case "FIFO on equal times" `Quick test_fifo_ties;
    Alcotest.test_case "growth to 10k" `Quick test_growth;
    Alcotest.test_case "peek" `Quick test_peek;
    Alcotest.test_case "clear" `Quick test_clear;
    Alcotest.test_case "cancel-heavy workload stays O(live)" `Quick
      test_cancel_heavy_bounded;
    Alcotest.test_case "cancellation preserves pop order" `Quick
      test_cancel_pop_order_vs_reference;
    Alcotest.test_case "explicit compact reclaims dead entries" `Quick
      test_compact_shrinks;
    Alcotest.test_case "TCP transfer keeps pending events bounded" `Quick
      test_tcp_transfer_pending_bounded;
    QCheck_alcotest.to_alcotest prop_heap_sorts;
  ]
