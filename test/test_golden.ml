(* Golden-output regression: the rendered output of fig1/fig4/fig6/fig7
   at --quick scale, digested and compared against checked-in digests.
   Because every simulation is deterministic, any digest drift means an
   (intended or unintended) behavior change somewhere in the
   engine/transport/mptcp/core stack.

   Regenerating after an intended change is one command:

     dune exec test/golden_gen.exe > test/golden.expected *)

module Runner = Xmp_runner.Runner
module Scenario = Xmp_runner.Scenario
module Scenarios = Xmp_experiments.Scenarios

(* dune runtest runs in test/; dune exec test/test_main.exe in the root *)
let expected_file =
  if Sys.file_exists "golden.expected" then "golden.expected"
  else "test/golden.expected"

let regen_hint =
  "if this output change is intended, regenerate with: dune exec \
   test/golden_gen.exe > test/golden.expected"

let parse_expected () =
  let ic = open_in expected_file in
  let rec loop acc =
    match input_line ic with
    | exception End_of_file ->
      close_in ic;
      List.rev acc
    | line -> (
      let line = String.trim line in
      if line = "" || line.[0] = '#' then loop acc
      else
        match String.split_on_char ' ' line with
        | [ name; digest ] -> loop ((name, digest) :: acc)
        | _ -> Alcotest.failf "malformed golden line: %S" line)
  in
  loop []

let output_digest sc =
  Digest.to_hex (Digest.string (Runner.capture sc.Scenario.run))

let test_golden_digests () =
  let expected = parse_expected () in
  let golden = Scenarios.golden () in
  List.iter
    (fun sc ->
      let name = sc.Scenario.name in
      match List.assoc_opt name expected with
      | None ->
        Alcotest.failf "no golden digest checked in for %s (%s)" name
          regen_hint
      | Some want ->
        Alcotest.(check string)
          (Printf.sprintf "%s golden output digest (%s)" name regen_hint)
          want (output_digest sc))
    golden;
  (* and nothing stale the other way around *)
  List.iter
    (fun (name, _) ->
      if
        not
          (List.exists (fun sc -> String.equal sc.Scenario.name name) golden)
      then
        Alcotest.failf "golden.expected lists unknown scenario %s (%s)" name
          regen_hint)
    expected

let suite =
  [
    Alcotest.test_case "fig1/fig4/fig6/fig7 quick-scale output digests"
      `Quick test_golden_digests;
  ]
