(* Fault-injection subsystem: spec grammar, injector effects, telemetry
   events and determinism across runs and runner widths. *)

module Sim = Xmp_engine.Sim
module Time = Xmp_engine.Time
module Fault_spec = Xmp_engine.Fault_spec
module Net = Xmp_net
module Testbed = Xmp_net.Testbed
module Fat_tree = Xmp_net.Fat_tree
module Injector = Xmp_faults.Injector
module Tcp = Xmp_transport.Tcp
module Reno = Xmp_transport.Reno
module Tel = Xmp_telemetry
module Runner = Xmp_runner.Runner
module Scenarios = Xmp_experiments.Scenarios

let check_invalid_arg name f =
  match f () with
  | () -> Alcotest.failf "%s: expected Invalid_argument" name
  | exception Invalid_argument _ -> ()

(* ----- spec grammar ----- *)

let sample_specs =
  [
    Fault_spec.Link_down { target = Fault_spec.Link "IN1->OUT1"; at = Time.ms 5 };
    Fault_spec.Link_up { target = Fault_spec.All_links; at = Time.sec 1. };
    Fault_spec.Loss
      {
        target = Fault_spec.Tag "rack";
        window = Fault_spec.always;
        model = Fault_spec.Bernoulli 0.01;
        filter = Fault_spec.Any_packet;
      };
    Fault_spec.Loss
      {
        target = Fault_spec.Link "a->b";
        window = Fault_spec.window ~from_ns:(Time.ms 1) ~until_ns:(Time.ms 2);
        model =
          Fault_spec.Gilbert_elliott
            { enter_bad = 0.05; exit_bad = 0.2; loss_good = 0.; loss_bad = 0.5 };
        filter = Fault_spec.Ack_only;
      };
    Fault_spec.Blackout
      {
        target = Fault_spec.Tag "bottleneck";
        window = Fault_spec.window ~from_ns:Time.zero ~until_ns:(Time.us 250);
      };
    Fault_spec.Host_pause
      {
        host = 3;
        window = Fault_spec.window ~from_ns:(Time.ms 1) ~until_ns:(Time.ms 3);
      };
  ]

let test_spec_round_trip () =
  List.iter
    (fun spec ->
      let s = Fault_spec.spec_to_string spec in
      Alcotest.(check string)
        (Printf.sprintf "round-trip %s" s)
        s
        (Fault_spec.spec_to_string (Fault_spec.spec_of_string s)))
    sample_specs

let test_spec_human_times () =
  List.iter
    (fun (human, canonical) ->
      Alcotest.(check string) human canonical
        (Fault_spec.spec_to_string (Fault_spec.spec_of_string human)))
    [
      ("down@1.5s@link=X", "down@1500000000@link=X");
      ("up@250ms@all", "up@250000000@all");
      ("loss@0..inf@tag=rack@bern=0.01", "loss@0..inf@tag=rack@bern=0.01@any");
      ("blackout@40us..2ms@link=a->b", "blackout@40000..2000000@link=a->b");
      ("pause@1ms..inf@host=7", "pause@1000000..inf@host=7");
    ]

let test_spec_rejects_garbage () =
  List.iter
    (fun s ->
      check_invalid_arg s (fun () -> ignore (Fault_spec.spec_of_string s)))
    [
      "nonsense"; "down@link=X"; "loss@0..inf@link=X@bern=oops";
      "pause@1ms..2ms@link=X";
    ]

let test_validation () =
  let bad name spec =
    check_invalid_arg name (fun () -> ignore (Fault_spec.create [ spec ]))
  in
  bad "probability out of range"
    (Fault_spec.Loss
       {
         target = Fault_spec.All_links;
         window = Fault_spec.always;
         model = Fault_spec.Bernoulli 1.5;
         filter = Fault_spec.Any_packet;
       });
  bad "empty link name"
    (Fault_spec.Link_down { target = Fault_spec.Link ""; at = Time.zero });
  bad "inverted window"
    (Fault_spec.Blackout
       {
         target = Fault_spec.All_links;
         window = { Fault_spec.from_ns = Time.ms 2; until_ns = Time.ms 1 };
       });
  bad "negative host"
    (Fault_spec.Host_pause { host = -1; window = Fault_spec.always })

let test_to_params () =
  Alcotest.(check (list (pair string string)))
    "empty schedule has no params" []
    (Fault_spec.to_params Fault_spec.empty);
  let t =
    Fault_spec.create ~seed:9
      [ Fault_spec.Link_down { target = Fault_spec.Link "x->y"; at = Time.ms 1 } ]
  in
  Alcotest.(check (list (pair string string)))
    "seed + one spec"
    [ ("faults.seed", "9"); ("faults.0", "down@1000000@link=x->y") ]
    (Fault_spec.to_params t)

(* ----- injector over a testbed ----- *)

let make_rig ?(sack = true) ?(seed = 47) ?telemetry ~segments () =
  let config =
    match telemetry with
    | Some telemetry -> { Sim.default_config with seed; telemetry }
    | None -> { Sim.default_config with seed }
  in
  let sim = Sim.create ~config () in
  let net = Net.Network.create sim in
  let disc () =
    Net.Queue_disc.create ~policy:Net.Queue_disc.Droptail ~capacity_pkts:200
  in
  let tb =
    Testbed.create ~net ~n_left:1 ~n_right:1
      ~bottlenecks:
        [ { Testbed.rate = Net.Units.mbps 100.; delay = Time.us 50; disc } ]
      ~access_delay:(Time.us 10) ()
  in
  let conn =
    Tcp.create ~net ~flow:1 ~subflow:0
      ~src:(Testbed.left_id tb 0)
      ~dst:(Testbed.right_id tb 0)
      ~path:0
      ~cc:(fun v -> Reno.make v)
      ~config:{ Tcp.default_config with sack }
      ~source:(Tcp.Limited (ref segments))
      ()
  in
  (sim, net, conn)

let count_events sink kind =
  let n = ref 0 in
  Tel.Recorder.iter
    (fun e -> if String.equal (Tel.Event.kind e.Tel.Recorder.event) kind then incr n)
    (Tel.Sink.recorder sink);
  !n

let test_unknown_target_raises () =
  let _sim, net, _conn = make_rig ~segments:10 () in
  let schedule =
    Fault_spec.create
      [ Fault_spec.Link_down { target = Fault_spec.Link "nope"; at = Time.ms 1 } ]
  in
  check_invalid_arg "unknown link" (fun () ->
      ignore (Injector.install ~net ~schedule ()));
  let schedule =
    Fault_spec.create
      [
        Fault_spec.Blackout
          { target = Fault_spec.Tag "no-such-tag"; window = Fault_spec.always };
      ]
  in
  check_invalid_arg "unknown tag" (fun () ->
      ignore (Injector.install ~net ~schedule ()))

let test_link_flap_events_and_recovery () =
  let sink = Tel.Sink.create () in
  let segments = 200 in
  let sim, net, conn = make_rig ~telemetry:sink ~segments () in
  let schedule =
    Fault_spec.create
      [
        Fault_spec.Link_down
          { target = Fault_spec.Link "IN1->OUT1"; at = Time.ms 2 };
        Fault_spec.Link_up
          { target = Fault_spec.Link "IN1->OUT1"; at = Time.ms 8 };
      ]
  in
  let inj = Injector.install ~net ~schedule () in
  Sim.run ~until:(Time.sec 20.) sim;
  Alcotest.(check bool) "transfer survives the outage" true
    (Tcp.is_complete conn);
  Alcotest.(check int) "one down transition" 1 (Injector.link_downs inj);
  Alcotest.(check int) "one up transition" 1 (Injector.link_ups inj);
  Alcotest.(check int) "link-down event" 1 (count_events sink "link-down");
  Alcotest.(check int) "link-up event" 1 (count_events sink "link-up");
  Alcotest.(check bool) "outage forced retransmission" true
    (Tcp.retransmits conn > 0)

let test_bernoulli_loss_deterministic () =
  let run () =
    let sink = Tel.Sink.create () in
    let segments = 300 in
    let sim, net, conn = make_rig ~telemetry:sink ~segments () in
    let schedule =
      Fault_spec.create ~seed:5
        [
          Fault_spec.Loss
            {
              target = Fault_spec.Link "IN1->OUT1";
              window = Fault_spec.always;
              model = Fault_spec.Bernoulli 0.02;
              filter = Fault_spec.Data_only;
            };
        ]
    in
    let inj = Injector.install ~net ~schedule () in
    Sim.run ~until:(Time.sec 30.) sim;
    Alcotest.(check bool) "completes under loss" true (Tcp.is_complete conn);
    (Injector.injected_drops inj, count_events sink "injected-drop")
  in
  let drops1, events1 = run () in
  let drops2, events2 = run () in
  Alcotest.(check bool) "some drops injected" true (drops1 > 0);
  Alcotest.(check int) "drop events recorded" drops1 events1;
  Alcotest.(check int) "drop count reproducible" drops1 drops2;
  Alcotest.(check int) "event count reproducible" events1 events2

let test_gilbert_elliott_deterministic () =
  let run () =
    let segments = 300 in
    let sim, net, conn = make_rig ~segments () in
    let schedule =
      Fault_spec.create ~seed:11
        [
          Fault_spec.Loss
            {
              target = Fault_spec.Link "IN1->OUT1";
              window = Fault_spec.always;
              model =
                Fault_spec.Gilbert_elliott
                  {
                    enter_bad = 0.01;
                    exit_bad = 0.3;
                    loss_good = 0.;
                    loss_bad = 0.5;
                  };
              filter = Fault_spec.Any_packet;
            };
        ]
    in
    let inj = Injector.install ~net ~schedule () in
    Sim.run ~until:(Time.sec 30.) sim;
    Alcotest.(check bool) "completes under bursty loss" true
      (Tcp.is_complete conn);
    Injector.injected_drops inj
  in
  let d1 = run () in
  let d2 = run () in
  Alcotest.(check bool) "some drops injected" true (d1 > 0);
  Alcotest.(check int) "burst realization reproducible" d1 d2

let test_blackout_window () =
  let segments = 200 in
  let sim, net, conn = make_rig ~segments () in
  let schedule =
    Fault_spec.create
      [
        Fault_spec.Blackout
          {
            target = Fault_spec.Tag "bottleneck";
            window =
              Fault_spec.window ~from_ns:(Time.ms 2) ~until_ns:(Time.ms 8);
          };
      ]
  in
  ignore (Injector.install ~net ~schedule ());
  Sim.run ~until:(Time.sec 20.) sim;
  Alcotest.(check bool) "completes after the blackout" true
    (Tcp.is_complete conn);
  Alcotest.(check bool) "blackout forced recovery" true
    (Tcp.retransmits conn > 0)

(* ----- fat-tree integration ----- *)

let make_fat_tree () =
  let sim = Sim.create () in
  let net = Net.Network.create sim in
  let disc () =
    Net.Queue_disc.create ~policy:(Net.Queue_disc.Threshold_mark 10)
      ~capacity_pkts:100
  in
  let ft = Fat_tree.create ~net ~k:4 ~disc () in
  (sim, net, ft)

let test_fat_tree_uplink_helpers () =
  let _sim, net, ft = make_fat_tree () in
  let name = Fat_tree.rack_uplink_name ft ~pod:0 ~edge:0 ~agg:0 in
  Alcotest.(check string) "uplink name" "e0.0->a0.0" name;
  Alcotest.(check string) "downlink name" "a0.0->e0.0"
    (Fat_tree.rack_downlink_name ft ~pod:0 ~edge:0 ~agg:0);
  let link = Fat_tree.rack_uplink ft ~pod:0 ~edge:0 ~agg:0 in
  Alcotest.(check string) "helper finds the live link" name
    (Net.Link.name link);
  (match Net.Network.find_link net ~name with
  | Some l ->
    Alcotest.(check int) "same link by name" (Net.Link.id link) (Net.Link.id l)
  | None -> Alcotest.fail "find_link missed a known name");
  check_invalid_arg "pod out of range" (fun () ->
      ignore (Fat_tree.rack_uplink_name ft ~pod:9 ~edge:0 ~agg:0))

let test_host_pause () =
  let sim, net, ft = make_fat_tree () in
  let host = Fat_tree.host_id ft 0 in
  let schedule =
    Fault_spec.create
      [
        Fault_spec.Host_pause
          {
            host;
            window = Fault_spec.window ~from_ns:(Time.ms 1) ~until_ns:(Time.ms 2);
          };
      ]
  in
  let inj = Injector.install ~net ~schedule () in
  Sim.run ~until:(Time.ms 5) sim;
  Alcotest.(check bool) "every port went down" true (Injector.link_downs inj >= 1);
  Alcotest.(check int) "every port came back" (Injector.link_downs inj)
    (Injector.link_ups inj)

let test_host_pause_rejects_switch () =
  let _sim, net, _ft = make_fat_tree () in
  let rec find_switch i =
    let n = Net.Network.node net i in
    match Net.Node.kind n with
    | Net.Node.Switch -> i
    | Net.Node.Host -> find_switch (i + 1)
  in
  let switch = find_switch 0 in
  let schedule =
    Fault_spec.create
      [ Fault_spec.Host_pause { host = switch; window = Fault_spec.always } ]
  in
  check_invalid_arg "switch is not a host" (fun () ->
      ignore (Injector.install ~net ~schedule ()))

(* ----- determinism across runner widths ----- *)

let test_fault_scenarios_reproducible_across_jobs () =
  let scenarios =
    match Scenarios.select Scenarios.quick [ "faults" ] with
    | Ok l -> l
    | Error name -> Alcotest.failf "unknown scenario %s" name
  in
  Alcotest.(check int) "both fault scenarios selected" 2
    (List.length scenarios);
  let outputs ~jobs =
    let outcomes, _stats =
      Runner.run ~jobs ~cache:Runner.No_cache ~progress:false scenarios
    in
    List.map (fun (o : Runner.outcome) -> o.output) outcomes
  in
  let seq = outputs ~jobs:1 in
  let par = outputs ~jobs:4 in
  List.iter2
    (fun a b -> Alcotest.(check string) "byte-identical across --jobs" a b)
    seq par;
  List.iter
    (fun out ->
      Alcotest.(check bool) "scenario produced output" true
        (String.length out > 0))
    seq

let suite =
  [
    Alcotest.test_case "spec round-trip" `Quick test_spec_round_trip;
    Alcotest.test_case "spec human-friendly times" `Quick
      test_spec_human_times;
    Alcotest.test_case "spec rejects garbage" `Quick test_spec_rejects_garbage;
    Alcotest.test_case "schedule validation" `Quick test_validation;
    Alcotest.test_case "digest params" `Quick test_to_params;
    Alcotest.test_case "unknown target raises at install" `Quick
      test_unknown_target_raises;
    Alcotest.test_case "link flap: events + recovery" `Quick
      test_link_flap_events_and_recovery;
    Alcotest.test_case "bernoulli loss deterministic" `Quick
      test_bernoulli_loss_deterministic;
    Alcotest.test_case "gilbert-elliott loss deterministic" `Quick
      test_gilbert_elliott_deterministic;
    Alcotest.test_case "blackout window" `Quick test_blackout_window;
    Alcotest.test_case "fat-tree uplink helpers" `Quick
      test_fat_tree_uplink_helpers;
    Alcotest.test_case "host pause" `Quick test_host_pause;
    Alcotest.test_case "host pause rejects switches" `Quick
      test_host_pause_rejects_switch;
    Alcotest.test_case "fault scenarios reproducible across jobs" `Slow
      test_fault_scenarios_reproducible_across_jobs;
  ]
