(* Scenario runner: sequential/parallel byte-equivalence, digest-keyed
   caching, ordered result streaming, and robustness against corrupted,
   truncated and half-written cache entries. *)

module Runner = Xmp_runner.Runner
module Scenario = Xmp_runner.Scenario
module Cache = Xmp_runner.Cache
module Sim = Xmp_engine.Sim
module Time = Xmp_engine.Time
module Net = Xmp_net
module Tcp = Xmp_transport.Tcp
module Testbed = Xmp_net.Testbed

(* A cheap but real simulation (~a few ms) whose printed output depends
   on every parameter — the runner test workload. Exposed for
   test_fuzz's digest properties. *)
let tiny_output ~seed ~size () =
  let sim = Sim.create ~config:{ Sim.default_config with seed } () in
  let net = Net.Network.create sim in
  let disc () =
    Net.Queue_disc.create
      ~policy:(Net.Queue_disc.Threshold_mark 5)
      ~capacity_pkts:30
  in
  let tb =
    Testbed.create ~net ~n_left:1 ~n_right:1
      ~bottlenecks:
        [ { Testbed.rate = Net.Units.mbps 100.; delay = Time.us 50; disc } ]
      ()
  in
  let conn =
    Tcp.create ~net ~flow:1 ~subflow:0
      ~src:(Testbed.left_id tb 0)
      ~dst:(Testbed.right_id tb 0)
      ~path:0
      ~cc:(fun v -> Xmp_transport.Reno.make v)
      ~source:(Tcp.Limited (ref size))
      ()
  in
  Sim.run ~until:(Time.sec 5.) sim;
  Printf.printf "tiny seed=%d size=%d acked=%d complete=%b events=%d\n" seed
    size (Tcp.segments_acked conn) (Tcp.is_complete conn)
    (Sim.events_executed sim)

let tiny ~seed ~size =
  Scenario.create
    ~name:(Printf.sprintf "tiny.%d.%d" seed size)
    ~descr:"tiny deterministic TCP transfer"
    ~params:[ ("seed", string_of_int seed); ("size", string_of_int size) ]
    (tiny_output ~seed ~size)

(* Same digest as [tiny], poisoned closure: proves a warm cache serves
   bytes without simulating (running this would abort the whole run). *)
let tiny_poisoned ~seed ~size =
  Scenario.create
    ~name:(Printf.sprintf "tiny.%d.%d" seed size)
    ~params:[ ("seed", string_of_int seed); ("size", string_of_int size) ]
    (fun () -> failwith "cache should have served this scenario")

let fresh_dir =
  let ctr = ref 0 in
  fun () ->
    incr ctr;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "xmp_test_cache_%d_%d" (Unix.getpid ()) !ctr)

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun f -> Sys.remove (Filename.concat dir f))
      (Sys.readdir dir);
    Sys.rmdir dir
  end

let outputs outcomes = List.map (fun o -> o.Runner.output) outcomes

let scenario_set = List.init 6 (fun i -> tiny ~seed:i ~size:(40 + (10 * i)))

let run ?(jobs = 1) ?(cache = Runner.No_cache) scenarios =
  Runner.run ~jobs ~cache ~progress:false scenarios

let test_sequential_parallel_equivalence () =
  let dir1 = fresh_dir () and dir4 = fresh_dir () in
  let o1, s1 = run ~jobs:1 ~cache:(Runner.Cache_dir dir1) scenario_set in
  let o4, s4 = run ~jobs:4 ~cache:(Runner.Cache_dir dir4) scenario_set in
  Alcotest.(check (list string))
    "jobs=1 and jobs=4 produce byte-identical outputs" (outputs o1)
    (outputs o4);
  Alcotest.(check (list string))
    "identical cache digests"
    (List.map (fun o -> o.Runner.digest) o1)
    (List.map (fun o -> o.Runner.digest) o4);
  Alcotest.(check int) "cold run misses all (jobs=1)" 6 s1.Runner.misses;
  Alcotest.(check int) "cold run misses all (jobs=4)" 6 s4.Runner.misses;
  List.iter
    (fun o -> Alcotest.(check bool) "cold => simulated" false o.Runner.from_cache)
    (o1 @ o4);
  (* the cache files themselves must be identical across job counts *)
  List.iter
    (fun o ->
      let key = o.Runner.digest in
      Alcotest.(check (option string))
        "cache entry bytes equal across job counts"
        (Cache.load ~dir:dir1 ~key)
        (Cache.load ~dir:dir4 ~key))
    o1;
  rm_rf dir1;
  rm_rf dir4

let test_warm_cache_serves_without_simulating () =
  let dir = fresh_dir () in
  let cold, _ = run ~jobs:2 ~cache:(Runner.Cache_dir dir) scenario_set in
  let poisoned =
    List.init 6 (fun i -> tiny_poisoned ~seed:i ~size:(40 + (10 * i)))
  in
  (* poisoned closures abort the run if executed: completing at all
     proves the warm cache never simulates *)
  let warm, stats = run ~jobs:4 ~cache:(Runner.Cache_dir dir) poisoned in
  Alcotest.(check int) "100% hits" 6 stats.Runner.hits;
  Alcotest.(check int) "no misses" 0 stats.Runner.misses;
  List.iter
    (fun o -> Alcotest.(check bool) "warm => from cache" true o.Runner.from_cache)
    warm;
  Alcotest.(check (list string))
    "warm bytes identical to cold bytes" (outputs cold) (outputs warm);
  rm_rf dir

let test_no_cache_mode () =
  let dir = fresh_dir () in
  let a, sa = run ~jobs:2 ~cache:Runner.No_cache scenario_set in
  let b, sb = run ~jobs:2 ~cache:Runner.No_cache scenario_set in
  Alcotest.(check int) "no-cache always misses" 6 sa.Runner.misses;
  Alcotest.(check int) "no-cache never learns" 6 sb.Runner.misses;
  Alcotest.(check (list string)) "still deterministic" (outputs a) (outputs b);
  Alcotest.(check bool) "writes no cache dir" false (Sys.file_exists dir)

let test_ordered_streaming () =
  let emitted = ref [] in
  let _, _ =
    Runner.run ~jobs:3 ~cache:Runner.No_cache ~progress:false
      ~on_outcome:(fun o -> emitted := o.Runner.scenario.Scenario.name :: !emitted)
      scenario_set
  in
  Alcotest.(check (list string))
    "on_outcome fires in input order, not completion order"
    (List.map (fun s -> s.Scenario.name) scenario_set)
    (List.rev !emitted)

let test_duplicate_digests_coalesce () =
  let s = tiny ~seed:3 ~size:70 in
  let o, _ = run ~jobs:2 [ s; s; s ] in
  match outputs o with
  | [ a; b; c ] ->
    Alcotest.(check string) "duplicates share one result" a b;
    Alcotest.(check string) "all three settle" b c
  | _ -> Alcotest.fail "expected three outcomes"

let test_failing_scenario_aborts () =
  let boom =
    Scenario.create ~name:"boom" ~params:[] (fun () -> failwith "boom")
  in
  match run ~jobs:2 [ tiny ~seed:1 ~size:50; boom ] with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "a raising scenario must abort the run"

(* ----- cache robustness ----- *)

let reference_output = lazy (Runner.capture (tiny_output ~seed:9 ~size:55))

let one = tiny ~seed:9 ~size:55

let recovery_check ~what damage =
  (* cold run, damage the entry, rerun: the runner must detect, discard
     and recompute, then leave a good entry behind *)
  let dir = fresh_dir () in
  let _, _ = run ~jobs:1 ~cache:(Runner.Cache_dir dir) [ one ] in
  let key = Scenario.digest one in
  damage (Cache.entry_path ~dir ~key);
  let o, stats = run ~jobs:1 ~cache:(Runner.Cache_dir dir) [ one ] in
  Alcotest.(check int) (what ^ ": detected, so missed") 1 stats.Runner.misses;
  Alcotest.(check string)
    (what ^ ": recomputed the right bytes")
    (Lazy.force reference_output)
    (List.hd (outputs o));
  let _, stats = run ~jobs:1 ~cache:(Runner.Cache_dir dir) [ one ] in
  Alcotest.(check int) (what ^ ": entry repaired") 1 stats.Runner.hits;
  rm_rf dir

let test_corrupt_entry () =
  recovery_check ~what:"payload corruption" (fun path ->
      let ic = open_in_bin path in
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      let b = Bytes.of_string s in
      (* flip a payload byte, leaving header and length intact *)
      let last = Bytes.length b - 2 in
      Bytes.set b last
        (if Bytes.get b last = 'x' then 'y' else 'x');
      let oc = open_out_bin path in
      output_bytes oc b;
      close_out oc)

let test_truncated_entry () =
  recovery_check ~what:"truncation" (fun path ->
      let ic = open_in_bin path in
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      let oc = open_out_bin path in
      output_string oc (String.sub s 0 (String.length s / 2));
      close_out oc)

let test_garbage_entry () =
  recovery_check ~what:"not an entry at all" (fun path ->
      let oc = open_out_bin path in
      output_string oc "not an xmp-cache entry\n";
      close_out oc)

let test_stale_tmp_file () =
  (* a crash mid-store leaves .tmp.<key>; it must neither be served nor
     block a correct store *)
  let dir = fresh_dir () in
  let key = Scenario.digest one in
  Sys.mkdir dir 0o755;
  let oc = open_out_bin (Filename.concat dir (".tmp." ^ key)) in
  output_string oc "half-written garbage";
  close_out oc;
  Alcotest.(check (option string))
    "tmp file is not an entry" None (Cache.load ~dir ~key);
  let o, stats = run ~jobs:1 ~cache:(Runner.Cache_dir dir) [ one ] in
  Alcotest.(check int) "simulated despite tmp file" 1 stats.Runner.misses;
  Alcotest.(check string)
    "and produced the right bytes"
    (Lazy.force reference_output)
    (List.hd (outputs o));
  Alcotest.(check bool)
    "store completed over the stale tmp" true
    (Option.is_some (Cache.load ~dir ~key));
  rm_rf dir

let test_load_missing () =
  Alcotest.(check (option string))
    "absent dir loads nothing" None
    (Cache.load ~dir:(fresh_dir ()) ~key:(Scenario.digest one))

let test_store_load_roundtrip () =
  let dir = fresh_dir () in
  let key = String.make 32 'a' in
  Cache.store ~dir ~key "payload\nwith\nnewlines";
  Alcotest.(check (option string))
    "roundtrip" (Some "payload\nwith\nnewlines") (Cache.load ~dir ~key);
  Cache.store ~dir ~key "";
  Alcotest.(check (option string))
    "empty payload roundtrip" (Some "") (Cache.load ~dir ~key);
  rm_rf dir

(* ----- capture ----- *)

let test_capture () =
  let out = Runner.capture (fun () -> Printf.printf "a%db\n" 7) in
  Alcotest.(check string) "captures exactly the printed bytes" "a7b\n" out;
  let again = Runner.capture (fun () -> print_string "second") in
  Alcotest.(check string) "stdout restored between captures" "second" again

(* ----- digests ----- *)

let test_digest_canonicalization () =
  let mk params = Scenario.create ~name:"d" ~params (fun () -> ()) in
  let d1 = Scenario.digest (mk [ ("a", "1"); ("b", "2") ]) in
  let d2 = Scenario.digest (mk [ ("b", "2"); ("a", "1") ]) in
  Alcotest.(check string) "param order is canonicalized" d1 d2;
  let d3 = Scenario.digest (mk [ ("a", "1"); ("b", "3") ]) in
  Alcotest.(check bool) "value change changes digest" false (d1 = d3);
  let renamed =
    Scenario.digest
      (Scenario.create ~name:"e"
         ~params:[ ("a", "1"); ("b", "2") ]
         (fun () -> ()))
  in
  Alcotest.(check bool) "name change changes digest" false (d1 = renamed)

let suite =
  [
    Alcotest.test_case "jobs=1 ≡ jobs=4, byte for byte" `Quick
      test_sequential_parallel_equivalence;
    Alcotest.test_case "warm cache serves bytes without simulating" `Quick
      test_warm_cache_serves_without_simulating;
    Alcotest.test_case "--no-cache bypasses the cache" `Quick
      test_no_cache_mode;
    Alcotest.test_case "results stream in deterministic order" `Quick
      test_ordered_streaming;
    Alcotest.test_case "duplicate digests simulate once" `Quick
      test_duplicate_digests_coalesce;
    Alcotest.test_case "a raising scenario aborts the run" `Quick
      test_failing_scenario_aborts;
    Alcotest.test_case "corrupted entry is discarded and recomputed" `Quick
      test_corrupt_entry;
    Alcotest.test_case "truncated entry is discarded and recomputed" `Quick
      test_truncated_entry;
    Alcotest.test_case "garbage entry is discarded and recomputed" `Quick
      test_garbage_entry;
    Alcotest.test_case "stale mid-write temp file is harmless" `Quick
      test_stale_tmp_file;
    Alcotest.test_case "load from absent dir" `Quick test_load_missing;
    Alcotest.test_case "store/load roundtrip" `Quick
      test_store_load_roundtrip;
    Alcotest.test_case "capture returns exactly the printed bytes" `Quick
      test_capture;
    Alcotest.test_case "digest canonicalization" `Quick
      test_digest_canonicalization;
  ]
