(* Tests for the xmplint analysis engine (tool/lint as Xmplint_lib):
   lexer token/position/pragma behaviour, declaration grouping, the three
   declaration-level passes against their fixture files, a self-lint of
   the linter's own sources, and the baseline ratchet — including an
   end-to-end run of main.exe proving an injected finding exits nonzero
   and the JSON diff names the rule. *)

module Lexer = Xmplint_lib.Lexer
module Rules = Xmplint_lib.Rules
module Report = Xmplint_lib.Report
module Baseline = Xmplint_lib.Baseline

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

(* Under `dune runtest` the cwd is _build/default/test (the declared deps
   place tool/lint alongside); under `dune exec` from the repo root it is
   the root itself. Resolve whichever layout we are in. *)
let tool_dir =
  if Sys.file_exists "../tool/lint" then "../tool/lint" else "tool/lint"

let fixture_dir = Filename.concat tool_dir "fixtures/lib"

let main_exe =
  let candidates =
    [ Filename.concat tool_dir "main.exe"; "_build/default/tool/lint/main.exe" ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> List.hd candidates

(* Lint one fixture as if it lived under lib/ so lib-scoped rules fire. *)
let lint_fixture name =
  let rep = Report.create () in
  Rules.lint_source rep
    ~path:("lib/" ^ name)
    (read_file (Filename.concat fixture_dir name));
  Report.sorted rep

let rule_decls rule findings =
  List.filter_map
    (fun (f : Report.finding) -> if f.rule = rule then f.decl else None)
    findings

let rule_count rule findings =
  List.length
    (List.filter (fun (f : Report.finding) -> f.Report.rule = rule) findings)

(* ------------------------------------------------------------------ *)
(* Lexer *)

let test_lexer_positions () =
  let lx = Lexer.lex ~path:"lib/x.ml" "let a = 1\nlet b_ns = Time.to_ns t\n" in
  let tok i = lx.Lexer.tokens.(i) in
  Alcotest.(check int) "token count" 9 (Array.length lx.Lexer.tokens);
  (match (tok 0).Lexer.kind with
  | Lexer.Keyword "let" -> ()
  | _ -> Alcotest.fail "first token should be Keyword let");
  Alcotest.(check int) "line of first" 1 (tok 0).Lexer.line;
  Alcotest.(check int) "col of first" 0 (tok 0).Lexer.col;
  (match (tok 5).Lexer.kind with
  | Lexer.Ident "b_ns" -> ()
  | _ -> Alcotest.fail "b_ns ident expected");
  Alcotest.(check int) "line 2" 2 (tok 5).Lexer.line;
  Alcotest.(check int) "col of b_ns" 4 (tok 5).Lexer.col;
  match (tok 7).Lexer.kind with
  | Lexer.Ident "Time.to_ns" -> ()
  | _ -> Alcotest.fail "dotted path should lex as one Ident"

let test_lexer_strings_comments () =
  let src =
    "let s = \"Obj.magic inside a string\"\n\
     (* Obj.magic inside a comment *)\n\
     let q = {x|Obj.magic quoted|x}\n"
  in
  let lx = Lexer.lex ~path:"lib/x.ml" src in
  Array.iter
    (fun (t : Lexer.token) ->
      match t.Lexer.kind with
      | Lexer.Ident "Obj.magic" -> Alcotest.fail "Obj.magic leaked from text"
      | _ -> ())
    lx.Lexer.tokens;
  let strs =
    Array.to_list lx.Lexer.tokens
    |> List.filter (fun (t : Lexer.token) -> t.Lexer.kind = Lexer.Str)
  in
  Alcotest.(check int) "two string tokens" 2 (List.length strs)

let test_lexer_pragmas () =
  let src =
    "(* xmplint: allow mutable-global — justified because reasons *)\n\
     let a = ref 0\n\
     (* xmplint: allow unit-suffix *)\n\
     let b = 1\n"
  in
  let lx = Lexer.lex ~path:"lib/x.ml" src in
  Alcotest.(check int) "two pragmas" 2 (List.length lx.Lexer.pragmas);
  Alcotest.(check bool) "waived on next line" true
    (Lexer.waived lx ~line:2 ~rule:"mutable-global");
  Alcotest.(check bool) "justified" true
    (Lexer.waived_justified lx ~line:2 ~rule:"mutable-global");
  Alcotest.(check bool) "unit-suffix pragma has no justification" false
    (Lexer.waived_justified lx ~line:4 ~rule:"unit-suffix");
  Alcotest.(check bool) "still a plain waiver" true
    (Lexer.waived lx ~line:4 ~rule:"unit-suffix");
  Alcotest.(check bool) "rule mismatch does not waive" false
    (Lexer.waived lx ~line:2 ~rule:"unit-suffix")

let test_items () =
  let src =
    "let a = 1\n\n\
     let f x =\n  let inner = ref 0 in\n  !inner + x\n\n\
     type t = { mutable n : int }\n\n\
     module M = struct\n  let hidden = 2\nend\n"
  in
  let lx = Lexer.lex ~path:"lib/x.ml" src in
  let items = Lexer.items lx in
  let heads = List.map (fun (it : Lexer.item) -> it.Lexer.head) items in
  Alcotest.(check (list string))
    "toplevel heads" [ "let"; "let"; "type"; "module" ] heads;
  let names =
    List.map
      (fun (it : Lexer.item) ->
        Option.value ~default:"?" it.Lexer.name)
      items
  in
  Alcotest.(check (list string)) "names" [ "a"; "f"; "t"; "M" ] names;
  (* the expression-level [let inner] must not open a toplevel item *)
  Alcotest.(check int) "4 items" 4 (List.length items)

(* ------------------------------------------------------------------ *)
(* New passes on fixtures *)

let test_mutable_global_fixture () =
  let findings = lint_fixture "mutable_global_cases.ml" in
  let decls = rule_decls "mutable-global" findings in
  Alcotest.(check (list string))
    "flagged declarations"
    [
      "hits"; "table"; "scratch"; "slots"; "shared_cell"; "annotated";
      "unjustified";
    ]
    decls;
  List.iter
    (fun negative ->
      Alcotest.(check bool)
        (negative ^ " not flagged")
        false
        (List.mem negative decls))
    [ "make_counter"; "fresh_table"; "thunk"; "limit"; "names";
      "safe_counter"; "interned" ]

let test_unit_suffix_fixture () =
  let findings = lint_fixture "unit_suffix_cases.ml" in
  let decls = rule_decls "unit-suffix" findings in
  Alcotest.(check (list string))
    "flagged declarations" [ "total_wait"; "over_quota"; "drift" ] decls;
  Alcotest.(check bool) "pragma waives" false (List.mem "waived_mix" decls);
  Alcotest.(check bool) "same unit ok" false (List.mem "sum_ns" decls);
  Alcotest.(check bool) "literal converts" false (List.mem "total_ns" decls)

let test_hashtbl_order_fixture () =
  let findings = lint_fixture "hashtbl_order_cases.ml" in
  let decls = rule_decls "hashtbl-order" findings in
  Alcotest.(check (list string)) "flagged declarations" [ "dump"; "keys" ] decls;
  List.iter
    (fun negative ->
      Alcotest.(check bool)
        (negative ^ " not flagged")
        false
        (List.mem negative decls))
    [ "sorted_keys"; "sorted_pairs"; "list_iter"; "restore" ]

let test_packet_release_fixtures () =
  let leak = lint_fixture "packet_release_leak.ml" in
  Alcotest.(check int) "leaking file flagged once" 1
    (rule_count "packet-release" leak);
  let balanced = lint_fixture "packet_release_balanced.ml" in
  Alcotest.(check int) "balanced file clean" 0
    (rule_count "packet-release" balanced);
  (* the rule is lib-scoped: tests build throwaway packets freely *)
  let rep = Report.create () in
  Rules.lint_source rep ~path:"test/packet_release_leak.ml"
    (read_file (Filename.concat fixture_dir "packet_release_leak.ml"));
  Alcotest.(check int) "test/ exempt" 0
    (rule_count "packet-release" (Report.sorted rep));
  (* the allowlisted hand-off path acquires without releasing by design:
     the same leaking source is clean when attributed to it *)
  let rep = Report.create () in
  Rules.lint_source rep ~path:"lib/transport/tcp.ml"
    (read_file (Filename.concat fixture_dir "packet_release_leak.ml"));
  Alcotest.(check int) "hand-off allowlist suppresses" 0
    (rule_count "packet-release" (Report.sorted rep))

let test_bad_example_still_fires () =
  let findings = lint_fixture "bad_example.ml" in
  List.iter
    (fun rule ->
      Alcotest.(check bool)
        ("rule " ^ rule ^ " fires")
        true
        (rule_count rule findings > 0))
    [
      "wall-clock"; "unix-in-lib"; "unseeded-random"; "obj-magic";
      "poly-compare-time"; "bare-compare"; "stdout-in-lib"; "direct-printf";
    ]

(* ------------------------------------------------------------------ *)
(* Self-lint: the linter's own sources must be clean *)

let test_self_lint () =
  let rep = Report.create () in
  List.iter
    (fun name ->
      let path = Filename.concat tool_dir name in
      Alcotest.(check bool) (name ^ " exists") true (Sys.file_exists path);
      Rules.lint_source rep ~path:("tool/lint/" ^ name) (read_file path))
    [ "lexer.ml"; "rules.ml"; "report.ml"; "baseline.ml"; "main.ml" ];
  let findings = Report.sorted rep in
  Alcotest.(check (list string))
    "xmplint is clean on its own sources" []
    (List.map Report.finding_to_string findings)

(* The coupling seam and every multipath controller on it must stay
   lint-clean — the unit-suffix and iteration-order rules in particular
   guard the float/Time.t boundary these files live on. Keeping them at
   zero findings keeps tool/lint/baseline.json empty. *)
let test_controller_sources_lint_clean () =
  let mptcp_dir =
    if Sys.file_exists "../lib/mptcp" then "../lib/mptcp" else "lib/mptcp"
  in
  let rep = Report.create () in
  List.iter
    (fun name ->
      let path = Filename.concat mptcp_dir name in
      Alcotest.(check bool) (name ^ " exists") true (Sys.file_exists path);
      Rules.lint_source rep ~path:("lib/mptcp/" ^ name) (read_file path))
    [ "coupling.ml"; "lia.ml"; "olia.ml"; "balia.ml"; "veno.ml"; "amp.ml" ];
  let findings = Report.sorted rep in
  Alcotest.(check (list string))
    "multipath controllers are lint-clean" []
    (List.map Report.finding_to_string findings)

(* ------------------------------------------------------------------ *)
(* Baseline ratchet *)

let mk_finding path rule decl : Report.finding =
  { Report.path; line = 10; rule; decl = Some decl; msg = "synthetic" }

let test_baseline_roundtrip () =
  let file = Filename.temp_file "xmplint_baseline" ".json" in
  let findings =
    [
      mk_finding "lib/a.ml" "hashtbl-order" "f";
      mk_finding "lib/a.ml" "hashtbl-order" "g";
      mk_finding "lib/b.ml" "unit-suffix" "h";
    ]
  in
  Baseline.write file findings;
  (match Baseline.load file with
  | Error e -> Alcotest.fail e
  | Ok entries ->
    Alcotest.(check int) "two pinned keys" 2 (List.length entries);
    let find p r =
      List.find_opt
        (fun e -> e.Baseline.b_path = p && e.Baseline.b_rule = r)
        entries
    in
    (match find "lib/a.ml" "hashtbl-order" with
    | Some e -> Alcotest.(check int) "count 2" 2 e.Baseline.b_count
    | None -> Alcotest.fail "missing lib/a.ml pin");
    match find "lib/b.ml" "unit-suffix" with
    | Some e -> Alcotest.(check int) "count 1" 1 e.Baseline.b_count
    | None -> Alcotest.fail "missing lib/b.ml pin");
  Sys.remove file

let test_ratchet_verdicts () =
  let baseline =
    [ { Baseline.b_path = "lib/a.ml"; b_rule = "hashtbl-order"; b_count = 1 } ]
  in
  (* within budget: one finding suppressed *)
  let v1 = Baseline.apply baseline [ mk_finding "lib/a.ml" "hashtbl-order" "f" ] in
  Alcotest.(check int) "no violations" 0 (List.length v1.Baseline.violations);
  Alcotest.(check int) "suppressed" 1 v1.Baseline.suppressed;
  Alcotest.(check int) "no stale" 0 (List.length v1.Baseline.stale);
  (* growth: second finding for the same key violates *)
  let v2 =
    Baseline.apply baseline
      [
        mk_finding "lib/a.ml" "hashtbl-order" "f";
        mk_finding "lib/a.ml" "hashtbl-order" "g";
      ]
  in
  (match v2.Baseline.violations with
  | [ viol ] ->
    Alcotest.(check string) "rule named" "hashtbl-order" viol.Baseline.v_rule;
    Alcotest.(check int) "allowed" 1 viol.Baseline.v_allowed;
    Alcotest.(check int) "found" 2 viol.Baseline.v_found
  | other ->
    Alcotest.failf "expected one violation, got %d" (List.length other));
  (* fixed finding: stale pin reported, still clean *)
  let v3 = Baseline.apply baseline [] in
  Alcotest.(check int) "clean" 0 (List.length v3.Baseline.violations);
  (match v3.Baseline.stale with
  | [ (p, r, pinned, found) ] ->
    Alcotest.(check string) "stale path" "lib/a.ml" p;
    Alcotest.(check string) "stale rule" "hashtbl-order" r;
    Alcotest.(check int) "pinned" 1 pinned;
    Alcotest.(check int) "found" 0 found
  | other -> Alcotest.failf "expected one stale entry, got %d" (List.length other));
  (* a fresh rule with no pin violates immediately (ratchet from zero) *)
  let v4 = Baseline.apply baseline [ mk_finding "lib/z.ml" "unit-suffix" "k" ] in
  Alcotest.(check int) "new rule violates" 1 (List.length v4.Baseline.violations)

let test_ratchet_json_names_rule () =
  let baseline = [] in
  let v =
    Baseline.apply baseline [ mk_finding "lib/a.ml" "mutable-global" "total" ]
  in
  let json =
    Report.to_json ~ratchet:(Baseline.verdict_to_json v) ~files:1
      [ mk_finding "lib/a.ml" "mutable-global" "total" ]
  in
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "json names the rule" true
    (contains json "\"rule\": \"mutable-global\"");
  Alcotest.(check bool) "json names the declaration" true
    (contains json "\"decl\": \"total\"");
  Alcotest.(check bool) "ratchet not clean" true
    (contains json "\"clean\": false")

(* End to end: an injected finding makes main.exe exit nonzero with a
   JSON report naming the rule; pinning it in a baseline restores 0. *)
let test_main_exe_ratchet () =
  let exe = main_exe in
  Alcotest.(check bool) "main.exe built" true (Sys.file_exists exe);
  let root = Filename.temp_file "xmplint_tree" "" in
  Sys.remove root;
  Unix.mkdir root 0o700;
  Unix.mkdir (Filename.concat root "lib") 0o700;
  let src = Filename.concat (Filename.concat root "lib") "leaky.ml" in
  let oc = open_out src in
  output_string oc "let leak = ref 0\n";
  close_out oc;
  let out = Filename.temp_file "xmplint_out" ".json" in
  let run args =
    Sys.command
      (Printf.sprintf "%s %s > %s 2>/dev/null" (Filename.quote exe) args
         (Filename.quote out))
  in
  let code =
    run (Printf.sprintf "--root %s --format json lib" (Filename.quote root))
  in
  Alcotest.(check int) "injected finding exits 1" 1 code;
  let json = read_file out in
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "report names mutable-global" true
    (contains json "\"rule\": \"mutable-global\"");
  Alcotest.(check bool) "report names the declaration" true
    (contains json "\"decl\": \"leak\"");
  (* pin it (missing-mli fires too: leaky.ml has no interface) *)
  let bfile = Filename.temp_file "xmplint_pin" ".json" in
  Baseline.write bfile
    [
      mk_finding "lib/leaky.ml" "mutable-global" "leak";
      mk_finding "lib/leaky.ml" "missing-mli" "leaky";
    ];
  let code2 =
    run
      (Printf.sprintf "--root %s --format json --baseline %s lib"
         (Filename.quote root) (Filename.quote bfile))
  in
  Alcotest.(check int) "pinned baseline exits 0" 0 code2;
  Alcotest.(check bool) "ratchet clean in json" true
    (contains (read_file out) "\"clean\": true");
  Sys.remove out;
  Sys.remove bfile;
  Sys.remove src;
  Unix.rmdir (Filename.concat root "lib");
  Unix.rmdir root

let suite =
  [
    Alcotest.test_case "lexer: positions and dotted idents" `Quick
      test_lexer_positions;
    Alcotest.test_case "lexer: strings and comments elided" `Quick
      test_lexer_strings_comments;
    Alcotest.test_case "lexer: pragma grammar with justification" `Quick
      test_lexer_pragmas;
    Alcotest.test_case "items: toplevel declaration grouping" `Quick test_items;
    Alcotest.test_case "mutable-global: fixture cases" `Quick
      test_mutable_global_fixture;
    Alcotest.test_case "unit-suffix: fixture cases" `Quick
      test_unit_suffix_fixture;
    Alcotest.test_case "hashtbl-order: fixture cases" `Quick
      test_hashtbl_order_fixture;
    Alcotest.test_case "packet-release: fixture cases" `Quick
      test_packet_release_fixtures;
    Alcotest.test_case "legacy rules still fire on bad_example" `Quick
      test_bad_example_still_fires;
    Alcotest.test_case "self-lint: engine sources are clean" `Quick
      test_self_lint;
    Alcotest.test_case "multipath controller sources are lint-clean" `Quick
      test_controller_sources_lint_clean;
    Alcotest.test_case "baseline: write/load roundtrip" `Quick
      test_baseline_roundtrip;
    Alcotest.test_case "baseline: ratchet verdicts" `Quick
      test_ratchet_verdicts;
    Alcotest.test_case "baseline: JSON names rule and declaration" `Quick
      test_ratchet_json_names_rule;
    Alcotest.test_case "main.exe: injected finding fails, pin restores" `Quick
      test_main_exe_ratchet;
  ]
