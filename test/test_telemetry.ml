(* Telemetry subsystem: labels, registry, histogram accuracy, flight
   recorder ring semantics, disabled-sink no-ops, and the contract that
   enabling telemetry does not perturb a simulation's trajectory. *)

module Tel = Xmp_telemetry
module Label = Tel.Label
module Metric = Tel.Metric
module Registry = Tel.Registry
module Recorder = Tel.Recorder
module Event = Tel.Event
module Sink = Tel.Sink
module Export = Tel.Export

(* ----- labels ----- *)

let test_label_basics () =
  let l = Label.v [ ("queue", "b0"); ("flow", "3") ] in
  Alcotest.(check string)
    "sorted by key" "flow=3,queue=b0" (Label.to_string l);
  Alcotest.(check bool) "none is empty" true (Label.is_empty Label.none);
  Alcotest.(check bool)
    "order-insensitive equality" true
    (Label.equal l (Label.v [ ("flow", "3"); ("queue", "b0") ]))

let test_label_validation () =
  let raises name pairs =
    match Label.v pairs with
    | (_ : Label.t) -> Alcotest.failf "%s: expected Invalid_argument" name
    | exception Invalid_argument _ -> ()
  in
  raises "duplicate key" [ ("a", "1"); ("a", "2") ];
  raises "empty key" [ ("", "1") ];
  raises "equals in key" [ ("a=b", "1") ];
  raises "comma in value" [ ("a", "1,2") ];
  raises "newline in value" [ ("a", "1\n2") ]

(* ----- registry ----- *)

let test_registry_resolve () =
  let r = Registry.create () in
  let c1 = Registry.counter r ~subsystem:"net" ~name:"drops" () in
  let c2 = Registry.counter r ~subsystem:"net" ~name:"drops" () in
  Metric.Counter.inc c1;
  Alcotest.(check int) "same handle" 1 (Metric.Counter.value c2);
  let labels = Label.v [ ("queue", "b0") ] in
  let c3 = Registry.counter r ~labels ~subsystem:"net" ~name:"drops" () in
  Metric.Counter.inc c3;
  Metric.Counter.inc c3;
  Alcotest.(check int) "labelled is distinct" 2 (Metric.Counter.value c3);
  Alcotest.(check int) "unlabelled untouched" 1 (Metric.Counter.value c1);
  Alcotest.(check int) "two keys" 2 (Registry.cardinal r);
  Alcotest.(check (list string))
    "full names sorted"
    [ "net/drops"; "net/drops{queue=b0}" ]
    (List.map fst (Registry.to_alist r))

let test_registry_type_clash () =
  let r = Registry.create () in
  ignore (Registry.counter r ~subsystem:"s" ~name:"n" ());
  match Registry.gauge r ~subsystem:"s" ~name:"n" () with
  | (_ : Metric.Gauge.t) ->
    Alcotest.fail "type clash: expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_registry_reserved_names () =
  let r = Registry.create () in
  match Registry.counter r ~subsystem:"a/b" ~name:"n" () with
  | (_ : Metric.Counter.t) ->
    Alcotest.fail "slash in subsystem: expected Invalid_argument"
  | exception Invalid_argument _ -> ()

(* ----- counter / gauge ----- *)

let test_counter_gauge () =
  let c = Metric.Counter.create () in
  Metric.Counter.inc c;
  Metric.Counter.inc ~by:5 c;
  Alcotest.(check int) "counter" 6 (Metric.Counter.value c);
  (match Metric.Counter.inc ~by:(-1) c with
  | () -> Alcotest.fail "negative increment: expected Invalid_argument"
  | exception Invalid_argument _ -> ());
  let g = Metric.Gauge.create () in
  Metric.Gauge.set g 2.5;
  Metric.Gauge.set g 7.25;
  Alcotest.(check (float 0.)) "gauge holds last" 7.25 (Metric.Gauge.value g);
  Alcotest.(check int) "gauge counts samples" 2 (Metric.Gauge.samples g)

(* ----- histogram vs exact distribution ----- *)

let test_histogram_percentiles () =
  let h = Metric.Histogram.create () in
  let d = Xmp_stats.Distribution.create () in
  let rng = Random.State.make [| 7 |] in
  for _ = 1 to 10_000 do
    (* log-uniform over [1, 10^4], the shape of RTT/queue samples *)
    let v = 10. ** (Random.State.float rng 4.) in
    Metric.Histogram.add h v;
    Xmp_stats.Distribution.add d v
  done;
  Alcotest.(check int) "count" 10_000 (Metric.Histogram.count h);
  List.iter
    (fun p ->
      let approx = Metric.Histogram.percentile h p in
      let exact = Xmp_stats.Distribution.percentile d p in
      let rel = Float.abs (approx -. exact) /. exact in
      if rel > 0.06 then
        Alcotest.failf "p%.0f: histogram %.3f vs exact %.3f (rel %.3f)" p
          approx exact rel)
    [ 10.; 50.; 90.; 99. ];
  Alcotest.(check (float 1e-9))
    "min exact" (Xmp_stats.Distribution.min d) (Metric.Histogram.min_value h);
  Alcotest.(check (float 1e-9))
    "max exact" (Xmp_stats.Distribution.max d) (Metric.Histogram.max_value h)

(* ----- flight recorder ring ----- *)

let ev i = Event.Cwnd_change { flow = 1; subflow = 0; cwnd = float_of_int i }

let test_recorder_wraparound () =
  let r = Recorder.create ~capacity:4 in
  for i = 1 to 10 do
    Recorder.record r ~time_ns:i (ev i)
  done;
  Alcotest.(check int) "length is capacity" 4 (Recorder.length r);
  Alcotest.(check int) "total counts all" 10 (Recorder.total r);
  Alcotest.(check int) "dropped = overflow" 6 (Recorder.dropped r);
  Alcotest.(check (list int))
    "oldest-first survivors" [ 7; 8; 9; 10 ]
    (List.map (fun e -> e.Recorder.time_ns) (Recorder.to_list r));
  Recorder.clear r;
  Alcotest.(check int) "clear empties" 0 (Recorder.length r);
  match Recorder.create ~capacity:0 with
  | (_ : Recorder.t) ->
    Alcotest.fail "capacity 0: expected Invalid_argument"
  | exception Invalid_argument _ -> ()

(* ----- sinks ----- *)

let test_disabled_sink_noop () =
  Alcotest.(check bool) "null inactive" false (Sink.active Sink.null);
  Sink.event Sink.null ~time_ns:5 (ev 1);
  Alcotest.(check int)
    "null records nothing" 0
    (Recorder.total (Sink.recorder Sink.null));
  Alcotest.(check int)
    "null registry stays empty" 0
    (Registry.cardinal (Sink.registry Sink.null))

let test_enabled_sink_records () =
  let s = Sink.create ~recorder_capacity:8 () in
  Alcotest.(check bool) "active" true (Sink.active s);
  Sink.event s ~time_ns:3 (ev 1);
  Alcotest.(check int) "recorded" 1 (Recorder.total (Sink.recorder s))

(* ----- export formats ----- *)

let test_export_events () =
  let r = Recorder.create ~capacity:8 in
  Recorder.record r ~time_ns:1_000 (ev 1);
  Recorder.record r ~time_ns:2_000
    (Event.Ce_mark { queue = "b0"; flow = 2; subflow = 1; depth = 11 });
  let csv = Export.events_csv r in
  let lines = String.split_on_char '\n' (String.trim csv) in
  Alcotest.(check int) "header + 2 rows" 3 (List.length lines);
  Alcotest.(check string) "header" Event.csv_header (List.hd lines);
  let jsonl = Export.events_jsonl r in
  Alcotest.(check int)
    "jsonl rows" 2
    (List.length (String.split_on_char '\n' (String.trim jsonl)));
  let only_marks =
    Export.events_csv ~keep:(fun e -> Event.kind e = "ce-mark") r
  in
  Alcotest.(check int)
    "filtered to one row" 2
    (List.length (String.split_on_char '\n' (String.trim only_marks)))

let test_export_metrics () =
  let r = Registry.create () in
  let c = Registry.counter r ~subsystem:"net" ~name:"drops" () in
  Metric.Counter.inc ~by:3 c;
  let h = Registry.histogram r ~subsystem:"transport" ~name:"rtt_us" () in
  Metric.Histogram.add h 100.;
  let csv = Export.metrics_csv r in
  let lines = String.split_on_char '\n' (String.trim csv) in
  Alcotest.(check int) "header + 2 rows" 3 (List.length lines);
  Alcotest.(check string) "header" Export.metrics_csv_header (List.hd lines);
  List.iter
    (fun line ->
      Alcotest.(check int)
        ("8 columns: " ^ line)
        8
        (List.length (String.split_on_char ',' line)))
    lines;
  Alcotest.(check int)
    "jsonl rows" 2
    (List.length
       (String.split_on_char '\n' (String.trim (Export.metrics_jsonl r))))

(* ----- API compatibility ----- *)

let test_create_legacy () =
  let s1 =
    (Xmp_engine.Sim.create_legacy ~seed:9 () [@alert "-deprecated"])
  in
  let s2 =
    Xmp_engine.Sim.create
      ~config:{ Xmp_engine.Sim.default_config with seed = 9 }
      ()
  in
  Alcotest.(check int)
    "legacy wrapper draws the same stream"
    (Random.State.int (Xmp_engine.Sim.rng s1) 1_000_000)
    (Random.State.int (Xmp_engine.Sim.rng s2) 1_000_000)

(* ----- telemetry does not perturb the simulation ----- *)

let quick_fig1 telemetry =
  Xmp_experiments.Fig1.run ~scale:0.02 ~telemetry
    { Xmp_experiments.Fig1.dctcp = false; k = 10 }

let test_fig_run_unperturbed () =
  let off = quick_fig1 Sink.null in
  let sink = Sink.create () in
  let on = quick_fig1 sink in
  Alcotest.(check (float 1e-12))
    "utilization identical" off.Xmp_experiments.Fig1.utilization
    on.Xmp_experiments.Fig1.utilization;
  List.iter2
    (fun (n_off, r_off) (n_on, r_on) ->
      Alcotest.(check string) "series name" n_off n_on;
      Alcotest.(check (array (float 1e-12))) ("rates " ^ n_off) r_off r_on)
    off.Xmp_experiments.Fig1.rates on.Xmp_experiments.Fig1.rates;
  (* and the instrumented run actually recorded the hot paths *)
  let kinds = ref [] in
  Recorder.iter
    (fun e ->
      let k = Event.kind e.Recorder.event in
      if not (List.mem k !kinds) then kinds := k :: !kinds)
    (Sink.recorder sink);
  Alcotest.(check bool)
    "saw ce-mark events" true (List.mem "ce-mark" !kinds);
  Alcotest.(check bool)
    "saw cwnd-change events" true
    (List.mem "cwnd-change" !kinds);
  Alcotest.(check bool)
    "metrics registered" true
    (Registry.cardinal (Sink.registry sink) > 0);
  Alcotest.(check bool)
    "csv export non-empty" true
    (String.length (Export.events_csv (Sink.recorder sink)) > 0)

let suite =
  [
    Alcotest.test_case "label basics" `Quick test_label_basics;
    Alcotest.test_case "label validation" `Quick test_label_validation;
    Alcotest.test_case "registry resolve" `Quick test_registry_resolve;
    Alcotest.test_case "registry type clash" `Quick test_registry_type_clash;
    Alcotest.test_case "registry reserved names" `Quick
      test_registry_reserved_names;
    Alcotest.test_case "counter and gauge" `Quick test_counter_gauge;
    Alcotest.test_case "histogram percentiles" `Quick
      test_histogram_percentiles;
    Alcotest.test_case "recorder wraparound" `Quick test_recorder_wraparound;
    Alcotest.test_case "disabled sink no-op" `Quick test_disabled_sink_noop;
    Alcotest.test_case "enabled sink records" `Quick
      test_enabled_sink_records;
    Alcotest.test_case "export events" `Quick test_export_events;
    Alcotest.test_case "export metrics" `Quick test_export_metrics;
    Alcotest.test_case "create_legacy compatibility" `Quick
      test_create_legacy;
    Alcotest.test_case "telemetry does not perturb runs" `Quick
      test_fig_run_unperturbed;
  ]
