(* The runtime invariant checker (Xmp_check.Invariant) and its call sites
   in the engine and transport. The end-to-end cases feed the stack state
   that violates an invariant and assert the checker catches it — and that
   the same state sails through silently when the checker is disabled. *)

module Invariant = Xmp_check.Invariant
module Sim = Xmp_engine.Sim
module Time = Xmp_engine.Time
module Net = Xmp_net
module Testbed = Xmp_net.Testbed
module Tcp = Xmp_transport.Tcp
module Cc = Xmp_transport.Cc

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
  at 0

let test_require_passes () =
  Invariant.reset_counters ();
  Invariant.require ~name:"unit.pass" true (fun () -> "never rendered");
  Alcotest.(check int) "one check run" 1 (Invariant.checks_run ());
  Alcotest.(check int) "no violations" 0 (Invariant.violations ())

let test_require_raises () =
  Invariant.reset_counters ();
  let raised =
    try
      Invariant.require ~name:"unit.fail" false (fun () -> "detail here");
      None
    with Invariant.Violation msg -> Some msg
  in
  match raised with
  | None -> Alcotest.fail "expected Violation"
  | Some msg ->
    Alcotest.(check bool) "message names the invariant" true
      (String.length msg > 0
      && contains ~sub:"unit.fail" msg
      && contains ~sub:"detail here" msg);
    Alcotest.(check int) "violation counted" 1 (Invariant.violations ())

let test_disabled_is_silent () =
  Invariant.reset_counters ();
  Invariant.with_enabled false (fun () ->
      Invariant.require ~name:"unit.off" false (fun () ->
          Alcotest.fail "detail thunk must not run when disabled"));
  Alcotest.(check int) "nothing checked" 0 (Invariant.checks_run ());
  Alcotest.(check bool) "re-enabled after with_enabled" true
    (Invariant.enabled ())

let test_warn_mode_does_not_raise () =
  Invariant.reset_counters ();
  Invariant.set_mode Invariant.Warn;
  Fun.protect
    ~finally:(fun () -> Invariant.set_mode Invariant.Raise)
    (fun () ->
      Invariant.require ~name:"unit.warn" false (fun () -> "warned");
      Alcotest.(check int) "violation still counted" 1
        (Invariant.violations ()))

(* ----- end-to-end: a violated invariant inside the stack is caught ----- *)

(* A congestion controller whose window is below one segment violates the
   cwnd >= 1 MSS invariant the paper's schemes all maintain; Tcp's send
   path asserts it. *)
let broken_cc : Cc.factory =
 fun _view ->
  {
    Cc.name = "broken";
    cwnd = (fun () -> 0.5);
    on_ack = (fun ~ack:_ ~newly_acked:_ ~ce_count:_ -> ());
    on_ecn = (fun ~count:_ -> ());
    on_fast_retransmit = (fun () -> ());
    on_timeout = (fun () -> ());
    in_slow_start = (fun () -> false);
    take_cwr = Cc.nop_take_cwr;
  }

let rig () =
  let sim = Sim.create ~config:{ Sim.default_config with seed = 3 } () in
  let net = Net.Network.create sim in
  let disc () =
    Net.Queue_disc.create ~policy:Net.Queue_disc.Droptail ~capacity_pkts:20
  in
  let tb =
    Testbed.create ~net ~n_left:1 ~n_right:1
      ~bottlenecks:
        [ { Testbed.rate = Net.Units.mbps 100.; delay = Time.us 50; disc } ]
      ()
  in
  (net, tb)

let start_broken_flow (net, tb) =
  ignore
    (Tcp.create ~net ~flow:1 ~subflow:0
       ~src:(Testbed.left_id tb 0)
       ~dst:(Testbed.right_id tb 0)
       ~path:0 ~cc:broken_cc
       ~source:(Tcp.Limited (ref 10))
       ())

let test_sub_mss_cwnd_caught () =
  let caught =
    try
      start_broken_flow (rig ());
      None
    with Invariant.Violation msg -> Some msg
  in
  match caught with
  | None -> Alcotest.fail "cwnd < 1 MSS was not caught"
  | Some msg ->
    Alcotest.(check bool) "names the cwnd invariant" true
      (contains ~sub:"tcp.cwnd-at-least-one-mss" msg)

let test_sub_mss_cwnd_ignored_when_disabled () =
  Invariant.with_enabled false (fun () -> start_broken_flow (rig ()))

let test_two_sims_keep_their_own_invariant_flag () =
  (* Regression: Sim.create used to write config.invariants straight into
     the process-global toggle, so creating a second sim silently
     reconfigured checking for every live sim. The flag is now
     snapshotted per-sim and re-asserted at dispatch. *)
  let saved = Invariant.enabled () in
  Fun.protect
    ~finally:(fun () -> Invariant.set_enabled saved)
    (fun () ->
      let sim_off =
        Sim.create
          ~config:{ Sim.default_config with invariants = Some false }
          ()
      in
      (* this second create flips the global toggle on *)
      let sim_on =
        Sim.create
          ~config:{ Sim.default_config with invariants = Some true }
          ()
      in
      let off_ran = ref false in
      Sim.at sim_off 10 (fun () ->
          Invariant.require ~name:"two-sims.off" false (fun () ->
              "must be ignored: checks are off for this sim");
          off_ran := true);
      (* must not raise even though sim_on switched the global on *)
      Sim.run sim_off;
      Alcotest.(check bool) "first sim dispatched with checks off" true
        !off_ran;
      let caught = ref None in
      Sim.at sim_on 10 (fun () ->
          Invariant.require ~name:"two-sims.on" false (fun () -> "caught"));
      (try Sim.run sim_on with Invariant.Violation msg -> caught := Some msg);
      match !caught with
      | None -> Alcotest.fail "second sim must still enforce its checks"
      | Some msg ->
        Alcotest.(check bool) "names the invariant" true
          (contains ~sub:"two-sims.on" msg))

let suite =
  [
    Alcotest.test_case "require true counts, does not raise" `Quick
      test_require_passes;
    Alcotest.test_case "require false raises Violation" `Quick
      test_require_raises;
    Alcotest.test_case "disabled checker is silent and free" `Quick
      test_disabled_is_silent;
    Alcotest.test_case "Warn mode logs instead of raising" `Quick
      test_warn_mode_does_not_raise;
    Alcotest.test_case "sub-MSS cwnd caught in Tcp send path" `Quick
      test_sub_mss_cwnd_caught;
    Alcotest.test_case "disabled checker lets sub-MSS cwnd pass" `Quick
      test_sub_mss_cwnd_ignored_when_disabled;
    Alcotest.test_case "two sims keep their own invariant flag" `Quick
      test_two_sims_keep_their_own_invariant_flag;
  ]
