module Pareto = Xmp_workload.Pareto
module Scheme = Xmp_workload.Scheme
module Driver = Xmp_workload.Driver
module Metrics = Xmp_workload.Metrics
module Time = Xmp_engine.Time
module Distribution = Xmp_stats.Distribution

(* ----- Pareto ----- *)

let test_pareto_scale () =
  let p = Pareto.create ~shape:1.5 ~mean:300. ~cap:1200. in
  Alcotest.(check (float 1e-9)) "x_m = mean/3" 100. (Pareto.scale p)

let test_pareto_validation () =
  Alcotest.check_raises "shape <= 1"
    (Invalid_argument "Pareto.create: shape must exceed 1") (fun () ->
      ignore (Pareto.create ~shape:1. ~mean:10. ~cap:20.));
  Alcotest.check_raises "cap below mean"
    (Invalid_argument "Pareto.create: mean/cap") (fun () ->
      ignore (Pareto.create ~shape:2. ~mean:10. ~cap:5.))

let prop_pareto_bounds =
  QCheck.Test.make ~count:500 ~name:"pareto samples within [x_m, cap]"
    QCheck.(int_bound 10_000)
    (fun seed ->
      let p = Pareto.create ~shape:1.5 ~mean:300. ~cap:1200. in
      let rng = Random.State.make [| seed |] in
      let x = Pareto.sample p rng in
      x >= Pareto.scale p -. 1e-9 && x <= 1200. +. 1e-9)

let test_pareto_mean_reasonable () =
  let p = Pareto.create ~shape:1.5 ~mean:300. ~cap:100_000. in
  let rng = Random.State.make [| 7 |] in
  let n = 20_000 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. Pareto.sample p rng
  done;
  let mean = !sum /. float_of_int n in
  (* heavy tail: generous tolerance, but the right ballpark *)
  Alcotest.(check bool) "empirical mean near 300" true
    (mean > 180. && mean < 420.)

let test_pareto_sample_int () =
  let p = Pareto.create ~shape:1.5 ~mean:2. ~cap:4. in
  let rng = Random.State.make [| 3 |] in
  for _ = 1 to 100 do
    Alcotest.(check bool) "at least 1" true (Pareto.sample_int p rng >= 1)
  done

(* ----- Scheme ----- *)

let test_scheme_names () =
  Alcotest.(check string) "dctcp" "DCTCP" (Scheme.name Scheme.dctcp);
  Alcotest.(check string) "tcp" "TCP" (Scheme.name Scheme.reno);
  Alcotest.(check string) "lia" "LIA-4" (Scheme.name (Scheme.lia 4));
  Alcotest.(check string) "xmp" "XMP-2" (Scheme.name (Scheme.xmp 2));
  Alcotest.(check string) "olia" "OLIA-3" (Scheme.name (Scheme.olia 3));
  Alcotest.(check string) "balia" "BALIA-2" (Scheme.name (Scheme.balia 2));
  Alcotest.(check string) "veno" "VENO-2" (Scheme.name (Scheme.veno 2));
  Alcotest.(check string) "amp" "AMP-4" (Scheme.name (Scheme.amp 4));
  (* non-default tunables print in a fixed key order; defaults print
     nothing, so names stay canonical *)
  Alcotest.(check string) "xmp tuned" "XMP-2:beta=6,k=20"
    (Scheme.name (Scheme.xmp ~beta:6 ~k:20 2));
  Alcotest.(check string) "xmp k only" "XMP-4:k=10"
    (Scheme.name (Scheme.xmp ~k:10 4));
  Alcotest.(check string) "veno tuned" "VENO-2:beta=2.5"
    (Scheme.name (Scheme.veno ~beta:2.5 2));
  Alcotest.(check string) "veno whole beta" "VENO-2:beta=4"
    (Scheme.name (Scheme.veno ~beta:4. 2));
  Alcotest.(check string) "amp classic" "AMP-2:ect=classic"
    (Scheme.name (Scheme.amp ~ect:Scheme.Classic 2));
  Alcotest.(check string) "amp counted is default" "AMP-2"
    (Scheme.name (Scheme.amp ~ect:Scheme.Counted 2))

let test_scheme_parse () =
  Alcotest.(check bool) "roundtrip" true
    (List.for_all
       (fun s -> Scheme.of_name (Scheme.name s) = Some s)
       [
         Scheme.dctcp; Scheme.reno; Scheme.lia 2; Scheme.olia 8; Scheme.xmp 1;
         Scheme.balia 2; Scheme.veno 3; Scheme.amp 2;
       ]);
  Alcotest.(check bool) "case insensitive" true
    (Scheme.of_name "xmp-4" = Some (Scheme.xmp 4));
  Alcotest.(check bool) "balia case" true
    (Scheme.of_name "balia-2" = Some (Scheme.balia 2));
  Alcotest.(check bool) "reno alias" true (Scheme.of_name "reno" = Some Scheme.reno);
  Alcotest.(check bool) "garbage" true (Scheme.of_name "QUIC" = None);
  Alcotest.(check bool) "bad count" true (Scheme.of_name "XMP-0" = None);
  (* the suffix must be a bare decimal: int_of_string's hex, sign and
     underscore spellings — and trailing garbage — are all rejected *)
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (Printf.sprintf "reject %S" s)
        true
        (Scheme.of_name s = None))
    [
      "XMP-2x"; "XMP-0x2"; "XMP-2_"; "XMP-+2"; "XMP--2"; "LIA-2 3"; "VENO-";
      "AMP-2.0"; "BALIA"; "VENO-1e1";
    ]

let test_scheme_tunable_grammar () =
  let parses s t =
    Alcotest.(check bool)
      (Printf.sprintf "parse %S" s)
      true
      (Scheme.of_name s = Some t)
  in
  parses "XMP-2:beta=6,k=20" (Scheme.xmp ~beta:6 ~k:20 2);
  parses "xmp-2:K=20,BETA=6" (Scheme.xmp ~beta:6 ~k:20 2);
  parses "VENO-2:beta=2.5" (Scheme.veno ~beta:2.5 2);
  parses "veno-4:beta=3" (Scheme.veno ~beta:3. 4);
  parses "AMP-2:ect=classic" (Scheme.amp ~ect:Scheme.Classic 2);
  (* keys must belong to the scheme, appear once, and carry a value in
     range; the opts section must not be empty *)
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (Printf.sprintf "reject %S" s)
        true
        (Scheme.of_name s = None))
    [
      "XMP-2:"; "XMP-2:beta=6,beta=8"; "XMP-2:beta=1"; "XMP-2:beta=";
      "XMP-2:ect=classic"; "XMP-2:beta=6,"; "LIA-2:beta=6"; "VENO-2:k=10";
      "VENO-2:beta=0"; "VENO-2:beta=2.5.0"; "VENO-2:beta=1e1";
      "AMP-2:ect=counted2"; "AMP-2:ect=classic,ect=classic"; "DCTCP:k=10";
      "XMP-2:beta"; "XMP-2::beta=6";
    ];
  (* AMP's default echo mode spelled out parses to the same value the
     canonical (suffix-free) name denotes *)
  Alcotest.(check bool) "amp counted alias" true
    (Scheme.of_name "AMP-2:ect=classic" <> Scheme.of_name "AMP-2")

let test_scheme_tunables_thread () =
  let o = Scheme.default_overrides in
  (* AMP's ECT mode switches the transport's echo behaviour *)
  let counted = Scheme.tcp_config (Scheme.amp 2) o in
  let classic = Scheme.tcp_config (Scheme.amp ~ect:Scheme.Classic 2) o in
  Alcotest.(check bool) "amp counted echo" true
    (counted.Xmp_transport.Tcp.echo = Xmp_transport.Tcp.Counted None);
  Alcotest.(check bool) "amp classic echo" true
    (classic.Xmp_transport.Tcp.echo = Xmp_transport.Tcp.Classic
    && classic.Xmp_transport.Tcp.ect);
  (* XMP's k rides along for the fabric; only XMP carries one *)
  Alcotest.(check bool) "xmp k exposed" true
    (Scheme.marking_threshold (Scheme.xmp ~k:20 2) = Some 20
    && Scheme.marking_threshold (Scheme.xmp 2) = None
    && Scheme.marking_threshold Scheme.dctcp = None);
  (* constructors validate ranges *)
  List.iter
    (fun f ->
      Alcotest.(check bool) "constructor rejects" true
        (match f () with
        | exception Invalid_argument _ -> true
        | _ -> false))
    [
      (fun () -> Scheme.xmp ~beta:1 2);
      (fun () -> Scheme.xmp ~k:0 2);
      (fun () -> Scheme.veno ~beta:0. 2);
      (fun () -> Scheme.veno ~beta:1e-7 2);
      (fun () -> Scheme.lia 0);
    ]

let test_scheme_properties () =
  Alcotest.(check int) "dctcp single" 1 (Scheme.n_subflows Scheme.dctcp);
  Alcotest.(check int) "xmp-4" 4 (Scheme.n_subflows (Scheme.xmp 4));
  Alcotest.(check int) "amp-3" 3 (Scheme.n_subflows (Scheme.amp 3));
  Alcotest.(check bool) "ecn schemes" true
    (Scheme.uses_ecn Scheme.dctcp
    && Scheme.uses_ecn (Scheme.xmp 2)
    && Scheme.uses_ecn (Scheme.amp 2));
  Alcotest.(check bool) "loss schemes" true
    ((not (Scheme.uses_ecn Scheme.reno))
    && (not (Scheme.uses_ecn (Scheme.lia 2)))
    && (not (Scheme.uses_ecn (Scheme.balia 2)))
    && not (Scheme.uses_ecn (Scheme.veno 2)));
  Alcotest.(check bool) "multipath flag" true
    (Scheme.is_multipath (Scheme.lia 2) && not (Scheme.is_multipath Scheme.dctcp))

let test_scheme_config () =
  let o = Scheme.default_overrides in
  let xmp_cfg = Scheme.tcp_config (Scheme.xmp 2) o in
  Alcotest.(check bool) "xmp is ect" true xmp_cfg.Xmp_transport.Tcp.ect;
  Alcotest.(check bool) "xmp echo capped at 3" true
    (xmp_cfg.Xmp_transport.Tcp.echo = Xmp_transport.Tcp.Counted (Some 3));
  let dctcp_cfg = Scheme.tcp_config Scheme.dctcp o in
  Alcotest.(check bool) "dctcp echo exact" true
    (dctcp_cfg.Xmp_transport.Tcp.echo = Xmp_transport.Tcp.Counted None);
  let amp_cfg = Scheme.tcp_config (Scheme.amp 2) o in
  Alcotest.(check bool) "amp is ect with exact echo" true
    (amp_cfg.Xmp_transport.Tcp.ect
    && amp_cfg.Xmp_transport.Tcp.echo = Xmp_transport.Tcp.Counted None);
  let tcp_cfg = Scheme.tcp_config Scheme.reno o in
  Alcotest.(check bool) "tcp not ect" false tcp_cfg.Xmp_transport.Tcp.ect;
  Alcotest.(check bool) "balia and veno not ect" false
    ((Scheme.tcp_config (Scheme.balia 2) o).Xmp_transport.Tcp.ect
    || (Scheme.tcp_config (Scheme.veno 2) o).Xmp_transport.Tcp.ect);
  let custom = { o with Scheme.rto_min = Time.ms 10 } in
  Alcotest.(check int) "rto override" (Time.ms 10)
    (Scheme.tcp_config Scheme.reno custom).Xmp_transport.Tcp.rto_min

let prop_pick_paths_distinct =
  QCheck.Test.make ~count:300 ~name:"pick_paths: distinct, in range"
    QCheck.(triple (int_range 1 20) (int_range 1 10) (int_bound 10_000))
    (fun (available, wanted, seed) ->
      let rng = Random.State.make [| seed |] in
      let paths = Scheme.pick_paths ~rng ~available ~wanted in
      List.length paths = Stdlib.min wanted available
      && List.length (List.sort_uniq compare paths) = List.length paths
      && List.for_all (fun p -> p >= 0 && p < available) paths)

(* ----- Metrics ----- *)

let flow_record ?(scheme = Scheme.xmp 2) ?(locality = Xmp_net.Fat_tree.Inter_pod)
    ?(goodput = 5e8) flow =
  {
    Metrics.flow;
    scheme;
    src = 0;
    dst = 4;
    locality;
    size_segments = 100;
    started = 0;
    finished = Time.ms 10;
    goodput_bps = goodput;
    truncated = false;
  }

let test_metrics_goodput () =
  let m = Metrics.create ~rtt_subsample:1 in
  Metrics.record_flow m (flow_record ~goodput:4e8 1);
  Metrics.record_flow m (flow_record ~goodput:6e8 2);
  Alcotest.(check (float 1e-3)) "mean" 5e8 (Metrics.mean_goodput_bps m);
  Alcotest.(check int) "count" 2 (Metrics.n_completed_flows m)

let test_metrics_by_scheme () =
  let m = Metrics.create ~rtt_subsample:1 in
  Metrics.record_flow m (flow_record ~scheme:(Scheme.xmp 2) ~goodput:4e8 1);
  Metrics.record_flow m (flow_record ~scheme:(Scheme.lia 2) ~goodput:2e8 2);
  Alcotest.(check (float 1e-3)) "xmp" 4e8
    (Metrics.mean_goodput_bps_of_scheme m (Scheme.xmp 2));
  Alcotest.(check (float 1e-3)) "lia" 2e8
    (Metrics.mean_goodput_bps_of_scheme m (Scheme.lia 2));
  Alcotest.(check (float 1e-3)) "absent scheme" 0.
    (Metrics.mean_goodput_bps_of_scheme m Scheme.dctcp)

let test_metrics_rtt_subsampling () =
  let m = Metrics.create ~rtt_subsample:4 in
  for _ = 1 to 16 do
    Metrics.record_rtt m ~locality:Xmp_net.Fat_tree.Inner_rack (Time.us 100)
  done;
  match Metrics.rtts_by_locality m with
  | [ (loc, d) ] ->
    Alcotest.(check bool) "inner rack" true (loc = Xmp_net.Fat_tree.Inner_rack);
    Alcotest.(check int) "1 in 4 kept" 4 (Distribution.count d)
  | _ -> Alcotest.fail "expected one locality"

let test_metrics_jobs () =
  let m = Metrics.create ~rtt_subsample:1 in
  Metrics.record_job m (Time.ms 50);
  Metrics.record_job m (Time.ms 350);
  Alcotest.(check (float 1e-6)) "over 300" 0.5 (Metrics.jobs_over_ms m 300.);
  Alcotest.(check int) "count" 2 (Distribution.count (Metrics.job_times_ms m))

(* ----- Driver (mini end-to-end runs) ----- *)

let mini_config pattern scheme =
  {
    Driver.default_config with
    horizon = Time.ms 300;
    assignment = Driver.Uniform scheme;
    pattern;
  }

let small_permutation =
  Driver.Permutation { min_segments = 50; max_segments = 100 }

let small_random =
  Driver.Random_pattern
    { mean_segments = 60.; cap_segments = 200.; shape = 1.5; max_inbound = 4 }

let small_incast =
  Driver.Incast
    {
      jobs = 2;
      fanout = 8;
      request_segments = 2;
      response_segments = 45;
      bg_mean_segments = 60.;
      bg_cap_segments = 200.;
      bg_shape = 1.5;
    }

let test_driver_permutation () =
  let r = Driver.run (mini_config small_permutation (Scheme.xmp 2)) in
  let m = r.Driver.metrics in
  Alcotest.(check bool) "flows completed" true
    (Metrics.n_completed_flows m >= 16);
  Alcotest.(check bool) "goodput sane" true
    (Metrics.mean_goodput_bps m > 1e7 && Metrics.mean_goodput_bps m < 1e9);
  (* permutation: every host is a source of the first wave *)
  let srcs =
    List.sort_uniq compare
      (List.map (fun (f : Metrics.flow_record) -> f.src)
         (Metrics.completed_flows m))
  in
  Alcotest.(check int) "all 16 hosts sent" 16 (List.length srcs)

let test_driver_permutation_never_self () =
  let r = Driver.run (mini_config small_permutation Scheme.dctcp) in
  List.iter
    (fun (f : Metrics.flow_record) ->
      Alcotest.(check bool) "src <> dst" true (f.src <> f.dst))
    (Metrics.completed_flows r.Driver.metrics)

let test_driver_random_inbound_cap () =
  let r = Driver.run (mini_config small_random (Scheme.xmp 2)) in
  let m = r.Driver.metrics in
  Alcotest.(check bool) "flows completed" true
    (Metrics.n_completed_flows m > 16)

let test_driver_incast () =
  let r = Driver.run (mini_config small_incast Scheme.dctcp) in
  let m = r.Driver.metrics in
  Alcotest.(check bool) "jobs completed" true
    (Distribution.count (Metrics.job_times_ms m) > 0);
  (* background flows never share a rack *)
  List.iter
    (fun (f : Metrics.flow_record) ->
      Alcotest.(check bool) "not inner rack" true
        (f.locality <> Xmp_net.Fat_tree.Inner_rack))
    (Metrics.completed_flows m)

let test_driver_split_assignment () =
  let cfg =
    {
      (mini_config small_random (Scheme.xmp 2)) with
      Driver.assignment = Driver.Split (Scheme.xmp 2, Scheme.lia 2);
    }
  in
  let r = Driver.run cfg in
  let m = r.Driver.metrics in
  let schemes =
    List.sort_uniq compare
      (List.map (fun (f : Metrics.flow_record) -> f.scheme)
         (Metrics.completed_flows m))
  in
  Alcotest.(check int) "both schemes present" 2 (List.length schemes);
  (* even hosts run XMP, odd hosts run LIA *)
  List.iter
    (fun (f : Metrics.flow_record) ->
      let expect = if f.src mod 2 = 0 then Scheme.xmp 2 else Scheme.lia 2 in
      Alcotest.(check bool) "host parity assignment" true (f.scheme = expect))
    (Metrics.completed_flows m)

let test_driver_determinism () =
  let run () =
    let r = Driver.run (mini_config small_permutation (Scheme.xmp 2)) in
    ( Metrics.n_completed_flows r.Driver.metrics,
      r.Driver.events,
      Metrics.mean_goodput_bps r.Driver.metrics )
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "bit-identical reruns" true (a = b)

let test_driver_utilization () =
  let r = Driver.run (mini_config small_permutation (Scheme.xmp 4)) in
  let layers = Driver.utilization_by_layer r in
  Alcotest.(check int) "three layers" 3 (List.length layers);
  List.iter
    (fun (_, d) ->
      Alcotest.(check bool) "utilization within [0,1]" true
        (Distribution.min d >= 0. && Distribution.max d <= 1.0001))
    layers

let suite =
  [
    Alcotest.test_case "pareto scale" `Quick test_pareto_scale;
    Alcotest.test_case "pareto validation" `Quick test_pareto_validation;
    QCheck_alcotest.to_alcotest prop_pareto_bounds;
    Alcotest.test_case "pareto empirical mean" `Quick
      test_pareto_mean_reasonable;
    Alcotest.test_case "pareto integer samples" `Quick test_pareto_sample_int;
    Alcotest.test_case "scheme names" `Quick test_scheme_names;
    Alcotest.test_case "scheme parsing" `Quick test_scheme_parse;
    Alcotest.test_case "scheme tunable grammar" `Quick
      test_scheme_tunable_grammar;
    Alcotest.test_case "scheme tunables thread through" `Quick
      test_scheme_tunables_thread;
    Alcotest.test_case "scheme properties" `Quick test_scheme_properties;
    Alcotest.test_case "scheme transport configs" `Quick test_scheme_config;
    QCheck_alcotest.to_alcotest prop_pick_paths_distinct;
    Alcotest.test_case "metrics goodput" `Quick test_metrics_goodput;
    Alcotest.test_case "metrics by scheme" `Quick test_metrics_by_scheme;
    Alcotest.test_case "metrics rtt subsampling" `Quick
      test_metrics_rtt_subsampling;
    Alcotest.test_case "metrics jobs" `Quick test_metrics_jobs;
    Alcotest.test_case "driver permutation" `Slow test_driver_permutation;
    Alcotest.test_case "permutation never self" `Slow
      test_driver_permutation_never_self;
    Alcotest.test_case "driver random" `Slow test_driver_random_inbound_cap;
    Alcotest.test_case "driver incast" `Slow test_driver_incast;
    Alcotest.test_case "driver split assignment" `Slow
      test_driver_split_assignment;
    Alcotest.test_case "driver determinism" `Slow test_driver_determinism;
    Alcotest.test_case "driver utilization" `Slow test_driver_utilization;
  ]
