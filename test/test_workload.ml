module Pareto = Xmp_workload.Pareto
module Scheme = Xmp_workload.Scheme
module Driver = Xmp_workload.Driver
module Metrics = Xmp_workload.Metrics
module Flow_size = Xmp_workload.Flow_size
module Arrivals = Xmp_workload.Arrivals
module Open_loop = Xmp_workload.Open_loop
module Time = Xmp_engine.Time
module Distribution = Xmp_stats.Distribution

(* ----- Pareto ----- *)

let test_pareto_scale () =
  let p = Pareto.create ~shape:1.5 ~mean:300. ~cap:1200. in
  (* The unbounded-Pareto scale would be mean·(shape−1)/shape = 100; the
     bounded solve compensates for the capped tail, so the root sits
     strictly above that and below the cap. *)
  let x_m = Pareto.scale p in
  Alcotest.(check bool) "above unbounded scale" true (x_m > 100.);
  Alcotest.(check bool) "below cap" true (x_m < 1200.);
  (* Closed-form mean of the capped sampler at the solved scale must hit
     the configured mean: E[X] = 3·x_m − 2·x_m^1.5·cap^−0.5 for α=1.5. *)
  let analytic = (3. *. x_m) -. (2. *. (x_m ** 1.5) /. Float.sqrt 1200.) in
  Alcotest.(check (float 1e-6)) "capped mean solves to 300" 300. analytic;
  (* A cap far in the tail reduces to the unbounded formula. *)
  let loose = Pareto.create ~shape:1.5 ~mean:300. ~cap:1e12 in
  Alcotest.(check (float 1e-3)) "loose cap ~ unbounded" 100. (Pareto.scale loose)

let test_pareto_bounded_mean_statistical () =
  (* Tight cap (4× mean): the unbounded-scale formula would miss low by
     ~15% here; the bounded solve must land within ±2% over 100k draws. *)
  let p = Pareto.create ~shape:1.5 ~mean:300. ~cap:1200. in
  let rng = Random.State.make [| 42 |] in
  let n = 100_000 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. Pareto.sample p rng
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "capped empirical mean %.1f within 2%% of 300" mean)
    true
    (Float.abs (mean -. 300.) /. 300. < 0.02);
  (* Integer sampler: probabilistic rounding keeps the mean unbiased. *)
  let sum_int = ref 0 in
  for _ = 1 to n do
    sum_int := !sum_int + Pareto.sample_int p rng
  done;
  let mean_int = float_of_int !sum_int /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "integer empirical mean %.1f within 2%% of 300" mean_int)
    true
    (Float.abs (mean_int -. 300.) /. 300. < 0.02)

let test_pareto_validation () =
  Alcotest.check_raises "shape <= 1"
    (Invalid_argument "Pareto.create: shape must exceed 1") (fun () ->
      ignore (Pareto.create ~shape:1. ~mean:10. ~cap:20.));
  Alcotest.check_raises "cap below mean"
    (Invalid_argument "Pareto.create: mean/cap") (fun () ->
      ignore (Pareto.create ~shape:2. ~mean:10. ~cap:5.))

let prop_pareto_bounds =
  QCheck.Test.make ~count:500 ~name:"pareto samples within [x_m, cap]"
    QCheck.(int_bound 10_000)
    (fun seed ->
      let p = Pareto.create ~shape:1.5 ~mean:300. ~cap:1200. in
      let rng = Random.State.make [| seed |] in
      let x = Pareto.sample p rng in
      x >= Pareto.scale p -. 1e-9 && x <= 1200. +. 1e-9)

let test_pareto_mean_reasonable () =
  let p = Pareto.create ~shape:1.5 ~mean:300. ~cap:100_000. in
  let rng = Random.State.make [| 7 |] in
  let n = 20_000 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. Pareto.sample p rng
  done;
  let mean = !sum /. float_of_int n in
  (* heavy tail: generous tolerance, but the right ballpark *)
  Alcotest.(check bool) "empirical mean near 300" true
    (mean > 180. && mean < 420.)

let test_pareto_sample_int () =
  let p = Pareto.create ~shape:1.5 ~mean:2. ~cap:4. in
  let rng = Random.State.make [| 3 |] in
  for _ = 1 to 100 do
    Alcotest.(check bool) "at least 1" true (Pareto.sample_int p rng >= 1)
  done

(* ----- Scheme ----- *)

let test_scheme_names () =
  Alcotest.(check string) "dctcp" "DCTCP" (Scheme.name Scheme.dctcp);
  Alcotest.(check string) "tcp" "TCP" (Scheme.name Scheme.reno);
  Alcotest.(check string) "lia" "LIA-4" (Scheme.name (Scheme.lia 4));
  Alcotest.(check string) "xmp" "XMP-2" (Scheme.name (Scheme.xmp 2));
  Alcotest.(check string) "olia" "OLIA-3" (Scheme.name (Scheme.olia 3));
  Alcotest.(check string) "balia" "BALIA-2" (Scheme.name (Scheme.balia 2));
  Alcotest.(check string) "veno" "VENO-2" (Scheme.name (Scheme.veno 2));
  Alcotest.(check string) "amp" "AMP-4" (Scheme.name (Scheme.amp 4));
  (* non-default tunables print in a fixed key order; defaults print
     nothing, so names stay canonical *)
  Alcotest.(check string) "xmp tuned" "XMP-2:beta=6,k=20"
    (Scheme.name (Scheme.xmp ~beta:6 ~k:20 2));
  Alcotest.(check string) "xmp k only" "XMP-4:k=10"
    (Scheme.name (Scheme.xmp ~k:10 4));
  Alcotest.(check string) "veno tuned" "VENO-2:beta=2.5"
    (Scheme.name (Scheme.veno ~beta:2.5 2));
  Alcotest.(check string) "veno whole beta" "VENO-2:beta=4"
    (Scheme.name (Scheme.veno ~beta:4. 2));
  Alcotest.(check string) "amp classic" "AMP-2:ect=classic"
    (Scheme.name (Scheme.amp ~ect:Scheme.Classic 2));
  Alcotest.(check string) "amp counted is default" "AMP-2"
    (Scheme.name (Scheme.amp ~ect:Scheme.Counted 2));
  (* the generic RTO keys print after the kind-specific ones, in whole
     nanoseconds *)
  Alcotest.(check string) "rto floor" "XMP-2:rtomin=1000000"
    (Scheme.name (Scheme.with_rto ~rto_min:(Time.ms 1) (Scheme.xmp 2)));
  Alcotest.(check string) "rto both, after kind opts"
    "XMP-2:beta=6,k=20,rtomin=1000000,rtomax=60000000"
    (Scheme.name
       (Scheme.with_rto ~rto_min:(Time.ms 1) ~rto_max:(Time.ms 60)
          (Scheme.xmp ~beta:6 ~k:20 2)));
  Alcotest.(check string) "rto on a single-path scheme"
    "DCTCP:rtomax=200000000"
    (Scheme.name (Scheme.with_rto ~rto_max:(Time.ms 200) Scheme.dctcp))

let test_scheme_parse () =
  Alcotest.(check bool) "roundtrip" true
    (List.for_all
       (fun s -> Scheme.of_name (Scheme.name s) = Some s)
       [
         Scheme.dctcp; Scheme.reno; Scheme.lia 2; Scheme.olia 8; Scheme.xmp 1;
         Scheme.balia 2; Scheme.veno 3; Scheme.amp 2;
       ]);
  Alcotest.(check bool) "case insensitive" true
    (Scheme.of_name "xmp-4" = Some (Scheme.xmp 4));
  Alcotest.(check bool) "balia case" true
    (Scheme.of_name "balia-2" = Some (Scheme.balia 2));
  Alcotest.(check bool) "reno alias" true (Scheme.of_name "reno" = Some Scheme.reno);
  Alcotest.(check bool) "garbage" true (Scheme.of_name "QUIC" = None);
  Alcotest.(check bool) "bad count" true (Scheme.of_name "XMP-0" = None);
  (* the suffix must be a bare decimal: int_of_string's hex, sign and
     underscore spellings — and trailing garbage — are all rejected *)
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (Printf.sprintf "reject %S" s)
        true
        (Scheme.of_name s = None))
    [
      "XMP-2x"; "XMP-0x2"; "XMP-2_"; "XMP-+2"; "XMP--2"; "LIA-2 3"; "VENO-";
      "AMP-2.0"; "BALIA"; "VENO-1e1";
    ]

let test_scheme_tunable_grammar () =
  let parses s t =
    Alcotest.(check bool)
      (Printf.sprintf "parse %S" s)
      true
      (Scheme.of_name s = Some t)
  in
  parses "XMP-2:beta=6,k=20" (Scheme.xmp ~beta:6 ~k:20 2);
  parses "xmp-2:K=20,BETA=6" (Scheme.xmp ~beta:6 ~k:20 2);
  parses "VENO-2:beta=2.5" (Scheme.veno ~beta:2.5 2);
  parses "veno-4:beta=3" (Scheme.veno ~beta:3. 4);
  parses "AMP-2:ect=classic" (Scheme.amp ~ect:Scheme.Classic 2);
  (* keys must belong to the scheme, appear once, and carry a value in
     range; the opts section must not be empty *)
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (Printf.sprintf "reject %S" s)
        true
        (Scheme.of_name s = None))
    [
      "XMP-2:"; "XMP-2:beta=6,beta=8"; "XMP-2:beta=1"; "XMP-2:beta=";
      "XMP-2:ect=classic"; "XMP-2:beta=6,"; "LIA-2:beta=6"; "VENO-2:k=10";
      "VENO-2:beta=0"; "VENO-2:beta=2.5.0"; "VENO-2:beta=1e1";
      "AMP-2:ect=counted2"; "AMP-2:ect=classic,ect=classic"; "DCTCP:k=10";
      "XMP-2:beta"; "XMP-2::beta=6";
    ];
  (* AMP's default echo mode spelled out parses to the same value the
     canonical (suffix-free) name denotes *)
  Alcotest.(check bool) "amp counted alias" true
    (Scheme.of_name "AMP-2:ect=classic" <> Scheme.of_name "AMP-2");
  (* the generic RTO keys parse on any kind and round-trip exactly *)
  parses "XMP-2:rtomin=1000000"
    (Scheme.with_rto ~rto_min:(Time.ms 1) (Scheme.xmp 2));
  parses "dctcp:RTOMAX=200000000"
    (Scheme.with_rto ~rto_max:(Time.ms 200) Scheme.dctcp);
  parses "LIA-2:rtomin=40260000,rtomax=60000000000"
    (Scheme.with_rto ~rto_min:40_260_000 ~rto_max:(Time.sec 60.)
       (Scheme.lia 2));
  (* a floor above the ceiling, zero/negative values, duplicates, and
     fractional nanoseconds are all rejected *)
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (Printf.sprintf "reject %S" s)
        true
        (Scheme.of_name s = None))
    [
      "XMP-2:rtomin=2000000,rtomax=1000000"; "XMP-2:rtomin=0";
      "XMP-2:rtomax=-1"; "XMP-2:rtomin=1,rtomin=2"; "XMP-2:rtomin=1.5";
    ]

let test_scheme_tunables_thread () =
  let o = Scheme.default_overrides in
  (* AMP's ECT mode switches the transport's echo behaviour *)
  let counted = Scheme.tcp_config (Scheme.amp 2) o in
  let classic = Scheme.tcp_config (Scheme.amp ~ect:Scheme.Classic 2) o in
  Alcotest.(check bool) "amp counted echo" true
    (counted.Xmp_transport.Tcp.echo = Xmp_transport.Tcp.Counted None);
  Alcotest.(check bool) "amp classic echo" true
    (classic.Xmp_transport.Tcp.echo = Xmp_transport.Tcp.Classic
    && classic.Xmp_transport.Tcp.ect);
  (* XMP's k rides along for the fabric; only XMP carries one *)
  Alcotest.(check bool) "xmp k exposed" true
    (Scheme.marking_threshold (Scheme.xmp ~k:20 2) = Some 20
    && Scheme.marking_threshold (Scheme.xmp 2) = None
    && Scheme.marking_threshold Scheme.dctcp = None);
  (* constructors validate ranges *)
  List.iter
    (fun f ->
      Alcotest.(check bool) "constructor rejects" true
        (match f () with
        | exception Invalid_argument _ -> true
        | _ -> false))
    [
      (fun () -> Scheme.xmp ~beta:1 2);
      (fun () -> Scheme.xmp ~k:0 2);
      (fun () -> Scheme.veno ~beta:0. 2);
      (fun () -> Scheme.veno ~beta:1e-7 2);
      (fun () -> Scheme.lia 0);
    ]

let test_scheme_properties () =
  Alcotest.(check int) "dctcp single" 1 (Scheme.n_subflows Scheme.dctcp);
  Alcotest.(check int) "xmp-4" 4 (Scheme.n_subflows (Scheme.xmp 4));
  Alcotest.(check int) "amp-3" 3 (Scheme.n_subflows (Scheme.amp 3));
  Alcotest.(check bool) "ecn schemes" true
    (Scheme.uses_ecn Scheme.dctcp
    && Scheme.uses_ecn (Scheme.xmp 2)
    && Scheme.uses_ecn (Scheme.amp 2));
  Alcotest.(check bool) "loss schemes" true
    ((not (Scheme.uses_ecn Scheme.reno))
    && (not (Scheme.uses_ecn (Scheme.lia 2)))
    && (not (Scheme.uses_ecn (Scheme.balia 2)))
    && not (Scheme.uses_ecn (Scheme.veno 2)));
  Alcotest.(check bool) "multipath flag" true
    (Scheme.is_multipath (Scheme.lia 2) && not (Scheme.is_multipath Scheme.dctcp))

let test_scheme_config () =
  let o = Scheme.default_overrides in
  let xmp_cfg = Scheme.tcp_config (Scheme.xmp 2) o in
  Alcotest.(check bool) "xmp is ect" true xmp_cfg.Xmp_transport.Tcp.ect;
  Alcotest.(check bool) "xmp echo capped at 3" true
    (xmp_cfg.Xmp_transport.Tcp.echo = Xmp_transport.Tcp.Counted (Some 3));
  let dctcp_cfg = Scheme.tcp_config Scheme.dctcp o in
  Alcotest.(check bool) "dctcp echo exact" true
    (dctcp_cfg.Xmp_transport.Tcp.echo = Xmp_transport.Tcp.Counted None);
  let amp_cfg = Scheme.tcp_config (Scheme.amp 2) o in
  Alcotest.(check bool) "amp is ect with exact echo" true
    (amp_cfg.Xmp_transport.Tcp.ect
    && amp_cfg.Xmp_transport.Tcp.echo = Xmp_transport.Tcp.Counted None);
  let tcp_cfg = Scheme.tcp_config Scheme.reno o in
  Alcotest.(check bool) "tcp not ect" false tcp_cfg.Xmp_transport.Tcp.ect;
  Alcotest.(check bool) "balia and veno not ect" false
    ((Scheme.tcp_config (Scheme.balia 2) o).Xmp_transport.Tcp.ect
    || (Scheme.tcp_config (Scheme.veno 2) o).Xmp_transport.Tcp.ect);
  let custom = { o with Scheme.rto_min = Time.ms 10 } in
  Alcotest.(check int) "rto override" (Time.ms 10)
    (Scheme.tcp_config Scheme.reno custom).Xmp_transport.Tcp.rto_min

let prop_pick_paths_distinct =
  QCheck.Test.make ~count:300 ~name:"pick_paths: distinct, in range"
    QCheck.(triple (int_range 1 20) (int_range 1 10) (int_bound 10_000))
    (fun (available, wanted, seed) ->
      let rng = Random.State.make [| seed |] in
      let paths = Scheme.pick_paths ~rng ~available ~wanted in
      List.length paths = Stdlib.min wanted available
      && List.length (List.sort_uniq compare paths) = List.length paths
      && List.for_all (fun p -> p >= 0 && p < available) paths)

(* ----- Metrics ----- *)

let flow_record ?(scheme = Scheme.xmp 2) ?(locality = Xmp_net.Fat_tree.Inter_pod)
    ?(goodput = 5e8) flow =
  {
    Metrics.flow;
    scheme;
    src = 0;
    dst = 4;
    locality;
    size_segments = 100;
    started = 0;
    finished = Time.ms 10;
    goodput_bps = goodput;
    truncated = false;
  }

let test_metrics_goodput () =
  let m = Metrics.create ~keep_flows:true ~rtt_subsample:1 () in
  Metrics.record_flow m (flow_record ~goodput:4e8 1);
  Metrics.record_flow m (flow_record ~goodput:6e8 2);
  Alcotest.(check (float 1e-3)) "mean" 5e8 (Metrics.mean_goodput_bps m);
  Alcotest.(check int) "count" 2 (Metrics.n_completed_flows m)

let test_metrics_by_scheme () =
  let m = Metrics.create ~keep_flows:true ~rtt_subsample:1 () in
  Metrics.record_flow m (flow_record ~scheme:(Scheme.xmp 2) ~goodput:4e8 1);
  Metrics.record_flow m (flow_record ~scheme:(Scheme.lia 2) ~goodput:2e8 2);
  Alcotest.(check (float 1e-3)) "xmp" 4e8
    (Metrics.mean_goodput_bps_of_scheme m (Scheme.xmp 2));
  Alcotest.(check (float 1e-3)) "lia" 2e8
    (Metrics.mean_goodput_bps_of_scheme m (Scheme.lia 2));
  Alcotest.(check (float 1e-3)) "absent scheme" 0.
    (Metrics.mean_goodput_bps_of_scheme m Scheme.dctcp)

let test_metrics_rtt_subsampling () =
  let m = Metrics.create ~keep_flows:true ~rtt_subsample:4 () in
  for _ = 1 to 16 do
    Metrics.record_rtt m ~locality:Xmp_net.Fat_tree.Inner_rack (Time.us 100)
  done;
  match Metrics.rtts_by_locality m with
  | [ (loc, d) ] ->
    Alcotest.(check bool) "inner rack" true (loc = Xmp_net.Fat_tree.Inner_rack);
    Alcotest.(check int) "1 in 4 kept" 4 (Distribution.count d)
  | _ -> Alcotest.fail "expected one locality"

let test_metrics_jobs () =
  let m = Metrics.create ~keep_flows:true ~rtt_subsample:1 () in
  Metrics.record_job m (Time.ms 50);
  Metrics.record_job m (Time.ms 350);
  Alcotest.(check (float 1e-6)) "over 300" 0.5 (Metrics.jobs_over_ms m 300.);
  Alcotest.(check int) "count" 2 (Distribution.count (Metrics.job_times_ms m))

(* ----- Driver (mini end-to-end runs) ----- *)

let mini_config pattern scheme =
  {
    Driver.default_config with
    horizon = Time.ms 300;
    assignment = Driver.Uniform scheme;
    pattern;
  }

let small_permutation =
  Driver.Permutation { min_segments = 50; max_segments = 100 }

let small_random =
  Driver.Random_pattern
    { mean_segments = 60.; cap_segments = 200.; shape = 1.5; max_inbound = 4 }

let small_incast =
  Driver.Incast
    {
      jobs = 2;
      fanout = 8;
      request_segments = 2;
      response_segments = 45;
      bg_mean_segments = 60.;
      bg_cap_segments = 200.;
      bg_shape = 1.5;
    }

let test_driver_permutation () =
  let r = Driver.run (mini_config small_permutation (Scheme.xmp 2)) in
  let m = r.Driver.metrics in
  Alcotest.(check bool) "flows completed" true
    (Metrics.n_completed_flows m >= 16);
  Alcotest.(check bool) "goodput sane" true
    (Metrics.mean_goodput_bps m > 1e7 && Metrics.mean_goodput_bps m < 1e9);
  (* permutation: every host is a source of the first wave *)
  let srcs =
    List.sort_uniq compare
      (List.map (fun (f : Metrics.flow_record) -> f.src)
         (Metrics.completed_flows m))
  in
  Alcotest.(check int) "all 16 hosts sent" 16 (List.length srcs)

let test_driver_permutation_never_self () =
  let r = Driver.run (mini_config small_permutation Scheme.dctcp) in
  List.iter
    (fun (f : Metrics.flow_record) ->
      Alcotest.(check bool) "src <> dst" true (f.src <> f.dst))
    (Metrics.completed_flows r.Driver.metrics)

let test_driver_random_inbound_cap () =
  let r = Driver.run (mini_config small_random (Scheme.xmp 2)) in
  let m = r.Driver.metrics in
  Alcotest.(check bool) "flows completed" true
    (Metrics.n_completed_flows m > 16)

let test_driver_incast () =
  let r = Driver.run (mini_config small_incast Scheme.dctcp) in
  let m = r.Driver.metrics in
  Alcotest.(check bool) "jobs completed" true
    (Distribution.count (Metrics.job_times_ms m) > 0);
  (* background flows never share a rack *)
  List.iter
    (fun (f : Metrics.flow_record) ->
      Alcotest.(check bool) "not inner rack" true
        (f.locality <> Xmp_net.Fat_tree.Inner_rack))
    (Metrics.completed_flows m)

let test_driver_split_assignment () =
  let cfg =
    {
      (mini_config small_random (Scheme.xmp 2)) with
      Driver.assignment = Driver.Split (Scheme.xmp 2, Scheme.lia 2);
    }
  in
  let r = Driver.run cfg in
  let m = r.Driver.metrics in
  let schemes =
    List.sort_uniq compare
      (List.map (fun (f : Metrics.flow_record) -> f.scheme)
         (Metrics.completed_flows m))
  in
  Alcotest.(check int) "both schemes present" 2 (List.length schemes);
  (* even hosts run XMP, odd hosts run LIA *)
  List.iter
    (fun (f : Metrics.flow_record) ->
      let expect = if f.src mod 2 = 0 then Scheme.xmp 2 else Scheme.lia 2 in
      Alcotest.(check bool) "host parity assignment" true (f.scheme = expect))
    (Metrics.completed_flows m)

let test_driver_determinism () =
  let run () =
    let r = Driver.run (mini_config small_permutation (Scheme.xmp 2)) in
    ( Metrics.n_completed_flows r.Driver.metrics,
      r.Driver.events,
      Metrics.mean_goodput_bps r.Driver.metrics )
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "bit-identical reruns" true (a = b)

let test_driver_utilization () =
  let r = Driver.run (mini_config small_permutation (Scheme.xmp 4)) in
  let layers = Driver.utilization_by_layer r in
  Alcotest.(check int) "three layers" 3 (List.length layers);
  List.iter
    (fun (_, d) ->
      Alcotest.(check bool) "utilization within [0,1]" true
        (Distribution.min d >= 0. && Distribution.max d <= 1.0001))
    layers

(* ----- Flow_size ----- *)

let test_flow_size_validation () =
  Alcotest.check_raises "empty" (Invalid_argument "Flow_size.of_points: empty")
    (fun () -> ignore (Flow_size.of_points ~name:"x" []));
  Alcotest.check_raises "last prob"
    (Invalid_argument "Flow_size.of_points: last probability must be 1")
    (fun () -> ignore (Flow_size.of_points ~name:"x" [ (1., 0.5) ]));
  Alcotest.check_raises "decreasing sizes"
    (Invalid_argument "Flow_size.of_points: points must be nondecreasing")
    (fun () ->
      ignore (Flow_size.of_points ~name:"x" [ (5., 0.1); (2., 1.) ]));
  Alcotest.check_raises "sub-segment size"
    (Invalid_argument "Flow_size.of_points: sizes must be at least one segment")
    (fun () -> ignore (Flow_size.of_points ~name:"x" [ (0.2, 1.) ]))

let test_flow_size_sampling () =
  let rng = Random.State.make [| 17 |] in
  let n = 50_000 in
  let sum = ref 0. in
  for _ = 1 to n do
    let s = Flow_size.sample Flow_size.web_search rng in
    Alcotest.(check bool) "within table range" true (s >= 1 && s <= 20_000);
    sum := !sum +. float_of_int s
  done;
  let mean = !sum /. float_of_int n in
  let expect = Flow_size.mean_segments Flow_size.web_search in
  Alcotest.(check bool)
    (Printf.sprintf "empirical mean %.1f within 5%% of %.1f" mean expect)
    true
    (Float.abs (mean -. expect) /. expect < 0.05);
  (* data mining: half the mass is a point mass at one segment, and
     nearest-segment rounding pulls the first half of the 1→2 knot
     interval down to 1 as well, so the expected fraction is 0.55 *)
  let ones = ref 0 in
  for _ = 1 to n do
    if Flow_size.sample Flow_size.data_mining rng = 1 then incr ones
  done;
  let frac = float_of_int !ones /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "single-segment fraction %.3f near 0.55" frac)
    true
    (frac > 0.52 && frac < 0.58)

let test_flow_size_scaled () =
  (* no knot hits the ≥1-segment clamp at ×2, so the mean is exactly
     linear in the factor *)
  let m = Flow_size.mean_segments Flow_size.web_search in
  let m2 = Flow_size.mean_segments (Flow_size.scaled Flow_size.web_search 2.) in
  Alcotest.(check (float 1e-9)) "mean scales linearly" (2. *. m) m2;
  Alcotest.check_raises "factor must be positive"
    (Invalid_argument "Flow_size.scaled: factor") (fun () ->
      ignore (Flow_size.scaled Flow_size.web_search 0.))

let test_flow_size_of_file () =
  let path = Filename.temp_file "xmp_cdf" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "# tiny CDF\n1 0\n10 0.5\n\n100 1\n";
      close_out oc;
      let t = Flow_size.of_file path in
      (* trapezoid: 0.5·(1+10)/2 + 0.5·(10+100)/2 = 30.25 *)
      Alcotest.(check (float 1e-9)) "mean from file" 30.25
        (Flow_size.mean_segments t);
      let rng = Random.State.make [| 5 |] in
      for _ = 1 to 1000 do
        let s = Flow_size.sample t rng in
        Alcotest.(check bool) "file sample in range" true (s >= 1 && s <= 100)
      done);
  Alcotest.(check bool) "malformed file raises" true
    (let bad = Filename.temp_file "xmp_cdf" ".txt" in
     Fun.protect
       ~finally:(fun () -> Sys.remove bad)
       (fun () ->
         let oc = open_out bad in
         output_string oc "1 0 extra\n";
         close_out oc;
         match Flow_size.of_file bad with
         | _ -> false
         | exception Invalid_argument _ -> true))

(* ----- Arrivals ----- *)

let test_poisson_interarrivals () =
  (* One host at 50k flows/s over 2 simulated seconds: the exponential
     gaps must show the Poisson signature — mean 20 µs and a coefficient
     of variation of 1 — within statistical tolerance. *)
  let rate = 50_000. in
  let t = Arrivals.create ~seed:9 ~hosts:1 ~rate in
  let times = ref [] in
  let n = ref 0 in
  let next =
    Arrivals.until t ~target:(Time.sec 2.) ~f:(fun ~host:_ ~at ~rng:_ ->
        times := at :: !times;
        incr n)
  in
  Alcotest.(check bool) "next beyond target" true
    (Time.compare next (Time.sec 2.) > 0);
  let times = Array.of_list (List.rev !times) in
  let count = Array.length times in
  Alcotest.(check bool)
    (Printf.sprintf "arrival count %d near 100k" count)
    true
    (count > 97_000 && count < 103_000);
  let gaps =
    Array.init count (fun i ->
        let prev = if i = 0 then Time.zero else times.(i - 1) in
        Time.to_float_s (Time.sub times.(i) prev))
  in
  let mean = Array.fold_left ( +. ) 0. gaps /. float_of_int count in
  let var =
    Array.fold_left (fun acc g -> acc +. ((g -. mean) ** 2.)) 0. gaps
    /. float_of_int count
  in
  let cv = Float.sqrt var /. mean in
  Alcotest.(check bool)
    (Printf.sprintf "mean gap %.2fus near 20us" (mean *. 1e6))
    true
    (Float.abs (mean -. (1. /. rate)) *. rate < 0.02);
  Alcotest.(check bool)
    (Printf.sprintf "coefficient of variation %.3f near 1" cv)
    true
    (Float.abs (cv -. 1.) < 0.02)

let test_arrivals_per_host_streams () =
  (* Host 0's schedule is a function of (seed, rate) alone: adding more
     hosts must not perturb it — the property that keeps generated
     workloads identical across shard/job layouts. *)
  let collect ~hosts =
    let t = Arrivals.create ~seed:3 ~hosts ~rate:20_000. in
    let acc = ref [] in
    ignore
      (Arrivals.until t ~target:(Time.ms 50) ~f:(fun ~host ~at ~rng:_ ->
           if host = 0 then acc := at :: !acc));
    List.rev !acc
  in
  let alone = collect ~hosts:1 in
  let crowded = collect ~hosts:8 in
  Alcotest.(check bool) "non-trivial schedule" true (List.length alone > 100);
  Alcotest.(check bool) "host-0 schedule independent of host count" true
    (alone = crowded);
  (* pops arrive in nondecreasing time order *)
  let t = Arrivals.create ~seed:3 ~hosts:8 ~rate:20_000. in
  let last = ref Time.zero in
  ignore
    (Arrivals.until t ~target:(Time.ms 20) ~f:(fun ~host:_ ~at ~rng:_ ->
         Alcotest.(check bool) "nondecreasing" true
           (Time.compare !last at <= 0);
         last := at));
  let t2 = Arrivals.create ~seed:3 ~hosts:2 ~rate:20_000. in
  Arrivals.stop t2;
  let fired = ref false in
  let next =
    Arrivals.until t2 ~target:(Time.sec 10.) ~f:(fun ~host:_ ~at:_ ~rng:_ ->
        fired := true)
  in
  Alcotest.(check bool) "stopped stream yields nothing" false !fired;
  Alcotest.(check bool) "stopped stream exhausted" true
    (Time.is_infinite next)

(* ----- Metrics: streaming FCT slowdowns ----- *)

let test_metrics_fct_buckets () =
  let m = Metrics.create ~rtt_subsample:1 () in
  (* 3 segments = 4380 B -> 0-10KB; 100 segments = 146 kB -> 100KB-1MB *)
  Metrics.record_fct m ~size_segments:3 ~fct:(Time.ms 2) ~ideal:(Time.ms 1);
  Metrics.record_fct m ~size_segments:100 ~fct:(Time.ms 30) ~ideal:(Time.ms 10);
  Metrics.record_fct m ~size_segments:100 ~fct:(Time.ms 10) ~ideal:(Time.ms 10);
  let buckets = Metrics.fct_slowdowns m in
  Alcotest.(check (list string))
    "bucket labels, small to large, aggregate last"
    [ "0-10KB"; "100KB-1MB"; "all" ]
    (List.map fst buckets);
  let by label = List.assoc label buckets in
  Alcotest.(check int) "small count" 1 (Distribution.count (by "0-10KB"));
  Alcotest.(check (float 1e-9)) "small slowdown" 2. (Distribution.mean (by "0-10KB"));
  Alcotest.(check (float 1e-9)) "medium mean slowdown" 2.
    (Distribution.mean (by "100KB-1MB"));
  Alcotest.(check int) "aggregate count" 3 (Distribution.count (by "all"));
  Alcotest.check_raises "ideal must be positive"
    (Invalid_argument "Metrics.record_fct: ideal must be positive") (fun () ->
      Metrics.record_fct m ~size_segments:1 ~fct:(Time.ms 1) ~ideal:Time.zero);
  let csv = Metrics.fct_summary_csv m in
  Alcotest.(check bool) "summary csv has header" true
    (String.length csv > 0
    && String.sub csv 0 (String.index csv '\n')
       = "bucket,samples,mean,p50,p90,p99,max");
  let cdf = Metrics.fct_cdf_csv ~points:10 m in
  Alcotest.(check bool) "cdf csv mentions every bucket" true
    (List.for_all
       (fun (label, _) ->
         let re = label ^ "," in
         let found = ref false in
         let ll = String.length re and cl = String.length cdf in
         for i = 0 to cl - ll do
           if String.sub cdf i ll = re then found := true
         done;
         !found)
       buckets)

let test_metrics_streaming_default () =
  let m = Metrics.create ~rtt_subsample:1 () in
  Alcotest.(check bool) "streaming by default" false (Metrics.keeps_flows m);
  let record ~truncated goodput =
    Metrics.record_flow m
      {
        Metrics.flow = 1;
        scheme = Scheme.xmp 2;
        src = 0;
        dst = 5;
        locality = Xmp_net.Fat_tree.Inter_pod;
        size_segments = 100;
        started = Time.zero;
        finished = Time.ms 10;
        goodput_bps = goodput;
        truncated;
      }
  in
  record ~truncated:false 1e8;
  record ~truncated:false 2e8;
  record ~truncated:true 5e7;
  Alcotest.(check int) "flows counted" 3 (Metrics.n_completed_flows m);
  Alcotest.(check int) "truncated counted" 1 (Metrics.n_truncated_flows m);
  Alcotest.(check bool) "mean maintained" true
    (Float.abs (Metrics.mean_goodput_bps m -. (3.5e8 /. 3.)) < 1.);
  Alcotest.check_raises "per-flow records not kept"
    (Invalid_argument
       "Metrics.completed_flows: per-flow records not kept (create with \
        ~keep_flows:true)") (fun () -> ignore (Metrics.completed_flows m));
  (* merge folds streaming aggregates *)
  let m2 = Metrics.create ~rtt_subsample:1 () in
  Metrics.record_fct m2 ~size_segments:3 ~fct:(Time.ms 2) ~ideal:(Time.ms 1);
  Metrics.record_fct m ~size_segments:3 ~fct:(Time.ms 4) ~ideal:(Time.ms 1);
  Metrics.merge ~into:m m2;
  Alcotest.(check int) "merged flow count" 3 (Metrics.n_completed_flows m);
  let all = List.assoc "all" (Metrics.fct_slowdowns m) in
  Alcotest.(check int) "merged fct samples" 2 (Distribution.count all);
  Alcotest.(check (float 1e-9)) "merged fct mean" 3. (Distribution.mean all)

(* ----- Driver: new traffic patterns ----- *)

let test_driver_churn () =
  let cfg =
    mini_config
      (Driver.Permutation_churn
         { min_segments = 20; max_segments = 40; churn = Time.ms 60 })
      (Scheme.xmp 2)
  in
  let r = Driver.run cfg in
  let m = r.Driver.metrics in
  (* 5 waves of 16 permutation flows within the 300 ms horizon; later
     waves may be truncated but the early ones complete *)
  Alcotest.(check bool) "several waves recorded" true
    (Metrics.n_completed_flows m > 32);
  Alcotest.(check bool) "some flows complete" true
    (Metrics.n_completed_flows m - Metrics.n_truncated_flows m > 16);
  Alcotest.check_raises "churn must be positive"
    (Invalid_argument "Driver: churn period must be positive") (fun () ->
      ignore
        (Driver.run
           (mini_config
              (Driver.Permutation_churn
                 { min_segments = 2; max_segments = 4; churn = Time.zero })
              (Scheme.xmp 2))))

let test_driver_incast_sweep () =
  let cfg =
    mini_config
      (Driver.Incast_sweep
         {
           jobs = 2;
           fanouts = [ 2; 4 ];
           request_segments = 2;
           response_segments = 20;
         })
      Scheme.dctcp
  in
  let r = Driver.run cfg in
  let by_fanout = Metrics.job_times_by_fanout r.Driver.metrics in
  Alcotest.(check (list int)) "both fanouts sampled, ascending" [ 2; 4 ]
    (List.map fst by_fanout);
  List.iter
    (fun (fanout, d) ->
      Alcotest.(check bool)
        (Printf.sprintf "fanout %d has jobs" fanout)
        true
        (Distribution.count d > 0))
    by_fanout;
  (* sweep jobs are also filed in the aggregate job distribution *)
  Alcotest.(check bool) "aggregate job count covers sweep" true
    (Distribution.count (Metrics.job_times_ms r.Driver.metrics)
    = List.fold_left
        (fun acc (_, d) -> acc + Distribution.count d)
        0 by_fanout);
  Alcotest.check_raises "fanout exceeding hosts"
    (Invalid_argument "Driver: incast sweep fanout exceeds hosts") (fun () ->
      ignore
        (Driver.run
           (mini_config
              (Driver.Incast_sweep
                 {
                   jobs = 1;
                   fanouts = [ 16 ];
                   request_segments = 1;
                   response_segments = 1;
                 })
              Scheme.dctcp)))

let test_driver_all_to_all () =
  let cfg =
    {
      (mini_config (Driver.All_to_all { segments = 10 }) (Scheme.xmp 2)) with
      Driver.horizon = Time.ms 200;
    }
  in
  let r = Driver.run cfg in
  let m = r.Driver.metrics in
  (* 16 hosts: one wave is 240 flows; every recorded flow leaves its host *)
  Alcotest.(check bool) "at least one full shuffle wave" true
    (Metrics.n_completed_flows m >= 240);
  List.iter
    (fun (f : Metrics.flow_record) ->
      Alcotest.(check bool) "never self" true (f.src <> f.dst))
    (Metrics.completed_flows m)

(* ----- Open_loop ----- *)

let small_open_loop =
  {
    Open_loop.default_config with
    Open_loop.k = 4;
    horizon = Time.ms 10;
    drain = Time.ms 40;
    sizes = Flow_size.scaled Flow_size.web_search (1. /. 32.);
  }

(* Everything observable about a run, as one string: counts plus both
   FCT exports. Byte-equality of fingerprints is the determinism
   check. *)
let open_loop_fingerprint (r : Open_loop.result) =
  Printf.sprintf "launched=%d completed=%d truncated=%d events=%d mail=%d\n%s\n%s"
    r.Open_loop.launched r.Open_loop.completed r.Open_loop.truncated
    r.Open_loop.events r.Open_loop.mail
    (Metrics.fct_summary_csv r.Open_loop.metrics)
    (Metrics.fct_cdf_csv r.Open_loop.metrics)

(* Spawning a domain latches the runtime into multicore mode for the
   rest of the process, and Unix.fork refuses to run after that —
   which would break the Runner process-pool tests later in this
   binary (see test_shard.ml). So the multi-domain run happens in a
   forked child that ships its fingerprint back through a pipe. *)
let fingerprint_in_child f =
  let r, w = Unix.pipe () in
  flush Stdlib.stdout;
  flush Stdlib.stderr;
  match Unix.fork () with
  | 0 ->
    Unix.close r;
    let out = try f () with e -> "child raised: " ^ Printexc.to_string e in
    let oc = Unix.out_channel_of_descr w in
    output_string oc out;
    flush oc;
    Unix._exit (if String.length out > 0 then 0 else 1)
  | pid ->
    Unix.close w;
    let ic = Unix.in_channel_of_descr r in
    let out = In_channel.input_all ic in
    close_in ic;
    (match Unix.waitpid [] pid with
    | _, Unix.WEXITED 0 -> ()
    | _ -> Alcotest.fail "open-loop child did not exit cleanly");
    out

let test_open_loop_domains_identical () =
  let a = Open_loop.run ~config:small_open_loop ~domains:1 () in
  let four =
    fingerprint_in_child (fun () ->
        open_loop_fingerprint
          (Open_loop.run ~config:small_open_loop ~domains:4 ()))
  in
  Alcotest.(check string) "domains=1 and domains=4 byte-identical"
    (open_loop_fingerprint a) four;
  Alcotest.(check bool) "flows actually ran" true (a.Open_loop.launched > 50);
  Alcotest.(check int) "all flows accounted" a.Open_loop.launched
    (a.Open_loop.completed + a.Open_loop.truncated)

let test_open_loop_max_flows () =
  let config = { small_open_loop with Open_loop.max_flows = Some 25 } in
  let r = Open_loop.run ~config () in
  Alcotest.(check int) "launch cap respected" 25 r.Open_loop.launched;
  Alcotest.(check bool) "capped run still completes flows" true
    (r.Open_loop.completed > 0)

let test_open_loop_ideal_fct () =
  let cfg = Open_loop.default_config in
  (* 1 segment inner-rack at 1 Gbps: 11.68 µs transfer + 80 µs RTT *)
  let ideal =
    Open_loop.ideal_fct cfg ~locality:Xmp_net.Fat_tree.Inner_rack
      ~size_segments:1
  in
  Alcotest.(check int) "inner-rack single segment" 91_680 ideal;
  let inter_pod =
    Open_loop.ideal_fct cfg ~locality:Xmp_net.Fat_tree.Inter_pod
      ~size_segments:1
  in
  Alcotest.(check int) "inter-pod adds core+agg legs" (91_680 + 280_000)
    inter_pod;
  (* arrival rate: load · C / E[S] *)
  let expect =
    cfg.Open_loop.load *. 1e9
    /. (Flow_size.mean_segments cfg.Open_loop.sizes *. 1460. *. 8.)
  in
  Alcotest.(check (float 1e-6)) "arrival rate" expect
    (Open_loop.arrival_rate cfg)

let suite =
  [
    Alcotest.test_case "pareto scale" `Quick test_pareto_scale;
    Alcotest.test_case "pareto bounded mean (100k samples)" `Slow
      test_pareto_bounded_mean_statistical;
    Alcotest.test_case "pareto validation" `Quick test_pareto_validation;
    QCheck_alcotest.to_alcotest prop_pareto_bounds;
    Alcotest.test_case "pareto empirical mean" `Quick
      test_pareto_mean_reasonable;
    Alcotest.test_case "pareto integer samples" `Quick test_pareto_sample_int;
    Alcotest.test_case "scheme names" `Quick test_scheme_names;
    Alcotest.test_case "scheme parsing" `Quick test_scheme_parse;
    Alcotest.test_case "scheme tunable grammar" `Quick
      test_scheme_tunable_grammar;
    Alcotest.test_case "scheme tunables thread through" `Quick
      test_scheme_tunables_thread;
    Alcotest.test_case "scheme properties" `Quick test_scheme_properties;
    Alcotest.test_case "scheme transport configs" `Quick test_scheme_config;
    QCheck_alcotest.to_alcotest prop_pick_paths_distinct;
    Alcotest.test_case "metrics goodput" `Quick test_metrics_goodput;
    Alcotest.test_case "metrics by scheme" `Quick test_metrics_by_scheme;
    Alcotest.test_case "metrics rtt subsampling" `Quick
      test_metrics_rtt_subsampling;
    Alcotest.test_case "metrics jobs" `Quick test_metrics_jobs;
    Alcotest.test_case "driver permutation" `Slow test_driver_permutation;
    Alcotest.test_case "permutation never self" `Slow
      test_driver_permutation_never_self;
    Alcotest.test_case "driver random" `Slow test_driver_random_inbound_cap;
    Alcotest.test_case "driver incast" `Slow test_driver_incast;
    Alcotest.test_case "driver split assignment" `Slow
      test_driver_split_assignment;
    Alcotest.test_case "driver determinism" `Slow test_driver_determinism;
    Alcotest.test_case "driver utilization" `Slow test_driver_utilization;
    Alcotest.test_case "flow size validation" `Quick test_flow_size_validation;
    Alcotest.test_case "flow size sampling" `Quick test_flow_size_sampling;
    Alcotest.test_case "flow size scaling" `Quick test_flow_size_scaled;
    Alcotest.test_case "flow size from file" `Quick test_flow_size_of_file;
    Alcotest.test_case "poisson interarrivals (mean, CV)" `Slow
      test_poisson_interarrivals;
    Alcotest.test_case "per-host arrival streams" `Quick
      test_arrivals_per_host_streams;
    Alcotest.test_case "metrics fct buckets" `Quick test_metrics_fct_buckets;
    Alcotest.test_case "metrics streaming default" `Quick
      test_metrics_streaming_default;
    Alcotest.test_case "driver permutation churn" `Slow test_driver_churn;
    Alcotest.test_case "driver incast sweep" `Slow test_driver_incast_sweep;
    Alcotest.test_case "driver all-to-all" `Slow test_driver_all_to_all;
    Alcotest.test_case "open loop domains invariance" `Slow
      test_open_loop_domains_identical;
    Alcotest.test_case "open loop flow cap" `Slow test_open_loop_max_flows;
    Alcotest.test_case "open loop ideal fct" `Quick test_open_loop_ideal_fct;
  ]
