(* The scheme-conformance matrix: every scheme's controller is driven
   through the same canned episodes (Conformance.episodes) and must
   satisfy the per-scheme property profile below, plus match its
   committed golden cwnd trace byte for byte. *)

module Scheme = Xmp_workload.Scheme
module Conformance = Xmp_workload.Conformance

let eps = 1e-9

(* How the "coupled increase never exceeds uncoupled Reno's" bound is
   stated for a scheme: per acked segment (the Reno-skeleton couplings),
   per round (XMP's BOS moves in whole segments at round boundaries, at
   most one per round), or not at all (single-path schemes are the
   uncoupled baseline). *)
type harm = Per_ack | Per_round | Single_path

type profile = {
  scheme : Scheme.t;
  retx_floor : float;
      (* fast retransmit keeps at least this fraction of the window *)
  ecn_floor : float option;
      (* CE keeps at least this fraction (ECN-capable schemes only) *)
  harm : harm;
}

let profiles =
  [
    {
      scheme = Scheme.dctcp;
      retx_floor = 0.5;
      ecn_floor = Some 0.5;
      harm = Single_path;
    };
    {
      scheme = Scheme.reno;
      retx_floor = 0.5;
      ecn_floor = None;
      harm = Single_path;
    };
    { scheme = Scheme.lia 2; retx_floor = 0.5; ecn_floor = None; harm = Per_ack };
    {
      scheme = Scheme.olia 2;
      retx_floor = 0.5;
      ecn_floor = None;
      harm = Per_ack;
    };
    {
      (* ECN cut is w − max(w/β, 1) with the default β = 4 *)
      scheme = Scheme.xmp 2;
      retx_floor = 0.5;
      ecn_floor = Some 0.75;
      harm = Per_round;
    };
    {
      (* cut keeps 1 − min(α, 1.5)/2 ∈ [1/4, 1/2] of the window *)
      scheme = Scheme.balia 2;
      retx_floor = 0.25;
      ecn_floor = None;
      harm = Per_ack;
    };
    {
      (* 4/5 on presumed-random losses, 1/2 on congestive ones *)
      scheme = Scheme.veno 2;
      retx_floor = 0.5;
      ecn_floor = None;
      harm = Per_ack;
    };
    {
      scheme = Scheme.amp 2;
      retx_floor = 0.5;
      ecn_floor = Some 0.5;
      harm = Per_ack;
    };
  ]

let ctx scheme ep idx what =
  Printf.sprintf "%s/%s step %d: %s" (Scheme.name scheme) ep.Conformance.ep_name
    idx what

(* Walk one (scheme, episode) cell asserting the property matrix. *)
let check_episode profile ep =
  let scheme = profile.scheme in
  let rig = Conformance.make_rig scheme in
  let seen_ce = ref false and seen_loss = ref false in
  List.iteri
    (fun idx step ->
      let pre = Conformance.cwnd rig 0 in
      let pre_ss = Conformance.in_slow_start rig 0 in
      Conformance.apply rig step;
      let post = Conformance.cwnd rig 0 in
      (* window is always finite and at least one segment *)
      Alcotest.(check bool)
        (ctx scheme ep idx "cwnd finite")
        true
        (Float.is_finite post);
      Alcotest.(check bool)
        (ctx scheme ep idx "cwnd >= 1")
        true
        (post >= 1. -. eps);
      (match step with
      | Conformance.Ack k ->
        Alcotest.(check bool)
          (ctx scheme ep idx "clean ACK never shrinks the window")
          true
          (post >= pre -. eps);
        (match profile.harm with
        | Single_path -> ()
        | Per_ack ->
          if not pre_ss then
            Alcotest.(check bool)
              (ctx scheme ep idx "coupled increase <= Reno's 1/w per ack")
              true
              (post -. pre <= (float_of_int k /. pre) +. 1e-6)
        | Per_round ->
          if not pre_ss then
            Alcotest.(check bool)
              (ctx scheme ep idx "round increase <= one segment")
              true
              (post -. pre <= 1. +. 1e-6))
      | Conformance.Ce_ack k ->
        if Scheme.uses_ecn scheme then begin
          if not !seen_ce then
            Alcotest.(check bool)
              (ctx scheme ep idx "first CE exits slow start")
              false
              (Conformance.in_slow_start rig 0);
          seen_ce := true;
          let floor =
            match profile.ecn_floor with Some f -> f | None -> assert false
          in
          Alcotest.(check bool)
            (ctx scheme ep idx "CE cut bounded by the scheme's beta")
            true
            (post >= Float.min (pre *. floor) (pre -. 1.) -. eps);
          Alcotest.(check bool)
            (ctx scheme ep idx "CE never grows the window past the acks")
            true
            (post <= pre +. float_of_int k +. eps)
        end
        else
          (* loss-driven schemes must ignore the marks entirely *)
          Alcotest.(check bool)
            (ctx scheme ep idx "CE ignored by loss-driven scheme")
            true
            (post >= pre -. eps)
      | Conformance.Fast_retransmit ->
        seen_loss := true;
        Alcotest.(check bool)
          (ctx scheme ep idx "loss exits slow start")
          false
          (Conformance.in_slow_start rig 0);
        Alcotest.(check bool)
          (ctx scheme ep idx "loss never grows the window")
          true
          (post <= Float.max pre 2. +. eps);
        Alcotest.(check bool)
          (ctx scheme ep idx "loss cut bounded by the scheme's beta")
          true
          (post >= Float.min (pre *. profile.retx_floor) (pre -. 1.) -. eps)
      | Conformance.Timeout ->
        seen_loss := true;
        Alcotest.(check bool)
          (ctx scheme ep idx "timeout collapses the window")
          true
          (post <= 2. +. eps);
        Alcotest.(check bool)
          (ctx scheme ep idx "timeout re-enters slow start")
          true
          (Conformance.in_slow_start rig 0)
      | Conformance.Sibling_ack _ ->
        Alcotest.(check bool)
          (ctx scheme ep idx "sibling progress never shrinks subflow 0")
          true
          (post >= pre -. eps)))
    ep.Conformance.steps;
  ignore !seen_ce;
  ignore !seen_loss

let test_matrix () =
  List.iter
    (fun profile ->
      List.iter (check_episode profile) Conformance.episodes)
    profiles

(* Heterogeneous-RTT stress: every scheme driven through the rtt-asym
   episode on the 100 µs / 20 ms rig (a 200:1 ratio). The rate terms
   (1/srtt² in LIA/OLIA, 1/srtt in Balia) span 4+ orders of magnitude
   across siblings here, so the assertions are the safety core: windows
   stay finite, at least one segment, and bounded — a coupling that
   mishandles the ratio shows up as a NaN, a collapse below 1, or a
   runaway increase within the episode's ~75 steps. *)
let test_rtt_asym_matrix () =
  let ep = Conformance.asym_episode in
  List.iter
    (fun scheme ->
      let rig = Conformance.make_asym_rig scheme in
      List.iteri
        (fun idx step ->
          let pre = Conformance.cwnd rig 0 in
          Conformance.apply rig step;
          let post = Conformance.cwnd rig 0 in
          let total = Conformance.total_cwnd rig in
          Alcotest.(check bool)
            (ctx scheme ep idx "cwnd finite under 200:1 RTT ratio")
            true
            (Float.is_finite post && Float.is_finite total);
          Alcotest.(check bool)
            (ctx scheme ep idx "cwnd >= 1 under 200:1 RTT ratio")
            true
            (post >= 1. -. eps);
          Alcotest.(check bool)
            (ctx scheme ep idx "aggregate window bounded")
            true
            (total < 1e6);
          match step with
          | Conformance.Ack _ | Conformance.Sibling_ack _ ->
            Alcotest.(check bool)
              (ctx scheme ep idx "clean progress never shrinks subflow 0")
              true
              (post >= pre -. eps)
          | Conformance.Timeout ->
            Alcotest.(check bool)
              (ctx scheme ep idx "timeout collapses despite slow sibling")
              true
              (post <= 2. +. eps)
          | Conformance.Ce_ack _ | Conformance.Fast_retransmit -> ())
        ep.Conformance.steps)
    Conformance.schemes

let test_profiles_cover_schemes () =
  Alcotest.(check int)
    "one profile per conformance scheme"
    (List.length Conformance.schemes)
    (List.length profiles);
  List.iter
    (fun scheme ->
      Alcotest.(check bool)
        (Printf.sprintf "%s has a profile" (Scheme.name scheme))
        true
        (List.exists (fun p -> p.scheme = scheme) profiles))
    Conformance.schemes

(* run from the test directory ([dune runtest]) or the repo root *)
let expected_file =
  if Sys.file_exists "conformance.expected" then "conformance.expected"
  else "test/conformance.expected"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_golden_traces () =
  let expected = read_file expected_file in
  let actual = Conformance.render_all () in
  if not (String.equal expected actual) then begin
    (* dump the fresh traces next to the expectation so CI can upload
       the diff as an artifact *)
    let oc = open_out_bin (Filename.dirname expected_file ^ "/conformance.actual") in
    output_string oc actual;
    close_out oc
  end;
  Alcotest.(check bool)
    "golden cwnd traces match test/conformance.expected (regenerate with \
     dune exec test/conformance_gen.exe)"
    true
    (String.equal expected actual)

let suite =
  [
    Alcotest.test_case "property matrix over all schemes x episodes" `Quick
      test_matrix;
    Alcotest.test_case "rtt-asym: all schemes bounded at 200:1 ratios" `Quick
      test_rtt_asym_matrix;
    Alcotest.test_case "profiles cover the scheme list" `Quick
      test_profiles_cover_schemes;
    Alcotest.test_case "golden cwnd traces" `Quick test_golden_traces;
  ]
