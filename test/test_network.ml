module Sim = Xmp_engine.Sim
module Time = Xmp_engine.Time
module Net = Xmp_net
module Network = Xmp_net.Network
module Node = Xmp_net.Node
module Packet = Xmp_net.Packet
module Queue_disc = Xmp_net.Queue_disc

let disc () = Queue_disc.create ~policy:Queue_disc.Droptail ~capacity_pkts:100

let test_explicit_ids () =
  let sim = Sim.create () in
  let net = Network.create sim in
  let h = Network.add_host_at net ~id:40 ~name:"h40" in
  let s = Network.add_switch_at net ~id:7 ~name:"s7" in
  Alcotest.(check int) "host id honoured" 40 (Node.id h);
  Alcotest.(check int) "switch id honoured" 7 (Node.id s);
  Alcotest.(check bool) "lookup by explicit id" true
    (Network.node net 40 == h && Network.node net 7 == s);
  (* implicit allocation continues past the highest explicit id *)
  let n = Network.add_host net ~name:"next" in
  Alcotest.(check int) "implicit id after explicit" 41 (Node.id n);
  Alcotest.(check bool) "collision rejected" true
    (try
       ignore (Network.add_host_at net ~id:7 ~name:"dup");
       false
     with Invalid_argument _ -> true)

let test_nodes () =
  let sim = Sim.create () in
  let net = Network.create sim in
  let h = Network.add_host net ~name:"h0" in
  let s = Network.add_switch net ~name:"s0" in
  Alcotest.(check int) "host id" 0 (Node.id h);
  Alcotest.(check int) "switch id" 1 (Node.id s);
  Alcotest.(check int) "n_nodes" 2 (Network.n_nodes net);
  Alcotest.(check bool) "kinds" true
    (Node.kind h = Node.Host && Node.kind s = Node.Switch);
  Alcotest.(check bool) "lookup" true (Network.node net 0 == h)

let test_connect_and_forward () =
  let sim = Sim.create () in
  let net = Network.create sim in
  let a = Network.add_host net ~name:"a" in
  let sw = Network.add_switch net ~name:"sw" in
  let b = Network.add_host net ~name:"b" in
  let rate = Net.Units.gbps 1. in
  ignore (Network.connect net ~rate ~delay:(Time.us 1) ~disc a sw);
  ignore (Network.connect net ~rate ~delay:(Time.us 1) ~disc sw b);
  (* a: port 0 -> sw; sw: port 0 -> a, port 1 -> b *)
  Node.set_route a (fun _ -> 0);
  Node.set_route sw (fun p -> if (Packet.dst p) = Node.id b then 1 else 0);
  let received = ref [] in
  Network.register_endpoint net ~host:(Node.id b) ~flow:1 ~subflow:0
    (fun p -> received := (Packet.seq p) :: !received);
  let pkt =
    Packet.data ~flow:1 ~subflow:0 ~src:(Node.id a) ~dst:(Node.id b)
      ~path:0 ~seq:42 ~ect:false ~cwr:false ~ts:0
  in
  Node.send a pkt;
  Sim.run sim;
  Alcotest.(check (list int)) "delivered through switch" [ 42 ] !received;
  Alcotest.(check int) "delivered count" 1 (Network.packets_delivered net);
  Alcotest.(check int) "switch forwarded" 1 (Node.packets_forwarded sw)

let test_dead_letter () =
  let sim = Sim.create () in
  let net = Network.create sim in
  let a = Network.add_host net ~name:"a" in
  let b = Network.add_host net ~name:"b" in
  ignore
    (Network.connect net ~rate:(Net.Units.gbps 1.) ~delay:(Time.us 1) ~disc a
       b);
  Node.set_route a (fun _ -> 0);
  let pkt =
    Packet.data ~flow:9 ~subflow:0 ~src:(Node.id a) ~dst:(Node.id b)
      ~path:0 ~seq:1 ~ect:false ~cwr:false ~ts:0
  in
  Node.send a pkt;
  Sim.run sim;
  Alcotest.(check int) "dead lettered" 1 (Network.packets_dead_lettered net);
  Alcotest.(check int) "not delivered" 0 (Network.packets_delivered net)

let test_unregister () =
  let sim = Sim.create () in
  let net = Network.create sim in
  let a = Network.add_host net ~name:"a" in
  let b = Network.add_host net ~name:"b" in
  ignore
    (Network.connect net ~rate:(Net.Units.gbps 1.) ~delay:(Time.us 1) ~disc a
       b);
  Node.set_route a (fun _ -> 0);
  let hits = ref 0 in
  Network.register_endpoint net ~host:(Node.id b) ~flow:1 ~subflow:0
    (fun _ -> incr hits);
  Network.unregister_endpoint net ~host:(Node.id b) ~flow:1 ~subflow:0;
  Node.send a
    (Packet.data ~flow:1 ~subflow:0 ~src:(Node.id a) ~dst:(Node.id b)
       ~path:0 ~seq:1 ~ect:false ~cwr:false ~ts:0);
  Sim.run sim;
  Alcotest.(check int) "handler removed" 0 !hits

let test_tags () =
  let sim = Sim.create () in
  let net = Network.create sim in
  let a = Network.add_switch net ~name:"a" in
  let b = Network.add_switch net ~name:"b" in
  let c = Network.add_switch net ~name:"c" in
  ignore
    (Network.connect net ~tag:"core" ~rate:(Net.Units.gbps 1.)
       ~delay:(Time.us 1) ~disc a b);
  ignore
    (Network.connect net ~tag:"rack" ~rate:(Net.Units.gbps 1.)
       ~delay:(Time.us 1) ~disc b c);
  Alcotest.(check int) "4 directed links" 4 (List.length (Network.links net));
  Alcotest.(check int) "2 core" 2 (List.length (Network.links_tagged net "core"));
  Alcotest.(check int) "2 rack" 2 (List.length (Network.links_tagged net "rack"));
  Alcotest.(check int) "0 other" 0 (List.length (Network.links_tagged net "x"));
  match Network.links net with
  | first :: _ ->
    Alcotest.(check (option string))
      "tag lookup" (Some "core")
      (Network.tag_of_link net first)
  | [] -> Alcotest.fail "no links"

let test_asym_connect () =
  let sim = Sim.create () in
  let net = Network.create sim in
  let a = Network.add_switch net ~name:"a" in
  let b = Network.add_switch net ~name:"b" in
  let fwd, rev =
    Network.connect_asym net ~rate_fwd:(Net.Units.gbps 10.)
      ~rate_rev:(Net.Units.gbps 1.) ~delay:(Time.us 1) ~disc a b
  in
  Alcotest.(check int) "fwd rate" (Net.Units.gbps 10.) (Net.Link.rate fwd);
  Alcotest.(check int) "rev rate" (Net.Units.gbps 1.) (Net.Link.rate rev)

let test_host_rejects_transit () =
  let sim = Sim.create () in
  let net = Network.create sim in
  let a = Network.add_host net ~name:"a" in
  let pkt =
    Packet.data ~flow:1 ~subflow:0 ~src:9 ~dst:99 ~path:0 ~seq:1
      ~ect:false ~cwr:false ~ts:0
  in
  Alcotest.(check bool) "raises" true
    (try
       Node.receive a pkt;
       false
     with Failure _ -> true)

let suite =
  [
    Alcotest.test_case "explicit ids" `Quick test_explicit_ids;
    Alcotest.test_case "node registry" `Quick test_nodes;
    Alcotest.test_case "connect and forward" `Quick test_connect_and_forward;
    Alcotest.test_case "dead letter" `Quick test_dead_letter;
    Alcotest.test_case "unregister endpoint" `Quick test_unregister;
    Alcotest.test_case "link tags" `Quick test_tags;
    Alcotest.test_case "asymmetric connect" `Quick test_asym_connect;
    Alcotest.test_case "host rejects transit" `Quick
      test_host_rejects_transit;
  ]
