(* Extended Table 2 golden check: the XMP-2 vs {BALIA, VENO, AMP}
   pairings at --quick scale must render byte-identically whether the
   runner executes them sequentially (--jobs 1) or in parallel worker
   processes (--jobs 4). One scenario per pairing so jobs=4 really
   schedules them concurrently. *)

module Runner = Xmp_runner.Runner
module Scenario = Xmp_runner.Scenario
module Scenarios = Xmp_experiments.Scenarios
module Coexistence = Xmp_experiments.Coexistence
module Scheme = Xmp_workload.Scheme

let quick_base = Scenarios.quick.Scenarios.base

let pairing_scenario partner =
  Scenario.create
    ~name:(Printf.sprintf "table2.ext.%s" (Scheme.name partner))
    ~descr:"one extended Table 2 pairing at quick scale"
    ~params:
      (("partner", Scheme.name partner)
      :: Scenarios.base_params quick_base)
    (fun () ->
      List.iter
        (fun queue_pkts ->
          let r =
            Coexistence.run ~base:quick_base ~partner ~queue_pkts ()
          in
          Printf.printf "%s queue=%d xmp=%.3f partner=%.3f\n"
            (Scheme.name partner) queue_pkts r.Coexistence.cell.xmp_mbps
            r.Coexistence.cell.partner_mbps)
        [ 50; 100 ])

let scenario_set = List.map pairing_scenario Coexistence.extended_partners

let outputs outcomes = List.map (fun o -> o.Runner.output) outcomes

let test_jobs_1_vs_4 () =
  let o1, _ =
    Runner.run ~jobs:1 ~cache:Runner.No_cache ~progress:false scenario_set
  in
  let o4, _ =
    Runner.run ~jobs:4 ~cache:Runner.No_cache ~progress:false scenario_set
  in
  Alcotest.(check (list string))
    "extended pairings byte-identical across --jobs 1 and --jobs 4"
    (outputs o1) (outputs o4);
  Alcotest.(check (list string))
    "identical digests"
    (List.map (fun o -> o.Runner.digest) o1)
    (List.map (fun o -> o.Runner.digest) o4);
  (* every pairing rendered both queue sizes and moved traffic *)
  let contains ~sub line =
    let n = String.length sub in
    let rec go i =
      i + n <= String.length line && (String.sub line i n = sub || go (i + 1))
    in
    go 0
  in
  List.iter
    (fun out ->
      let lines =
        List.filter (fun l -> l <> "") (String.split_on_char '\n' out)
      in
      Alcotest.(check int) "two queue sizes per pairing" 2 (List.length lines);
      List.iter
        (fun line ->
          Alcotest.(check bool)
            (Printf.sprintf "goodput rendered in %S" line)
            true
            (contains ~sub:"xmp=" line && not (contains ~sub:"xmp=0.000" line)))
        lines)
    (outputs o1)

let test_registered_scenario () =
  (* the registry row exists and carries the partner set in its output *)
  match Scenarios.select Scenarios.quick [ "table2.extended" ] with
  | Ok [ s ] ->
    Alcotest.(check string) "name" "table2.extended" s.Scenario.name
  | Ok _ -> Alcotest.fail "table2.extended resolved ambiguously"
  | Error name -> Alcotest.failf "unknown scenario %s" name

let suite =
  [
    Alcotest.test_case "extended pairings: jobs=1 ≡ jobs=4" `Quick
      test_jobs_1_vs_4;
    Alcotest.test_case "table2.extended is registered" `Quick
      test_registered_scenario;
  ]
