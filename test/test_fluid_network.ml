module FN = Xmp_core.Fluid_network
module Units = Xmp_net.Units

let gbps1 = FN.link ~rate:(Units.gbps 1.) ~k:10 ()

let test_link_conversion () =
  Alcotest.(check (float 1.)) "1 Gbps in segments/s"
    (1e9 /. 8. /. 1500.)
    gbps1.FN.capacity;
  Alcotest.(check (float 1e-9)) "threshold" 10. gbps1.FN.k_threshold

let test_validation () =
  Alcotest.check_raises "bad link" (Invalid_argument "Fluid_network.link")
    (fun () -> ignore (FN.link ~rate:0 ~k:10 ()));
  Alcotest.check_raises "bad beta"
    (Invalid_argument "Fluid_network.create: beta") (fun () ->
      ignore
        (FN.create ~beta:1 ~links:[ gbps1 ]
           ~subflows:[ { FN.flow = 0; links = [ 0 ]; base_rtt = 1e-4 } ]));
  Alcotest.check_raises "bad index" (Invalid_argument "Fluid_network: link index")
    (fun () ->
      ignore
        (FN.create ~beta:4 ~links:[ gbps1 ]
           ~subflows:[ { FN.flow = 0; links = [ 3 ]; base_rtt = 1e-4 } ]))

let settle ?(steps = 400_000) t =
  FN.run t ~dt:1e-6 ~steps;
  t

let test_single_flow_equilibrium () =
  let t =
    settle
      (FN.create ~beta:4 ~links:[ gbps1 ]
         ~subflows:[ { FN.flow = 0; links = [ 0 ]; base_rtt = 225e-6 } ])
  in
  (* at equilibrium the flow saturates the link and the queue sits near K *)
  let util = FN.rate t 0 /. gbps1.FN.capacity in
  Alcotest.(check bool)
    (Printf.sprintf "utilization ~1 (%.3f)" util)
    true
    (util > 0.95 && util < 1.05);
  let q = FN.queue t 0 in
  Alcotest.(check bool)
    (Printf.sprintf "queue near K (%.1f)" q)
    true
    (q > 4. && q < 25.);
  Alcotest.(check (float 1e-6)) "single subflow delta = 1" 1. (FN.delta t 0)

let test_two_flows_fair () =
  let sub f = { FN.flow = f; links = [ 0 ]; base_rtt = 225e-6 } in
  let t =
    settle (FN.create ~beta:4 ~links:[ gbps1 ] ~subflows:[ sub 0; sub 1 ])
  in
  let r0 = FN.rate t 0 and r1 = FN.rate t 1 in
  Alcotest.(check bool) "equal split" true
    (Float.abs (r0 -. r1) /. r0 < 0.01);
  Alcotest.(check bool) "link full" true
    ((r0 +. r1) /. gbps1.FN.capacity > 0.95)

let test_multipath_prefers_empty_path () =
  (* flow 0 has subflows on links A and B; flow 1 is single-path on A:
     TraSh should push flow 0 mostly onto B and flow totals equalize
     around 0.75/0.75 of a link + leftovers *)
  let links = [ gbps1; gbps1 ] in
  let t =
    settle
      (FN.create ~beta:4 ~links
         ~subflows:
           [
             { FN.flow = 0; links = [ 0 ]; base_rtt = 225e-6 };
             { FN.flow = 0; links = [ 1 ]; base_rtt = 225e-6 };
             { FN.flow = 1; links = [ 0 ]; base_rtt = 225e-6 };
           ])
  in
  let on_shared = FN.rate t 0 and on_empty = FN.rate t 1 in
  Alcotest.(check bool)
    (Printf.sprintf "shifted to the empty path (%.0f vs %.0f)" on_empty
       on_shared)
    true
    (on_empty > 2. *. on_shared);
  (* both links are fully used *)
  Alcotest.(check bool) "link A full" true
    (FN.total_arrival t 0 /. gbps1.FN.capacity > 0.9);
  Alcotest.(check bool) "link B full" true
    (FN.total_arrival t 1 /. gbps1.FN.capacity > 0.9)

let test_matches_packet_simulator () =
  (* the fluid equilibrium window should predict the packet-level BOS
     average window on one bottleneck within a couple of segments *)
  let t =
    settle
      (FN.create ~beta:4 ~links:[ gbps1 ]
         ~subflows:[ { FN.flow = 0; links = [ 0 ]; base_rtt = 225e-6 } ])
  in
  let fluid_w = FN.window t 0 in
  (* packet level *)
  let sim = Xmp_engine.Sim.create ~config:{ Xmp_engine.Sim.default_config with seed = 5 } () in
  let net = Xmp_net.Network.create sim in
  let disc () =
    Xmp_net.Queue_disc.create ~policy:(Xmp_net.Queue_disc.Threshold_mark 10)
      ~capacity_pkts:100
  in
  let tb =
    Xmp_net.Testbed.create ~net ~n_left:1 ~n_right:1
      ~bottlenecks:
        [
          {
            Xmp_net.Testbed.rate = Units.gbps 1.;
            delay = Xmp_engine.Time.ns 62_500;
            disc;
          };
        ]
      ~access_delay:(Xmp_engine.Time.us 25) ()
  in
  let conn =
    Xmp_transport.Tcp.create ~net ~flow:1 ~subflow:0
      ~src:(Xmp_net.Testbed.left_id tb 0)
      ~dst:(Xmp_net.Testbed.right_id tb 0)
      ~path:0
      ~cc:(Xmp_core.Bos.make ())
      ~config:Xmp_core.Xmp.tcp_config ()
  in
  (* average the packet-level window over the steady phase *)
  let samples = Xmp_stats.Running.create () in
  ignore
    (Xmp_engine.Periodic.start sim
       ~first_after:(Xmp_engine.Time.ms 50)
       ~interval:(Xmp_engine.Time.us 500)
       (fun () ->
         Xmp_stats.Running.add samples (Xmp_transport.Tcp.cwnd conn)));
  Xmp_engine.Sim.run ~until:(Xmp_engine.Time.ms 200) sim;
  let packet_w = Xmp_stats.Running.mean samples in
  Alcotest.(check bool)
    (Printf.sprintf "fluid %.1f vs packet %.1f segments" fluid_w packet_w)
    true
    (Float.abs (fluid_w -. packet_w) < 8.)

let suite =
  [
    Alcotest.test_case "link conversion" `Quick test_link_conversion;
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "single-flow equilibrium" `Quick
      test_single_flow_equilibrium;
    Alcotest.test_case "two flows split fairly" `Quick test_two_flows_fair;
    Alcotest.test_case "multipath prefers empty path" `Quick
      test_multipath_prefers_empty_path;
    Alcotest.test_case "fluid matches packet level" `Quick
      test_matches_packet_simulator;
  ]
